package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/netfed"
)

func cmdFederate(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("federate requires an action: serve or stream")
	}
	switch args[0] {
	case "serve":
		return cmdFederateServe(args[1:])
	case "stream":
		return cmdFederateStream(args[1:])
	default:
		return fmt.Errorf("unknown federate action %q (want serve or stream)", args[0])
	}
}

// cmdFederateServe runs a consolidator: it accepts site streams over
// the binary wire protocol, folds their deltas into per-site stores,
// and — when a policy store is given — runs continuous refinement
// epochs over the consolidated view. Stops cleanly on SIGINT/SIGTERM,
// then prints a summary and optionally exports the consolidated log.
func cmdFederateServe(args []string) error {
	fs := flag.NewFlagSet("federate serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7601", "address to listen on")
	window := fs.Int("window", 0, "ack window granted to each site (default 8)")
	maxConns := fs.Int("max-conns", 0, "maximum concurrent site connections (default 4096)")
	policyFile := fs.String("policy", "", "policy store file; enables continuous refinement epochs")
	vocabFile := fs.String("vocab", "", "vocabulary file (default: paper sample; used with -policy)")
	support := fs.Int("support", 5, "refinement threshold frequency f")
	users := fs.Int("users", 2, "refinement minimum distinct users")
	interval := fs.Duration("interval", 5*time.Second, "refinement epoch interval (with -policy)")
	investigate := fs.Float64("investigate", 0, "suspicion score that flags a mined rule for investigation")
	reject := fs.Float64("reject", 0, "suspicion score that rejects a mined rule (0 = adopt all)")
	export := fs.String("export", "", "write the consolidated log to this JSONL file on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := netfed.ConsolidatorOptions{
		MaxConns: *maxConns,
		Window:   *window,
		OnError:  func(err error) { fmt.Fprintln(os.Stderr, "primactl: federate:", err) },
	}
	if *policyFile != "" {
		v, err := loadVocab(*vocabFile)
		if err != nil {
			return err
		}
		ps, err := loadPolicy("PS", *policyFile)
		if err != nil {
			return err
		}
		opts.Refine = &netfed.RefineConfig{
			PS:    ps,
			Vocab: v,
			Opts: core.Options{
				MinSupport:       *support,
				MinDistinctUsers: *users,
			},
			Interval:      *interval,
			InvestigateAt: *investigate,
			RejectAt:      *reject,
		}
	}
	cons, err := netfed.NewConsolidator(opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("consolidator listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	quit := make(chan struct{})
	sigDone := make(chan struct{})
	go func() {
		defer close(sigDone)
		select {
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "primactl: %v, shutting down\n", s)
			cons.Close()
		case <-quit:
		}
	}()
	serveErr := cons.Serve(ln)
	close(quit)
	<-sigDone
	signal.Stop(sig)
	cons.Close()
	if serveErr != nil {
		return serveErr
	}

	st := cons.Stats()
	fmt.Printf("sites=%d batches=%d entries=%d duplicates=%d epochs=%d\n",
		st.Sites, st.Batches, st.Entries, st.Duplicates, st.Epochs)
	names := make([]string, 0, len(st.SiteSeqs))
	for name := range st.SiteSeqs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  site %-20s seq=%d\n", name, st.SiteSeqs[name])
	}
	if rounds := cons.History(); len(rounds) > 0 {
		var adopted, rejected, investigating int
		for _, r := range rounds {
			adopted += len(r.Adopted)
			rejected += len(r.Rejected)
			investigating += len(r.Investigating)
		}
		fmt.Printf("refinement: %d epochs, coverage %.1f%% -> %.1f%%, adopted=%d rejected=%d investigate=%d\n",
			len(rounds), rounds[0].CoverageBefore*100, rounds[len(rounds)-1].CoverageAfter*100,
			adopted, rejected, investigating)
	}
	if *export != "" {
		res := cons.Consolidate()
		f, err := os.Create(*export)
		if err != nil {
			return err
		}
		if err := audit.WriteJSONL(f, res.Entries); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("exported %d consolidated entries (%d duplicates, %d conflicts) to %s\n",
			len(res.Entries), res.Duplicates, len(res.Conflicts), *export)
	}
	return nil
}

// cmdFederateStream ships one site's audit log to a consolidator and
// waits for every entry to be acknowledged, surviving disconnects via
// the resume protocol.
func cmdFederateStream(args []string) error {
	fs := flag.NewFlagSet("federate stream", flag.ContinueOnError)
	addr := fs.String("addr", "", "consolidator address (required)")
	auditFile := fs.String("audit", "", "audit log file, .jsonl or .csv (required)")
	site := fs.String("site", "", "site name (default: most common site in the log, else \"site\")")
	batch := fs.Int("batch", 0, "entries per batch (default 4096)")
	window := fs.Int("window", 0, "unacked batches in flight (default 8)")
	timeout := fs.Duration("timeout", 0, "give up after this long (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" || *auditFile == "" {
		return fmt.Errorf("federate stream requires -addr and -audit")
	}
	entries, err := loadAudit(*auditFile)
	if err != nil {
		return err
	}
	name := *site
	if name == "" {
		name = commonSite(entries)
	}
	l := audit.NewLog(name)
	l.Grow(len(entries))
	if err := l.Append(entries...); err != nil {
		return err
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}
	dialer := &net.Dialer{Timeout: 10 * time.Second}
	streamer, err := netfed.NewStreamer(l, name, netfed.StreamerOptions{
		Dial:         func() (net.Conn, error) { return dialer.DialContext(ctx, "tcp", *addr) },
		BatchEntries: *batch,
		Window:       *window,
		OnError:      func(err error) { fmt.Fprintln(os.Stderr, "primactl: federate:", err) },
	})
	if err != nil {
		return err
	}

	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()
	runErr := make(chan error, 1)
	go func() {
		err := streamer.Run(runCtx)
		runErr <- err
		stopRun() // unblock Drain if Run hit a terminal fault
	}()
	drainErr := streamer.Drain(runCtx)
	stopRun()
	if err := <-runErr; err != nil {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("interrupted before the log drained: %w", drainErr)
	}

	st := streamer.Stats()
	fmt.Printf("streamed %d entries from site %q in %d batches (%d bytes on the wire)\n",
		l.Seq(), name, st.Batches, st.Bytes)
	fmt.Printf("acked=%d reconnects=%d retransmits=%d lag p50=%s p99=%s\n",
		st.Acked, st.Reconnects, st.Retransmits, st.LagP50, st.LagP99)
	return nil
}

// commonSite picks the most frequent non-empty Site in the entries as
// the stream's site name, so plain exports stream without flags.
func commonSite(entries []audit.Entry) string {
	counts := make(map[string]int)
	for _, e := range entries {
		if e.Site != "" {
			counts[e.Site]++
		}
	}
	best, bestN := "site", 0
	for name, n := range counts {
		if n > bestN || (n == bestN && name < best) {
			best, bestN = name, n
		}
	}
	return best
}
