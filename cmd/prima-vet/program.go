package main

import (
	"path/filepath"
	"sort"
)

// Program is the whole-program view the interprocedural analyzers
// (lockorder, phileak, arenasafe) run over: every loaded module
// package plus the call graph spanning them. Per-package analyzers
// keep seeing individual Packages; a Program is built once per
// prima-vet invocation after all requested packages load.
type Program struct {
	Loader *Loader
	// Pkgs are the packages named on the command line — findings are
	// reported only inside their directories.
	Pkgs []*Package
	// All is Pkgs plus every module-internal dependency the loader
	// pulled in transitively, sorted by import path.
	All []*Package
	CG  *CallGraph
	// Markers are the repo's analysis annotations (prima:phi,
	// prima:redact, prima:arena) collected across All.
	Markers *Markers

	ssaCache map[*CGNode]*FuncSSA
}

// SSA returns the (memoized) SSA form of one call-graph node. All
// layer-3 analyzers and the rebased lockorder/phileak share the cache,
// so each function body is converted at most once per invocation.
func (prog *Program) SSA(n *CGNode) *FuncSSA {
	if f, ok := prog.ssaCache[n]; ok {
		return f
	}
	if prog.ssaCache == nil {
		prog.ssaCache = make(map[*CGNode]*FuncSSA)
	}
	f := BuildSSA(n)
	prog.ssaCache[n] = f
	return f
}

// BuildProgram assembles the whole-program view from the loader's
// cache after the requested packages have been loaded.
func BuildProgram(l *Loader, requested []*Package) *Program {
	all := l.Cached()
	prog := &Program{
		Loader: l,
		Pkgs:   requested,
		All:    all,
		CG:     BuildCallGraph(all),
	}
	prog.Markers = collectMarkers(all)
	return prog
}

// reported keeps program-level findings inside the requested package
// directories: dependencies pulled in only for type information are
// analyzed (their bodies participate in the call graph) but not
// reported on.
func (prog *Program) reported(fs []Finding) []Finding {
	dirs := make(map[string]bool, len(prog.Pkgs))
	for _, p := range prog.Pkgs {
		dirs[p.Dir] = true
	}
	var out []Finding
	for _, f := range fs {
		if dirs[dirOf(f.Pos.Filename)] {
			out = append(out, f)
		}
	}
	return out
}

func dirOf(filename string) string { return filepath.Dir(filename) }

// Cached returns every module package the loader has materialized,
// sorted by import path for deterministic analysis order.
func (l *Loader) Cached() []*Package {
	var out []*Package
	for _, p := range l.cache {
		if len(p.Files) > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
