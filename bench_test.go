package prima

// The benchmark harness regenerates every quantitative artifact of
// the paper plus the synthetic evaluation DESIGN.md derives from the
// architecture. One benchmark per experiment row (E1–E9); see
// EXPERIMENTS.md for the recorded paper-vs-measured outcomes.
//
//	go test -bench=. -benchmem .

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/consent"
	"repro/internal/core"
	"repro/internal/hdb"
	"repro/internal/lint"
	"repro/internal/minidb"
	"repro/internal/mining"
	"repro/internal/netfed"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/vocab"
	"repro/internal/workflow"
)

// ---- E1: vocabulary range expansion (Fig. 1 / Definitions 3, 8) ----

// syntheticVocab builds a data hierarchy with the given branching and
// depth (leaves = branch^depth).
func syntheticVocab(branch, depth int) *vocab.Vocabulary {
	v := vocab.New()
	h := v.MustAttribute("data")
	h.MustAdd("", "root")
	frontier := []string{"root"}
	id := 0
	for d := 0; d < depth; d++ {
		var next []string
		for _, p := range frontier {
			for b := 0; b < branch; b++ {
				id++
				name := fmt.Sprintf("n%d", id)
				h.MustAdd(p, name)
				next = append(next, name)
			}
		}
		frontier = next
	}
	v.MustAttribute("purpose").MustAdd("", "treatment")
	v.MustAttribute("authorized").MustAdd("", "nurse")
	return v
}

func BenchmarkE1_RangeExpansion(b *testing.B) {
	for _, cfg := range []struct{ branch, depth int }{
		{2, 4}, {4, 4}, {4, 6}, {8, 4},
	} {
		v := syntheticVocab(cfg.branch, cfg.depth)
		p := policy.FromRules("PS", policy.MustRule(
			policy.T("data", "root"),
			policy.T("purpose", "treatment"),
			policy.T("authorized", "nurse"),
		))
		name := fmt.Sprintf("branch=%d/depth=%d", cfg.branch, cfg.depth)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rg, err := policy.NewRange(p, v, 0)
				if err != nil {
					b.Fatal(err)
				}
				if rg.Len() == 0 {
					b.Fatal("empty range")
				}
			}
		})
	}
}

// ---- E2: Figure 3 coverage (50 %) ----

func BenchmarkE2_Figure3Coverage(b *testing.B) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	al := scenario.Figure3AuditPolicy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := core.ComputeCoverage(ps, al, v)
		if err != nil {
			b.Fatal(err)
		}
		if c != 0.5 {
			b.Fatalf("coverage = %v, want 0.5 (paper Figure 3)", c)
		}
	}
}

// ---- E3: Table 1 refinement (30 % -> pattern -> 80 %) ----

func BenchmarkE3_Table1Refinement(b *testing.B) {
	v := scenario.Vocabulary()
	entries := scenario.Table1()
	for _, ex := range []struct {
		name string
		x    core.PatternExtractor
	}{
		{"sql", core.SQLExtractor{}},
		{"native", core.NativeExtractor{}},
		{"apriori", mining.Extractor{}},
	} {
		b.Run(ex.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ps := scenario.PolicyStore()
				pats, err := core.Refinement(ps, entries, v, core.Options{Extractor: ex.x})
				if err != nil {
					b.Fatal(err)
				}
				if len(pats) != 1 || pats[0].Support != 5 {
					b.Fatalf("patterns = %v, want the §5 result", pats)
				}
			}
		})
	}
}

// ---- E4: coverage vs refinement epochs (quantified Figure 2) ----

func BenchmarkE4_RefinementEpochs(b *testing.B) {
	b.ReportAllocs()
	// Expected traffic volume over the whole horizon, derivable from
	// the config the way a deployment would size its ingest capacity.
	sizing := workflow.DefaultHospital(42)
	perDay := sizing.DocumentedPerDay
	for _, bh := range append(append([]workflow.Behavior{}, sizing.Informal...), sizing.Violations...) {
		perDay += bh.PerDay
	}
	hint := int(perDay * 4 * 10 * 5 / 4)
	var buf []audit.Entry
	// The log is the long-lived piece of the streaming pipeline:
	// allocate and size it once, recycle it per iteration with Reset
	// (which keeps shard capacity), and measure the steady-state cost
	// of ingesting and refining four epochs.
	log := audit.NewLog("ward")
	log.Grow(hint)
	for i := 0; i < b.N; i++ {
		log.Reset()
		cfg := workflow.DefaultHospital(42)
		sim, err := workflow.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// The streaming pipeline: simulated traffic is ingested into
		// the sharded log and each epoch's refinement round is served
		// from the incremental index in O(groups) rather than
		// rescanning the snapshot.
		sess := core.NewStreamSession(log, cfg.Policy, cfg.Vocab, core.Options{})
		var first, last float64
		for epoch := 0; epoch < 4; epoch++ {
			entries, err := sim.RunInto(buf[:0], epoch*10, 10)
			if err != nil {
				b.Fatal(err)
			}
			buf = entries
			if err := log.Append(entries...); err != nil {
				b.Fatal(err)
			}
			round, err := sess.Run(core.AdoptAll)
			if err != nil {
				b.Fatal(err)
			}
			if epoch == 0 {
				first = round.CoverageBefore
			}
			last = round.CoverageBefore
		}
		if last <= first {
			b.Fatalf("coverage did not rise: %v -> %v", first, last)
		}
	}
}

// ---- E5: threshold sensitivity (precision/recall vs f) ----

func BenchmarkE5_ThresholdSweep(b *testing.B) {
	cfg := workflow.DefaultHospital(42)
	sim, err := workflow.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	entries, err := sim.Run(0, 30)
	if err != nil {
		b.Fatal(err)
	}
	informal, violations := sim.GroundTruth()
	// Informal supports over 30 days cluster around 120–240
	// (rates 4–8/day), so the sweep spans well below and above.
	for _, f := range []int{2, 5, 20, 200, 500} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pats, err := core.Refinement(cfg.Policy, entries, cfg.Vocab,
					core.Options{MinSupport: f, Extractor: core.NativeExtractor{}})
				if err != nil {
					b.Fatal(err)
				}
				var found []policy.Rule
				for _, p := range pats {
					found = append(found, p.Rule)
				}
				sc := workflow.Evaluate(found, informal, violations)
				// Shape check: recall falls as f rises past the
				// monthly support of the practices (120–240 here).
				if f <= 5 && sc.Recall < 1 {
					b.Fatalf("f=%d: recall %v", f, sc.Recall)
				}
				if f == 200 && sc.Recall >= 1 {
					b.Fatalf("f=%d: recall did not degrade (%v)", f, sc.Recall)
				}
				if f >= 500 && sc.Recall > 0 {
					b.Fatalf("f=%d: recall unexpectedly high (%v)", f, sc.Recall)
				}
			}
		})
	}
}

// ---- E6: Apriori vs plain SQL extraction (§5 proposal) ----

func e6Entries() []audit.Entry {
	// A (data, role) correlation smeared over many purposes: below
	// the per-tuple threshold, above the pair threshold.
	base := time.Date(2007, 4, 1, 8, 0, 0, 0, time.UTC)
	purposes := []string{"treatment", "registration", "billing", "research"}
	users := []string{"a", "b", "c"}
	var out []audit.Entry
	for i := 0; i < 12; i++ {
		out = append(out, audit.Entry{
			Time: base.Add(time.Duration(i) * time.Minute), Op: audit.Allow,
			User: users[i%len(users)], Data: "lab_result",
			Purpose: purposes[i%len(purposes)], Authorized: "lab_tech",
			Status: audit.Exception,
		})
	}
	return out
}

func BenchmarkE6_AprioriVsSQL(b *testing.B) {
	entries := e6Entries()
	b.Run("sql-misses", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pats, err := core.ExtractPatterns(entries, core.Options{MinSupport: 5})
			if err != nil {
				b.Fatal(err)
			}
			if len(pats) != 0 {
				b.Fatalf("exact SQL should miss the smeared pattern: %v", pats)
			}
		}
	})
	b.Run("apriori-finds", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			corrs, err := mining.Correlations(entries, nil, 5)
			if err != nil {
				b.Fatal(err)
			}
			found := false
			for _, c := range corrs {
				if c.Items.Key() == "authorized=lab_tech&data=lab_result" {
					found = true
				}
			}
			if !found {
				b.Fatal("Apriori missed the pair correlation")
			}
		}
	})
}

// ---- E7: coverage scaling (Algorithm 1 cost) ----

func BenchmarkE7_CoverageScaling(b *testing.B) {
	v := scenario.Vocabulary()
	dataVals := v.Hierarchy("data").Leaves()
	purposeVals := v.Hierarchy("purpose").Leaves()
	roleVals := v.Hierarchy("authorized").Leaves()
	mkPolicy := func(name string, n int) *policy.Policy {
		p := policy.New(name)
		for i := 0; i < n; i++ {
			p.Add(policy.MustRule(
				policy.T("data", dataVals[i%len(dataVals)]),
				policy.T("purpose", purposeVals[(i/len(dataVals))%len(purposeVals)]),
				policy.T("authorized", roleVals[(i/7)%len(roleVals)]),
			))
		}
		return p
	}
	for _, n := range []int{10, 100, 1000, 10000} {
		// Rules deduplicate over a finite vocabulary; scale by rows
		// instead: the audit side is a log snapshot converted to
		// rules, so benchmark EntryCoverage over n rows.
		entries := make([]audit.Entry, n)
		base := time.Date(2007, 3, 1, 0, 0, 0, 0, time.UTC)
		for i := range entries {
			entries[i] = audit.Entry{
				Time: base.Add(time.Duration(i) * time.Second), Op: audit.Allow,
				User: fmt.Sprintf("u%d", i%97),
				Data: dataVals[i%len(dataVals)], Purpose: purposeVals[i%len(purposeVals)],
				Authorized: roleVals[i%len(roleVals)], Status: audit.Exception,
			}
		}
		ps := mkPolicy("PS", 50)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.EntryCoverage(ps, entries, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E8: Active Enforcement overhead (Fig. 5 "minimal impact") ----

func benchSystem(b *testing.B) *System {
	b.Helper()
	sys := New(Config{Policy: scenario.PolicyStore()})
	sys.DB().MustExec(`CREATE TABLE records (patient TEXT, referral TEXT, psychiatry TEXT)`)
	for i := 0; i < 64; i++ {
		sys.DB().MustExec(fmt.Sprintf(
			`INSERT INTO records VALUES ('p%d', 'consult %d', 'note %d')`, i, i, i))
	}
	if err := sys.RegisterTable(TableMapping{
		Table: "records", PatientCol: "patient",
		Categories: map[string]string{"referral": "referral", "psychiatry": "psychiatry"},
	}); err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkE8_EnforcementOverhead(b *testing.B) {
	const sql = `SELECT patient, referral FROM records WHERE patient <> 'p0'`
	b.Run("raw", func(b *testing.B) {
		sys := benchSystem(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.DB().Exec(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enforced", func(b *testing.B) {
		sys := benchSystem(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sys.Query("tim", "nurse", "treatment", sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enforced+consent", func(b *testing.B) {
		sys := benchSystem(b)
		if err := sys.SetConsent("p1", "clinical", "", OptOut, time.Now()); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sys.Query("tim", "nurse", "treatment", sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("breakglass", func(b *testing.B) {
		sys := benchSystem(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sys.BreakGlass("tim", "nurse", "registration", "bench", sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E9: audit federation throughput ----

func BenchmarkE9_Federation(b *testing.B) {
	const total = 4096
	base := time.Date(2007, 3, 1, 0, 0, 0, 0, time.UTC)
	for _, sites := range []int{1, 4, 16} {
		logs := make([]*audit.Log, sites)
		for s := range logs {
			logs[s] = audit.NewLog(fmt.Sprintf("site-%d", s))
		}
		for i := 0; i < total; i++ {
			e := audit.Entry{
				Time: base.Add(time.Duration(i) * time.Second), Op: audit.Allow,
				User: fmt.Sprintf("u%d", i%31), Data: "referral",
				Purpose: "registration", Authorized: "nurse", Status: audit.Exception,
			}
			if err := logs[i%sites].Append(e); err != nil {
				b.Fatal(err)
			}
		}
		fed := audit.NewFederation(logs...)
		b.Run(fmt.Sprintf("sites=%d", sites), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := fed.Consolidate()
				if len(res.Entries) != total {
					b.Fatalf("consolidated %d, want %d", len(res.Entries), total)
				}
			}
		})
	}
}

// ---- Ablations: design choices called out in DESIGN.md ----

// BenchmarkA1_IndexAblation measures the minidb equality-index fast
// path against a full scan at several table sizes.
func BenchmarkA1_IndexAblation(b *testing.B) {
	for _, rows := range []int{1000, 10000} {
		for _, indexed := range []bool{false, true} {
			db := minidb.NewDatabase()
			db.MustExec(`CREATE TABLE t (id INT, usr TEXT, n INT)`)
			for i := 0; i < rows; i++ {
				db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'u%d', %d)`, i, i%97, i))
			}
			if indexed {
				db.MustExec(`CREATE INDEX usr_ix ON t (usr)`)
				db.MustExec(`SELECT id FROM t WHERE usr = 'u13'`) // build once
			}
			name := fmt.Sprintf("rows=%d/indexed=%v", rows, indexed)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := db.Exec(`SELECT id FROM t WHERE usr = 'u13'`)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Rows) == 0 {
						b.Fatal("no rows")
					}
				}
			})
		}
	}
}

// BenchmarkA2_PolicyRangeCache measures the enforcer's policy-range
// cache: a stable policy hits the cache, while mutating the policy
// between queries forces recomputation every time.
func BenchmarkA2_PolicyRangeCache(b *testing.B) {
	const sql = `SELECT referral FROM records`
	b.Run("cache-hit", func(b *testing.B) {
		sys := benchSystem(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sys.Query("tim", "nurse", "treatment", sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-miss", func(b *testing.B) {
		sys := benchSystem(b)
		flip := policy.MustRule(
			policy.T("data", "payment_history"),
			policy.T("purpose", "billing"),
			policy.T("authorized", "manager"),
		)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				sys.PolicyStore().Add(flip)
			} else {
				sys.PolicyStore().Remove(flip)
			}
			if _, _, err := sys.Query("tim", "nurse", "treatment", sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkA3_Generalization measures the policy-compression pass and
// the downstream effect of a smaller store: coverage computation over
// the generalized policy versus the raw adopted-leaf policy.
func BenchmarkA3_Generalization(b *testing.B) {
	v := scenario.Vocabulary()
	// A store that adopted every ground rule one by one.
	leaves := policy.New("PS")
	for _, d := range v.Hierarchy("data").Leaves() {
		for _, p := range v.Hierarchy("purpose").Leaves() {
			for _, a := range v.Hierarchy("authorized").Leaves() {
				leaves.Add(policy.MustRule(
					policy.T("data", d), policy.T("purpose", p), policy.T("authorized", a)))
			}
		}
	}
	res, err := core.Generalize(leaves, v)
	if err != nil {
		b.Fatal(err)
	}
	if res.RulesAfter >= res.RulesBefore {
		b.Fatalf("generalization had no effect: %+v", res)
	}
	al := scenario.Figure3AuditPolicy()
	b.Run("pass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Generalize(leaves, v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("coverage/raw-leaves", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ComputeCoverage(leaves, al, v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("coverage/generalized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ComputeCoverage(res.Policy, al, v); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E10: organization scale (multi-department refinement) ----

func BenchmarkE10_OrganizationScale(b *testing.B) {
	for _, depts := range []int{1, 4, 16} {
		cfg := workflow.LargeHospital(42, depts)
		sim, err := workflow.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		entries, err := sim.Run(0, 15)
		if err != nil {
			b.Fatal(err)
		}
		informal, violations := sim.GroundTruth()
		b.Run(fmt.Sprintf("departments=%d", depts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pats, err := core.Refinement(cfg.Policy, entries, cfg.Vocab,
					core.Options{Extractor: core.NativeExtractor{}})
				if err != nil {
					b.Fatal(err)
				}
				var found []policy.Rule
				for _, p := range pats {
					found = append(found, p.Rule)
				}
				sc := workflow.Evaluate(found, informal, violations)
				if sc.Recall != 1 {
					b.Fatalf("departments=%d: recall %v", depts, sc.Recall)
				}
				// The documented scale caveat: with >1 department the
				// correlated single-user violations aggregate into a
				// false positive (see EXPERIMENTS.md).
				if depts == 1 && sc.FalsePositives != 0 {
					b.Fatalf("departments=1: false positives %d", sc.FalsePositives)
				}
			}
		})
	}
}

// ---- E11: suspicion-guided review vs naive adoption ----

// e11Entries builds a log where the distinct-user condition alone is
// fooled: two colluding users browse psychiatry at night, alongside a
// genuine multi-user daytime practice.
func e11Entries() []audit.Entry {
	base := time.Date(2007, 3, 5, 0, 0, 0, 0, time.UTC)
	var out []audit.Entry
	for i := 0; i < 12; i++ {
		out = append(out, audit.Entry{
			Time: base.Add(time.Duration(i)*24*time.Hour + 10*time.Hour),
			Op:   audit.Allow, User: []string{"a", "b", "c", "d"}[i%4],
			Data: "referral", Purpose: "registration", Authorized: "nurse",
			Status: audit.Exception,
		})
	}
	for i := 0; i < 8; i++ {
		out = append(out, audit.Entry{
			Time: base.Add(time.Duration(i)*24*time.Hour + 23*time.Hour),
			Op:   audit.Allow, User: []string{"eve", "mallory"}[i%2],
			Data: "psychiatry", Purpose: "research", Authorized: "clerk",
			Status: audit.Exception,
		})
	}
	return out
}

func BenchmarkE11_SuspicionReview(b *testing.B) {
	v := scenario.Vocabulary()
	entries := e11Entries()
	informal := []policy.Rule{policy.MustRule(
		policy.T("data", "referral"), policy.T("purpose", "registration"), policy.T("authorized", "nurse"))}
	violations := []policy.Rule{policy.MustRule(
		policy.T("data", "psychiatry"), policy.T("purpose", "research"), policy.T("authorized", "clerk"))}
	run := func(b *testing.B, reviewer core.Reviewer, wantPrecision float64) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess := core.NewSession(scenario.PolicyStore(), v, core.Options{})
			round, err := sess.Run(entries, reviewer)
			if err != nil {
				b.Fatal(err)
			}
			sc := workflow.Evaluate(round.Adopted, informal, violations)
			if sc.Recall != 1 {
				b.Fatalf("recall = %v", sc.Recall)
			}
			if sc.Precision != wantPrecision {
				b.Fatalf("precision = %v, want %v", sc.Precision, wantPrecision)
			}
		}
	}
	b.Run("naive-adopt-all", func(b *testing.B) {
		// The colluding night-time violation passes COUNT(DISTINCT
		// user) > 1 and is wrongly adopted: precision 0.5.
		run(b, core.AdoptAll, 0.5)
	})
	b.Run("suspicion-reviewer", func(b *testing.B) {
		run(b, core.SuspicionReviewer(core.Filter(entries), 0.5, 0.9), 1.0)
	})
}

// ---- E10b: audit ingestion throughput (sharded log + async sink) ----

// ingestResetEvery bounds benchmark memory: every ingestion variant
// discards its accumulated entries at the same cadence, so retention
// cost is identical across sub-benchmarks and only the append path
// differs.
const ingestResetEvery = 1 << 18

// mutexLog replicates the pre-streaming audit store byte for byte: a
// single mutex guarding the entry slice, with each entry validated
// and JSON-encoded to the sink by a freshly allocated encoder inside
// the critical section — the design the sharded log replaces.
type mutexLog struct {
	mu      sync.Mutex
	entries []audit.Entry
	w       io.Writer
}

func (l *mutexLog) append(e audit.Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	l.entries = append(l.entries, e)
	if l.w != nil {
		_ = json.NewEncoder(l.w).Encode(e)
	}
	if len(l.entries) >= ingestResetEvery {
		l.entries = l.entries[:0]
	}
	l.mu.Unlock()
	return nil
}

// appendBatch mirrors the seed's variadic Append exactly: validate
// everything, then one lock, per-entry site-stamp-and-encode inside
// the critical section.
func (l *mutexLog) appendBatch(entries []audit.Entry) error {
	for i := range entries {
		if err := entries[i].Validate(); err != nil {
			return err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range entries {
		l.entries = append(l.entries, e)
		if l.w != nil {
			_ = json.NewEncoder(l.w).Encode(e)
		}
	}
	if len(l.entries) >= ingestResetEvery {
		l.entries = l.entries[:0]
	}
	return nil
}

// rewindWriter is a durable sink target that rewinds the backing file
// periodically so an ingestion benchmark's disk footprint stays
// bounded while every Write still pays the real syscall.
type rewindWriter struct {
	f *os.File
	n int64
}

func (w *rewindWriter) Write(p []byte) (int, error) {
	if w.n += int64(len(p)); w.n > 64<<20 {
		if _, err := w.f.Seek(0, io.SeekStart); err != nil {
			return 0, err
		}
		w.n = 0
	}
	return w.f.Write(p)
}

func benchSinkFile(b *testing.B) *rewindWriter {
	b.Helper()
	f, err := os.CreateTemp(b.TempDir(), "audit-*.jsonl")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return &rewindWriter{f: f}
}

// ingestPool precomputes a cycle of valid entries so the benchmark
// loop measures the log, not entry construction.
func ingestPool() []audit.Entry {
	v := scenario.Vocabulary()
	dataVals := v.Hierarchy("data").Leaves()
	purposeVals := v.Hierarchy("purpose").Leaves()
	roleVals := v.Hierarchy("authorized").Leaves()
	base := time.Date(2007, 3, 1, 0, 0, 0, 0, time.UTC)
	pool := make([]audit.Entry, 4096)
	for i := range pool {
		st := audit.Regular
		if i%3 == 0 {
			st = audit.Exception
		}
		pool[i] = audit.Entry{
			Time: base.Add(time.Duration(i) * time.Second), Op: audit.Allow,
			User:       fmt.Sprintf("u%d", i%97),
			Data:       dataVals[i%len(dataVals)],
			Purpose:    purposeVals[i%len(purposeVals)],
			Authorized: roleVals[i%len(roleVals)],
			Status:     st,
		}
	}
	return pool
}

func BenchmarkE10_AuditIngestion(b *testing.B) {
	pool := ingestPool()
	mask := uint64(len(pool) - 1)
	b.Run("baseline-mutex", func(b *testing.B) {
		l := &mutexLog{w: benchSinkFile(b)}
		var ctr atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := l.append(pool[ctr.Add(1)&mask]); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("baseline-mutex/batch=256", func(b *testing.B) {
		l := &mutexLog{w: benchSinkFile(b)}
		b.ReportAllocs()
		for n := 0; n < b.N; n += 256 {
			k := 256
			if b.N-n < k {
				k = b.N - n
			}
			off := n % len(pool)
			if off+k > len(pool) {
				off = 0
			}
			if err := l.appendBatch(pool[off : off+k]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		l := audit.NewLog("ward")
		var ctr atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				n := ctr.Add(1)
				if err := l.Append(pool[n&mask]); err != nil {
					b.Fatal(err)
				}
				if n%ingestResetEvery == 0 {
					l.Reset()
				}
			}
		})
	})
	b.Run("sharded/batch=256", func(b *testing.B) {
		// Batched ingestion is the pipeline's bulk mode (epoch loads,
		// feed replay): one sequence-range reservation and one lock
		// acquisition per stripe per batch.
		l := audit.NewLog("ward")
		b.ReportAllocs()
		total := 0
		for n := 0; n < b.N; n += 256 {
			k := 256
			if b.N-n < k {
				k = b.N - n
			}
			off := n % len(pool)
			if off+k > len(pool) {
				off = 0
			}
			if err := l.Append(pool[off : off+k]...); err != nil {
				b.Fatal(err)
			}
			if total += k; total >= ingestResetEvery {
				l.Reset()
				total = 0
			}
		}
	})
	b.Run("sharded+sink", func(b *testing.B) {
		l := audit.NewLog("ward")
		l.SetSink(benchSinkFile(b), nil)
		var ctr atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				n := ctr.Add(1)
				if err := l.Append(pool[n&mask]); err != nil {
					b.Fatal(err)
				}
				if n%ingestResetEvery == 0 {
					l.Reset()
				}
			}
		})
		b.StopTimer()
		l.CloseSink()
	})
}

// ---- E11b: incremental refinement epoch cost vs. log size ----

// BenchmarkE11_IncrementalRefinement measures one refinement round at
// increasing log sizes. The incremental path reads the per-shard
// group index (O(groups)); the rescan path re-derives the same round
// from a full snapshot (O(rows)), which is what the sequential
// Session does every epoch.
func BenchmarkE11_IncrementalRefinement(b *testing.B) {
	v := scenario.Vocabulary()
	pool := ingestPool()
	investigate := core.ReviewerFunc(func(core.Pattern) core.Decision {
		return core.Investigate
	})
	for _, n := range []int{1000, 10000, 100000} {
		l := audit.NewLog("ward")
		batch := make([]audit.Entry, 0, 1024)
		for i := 0; i < n; i++ {
			batch = append(batch, pool[i%len(pool)])
			if len(batch) == cap(batch) || i == n-1 {
				if err := l.Append(batch...); err != nil {
					b.Fatal(err)
				}
				batch = batch[:0]
			}
		}
		b.Run(fmt.Sprintf("rows=%d/incremental", n), func(b *testing.B) {
			sess := core.NewStreamSession(l, scenario.PolicyStore(), v, core.Options{})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Run(investigate); err != nil {
					b.Fatal(err)
				}
				sess.History = sess.History[:0]
			}
		})
		b.Run(fmt.Sprintf("rows=%d/rescan", n), func(b *testing.B) {
			ps := scenario.PolicyStore()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				snap := l.Snapshot()
				if _, err := core.EntryCoverage(ps, snap, v); err != nil {
					b.Fatal(err)
				}
				if _, err := core.Refinement(ps, snap, v, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E12: enforced query throughput on the compiled fast path ----

// qpsSystem is the E12/E13 fixture: a small clinical table, so the
// measurement sits in the per-query enforcement hot loop (point
// queries from a clinical UI) rather than in table-scan throughput.
func qpsSystem(b *testing.B) *System {
	b.Helper()
	sys := New(Config{Policy: scenario.PolicyStore()})
	sys.DB().MustExec(`CREATE TABLE records (patient TEXT, referral TEXT, psychiatry TEXT)`)
	for i := 0; i < 8; i++ {
		sys.DB().MustExec(fmt.Sprintf(
			`INSERT INTO records VALUES ('p%d', 'consult %d', 'note %d')`, i, i, i))
	}
	if err := sys.RegisterTable(TableMapping{
		Table: "records", PatientCol: "patient",
		Categories: map[string]string{"referral": "referral", "psychiatry": "psychiatry"},
	}); err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkE12_EnforcedQPS measures the per-query enforcement hot
// loop: the reference interpreter (slowpath), the compiled path with
// a cold plan cache (cold — plans and snapshot flushed every
// iteration), and the steady state (warm), each with and without
// consent filtering in play. The decision/* pair isolates the
// enforcement decision layer itself (no audit log, LIMIT 0 execution)
// — that is where the compiled snapshot pays off hardest, since
// statement execution and audit append are identical on both paths.
func BenchmarkE12_EnforcedQPS(b *testing.B) {
	const sql = `SELECT patient, referral, psychiatry FROM records WHERE patient <> 'p0'`
	run := func(b *testing.B, sys *System, flush bool) {
		b.Helper()
		// Prime caches (a no-op for the slow path) so "warm" measures
		// the steady state.
		if _, _, err := sys.Query("tim", "nurse", "treatment", sql); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if flush {
				sys.Enforcer().FlushPlans()
			}
			if _, _, err := sys.Query("tim", "nurse", "treatment", sql); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("slowpath", func(b *testing.B) {
		sys := qpsSystem(b)
		sys.SetEnforcementFastPath(false)
		run(b, sys, false)
	})
	b.Run("cold", func(b *testing.B) {
		run(b, qpsSystem(b), true)
	})
	b.Run("warm", func(b *testing.B) {
		run(b, qpsSystem(b), false)
	})
	b.Run("slowpath+consent", func(b *testing.B) {
		sys := qpsSystem(b)
		sys.SetEnforcementFastPath(false)
		if err := sys.SetConsent("p1", "clinical", "", OptOut, time.Now()); err != nil {
			b.Fatal(err)
		}
		run(b, sys, false)
	})
	b.Run("warm+consent", func(b *testing.B) {
		sys := qpsSystem(b)
		if err := sys.SetConsent("p1", "clinical", "", OptOut, time.Now()); err != nil {
			b.Fatal(err)
		}
		run(b, sys, false)
	})

	// Decision layer in isolation: nil audit log and a LIMIT 0
	// statement reduce the shared tail (execution + audit) to its
	// floor, leaving parse + category analysis + policy/consent
	// decisions as the measured quantity.
	decide := func(b *testing.B, fast bool) {
		b.Helper()
		const dsql = `SELECT patient, referral, psychiatry FROM records LIMIT 0`
		db := minidb.NewDatabase()
		db.MustExec(`CREATE TABLE records (patient TEXT, referral TEXT, psychiatry TEXT)`)
		db.MustExec(`INSERT INTO records VALUES ('p1', 'consult', 'note')`)
		v := vocab.Sample()
		enf := hdb.New(db, scenario.PolicyStore(), v, consent.NewStore(v, true), nil)
		if err := enf.RegisterTable(hdb.TableMapping{
			Table: "records", PatientCol: "patient",
			Categories: map[string]string{"referral": "referral", "psychiatry": "psychiatry"},
		}); err != nil {
			b.Fatal(err)
		}
		enf.SetFastPath(fast)
		p := hdb.Principal{User: "tim", Role: "nurse"}
		if _, _, err := enf.Query(p, "treatment", dsql); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := enf.Query(p, "treatment", dsql); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("decision/slowpath", func(b *testing.B) { decide(b, false) })
	b.Run("decision/warm", func(b *testing.B) { decide(b, true) })
}

// ---- E14: symbolic policy analysis on a 100k-node vocabulary ----

// BenchmarkE14_SymbolicAnalysis measures the symbolic coverage engine
// at SNOMED/ICD scale: vocab.Synthetic(10, 5) carries a 111,111-node
// data hierarchy with 100,000 ground values, so a single subtree rule
// grounds to 10,000 × |purpose| × |authorized| rules and the
// materializing path is simply not runnable. The cold variant pays
// symbolic compilation plus the union-cardinality sweep every
// iteration; warm hits the generation-validated SymCache (the steady
// state of the coverage loop); lint runs the full PL001–PL008 pass.
// The small/{symbolic,materialized} pair is the differential floor —
// the largest scale the ground-range oracle still handles — so the
// speedup and its growth with vocabulary size are both recorded.
func BenchmarkE14_SymbolicAnalysis(b *testing.B) {
	big := vocab.Synthetic(10, 5)
	ps := policy.FromRules("PS",
		policy.MustRule(policy.T("data", "n1"), policy.T("purpose", "treatment"), policy.T("authorized", "nurse")),
		policy.MustRule(policy.T("data", "n23"), policy.T("purpose", "healthcare"), policy.T("authorized", "medical_staff")),
		policy.MustRule(policy.T("data", "n4"), policy.T("purpose", "billing"), policy.T("authorized", "clerk")),
	)
	al := policy.FromRules("AL",
		policy.MustRule(policy.T("data", "n0"), policy.T("purpose", "treatment"), policy.T("authorized", "nurse")),
		policy.MustRule(policy.T("data", "n2"), policy.T("purpose", "billing"), policy.T("authorized", "clerk")),
	)
	// Prime the Euler-tour interval numbering once so the loops below
	// measure the algebra, not the one-time renumbering.
	if c, err := core.ComputeCoverage(ps, al, big); err != nil || c <= 0 || c > 1 {
		b.Fatalf("coverage = %v, %v", c, err)
	}

	b.Run("coverage/warm-100k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := core.ComputeCoverage(ps, al, big)
			if err != nil {
				b.Fatal(err)
			}
			if c <= 0 || c > 1 {
				b.Fatalf("coverage = %v", c)
			}
		}
	})
	b.Run("coverage/cold-100k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sx := policy.NewSymRange(ps, big)
			sy := policy.NewSymRange(al, big)
			if sy.Card() == 0 || sx.IntersectCard(sy) == 0 {
				b.Fatal("empty symbolic range")
			}
		}
	})
	b.Run("lint-100k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep := lint.Policy(ps, big)
			if len(rep.Findings) == 0 {
				b.Fatal("lint found nothing on the synthetic policy")
			}
		}
	})

	// Differential floor: 1,296 ground data values is the comfortable
	// ceiling of the materializing oracle (15,552 ground rules per
	// full-subtree rule); the symbolic path answers the same query
	// without expanding any of them.
	small := vocab.Synthetic(6, 4)
	sps := policy.FromRules("PS",
		policy.MustRule(policy.T("data", "n1"), policy.T("purpose", "treatment"), policy.T("authorized", "nurse")),
		policy.MustRule(policy.T("data", "n23"), policy.T("purpose", "healthcare"), policy.T("authorized", "medical_staff")),
	)
	sal := policy.FromRules("AL",
		policy.MustRule(policy.T("data", "n0"), policy.T("purpose", "treatment"), policy.T("authorized", "nurse")),
	)
	for _, mode := range []struct {
		name     string
		symbolic bool
	}{{"small/symbolic", true}, {"small/materialized", false}} {
		b.Run("coverage/"+mode.name, func(b *testing.B) {
			prev := core.SetSymbolicCoverage(mode.symbolic)
			defer core.SetSymbolicCoverage(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := core.ComputeCoverage(sps, sal, small)
				if err != nil {
					b.Fatal(err)
				}
				if c <= 0 || c > 1 {
					b.Fatalf("coverage = %v", c)
				}
			}
		})
	}
}

// ---- E13: fast-path scaling under concurrent mutation ----

// BenchmarkE13_ConcurrentEnforcement drives parallel enforced queries
// at GOMAXPROCS 1, 4 and 8 while a background writer churns the
// policy store and the consent registry (invalidating the RCU
// decision snapshot a few thousand times per second). Readers take no
// locks, so only the audit stripes and snapshot rebuilds are shared;
// each worker queries as its own clinician, which distributes the
// audit appends across stripes the way real traffic does. On a
// multi-core host the target is near-linear scaling to 4 cores; on a
// single-core host (the recorded BENCH_5.json run) the useful signal
// is that ns/op stays flat as GOMAXPROCS oversubscribes — contention
// does not collapse throughput.
func BenchmarkE13_ConcurrentEnforcement(b *testing.B) {
	const sql = `SELECT patient, referral, psychiatry FROM records WHERE patient <> 'p0'`
	churn := policy.MustRule(
		policy.T("data", "payment_history"),
		policy.T("purpose", "billing"),
		policy.T("authorized", "manager"),
	)
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			sys := qpsSystem(b)
			if _, _, err := sys.Query("tim", "nurse", "treatment", sql); err != nil {
				b.Fatal(err)
			}
			var stop atomic.Bool
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					sys.PolicyStore().Add(churn)
					sys.PolicyStore().Remove(churn)
					_ = sys.SetConsent("p9", "payment_history", "", OptOut, time.Now())
					sys.RevokeConsent("p9")
					time.Sleep(200 * time.Microsecond)
				}
			}()
			var worker atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				user := fmt.Sprintf("clin%d", worker.Add(1))
				for pb.Next() {
					if _, _, err := sys.Query(user, "nurse", "treatment", sql); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
		})
	}
}

// ---- E15: mining at audit scale (parallel FP-growth, incremental epochs) ----

// miningPool returns n synthetic practice rows shaped like a
// consolidated hospital log: every row is exception-based informal
// practice over a bounded behaviour vocabulary (12 data x 8 purpose x
// 6 role = 576 distinct projections, 24 staff, each projection
// exercised by many staff so the MinDistinctUsers filter passes).
// Field strings are shared, so the pool costs one Entry per row and
// the benchmarks measure mining, not fmt.
func miningPool(n int) []audit.Entry {
	mk := func(prefix string, k int) []string {
		out := make([]string, k)
		for i := range out {
			out[i] = fmt.Sprintf("%s%d", prefix, i)
		}
		return out
	}
	dataVals, purposeVals, roleVals := mk("lab", 12), mk("task", 8), mk("role", 6)
	staff := mk("u", 24)
	base := time.Date(2007, 3, 1, 0, 0, 0, 0, time.UTC)
	out := make([]audit.Entry, n)
	for i := range out {
		out[i] = audit.Entry{
			Time: base.Add(time.Duration(i) * time.Second), Op: audit.Allow,
			User:       staff[(i+i/576)%len(staff)],
			Data:       dataVals[i%12],
			Purpose:    purposeVals[(i/12)%8],
			Authorized: roleVals[(i/96)%6],
			Status:     audit.Exception,
		}
	}
	return out
}

// basketTxs builds a market-basket workload that separates the two
// mining engines algorithmically: every transaction holds perHot items
// from a small co-occurring alphabet plus perCold items smeared over a
// large one. All singles clear the support threshold, so Apriori's
// pair-candidate scan is quadratic in the alphabet while FP-growth
// reads the same answer off one prefix tree.
func basketTxs(txs, hot, cold, perHot, perCold int, seed int64) []mining.Transaction {
	rng := rand.New(rand.NewSource(seed))
	sample := func(attr string, n, k int, dst mining.Transaction) mining.Transaction {
		seen := make(map[int]bool, k)
		for len(seen) < k {
			i := rng.Intn(n)
			if seen[i] {
				continue
			}
			seen[i] = true
			dst = append(dst, mining.Item{Attr: attr, Value: fmt.Sprintf("%s%d", attr, i)})
		}
		return dst
	}
	out := make([]mining.Transaction, txs)
	for t := range out {
		tx := sample("proc", hot, perHot, nil)
		out[t] = sample("med", cold, perCold, tx)
	}
	return out
}

// denseTxs biases items toward low indexes (triangular distribution)
// so the FP-tree grows deep shared prefixes and a multi-level frequent
// lattice — the conditional pattern-growth pool's heaviest shape.
func denseTxs(n, alphabet, per int, seed int64) []mining.Transaction {
	rng := rand.New(rand.NewSource(seed))
	out := make([]mining.Transaction, n)
	for t := range out {
		seen := make(map[int]bool, per)
		var tx mining.Transaction
		for len(seen) < per {
			i := rng.Intn(alphabet)
			if j := rng.Intn(alphabet); j < i {
				i = j
			}
			if seen[i] {
				continue
			}
			seen[i] = true
			tx = append(tx, mining.Item{Attr: "op", Value: fmt.Sprintf("op%d", i)})
		}
		out[t] = tx
	}
	return out
}

// rescanOnly hides mining.Extractor's incremental and log-fed method
// sets, forcing the stream session onto its legacy path: re-accumulate
// the practice rows and run the full batch extraction every epoch.
// That is the pre-FP-growth cost model E15's epoch series compares
// against.
type rescanOnly struct{ inner core.PatternExtractor }

func (r rescanOnly) Extract(practice []audit.Entry, opts core.Options) ([]core.Pattern, error) {
	return r.inner.Extract(practice, opts)
}

// BenchmarkE15_MiningScale is the mining-at-audit-scale experiment:
//
//   - mine/rows=N/engine — one-shot batch extraction over N practice
//     rows (fold + mine + evidence); both engines share the interned
//     transaction table, so this measures end-to-end epoch cost.
//   - baskets/engine — the engines' algorithmic separation on a dense
//     candidate-explosion workload (Apriori's L2 scan vs one FP-tree).
//   - epoch/rows=N — streaming refinement epochs over an N-row log:
//     the incremental FP-growth path folds only the ~1k new rows into
//     persistent per-shard state, while the rescan path re-extracts
//     the cumulative practice. Flat incremental ns/op as N grows is
//     the headline; rows=10000000 is gated behind PRIMA_BENCH_FULL=1
//     to keep default runs small.
//   - fptree/procs=P — parallel per-shard tree build + pattern-growth
//     worker pool at GOMAXPROCS 1/4/8 (flat ns/op on a single-core
//     host; near-linear tree mining on multi-core).
func BenchmarkE15_MiningScale(b *testing.B) {
	v := scenario.Vocabulary()
	practice := miningPool(1000000)
	engines := []struct {
		name string
		x    core.PatternExtractor
	}{
		{"apriori", mining.Extractor{}},
		{"fpgrowth", mining.FPGrowth{}},
	}
	for _, n := range []int{100000, 1000000} {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("mine/rows=%d/%s", n, eng.name), func(b *testing.B) {
				rows := practice[:n]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pats, err := eng.x.Extract(rows, core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					if len(pats) == 0 {
						b.Fatal("no patterns")
					}
				}
			})
		}
	}

	baskets := basketTxs(3000, 20, 100, 3, 4, 11)
	for _, m := range []struct {
		name  string
		miner mining.Miner
	}{
		{"apriori", mining.AprioriMiner{}},
		{"fpgrowth", mining.FPGrowth{}},
	} {
		b.Run("baskets/"+m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := m.miner.Mine(baskets, 50)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Frequent) == 0 {
					b.Fatal("no frequent itemsets")
				}
			}
		})
	}

	investigate := core.ReviewerFunc(func(core.Pattern) core.Decision {
		return core.Investigate
	})
	// epoch measures one streaming refinement round while ~1k fresh
	// rows arrive per epoch. Each variant builds its own log so the
	// rescan baseline is not inflated by rows the incremental variant
	// appended.
	epoch := func(b *testing.B, n int, x core.PatternExtractor) {
		b.Helper()
		l := audit.NewLog("ward")
		batch := make([]audit.Entry, 0, 1024)
		for i := 0; i < n; i++ {
			batch = append(batch, practice[i%len(practice)])
			if len(batch) == cap(batch) || i == n-1 {
				if err := l.Append(batch...); err != nil {
					b.Fatal(err)
				}
				batch = batch[:0]
			}
		}
		sess := core.NewStreamSession(l, scenario.PolicyStore(), v, core.Options{Extractor: x})
		if _, err := sess.Run(investigate); err != nil { // bulk-fold the backlog untimed
			b.Fatal(err)
		}
		next := n
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch = batch[:0]
			for j := 0; j < 1024; j++ {
				batch = append(batch, practice[(next+j)%len(practice)])
			}
			next += len(batch)
			if err := l.Append(batch...); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Run(investigate); err != nil {
				b.Fatal(err)
			}
			sess.History = sess.History[:0]
		}
	}
	for _, n := range []int{100000, 1000000, 10000000} {
		b.Run(fmt.Sprintf("epoch/rows=%d", n), func(b *testing.B) {
			if n > len(practice) && os.Getenv("PRIMA_BENCH_FULL") == "" {
				b.Skip("10M-row epoch series: set PRIMA_BENCH_FULL=1")
			}
			b.Run("incremental-fpgrowth", func(b *testing.B) {
				epoch(b, n, mining.FPGrowth{})
			})
			b.Run("apriori-rescan", func(b *testing.B) {
				epoch(b, n, rescanOnly{inner: mining.Extractor{}})
			})
		})
	}

	dense := denseTxs(6000, 40, 10, 5)
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("fptree/procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			fp := mining.FPGrowth{Workers: procs}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fp.Mine(dense, 300)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Frequent) == 0 {
					b.Fatal("no frequent itemsets")
				}
			}
		})
	}
}

// ---- E16: durable storage engine ----

// benchBatched drives batched appends from the ingest pool: one
// append call per 256 entries, the pipeline's bulk mode.
func benchBatched(b *testing.B, append func(batch []audit.Entry) error) {
	pool := ingestPool()
	for n := 0; n < b.N; n += 256 {
		k := 256
		if b.N-n < k {
			k = b.N - n
		}
		off := n % len(pool)
		if off+k > len(pool) {
			off = 0
		}
		if err := append(pool[off : off+k]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16_Durability measures the durable storage engine under
// the audit store (PR 9). The contract: batched group-commit durable
// ingest lands within ~2x of the in-memory batched baseline, because
// the WAL amortizes its fsyncs over whole commit windows (reported as
// fsyncs/op) and the B+tree index absorbs writes through the buffer
// pool (reported as pool-hit-rate). The recovery row measures
// cold-start at one million checkpointed entries: JSONL decode, bulk
// shard load, and refinement-index rebuild (entries/s).
func BenchmarkE16_Durability(b *testing.B) {
	b.Run("memory/batch=256", func(b *testing.B) {
		l := audit.NewLog("ward")
		b.ReportAllocs()
		benchBatched(b, func(batch []audit.Entry) error {
			return l.Append(batch...)
		})
	})
	openBench := func(b *testing.B, o audit.DurableOptions) *audit.Durable {
		b.Helper()
		d, _, err := audit.OpenDurable("ward", b.TempDir(), o)
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	durableRun := func(o audit.DurableOptions) func(b *testing.B) {
		return func(b *testing.B) {
			d := openBench(b, o)
			b.ReportAllocs()
			b.ResetTimer()
			benchBatched(b, func(batch []audit.Entry) error {
				return d.Append(batch...)
			})
			d.Sync() // the durability point: group-commit fsync of the tail
			b.StopTimer()
			b.ReportMetric(float64(d.WALSyncs())/float64(b.N), "fsyncs/op")
			b.ReportMetric(d.PoolStats().HitRate(), "pool-hit-rate")
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("durable/batch=256", durableRun(audit.DurableOptions{}))
	b.Run("durable-nosync/batch=256", durableRun(audit.DurableOptions{NoSync: true}))

	b.Run("recovery/1M", func(b *testing.B) {
		entries := 1 << 20
		if testing.Short() {
			// The CI smoke runs one iteration with -short; the full
			// bench.sh run measures the real million-entry cold start.
			entries = 1 << 16
		}
		dir := b.TempDir()
		pool := ingestPool()
		d, _, err := audit.OpenDurable("ward", dir, audit.DurableOptions{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		for n := 0; n < entries; n += len(pool) {
			if entries-n < len(pool) {
				pool = pool[:entries-n]
			}
			if err := d.Append(pool...); err != nil {
				b.Fatal(err)
			}
		}
		if err := d.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, rs, err := audit.OpenDurable("ward", dir, audit.DurableOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if rs.CheckpointEntries != entries {
				b.Fatalf("recovered %d entries, want %d", rs.CheckpointEntries, entries)
			}
			b.StopTimer()
			b.ReportMetric(float64(entries)/rs.Elapsed.Seconds(), "entries/s")
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}

// ---- E17: networked wire federation (PR 10) ----

// e17SiteLogs builds the federation corpus: `sites` logs of `perSite`
// entries each, drawn from the ingest pool with per-site user prefixes
// (so cross-site events stay distinct) and globally interleaved
// instants (so consolidation performs a real k-way merge rather than
// concatenating runs).
func e17SiteLogs(b *testing.B, sites, perSite int) []*audit.Log {
	b.Helper()
	pool := ingestPool()
	base := time.Date(2007, 3, 1, 0, 0, 0, 0, time.UTC)
	logs := make([]*audit.Log, sites)
	for si := range logs {
		logs[si] = audit.NewLog(fmt.Sprintf("site-%02d", si))
		logs[si].Grow(perSite)
		batch := make([]audit.Entry, 0, 4096)
		for i := 0; i < perSite; i++ {
			e := pool[i%len(pool)]
			e.User = fmt.Sprintf("s%d-%s", si, e.User)
			e.Time = base.Add(time.Duration(i*sites+si) * time.Millisecond)
			batch = append(batch, e)
			if len(batch) == cap(batch) || i == perSite-1 {
				if err := logs[si].Append(batch...); err != nil {
					b.Fatal(err)
				}
				batch = batch[:0]
			}
		}
	}
	return logs
}

// BenchmarkE17_WireFederation measures the networked federation tier
// (PR 10) against its in-process oracle. The contract: shipping every
// site's log over loopback TCP — binary codec, pipelined windowed
// batches, per-conn goroutine pairs — keeps aggregate ingest within
// ~2.5x of the in-process merge throughput, and the binary batch
// codec encodes entries at least 3x faster than the JSON sink
// encoder. wire-ingest also reports the consolidation lag percentiles
// (batch send to ack round-trip, worst site).
func BenchmarkE17_WireFederation(b *testing.B) {
	const sites = 4
	perSite := 1 << 20
	if testing.Short() {
		// CI smoke: one iteration over a small corpus; bench.sh runs
		// the full four million entries.
		perSite = 1 << 14
	}
	logs := e17SiteLogs(b, sites, perSite)
	total := sites * perSite

	b.Run(fmt.Sprintf("inprocess-merge/sites=%d", sites), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := audit.NewFederation(logs...).Consolidate()
			if len(res.Entries) != total {
				b.Fatalf("consolidated %d entries, want %d", len(res.Entries), total)
			}
		}
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
	})

	b.Run(fmt.Sprintf("wire-ingest/sites=%d", sites), func(b *testing.B) {
		b.ReportAllocs()
		var lagP50, lagP99 time.Duration
		var wireBytes uint64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cons, err := netfed.NewConsolidator(netfed.ConsolidatorOptions{})
			if err != nil {
				b.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			serveDone := make(chan error, 1)
			go func() { serveDone <- cons.Serve(ln) }()
			addr := ln.Addr().String()
			ctx, cancel := context.WithCancel(context.Background())
			streamers := make([]*netfed.Streamer, sites)
			for si, l := range logs {
				s, err := netfed.NewStreamer(l, "", netfed.StreamerOptions{
					Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
				})
				if err != nil {
					b.Fatal(err)
				}
				streamers[si] = s
			}
			var run sync.WaitGroup
			b.StartTimer()
			for _, s := range streamers {
				run.Add(1)
				go func(s *netfed.Streamer) {
					defer run.Done()
					if err := s.Run(ctx); err != nil {
						b.Error(err)
					}
				}(s)
			}
			for _, s := range streamers {
				if err := s.Drain(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cancel()
			run.Wait()
			lagP50, lagP99, wireBytes = 0, 0, 0
			for _, s := range streamers {
				st := s.Stats()
				if st.LagP50 > lagP50 {
					lagP50 = st.LagP50
				}
				if st.LagP99 > lagP99 {
					lagP99 = st.LagP99
				}
				wireBytes += st.Bytes
			}
			if got := cons.Stats().Entries; got != uint64(total) {
				b.Fatalf("consolidator folded %d entries, want %d", got, total)
			}
			if err := cons.Close(); err != nil {
				b.Fatal(err)
			}
			if err := <-serveDone; err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.StopTimer()
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
		b.ReportMetric(float64(lagP50.Microseconds())/1000, "lag-p50-ms")
		b.ReportMetric(float64(lagP99.Microseconds())/1000, "lag-p99-ms")
		b.ReportMetric(float64(wireBytes)/float64(total), "wire-B/entry")
	})

	codecCorpus := logs[0].Snapshot()[:4096]
	b.Run("codec=binary", func(b *testing.B) {
		enc := netfed.NewEncoder()
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = enc.AppendBatch(buf[:0], 1, codecCorpus)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(codecCorpus)), "ns/entry")
		b.ReportMetric(float64(len(buf))/float64(len(codecCorpus)), "B/entry")
	})
	b.Run("codec=jsonl", func(b *testing.B) {
		var buf []byte
		var err error
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			for j := range codecCorpus {
				if buf, err = audit.AppendSinkJSON(buf, &codecCorpus[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(codecCorpus)), "ns/entry")
		b.ReportMetric(float64(len(buf))/float64(len(codecCorpus)), "B/entry")
	})
}
