package hdb

import (
	"fmt"
	"time"

	"repro/internal/consent"
	"repro/internal/policy"
)

// ControlCenter is the administrative surface of the HDB components
// (paper §4.1: "Our user would use the HDB Control Center to enter
// fine-grained rules, patient consent information and specify what
// needs to be auditable"). It wraps an Enforcer with validated entry
// points suitable for a UI or HTTP layer.
type ControlCenter struct {
	enf *Enforcer
	cs  *consent.Store
}

// NewControlCenter wires a control center to an enforcer and its
// consent store (may be nil when consent is unmanaged).
func NewControlCenter(enf *Enforcer, cs *consent.Store) *ControlCenter {
	return &ControlCenter{enf: enf, cs: cs}
}

// AddRule parses a compact rule ("data=x & purpose=y & authorized=z")
// and adds it to the policy store. Rules must stay within the
// vocabulary so that coverage and refinement remain meaningful.
func (cc *ControlCenter) AddRule(compact string) (policy.Rule, error) {
	r, err := policy.ParseRule(compact)
	if err != nil {
		return policy.Rule{}, err
	}
	for _, t := range r.Terms() {
		h := cc.enf.v.Hierarchy(t.Attr)
		if h == nil {
			return policy.Rule{}, fmt.Errorf("hdb: unknown policy attribute %q", t.Attr)
		}
		if !h.Contains(t.Value) {
			return policy.Rule{}, fmt.Errorf("hdb: value %q is not in the %q vocabulary", t.Value, t.Attr)
		}
	}
	cc.enf.ps.Add(r)
	return r, nil
}

// RemoveRule deletes a rule in compact form, reporting whether it was
// present.
func (cc *ControlCenter) RemoveRule(compact string) (bool, error) {
	r, err := policy.ParseRule(compact)
	if err != nil {
		return false, err
	}
	return cc.enf.ps.Remove(r), nil
}

// SetConsent records a patient consent choice.
func (cc *ControlCenter) SetConsent(patient, data, purpose string, choice consent.Choice, at time.Time) error {
	if cc.cs == nil {
		return fmt.Errorf("hdb: no consent store configured")
	}
	return cc.cs.Set(patient, data, purpose, choice, at)
}

// RegisterTable exposes table registration.
func (cc *ControlCenter) RegisterTable(m TableMapping) error { return cc.enf.RegisterTable(m) }

// Rules lists the current policy rules in compact form.
func (cc *ControlCenter) Rules() []string {
	rules := cc.enf.ps.Rules()
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Compact()
	}
	return out
}
