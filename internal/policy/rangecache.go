package policy

import (
	"sync"

	"repro/internal/vocab"
)

// RangeCache memoizes ground-range expansions (Definition 8) keyed on
// the identity of the policy and vocabulary plus their mutation
// counters. Every consumer of the range algebra — Algorithm 1
// coverage, Algorithm 6 pruning, the Active Enforcement middleware —
// needs Range_P of the same slowly-changing policy store; sharing one
// cache means the expansion runs once per policy version instead of
// once per query.
//
// A cached *Range is immutable after construction and may be used
// concurrently by any number of readers.
type RangeCache struct {
	mu      sync.Mutex
	entries map[rangeCacheKey]rangeCacheEntry
}

// rangeCacheMax bounds the cache; short-lived policies (refinement
// scratch stores, test fixtures) would otherwise pin their ranges
// forever. Exceeding the bound drops the whole map: the cache exists
// for the steady state of a few long-lived stores, where it never
// trips.
const rangeCacheMax = 256

type rangeCacheKey struct {
	p     *Policy
	v     *vocab.Vocabulary
	limit int
}

type rangeCacheEntry struct {
	pver uint64
	vgen uint64
	rg   *Range
}

// NewRangeCache returns an empty cache.
func NewRangeCache() *RangeCache {
	return &RangeCache{entries: make(map[rangeCacheKey]rangeCacheEntry)}
}

// Shared is the process-wide range cache used by the coverage
// algorithms and the enforcer.
var Shared = NewRangeCache()

// Range returns the ground range of p under v, recomputing only when
// the policy's version or the vocabulary's generation has moved since
// the last call. Errors are not cached.
func (c *RangeCache) Range(p *Policy, v *vocab.Vocabulary, limit int) (*Range, error) {
	if limit <= 0 {
		limit = DefaultRangeLimit
	}
	key := rangeCacheKey{p: p, v: v, limit: limit}
	pver := p.Version()
	vgen := v.Generation()

	c.mu.Lock()
	if e, ok := c.entries[key]; ok && e.pver == pver && e.vgen == vgen {
		c.mu.Unlock()
		return e.rg, nil
	}
	c.mu.Unlock()

	// Expand outside the cache lock: expansion can be long and other
	// policies' lookups must not stall behind it.
	rg, err := NewRange(p, v, limit)
	if err != nil {
		return nil, err
	}

	// Re-read the input versions BEFORE taking the cache lock:
	// Policy.Version and Vocabulary.Generation acquire their own
	// locks, and the pinned acquisition order (lockorder.txt) puts
	// Policy ahead of RangeCache — nesting them inside c.mu would
	// invert it.
	pver2 := p.Version()
	vgen2 := v.Generation()

	c.mu.Lock()
	if len(c.entries) >= rangeCacheMax {
		c.entries = make(map[rangeCacheKey]rangeCacheEntry)
	}
	// Only install if the inputs did not move while expanding; a
	// racing mutation would make the entry stale at birth. (A mutation
	// that lands after the re-read is caught by the next call's
	// version compare.)
	if pver2 == pver && vgen2 == vgen {
		c.entries[key] = rangeCacheEntry{pver: pver, vgen: vgen, rg: rg}
	}
	c.mu.Unlock()
	return rg, nil
}

// Invalidate drops any cached range for the given policy, across all
// vocabularies and limits. Version checks make explicit invalidation
// unnecessary for correctness; this is for callers that know a policy
// is being discarded and want its memory back immediately.
func (c *RangeCache) Invalidate(p *Policy) {
	c.mu.Lock()
	for k := range c.entries {
		if k.p == p {
			delete(c.entries, k)
		}
	}
	c.mu.Unlock()
}

// Len reports how many ranges are currently cached.
func (c *RangeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
