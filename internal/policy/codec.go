package policy

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ParseRule parses a rule from its compact text form, a list of
// attr=value pairs separated by '&' or ',':
//
//	data=referral & purpose=treatment & authorized=nurse
func ParseRule(s string) (Rule, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == '&' || r == ',' })
	var terms []Term
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		attr, value, ok := strings.Cut(f, "=")
		if !ok {
			return Rule{}, fmt.Errorf("policy: term %q is not attr=value", f)
		}
		attr = strings.TrimSpace(attr)
		value = strings.TrimSpace(value)
		if strings.ContainsAny(attr, " \t") || strings.ContainsAny(value, " \t") {
			return Rule{}, fmt.Errorf("policy: term %q: attribute and value must be single tokens", f)
		}
		// '#' opens a comment in the policy text form; an attribute
		// starting with it cannot round-trip (the term may sort to the
		// start of the line, where the re-parse drops the whole rule).
		if strings.HasPrefix(attr, "#") {
			return Rule{}, fmt.Errorf("policy: term %q: attribute may not start with '#'", f)
		}
		terms = append(terms, Term{Attr: attr, Value: value})
	}
	if len(terms) == 0 {
		return Rule{}, fmt.Errorf("policy: empty rule %q", s)
	}
	return NewRule(terms...)
}

// Compact renders the rule in the form accepted by ParseRule.
func (r Rule) Compact() string {
	parts := make([]string, len(r.terms))
	for i, t := range r.terms {
		parts[i] = t.Attr + "=" + t.Value
	}
	return strings.Join(parts, " & ")
}

// ParsePolicy reads a policy in text form: one rule per line in
// ParseRule syntax; blank lines and '#' comments ignored.
func ParsePolicy(name string, r io.Reader) (*Policy, error) {
	p := New(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("policy: line %d: %w", lineNo, err)
		}
		p.Add(rule)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("policy: read: %w", err)
	}
	return p, nil
}

// ParsePolicyString is ParsePolicy over a string.
func ParsePolicyString(name, s string) (*Policy, error) {
	return ParsePolicy(name, strings.NewReader(s))
}

// WriteText writes the policy in the form accepted by ParsePolicy.
// Name and rules are snapshotted together so a concurrent
// UnmarshalJSON cannot produce a torn header/body combination.
func (p *Policy) WriteText(w io.Writer) error {
	p.mu.RLock()
	name := p.Name
	rules := append([]Rule(nil), p.rules...)
	p.mu.RUnlock()

	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# policy %s (%d rules)\n", name, len(rules)); err != nil {
		return err
	}
	for _, r := range rules {
		if _, err := fmt.Fprintln(bw, r.Compact()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TextString renders the policy in text form.
func (p *Policy) TextString() string {
	var b strings.Builder
	if err := p.WriteText(&b); err != nil {
		// strings.Builder writes cannot fail.
		panic("policy: TextString: " + err.Error())
	}
	return b.String()
}

// MarshalJSON encodes the rule as its term list.
func (r Rule) MarshalJSON() ([]byte, error) { return json.Marshal(r.terms) }

// UnmarshalJSON decodes and normalizes a rule from a term list.
func (r *Rule) UnmarshalJSON(data []byte) error {
	var terms []Term
	if err := json.Unmarshal(data, &terms); err != nil {
		return fmt.Errorf("policy: %w", err)
	}
	nr, err := NewRule(terms...)
	if err != nil {
		return err
	}
	*r = nr
	return nil
}

type jsonPolicy struct {
	Name  string `json:"name"`
	Rules []Rule `json:"rules"`
}

// MarshalJSON encodes the policy with its name and rules, snapshotted
// under one read lock.
func (p *Policy) MarshalJSON() ([]byte, error) {
	p.mu.RLock()
	jp := jsonPolicy{Name: p.Name, Rules: append([]Rule(nil), p.rules...)}
	p.mu.RUnlock()
	return json.Marshal(jp)
}

// UnmarshalJSON decodes a policy, deduplicating rules. Name and rules
// are replaced under a single write lock so concurrent readers never
// observe the new name with the old rules.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var jp jsonPolicy
	if err := json.Unmarshal(data, &jp); err != nil {
		return fmt.Errorf("policy: %w", err)
	}
	np := New(jp.Name)
	for _, r := range jp.Rules {
		np.Add(r)
	}
	p.mu.Lock()
	p.Name = np.Name
	p.rules = append(p.rules[:0:0], np.rules...)
	p.index = np.index
	p.version.Add(1)
	p.mu.Unlock()
	return nil
}
