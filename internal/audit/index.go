package audit

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/policy"
	"repro/internal/vocab"
)

// Incremental refinement index. Every append folds the entry into its
// shard's per-group and per-log accumulators under the same lock as
// the entry itself, so downstream analytics — the Algorithm 4
// GROUP BY … HAVING pass, row-level coverage, and Summarize — read
// O(groups) merged state instead of rescanning O(entries) rows.
//
// Groups are keyed by the raw (data, purpose, authorized) triple,
// matching the SQL extractor's GROUP BY semantics exactly (the SQL
// engine groups by stored column bytes, not normalized values); each
// group caches the canonical rule key once for coverage membership
// tests. Per-group distinct users count raw user values, mirroring
// SQL COUNT(DISTINCT user); the log-wide Stats normalize users,
// mirroring Summarize.

// groupKey is the raw GROUP BY identity of the default analysis
// attribute set (data, purpose, authorized).
type groupKey struct {
	data       string
	purpose    string
	authorized string
}

// groupAcc is one shard's accumulator for a group.
type groupAcc struct {
	canon    string              // canonical rule key, computed once
	total    int                 // all rows in the group
	practice int                 // rows surviving Filter (exception + allow)
	users    map[string]struct{} // distinct raw users among practice rows
	first    time.Time           // practice window
	last     time.Time
}

// statsAcc is one shard's Stats accumulator.
type statsAcc struct {
	total      int
	allowed    int
	denied     int
	exceptions int
	regular    int
	users      map[string]struct{} // raw; normalized at read by Summary
	first      time.Time
	last       time.Time
}

// indexLocked folds one entry into the shard's accumulators; the
// shard lock must be held. Users are recorded raw and normalized on
// the O(users) read side instead of the O(entries) write side —
// normalize(union raw) equals union(normalize) so Summary is
// unchanged.
func (s *shard) indexLocked(e *Entry) {
	st := &s.stats
	st.total++
	if e.Op == Allow {
		st.allowed++
	} else {
		st.denied++
	}
	if e.Status == Exception {
		st.exceptions++
	} else {
		st.regular++
	}
	if st.users == nil {
		st.users = make(map[string]struct{})
	}
	st.users[e.User] = struct{}{}
	if st.first.IsZero() || e.Time.Before(st.first) {
		st.first = e.Time
	}
	if e.Time.After(st.last) {
		st.last = e.Time
	}

	if s.groups == nil {
		s.groups = make(map[groupKey]*groupAcc)
	}
	k := groupKey{data: e.Data, purpose: e.Purpose, authorized: e.Authorized}
	g := s.groups[k]
	if g == nil {
		g = &groupAcc{canon: e.RuleKey()}
		s.groups[k] = g
	}
	g.total++
	if e.Status == Exception && e.Op == Allow {
		g.practice++
		if g.users == nil {
			g.users = make(map[string]struct{})
		}
		g.users[e.User] = struct{}{}
		if g.first.IsZero() || e.Time.Before(g.first) {
			g.first = e.Time
		}
		if e.Time.After(g.last) {
			g.last = e.Time
		}
	}
}

// rebuildLocked recomputes the shard's accumulators from its entries
// after a structural change (Expire/Rotate); the shard lock must be
// held.
func (s *shard) rebuildLocked() {
	s.groups = nil
	s.stats = statsAcc{}
	for i := range s.entries {
		s.indexLocked(&s.entries[i].e)
	}
}

// Group is the merged, read-only view of one (data, purpose,
// authorized) group across all shards.
type Group struct {
	Data       string // raw column values, the GROUP BY identity
	Purpose    string
	Authorized string
	Key        string // canonical rule key (policy.TripleKey)

	Total         int // all rows in the group
	Practice      int // rows surviving Filter (exception-based allows)
	PracticeUsers int // distinct users among practice rows
	First         time.Time
	Last          time.Time // practice window; zero when Practice == 0
}

// Rule converts the group identity into a ground rule, term order
// matching the default analysis attributes.
func (g Group) Rule() (policy.Rule, error) {
	return policy.NewRule(
		policy.T("data", g.Data),
		policy.T("purpose", g.Purpose),
		policy.T("authorized", g.Authorized),
	)
}

// Groups merges the per-shard accumulators into one deterministic
// view, sorted by the raw group identity. Cost is O(groups), not
// O(entries): this is the read side of the incremental index.
func (l *Log) Groups() []Group { return MergeGroups(l) }

// MergeGroups merges the incremental per-rule indexes of several logs
// into one deterministic cross-log view, sorted by the raw group
// identity — the federated analytics feed: a consolidator holding one
// log per site reads combined groups (summed counts, unioned distinct
// users, widened practice windows) in O(groups) without materializing
// a merged entry stream. MergeGroups(l) is exactly l.Groups().
func MergeGroups(logs ...*Log) []Group {
	type merged struct {
		canon    string
		total    int
		practice int
		users    map[string]struct{}
		first    time.Time
		last     time.Time
	}
	acc := make(map[groupKey]*merged)
	for _, l := range logs {
		for _, sh := range l.shards {
			sh.mu.RLock()
			for k, g := range sh.groups {
				m := acc[k]
				if m == nil {
					m = &merged{canon: g.canon}
					acc[k] = m
				}
				m.total += g.total
				m.practice += g.practice
				if len(g.users) > 0 {
					if m.users == nil {
						m.users = make(map[string]struct{}, len(g.users))
					}
					for u := range g.users {
						m.users[u] = struct{}{}
					}
				}
				if !g.first.IsZero() && (m.first.IsZero() || g.first.Before(m.first)) {
					m.first = g.first
				}
				if g.last.After(m.last) {
					m.last = g.last
				}
			}
			sh.mu.RUnlock()
		}
	}
	out := make([]Group, 0, len(acc))
	for k, m := range acc {
		out = append(out, Group{
			Data:          k.data,
			Purpose:       k.purpose,
			Authorized:    k.authorized,
			Key:           m.canon,
			Total:         m.total,
			Practice:      m.practice,
			PracticeUsers: len(m.users),
			First:         m.first,
			Last:          m.last,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Data != out[j].Data {
			return out[i].Data < out[j].Data
		}
		if out[i].Purpose != out[j].Purpose {
			return out[i].Purpose < out[j].Purpose
		}
		return out[i].Authorized < out[j].Authorized
	})
	return out
}

// PracticeGroup is one shard's accumulator for a (data, purpose,
// authorized) group restricted to practice rows (exception-based
// allows) — the transaction feed for index-fed mining. Unlike Group
// it is NOT merged across shards: mining engines fold the per-shard
// slices into their own sharded transaction tables concurrently, and
// the weighted fold makes the merge implicit.
type PracticeGroup struct {
	Data       string // raw column values, the GROUP BY identity
	Purpose    string
	Authorized string

	Weight int       // practice rows in the group within this shard
	Users  []string  // distinct raw users among those rows, sorted
	First  time.Time // practice window within this shard
	Last   time.Time
}

// PracticeShards returns the practice groups per audit shard, each
// shard's slice sorted by the raw group identity. Cost is O(groups),
// not O(entries); only groups with at least one practice row appear.
// This is the shard-parallel feed for mining extractors that can run
// from the incremental index instead of a materialized snapshot.
func (l *Log) PracticeShards() [][]PracticeGroup {
	out := make([][]PracticeGroup, len(l.shards))
	for i, sh := range l.shards {
		sh.mu.RLock()
		gs := make([]PracticeGroup, 0, len(sh.groups))
		for k, g := range sh.groups {
			if g.practice == 0 {
				continue
			}
			users := make([]string, 0, len(g.users))
			for u := range g.users {
				users = append(users, u)
			}
			sort.Strings(users)
			gs = append(gs, PracticeGroup{
				Data:       k.data,
				Purpose:    k.purpose,
				Authorized: k.authorized,
				Weight:     g.practice,
				Users:      users,
				First:      g.first,
				Last:       g.last,
			})
		}
		sh.mu.RUnlock()
		sort.Slice(gs, func(a, b int) bool {
			if gs[a].Data != gs[b].Data {
				return gs[a].Data < gs[b].Data
			}
			if gs[a].Purpose != gs[b].Purpose {
				return gs[a].Purpose < gs[b].Purpose
			}
			return gs[a].Authorized < gs[b].Authorized
		})
		out[i] = gs
	}
	return out
}

// Summary returns the log-wide Stats from the incremental index in
// O(shards + users) — equivalent to Summarize(l.Snapshot()) without
// materializing a snapshot.
func (l *Log) Summary() Stats {
	var s Stats
	users := make(map[string]struct{})
	for _, sh := range l.shards {
		sh.mu.RLock()
		st := &sh.stats
		s.Total += st.total
		s.Allowed += st.allowed
		s.Denied += st.denied
		s.Exceptions += st.exceptions
		s.Regular += st.regular
		for u := range st.users {
			users[vocab.Norm(u)] = struct{}{}
		}
		if !st.first.IsZero() && (s.First.IsZero() || st.first.Before(s.First)) {
			s.First = st.first
		}
		if st.last.After(s.Last) {
			s.Last = st.last
		}
		sh.mu.RUnlock()
	}
	s.Users = len(users)
	return s
}

// Cursor marks a read position in the log for O(delta) consumption:
// the per-shard entry counts at the time of the last read, tied to
// the index epoch. The zero Cursor reads from the start. A cursor
// taken before a structural change (Reset/Expire/Rotate) is detected
// via the epoch and triggers a resync from the start.
type Cursor struct {
	epoch uint64
	pos   []int
}

// Delta returns the entries appended since the cursor, in append
// order, plus the advanced cursor. resync reports that the cursor
// was stale (zero, wrong epoch, or wrong shape) and the returned
// entries restart from the beginning of the log — consumers keeping
// derived state must discard it when resync is true.
func (l *Log) Delta(c Cursor) (delta []Entry, next Cursor, resync bool) {
	ep := l.epoch.Load()
	resync = c.pos == nil || c.epoch != ep || len(c.pos) != len(l.shards)
	next = Cursor{epoch: ep, pos: make([]int, len(l.shards))}
	var buf []stamped
	for i, sh := range l.shards {
		from := 0
		if !resync {
			from = c.pos[i]
		}
		sh.mu.RLock()
		n := len(sh.entries)
		if from > n {
			from = n
		}
		buf = append(buf, sh.entries[from:n]...)
		next.pos[i] = n
		sh.mu.RUnlock()
	}
	if l.epoch.Load() != ep {
		// A structural change raced the read; restart from scratch.
		return l.Delta(Cursor{})
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].seq < buf[j].seq })
	return unstamp(buf), next, resync
}

// SnapshotByTime returns a copy of the entries in chronological
// order, same-instant entries in append order — byte-identical to
// SortByTime(Snapshot()) but sorted per shard (concurrently when
// GOMAXPROCS allows) and k-way merged. Federation consolidation reads
// its sources through this.
func (l *Log) SnapshotByTime() []Entry {
	runs := make([][]stamped, len(l.shards))
	total := 0
	for i, sh := range l.shards {
		sh.mu.RLock()
		if len(sh.entries) > 0 {
			runs[i] = append([]stamped(nil), sh.entries...)
		}
		sh.mu.RUnlock()
		total += len(runs[i])
	}
	less := func(a, b stamped) bool {
		if !a.e.Time.Equal(b.e.Time) {
			return a.e.Time.Before(b.e.Time)
		}
		return a.seq < b.seq
	}
	sortRun := func(r []stamped) {
		sort.Slice(r, func(i, j int) bool { return less(r[i], r[j]) })
	}
	if runtime.GOMAXPROCS(0) > 1 && total > 4096 {
		var wg sync.WaitGroup
		for i := range runs {
			if len(runs[i]) == 0 {
				continue
			}
			wg.Add(1)
			go func(r []stamped) {
				defer wg.Done()
				sortRun(r)
			}(runs[i])
		}
		wg.Wait()
	} else {
		for i := range runs {
			sortRun(runs[i])
		}
	}
	// K-way merge by (time, seq); the shard count is small, so a
	// linear head scan beats heap bookkeeping.
	out := make([]Entry, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i := range runs {
			if heads[i] >= len(runs[i]) {
				continue
			}
			if best == -1 || less(runs[i][heads[i]], runs[best][heads[best]]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, runs[best][heads[best]].e)
		heads[best]++
	}
	return out
}
