package audit

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sync"

	"repro/internal/storage"
)

// genEntries builds a deterministic workload with clustered
// timestamps (so same-instant ordering is exercised), mixed statuses,
// and occasional reasons.
func genDurableEntries(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2026, 3, 1, 8, 0, 0, 0, time.UTC)
	out := make([]Entry, n)
	for i := range out {
		e := Entry{
			// Integer division clusters several entries per instant.
			Time:       base.Add(time.Duration(rng.Intn(n/4+1)) * time.Second),
			Op:         Op(rng.Intn(2)),
			User:       fmt.Sprintf("user-%d", rng.Intn(7)),
			Data:       fmt.Sprintf("data-%d", rng.Intn(5)),
			Purpose:    fmt.Sprintf("purpose-%d", rng.Intn(3)),
			Authorized: fmt.Sprintf("role-%d", rng.Intn(4)),
			Status:     Status(rng.Intn(2)),
		}
		if e.Status == Exception && rng.Intn(2) == 0 {
			e.Reason = fmt.Sprintf("emergency-%d", i)
		}
		out[i] = e
	}
	return out
}

func jsonlBytes(t *testing.T, entries []Entry) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := WriteJSONL(&b, entries); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func sameStats(a, b Stats) bool {
	return a.Total == b.Total && a.Allowed == b.Allowed && a.Denied == b.Denied &&
		a.Exceptions == b.Exceptions && a.Regular == b.Regular && a.Users == b.Users &&
		a.First.Equal(b.First) && a.Last.Equal(b.Last)
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	entries := genDurableEntries(300, 1)

	d, rs, err := OpenDurable("site-a", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.CheckpointEntries != 0 || rs.WALEntries != 0 {
		t.Fatalf("fresh open recovered something: %+v", rs)
	}
	if err := d.Append(entries...); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	want := d.Log().Snapshot()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, rs2, err := OpenDurable("site-a", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rs2.WALEntries != len(entries) || rs2.CheckpointEntries != 0 {
		t.Fatalf("recovery stats %+v, want %d WAL entries", rs2, len(entries))
	}
	if rs2.IndexGroups == 0 || rs2.Elapsed <= 0 {
		t.Fatalf("recovery stats missing index/elapsed: %+v", rs2)
	}
	got := d2.Log().Snapshot()
	if !bytes.Equal(jsonlBytes(t, got), jsonlBytes(t, want)) {
		t.Fatal("recovered snapshot is not byte-identical")
	}
	if !sameStats(d2.Log().Summary(), Summarize(want)) {
		t.Fatal("recovered incremental stats diverge from rescan")
	}
	// Recovery concluded with a checkpoint; a third open must load
	// everything from the checkpoint log and nothing from the WAL.
	d2.Close()
	d3, rs3, err := OpenDurable("site-a", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if rs3.CheckpointEntries != len(entries) || rs3.WALEntries != 0 {
		t.Fatalf("post-checkpoint recovery stats %+v", rs3)
	}
	if !bytes.Equal(jsonlBytes(t, d3.Log().Snapshot()), jsonlBytes(t, want)) {
		t.Fatal("checkpointed snapshot is not byte-identical")
	}
}

func TestDurableCheckpointCut(t *testing.T) {
	dir := t.TempDir()
	entries := genDurableEntries(150, 2)
	d, _, err := OpenDurable("s", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(entries[:100]...); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := d.CheckpointSeq(); got != 100 {
		t.Fatalf("checkpoint seq = %d, want 100", got)
	}
	if err := d.Append(entries[100:]...); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	want := d.Log().Snapshot()
	d.Close()

	d2, rs, err := OpenDurable("s", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rs.CheckpointEntries != 100 || rs.WALEntries != 50 {
		t.Fatalf("recovery split %d/%d, want 100/50", rs.CheckpointEntries, rs.WALEntries)
	}
	if !bytes.Equal(jsonlBytes(t, d2.Log().Snapshot()), jsonlBytes(t, want)) {
		t.Fatal("recovered snapshot diverges")
	}
	// The checkpoint log on disk must be byte-identical to WriteJSONL
	// over the full append order (recovery re-checkpointed the tail).
	raw, err := os.ReadFile(filepath.Join(dir, "log.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, jsonlBytes(t, want)) {
		t.Fatal("log.jsonl diverges from WriteJSONL of the append order")
	}
}

// TestDurableSnapshotByTimeDifferential pins the index-served
// chronological reads to the in-memory oracle, across checkpoint
// boundaries (part index, part tail) and a crash/recovery cycle.
func TestDurableSnapshotByTimeDifferential(t *testing.T) {
	dir := t.TempDir()
	entries := genDurableEntries(400, 3)
	d, _, err := OpenDurable("s", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(entries[:250]...); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(entries[250:]...); err != nil {
		t.Fatal(err)
	}

	check := func(d *Durable) {
		t.Helper()
		oracle := d.Log().SnapshotByTime()
		got := d.SnapshotByTime()
		if !bytes.Equal(jsonlBytes(t, got), jsonlBytes(t, oracle)) {
			t.Fatal("index-served SnapshotByTime diverges from in-memory oracle")
		}
		// Range reads against the filtered oracle.
		base := time.Date(2026, 3, 1, 8, 0, 0, 0, time.UTC)
		for _, w := range [][2]time.Time{
			{base.Add(10 * time.Second), base.Add(60 * time.Second)},
			{time.Time{}, base.Add(30 * time.Second)},
			{base.Add(50 * time.Second), time.Time{}},
			{base.Add(30 * time.Second), base.Add(30 * time.Second)}, // empty
		} {
			from, to := w[0], w[1]
			var want []Entry
			for _, e := range oracle {
				if (from.IsZero() || !e.Time.Before(from)) && (to.IsZero() || e.Time.Before(to)) {
					want = append(want, e)
				}
			}
			got, err := d.SnapshotRange(from, to)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(jsonlBytes(t, got), jsonlBytes(t, want)) {
				t.Fatalf("SnapshotRange(%v, %v) diverges (%d vs %d entries)", from, to, len(got), len(want))
			}
		}
	}
	check(d)
	d.Sync()
	d.Close()
	d2, _, err := OpenDurable("s", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	check(d2)
}

func TestDurableExpireDifferential(t *testing.T) {
	dir := t.TempDir()
	entries := genDurableEntries(300, 4)
	d, _, err := OpenDurable("s", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(entries[:200]...); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(entries[200:]...); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 3, 1, 8, 0, 0, 0, time.UTC)
	cutoff := base.Add(40 * time.Second)
	exc := base.Add(20 * time.Second)

	// The index-driven scan must agree with what the in-memory expiry
	// actually drops.
	scan, err := d.ExpireScan(cutoff, exc)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := d.Expire(cutoff, exc)
	if err != nil {
		t.Fatal(err)
	}
	if scan != dropped {
		t.Fatalf("index expiry scan predicts %d, in-memory expiry dropped %d", scan, dropped)
	}
	if dropped == 0 {
		t.Fatal("workload produced nothing to expire")
	}
	want := d.Log().Snapshot()
	for _, e := range want {
		if e.Time.Before(cutoff) && !(e.Status == Exception && !e.Time.Before(exc)) {
			t.Fatalf("unexpired entry at %v survived", e.Time)
		}
	}
	check := func(d *Durable) {
		t.Helper()
		if !bytes.Equal(jsonlBytes(t, d.SnapshotByTime()), jsonlBytes(t, d.Log().SnapshotByTime())) {
			t.Fatal("post-expiry index view diverges from memory")
		}
	}
	check(d)
	d.Close()

	d2, rs, err := OpenDurable("s", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rs.CheckpointEntries != len(want) || rs.WALEntries != 0 {
		t.Fatalf("post-expiry recovery %+v, want %d checkpointed", rs, len(want))
	}
	if !bytes.Equal(jsonlBytes(t, d2.Log().Snapshot()), jsonlBytes(t, want)) {
		t.Fatal("expired entries resurrected by recovery")
	}
	check(d2)
}

// TestDurableBootstrapFromSinkFile adopts a plain JSONL sink file —
// including a torn final line, the wreckage the old sink path could
// leave — as the initial durable state.
func TestDurableBootstrapFromSinkFile(t *testing.T) {
	dir := t.TempDir()
	entries := genDurableEntries(120, 5)
	for i := range entries {
		entries[i].Site = "legacy"
	}
	var b bytes.Buffer
	if err := WriteJSONL(&b, entries); err != nil {
		t.Fatal(err)
	}
	raw := b.Bytes()
	torn := raw[:len(raw)-17] // cut into the final line
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "log.jsonl"), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	d, rs, err := OpenDurable("legacy", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.TruncatedLine {
		t.Fatalf("torn final line not reported: %+v", rs)
	}
	if rs.CheckpointEntries != len(entries)-1 {
		t.Fatalf("bootstrapped %d entries, want %d", rs.CheckpointEntries, len(entries)-1)
	}
	if err := d.Append(genDurableEntries(10, 6)...); err != nil {
		t.Fatal(err)
	}
	want := d.Log().Snapshot()
	d.Close()

	d2, _, err := OpenDurable("legacy", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !bytes.Equal(jsonlBytes(t, d2.Log().Snapshot()), jsonlBytes(t, want)) {
		t.Fatal("bootstrap + append did not round-trip")
	}
}

func TestReadJSONLTolerant(t *testing.T) {
	entries := genDurableEntries(5, 7)
	var b bytes.Buffer
	if err := WriteJSONL(&b, entries); err != nil {
		t.Fatal(err)
	}
	raw := b.Bytes()

	got, truncated, err := ReadJSONLTolerant(bytes.NewReader(raw))
	if err != nil || truncated || len(got) != 5 {
		t.Fatalf("clean file: n=%d truncated=%v err=%v", len(got), truncated, err)
	}
	got, truncated, err = ReadJSONLTolerant(bytes.NewReader(raw[:len(raw)-9]))
	if err != nil || !truncated || len(got) != 4 {
		t.Fatalf("torn tail: n=%d truncated=%v err=%v", len(got), truncated, err)
	}
	// Trailing newline missing but the line complete: not truncated.
	got, truncated, err = ReadJSONLTolerant(bytes.NewReader(raw[:len(raw)-1]))
	if err != nil || truncated || len(got) != 5 {
		t.Fatalf("missing newline: n=%d truncated=%v err=%v", len(got), truncated, err)
	}
	// Mid-file corruption is an error, not tolerance.
	bad := append([]byte("{garbage}\n"), raw...)
	if _, _, err := ReadJSONLTolerant(bytes.NewReader(bad)); err == nil {
		t.Fatal("mid-file corruption read without error")
	}
}

// TestDurableDroppedCounter drives the DropOnFull policy hard enough
// to drop entries and checks the counter survives checkpoint and
// recovery as sequence gaps.
func TestDurableDroppedCounter(t *testing.T) {
	dir := t.TempDir()
	d, _, err := OpenDurable("s", dir, DurableOptions{
		Sink: SinkOptions{Queue: 8, DropOnFull: true},
		// A long commit interval keeps the WAL flusher lazy so the tiny
		// queue actually overflows.
		CommitInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := genDurableEntries(4000, 8)
	for i := range entries {
		if err := d.Append(entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	d.Sync()
	if d.Dropped() == 0 {
		t.Skip("queue never overflowed on this machine")
	}
	memLen := d.Log().Len()
	if memLen != len(entries) {
		t.Fatalf("in-memory append must never drop: %d/%d", memLen, len(entries))
	}
	d.Close()

	d2, rs, err := OpenDurable("s", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rs.Dropped == 0 {
		t.Fatalf("recovery did not surface the dropped count: %+v", rs)
	}
	if got := rs.CheckpointEntries + rs.WALEntries; uint64(got)+rs.Dropped != uint64(len(entries)) {
		t.Fatalf("recovered %d + dropped %d != appended %d", got, rs.Dropped, len(entries))
	}
	if d2.Dropped() != rs.Dropped {
		t.Fatalf("Dropped() = %d, stats say %d", d2.Dropped(), rs.Dropped)
	}
}

// TestDurableDeltaResyncAfterRecovery: a Delta cursor taken before a
// crash must be detected as stale after recovery replays a WAL tail,
// so incremental mining state is rebuilt instead of silently skipping
// recovered entries. After a clean, fully-checkpointed restart the
// cursor stays valid and Delta continues exactly where it left off.
func TestDurableDeltaResyncAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	entries := genDurableEntries(90, 9)
	d, _, err := OpenDurable("s", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(entries[:60]...); err != nil {
		t.Fatal(err)
	}
	_, cur, _ := d.Log().Delta(Cursor{})
	if err := d.Append(entries[60:]...); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	d.Close() // un-checkpointed tail -> recovery will replay the WAL

	d2, rs, err := OpenDurable("s", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.WALEntries == 0 {
		t.Fatalf("expected WAL replay: %+v", rs)
	}
	delta, cur2, resync := d2.Log().Delta(cur)
	if !resync {
		t.Fatal("stale cursor not detected after tail recovery")
	}
	if len(delta) != len(entries) {
		t.Fatalf("resync delta has %d entries, want %d", len(delta), len(entries))
	}
	d2.Close() // clean: recovery checkpointed everything already

	d3, rs3, err := OpenDurable("s", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if rs3.WALEntries != 0 {
		t.Fatalf("clean restart replayed a tail: %+v", rs3)
	}
	delta, _, resync = d3.Log().Delta(cur2)
	if resync || len(delta) != 0 {
		t.Fatalf("cursor invalidated across clean restart: resync=%v delta=%d", resync, len(delta))
	}
}

func TestDurableFederation(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	ea, eb := genDurableEntries(80, 10), genDurableEntries(80, 11)
	da, _, err := OpenDurable("site-a", dirA, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer da.Close()
	db, _, err := OpenDurable("site-b", dirB, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := da.Append(ea...); err != nil {
		t.Fatal(err)
	}
	if err := da.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(eb...); err != nil {
		t.Fatal(err)
	}

	f := &Federation{}
	f.AddTimeSource(da)
	f.AddTimeSource(db)
	got := f.Consolidate()

	oracle := NewFederation(da.Log(), db.Log()).Consolidate()
	if !bytes.Equal(jsonlBytes(t, got.Entries), jsonlBytes(t, oracle.Entries)) {
		t.Fatal("durable-sourced consolidation diverges from in-memory")
	}
	if got.Duplicates != oracle.Duplicates || len(got.Conflicts) != len(oracle.Conflicts) {
		t.Fatalf("dedup/conflict divergence: %d/%d vs %d/%d",
			got.Duplicates, len(got.Conflicts), oracle.Duplicates, len(oracle.Conflicts))
	}
}

// TestDurableCrashInjectionDifferential is the torn-write differential
// suite: the whole store (index pages, WAL segments, checkpoint log)
// shares one byte budget and dies mid-write at a randomized offset.
// Recovery must always produce a clean prefix of the oracle's append
// order — byte-identical JSONL, matching refinement-index stats, and
// an index view equal to the in-memory one — and must include every
// entry acknowledged by a successful Sync.
func TestDurableCrashInjectionDifferential(t *testing.T) {
	entries := genDurableEntries(260, 12)
	// Append stamps the site; stamp the oracle copy up front so the
	// prefix comparison is over identical bytes.
	for i := range entries {
		entries[i].Site = "s"
	}
	for trial := 0; trial < 22; trial++ {
		budget := int64(600 + trial*731)
		dir := t.TempDir()
		fb := storage.NewFailBudget(budget)
		open := func(p string) (storage.File, error) {
			inner, err := storage.OpenOSFile(p)
			if err != nil {
				return nil, err
			}
			return storage.NewFailFileShared(inner, fb), nil
		}
		d, _, err := OpenDurable("s", dir, DurableOptions{
			OpenFile:       open,
			CommitInterval: -1, // flush every append: the budget dies mid-stream
		})
		if err != nil {
			continue // crashed during creation: nothing recoverable yet
		}
		synced := 0
		for i := range entries {
			if err := d.Append(entries[i]); err != nil {
				break
			}
			d.Sync()
			if d.wal.DurableLSN() >= uint64(i+1) {
				synced = i + 1
			}
			if i%90 == 89 {
				if err := d.Checkpoint(); err != nil {
					break
				}
			}
			if fb.Failed() {
				break
			}
		}
		appended := d.Log().Len()
		d.Close()

		d2, rs, err := OpenDurable("s", dir, DurableOptions{})
		if err != nil {
			t.Fatalf("trial %d (budget %d): recovery failed: %v", trial, budget, err)
		}
		got := d2.Log().Snapshot()
		k := len(got)
		if k > appended {
			t.Fatalf("trial %d: recovered %d > appended %d", trial, k, appended)
		}
		if k < synced {
			t.Fatalf("trial %d (budget %d): recovered %d but %d were acknowledged durable",
				trial, budget, k, synced)
		}
		if !bytes.Equal(jsonlBytes(t, got), jsonlBytes(t, entries[:k])) {
			t.Fatalf("trial %d (budget %d): recovered state is not a clean prefix (k=%d)",
				trial, budget, k)
		}
		oracle := NewLog("s")
		if err := oracle.Append(entries[:k]...); err != nil {
			t.Fatal(err)
		}
		if !sameStats(d2.Log().Summary(), oracle.Summary()) {
			t.Fatalf("trial %d: recovered refinement stats diverge", trial)
		}
		if !bytes.Equal(jsonlBytes(t, d2.SnapshotByTime()), jsonlBytes(t, oracle.SnapshotByTime())) {
			t.Fatalf("trial %d: recovered index view diverges from oracle", trial)
		}
		_ = rs
		// Life goes on after recovery: append, close, reopen.
		if err := d2.Append(entries[:5]...); err != nil {
			t.Fatalf("trial %d: post-recovery append: %v", trial, err)
		}
		d2.Sync()
		d2.Close()
		d3, _, err := OpenDurable("s", dir, DurableOptions{})
		if err != nil {
			t.Fatalf("trial %d: second recovery: %v", trial, err)
		}
		if d3.Log().Len() != k+5 {
			t.Fatalf("trial %d: post-recovery appends lost: %d != %d", trial, d3.Log().Len(), k+5)
		}
		d3.Close()
	}
}

// TestDurableConcurrentCheckpoint hammers appends, checkpoints, and
// index reads concurrently; run under -race it checks the checkpoint
// fence (Log.addMu) and the store's reader/checkpoint serialization.
// Afterwards everything appended must be present exactly once.
func TestDurableConcurrentCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d, _, err := OpenDurable("s", dir, DurableOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			es := genDurableEntries(perWriter, int64(100+w))
			for i := range es {
				if err := d.Append(es[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var ckpt sync.WaitGroup
	ckpt.Add(2)
	go func() {
		defer ckpt.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := d.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() {
		defer ckpt.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.SnapshotByTime()
			}
		}
	}()
	wg.Wait()
	close(stop)
	ckpt.Wait()
	d.Sync()
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := d.Log().Len(); got != writers*perWriter {
		t.Fatalf("len = %d, want %d", got, writers*perWriter)
	}
	mem := d.Log().SnapshotByTime()
	idx := d.SnapshotByTime()
	if !bytes.Equal(jsonlBytes(t, idx), jsonlBytes(t, mem)) {
		t.Fatal("index view diverges after concurrent checkpoints")
	}
	d.Close()

	d2, rs, err := OpenDurable("s", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rs.CheckpointEntries != writers*perWriter || rs.WALEntries != 0 || rs.Dropped != 0 {
		t.Fatalf("recovery after concurrent run: %+v", rs)
	}
}

// TestDurableExpireCrashInjection kills the store at randomized write
// offsets during Expire's compaction. The compaction must be
// all-or-nothing: whatever the crash point, reopen must succeed (the
// store is never left unopenable) and serve either the pre-expiry or
// the post-expiry generation — never a mix of the two — with the
// index view matching memory.
func TestDurableExpireCrashInjection(t *testing.T) {
	entries := genDurableEntries(200, 13)
	base := time.Date(2026, 3, 1, 8, 0, 0, 0, time.UTC)
	cutoff := base.Add(25 * time.Second)

	// Oracles: the same workload, expired (or not) in memory.
	preLog, postLog := NewLog("s"), NewLog("s")
	if err := preLog.Append(entries...); err != nil {
		t.Fatal(err)
	}
	if err := postLog.Append(entries...); err != nil {
		t.Fatal(err)
	}
	if postLog.Expire(cutoff, time.Time{}) == 0 {
		t.Fatal("workload has nothing to expire")
	}
	pre, post := jsonlBytes(t, preLog.Snapshot()), jsonlBytes(t, postLog.Snapshot())

	for trial := 0; trial < 24; trial++ {
		dir := t.TempDir()
		// Seed a clean, fully checkpointed store without failpoints, so
		// the budget below is spent inside Expire alone.
		d, _, err := OpenDurable("s", dir, DurableOptions{CommitInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Append(entries...); err != nil {
			t.Fatal(err)
		}
		d.Sync()
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		d.Close()

		fb := storage.NewFailBudget(int64(1000 + trial*7919))
		open := func(p string) (storage.File, error) {
			inner, err := storage.OpenOSFile(p)
			if err != nil {
				return nil, err
			}
			return storage.NewFailFileShared(inner, fb), nil
		}
		d2, _, err := OpenDurable("s", dir, DurableOptions{OpenFile: open, CommitInterval: -1})
		if err != nil {
			continue // budget died during open's own bookkeeping
		}
		_, eerr := d2.Expire(cutoff, time.Time{})
		completed := eerr == nil && !fb.Failed()
		d2.Close()

		d3, rs, err := OpenDurable("s", dir, DurableOptions{})
		if err != nil {
			t.Fatalf("trial %d: store unopenable after crashed compaction: %v", trial, err)
		}
		got := jsonlBytes(t, d3.Log().Snapshot())
		switch {
		case completed && !bytes.Equal(got, post):
			t.Fatalf("trial %d: completed expiry lost after reopen", trial)
		case !completed && !bytes.Equal(got, pre) && !bytes.Equal(got, post):
			t.Fatalf("trial %d: mixed-generation state after crash (%d bytes, pre %d, post %d)",
				trial, len(got), len(pre), len(post))
		}
		if bytes.Equal(got, pre) && rs.CompactionResumed {
			t.Fatalf("trial %d: resumed a compaction that never committed", trial)
		}
		if !bytes.Equal(jsonlBytes(t, d3.SnapshotByTime()), jsonlBytes(t, d3.Log().SnapshotByTime())) {
			t.Fatalf("trial %d: index view diverges from memory after crashed compaction", trial)
		}
		// Life goes on: the store keeps accepting work either way.
		if err := d3.Append(entries[:3]...); err != nil {
			t.Fatalf("trial %d: post-recovery append: %v", trial, err)
		}
		d3.Sync()
		d3.Close()
	}
}

// TestDurableDirectExpireRejected: calling Expire on the wrapped Log
// instead of Durable.Expire desynchronizes the shards from the index
// and the drop accounting; the next checkpoint must refuse to persist
// that instead of miscounting the expired tail as drops.
func TestDurableDirectExpireRejected(t *testing.T) {
	dir := t.TempDir()
	d, _, err := OpenDurable("s", dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	entries := genDurableEntries(100, 14)
	if err := d.Append(entries...); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	base := time.Date(2026, 3, 1, 8, 0, 0, 0, time.UTC)
	if d.Log().Expire(base.Add(20*time.Second), time.Time{}) == 0 {
		t.Fatal("workload has nothing to expire")
	}
	if err := d.Checkpoint(); err == nil {
		t.Fatal("checkpoint persisted a direct Log.Expire silently")
	}
	// The sanctioned path still works afterwards.
	if _, err := d.Expire(base.Add(25*time.Second), time.Time{}); err != nil {
		t.Fatalf("Durable.Expire after rejection: %v", err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after sanctioned expiry: %v", err)
	}
}
