// Package atomicsafe exercises both atomicsafe rules: mixed
// atomic/plain access to a counter field, and mutation of module
// structs after they flow through an atomic.Pointer.
package atomicsafe

import (
	"sync"
	"sync/atomic"
)

type Counter struct {
	hits  int64
	total int64
}

// bump is the atomic access that marks Counter.hits atomic
// program-wide.
func (c *Counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

// viaPointer reaches the same field through a pointer local; the SSA
// copy chain resolves it to &c.hits.
func viaPointer(c *Counter) {
	p := &c.hits
	atomic.AddInt64(p, 1)
}

func (c *Counter) read() int64 {
	return c.hits // want atomicsafe "plain read races"
}

func (c *Counter) reset() {
	c.hits = 0 // want atomicsafe "plain write races"
}

// totalOK is plain-only: never touched by sync/atomic, so plain access
// is fine.
func (c *Counter) totalOK() int64 {
	c.total++
	return c.total
}

type Snapshot struct {
	version uint64
	bits    []uint64
}

var current atomic.Pointer[Snapshot]

// publishThenMutate hands the snapshot to lock-free readers and keeps
// writing into it.
func publishThenMutate(v uint64) {
	s := &Snapshot{version: v}
	current.Store(s)
	s.version = v + 1 // want atomicsafe "mutated after atomic publication"
}

// publishFresh freezes before the swap: all writes precede Store.
func publishFresh(v uint64) {
	s := &Snapshot{version: v}
	s.bits = append(s.bits, 1)
	current.Store(s)
}

// loadMutate writes into a snapshot other goroutines are reading.
func loadMutate() {
	s := current.Load()
	s.version++ // want atomicsafe "mutated after atomic publication"
}

// lockedBox carries its own mutex: it opts into in-place mutation
// under its own lock, so the publication rule does not apply.
type lockedBox struct {
	mu sync.Mutex
	n  int
}

var box atomic.Pointer[lockedBox]

func lockedOK() {
	b := box.Load()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
