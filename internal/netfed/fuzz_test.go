package netfed

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzFrameDecode pins the frame layer's hostile-input contract: no
// panic, no over-read, and every successful decode is re-encodable to
// a frame that decodes to the same message.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, MsgHello, []byte("seed")))
	f.Add(AppendFrame(nil, MsgBatch, bytes.Repeat([]byte{7}, 300)))
	f.Add(AppendFrame(AppendFrame(nil, MsgAck, []byte{1}), MsgError, []byte("two frames")))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	corrupt := AppendFrame(nil, MsgBatch, []byte("payload"))
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, b []byte) {
		typ, payload, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		re := AppendFrame(nil, typ, payload)
		typ2, payload2, n2, err := DecodeFrame(re)
		if err != nil || typ2 != typ || n2 != len(re) || !bytes.Equal(payload2, payload) {
			t.Fatalf("re-encoded frame does not round-trip: %v", err)
		}
		// The reader path agrees with the slice path.
		fr := NewFrameReader(bytes.NewReader(b[:n]))
		rtyp, rpayload, rerr := fr.Next()
		if rerr != nil || rtyp != typ || !bytes.Equal(rpayload, payload) {
			t.Fatalf("FrameReader disagrees with DecodeFrame: %v", rerr)
		}
		if _, _, rerr := fr.Next(); rerr != io.EOF {
			t.Fatalf("trailing read err = %v, want EOF", rerr)
		}
	})
}

// FuzzEntryCodec pins the batch codec: arbitrary payloads never panic
// or over-read, and any payload that decodes re-encodes to the
// canonical form — whose decode is identical and whose re-encode is
// byte-identical (the codec's fixed point).
func FuzzEntryCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(NewEncoder().AppendBatch(nil, 1, genEntries(1, 5)))
	f.Add(NewEncoder().AppendBatch(nil, 900, genEntries(2, 64)))
	f.Add(NewEncoder().AppendBatch(nil, 0, nil))
	f.Add([]byte{0x01, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, b []byte) {
		dec := NewDecoder()
		base, entries, err := dec.DecodeBatch(b)
		if err != nil {
			return
		}
		canonical := NewEncoder().AppendBatch(nil, base, entries)
		base2, entries2, err := NewDecoder().DecodeBatch(canonical)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
		if base2 != base || !reflect.DeepEqual(entries2, entries) {
			t.Fatal("canonical decode differs from original decode")
		}
		again := NewEncoder().AppendBatch(nil, base2, entries2)
		if !bytes.Equal(again, canonical) {
			t.Fatal("re-encode of canonical form is not byte-identical")
		}
	})
}
