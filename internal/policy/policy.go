// Package policy implements the formal privacy-policy model of PRIMA
// (Bhatti & Grandison, 2007), Section 3.1: RuleTerms (Definition 1),
// ground and composite terms (Definition 2), Rules as conjunctions of
// RuleTerms (Definition 5), Policies as collections of Rules
// (Definition 7), the equivalence relations of Definitions 4 and 6,
// and the Range of a policy (Definition 8).
package policy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vocab"
)

// Term is a RuleTerm (Definition 1): the assignment of a value to an
// attribute, e.g. (data, demographic).
type Term struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`

	// key caches the canonical comparison key. It is set only when the
	// term has been normalized into a Rule (or derived by the grounding
	// fast path), so literal-constructed Terms remain comparable with
	// ==/DeepEqual against T() and struct literals.
	key string
}

// T is shorthand for constructing a Term.
//
// prima:redact — a Term is an (attribute, category) pair drawn from
// the shared vocabulary taxonomy: the projection of an audit row into
// policy space discards the user identity, and refinement only
// surfaces terms whose support clears the k-anonymity thresholds
// (MinSupport, MinDistinctUsers). phileak therefore treats term
// construction as the declassification boundary for the data and
// purpose categories.
func T(attr, value string) Term { return Term{Attr: attr, Value: value} }

// String renders the term in the paper's notation.
func (t Term) String() string { return "(" + t.Attr + ", " + t.Value + ")" }

// Key returns the normalized comparison key of the term. Terms held
// inside a Rule carry the key precomputed at construction; the
// computation only runs for free-standing terms.
func (t Term) Key() string {
	if t.key != "" {
		return t.key
	}
	return vocab.Norm(t.Attr) + "=" + vocab.Norm(t.Value)
}

// IsGround reports whether the term is ground with respect to v
// (Definition 2).
func (t Term) IsGround(v *vocab.Vocabulary) bool { return v.IsGround(t.Attr, t.Value) }

// GroundTerms returns the set RT' of ground terms derivable from t
// (Definition 3), in deterministic order.
func (t Term) GroundTerms(v *vocab.Vocabulary) []Term {
	values := v.GroundSet(t.Attr, t.Value)
	out := make([]Term, len(values))
	for i, val := range values {
		out[i] = Term{Attr: t.Attr, Value: val}
	}
	return out
}

// Equivalent reports whether t ≈ u under v (Definition 4): the terms
// share an attribute and their ground sets intersect.
func (t Term) Equivalent(u Term, v *vocab.Vocabulary) bool {
	if vocab.Norm(t.Attr) != vocab.Norm(u.Attr) {
		return false
	}
	return v.Equivalent(t.Attr, t.Value, u.Value)
}

// Rule is a conjunction of RuleTerms (Definition 5). Rules are kept
// normalized: terms sorted by attribute then value, with exact
// duplicates removed. The paper's cardinality #R is Len().
type Rule struct {
	terms []Term
	// key caches the canonical comparison key (Definition 6 identity
	// for ground rules), computed once at construction so that every
	// downstream comparison — Policy indexing, Range dedup, coverage
	// counting — is a plain string compare.
	key string
}

// NewRule builds a normalized rule from terms. It is an error to
// construct an empty rule (Definition 5 requires n ≥ 1) or a rule with
// two different values for the same attribute: a Rule models one
// specific combination of attribute assignments.
func NewRule(terms ...Term) (Rule, error) {
	if len(terms) == 0 {
		return Rule{}, fmt.Errorf("policy: a rule requires at least one term")
	}
	type keyed struct {
		t      Term
		na, nv string
	}
	byAttr := make(map[string]keyed, len(terms))
	for _, t := range terms {
		na, nv := vocab.Norm(t.Attr), vocab.Norm(t.Value)
		if na == "" {
			return Rule{}, fmt.Errorf("policy: term %v has an empty attribute", t)
		}
		if nv == "" {
			return Rule{}, fmt.Errorf("policy: term %v has an empty value", t)
		}
		if prev, ok := byAttr[na]; ok {
			if prev.nv != nv {
				return Rule{}, fmt.Errorf("policy: conflicting terms %v and %v for attribute %q", prev.t, t, t.Attr)
			}
			continue
		}
		t.key = na + "=" + nv
		byAttr[na] = keyed{t: t, na: na, nv: nv}
	}
	norm := make([]keyed, 0, len(byAttr))
	for _, k := range byAttr {
		norm = append(norm, k)
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i].na != norm[j].na {
			return norm[i].na < norm[j].na
		}
		return norm[i].nv < norm[j].nv
	})
	out := make([]Term, len(norm))
	keys := make([]string, len(norm))
	for i, k := range norm {
		out[i] = k.t
		keys[i] = k.t.key
	}
	return Rule{terms: out, key: strings.Join(keys, "&")}, nil
}

// MustRule is NewRule that panics on error; for static data.
func MustRule(terms ...Term) Rule {
	r, err := NewRule(terms...)
	if err != nil {
		panic(err)
	}
	return r
}

// Terms returns the rule's terms in normalized order. The returned
// slice must not be modified.
func (r Rule) Terms() []Term { return r.terms }

// Len is the cardinality #R of the rule.
func (r Rule) Len() int { return len(r.terms) }

// IsZero reports whether the rule is the zero value (no terms).
func (r Rule) IsZero() bool { return len(r.terms) == 0 }

// Value returns the value the rule assigns to attr and whether the
// attribute is present.
func (r Rule) Value(attr string) (string, bool) {
	key := vocab.Norm(attr)
	for _, t := range r.terms {
		if vocab.Norm(t.Attr) == key {
			return t.Value, true
		}
	}
	return "", false
}

// String renders the rule in the paper's notation,
// {(a1, v1) ∧ (a2, v2) ∧ ...}.
func (r Rule) String() string {
	parts := make([]string, len(r.terms))
	for i, t := range r.terms {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, " ∧ ") + "}"
}

// Key returns a canonical comparison key. Two rules have equal keys
// iff they contain exactly the same normalized terms. The key is
// computed once at construction; Key only reads the cached value.
func (r Rule) Key() string {
	if r.key != "" || len(r.terms) == 0 {
		return r.key
	}
	// Fallback for rules built outside the constructors (should not
	// happen; kept for safety).
	parts := make([]string, len(r.terms))
	for i, t := range r.terms {
		parts[i] = t.Key()
	}
	return strings.Join(parts, "&")
}

// TripleKey returns the canonical key of the ground rule
// {(data, d) ∧ (purpose, p) ∧ (authorized, a)} — the policy
// projection of an audit row or an enforcement check — without
// constructing the rule. Normalized attribute order is
// authorized < data < purpose, matching NewRule's sort.
//
// prima:redact — same declassification boundary as T: the key holds
// only vocabulary categories, never a user identity.
func TripleKey(data, purpose, authorized string) string {
	a, d, p := vocab.Norm(authorized), vocab.Norm(data), vocab.Norm(purpose)
	var sb strings.Builder
	sb.Grow(len("authorized=&data=&purpose=") + len(a) + len(d) + len(p))
	sb.WriteString("authorized=")
	sb.WriteString(a)
	sb.WriteString("&data=")
	sb.WriteString(d)
	sb.WriteString("&purpose=")
	sb.WriteString(p)
	return sb.String()
}

// IsGround reports whether every term of the rule is ground under v.
func (r Rule) IsGround(v *vocab.Vocabulary) bool {
	for _, t := range r.terms {
		if !t.IsGround(v) {
			return false
		}
	}
	return true
}

// Project returns a new rule containing only the terms whose
// attributes appear in attrs. It returns the zero Rule if none match.
func (r Rule) Project(attrs ...string) Rule {
	keep := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		keep[vocab.Norm(a)] = true
	}
	var terms []Term
	var keys []string
	for _, t := range r.terms {
		if keep[vocab.Norm(t.Attr)] {
			terms = append(terms, t)
			keys = append(keys, t.Key())
		}
	}
	return Rule{terms: terms, key: strings.Join(keys, "&")}
}

// Groundings enumerates the ground rules derivable from r under v:
// the cartesian product of each term's ground set (Corollary 1).
// The enumeration is deterministic. limit > 0 bounds the number of
// rules produced; the bool result reports whether the enumeration was
// truncated.
func (r Rule) Groundings(v *vocab.Vocabulary, limit int) ([]Rule, bool) {
	return groundProduct(keyedSets(r.terms, v, nil), limit)
}

// keyedSets computes the keyed ground-term set of each term, sharing
// results across identical terms through memo (may be nil). The memo
// lets a range expansion over many rules derive each distinct
// composite term once.
func keyedSets(terms []Term, v *vocab.Vocabulary, memo map[string][]Term) [][]Term {
	sets := make([][]Term, len(terms))
	for i, t := range terms {
		key := t.Key()
		if g, ok := memo[key]; ok {
			sets[i] = g
			continue
		}
		g := t.groundTermsKeyed(v)
		if memo != nil {
			memo[key] = g
		}
		sets[i] = g
	}
	return sets
}

// groundProduct enumerates the cartesian product of the keyed ground
// sets — the grounding fast path. The enumeration order (last set
// varies fastest) and the truncation semantics match the original
// per-rule expansion exactly.
func groundProduct(sets [][]Term, limit int) ([]Rule, bool) {
	k := len(sets)
	total := 1
	for _, s := range sets {
		total *= len(s)
	}
	if limit > 0 && total > limit {
		total = limit
	}
	out := make([]Rule, 0, total)
	// One backing array holds the terms of every ground rule, and one
	// append-only builder holds every rule key (each key is a slice of
	// the accumulated string — appends never mutate bytes already
	// written, so the slices stay valid as the buffer grows): the
	// expansion is the hot path of Range (Definition 8) and per-rule
	// allocations dominate its cost.
	flat := make([]Term, total*k)
	idx := make([]int, k)
	truncated := false
	var sb strings.Builder
	for {
		base := len(out) * k
		row := flat[base : base+k : base+k]
		start := sb.Len()
		for i, j := range idx {
			row[i] = sets[i][j]
			if i > 0 {
				sb.WriteByte('&')
			}
			sb.WriteString(row[i].key)
		}
		out = append(out, Rule{terms: row, key: sb.String()[start:]})
		if limit > 0 && len(out) >= limit {
			// Check whether anything remains.
			for i := len(idx) - 1; i >= 0; i-- {
				if idx[i]+1 < len(sets[i]) {
					truncated = true
					break
				}
			}
			break
		}
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(sets[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, truncated
}

// groundTermsKeyed is GroundTerms with the canonical term keys
// precomputed, so grounding a composite rule performs one Norm per
// distinct ground value instead of one per derived rule.
func (t Term) groundTermsKeyed(v *vocab.Vocabulary) []Term {
	values := v.GroundSet(t.Attr, t.Value)
	na := vocab.Norm(t.Attr)
	out := make([]Term, len(values))
	// All keys are slices of one append-only builder (see
	// groundProduct for why that is safe).
	var sb strings.Builder
	for i, val := range values {
		start := sb.Len()
		sb.WriteString(na)
		sb.WriteByte('=')
		sb.WriteString(vocab.Norm(val))
		out[i] = Term{Attr: t.Attr, Value: val, key: sb.String()[start:]}
	}
	return out
}

// Equivalent reports whether r ≈ u under v (Definition 6): the rules
// have the same cardinality and every term of r is equivalent to some
// term of u.
func (r Rule) Equivalent(u Rule, v *vocab.Vocabulary) bool {
	if r.Len() != u.Len() {
		return false
	}
	for _, t := range r.terms {
		found := false
		for _, s := range u.terms {
			if t.Equivalent(s, v) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Covers reports whether r subsumes ground rule g: same attributes,
// and each of r's values subsumes g's value in the vocabulary. This is
// the practical containment test used to explain coverage gaps.
func (r Rule) Covers(g Rule, v *vocab.Vocabulary) bool {
	if r.Len() != g.Len() {
		return false
	}
	for _, t := range r.terms {
		gv, ok := g.Value(t.Attr)
		if !ok || !v.Subsumes(t.Attr, t.Value, gv) {
			return false
		}
	}
	return true
}
