package audit

import (
	"bytes"
	"testing"
)

// FuzzDecodeEntry feeds arbitrary bytes through both audit codecs and
// pins their contract: no panic on any input, and every accepted log
// survives an encode/decode round trip entry for entry (same
// canonical Key per position).
func FuzzDecodeEntry(f *testing.F) {
	jsonl := `{"time":"2007-04-02T09:00:00Z","op":1,"user":"mark","data":"referral","purpose":"registration","authorized":"nurse","status":0}` + "\n"
	csv := "time,op,user,data,purpose,authorized,status,site,reason\n" +
		"2007-04-02T09:00:00Z,1,mark,referral,registration,nurse,0,ward,\n"
	f.Add([]byte(jsonl))
	f.Add([]byte(csv))
	f.Add([]byte("{}\n"))
	f.Add([]byte("time,op,user\n"))
	f.Add([]byte(""))
	f.Add([]byte(`{"op":9}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if entries, err := ReadJSONL(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := WriteJSONL(&buf, entries); err != nil {
				t.Fatalf("encode of decoded JSONL failed: %v", err)
			}
			again, err := ReadJSONL(&buf)
			if err != nil {
				t.Fatalf("re-decode of encoded JSONL failed: %v", err)
			}
			requireSameEntries(t, entries, again)
		}
		if entries, err := ReadCSV(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := WriteCSV(&buf, entries); err != nil {
				t.Fatalf("encode of decoded CSV failed: %v", err)
			}
			again, err := ReadCSV(&buf)
			if err != nil {
				t.Fatalf("re-decode of encoded CSV failed: %v", err)
			}
			requireSameEntries(t, entries, again)
		}
	})
}

func requireSameEntries(t *testing.T, a, b []Entry) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("round trip changed entry count: %d -> %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("entry %d changed identity: %q -> %q", i, a[i].Key(), b[i].Key())
		}
	}
}
