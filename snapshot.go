package prima

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/audit"
	"repro/internal/consent"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// Snapshot file names within a snapshot directory.
const (
	snapVocabulary = "vocabulary.txt"
	snapPolicy     = "policy.txt"
	snapAudit      = "audit.jsonl"
	snapConsent    = "consent.json"
	snapDatabase   = "database.sql"
	snapMappings   = "mappings.json"
)

// Save writes the system's full state — vocabulary, policy store,
// audit log, consent records, clinical database and enforcement
// mappings — into dir (created if missing). Load restores it. The
// refinement history is derived state and is not persisted.
func (s *System) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("prima: save: %w", err)
	}
	writeFile := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("prima: save %s: %w", name, err)
		}
		if err := fn(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("prima: save %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("prima: save %s: %w", name, err)
		}
		return nil
	}
	if err := writeFile(snapVocabulary, func(f *os.File) error { return s.vocab.WriteText(f) }); err != nil {
		return err
	}
	if err := writeFile(snapPolicy, func(f *os.File) error { return s.ps.WriteText(f) }); err != nil {
		return err
	}
	if err := writeFile(snapAudit, func(f *os.File) error {
		return audit.WriteJSONL(f, s.log.Snapshot())
	}); err != nil {
		return err
	}
	if err := writeFile(snapConsent, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(s.consent.Export())
	}); err != nil {
		return err
	}
	if err := writeFile(snapDatabase, func(f *os.File) error { return s.db.Dump(f) }); err != nil {
		return err
	}
	return writeFile(snapMappings, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(s.enforcer.Mappings())
	})
}

// LoadSystem reconstructs a System from a directory written by Save.
func LoadSystem(dir string) (*System, error) {
	openErr := func(name string, err error) error {
		return fmt.Errorf("prima: load %s: %w", name, err)
	}

	vf, err := os.Open(filepath.Join(dir, snapVocabulary))
	if err != nil {
		return nil, openErr(snapVocabulary, err)
	}
	v, err := vocab.ParseText(vf)
	_ = vf.Close()
	if err != nil {
		return nil, openErr(snapVocabulary, err)
	}

	pf, err := os.Open(filepath.Join(dir, snapPolicy))
	if err != nil {
		return nil, openErr(snapPolicy, err)
	}
	ps, err := policy.ParsePolicy("PS", pf)
	_ = pf.Close()
	if err != nil {
		return nil, openErr(snapPolicy, err)
	}

	sys := New(Config{Vocabulary: v, Policy: ps})

	af, err := os.Open(filepath.Join(dir, snapAudit))
	if err != nil {
		return nil, openErr(snapAudit, err)
	}
	entries, err := audit.ReadJSONL(af)
	_ = af.Close()
	if err != nil {
		return nil, openErr(snapAudit, err)
	}
	if len(entries) > 0 {
		if err := sys.log.Append(entries...); err != nil {
			return nil, openErr(snapAudit, err)
		}
	}

	cf, err := os.Open(filepath.Join(dir, snapConsent))
	if err != nil {
		return nil, openErr(snapConsent, err)
	}
	var records []consent.Record
	err = json.NewDecoder(cf).Decode(&records)
	_ = cf.Close()
	if err != nil {
		return nil, openErr(snapConsent, err)
	}
	if err := sys.consent.Import(records); err != nil {
		return nil, openErr(snapConsent, err)
	}

	df, err := os.Open(filepath.Join(dir, snapDatabase))
	if err != nil {
		return nil, openErr(snapDatabase, err)
	}
	err = sys.db.LoadScript(df)
	_ = df.Close()
	if err != nil {
		return nil, openErr(snapDatabase, err)
	}

	mf, err := os.Open(filepath.Join(dir, snapMappings))
	if err != nil {
		return nil, openErr(snapMappings, err)
	}
	var mappings []TableMapping
	err = json.NewDecoder(mf).Decode(&mappings)
	_ = mf.Close()
	if err != nil {
		return nil, openErr(snapMappings, err)
	}
	for _, m := range mappings {
		if err := sys.RegisterTable(m); err != nil {
			return nil, openErr(snapMappings, err)
		}
	}
	return sys, nil
}

// LoadDatabaseScript is a convenience for loading fixtures: it
// executes a SQL script against the system's clinical database.
func (s *System) LoadDatabaseScript(script string) error {
	return s.db.LoadScript(strings.NewReader(script))
}
