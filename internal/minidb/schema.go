package minidb

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColumnType
}

// Table is an in-memory heap of typed rows guarded by a RWMutex.
// With a store attached (STORAGE file), every mutation is mirrored
// write-ahead into the durable backend; reads are always served from
// memory.
type Table struct {
	mu      sync.RWMutex
	name    string
	cols    []Column
	idx     map[string]int // lower(name) -> column index
	rows    [][]Value
	ids     []uint64 // rowids parallel to rows (durable identity)
	nextID  uint64
	store   rowStore // nil for plain in-memory tables
	version uint64   // bumped on every mutation; used by lazy indexes
	indexes map[string]*hashIndex
}

func newTable(name string, cols []Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("minidb: table %q needs at least one column", name)
	}
	t := &Table{name: name, cols: cols, nextID: 1, idx: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if key == "" {
			return nil, fmt.Errorf("minidb: table %q has an unnamed column", name)
		}
		if _, dup := t.idx[key]; dup {
			return nil, fmt.Errorf("minidb: table %q has duplicate column %q", name, c.Name)
		}
		t.idx[key] = i
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns a copy of the column definitions.
func (t *Table) Columns() []Column {
	out := make([]Column, len(t.cols))
	copy(out, t.cols)
	return out
}

// colIndex resolves a (case-insensitive, possibly qualified) column
// name against the table's schema.
func (t *Table) colIndex(name string) (int, error) {
	key := strings.ToLower(name)
	if i, ok := t.idx[key]; ok {
		if i == ambiguous {
			return 0, fmt.Errorf("minidb: column %q is ambiguous; qualify it", name)
		}
		return i, nil
	}
	// Qualified reference against a plain (non-join) table: accept
	// "table.col" when the qualifier matches the table name.
	if dot := strings.LastIndexByte(key, '.'); dot >= 0 {
		qualifier, bare := key[:dot], key[dot+1:]
		if qualifier == strings.ToLower(t.name) {
			if i, ok := t.idx[bare]; ok && i != ambiguous {
				return i, nil
			}
		}
		return 0, fmt.Errorf("minidb: unknown column %q", name)
	}
	return 0, fmt.Errorf("minidb: table %q has no column %q", t.name, name)
}

// Len returns the current row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// insert appends a row after coercing each value to its column type.
func (t *Table) insert(row []Value) error {
	if len(row) != len(t.cols) {
		return fmt.Errorf("minidb: table %q expects %d values, got %d", t.name, len(t.cols), len(row))
	}
	stored := make([]Value, len(row))
	for i, v := range row {
		cv, err := coerce(v, t.cols[i].Type)
		if err != nil {
			return fmt.Errorf("minidb: column %q: %w", t.cols[i].Name, err)
		}
		stored[i] = cv
	}
	t.mu.Lock()
	id := t.nextID
	if t.store != nil {
		// Write-ahead: the durable mirror sees the row before memory
		// admits it, so a storage error rejects the statement whole.
		if err := t.store.insert(id, stored); err != nil {
			t.mu.Unlock()
			return err
		}
	}
	t.nextID = id + 1
	t.rows = append(t.rows, stored)
	t.ids = append(t.ids, id)
	t.version++
	t.mu.Unlock()
	return nil
}

// snapshot returns a shallow copy of the row slice; rows themselves
// are never mutated in place (update replaces them), so sharing is
// safe for readers.
func (t *Table) snapshot() [][]Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([][]Value, len(t.rows))
	copy(out, t.rows)
	return out
}

// Database is a named collection of tables.
type Database struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	storage *StorageOptions // set by AttachStorage; nil = memory only
	// schemaGen counts schema mutations (CreateTable/DropTable). The
	// enforcement plan cache keys compiled statements on it so a
	// dropped or recreated table invalidates cached plans with one
	// lock-free load; row mutations do not bump it (plans reference
	// tables by name, not by row state).
	schemaGen atomic.Uint64
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// CreateTable creates a table programmatically.
func (db *Database) CreateTable(name string, cols []Column) (*Table, error) {
	t, err := newTable(name, cols)
	if err != nil {
		return nil, err
	}
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("minidb: table %q already exists", name)
	}
	db.tables[key] = t
	db.schemaGen.Add(1)
	return t, nil
}

// DropTable removes a table. A file-backed table's on-disk artifacts
// are deleted with it.
func (db *Database) DropTable(name string) error {
	key := strings.ToLower(name)
	db.mu.Lock()
	t, exists := db.tables[key]
	if !exists {
		db.mu.Unlock()
		return fmt.Errorf("minidb: table %q does not exist", name)
	}
	delete(db.tables, key)
	db.schemaGen.Add(1)
	db.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.store != nil {
		err := t.store.close()
		if fs, ok := t.store.(*fileStore); ok && fs.dir != "" {
			if rerr := os.RemoveAll(fs.dir); err == nil {
				err = rerr
			}
		}
		t.store = nil
		return err
	}
	return nil
}

// SchemaGeneration returns the schema mutation counter; lock-free.
func (db *Database) SchemaGeneration() uint64 {
	return db.schemaGen.Load()
}

// Table returns the named table, or an error if it does not exist.
func (db *Database) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if t, ok := db.tables[strings.ToLower(name)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("minidb: table %q does not exist", name)
}

// TableNames lists table names, sorted.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.name)
	}
	sort.Strings(out)
	return out
}

// Insert appends a row of Go values to the named table.
func (db *Database) Insert(table string, row ...Value) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	return t.insert(row)
}

// Result is the outcome of a statement: column names and rows for
// SELECT, and the number of rows affected for write statements.
type Result struct {
	Columns  []string
	Rows     [][]Value
	Affected int
}

// RowStrings renders a result row for display or CSV-ish output.
func (r *Result) RowStrings(i int) []string {
	out := make([]string, len(r.Rows[i]))
	for j, v := range r.Rows[i] {
		out[j] = v.String()
	}
	return out
}
