package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	prima "repro"
	"repro/internal/scenario"
)

func newServer(t *testing.T) (*Server, *prima.System) {
	t.Helper()
	sys := prima.New(prima.Config{Policy: scenario.PolicyStore()})
	step := 0
	base := time.Date(2007, 3, 1, 8, 0, 0, 0, time.UTC)
	sys.SetClock(func() time.Time { step++; return base.Add(time.Duration(step) * time.Second) })
	sys.DB().MustExec(`CREATE TABLE records (patient TEXT, referral TEXT, psychiatry TEXT)`)
	sys.DB().MustExec(`INSERT INTO records VALUES ('p1','cardio','none'), ('p2','derm','anxiety')`)
	if err := sys.RegisterTable(prima.TableMapping{
		Table: "records", PatientCol: "patient",
		Categories: map[string]string{"referral": "referral", "psychiatry": "psychiatry"},
	}); err != nil {
		t.Fatal(err)
	}
	return New(sys), sys
}

func do(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeBody[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad body %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	s, _ := newServer(t)
	rec := do(t, s, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s, _ := newServer(t)
	rec := do(t, s, http.MethodPost, "/query", QueryRequest{
		User: "tim", Role: "nurse", Purpose: "treatment", SQL: "SELECT referral FROM records",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[QueryResponse](t, rec)
	if len(resp.Rows) != 2 || resp.Columns[0] != "referral" {
		t.Errorf("resp = %+v", resp)
	}
	// Denied query → 403.
	rec = do(t, s, http.MethodPost, "/query", QueryRequest{
		User: "mark", Role: "nurse", Purpose: "registration", SQL: "SELECT referral FROM records",
	})
	if rec.Code != http.StatusForbidden {
		t.Errorf("denied status = %d", rec.Code)
	}
	// Bad SQL → 400.
	rec = do(t, s, http.MethodPost, "/query", QueryRequest{
		User: "tim", Role: "nurse", Purpose: "treatment", SQL: "SELEC",
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad sql status = %d", rec.Code)
	}
	// Wrong method → 405; malformed body → 400.
	if rec := do(t, s, http.MethodGet, "/query", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("method status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader("{nope"))
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", rr.Code)
	}
}

func TestBreakGlassAndRefineFlow(t *testing.T) {
	s, _ := newServer(t)
	for _, u := range []string{"mark", "tim", "bob", "mark", "tim"} {
		rec := do(t, s, http.MethodPost, "/breakglass", QueryRequest{
			User: u, Role: "nurse", Purpose: "registration",
			Reason: "front desk backlog", SQL: "SELECT referral FROM records",
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("breakglass status = %d: %s", rec.Code, rec.Body.String())
		}
	}
	// Missing reason rejected.
	rec := do(t, s, http.MethodPost, "/breakglass", QueryRequest{
		User: "mark", Role: "nurse", Purpose: "registration", SQL: "SELECT referral FROM records",
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("reasonless breakglass = %d", rec.Code)
	}

	// Patterns visible.
	rec = do(t, s, http.MethodGet, "/patterns", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("patterns status = %d", rec.Code)
	}
	pats := decodeBody[map[string][]PatternJSON](t, rec)
	if len(pats["patterns"]) != 1 || pats["patterns"][0].Support != 5 {
		t.Fatalf("patterns = %+v", pats)
	}

	// Coverage before refinement.
	rec = do(t, s, http.MethodGet, "/coverage", nil)
	cov := decodeBody[CoverageResponse](t, rec)
	if cov.EntryCoverage >= 1 || len(cov.Gaps) == 0 {
		t.Errorf("coverage = %+v", cov)
	}

	// Refine with default adopt.
	rec = do(t, s, http.MethodPost, "/refine", RefineRequest{})
	if rec.Code != http.StatusOK {
		t.Fatalf("refine status = %d: %s", rec.Code, rec.Body.String())
	}
	ref := decodeBody[RefineResponse](t, rec)
	if len(ref.Adopted) != 1 || ref.CoverageAfter <= ref.CoverageBefore {
		t.Errorf("refine = %+v", ref)
	}

	// The adopted rule is live.
	rec = do(t, s, http.MethodPost, "/query", QueryRequest{
		User: "mark", Role: "nurse", Purpose: "registration", SQL: "SELECT referral FROM records",
	})
	if rec.Code != http.StatusOK {
		t.Errorf("post-adoption query = %d", rec.Code)
	}
}

func TestRefineWithExplicitDecisions(t *testing.T) {
	s, _ := newServer(t)
	for _, u := range []string{"a", "b", "c", "a", "b"} {
		if rec := do(t, s, http.MethodPost, "/breakglass", QueryRequest{
			User: u, Role: "nurse", Purpose: "registration",
			Reason: "r", SQL: "SELECT referral FROM records",
		}); rec.Code != http.StatusOK {
			t.Fatal(rec.Body.String())
		}
	}
	rec := do(t, s, http.MethodPost, "/refine", RefineRequest{
		Default: "adopt",
		Decisions: map[string]string{
			"data=referral & purpose=registration & authorized=nurse": "reject",
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("refine status = %d: %s", rec.Code, rec.Body.String())
	}
	ref := decodeBody[RefineResponse](t, rec)
	if len(ref.Adopted) != 0 || len(ref.Rejected) != 1 {
		t.Errorf("refine = %+v", ref)
	}
	// Bad decision strings rejected.
	for _, body := range []RefineRequest{
		{Default: "nonsense"},
		{Decisions: map[string]string{"data=x": "maybe"}},
		{Decisions: map[string]string{"notarule": "adopt"}},
	} {
		if rec := do(t, s, http.MethodPost, "/refine", body); rec.Code != http.StatusBadRequest {
			t.Errorf("bad refine body accepted: %+v -> %d", body, rec.Code)
		}
	}
}

func TestRulesEndpoint(t *testing.T) {
	s, _ := newServer(t)
	rec := do(t, s, http.MethodGet, "/policy/rules", nil)
	rules := decodeBody[map[string][]string](t, rec)
	if len(rules["rules"]) != 3 {
		t.Fatalf("rules = %v", rules)
	}
	rec = do(t, s, http.MethodPost, "/policy/rules", RuleRequest{Rule: "data=insurance & purpose=billing & authorized=clerk"})
	if rec.Code != http.StatusCreated {
		t.Fatalf("add rule = %d: %s", rec.Code, rec.Body.String())
	}
	rec = do(t, s, http.MethodPost, "/policy/rules", RuleRequest{Rule: "data=bogus & purpose=billing & authorized=clerk"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad rule = %d", rec.Code)
	}
	rec = do(t, s, http.MethodDelete, "/policy/rules", RuleRequest{Rule: "data=insurance & purpose=billing & authorized=clerk"})
	if rec.Code != http.StatusOK {
		t.Errorf("delete = %d", rec.Code)
	}
	rec = do(t, s, http.MethodDelete, "/policy/rules", RuleRequest{Rule: "data=insurance & purpose=billing & authorized=clerk"})
	if rec.Code != http.StatusNotFound {
		t.Errorf("re-delete = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPut, "/policy/rules", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("put = %d", rec.Code)
	}
}

func TestConsentEndpoint(t *testing.T) {
	s, _ := newServer(t)
	rec := do(t, s, http.MethodPost, "/consent", ConsentRequest{
		Patient: "p2", Data: "clinical", Choice: "opt-out",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("consent = %d: %s", rec.Code, rec.Body.String())
	}
	// The opt-out takes effect on queries.
	qrec := do(t, s, http.MethodPost, "/query", QueryRequest{
		User: "tim", Role: "nurse", Purpose: "treatment", SQL: "SELECT patient, referral FROM records",
	})
	resp := decodeBody[QueryResponse](t, qrec)
	if len(resp.Rows) != 1 {
		t.Errorf("consented rows = %v", resp.Rows)
	}
	rec = do(t, s, http.MethodPost, "/consent", ConsentRequest{Patient: "p2", Choice: "revoke"})
	if rec.Code != http.StatusOK {
		t.Errorf("revoke = %d", rec.Code)
	}
	rec = do(t, s, http.MethodPost, "/consent", ConsentRequest{Patient: "p2", Choice: "maybe"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad choice = %d", rec.Code)
	}
	rec = do(t, s, http.MethodPost, "/consent", ConsentRequest{Patient: "", Choice: "opt-out"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty patient = %d", rec.Code)
	}
}

func TestAuditEndpoint(t *testing.T) {
	s, _ := newServer(t)
	do(t, s, http.MethodPost, "/query", QueryRequest{
		User: "tim", Role: "nurse", Purpose: "treatment", SQL: "SELECT referral FROM records",
	})
	do(t, s, http.MethodPost, "/breakglass", QueryRequest{
		User: "tim", Role: "nurse", Purpose: "registration", Reason: "r", SQL: "SELECT referral FROM records",
	})
	rec := do(t, s, http.MethodGet, "/audit", nil)
	var all struct {
		Entries []prima.Entry `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if len(all.Entries) != 2 {
		t.Fatalf("entries = %d", len(all.Entries))
	}
	rec = do(t, s, http.MethodGet, "/audit?status=exception", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if len(all.Entries) != 1 || all.Entries[0].Status != prima.StatusException {
		t.Errorf("exception filter = %+v", all.Entries)
	}
}

func TestGeneralizeEndpoint(t *testing.T) {
	s, sys := newServer(t)
	// Add the sibling leaves so generalization has work to do.
	for _, d := range []string{"prescription", "lab_result"} {
		if rec := do(t, s, http.MethodPost, "/policy/rules",
			RuleRequest{Rule: "data=" + d + " & purpose=treatment & authorized=nurse"}); rec.Code != http.StatusCreated {
			t.Fatal(rec.Body.String())
		}
	}
	before := len(sys.Rules())
	rec := do(t, s, http.MethodPost, "/generalize", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("generalize = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[GeneralizeResponse](t, rec)
	if resp.RulesBefore != before || resp.RulesAfter >= before {
		t.Errorf("resp = %+v (before=%d)", resp, before)
	}
	if rec := do(t, s, http.MethodGet, "/generalize", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET generalize = %d", rec.Code)
	}
}

func TestReportEndpoint(t *testing.T) {
	s, _ := newServer(t)
	for _, u := range []string{"a", "b", "c", "a", "b"} {
		do(t, s, http.MethodPost, "/breakglass", QueryRequest{
			User: u, Role: "nurse", Purpose: "registration",
			Reason: "r", SQL: "SELECT referral FROM records",
		})
	}
	rec := do(t, s, http.MethodGet, "/report?title=Ward+review", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("report = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "markdown") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"# Ward review", "Policy coverage", "Audit statistics"} {
		if !strings.Contains(body, want) {
			t.Errorf("report missing %q:\n%s", want, body)
		}
	}
	if rec := do(t, s, http.MethodPost, "/report", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST report = %d", rec.Code)
	}
}

func TestPatternsEvidenceEndpoint(t *testing.T) {
	s, _ := newServer(t)
	for _, u := range []string{"a", "b", "c", "a", "b"} {
		do(t, s, http.MethodPost, "/breakglass", QueryRequest{
			User: u, Role: "nurse", Purpose: "registration",
			Reason: "r", SQL: "SELECT referral FROM records",
		})
	}
	rec := do(t, s, http.MethodGet, "/patterns?evidence=1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[map[string][]EvidenceJSON](t, rec)
	evs := resp["evidence"]
	if len(evs) != 1 || evs[0].Support != 5 || evs[0].DistinctUsers != 3 {
		t.Fatalf("evidence = %+v", evs)
	}
	if evs[0].Suspicion <= 0 || evs[0].Suspicion >= 1 {
		t.Errorf("suspicion = %v", evs[0].Suspicion)
	}
}
