package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is prima-vet's third analysis layer: a pruned SSA-lite IR
// built per function on top of the CFG. Every write to a trackable
// local produces a fresh versioned value; reads resolve to the
// reaching version; phi nodes appear (on demand, so the form is
// pruned) where versions merge at join points. A small value lattice
// over the versions — constants, nil-ness, channel states — gives the
// layer-3 analyzers (atomicsafe, goleak, chanuse) and the rebased
// lockorder/phileak flow-sensitive precision the plain fact-set
// engine cannot express: a rebinding kills the old version instead of
// smearing facts over the variable's whole lifetime.
//
// Trackable locals are function-local variables (parameters and
// receiver included) that are never address-taken and never captured
// by a nested function literal; everything else stays outside SSA and
// is handled conservatively by the analyzers. Writes through a path
// (x.f = v, x[i] = v, x++) version the binding too — an "update" value
// chains to its predecessor so def-use stays precise without
// field-sensitivity. close(ch) is modeled as a defining event: the new
// version carries the closed channel state forward.

// valKind classifies how an SSA value came to be.
type valKind uint8

const (
	valParam  valKind = iota // parameter/receiver at entry
	valZero                  // var declared without initializer
	valDef                   // x = rhs, x := rhs (Expr is the rhs, nil when unsplittable)
	valUpdate                // x.f = v, x[i] = v, x++ — same binding, new version
	valClose                 // close(x)
	valPhi                   // merge at a join point
)

func (k valKind) String() string {
	switch k {
	case valParam:
		return "param"
	case valZero:
		return "zero"
	case valDef:
		return "def"
	case valUpdate:
		return "update"
	case valClose:
		return "close"
	case valPhi:
		return "phi"
	}
	return "?"
}

// SSAValue is one version of one local variable.
type SSAValue struct {
	ID    int          // creation order, unique within a FuncSSA
	Obj   types.Object // the variable this value versions
	Num   int          // version number of Obj (0 = entry value)
	Kind  valKind
	Expr  ast.Expr    // defining rhs (valDef) or written lvalue (valUpdate)
	Prev  *SSAValue   // predecessor version (valUpdate, valClose)
	Ops   []*SSAValue // phi operands, in predecessor-block order
	Block *Block      // block the value is defined in (nil for entry values)
	Pos   token.Pos
}

func (v *SSAValue) String() string {
	if v == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s#%d(%s)", v.Obj.Name(), v.Num, v.Kind)
}

// latFlags is the value lattice: a bitset of facts that may hold for
// a version. A may-analysis joins by union, so "possibly nil" is
// latNil set alongside others; "definitely nil" is latNil alone.
type latFlags uint16

const (
	latUnknown  latFlags = 1 << iota // from an opaque source (call, field, foreign var)
	latNil                           // nil literal / zero value of a reference type
	latNonNil                        // make, new, &x, composite literal, basic literal
	latConst                         // a go/constant value is attached to the def site
	latClosed                        // channel: close() ran on some path to here
	latBuffered                      // channel: made with constant capacity > 0
)

func (f latFlags) String() string {
	var parts []string
	for _, p := range []struct {
		bit  latFlags
		name string
	}{
		{latUnknown, "unknown"}, {latNil, "nil"}, {latNonNil, "nonnil"},
		{latConst, "const"}, {latClosed, "closed"}, {latBuffered, "buffered"},
	} {
		if f&p.bit != 0 {
			parts = append(parts, p.name)
		}
	}
	if len(parts) == 0 {
		return "bottom"
	}
	return strings.Join(parts, "|")
}

// FuncSSA is the SSA form of one function body.
type FuncSSA struct {
	CFG  *CFG
	Node *CGNode

	// Defs maps each write-site identifier to the value it defines.
	Defs map[*ast.Ident]*SSAValue
	// Uses maps each read-site identifier to the reaching value — the
	// def-use chains, keyed from the use side.
	Uses map[*ast.Ident]*SSAValue
	// PhiOf lists the phi nodes placed at each join block.
	PhiOf map[*Block][]*SSAValue
	// UseSites is the def-use chain keyed from the def side.
	UseSites map[*SSAValue][]*ast.Ident

	tracked map[types.Object]bool
	flags   map[*SSAValue]latFlags
	values  []*SSAValue
}

// Tracked reports whether the variable participates in SSA form.
func (f *FuncSSA) Tracked(obj types.Object) bool { return f.tracked[obj] }

// Values returns every SSA value in creation order.
func (f *FuncSSA) Values() []*SSAValue { return f.values }

// ResolveCopies follows valDef chains through plain variable copies
// (x := y, x = y) to the value's originating definition: the first
// value in the chain that is not a bare copy of another tracked
// variable. Used for alias resolution (lockorder: mu := &s.mu).
func (f *FuncSSA) ResolveCopies(v *SSAValue) *SSAValue {
	for steps := 0; v != nil && steps < 64; steps++ {
		if v.Kind != valDef || v.Expr == nil {
			return v
		}
		id, ok := ast.Unparen(v.Expr).(*ast.Ident)
		if !ok {
			return v
		}
		next, ok := f.Uses[id]
		if !ok {
			return v
		}
		v = next
	}
	return v
}

// DefExpr returns the expression that ultimately defines v after
// following plain copies, or nil (phi, param, zero, update).
func (f *FuncSSA) DefExpr(v *SSAValue) ast.Expr {
	v = f.ResolveCopies(v)
	if v != nil && v.Kind == valDef {
		return v.Expr
	}
	return nil
}

// Flags returns the lattice facts of a value, computing the whole
// function's lattice (a monotone OR-fixpoint over phis and copies) on
// first use.
func (f *FuncSSA) Flags(v *SSAValue) latFlags {
	if f.flags == nil {
		f.computeFlags()
	}
	return f.flags[v]
}

// ---- construction ----

// BuildSSA constructs the SSA form of one call-graph node over its
// (freshly built) CFG.
func BuildSSA(n *CGNode) *FuncSSA {
	f := &FuncSSA{
		CFG:      BuildCFG(n.Body),
		Node:     n,
		Defs:     make(map[*ast.Ident]*SSAValue),
		Uses:     make(map[*ast.Ident]*SSAValue),
		PhiOf:    make(map[*Block][]*SSAValue),
		UseSites: make(map[*SSAValue][]*ast.Ident),
	}
	f.tracked = trackedObjects(n)
	b := &ssaBuilder{
		fn:       f,
		info:     n.Pkg.Info,
		lastDef:  make(map[*Block]map[types.Object]*SSAValue),
		entryVal: make(map[*Block]map[types.Object]*SSAValue),
		replaced: make(map[*SSAValue]*SSAValue),
		initials: make(map[types.Object]*SSAValue),
		verOf:    make(map[types.Object]int),
	}
	b.preds = make(map[*Block][]*Block, len(f.CFG.Blocks))
	for _, blk := range f.CFG.Blocks {
		for _, s := range blk.Succs {
			b.preds[s] = append(b.preds[s], blk)
		}
	}

	// Phase 1: create a versioned def for every write, block by block.
	for _, blk := range f.CFG.Blocks {
		b.scanBlock(blk, true)
	}
	// Phase 2+3: replay each block resolving reads against reaching
	// definitions, placing phis on demand at join points.
	for _, blk := range f.CFG.Blocks {
		b.scanBlock(blk, false)
	}
	// Prune phis that turned out trivial and chase replacements.
	b.pruneTrivialPhis()
	for id, v := range f.Uses {
		f.Uses[id] = b.resolve(v)
	}
	for _, v := range f.Defs {
		if v.Prev != nil {
			v.Prev = b.resolve(v.Prev)
		}
	}
	for blk, phis := range f.PhiOf {
		kept := phis[:0]
		for _, phi := range phis {
			if b.replaced[phi] == nil {
				for i, op := range phi.Ops {
					phi.Ops[i] = b.resolve(op)
				}
				kept = append(kept, phi)
			}
		}
		if len(kept) == 0 {
			delete(f.PhiOf, blk)
		} else {
			f.PhiOf[blk] = kept
		}
	}
	kept := f.values[:0]
	for _, v := range f.values {
		if b.replaced[v] == nil {
			kept = append(kept, v)
		}
	}
	f.values = kept
	// Def-use chains keyed from the def side, in source order.
	var useIDs []*ast.Ident
	for id := range f.Uses {
		useIDs = append(useIDs, id)
	}
	sort.Slice(useIDs, func(i, j int) bool { return useIDs[i].Pos() < useIDs[j].Pos() })
	for _, id := range useIDs {
		v := f.Uses[id]
		f.UseSites[v] = append(f.UseSites[v], id)
	}
	return f
}

// trackedObjects selects the locals that participate in SSA form:
// parameters, receiver, and body-local variables that are never
// address-taken and never referenced from a nested function literal.
func trackedObjects(n *CGNode) map[types.Object]bool {
	info := n.Pkg.Info
	tracked := make(map[types.Object]bool)
	for _, obj := range paramObjs(n) {
		if _, ok := obj.(*types.Var); ok {
			tracked[obj] = true
		}
	}
	ast.Inspect(n.Body, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok && !v.IsField() &&
				v.Pos() >= n.Body.Pos() && v.Pos() <= n.Body.End() {
				tracked[v] = true
			}
		}
		return true
	})
	// Exclusions. A variable whose address escapes, or that a closure
	// captures, can change behind SSA's back.
	exclude := func(obj types.Object) {
		if obj != nil {
			delete(tracked, obj)
		}
	}
	ast.Inspect(n.Body, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					exclude(info.Uses[id])
				}
			}
		case *ast.FuncLit:
			if x != n.Lit {
				ast.Inspect(x.Body, func(c ast.Node) bool {
					if id, ok := c.(*ast.Ident); ok {
						exclude(info.Uses[id])
					}
					return true
				})
				return false
			}
		}
		return true
	})
	return tracked
}

type ssaBuilder struct {
	fn   *FuncSSA
	info *types.Info

	preds    map[*Block][]*Block
	lastDef  map[*Block]map[types.Object]*SSAValue // last write per block
	entryVal map[*Block]map[types.Object]*SSAValue // reaching value at block entry
	replaced map[*SSAValue]*SSAValue               // trivial-phi replacements
	initials map[types.Object]*SSAValue            // entry/zero values
	verOf    map[types.Object]int
}

func (b *ssaBuilder) newValue(obj types.Object, kind valKind, expr ast.Expr, blk *Block, pos token.Pos) *SSAValue {
	b.verOf[obj]++
	v := &SSAValue{
		ID: len(b.fn.values), Obj: obj, Num: b.verOf[obj],
		Kind: kind, Expr: expr, Block: blk, Pos: pos,
	}
	b.fn.values = append(b.fn.values, v)
	return v
}

func (b *ssaBuilder) resolve(v *SSAValue) *SSAValue {
	for v != nil {
		r := b.replaced[v]
		if r == nil {
			return v
		}
		v = r
	}
	return v
}

// initialValue is the version of obj live at function entry: the
// parameter value, or the zero value for body locals read before any
// write (possible only on broken or dead paths, but must not crash).
func (b *ssaBuilder) initialValue(obj types.Object) *SSAValue {
	if v, ok := b.initials[obj]; ok {
		return v
	}
	kind := valZero
	for _, p := range paramObjs(b.fn.Node) {
		if p == obj {
			kind = valParam
			break
		}
	}
	b.verOf[obj] = -1 // entry value numbers 0
	v := b.newValue(obj, kind, nil, nil, obj.Pos())
	b.initials[obj] = v
	return v
}

// entryValue computes the reaching value of obj at blk's entry,
// placing a phi when predecessors disagree. The phi is installed in
// the memo before its operands are resolved so loops terminate.
func (b *ssaBuilder) entryValue(blk *Block, obj types.Object) *SSAValue {
	if m := b.entryVal[blk]; m != nil {
		if v, ok := m[obj]; ok {
			return b.resolve(v)
		}
	}
	preds := b.preds[blk]
	var v *SSAValue
	switch {
	case blk == b.fn.CFG.Entry || len(preds) == 0:
		v = b.initialValue(obj)
	case len(preds) == 1:
		v = b.exitValue(preds[0], obj)
	default:
		phi := b.newValue(obj, valPhi, nil, blk, blk.firstPos())
		b.setEntry(blk, obj, phi)
		b.fn.PhiOf[blk] = append(b.fn.PhiOf[blk], phi)
		for _, p := range preds {
			phi.Ops = append(phi.Ops, b.exitValue(p, obj))
		}
		v = b.tryTrivial(phi)
	}
	b.setEntry(blk, obj, v)
	return v
}

func (b *ssaBuilder) setEntry(blk *Block, obj types.Object, v *SSAValue) {
	m := b.entryVal[blk]
	if m == nil {
		m = make(map[types.Object]*SSAValue)
		b.entryVal[blk] = m
	}
	m[obj] = v
}

// exitValue is the value of obj at blk's exit: its last in-block def,
// or its entry value when the block never writes it.
func (b *ssaBuilder) exitValue(blk *Block, obj types.Object) *SSAValue {
	if d := b.lastDef[blk][obj]; d != nil {
		return b.resolve(d)
	}
	return b.entryValue(blk, obj)
}

// tryTrivial collapses a phi whose operands are all the same value
// (or the phi itself) into that value.
func (b *ssaBuilder) tryTrivial(phi *SSAValue) *SSAValue {
	var same *SSAValue
	for _, op := range phi.Ops {
		op = b.resolve(op)
		if op == phi || op == same {
			continue
		}
		if same != nil {
			return phi
		}
		same = op
	}
	if same == nil {
		return phi
	}
	b.replaced[phi] = same
	return same
}

// pruneTrivialPhis iterates trivial-phi collapsing to a fixpoint:
// removing one phi can make another trivial.
func (b *ssaBuilder) pruneTrivialPhis() {
	for changed := true; changed; {
		changed = false
		for _, v := range b.fn.values {
			if v.Kind != valPhi || b.replaced[v] != nil {
				continue
			}
			if b.tryTrivial(v) != v {
				changed = true
			}
		}
	}
}

// firstPos is a stable anchor position for phis placed in the block.
func (blk *Block) firstPos() token.Pos {
	if len(blk.Stmts) > 0 {
		return blk.Stmts[0].Pos()
	}
	return token.NoPos
}

// scanBlock walks one block's statements in execution order. In the
// define pass it creates a versioned value per write; in the resolve
// pass it replays the block against reaching definitions, recording
// uses and filling update/close predecessors.
func (b *ssaBuilder) scanBlock(blk *Block, define bool) {
	cur := make(map[types.Object]*SSAValue)
	reach := func(obj types.Object) *SSAValue {
		if v, ok := cur[obj]; ok {
			return v
		}
		if define {
			return nil
		}
		v := b.entryValue(blk, obj)
		cur[obj] = v
		return v
	}
	read := func(id *ast.Ident) {
		obj := b.info.Uses[id]
		if obj == nil || !b.fn.tracked[obj] {
			return
		}
		if define {
			return
		}
		if v := reach(obj); v != nil {
			b.fn.Uses[id] = v
		}
	}
	write := func(id *ast.Ident, kind valKind, expr ast.Expr) {
		obj := b.info.Defs[id]
		if obj == nil {
			obj = b.info.Uses[id]
		}
		if obj == nil || !b.fn.tracked[obj] {
			return
		}
		if define {
			v := b.newValue(obj, kind, expr, blk, id.Pos())
			b.fn.Defs[id] = v
			cur[obj] = v
			m := b.lastDef[blk]
			if m == nil {
				m = make(map[types.Object]*SSAValue)
				b.lastDef[blk] = m
			}
			m[obj] = v
			return
		}
		v := b.fn.Defs[id]
		if v == nil {
			return
		}
		if kind == valUpdate || kind == valClose {
			v.Prev = reach(obj)
		}
		cur[obj] = v
	}
	for _, s := range blk.Stmts {
		b.walkStmt(s, read, write)
	}
	if rng := b.fn.CFG.Ranges[blk]; rng != nil {
		// Implicit per-iteration assignment of the key/value variables,
		// after the range expression was evaluated.
		for _, e := range []ast.Expr{rng.Key, rng.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				write(id, valDef, nil)
			}
		}
	}
}

// walkStmt dispatches one statement: reads before writes, matching
// Go's evaluation order closely enough for a may-analysis.
func (b *ssaBuilder) walkStmt(s ast.Stmt, read func(*ast.Ident), write func(*ast.Ident, valKind, ast.Expr)) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
			// Op-assign (x += y) reads the lhs too.
			for _, l := range x.Lhs {
				b.walkExpr(l, read, write)
			}
		}
		for _, r := range x.Rhs {
			b.walkExpr(r, read, write)
		}
		for i, l := range x.Lhs {
			var rhs ast.Expr
			if len(x.Lhs) == len(x.Rhs) {
				rhs = x.Rhs[i]
			}
			b.writeLvalue(l, rhs, read, write)
		}
	case *ast.IncDecStmt:
		b.walkExpr(x.X, read, write)
		b.writeLvalue(x.X, nil, read, func(id *ast.Ident, _ valKind, expr ast.Expr) {
			write(id, valUpdate, x.X)
		})
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				b.walkExpr(v, read, write)
			}
			for i, name := range vs.Names {
				switch {
				case len(vs.Values) == 0:
					write(name, valZero, nil)
				case len(vs.Values) == len(vs.Names):
					write(name, valDef, vs.Values[i])
				default:
					write(name, valDef, nil)
				}
			}
		}
	case *ast.SendStmt:
		b.walkExpr(x.Chan, read, write)
		b.walkExpr(x.Value, read, write)
	case *ast.ExprStmt:
		b.walkExpr(x.X, read, write)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			b.walkExpr(r, read, write)
		}
	case *ast.DeferStmt:
		// The call and its arguments are evaluated here, but the call
		// itself runs at function exit: a deferred close(ch) must not
		// define a valClose version at the defer site, or the idiomatic
		// `defer close(ch); ch <- 1` reads as a send on a closed
		// channel. Walk for reads only, dropping the close write.
		b.walkExpr(x.Call, read, func(*ast.Ident, valKind, ast.Expr) {})
	case *ast.GoStmt:
		b.walkExpr(x.Call, read, write)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		// Anything else that can reach a block statement list
		// (type-switch assigns, comm clauses already split, nested
		// blocks from broken input): a conservative read walk.
		if s != nil {
			if as, ok := s.(ast.Stmt); ok {
				ast.Inspect(as, func(m ast.Node) bool {
					if lit, ok := m.(*ast.FuncLit); ok && lit != b.fn.Node.Lit {
						return false
					}
					if id, ok := m.(*ast.Ident); ok {
						read(id)
					}
					return true
				})
			}
		}
	}
}

// writeLvalue classifies one assignment target: a plain tracked ident
// is a fresh def; a pathed target (x.f, x[i], *x) versions its root
// as an update; anything else only contributes reads.
func (b *ssaBuilder) writeLvalue(l ast.Expr, rhs ast.Expr, read func(*ast.Ident), write func(*ast.Ident, valKind, ast.Expr)) {
	switch x := ast.Unparen(l).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		write(x, valDef, rhs)
	default:
		// Reads inside the path (x.f[i] reads x and i) were NOT walked
		// with the rhs; walk them now, then version the root.
		b.walkExpr(l, read, write)
		if root, pathed := rootIdent(l); pathed && root != nil {
			write(root, valUpdate, l)
		}
	}
}

// walkExpr records reads in source order, modeling close(ch) as a
// defining event and skipping nested function literals (separate
// call-graph nodes with their own SSA).
func (b *ssaBuilder) walkExpr(e ast.Expr, read func(*ast.Ident), write func(*ast.Ident, valKind, ast.Expr)) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			if x != b.fn.Node.Lit {
				return false
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if bi, ok := b.info.Uses[id].(*types.Builtin); ok && bi.Name() == "close" && len(x.Args) == 1 {
					if arg, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok {
						read(arg)
						write(arg, valClose, x)
						return false
					}
				}
			}
		case *ast.Ident:
			read(x)
		}
		return true
	})
}

// ---- value lattice ----

func (f *FuncSSA) computeFlags() {
	f.flags = make(map[*SSAValue]latFlags, len(f.values))
	for changed := true; changed; {
		changed = false
		for _, v := range f.values {
			nf := f.flags[v] | f.rawFlags(v)
			if nf != f.flags[v] {
				f.flags[v] = nf
				changed = true
			}
		}
	}
}

func (f *FuncSSA) rawFlags(v *SSAValue) latFlags {
	switch v.Kind {
	case valParam:
		return latUnknown
	case valZero:
		return zeroFlags(v.Obj.Type())
	case valDef:
		if v.Expr == nil {
			return latUnknown
		}
		return f.exprFlags(v.Expr)
	case valUpdate:
		if v.Prev == nil {
			return latUnknown
		}
		// A write through the binding does not change what the binding
		// points at.
		return f.flags[v.Prev]
	case valClose:
		base := latFlags(latUnknown)
		if v.Prev != nil {
			base = f.flags[v.Prev]
		}
		return base | latClosed
	case valPhi:
		var out latFlags
		for _, op := range v.Ops {
			out |= f.flags[op]
		}
		return out
	}
	return latUnknown
}

func zeroFlags(t types.Type) latFlags {
	switch t.Underlying().(type) {
	case *types.Chan, *types.Map, *types.Slice, *types.Pointer,
		*types.Interface, *types.Signature:
		return latNil
	}
	return latUnknown
}

// exprFlags evaluates a defining expression against the lattice.
func (f *FuncSSA) exprFlags(e ast.Expr) latFlags {
	info := f.Node.Pkg.Info
	if tv, ok := info.Types[e]; ok {
		if tv.IsNil() {
			return latNil
		}
		if tv.Value != nil {
			return latConst | latNonNil
		}
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := f.Uses[x]; ok {
			return f.flags[v]
		}
		return latUnknown
	case *ast.CallExpr:
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return f.exprFlags(x.Args[0]) // conversion
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if bi, ok := info.Uses[id].(*types.Builtin); ok {
				switch bi.Name() {
				case "make":
					out := latFlags(latNonNil)
					if len(x.Args) >= 2 {
						if tv, ok := info.Types[x.Args[1]]; ok && tv.Value != nil {
							if isChanMake(info, x) && positiveConst(tv) {
								out |= latBuffered
							}
						}
					}
					return out
				case "new":
					return latNonNil
				case "append":
					return latNonNil
				}
			}
		}
		return latUnknown
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return latNonNil
		}
		return latUnknown
	case *ast.CompositeLit, *ast.FuncLit, *ast.BasicLit:
		return latNonNil
	case *ast.SliceExpr:
		return f.exprFlags(x.X)
	default:
		return latUnknown
	}
}

func isChanMake(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || !tv.IsType() {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func positiveConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	s := tv.Value.ExactString()
	return s != "0" && !strings.HasPrefix(s, "-")
}

// ---- dump (golden tests, debugging) ----

// Dump renders the SSA form compactly and deterministically: per
// join block its phis with operands, then per variable the def and
// use counts — the shape the golden test pins.
func (f *FuncSSA) Dump() string {
	var sb strings.Builder
	var blocks []*Block
	for blk := range f.PhiOf {
		blocks = append(blocks, blk)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Index < blocks[j].Index })
	for _, blk := range blocks {
		phis := append([]*SSAValue(nil), f.PhiOf[blk]...)
		sort.Slice(phis, func(i, j int) bool {
			if phis[i].Obj.Name() != phis[j].Obj.Name() {
				return phis[i].Obj.Name() < phis[j].Obj.Name()
			}
			return phis[i].Num < phis[j].Num
		})
		for _, phi := range phis {
			fmt.Fprintf(&sb, "b%d: %s#%d = phi(", blk.Index, phi.Obj.Name(), phi.Num)
			for i, op := range phi.Ops {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%s#%d", op.Obj.Name(), op.Num)
			}
			sb.WriteString(")\n")
		}
	}
	// Per-variable def/use totals.
	type stat struct{ defs, uses int }
	stats := make(map[string]*stat)
	name := func(obj types.Object) *stat {
		s := stats[obj.Name()]
		if s == nil {
			s = &stat{}
			stats[obj.Name()] = s
		}
		return s
	}
	for _, v := range f.values {
		if v.Kind != valParam && v.Kind != valZero {
			name(v.Obj).defs++
		}
	}
	for _, v := range f.values {
		name(v.Obj).uses += len(f.UseSites[v])
	}
	var names []string
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := stats[n]
		fmt.Fprintf(&sb, "%s: defs=%d uses=%d\n", n, s.defs, s.uses)
	}
	return sb.String()
}
