package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestBuildSystemDemo(t *testing.T) {
	sys, err := buildSystem(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Rules()) != 3 {
		t.Errorf("demo rules = %v", sys.Rules())
	}
	res, _, err := sys.Query("tim", "nurse", "treatment", `SELECT referral FROM records`)
	if err != nil || len(res.Rows) != 3 {
		t.Errorf("demo fixture broken: %v %v", res, err)
	}
	plain, err := buildSystem(false)
	if err != nil || len(plain.Rules()) != 0 {
		t.Errorf("plain system: %v %v", plain, err)
	}
}

func TestServeLifecycle(t *testing.T) {
	// Find a free port.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()

	sys, err := buildSystem(true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, addr, sys) }()

	// Wait for readiness.
	url := fmt.Sprintf("http://%s", addr)
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never became ready: %v", err)
	}
	_ = resp.Body.Close()

	// A real end-to-end query over TCP.
	body, _ := json.Marshal(map[string]string{
		"user": "tim", "role": "nurse", "purpose": "treatment",
		"sql": "SELECT referral FROM records",
	})
	resp, err = http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	var qr struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 3 {
		t.Errorf("rows = %v", qr.Rows)
	}

	// Graceful shutdown.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestServeBadAddress(t *testing.T) {
	sys, err := buildSystem(false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := serve(ctx, "256.256.256.256:99999", sys); err == nil {
		t.Error("bad address accepted")
	}
}
