package treerec

import (
	"errors"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/hdb"
	"repro/internal/scenario"
)

func enforcerFixture(t *testing.T) (*Enforcer, *audit.Log, *Node) {
	t.Helper()
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	log := audit.NewLog("legacy")
	e := NewEnforcer(v, ps, mapping(t), log)
	base := time.Date(2007, 3, 1, 8, 0, 0, 0, time.UTC)
	step := 0
	e.SetClock(func() time.Time { step++; return base.Add(time.Duration(step) * time.Second) })
	rec, err := ParseXMLString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	return e, log, rec
}

func TestTreeFetchRedactsAndAudits(t *testing.T) {
	e, log, rec := enforcerFixture(t)
	red, err := e.Fetch(hdb.Principal{User: "tim", Role: "nurse"}, "treatment", rec)
	if err != nil {
		t.Fatal(err)
	}
	// Nurse for treatment: prescription visible (general clinical),
	// psychiatry and demographics pruned.
	if red.Record.Find("record/clinical/prescription") == nil {
		t.Error("prescription pruned")
	}
	if red.Record.Find("record/clinical/psychiatry") != nil {
		t.Error("psychiatry kept")
	}
	entries := log.Snapshot()
	if len(entries) != 1 || entries[0].Data != "prescription" || entries[0].Status != audit.Regular {
		t.Errorf("audit = %v", entries)
	}
}

func TestTreeFetchFullyDenied(t *testing.T) {
	e, log, rec := enforcerFixture(t)
	// Lab techs have no policy rules at all.
	_, err := e.Fetch(hdb.Principal{User: "pat", Role: "lab_tech"}, "research", rec)
	if !errors.Is(err, hdb.ErrDenied) {
		t.Fatalf("err = %v", err)
	}
	for _, en := range log.Snapshot() {
		if en.Op != audit.Deny {
			t.Errorf("denial not audited as prohibition: %v", en)
		}
	}
}

func TestTreeBreakGlassFeedsRefinement(t *testing.T) {
	e, log, rec := enforcerFixture(t)
	// Five break-glass fetches by three clerks for billing: the
	// record's categories land in the log as exceptions, and the
	// standard refinement loop proposes rules from a *legacy tree*
	// system's trail.
	for _, u := range []string{"bill", "amy", "jason", "bill", "amy"} {
		if _, err := e.BreakGlass(hdb.Principal{User: u, Role: "clerk"}, "billing", "statement prep", rec); err != nil {
			t.Fatal(err)
		}
	}
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	patterns, err := core.Refinement(ps, log.Snapshot(), v, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Categories in the record: address, gender, prescription,
	// psychiatry — each appears 5 times by 3 users; address and
	// gender are already covered (demographic/billing/clerk), so the
	// useful patterns are prescription and psychiatry for billing.
	if len(patterns) != 2 {
		t.Fatalf("patterns = %v", patterns)
	}
	for _, p := range patterns {
		if p.Support != 5 || p.DistinctUsers != 3 {
			t.Errorf("pattern evidence: %+v", p)
		}
	}
}

func TestTreeEnforcerValidation(t *testing.T) {
	e, _, rec := enforcerFixture(t)
	if _, err := e.Fetch(hdb.Principal{}, "treatment", rec); err == nil {
		t.Error("empty principal accepted")
	}
	if _, err := e.Fetch(hdb.Principal{User: "u", Role: "nurse"}, "", rec); err == nil {
		t.Error("missing purpose accepted")
	}
	if _, err := e.BreakGlass(hdb.Principal{User: "u", Role: "nurse"}, "treatment", " ", rec); err == nil {
		t.Error("reasonless break glass accepted")
	}
	if _, err := e.BreakGlass(hdb.Principal{}, "treatment", "r", rec); err == nil {
		t.Error("empty principal accepted on break glass")
	}
	if _, err := e.BreakGlass(hdb.Principal{User: "u", Role: "nurse"}, "", "r", rec); err == nil {
		t.Error("missing purpose accepted on break glass")
	}
}

func TestTreeBreakGlassReturnsClone(t *testing.T) {
	e, _, rec := enforcerFixture(t)
	full, err := e.BreakGlass(hdb.Principal{User: "u", Role: "nurse"}, "treatment", "emergency", rec)
	if err != nil {
		t.Fatal(err)
	}
	full.Find("record/patient").Value = "tampered"
	if rec.Find("record/patient").Value == "tampered" {
		t.Error("break glass returned shared nodes")
	}
}
