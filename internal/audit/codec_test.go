package audit

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleEntries() []Entry {
	return []Entry{
		{Time: t0, Op: Allow, User: "John", Data: "Prescription", Purpose: "Treatment", Authorized: "Nurse", Status: Regular, Site: "ward-1"},
		{Time: t0.Add(time.Hour), Op: Deny, User: "Eve", Data: "Psychiatry", Purpose: "Research", Authorized: "Clerk", Status: Regular},
		{Time: t0.Add(2 * time.Hour), Op: Allow, User: "Mark", Data: "Referral", Purpose: "Registration", Authorized: "Nurse", Status: Exception, Reason: "patient intake backlog"},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleEntries()
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(in) {
		t.Errorf("expected %d lines, got %d", len(in), got)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d entries", len(out))
	}
	for i := range in {
		if !out[i].Time.Equal(in[i].Time) || out[i].Key() != in[i].Key() || out[i].Reason != in[i].Reason {
			t.Errorf("entry %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Valid JSON, invalid entry (missing user).
	bad := `{"time":"2007-03-01T08:00:00Z","op":1,"data":"d","purpose":"p","authorized":"r","status":1}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(bad)); err == nil {
		t.Error("invalid entry accepted")
	}
	if out, err := ReadJSONL(strings.NewReader("")); err != nil || len(out) != 0 {
		t.Errorf("empty input: %v, %v", out, err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleEntries()
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d entries", len(out))
	}
	for i := range in {
		if out[i].Key() != in[i].Key() || out[i].Site != in[i].Site || out[i].Reason != in[i].Reason {
			t.Errorf("entry %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestReadCSVSevenColumnTable1Layout(t *testing.T) {
	// Externally produced files with only the paper's seven columns
	// must load.
	src := "time,op,user,data,purpose,authorized,status\n" +
		"2007-03-01T08:00:00Z,1,John,Prescription,Treatment,Nurse,1\n" +
		"2007-03-01T10:00:00Z,1,Mark,Referral,Registration,Nurse,0\n"
	out, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].Status != Exception || out[1].Site != "" {
		t.Errorf("parsed: %+v", out)
	}
	// Headerless variant also loads.
	noHeader := "2007-03-01T08:00:00Z,1,John,Prescription,Treatment,Nurse,1\n"
	out, err = ReadCSV(strings.NewReader(noHeader))
	if err != nil || len(out) != 1 {
		t.Errorf("headerless: %v %v", out, err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"short row", "a,b,c\n"},
		{"bad time", "nottime,1,u,d,p,r,1\n"},
		{"bad op", "2007-03-01T08:00:00Z,x,u,d,p,r,1\n"},
		{"bad status", "2007-03-01T08:00:00Z,1,u,d,p,r,x\n"},
		{"invalid entry", "2007-03-01T08:00:00Z,9,u,d,p,r,1\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if out, err := ReadCSV(strings.NewReader("")); err != nil || out != nil {
		t.Errorf("empty csv: %v %v", out, err)
	}
}
