// Command prima-vet is the repo's custom static-analysis pass. It
// type-checks packages with only the standard library (go/ast,
// go/parser, go/types) and applies two layers of repo-specific
// analyzers.
//
// Per-package (layer 1):
//
//	lockcheck   lock discipline on mutex-guarded structs
//	puritycheck determinism of the coverage/refinement algebra
//	errcheck    no discarded errors on audit/codec/federation paths
//	codecpair   Encode*/Decode* symmetry with round-trip tests
//
// Interprocedural (layer 2, whole-module call graph + CFG dataflow):
//
//	lockorder   lock acquisition graph; cycles and pinned-order
//	            inversions (lockorder.txt) are potential deadlocks
//	phileak     taint from prima:phi fields into logs, error strings,
//	            and responses that bypass prima:redact sanitizers
//	arenasafe   no mutation of prima:arena values after publication
//
// SSA-form dataflow (layer 3, pruned SSA over the layer-2 CFGs:
// versioned defs, phi nodes, def-use chains, a small value lattice):
//
//	atomicsafe  no plain access to sync/atomic-managed values; no
//	            mutation of module structs after an atomic publication
//	goleak      every spawned goroutine has a reachable termination
//	            path (context/done case, channel close, bounded loop)
//	chanuse     nil/closed channel operations; blocking channel ops
//	            while holding a module lock
//
// The same SSA form sharpens lockorder (mutex-pointer aliases resolve
// to their lock class) and phileak (flow-sensitive taint: rebinding a
// local kills the old version's taint).
//
// Usage:
//
//	prima-vet [-list] [-run a,b] [-json|-sarif] [-write-lockorder] [packages]
//
// Packages default to ./... . Findings print as file:line:col text by
// default; -json emits a JSON array and -sarif a SARIF 2.1.0 log on
// stdout. -write-lockorder regenerates cmd/prima-vet/lockorder.txt
// from the observed acquisition graph instead of reporting. Exit
// status is 0 when clean, 1 when any analyzer reports findings, 2 on
// usage or load errors (unknown flags and -run names included).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prima-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	writeLO := fs.Bool("write-lockorder", false, "regenerate cmd/prima-vet/lockorder.txt from the observed acquisition graph")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: prima-vet [-list] [-run a,b] [-json|-sarif] [-write-lockorder] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintf(stderr, "prima-vet: -json and -sarif are mutually exclusive\n")
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "prima-vet: %v\n", err)
		return 2
	}
	loader, err := NewLoader(wd)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}

	var pkgs []*Package
	var findings []Finding
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "prima-vet: %s: %v\n", dir, err)
			return 2
		}
		pkgs = append(pkgs, pkg)
		findings = append(findings, runSelected(selected, pkg)...)
	}

	// Layers 2 and 3: one whole-program pass over everything loaded.
	prog := BuildProgram(loader, pkgs)

	if *writeLO {
		return regenerateLockOrder(prog, stderr)
	}

	findings = append(findings, runProgramAnalyzers(selected, prog)...)

	switch {
	case *jsonOut:
		if err := writeJSON(stdout, loader.Root, findings); err != nil {
			fmt.Fprintf(stderr, "prima-vet: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := writeSARIF(stdout, loader.Root, selected, findings); err != nil {
			fmt.Fprintf(stderr, "prima-vet: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}

	if len(findings) > 0 {
		fmt.Fprintf(stderr, "prima-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
