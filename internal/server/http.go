package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Timeouts hardening every served listener against slow clients. A
// header must arrive promptly, a request body within ReadTimeout, and
// idle keep-alive connections are reaped — the slowloris trio. There
// is deliberately no WriteTimeout: refinement and report responses
// are computed under the handler and may legitimately take longer
// than any fixed bound, and the read-side limits already bound the
// connection count an attacker can pin.
const (
	ReadHeaderTimeout = 5 * time.Second
	ReadTimeout       = 30 * time.Second
	IdleTimeout       = 2 * time.Minute
)

// HTTPServer wraps h in an http.Server with the package's hardening
// timeouts applied.
func HTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		IdleTimeout:       IdleTimeout,
	}
}

// Serve serves h on ln until ctx is cancelled, then drains in-flight
// requests for up to grace (minimum one second) before returning.
// The listener is closed on return.
func Serve(ctx context.Context, ln net.Listener, h http.Handler, grace time.Duration) error {
	if grace < time.Second {
		grace = time.Second
	}
	srv := HTTPServer(ln.Addr().String(), h)
	errCh := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
		<-errCh
		return err
	}
	return <-errCh
}

// Run listens on addr and serves h as Serve does. onListen, when
// non-nil, observes the bound address before serving starts.
func Run(ctx context.Context, addr string, h http.Handler, grace time.Duration, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	return Serve(ctx, ln, h, grace)
}
