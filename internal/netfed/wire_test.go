package netfed

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/scenario"
)

// buildSiteLogs populates nsites logs with n total entries including
// cross-site replicas (duplicates for the consolidator) and outcome
// conflicts, the full federation surface.
func buildSiteLogs(t *testing.T, nsites, n int) []*audit.Log {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	base := time.Unix(1700000000, 0).UTC()
	users := []string{"alice", "bob", "carol", "dave"}
	data := []string{"referral", "psychiatry", "lab results"}
	purposes := []string{"treatment", "research", "billing"}
	roles := []string{"nurse", "physician"}
	logs := make([]*audit.Log, nsites)
	for i := range logs {
		logs[i] = audit.NewLog(fmt.Sprintf("site-%02d", i))
	}
	for j := 0; j < n; j++ {
		st, op := audit.Regular, audit.Allow
		switch rng.Intn(4) {
		case 0:
			st = audit.Exception
		case 1:
			op = audit.Deny
		}
		e := audit.Entry{
			Time:       base.Add(time.Duration(rng.Intn(3600)) * time.Second),
			Op:         op,
			User:       users[rng.Intn(len(users))],
			Data:       data[rng.Intn(len(data))],
			Purpose:    purposes[rng.Intn(len(purposes))],
			Authorized: roles[rng.Intn(len(roles))],
			Status:     st,
		}
		si := rng.Intn(nsites)
		if err := logs[si].Append(e); err != nil {
			t.Fatal(err)
		}
		if nsites > 1 && rng.Intn(10) == 0 {
			// Replica of the same event recorded at a second site.
			if err := logs[(si+1)%nsites].Append(e); err != nil {
				t.Fatal(err)
			}
		}
		if nsites > 1 && rng.Intn(25) == 0 {
			// Conflicting outcome for the same event at a third site.
			c := e
			if c.Op == audit.Allow {
				c.Op = audit.Deny
			} else {
				c.Op = audit.Allow
			}
			if err := logs[(si+2)%nsites].Append(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	return logs
}

// jsonl renders entries as the canonical JSONL bytes used for the
// byte-identity comparisons.
func jsonl(t *testing.T, entries []audit.Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := audit.WriteJSONL(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// streamAll runs one streamer per site log against addr and blocks
// until every site's tail is acknowledged.
func streamAll(t *testing.T, logs []*audit.Log, dial func(site string) func() (net.Conn, error), opts StreamerOptions) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errCh := make(chan error, len(logs))
	streamers := make([]*Streamer, 0, len(logs))
	for _, l := range logs {
		o := opts
		o.Dial = dial(l.Site())
		s, err := NewStreamer(l, "", o)
		if err != nil {
			t.Fatal(err)
		}
		streamers = append(streamers, s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Run(ctx); err != nil {
				errCh <- err
			}
		}()
	}
	for _, s := range streamers {
		if err := s.Drain(ctx); err != nil {
			t.Fatalf("drain %s: %v", s.site, err)
		}
	}
	cancel()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("streamer: %v", err)
	default:
	}
}

func tcpDialer(addr string) func(site string) func() (net.Conn, error) {
	return func(string) func() (net.Conn, error) {
		return func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
}

// startConsolidator serves a consolidator on loopback and returns it
// with its address; cleanup closes it and waits for Serve to return.
func startConsolidator(t *testing.T, opts ConsolidatorOptions) (*Consolidator, string) {
	t.Helper()
	cons, err := NewConsolidator(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- cons.Serve(ln) }()
	t.Cleanup(func() {
		cons.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return cons, ln.Addr().String()
}

// TestWireFederationMatchesInProcessOracle is the tentpole
// differential: shipping every site's log over the binary wire
// protocol and consolidating must reproduce the in-process
// Federation.Consolidate byte for byte — per-site stores, merged
// entries, duplicate counts and conflict reports all identical.
func TestWireFederationMatchesInProcessOracle(t *testing.T) {
	logs := buildSiteLogs(t, 5, 4000)
	cons, addr := startConsolidator(t, ConsolidatorOptions{})
	streamAll(t, logs, tcpDialer(addr), StreamerOptions{BatchEntries: 128, Window: 4})

	for _, l := range logs {
		got := cons.SiteLog(l.Site())
		if got == nil {
			t.Fatalf("site %s missing from consolidator", l.Site())
		}
		if !bytes.Equal(jsonl(t, got.Snapshot()), jsonl(t, l.Snapshot())) {
			t.Fatalf("site %s store differs from origin", l.Site())
		}
	}

	want := audit.NewFederation(logs...).Consolidate()
	got := cons.Consolidate()
	if !bytes.Equal(jsonl(t, got.Entries), jsonl(t, want.Entries)) {
		t.Fatalf("consolidated entries differ: %d vs %d", len(got.Entries), len(want.Entries))
	}
	if got.Duplicates != want.Duplicates || len(got.Conflicts) != len(want.Conflicts) {
		t.Fatalf("dups/conflicts differ: %d/%d vs %d/%d",
			got.Duplicates, len(got.Conflicts), want.Duplicates, len(want.Conflicts))
	}
	st := cons.Stats()
	if st.Sites != len(logs) || st.Entries == 0 || st.Duplicates != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestWireFederationLiveAppends exercises the streamer's tailing path:
// entries are appended concurrently from several goroutines while the
// streamers ship them, the export cursor's deferred-merge logic doing
// the seq-contiguity work.
func TestWireFederationLiveAppends(t *testing.T) {
	logs := []*audit.Log{audit.NewLog("site-a"), audit.NewLog("site-b")}
	cons, addr := startConsolidator(t, ConsolidatorOptions{})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var run sync.WaitGroup
	streamers := make([]*Streamer, len(logs))
	for i, l := range logs {
		s, err := NewStreamer(l, "", StreamerOptions{
			Dial:         tcpDialer(addr)(l.Site()),
			BatchEntries: 64,
			Poll:         100 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		streamers[i] = s
		run.Add(1)
		go func() {
			defer run.Done()
			if err := s.Run(ctx); err != nil {
				t.Errorf("run: %v", err)
			}
		}()
	}

	const writers, perWriter = 4, 1000
	entries := genEntries(21, writers*perWriter)
	var app sync.WaitGroup
	for w := 0; w < writers; w++ {
		app.Add(1)
		go func(w int) {
			defer app.Done()
			for i := w * perWriter; i < (w+1)*perWriter; i++ {
				e := entries[i]
				e.Site = "" // let each log stamp its own
				if err := logs[w%len(logs)].Append(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	app.Wait()
	for _, s := range streamers {
		if err := s.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	run.Wait()

	for _, l := range logs {
		if !bytes.Equal(jsonl(t, cons.SiteLog(l.Site()).Snapshot()), jsonl(t, l.Snapshot())) {
			t.Fatalf("site %s store differs after live tailing", l.Site())
		}
	}
	if want, got := audit.NewFederation(logs...).Consolidate(), cons.Consolidate(); !bytes.Equal(jsonl(t, got.Entries), jsonl(t, want.Entries)) {
		t.Fatal("consolidated view differs after live tailing")
	}
}

// flakyConn injects a connection death after a byte budget, tearing
// the stream mid-frame (a partial write is delivered before the
// failure, like a real half-sent TCP segment).
type flakyConn struct {
	net.Conn
	budget int64
}

func (f *flakyConn) Write(b []byte) (int, error) {
	if f.budget <= 0 {
		f.Conn.Close()
		return 0, errors.New("injected connection death")
	}
	if int64(len(b)) > f.budget {
		n, _ := f.Conn.Write(b[:f.budget])
		f.budget = 0
		f.Conn.Close()
		return n, errors.New("injected connection death")
	}
	n, err := f.Conn.Write(b)
	f.budget -= int64(n)
	return n, err
}

// TestStreamerReconnectResume kills the connection mid-batch at a
// ladder of byte budgets — torn frames, torn handshakes, whole lost
// batches — and checks the consolidator store still converges to the
// oracle with no duplicate and no gap.
func TestStreamerReconnectResume(t *testing.T) {
	logs := buildSiteLogs(t, 3, 3000)
	var faults atomic.Uint64
	cons, addr := startConsolidator(t, ConsolidatorOptions{
		OnError: func(error) { faults.Add(1) },
	})

	budgets := []int64{9, 300, 1500, 4000, 9000, 20000}
	dial := func(site string) func() (net.Conn, error) {
		var attempt int
		var mu sync.Mutex
		return func() (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			i := attempt
			attempt++
			mu.Unlock()
			if i < len(budgets) {
				return &flakyConn{Conn: c, budget: budgets[i]}, nil
			}
			return c, nil
		}
	}
	streamAll(t, logs, dial, StreamerOptions{
		BatchEntries:  64,
		Window:        4,
		ReconnectWait: time.Millisecond,
	})

	for _, l := range logs {
		if !bytes.Equal(jsonl(t, cons.SiteLog(l.Site()).Snapshot()), jsonl(t, l.Snapshot())) {
			t.Fatalf("site %s store differs after reconnects", l.Site())
		}
	}
	want := audit.NewFederation(logs...).Consolidate()
	got := cons.Consolidate()
	if !bytes.Equal(jsonl(t, got.Entries), jsonl(t, want.Entries)) {
		t.Fatal("consolidated view differs after reconnects")
	}
	if faults.Load() == 0 {
		t.Fatal("fault injection never fired")
	}
	// Retransmitted batches overlapping the watermark were deduped, not
	// double-folded: per-site stores already compared equal, so any
	// counted duplicates were absorbed correctly. Assert the machinery
	// saw at least one reconnect-shaped event.
	total := uint64(0)
	for _, l := range logs {
		total += l.Seq()
	}
	if st := cons.Stats(); st.Entries != total {
		t.Fatalf("folded entries %d, want %d", st.Entries, total)
	}
}

// TestConsolidatorEpochMatchesStreamSession: a single site shipped
// over the wire and refined by the consolidator's epoch must produce
// the same coverage figures and adopted rules as core.StreamSession
// over the original log — the refinement differential.
func TestConsolidatorEpochMatchesStreamSession(t *testing.T) {
	v := scenario.Vocabulary()
	psWire := scenario.PolicyStore()
	psOracle := scenario.PolicyStore()

	l := audit.NewLog("s")
	if err := l.Append(scenario.Table1()...); err != nil {
		t.Fatal(err)
	}

	cons, addr := startConsolidator(t, ConsolidatorOptions{
		Refine: &RefineConfig{PS: psWire, Vocab: v},
	})
	streamAll(t, []*audit.Log{l}, tcpDialer(addr), StreamerOptions{BatchEntries: 3})

	got, err := cons.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	ss := core.NewStreamSession(l, psOracle, v, core.Options{})
	want, err := ss.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries != want.Entries || got.Practice != want.Practice ||
		got.CoverageBefore != want.CoverageBefore || got.CoverageAfter != want.CoverageAfter {
		t.Fatalf("epoch figures differ:\n wire   %+v\n oracle %+v", got, want)
	}
	if len(got.Adopted) != len(want.Adopted) {
		t.Fatalf("adopted %d rules, oracle %d", len(got.Adopted), len(want.Adopted))
	}
	for i := range got.Adopted {
		if got.Adopted[i].Key() != want.Adopted[i].Key() {
			t.Fatalf("adopted[%d] = %s, oracle %s", i, got.Adopted[i].Key(), want.Adopted[i].Key())
		}
	}
	// A second epoch over the unchanged store adopts nothing new and
	// keeps coverage.
	again, err := cons.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Adopted) != 0 || again.CoverageBefore != got.CoverageAfter {
		t.Fatalf("second epoch not idempotent: %+v", again)
	}
	if h := cons.History(); len(h) != 2 {
		t.Fatalf("history has %d epochs, want 2", len(h))
	}
}

// TestConsolidatorSuspicionReview: with E11 thresholds configured the
// epoch reviewer scores mined patterns against the cross-site practice
// evidence and the rejected-rule memory suppresses re-surfacing.
func TestConsolidatorSuspicionReview(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	l := audit.NewLog("s")
	if err := l.Append(scenario.Table1()...); err != nil {
		t.Fatal(err)
	}
	cons, addr := startConsolidator(t, ConsolidatorOptions{
		Refine: &RefineConfig{PS: ps, Vocab: v, InvestigateAt: 0.0, RejectAt: 0.01},
	})
	streamAll(t, []*audit.Log{l}, tcpDialer(addr), StreamerOptions{})

	round, err := cons.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	// Same thresholds applied directly to the same practice entries.
	reviewer := core.SuspicionReviewer(core.Filter(l.Snapshot()), 0.0, 0.01)
	adopted, rejected, investigating := 0, 0, 0
	for _, p := range round.Patterns {
		switch reviewer.Review(p) {
		case core.Adopt:
			adopted++
		case core.Reject:
			rejected++
		default:
			investigating++
		}
	}
	if len(round.Adopted) != adopted || len(round.Rejected) != rejected || len(round.Investigating) != investigating {
		t.Fatalf("review split %d/%d/%d, direct %d/%d/%d",
			len(round.Adopted), len(round.Rejected), len(round.Investigating),
			adopted, rejected, investigating)
	}
	if rejected > 0 {
		// Rejected rules never resurface.
		again, err := cons.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Rejected) != 0 {
			t.Fatalf("second epoch re-rejected %d rules", len(again.Rejected))
		}
	}
}

// TestConsolidatorRefusals: protocol faults are answered with an error
// frame and the connection dropped, without disturbing the store.
func TestConsolidatorRefusals(t *testing.T) {
	cons, addr := startConsolidator(t, ConsolidatorOptions{})
	refused := func(name string, frame []byte) {
		t.Helper()
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Write(frame); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		typ, _, err := NewFrameReader(c).Next()
		if err != nil || typ != MsgError {
			t.Fatalf("%s: typ %d err %v, want a MsgError refusal", name, typ, err)
		}
	}
	refused("wrong version", AppendFrame(nil, MsgHello, appendHello(nil, hello{version: 99, site: "x"})))
	refused("empty site", AppendFrame(nil, MsgHello, appendHello(nil, hello{version: ProtocolVersion, site: ""})))
	refused("batch before hello", AppendFrame(nil, MsgBatch, []byte{0x01, 0x00}))
	if st := cons.Stats(); st.Sites != 0 || st.Entries != 0 {
		t.Fatalf("refused connections touched the store: %+v", st)
	}
}

// TestStreamerResumeGapIsTerminal: a server that lost state below the
// replayable window must terminate the streamer with ErrResumeGap
// rather than silently re-shipping a hole.
func TestStreamerResumeGapIsTerminal(t *testing.T) {
	l := audit.NewLog("site-a")
	if err := l.Append(genEntries(5, 100)...); err != nil {
		t.Fatal(err)
	}
	// The dial target is swappable: session one lands on a consolidator
	// that absorbs everything; session two lands on a fresh one that
	// knows nothing, standing in for a server that lost its state.
	var addr atomic.Value
	_, addr1 := startConsolidator(t, ConsolidatorOptions{})
	addr.Store(addr1)
	s, err := NewStreamer(l, "", StreamerOptions{
		Dial: func() (net.Conn, error) { return net.Dial("tcp", addr.Load().(string)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx) }()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	// The streamer's cursor is fully advanced and its inflight empty;
	// the new server's resume point of 0 is unrecoverable.
	_, addr2 := startConsolidator(t, ConsolidatorOptions{})
	addr.Store(addr2)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := s.Run(ctx2); !errors.Is(err, ErrResumeGap) {
		t.Fatalf("err = %v, want ErrResumeGap", err)
	}
}
