package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/policy"
	"repro/internal/scenario"
)

// TestConcurrentCoverageAndMutation runs ComputeCoverage/EntryCoverage
// readers against concurrent Add/Remove mutations of the policy store
// they read — the live shape of a refinement session scoring coverage
// while rules are adopted. Run with -race.
func TestConcurrentCoverageAndMutation(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	al := scenario.Figure3AuditPolicy()
	entries := scenario.Table1()

	const workers = 6
	const rounds = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			extra := policy.MustRule(
				policy.T("data", "referral"),
				policy.T("purpose", "billing"),
				policy.T("authorized", fmt.Sprintf("auditor%d", w)),
			)
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0:
					ps.Add(extra)
				case 1:
					if _, err := ComputeCoverage(ps, al, v); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := EntryCoverage(ps, entries, v); err != nil {
						t.Error(err)
						return
					}
				case 3:
					ps.Remove(extra)
				}
			}
		}(w)
	}
	wg.Wait()

	// Whatever interleaving happened, a quiescent recomputation must
	// still produce the paper's Figure 3 value once the extra rules
	// are gone.
	for w := 0; w < workers; w++ {
		ps.Remove(policy.MustRule(
			policy.T("data", "referral"),
			policy.T("purpose", "billing"),
			policy.T("authorized", fmt.Sprintf("auditor%d", w)),
		))
	}
	got, err := ComputeCoverage(ps, al, v)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, scenario.Figure3Coverage) {
		t.Fatalf("coverage after concurrent churn = %v, want %v", got, scenario.Figure3Coverage)
	}
}
