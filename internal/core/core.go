package core
