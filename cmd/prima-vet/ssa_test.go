package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSSAGolden pins phi placement and def-use shape on the loop-heavy
// cfgloop fixtures against testdata/cfgloop/ssa.golden. Regenerate
// with PRIMA_VET_UPDATE=1 go test -run TestSSAGolden ./cmd/prima-vet.
func TestSSAGolden(t *testing.T) {
	_, pkg := loadFixture(t, "cfgloop")
	g := BuildCallGraph([]*Package{pkg})

	var sb strings.Builder
	for _, n := range g.Nodes() {
		if n.Fn == nil {
			continue
		}
		f := BuildSSA(n)
		fmt.Fprintf(&sb, "== %s ==\n%s", n.Fn.Name(), f.Dump())
	}
	got := sb.String()

	golden := filepath.Join("testdata", "cfgloop", "ssa.golden")
	if os.Getenv("PRIMA_VET_UPDATE") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (PRIMA_VET_UPDATE=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("SSA dump diverged from %s:\n-- got --\n%s-- want --\n%s", golden, got, want)
	}
}

// TestSSAInvariants checks structural properties the analyzers rely on
// over every function in the repo's own main packages: uses resolve to
// live values, phi operand counts match predecessor counts, versions
// of one object are unique, and update/close chains terminate.
func TestSSAInvariants(t *testing.T) {
	for _, fixture := range []string{"cfgloop", "callgraph", "lockorder", "phileak", "arenasafe"} {
		t.Run(fixture, func(t *testing.T) {
			_, pkg := loadFixture(t, fixture)
			g := BuildCallGraph([]*Package{pkg})
			for _, n := range g.Nodes() {
				f := BuildSSA(n)
				live := make(map[*SSAValue]bool)
				seen := make(map[string]bool)
				for _, v := range f.Values() {
					live[v] = true
					key := fmt.Sprintf("%p#%d", v.Obj, v.Num)
					if seen[key] {
						t.Errorf("%s: duplicate version %s", n.Name(), v)
					}
					seen[key] = true
				}
				preds := make(map[*Block]int)
				for _, blk := range f.CFG.Blocks {
					for _, s := range blk.Succs {
						preds[s]++
					}
				}
				for blk, phis := range f.PhiOf {
					for _, phi := range phis {
						if len(phi.Ops) != preds[blk] {
							t.Errorf("%s: phi %s has %d ops, block b%d has %d preds",
								n.Name(), phi, len(phi.Ops), blk.Index, preds[blk])
						}
						for _, op := range phi.Ops {
							if !live[op] {
								t.Errorf("%s: phi %s references pruned value %s", n.Name(), phi, op)
							}
						}
					}
				}
				for id, v := range f.Uses {
					if !live[v] {
						t.Errorf("%s: use of %s at %v resolves to pruned value %s",
							n.Name(), id.Name, pkg.Fset.Position(id.Pos()), v)
					}
					if v.Obj != pkg.Info.Uses[id] && pkg.Info.Uses[id] != nil {
						t.Errorf("%s: use %s resolved to value of %s", n.Name(), id.Name, v.Obj.Name())
					}
				}
				for _, v := range f.Values() {
					for p, hops := v.Prev, 0; p != nil; p, hops = p.Prev, hops+1 {
						if hops > len(f.Values()) {
							t.Fatalf("%s: Prev chain of %s does not terminate", n.Name(), v)
						}
						if !live[p] {
							t.Errorf("%s: %s chains to pruned value %s", n.Name(), v, p)
						}
					}
				}
			}
		})
	}
}
