package treerec_test

import (
	"fmt"

	"repro/internal/treerec"
	"repro/internal/vocab"
)

// ExampleMapping_Redact prunes the subtrees a policy decision denies
// from a hierarchical (XML-like) legacy record — the paper's §6
// adaptation.
func ExampleMapping_Redact() {
	rec, _ := treerec.ParseXMLString(`
<record>
  <patient>p2</patient>
  <clinical>
    <referral>derm consult</referral>
    <psychiatry>anxiety notes</psychiatry>
  </clinical>
</record>`)
	m := treerec.NewMapping(vocab.Sample())
	_ = m.Add("clinical/referral", "referral")
	_ = m.Add("clinical/psychiatry", "psychiatry")

	red := m.Redact(rec, func(category string) bool { return category == "referral" })
	fmt.Println("kept:", red.Kept)
	fmt.Println("psychiatry pruned:", red.Record.Find("record/clinical/psychiatry") == nil)
	// Output:
	// kept: [referral]
	// psychiatry pruned: true
}
