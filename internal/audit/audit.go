// Package audit implements the PRIMA audit substrate (paper §4.2):
// the audit entry schema {(time, t), (op, X), (user, u), (data, d),
// (purpose, p), (authorized, a), (status, s)}, append-only audit logs,
// JSONL and CSV codecs, and the Audit Management federation that
// consolidates several site logs into one consistent view (the role
// DB2 Information Integrator plays in the paper's first instantiation).
package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/policy"
	"repro/internal/vocab"
)

// Op is the audit outcome: whether the access was allowed.
type Op int

// Op values follow the paper: 0 = disallow, 1 = allow.
const (
	Deny  Op = 0
	Allow Op = 1
)

// String renders the op.
func (o Op) String() string {
	if o == Allow {
		return "allow"
	}
	return "deny"
}

// Status distinguishes exception-based (break-the-glass) access from
// regular access.
type Status int

// Status values follow the paper: 0 = exception-based, 1 = regular.
const (
	Exception Status = 0
	Regular   Status = 1
)

// String renders the status.
func (s Status) String() string {
	if s == Regular {
		return "regular"
	}
	return "exception"
}

// Entry is one audit record with the paper's exact schema.
//
// The prima:phi markers below feed prima-vet's phileak analyzer:
// those fields identify people and the health data touched, and must
// not reach prints, logs, or error strings except through the
// prima:redact helpers in internal/report.
type Entry struct {
	Time       time.Time `json:"time"`
	Op         Op        `json:"op"`
	User       string    `json:"user"`       // prima:phi — requesting user identity
	Data       string    `json:"data"`       // prima:phi — data category accessed
	Purpose    string    `json:"purpose"`    // prima:phi — stated access purpose
	Authorized string    `json:"authorized"` // authorization category (role)
	Status     Status    `json:"status"`

	// Site identifies the originating audit system when several logs
	// are federated; empty for a single-log deployment.
	Site string `json:"site,omitempty"`
	// Reason carries the manually entered justification of an
	// exception-based access, when one was recorded.
	Reason string `json:"reason,omitempty"` // prima:phi — free-text justification
}

// Validate reports schema violations: a usable audit row needs a
// timestamp, user, data category, purpose and role.
func (e Entry) Validate() error {
	var missing []string
	if e.Time.IsZero() {
		missing = append(missing, "time")
	}
	if strings.TrimSpace(e.User) == "" {
		missing = append(missing, "user")
	}
	if strings.TrimSpace(e.Data) == "" {
		missing = append(missing, "data")
	}
	if strings.TrimSpace(e.Purpose) == "" {
		missing = append(missing, "purpose")
	}
	if strings.TrimSpace(e.Authorized) == "" {
		missing = append(missing, "authorized")
	}
	if len(missing) > 0 {
		return fmt.Errorf("audit: entry missing %s", strings.Join(missing, ", "))
	}
	if e.Op != Allow && e.Op != Deny {
		return fmt.Errorf("audit: bad op %d", e.Op)
	}
	if e.Status != Regular && e.Status != Exception {
		return fmt.Errorf("audit: bad status %d", e.Status)
	}
	return nil
}

// Rule converts the entry into a ground rule over the policy
// attributes (data, purpose, authorized) — the projection the paper
// uses to treat the audit log as the policy P_AL.
func (e Entry) Rule() policy.Rule {
	return policy.MustRule(
		policy.T("data", e.Data),
		policy.T("purpose", e.Purpose),
		policy.T("authorized", e.Authorized),
	)
}

// RuleKey returns the canonical key of Rule() without constructing
// the rule. Row-level coverage uses it to test range membership with
// one string build per audit row.
func (e Entry) RuleKey() string {
	return policy.TripleKey(e.Data, e.Purpose, e.Authorized)
}

// Key returns a canonical identity for deduplication across federated
// logs: same instant, same actor, same object, same outcome.
func (e Entry) Key() string {
	return fmt.Sprintf("%d|%d|%s|%s|%s|%s|%d",
		e.Time.UnixNano(), e.Op, vocab.Norm(e.User), vocab.Norm(e.Data),
		vocab.Norm(e.Purpose), vocab.Norm(e.Authorized), e.Status)
}

// String renders the entry compactly.
func (e Entry) String() string {
	return fmt.Sprintf("%s %s user=%s data=%s purpose=%s authorized=%s status=%s",
		e.Time.Format(time.RFC3339), e.Op, e.User, e.Data, e.Purpose, e.Authorized, e.Status)
}

// Log is a thread-safe, append-only audit log.
type Log struct {
	mu      sync.RWMutex
	site    string
	entries []Entry
	sink    io.Writer
	sinkErr func(error)
}

// NewLog returns an empty log for the named site (may be empty).
func NewLog(site string) *Log { return &Log{site: site} }

// Site returns the log's site identifier.
func (l *Log) Site() string { return l.site }

// SetSink attaches a durable writer: every appended entry is also
// written to it as one JSON line, under the log's lock, so the sink
// sees entries in append order. onErr (may be nil) is invoked when a
// sink write fails; the in-memory append still succeeds, keeping the
// clinical workflow unimpeded (the paper's first design constraint)
// while surfacing the durability fault.
func (l *Log) SetSink(w io.Writer, onErr func(error)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = w
	l.sinkErr = onErr
}

// Append validates and appends entries. The log's site is stamped on
// entries that do not already carry one.
func (l *Log) Append(entries ...Entry) error {
	for i := range entries {
		if err := entries[i].Validate(); err != nil {
			return err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range entries {
		if e.Site == "" {
			e.Site = l.site
		}
		l.entries = append(l.entries, e)
		if l.sink != nil {
			if err := json.NewEncoder(l.sink).Encode(e); err != nil && l.sinkErr != nil {
				l.sinkErr(err)
			}
		}
	}
	return nil
}

// Len returns the number of entries.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Snapshot returns a copy of the entries in append order.
func (l *Log) Snapshot() []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Filtered returns a copy of the entries satisfying keep.
func (l *Log) Filtered(keep func(Entry) bool) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Entry
	for _, e := range l.entries {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Since returns entries with Time >= t, preserving order.
func (l *Log) Since(t time.Time) []Entry {
	return l.Filtered(func(e Entry) bool { return !e.Time.Before(t) })
}

// Exceptions returns the exception-based (break-the-glass) entries.
func (l *Log) Exceptions() []Entry {
	return l.Filtered(func(e Entry) bool { return e.Status == Exception })
}

// Reset discards all entries; used between training periods.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = nil
}

// ToPolicy builds the ground policy P_AL from entries: one rule per
// distinct (data, purpose, authorized) row. Per Definition 7 the
// policy is tied to the audit log; the paper's coverage arithmetic
// counts one rule per audit row, and Policy.Add deduplicates exact
// repeats, matching the Fig. 3 treatment where each row is a distinct
// rule. Pass the entries to convert (e.g. a Snapshot).
func ToPolicy(name string, entries []Entry) *policy.Policy {
	p := policy.New(name)
	for _, e := range entries {
		p.Add(e.Rule())
	}
	return p
}

// Stats summarizes a set of entries.
type Stats struct {
	Total      int
	Allowed    int
	Denied     int
	Exceptions int
	Regular    int
	Users      int
	First      time.Time
	Last       time.Time
}

// Summarize computes Stats over entries.
func Summarize(entries []Entry) Stats {
	var s Stats
	users := make(map[string]bool)
	for _, e := range entries {
		s.Total++
		if e.Op == Allow {
			s.Allowed++
		} else {
			s.Denied++
		}
		if e.Status == Exception {
			s.Exceptions++
		} else {
			s.Regular++
		}
		users[vocab.Norm(e.User)] = true
		if s.First.IsZero() || e.Time.Before(s.First) {
			s.First = e.Time
		}
		if e.Time.After(s.Last) {
			s.Last = e.Time
		}
	}
	s.Users = len(users)
	return s
}

// SortByTime sorts entries chronologically (stable, so same-instant
// entries keep their relative order).
func SortByTime(entries []Entry) {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Time.Before(entries[j].Time) })
}
