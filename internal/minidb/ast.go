package minidb

import (
	"strings"
)

// Expr is a SQL expression node. String renders the expression back to
// SQL-ish text; structural identity of rendered strings is used to
// match SELECT items against GROUP BY expressions.
type Expr interface {
	String() string
}

// Literal is a constant value.
type Literal struct{ Val Value }

func (e *Literal) String() string {
	if e.Val.Kind() == KindText {
		return "'" + strings.ReplaceAll(e.Val.AsText(), "'", "''") + "'"
	}
	return e.Val.String()
}

// ColRef references a column by (case-insensitive) name.
type ColRef struct{ Name string }

func (e *ColRef) String() string { return strings.ToLower(e.Name) }

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (e *Unary) String() string { return e.Op + " " + e.X.String() }

// Binary is a binary operation: arithmetic (+ - * / %), comparison
// (= <> < <= > >=) or logical (AND OR).
type Binary struct {
	Op   string
	L, R Expr
}

func (e *Binary) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

// Call is a function call, possibly aggregate. Star marks COUNT(*);
// Distinct marks COUNT(DISTINCT x).
type Call struct {
	Name     string // upper-cased
	Star     bool
	Distinct bool
	Args     []Expr
}

func (e *Call) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(parts, ", ") + ")"
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	X    Expr
	Not  bool
	List []Expr
}

func (e *InList) String() string {
	parts := make([]string, len(e.List))
	for i, a := range e.List {
		parts[i] = a.String()
	}
	not := ""
	if e.Not {
		not = " NOT"
	}
	return e.X.String() + not + " IN (" + strings.Join(parts, ", ") + ")"
}

// Like is x [NOT] LIKE pattern, with % and _ wildcards.
type Like struct {
	X       Expr
	Not     bool
	Pattern Expr
}

func (e *Like) String() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return e.X.String() + not + " LIKE " + e.Pattern.String()
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

func (e *IsNull) String() string {
	if e.Not {
		return e.X.String() + " IS NOT NULL"
	}
	return e.X.String() + " IS NULL"
}

// SelectItem is one projection: an expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // bare *
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// JoinKind distinguishes join types.
type JoinKind int

// Supported joins.
const (
	JoinInner JoinKind = iota
	JoinLeft
)

// JoinClause is one JOIN ... ON ... step.
type JoinClause struct {
	Kind  JoinKind
	Table string
	Alias string
	On    Expr
}

// SelectStmt is a SELECT over one table, optionally joined to others.
type SelectStmt struct {
	Distinct   bool
	Items      []SelectItem
	Table      string
	TableAlias string
	Joins      []JoinClause
	Where      Expr
	GroupBy    []Expr
	Having     Expr
	OrderBy    []OrderItem
	Limit      int // -1 when absent
	Offset     int
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// CreateTableStmt is CREATE TABLE t (col TYPE, ...) [STORAGE backend].
type CreateTableStmt struct {
	Table       string
	IfNotExists bool
	Cols        []Column
	Storage     string // "", "memory", or "file"
}

// DropTableStmt is DROP TABLE [IF EXISTS] t.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

// UpdateStmt is UPDATE t SET c = e, ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Cols  []string
	Exprs []Expr
	Where Expr
}

// ExplainStmt is EXPLAIN <select>: it describes the execution plan
// instead of running the query.
type ExplainStmt struct {
	Select *SelectStmt
}

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

func (*ExplainStmt) stmt() {}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
