// Package core implements the primary contribution of PRIMA (Bhatti &
// Grandison, 2007): policy coverage (Section 3.2, Algorithm 1) and
// policy refinement (Section 4.3, Algorithms 2–6), together with the
// refinement session machinery that closes the feedback loop between
// the real workflow (audit logs) and the ideal workflow (policy
// store).
package core

import (
	"fmt"
	"sort"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// ComputeCoverage is Algorithm 1 verbatim: the coverage of Px in
// relation to Py is #(Range_Px ∩ Range_Py) / #Range_Py (Definition 9).
// Coverage of anything against an empty policy is defined as 1 (there
// is nothing to cover).
func ComputeCoverage(px, py *policy.Policy, v *vocab.Vocabulary) (float64, error) {
	rx, err := policy.NewRange(px, v, 0) // getRange(Px, V)
	if err != nil {
		return 0, fmt.Errorf("core: range of %s: %w", px.Name, err)
	}
	ry, err := policy.NewRange(py, v, 0) // getRange(Py, V)
	if err != nil {
		return 0, fmt.Errorf("core: range of %s: %w", py.Name, err)
	}
	my := ry.Len()
	if my == 0 {
		return 1, nil
	}
	overlap := rx.Intersect(ry)
	return float64(len(overlap)) / float64(my), nil
}

// CompleteCoverage is Definition 10: Px completely covers Py iff
// Range_Px ∩ Range_Py = Range_Py.
func CompleteCoverage(px, py *policy.Policy, v *vocab.Vocabulary) (bool, error) {
	c, err := ComputeCoverage(px, py, v)
	if err != nil {
		return false, err
	}
	return c == 1, nil
}

// NearMiss explains why a policy rule almost covers an uncovered
// ground rule: every attribute matches except one. This reproduces
// the paper's §3.3 narratives ("the policy allows the use of such
// data only for treatment purpose").
type NearMiss struct {
	PolicyRule policy.Rule // the composite rule in Px that nearly applies
	Attr       string      // the attribute that fails
	Allowed    string      // the value the policy rule allows for Attr
	Actual     string      // the value the uncovered rule carries
}

// String renders the near miss as an explanation sentence.
func (n NearMiss) String() string {
	return fmt.Sprintf("policy allows %s=%s where the access used %s=%s (rule %s)",
		n.Attr, n.Allowed, n.Attr, n.Actual, n.PolicyRule)
}

// Gap is one uncovered ground rule of Py with its explanations.
type Gap struct {
	Rule       policy.Rule
	NearMisses []NearMiss
}

// Report is the detailed outcome of a coverage computation.
type Report struct {
	Coverage float64
	RangeX   int           // #Range_Px
	RangeY   int           // #Range_Py
	Overlap  int           // #(Range_Px ∩ Range_Py)
	Matched  []policy.Rule // the intersection, in Range_Py order
	Gaps     []Gap         // uncovered rules of Py with explanations
}

// Coverage computes the coverage of px in relation to py and explains
// every gap.
func Coverage(px, py *policy.Policy, v *vocab.Vocabulary) (*Report, error) {
	rx, err := policy.NewRange(px, v, 0)
	if err != nil {
		return nil, fmt.Errorf("core: range of %s: %w", px.Name, err)
	}
	ry, err := policy.NewRange(py, v, 0)
	if err != nil {
		return nil, fmt.Errorf("core: range of %s: %w", py.Name, err)
	}
	rep := &Report{RangeX: rx.Len(), RangeY: ry.Len()}
	for _, g := range ry.Rules() {
		if rx.Contains(g) {
			rep.Matched = append(rep.Matched, g)
			continue
		}
		rep.Gaps = append(rep.Gaps, Gap{Rule: g, NearMisses: nearMisses(px, g, v)})
	}
	rep.Overlap = len(rep.Matched)
	if rep.RangeY == 0 {
		rep.Coverage = 1
	} else {
		rep.Coverage = float64(rep.Overlap) / float64(rep.RangeY)
	}
	return rep, nil
}

// nearMisses finds the policy rules of px that cover g on all but one
// attribute.
func nearMisses(px *policy.Policy, g policy.Rule, v *vocab.Vocabulary) []NearMiss {
	var out []NearMiss
	for _, r := range px.Rules() {
		if r.Len() != g.Len() {
			continue
		}
		var failing []string
		ok := true
		for _, t := range r.Terms() {
			gv, present := g.Value(t.Attr)
			if !present {
				ok = false
				break
			}
			if !v.Subsumes(t.Attr, t.Value, gv) {
				failing = append(failing, t.Attr)
			}
		}
		if ok && len(failing) == 1 {
			attr := failing[0]
			allowed, _ := r.Value(attr)
			actual, _ := g.Value(attr)
			out = append(out, NearMiss{PolicyRule: r, Attr: attr, Allowed: allowed, Actual: actual})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PolicyRule.Key() < out[j].PolicyRule.Key() })
	return out
}

// EntryReport is the outcome of row-level coverage over an audit
// snapshot. The paper's §5 walk-through counts each audit row ("the
// ratio of matching rules to total rules ... is now 3/10"), i.e.
// occurrence (multiset) semantics rather than Definition 8's set
// semantics; both are provided and they agree when the snapshot has
// no repeated rows (as in Figure 3).
type EntryReport struct {
	Coverage  float64
	Total     int
	Covered   int
	Uncovered []audit.Entry // rows not covered by the policy store
}

// EntryCoverage computes row-level coverage of the policy store over
// an audit snapshot.
func EntryCoverage(ps *policy.Policy, entries []audit.Entry, v *vocab.Vocabulary) (*EntryReport, error) {
	rg, err := policy.NewRange(ps, v, 0)
	if err != nil {
		return nil, fmt.Errorf("core: range of %s: %w", ps.Name, err)
	}
	rep := &EntryReport{Total: len(entries)}
	for _, e := range entries {
		if rg.Contains(e.Rule()) {
			rep.Covered++
		} else {
			rep.Uncovered = append(rep.Uncovered, e)
		}
	}
	if rep.Total == 0 {
		rep.Coverage = 1
	} else {
		rep.Coverage = float64(rep.Covered) / float64(rep.Total)
	}
	return rep, nil
}
