package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

func fullInput(t *testing.T) Input {
	t.Helper()
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	entries := scenario.Table1()
	cov, err := core.Coverage(ps, scenario.Figure3AuditPolicy(), v)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := core.EntryCoverage(ps, entries, v)
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewSession(ps.Clone(), v, core.Options{})
	round, err := sess.Run(entries, core.AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	return Input{
		Title:         "St. Elsewhere monthly privacy report",
		Generated:     time.Date(2007, 4, 1, 0, 0, 0, 0, time.UTC),
		Coverage:      cov,
		EntryCoverage: ec,
		Rounds:        []core.Round{round},
		Entries:       entries,
	}
}

func TestRenderFullReport(t *testing.T) {
	out, err := Render(fullInput(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# St. Elsewhere monthly privacy report",
		"Row coverage",
		"**30.0%** (3 of 10 accesses covered)",
		"Rule coverage",
		"**50.0%** (3 of 6 distinct ground rules)",
		"Uncovered access patterns",
		"near miss",
		"Refinement history",
		"| 1 | 10 | 7 | 30.0% | 80.0% | 1 | 0 | 0 |",
		"Rules adopted in the last round",
		"data=Referral",
		"Audit statistics",
		"Exception-based (break-the-glass): 7 (70.0%)",
		"Break-the-glass pressure by role",
		"Most accessed data categories",
		"referral (6)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n----\n%s", want, out)
		}
	}
}

func TestRenderInvestigatingSection(t *testing.T) {
	v := scenario.Vocabulary()
	sess := core.NewSession(scenario.PolicyStore(), v, core.Options{})
	round, err := sess.Run(scenario.Table1(), core.ReviewerFunc(func(core.Pattern) core.Decision {
		return core.Investigate
	}))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render(Input{Rounds: []core.Round{round}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Patterns pending investigation") {
		t.Errorf("investigation section missing:\n%s", out)
	}
	if !strings.Contains(out, "support 5, 3 distinct users") {
		t.Errorf("evidence missing:\n%s", out)
	}
}

func TestRenderEmptyInput(t *testing.T) {
	out, err := Render(Input{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# PRIMA privacy report") {
		t.Errorf("default title missing:\n%s", out)
	}
	for _, absent := range []string{"Policy coverage", "Refinement history", "Audit statistics"} {
		if strings.Contains(out, absent) {
			t.Errorf("empty report contains %q", absent)
		}
	}
}

func TestWriteErrorPropagates(t *testing.T) {
	if err := Write(failingWriter{}, fullInput(t)); err == nil {
		t.Error("write error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }
