package audit

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/storage"
)

// Durable extends the append-only JSONL sink into a real recovery
// log. Three artifacts live in one directory:
//
//   - log.jsonl — the checkpointed entry log, byte-identical to
//     WriteJSONL over the checkpointed prefix of the append order. The
//     durable byte length is attested by the index store's meta blob,
//     so a torn append during a checkpoint is cut away on reopen.
//   - wal/ — a group-commit WAL of binary (seq, entry) records
//     covering everything appended since the last checkpoint. Appends
//     flow into it through the log's asynchronous sink; the WAL's
//     single fsync per commit window is shared by the whole batch.
//   - index.db — a storage.Store holding the persistent secondary
//     index keyed (time, status, seq) with the encoded entry as the
//     value. Retention expiry scans and SnapshotByTime range reads are
//     served from it instead of a full in-memory sort.
//
// Recovery replays log.jsonl plus the WAL tail to rebuild the
// in-memory log — per-shard refinement index included, since bulkLoad
// folds the accumulators as it goes — and concludes with a checkpoint
// that re-persists the tail, so the WAL never grows across restarts.
type Durable struct {
	dir      string
	log      *Log
	store    *storage.Store
	wal      *storage.WAL
	jf       storage.File
	openFile storage.OpenFileFunc
	onErr    func(error)

	noSync bool

	mu      sync.Mutex // serializes checkpoint/expire/index reads
	ckptSeq uint64     // entries with seq <= ckptSeq are in log.jsonl + index
	jsize   int64      // durable byte length of log.jsonl
	count   uint64     // entries in log.jsonl
	dropped uint64     // DropOnFull drops recorded up to the last checkpoint
	// seenEpoch is the log epoch the store has accounted for. The log
	// epoch moves on structural mutation (Expire/Rotate/Reset); only
	// Durable.Expire keeps the index and drop accounting in step, so a
	// checkpoint that observes an unexplained epoch move refuses to
	// persist the divergence.
	seenEpoch uint64
}

// DurableOptions tunes OpenDurable. The zero value selects defaults.
type DurableOptions struct {
	// Sink configures the in-process queue feeding the WAL (batching,
	// queue depth, DropOnFull backpressure).
	Sink SinkOptions
	// CommitInterval is the WAL group-commit window (storage.WALOptions).
	CommitInterval time.Duration
	// SegmentBytes is the WAL segment roll size.
	SegmentBytes int64
	// PoolPages is the index store's buffer-pool budget in pages.
	PoolPages int
	// NoSync skips fsyncs everywhere (benchmark baseline only).
	NoSync bool
	// OpenFile substitutes the file implementation (crash injection).
	OpenFile storage.OpenFileFunc
	// OnErr receives asynchronous sink/WAL errors (may be nil).
	OnErr func(error)
}

// RecoveryStats reports what OpenDurable rebuilt.
type RecoveryStats struct {
	// CheckpointEntries were loaded from log.jsonl.
	CheckpointEntries int
	// WALEntries were replayed from the WAL tail.
	WALEntries int
	// WALSegments is the number of WAL segment files read.
	WALSegments int
	// TornTail reports a torn frame at the end of the WAL (the
	// expected wreckage of a crash mid-flush), truncated on reopen.
	TornTail bool
	// TruncatedLine reports a torn final JSONL line dropped while
	// bootstrapping from a plain sink file.
	TruncatedLine bool
	// CompactionResumed reports that a crash interrupted a retention
	// compaction after its commit point; recovery finished the copy-
	// back from the committed shadow file (log.compact.jsonl).
	CompactionResumed bool
	// Dropped counts sequence gaps in the recovered stream: entries
	// the sink dropped under DropOnFull before the shutdown.
	Dropped uint64
	// IndexGroups is the number of refinement-index groups rebuilt.
	IndexGroups int
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration
}

// app blob layout ("ADU2" + ckptSeq + jsonlBytes + count + dropped +
// epoch + flags). Version-1 blobs ("ADU1", no flags word) decode with
// flags = 0.
const (
	appMagic   = "ADU2"
	appMagicV1 = "ADU1"
	appLenV1   = 4 + 8*5
	appLen     = 4 + 8*6
)

// appCompactPending marks a compaction committed but not yet copied
// back: the blob's (jsize, count, ckptSeq) attest the contents of
// log.compact.jsonl, while log.jsonl may hold bytes of either
// generation. Reopen finishes the copy before reading anything.
const appCompactPending = 1 << 0

func encodeApp(ckptSeq uint64, jsize int64, count, dropped, epoch, flags uint64) []byte {
	b := make([]byte, appLen)
	copy(b[0:4], appMagic)
	binary.LittleEndian.PutUint64(b[4:], ckptSeq)
	binary.LittleEndian.PutUint64(b[12:], uint64(jsize))
	binary.LittleEndian.PutUint64(b[20:], count)
	binary.LittleEndian.PutUint64(b[28:], dropped)
	binary.LittleEndian.PutUint64(b[36:], epoch)
	binary.LittleEndian.PutUint64(b[44:], flags)
	return b
}

func decodeApp(b []byte) (ckptSeq uint64, jsize int64, count, dropped, epoch, flags uint64, err error) {
	switch {
	case len(b) == 0:
		return 0, 0, 0, 0, 0, 0, nil
	case len(b) == appLen && string(b[0:4]) == appMagic:
		flags = binary.LittleEndian.Uint64(b[44:])
	case len(b) == appLenV1 && string(b[0:4]) == appMagicV1:
		// flags = 0
	default:
		return 0, 0, 0, 0, 0, 0, fmt.Errorf("audit: unrecognized durable meta blob (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint64(b[4:]),
		int64(binary.LittleEndian.Uint64(b[12:])),
		binary.LittleEndian.Uint64(b[20:]),
		binary.LittleEndian.Uint64(b[28:]),
		binary.LittleEndian.Uint64(b[36:]), flags, nil
}

// appendStamped encodes one (seq, entry) pair: the WAL record format
// and the index value format. The timestamp keeps its instant and its
// zone offset, which is all RFC3339 output depends on, so a recovered
// entry re-encodes to byte-identical JSON.
func appendStamped(dst []byte, seq uint64, e *Entry) []byte {
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendVarint(dst, e.Time.UnixNano())
	_, off := e.Time.Zone()
	dst = binary.AppendVarint(dst, int64(off))
	dst = binary.AppendUvarint(dst, uint64(e.Op))
	dst = binary.AppendUvarint(dst, uint64(e.Status))
	for _, s := range [...]string{e.User, e.Data, e.Purpose, e.Authorized, e.Site, e.Reason} {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

func decodeStamped(b []byte) (uint64, Entry, error) {
	var e Entry
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, false
		}
		b = b[n:]
		return v, true
	}
	nextSigned := func() (int64, bool) {
		v, n := binary.Varint(b)
		if n <= 0 {
			return 0, false
		}
		b = b[n:]
		return v, true
	}
	seq, ok := next()
	ns, ok2 := nextSigned()
	off, ok3 := nextSigned()
	op, ok4 := next()
	st, ok5 := next()
	if !ok || !ok2 || !ok3 || !ok4 || !ok5 {
		return 0, e, fmt.Errorf("audit: short durable record header")
	}
	if off == 0 {
		e.Time = time.Unix(0, ns).UTC()
	} else {
		e.Time = time.Unix(0, ns).In(time.FixedZone("", int(off)))
	}
	e.Op = Op(op)
	e.Status = Status(st)
	for _, p := range [...]*string{&e.User, &e.Data, &e.Purpose, &e.Authorized, &e.Site, &e.Reason} {
		n, ok := next()
		if !ok || uint64(len(b)) < n {
			return 0, e, fmt.Errorf("audit: short durable record string")
		}
		*p = string(b[:n])
		b = b[n:]
	}
	return seq, e, nil
}

// indexKey builds the composite secondary-index key: big-endian
// sign-flipped unix nanoseconds, status byte, big-endian sequence
// number — so byte order is (time, status, seq) order, and an 8-byte
// time prefix is a valid exclusive scan bound for "everything before
// this instant".
const indexKeyLen = 8 + 1 + 8

func indexKey(t time.Time, st Status, seq uint64) []byte {
	k := make([]byte, indexKeyLen)
	binary.BigEndian.PutUint64(k[0:8], uint64(t.UnixNano())^(1<<63))
	k[8] = byte(st)
	binary.BigEndian.PutUint64(k[9:], seq)
	return k
}

// indexTimeBound is the 8-byte prefix bounding all keys with
// timestamp strictly before t (exclusive upper bound) or at/after t
// (inclusive lower bound).
func indexTimeBound(t time.Time) []byte {
	k := make([]byte, 8)
	binary.BigEndian.PutUint64(k, uint64(t.UnixNano())^(1<<63))
	return k
}

func indexKeyTime(k []byte) (time.Time, Status) {
	ns := int64(binary.BigEndian.Uint64(k[0:8]) ^ (1 << 63))
	return time.Unix(0, ns).UTC(), Status(k[8])
}

// walFeed adapts the WAL to the sink's stampedWriter: one WAL record
// per entry, appended by the single sink flusher goroutine, made
// durable by the WAL's own group-commit flusher. When the sink has
// dropped entries under DropOnFull, a drop-marker record carries the
// highest dropped sequence number, so recovery can count gaps past
// the last surviving entry record. A marker's first byte is 0x00 — a
// value no entry record starts with, since its leading uvarint is a
// sequence number >= 1.
type walFeed struct {
	w      *storage.WAL
	buf    []byte
	marker uint64 // highest drop marker already written
}

func (f *walFeed) writeStamped(batch []stamped, dropHigh uint64) error {
	for i := range batch {
		f.buf = appendStamped(f.buf[:0], batch[i].seq, &batch[i].e)
		if _, err := f.w.Append(f.buf); err != nil {
			return err
		}
	}
	if dropHigh > f.marker {
		f.buf = append(f.buf[:0], 0x00)
		f.buf = binary.AppendUvarint(f.buf, dropHigh)
		if _, err := f.w.Append(f.buf); err != nil {
			return err
		}
		f.marker = dropHigh
	}
	return nil
}

func (f *walFeed) syncStamped() error { return f.w.Sync() }

// OpenDurable opens (creating if needed) the durable audit store in
// dir for the named site. Recovery rebuilds the in-memory log from
// the checkpointed JSONL plus the WAL tail; if dir holds only a plain
// log.jsonl written by the file sink, the store bootstraps from it,
// tolerating a torn final line.
func OpenDurable(site, dir string, o DurableOptions) (*Durable, RecoveryStats, error) {
	start := time.Now()
	var rs RecoveryStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rs, err
	}
	openFile := o.OpenFile
	if openFile == nil {
		openFile = storage.OpenOSFile
	}
	st, err := storage.OpenStore(filepath.Join(dir, "index.db"), storage.Options{
		PoolPages: o.PoolPages,
		OpenFile:  o.OpenFile,
		NoSync:    o.NoSync,
	})
	if err != nil {
		return nil, rs, err
	}
	d := &Durable{dir: dir, store: st, openFile: openFile, onErr: o.OnErr, noSync: o.NoSync}
	fail := func(err error) (*Durable, RecoveryStats, error) {
		if d.wal != nil {
			d.wal.Close()
		}
		if d.jf != nil {
			d.jf.Close()
		}
		st.Close()
		return nil, rs, err
	}
	var epoch, flags uint64
	d.ckptSeq, d.jsize, d.count, d.dropped, epoch, flags, err = decodeApp(st.App())
	if err != nil {
		return fail(err)
	}

	d.jf, err = openFile(filepath.Join(dir, "log.jsonl"))
	if err != nil {
		return fail(err)
	}
	size, err := d.jf.Size()
	if err != nil {
		return fail(err)
	}
	if flags&appCompactPending != 0 {
		// A crash interrupted a compaction after its commit point: the
		// meta attests log.compact.jsonl, and log.jsonl may hold bytes
		// of either generation. Finish the copy-back before reading.
		if err := d.finishCompaction(epoch); err != nil {
			return fail(err)
		}
		size = d.jsize
		rs.CompactionResumed = true
	} else {
		// A shadow file with the flag clear is wreckage of either a
		// compaction that never committed or one that fully completed;
		// in both cases log.jsonl is authoritative.
		os.Remove(d.compactPath())
	}

	// WAL tail first: everything with seq > ckptSeq is newer than the
	// last checkpoint; anything at or below is a stale frame from a
	// crash between checkpoint and truncation. Reading the WAL before
	// the JSONL also disambiguates a version-0 store: with WAL records
	// present, a non-empty log.jsonl is the wreckage of a crashed first
	// checkpoint (the WAL covers everything, the JSONL is discarded);
	// with none, it is a plain legacy sink file to adopt.
	walDir := filepath.Join(dir, "wal")
	var tail []Entry
	var maxSeq uint64
	wst, err := storage.Replay(walDir, o.OpenFile, func(lsn uint64, p []byte) error {
		if len(p) > 0 && p[0] == 0x00 {
			// Drop marker: the highest seq the sink dropped. It extends
			// the gap accounting past the last surviving entry record.
			dh, n := binary.Uvarint(p[1:])
			if n <= 0 {
				return fmt.Errorf("audit: short drop marker record")
			}
			if dh > maxSeq {
				maxSeq = dh
			}
			return nil
		}
		seq, e, derr := decodeStamped(p)
		if derr != nil {
			return derr
		}
		if seq <= d.ckptSeq {
			return nil
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		tail = append(tail, e)
		return nil
	})
	if err != nil {
		return fail(err)
	}
	rs.WALEntries = len(tail)
	rs.WALSegments = wst.Segments
	rs.TornTail = wst.TornTail

	var entries []Entry
	bootstrap := false
	switch {
	case st.Version() == 0 && size > 0 && wst.Records == 0:
		// A plain sink file from before the durable store existed:
		// adopt its contents (torn final line tolerated) and convert by
		// checkpointing everything below.
		bootstrap = true
		entries, rs.TruncatedLine, err = ReadJSONLTolerant(io.NewSectionReader(d.jf, 0, size))
		if err != nil {
			return fail(fmt.Errorf("audit: bootstrap from log.jsonl: %w", err))
		}
		d.jsize, d.count = 0, 0
	case size < d.jsize:
		return fail(fmt.Errorf("audit: log.jsonl is %d bytes, checkpoint attests %d", size, d.jsize))
	default:
		if size > d.jsize {
			// Torn checkpoint append past the attested length.
			if err := d.jf.Truncate(d.jsize); err != nil {
				return fail(err)
			}
		}
		if d.jsize > 0 {
			entries, err = ReadJSONL(io.NewSectionReader(d.jf, 0, d.jsize))
			if err != nil {
				return fail(fmt.Errorf("audit: checkpointed log.jsonl: %w", err))
			}
		}
		if uint64(len(entries)) != d.count {
			return fail(fmt.Errorf("audit: log.jsonl holds %d entries, checkpoint attests %d", len(entries), d.count))
		}
	}
	rs.CheckpointEntries = len(entries)

	d.log = NewLog(site)
	d.log.bulkLoad(entries)
	if d.ckptSeq > d.log.seq.Load() {
		// Sequence gaps (dropped entries) compacted out of the JSONL:
		// resume numbering past the checkpoint cut so WAL-tail seqs
		// stay above every in-memory one.
		d.log.seq.Store(d.ckptSeq)
	}
	d.log.bulkLoad(tail)
	tailDrops := uint64(0)
	if maxSeq > d.ckptSeq {
		tailDrops = (maxSeq - d.ckptSeq) - uint64(len(tail))
	}
	rs.Dropped = d.dropped + tailDrops
	d.dropped += tailDrops

	d.wal, err = storage.OpenWAL(walDir, storage.WALOptions{
		SegmentBytes:   o.SegmentBytes,
		CommitInterval: o.CommitInterval,
		NoSync:         o.NoSync,
		OpenFile:       o.OpenFile,
	})
	if err != nil {
		return fail(err)
	}

	// Epoch continuity: a clean restart (no tail, no wreckage) rebuilds
	// the log byte-for-byte, so restoring the checkpointed epoch keeps
	// old Delta cursors valid. Any recovery that changed what a cursor
	// would have seen — a replayed tail, a bootstrap, a torn WAL —
	// advances the epoch so stale cursors mismatch and their consumers
	// (mining sessions included) resync instead of silently skipping
	// recovered entries.
	if bootstrap || len(tail) > 0 || rs.TornTail {
		epoch++
		d.log.epoch.Store(epoch)
		d.seenEpoch = epoch
		// Conclude recovery with a checkpoint: the tail is re-persisted
		// into log.jsonl and the index, and the WAL shrinks back to
		// (almost) nothing, so recovery work never accumulates.
		if err := d.checkpointLocked(); err != nil {
			return fail(err)
		}
	} else {
		d.log.epoch.Store(epoch)
		d.seenEpoch = epoch
	}

	d.log.setBatchSink(&walFeed{w: d.wal}, o.OnErr, o.Sink)
	rs.IndexGroups = len(d.log.Groups())
	rs.Elapsed = time.Since(start)
	return d, rs, nil
}

// Log returns the in-memory log backed by this store. Appends through
// it flow into the WAL via the attached sink. Structural mutation
// does NOT: retention must go through Durable.Expire — calling
// Expire/Rotate/Reset directly on the returned Log changes the shards
// without the persistent index or the drop accounting following, and
// the next Checkpoint refuses to persist the divergence (the log
// epoch moved outside the store) rather than corrupt it silently.
func (d *Durable) Log() *Log { return d.log }

// Append forwards to the underlying log.
func (d *Durable) Append(entries ...Entry) error { return d.log.Append(entries...) }

// Sync blocks until every entry appended before the call is durable
// in the WAL (one shared group-commit fsync away, not one per entry).
func (d *Durable) Sync() { d.log.Flush() }

// Dropped reports the total entries dropped under the DropOnFull
// policy across the store's lifetime, including recovered gaps.
func (d *Durable) Dropped() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dropped + d.log.SinkDropped()
}

// CheckpointSeq returns the sequence number of the last checkpoint
// cut (entries at or below it live in log.jsonl and the index).
func (d *Durable) CheckpointSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ckptSeq
}

// PoolStats exposes the index store's buffer-pool counters.
func (d *Durable) PoolStats() storage.PoolStats { return d.store.PoolStats() }

// WALSyncs reports the WAL's fsync count (group-commit amortization).
func (d *Durable) WALSyncs() uint64 { return d.wal.Syncs() }

// Checkpoint durably folds everything appended so far into log.jsonl
// and the secondary index, then truncates the WAL behind the cut.
func (d *Durable) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkpointLocked()
}

func (d *Durable) checkpointLocked() error {
	// Gap accounting below attributes every missing seq in
	// (ckptSeq, cur] to a DropOnFull drop. That only holds while
	// entries leave the shards through this store: a direct
	// Log.Expire/Rotate/Reset moved the log epoch without the index or
	// the drop counter following, and persisting on top would corrupt
	// both. Refuse instead.
	if e := d.log.epoch.Load(); e != d.seenEpoch {
		return fmt.Errorf("audit: log epoch moved %d -> %d outside the durable store (direct Log.Expire/Rotate/Reset?): retention on a durable store must go through Durable.Expire", d.seenEpoch, e)
	}
	// Capture the truncation bound BEFORE the cut: every WAL record at
	// or below this LSN was appended before cur was read, so its seq
	// is at or below cur and the checkpoint below covers it.
	lsnCut := d.wal.LastLSN()
	cur := d.log.seq.Load()
	// Fence: after settle, every seq <= cur is visible in its shard.
	d.log.settle()
	batch := d.log.collectRange(d.ckptSeq, cur)

	var buf []byte
	var err error
	for i := range batch {
		if buf, err = appendJSONLine(buf, &batch[i].e); err != nil {
			return err
		}
	}
	newSize := d.jsize + int64(len(buf))
	if len(buf) > 0 {
		if _, err := d.jf.WriteAt(buf, d.jsize); err != nil {
			return err
		}
		if err := d.jf.Truncate(newSize); err != nil {
			return err
		}
		if !d.noSync {
			if err := d.jf.Sync(); err != nil {
				return err
			}
		}
	}
	var val []byte
	for i := range batch {
		se := &batch[i]
		val = appendStamped(val[:0], se.seq, &se.e)
		if err := d.store.Put(indexKey(se.e.Time, se.e.Status, se.seq), val); err != nil {
			return err
		}
	}
	// Gaps in (ckptSeq, cur] are sequence numbers that were assigned
	// but never reached a shard: DropOnFull drops.
	newDropped := d.dropped + (cur - d.ckptSeq) - uint64(len(batch))
	newCount := d.count + uint64(len(batch))
	if err := d.store.Checkpoint(encodeApp(cur, newSize, newCount, newDropped, d.log.epoch.Load(), 0)); err != nil {
		return err
	}
	if err := d.wal.TruncateBefore(lsnCut + 1); err != nil {
		return err
	}
	d.ckptSeq = cur
	d.jsize = newSize
	d.count = newCount
	d.dropped = newDropped
	return nil
}

// SnapshotRange returns the entries with from <= time < to in
// chronological order (same-instant entries in append order),
// byte-identical to filtering SnapshotByTime. The checkpointed part
// is a single index range read; only the un-checkpointed tail touches
// the in-memory shards. A zero bound means unbounded.
func (d *Durable) SnapshotRange(from, to time.Time) ([]Entry, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotRangeLocked(from, to)
}

func (d *Durable) snapshotRangeLocked(from, to time.Time) ([]Entry, error) {
	var lo, hi []byte
	if !from.IsZero() {
		lo = indexTimeBound(from)
	}
	if !to.IsZero() {
		hi = indexTimeBound(to)
	}
	var ckpt []stamped
	var decErr error
	err := d.store.Scan(lo, hi, func(k, v []byte) bool {
		seq, e, derr := decodeStamped(v)
		if derr != nil {
			decErr = derr
			return false
		}
		ckpt = append(ckpt, stamped{seq: seq, e: e})
		return true
	})
	if err == nil {
		err = decErr
	}
	if err != nil {
		return nil, err
	}
	// Index byte order is (time, status, seq); restore (time, seq)
	// order. Sequence spaces across recovery generations ascend, so
	// seq order within an instant is append order.
	sortStamped(ckpt)

	inRange := func(t time.Time) bool {
		return (from.IsZero() || !t.Before(from)) && (to.IsZero() || t.Before(to))
	}
	var tail []stamped
	for _, se := range d.log.collectRange(d.ckptSeq, ^uint64(0)) {
		if inRange(se.e.Time) {
			tail = append(tail, se)
		}
	}
	sortStamped(tail)

	// Merge; on equal instants the checkpointed side wins — its
	// entries were appended before every tail entry.
	out := make([]Entry, 0, len(ckpt)+len(tail))
	i, j := 0, 0
	for i < len(ckpt) && j < len(tail) {
		if !tail[j].e.Time.Before(ckpt[i].e.Time) {
			out = append(out, ckpt[i].e)
			i++
		} else {
			out = append(out, tail[j].e)
			j++
		}
	}
	for ; i < len(ckpt); i++ {
		out = append(out, ckpt[i].e)
	}
	for ; j < len(tail); j++ {
		out = append(out, tail[j].e)
	}
	return out, nil
}

func sortStamped(buf []stamped) {
	sort.Slice(buf, func(i, j int) bool {
		if !buf[i].e.Time.Equal(buf[j].e.Time) {
			return buf[i].e.Time.Before(buf[j].e.Time)
		}
		return buf[i].seq < buf[j].seq
	})
}

// SnapshotByTime serves the federation TimeSource contract from the
// persistent index. Index read errors are reported through OnErr and
// answered from memory, so a consolidation never sees a partial view.
func (d *Durable) SnapshotByTime() []Entry {
	es, err := d.SnapshotRange(time.Time{}, time.Time{})
	if err != nil {
		if d.onErr != nil {
			d.onErr(err)
		}
		return d.log.SnapshotByTime()
	}
	return es
}

// ExpireScan counts, from the persistent index plus the in-memory
// tail, the entries an Expire(cutoff, exceptionCutoff) would drop —
// without touching entry values: the composite key alone carries the
// timestamp and status the retention rule needs.
func (d *Durable) ExpireScan(cutoff, exceptionCutoff time.Time) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	keep := func(t time.Time, st Status) bool {
		if !t.Before(cutoff) {
			return true
		}
		return st == Exception && !exceptionCutoff.IsZero() && !t.Before(exceptionCutoff)
	}
	err := d.store.Scan(nil, indexTimeBound(cutoff), func(k, v []byte) bool {
		if t, st := indexKeyTime(k); !keep(t, st) {
			n++
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	for _, se := range d.log.collectRange(d.ckptSeq, ^uint64(0)) {
		if !keep(se.e.Time, se.e.Status) {
			n++
		}
	}
	return n, nil
}

// Expire drops entries older than cutoff (with the same
// exception-retention rule as Log.Expire) from memory, the index, and
// the checkpoint log, then compacts: log.jsonl is rewritten without
// the expired entries and the WAL truncated behind a fresh checkpoint.
func (d *Durable) Expire(cutoff, exceptionCutoff time.Time) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Index-driven scan for the checkpointed victims' keys.
	var victims [][]byte
	keep := func(t time.Time, st Status) bool {
		if !t.Before(cutoff) {
			return true
		}
		return st == Exception && !exceptionCutoff.IsZero() && !t.Before(exceptionCutoff)
	}
	err := d.store.Scan(nil, indexTimeBound(cutoff), func(k, v []byte) bool {
		if t, st := indexKeyTime(k); !keep(t, st) {
			victims = append(victims, append([]byte(nil), k...))
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	for _, k := range victims {
		if _, err := d.store.Delete(k); err != nil {
			return 0, err
		}
	}
	dropped := d.log.Expire(cutoff, exceptionCutoff)
	d.seenEpoch = d.log.epoch.Load()
	if err := d.compactLocked(); err != nil {
		return dropped, err
	}
	return dropped, nil
}

// compactPath is the shadow file a compaction writes the new JSONL
// generation into before committing it in the store meta.
func (d *Durable) compactPath() string { return filepath.Join(d.dir, "log.compact.jsonl") }

// rewriteLog replaces log.jsonl's contents with buf.
func (d *Durable) rewriteLog(buf []byte) error {
	if len(buf) > 0 {
		if _, err := d.jf.WriteAt(buf, 0); err != nil {
			return err
		}
	}
	if err := d.jf.Truncate(int64(len(buf))); err != nil {
		return err
	}
	if d.noSync {
		return nil
	}
	return d.jf.Sync()
}

// compactLocked rewrites log.jsonl from the surviving in-memory
// entries, indexes the surviving tail, and checkpoints — the full
// compaction behind Expire.
//
// The current meta attests log.jsonl's exact bytes, so they must stay
// untouched until a newer meta commits (the same shadow-paging rule
// the page store follows). The new generation is therefore written to
// log.compact.jsonl first; the store checkpoint carrying the
// appCompactPending flag is the atomic switch; only then is log.jsonl
// rewritten and the flag cleared. A crash at any point leaves exactly
// one committed generation for reopen to serve — before the flag
// commit the old one, after it the new one (finished by
// finishCompaction if the copy-back did not complete).
func (d *Durable) compactLocked() error {
	lsnCut := d.wal.LastLSN()
	cur := d.log.seq.Load()
	d.log.settle()
	all := d.log.collectRange(0, cur)

	var buf []byte
	var err error
	for i := range all {
		if buf, err = appendJSONLine(buf, &all[i].e); err != nil {
			return err
		}
	}
	cf, err := d.openFile(d.compactPath())
	if err != nil {
		return err
	}
	werr := func() error {
		if len(buf) > 0 {
			if _, err := cf.WriteAt(buf, 0); err != nil {
				return err
			}
		}
		if err := cf.Truncate(int64(len(buf))); err != nil {
			return err
		}
		if d.noSync {
			return nil
		}
		return cf.Sync()
	}()
	if cerr := cf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	// Index the surviving tail (the checkpointed part is already
	// indexed; Expire deleted its victims above).
	var val []byte
	for i := range all {
		se := &all[i]
		if se.seq <= d.ckptSeq {
			continue
		}
		val = appendStamped(val[:0], se.seq, &se.e)
		if err := d.store.Put(indexKey(se.e.Time, se.e.Status, se.seq), val); err != nil {
			return err
		}
	}
	newSize := int64(len(buf))
	newCount := uint64(len(all))
	newDropped := d.dropped // expiry is not a drop; gaps already counted
	epoch := d.log.epoch.Load()
	// Commit point: the index mutations and the shadow generation
	// become the durable truth in one atomic meta swap.
	if err := d.store.Checkpoint(encodeApp(cur, newSize, newCount, newDropped, epoch, appCompactPending)); err != nil {
		return err
	}
	if err := d.rewriteLog(buf); err != nil {
		return err
	}
	if err := d.store.Checkpoint(encodeApp(cur, newSize, newCount, newDropped, epoch, 0)); err != nil {
		return err
	}
	os.Remove(d.compactPath())
	if err := d.wal.TruncateBefore(lsnCut + 1); err != nil {
		return err
	}
	d.ckptSeq = cur
	d.jsize = newSize
	d.count = newCount
	return nil
}

// finishCompaction completes a compaction that crashed between its
// commit point and the copy-back: the attested prefix of the shadow
// file is copied over log.jsonl, the pending flag cleared, and the
// shadow removed. Idempotent — a crash mid-way re-runs it on the next
// open. Called by OpenDurable before anything reads log.jsonl.
func (d *Durable) finishCompaction(epoch uint64) error {
	cf, err := d.openFile(d.compactPath())
	if err != nil {
		return err
	}
	defer cf.Close()
	csize, err := cf.Size()
	if err != nil {
		return err
	}
	if csize < d.jsize {
		return fmt.Errorf("audit: log.compact.jsonl is %d bytes, pending compaction attests %d", csize, d.jsize)
	}
	buf := make([]byte, d.jsize)
	if d.jsize > 0 {
		if _, err := cf.ReadAt(buf, 0); err != nil {
			return err
		}
	}
	if err := d.rewriteLog(buf); err != nil {
		return err
	}
	if err := d.store.Checkpoint(encodeApp(d.ckptSeq, d.jsize, d.count, d.dropped, epoch, 0)); err != nil {
		return err
	}
	os.Remove(d.compactPath())
	return nil
}

// Close drains the sink (a final WAL group commit makes every
// acknowledged append durable), then releases the WAL, the index
// store, and the checkpoint log. It does not checkpoint; reopening
// replays the WAL tail.
func (d *Durable) Close() error {
	d.log.CloseSink()
	err := d.wal.Close()
	if e := d.store.Close(); err == nil {
		err = e
	}
	if e := d.jf.Close(); err == nil {
		err = e
	}
	return err
}
