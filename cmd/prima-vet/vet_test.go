package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRx matches expected-diagnostic annotations in fixtures:
//
//	// want <analyzer> "<message substring>"
var wantRx = regexp.MustCompile(`// want (\w+) "(.*)"`)

type want struct {
	file     string // base name
	line     int
	analyzer string
	substr   string
}

func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRx.FindStringSubmatch(line); m != nil {
				out = append(out, want{file: e.Name(), line: i + 1, analyzer: m[1], substr: m[2]})
			}
		}
	}
	return out
}

// TestFixtures runs every analyzer — per-package and interprocedural
// — over the deliberately-broken testdata packages and requires an
// exact match between findings and // want annotations — no missing
// and no extra diagnostics.
func TestFixtures(t *testing.T) {
	fixtures := []string{
		"lockcheck", "purity", "errcheck", "codecpair",
		"lockorder", "phileak", "arenasafe",
	}
	for _, fixture := range fixtures {
		t.Run(fixture, func(t *testing.T) {
			dir := filepath.Join("testdata", fixture)
			loader, err := NewLoader(dir)
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := loader.Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("fixture does not type-check: %v", pkg.TypeErrors)
			}
			findings := runAnalyzers(pkg)
			prog := BuildProgram(loader, []*Package{pkg})
			findings = append(findings, runProgramAnalyzers(analyzers, prog)...)
			wants := parseWants(t, dir)
			if len(wants) == 0 {
				t.Fatal("fixture has no // want annotations")
			}

			matched := make([]bool, len(findings))
			for _, w := range wants {
				found := false
				for i, f := range findings {
					if matched[i] {
						continue
					}
					if filepath.Base(f.Pos.Filename) == w.file && f.Pos.Line == w.line &&
						f.Analyzer == w.analyzer && strings.Contains(f.Message, w.substr) {
						matched[i] = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("missing finding %s:%d [%s] %q\ngot:\n%s",
						w.file, w.line, w.analyzer, w.substr, findingList(findings))
				}
			}
			for i, f := range findings {
				if !matched[i] {
					t.Errorf("unexpected finding %s", f)
				}
			}
		})
	}
}

func findingList(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// TestCleanRepo is the self-test the CI gate relies on: the repo's
// own packages must produce zero findings.
func TestCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("prima-vet ./... exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestExitCodes pins the documented contract: 0 clean, 1 findings,
// 2 usage error.
func TestExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, a := range analyzers {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./testdata/errcheck"}, &stdout, &stderr); code != 1 {
		t.Fatalf("broken fixture exited %d, want 1:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[errcheck]") {
		t.Errorf("findings not printed: %q", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing dir exited %d, want 2", code)
	}

	// -run with an unknown analyzer is a usage error, never a silent
	// no-op.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-run", "nope", "./testdata/errcheck"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-run nope exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("-run nope stderr = %q, want mention of unknown analyzer", stderr.String())
	}

	// A valid -run subset reports only that analyzer's findings.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-run", "lockorder", "./testdata/lockorder"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-run lockorder exited %d, want 1:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[lockorder]") {
		t.Errorf("lockorder findings missing: %q", stdout.String())
	}
	if strings.Contains(stdout.String(), "[errcheck]") {
		t.Errorf("-run lockorder leaked other analyzers: %q", stdout.String())
	}
}

// TestExpandSkipsTestdata keeps the fixture packages out of ./...
// walks: they are deliberately broken.
func TestExpandSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("./... expanded into %s", d)
		}
	}
	if len(dirs) == 0 {
		t.Error("./... expanded to nothing")
	}
}
