// Hospital: the paper's §5 use case, end to end, through the real
// middleware. The Table 1 audit trail is recreated by driving the HDB
// Active Enforcement layer (regular queries where policy allows,
// break-the-glass where it does not), then ComputeCoverage and
// Refinement reproduce the paper's numbers: 30 % coverage, the
// Referral:Registration:Nurse pattern, and 80 % after adoption.
package main

import (
	"fmt"
	"log"
	"time"

	prima "repro"
	"repro/internal/scenario"
)

// row mirrors one Table 1 access.
type row struct {
	user    string
	column  string // table column = data category
	purpose string
	role    string
	except  bool // exception-based in the paper
}

func main() {
	sys := prima.New(prima.Config{Policy: scenario.PolicyStore(), Site: "st-elsewhere"})

	// Deterministic audit timestamps: t1..t10, one hour apart.
	step := 0
	sys.SetClock(func() time.Time {
		step++
		return scenario.Table1Base.Add(time.Duration(step-1) * time.Hour)
	})

	sys.DB().MustExec(`CREATE TABLE records (
		patient TEXT, address TEXT, prescription TEXT, referral TEXT, psychiatry TEXT
	)`)
	sys.DB().MustExec(`INSERT INTO records VALUES
		('p1', '1 Elm St', 'aspirin', 'cardio', 'none'),
		('p2', '2 Oak Ave', 'statins', 'derm', 'anxiety')`)
	if err := sys.RegisterTable(prima.TableMapping{
		Table:      "records",
		PatientCol: "patient",
		Categories: map[string]string{
			"address": "address", "prescription": "prescription",
			"referral": "referral", "psychiatry": "psychiatry",
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Table 1, row by row.
	rows := []row{
		{"John", "prescription", "treatment", "nurse", false},
		{"Tim", "referral", "treatment", "nurse", false},
		{"Mark", "referral", "registration", "nurse", true},
		{"Sarah", "psychiatry", "treatment", "doctor", true},
		{"Bill", "address", "billing", "clerk", false},
		{"Jason", "prescription", "billing", "clerk", true},
		{"Mark", "referral", "registration", "nurse", true},
		{"Tim", "referral", "registration", "nurse", true},
		{"Bob", "referral", "registration", "nurse", true},
		{"Mark", "referral", "registration", "nurse", true},
	}
	for i, r := range rows {
		sql := fmt.Sprintf(`SELECT %s FROM records`, r.column)
		if r.except {
			if _, _, err := sys.BreakGlass(r.user, r.role, r.purpose, "clinical necessity", sql); err != nil {
				log.Fatalf("t%d: %v", i+1, err)
			}
		} else {
			if _, _, err := sys.Query(r.user, r.role, r.purpose, sql); err != nil {
				log.Fatalf("t%d: %v", i+1, err)
			}
		}
	}

	fmt.Printf("audit log now holds %d entries (paper Table 1: 10 rows)\n", sys.AuditLog().Len())

	rep, err := sys.EntryCoverage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage over the snapshot: %.0f%% (paper: 30%%)\n", rep.Coverage*100)

	patterns, err := sys.Patterns()
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range patterns {
		fmt.Printf("refinement proposes: %s (support %d, %d distinct users; window t3..t10)\n",
			p.Rule.Compact(), p.Support, p.DistinctUsers)
	}

	// A privacy officer reviews: the nurse registration habit is
	// legitimate; anything touching psychiatry would need follow-up.
	officer := prima.ReviewerFunc(func(p prima.Pattern) prima.Decision {
		if v, _ := p.Rule.Value("data"); v == "Psychiatry" {
			return prima.Investigate
		}
		return prima.Adopt
	})
	round, err := sys.RunRefinement(officer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adopted %d rule(s); coverage %.0f%% -> %.0f%% (paper: 30%% -> 80%%)\n",
		len(round.Adopted), round.CoverageBefore*100, round.CoverageAfter*100)

	// The ward can now register from referrals without the glass.
	if _, _, err := sys.Query("Mark", "nurse", "registration", `SELECT referral FROM records`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("nurse registration access is now regular, not exception-based")
}
