package hdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/minidb"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/vocab"
)

// This file implements the enforcement fast path: an RCU-published
// decision snapshot plus a compiled query-plan cache, so the per-query
// hot loop takes zero locks and performs no parsing, no string-key
// construction, and no consent-store scans. The slow path in hdb.go is
// kept verbatim as the semantic reference; the differential tests in
// fastpath_test.go assert byte-identical outcomes.

// planCacheMax bounds the compiled-plan cache. On overflow the whole
// cache is dropped (generation sweep), mirroring policy.RangeCache: a
// workload that overflows it is already paying parse costs, and
// wholesale reset keeps the bound free of LRU bookkeeping on the hot
// path.
const planCacheMax = 4096

// snapshotBuilder owns the mutex serializing decision-snapshot
// rebuilds. It is a distinct type (not a second mutex on Enforcer) so
// the lockorder analyzer tracks it as its own class: the builder lock
// is held while the Enforcer mapping lock, the consent store, and the
// policy layer are consulted, and must therefore sit above them in the
// pinned order.
type snapshotBuilder struct {
	mu sync.Mutex
}

// decisionSnapshot is an immutable compilation of one
// (policy version, vocabulary generation, consent generation) state.
// Ground (category, purpose, role) triples are interned to dense ids
// and the permitted set is a flat bitset, so the common allowed()
// check is two map probes and one bit test; composite values fall back
// to range expansion, memoized per triple key. Snapshots are published
// through Enforcer.snap with RCU semantics: readers atomically load
// and never lock, writers build a fresh snapshot and swap the pointer.
//
// prima:arena — a snapshot is filled during build and frozen at
// publication; the only post-publication writes go through its
// sync.Map memo, never its fields.
type decisionSnapshot struct {
	pver uint64 // policy.Policy version compiled in
	vgen uint64 // vocab.Vocabulary generation compiled in
	cgen uint64 // consent.Store generation compiled in (0 when no store)
	// horizon bounds validity in time: the earliest consent-record
	// expiry at or after build time. Consent decisions cannot change
	// before a store mutation or the instant just after the horizon.
	horizon time.Time

	rg *policy.Range // compiled range, for composite fallback

	// comp{Data,Purpose,Role} hold the normalized composite (non-leaf)
	// values of each hierarchy: a value absent from its set is ground,
	// so the bitset answers for it; a present value needs expansion.
	compData    map[string]struct{}
	compPurpose map[string]struct{}
	compRole    map[string]struct{}

	// Dense interning of the ground triples present in the range.
	catID  map[string]int32
	purID  map[string]int32
	roleID map[string]int32
	nPur   int
	nRole  int
	bits   []uint64 // (cat*nPur+pur)*nRole+role bit set => permitted

	// composite memoizes fallback verdicts by canonical triple key.
	composite sync.Map // string -> bool
}

// valid reports whether the snapshot still describes the live system.
// All probes are lock-free atomic loads; the wall clock is consulted
// only when a consent expiry horizon exists.
func (s *decisionSnapshot) valid(e *Enforcer) bool {
	if s.pver != e.ps.Version() || s.vgen != e.v.Generation() {
		return false
	}
	if e.consent != nil {
		if s.cgen != e.consent.Generation() {
			return false
		}
		if !s.horizon.IsZero() && time.Now().After(s.horizon) {
			return false
		}
	}
	return true
}

// allowed is the snapshot form of Enforcer.allowed: bitset probe for
// ground triples, memoized range expansion for composite values.
func (s *decisionSnapshot) allowed(v *vocab.Vocabulary, category, purpose, role string) bool {
	nc, np, nr := vocab.Norm(category), vocab.Norm(purpose), vocab.Norm(role)
	_, cd := s.compData[nc]
	_, cp := s.compPurpose[np]
	_, cr := s.compRole[nr]
	if !cd && !cp && !cr {
		ci, ok := s.catID[nc]
		if !ok {
			return false
		}
		pi, ok := s.purID[np]
		if !ok {
			return false
		}
		ri, ok := s.roleID[nr]
		if !ok {
			return false
		}
		idx := (int(ci)*s.nPur+int(pi))*s.nRole + int(ri)
		return s.bits[idx>>6]&(1<<uint(idx&63)) != 0
	}
	key := policy.TripleKey(category, purpose, role)
	if v, ok := s.composite.Load(key); ok {
		return v.(bool)
	}
	rule := policy.MustRule(
		policy.T("data", category),
		policy.T("purpose", purpose),
		policy.T("authorized", role),
	)
	res := true
	grounds, truncated := rule.Groundings(v, policy.DefaultRangeLimit)
	if truncated {
		res = false
	} else {
		for _, g := range grounds {
			if !s.rg.Contains(g) {
				res = false
				break
			}
		}
	}
	s.composite.Store(key, res)
	return res
}

// snapshot returns a valid decision snapshot, rebuilding under the
// builder lock when any version counter (or the consent expiry
// horizon) has moved. The fast case is one atomic load plus three
// atomic version compares.
func (e *Enforcer) snapshot() (*decisionSnapshot, error) {
	if s := e.snap.Load(); s != nil && s.valid(e) {
		return s, nil
	}
	e.snapb.mu.Lock()
	defer e.snapb.mu.Unlock()
	if s := e.snap.Load(); s != nil && s.valid(e) {
		return s, nil
	}
	s, err := e.buildSnapshot()
	if err != nil {
		return nil, err
	}
	e.snap.Store(s)
	return s, nil
}

// buildSnapshot compiles the current policy/vocabulary/consent state.
// Version counters are read before the data they describe: a racing
// mutation mid-build leaves the snapshot stale-at-birth, which the
// next valid() probe detects — the snapshot can claim an older state
// than it holds, never a newer one.
func (e *Enforcer) buildSnapshot() (*decisionSnapshot, error) {
	s := &decisionSnapshot{
		pver: e.ps.Version(),
		vgen: e.v.Generation(),
	}
	if e.consent != nil {
		s.cgen = e.consent.Generation()
		s.horizon = e.consent.ExpiryHorizon(time.Now())
	}
	rg, err := e.policyRange()
	if err != nil {
		return nil, err
	}
	s.rg = rg
	s.compData = compositeSet(e.v, "data")
	s.compPurpose = compositeSet(e.v, "purpose")
	s.compRole = compositeSet(e.v, "authorized")

	// Intern the ground triples of the range. Only rules of exactly
	// the shape {data, purpose, authorized} can match an enforcement
	// triple key, so others are skipped (the composite fallback works
	// on the full range regardless).
	type triple struct{ c, p, r string }
	var triples []triple
	s.catID = make(map[string]int32)
	s.purID = make(map[string]int32)
	s.roleID = make(map[string]int32)
	for _, r := range rg.Rules() {
		if r.Len() != 3 {
			continue
		}
		d, okD := r.Value("data")
		p, okP := r.Value("purpose")
		a, okA := r.Value("authorized")
		if !okD || !okP || !okA {
			continue
		}
		t := triple{c: vocab.Norm(d), p: vocab.Norm(p), r: vocab.Norm(a)}
		if _, ok := s.catID[t.c]; !ok {
			s.catID[t.c] = int32(len(s.catID))
		}
		if _, ok := s.purID[t.p]; !ok {
			s.purID[t.p] = int32(len(s.purID))
		}
		if _, ok := s.roleID[t.r]; !ok {
			s.roleID[t.r] = int32(len(s.roleID))
		}
		triples = append(triples, t)
	}
	s.nPur = len(s.purID)
	s.nRole = len(s.roleID)
	total := len(s.catID) * s.nPur * s.nRole
	s.bits = make([]uint64, (total+63)/64)
	for _, t := range triples {
		idx := (int(s.catID[t.c])*s.nPur+int(s.purID[t.p]))*s.nRole + int(s.roleID[t.r])
		s.bits[idx>>6] |= 1 << uint(idx&63)
	}
	return s, nil
}

// compositeSet collects the normalized composite values of one
// attribute hierarchy; nil-hierarchy attributes have none (every value
// is atomic by definition).
func compositeSet(v *vocab.Vocabulary, attr string) map[string]struct{} {
	out := make(map[string]struct{})
	if h := v.Hierarchy(attr); h != nil {
		for _, val := range h.CompositeValues() {
			out[val] = struct{}{}
		}
	}
	return out
}

// planItem is the per-output-item analysis a specialization needs to
// mask without re-walking the AST.
type planItem struct {
	cats        []string // data categories the item references
	categorized bool     // references at least one mapped column
	name        string   // mask label: alias, or the expression text
}

// queryPlan caches Parse + expandStar + column/category extraction for
// one SQL string. Plans are immutable after construction except for
// the single-slot specialization cache, which is an atomic pointer.
//
// prima:arena — a plan is built privately and frozen at publication
// into the plan cache; post-publication state lives only behind the
// spec atomic pointer.
type queryPlan struct {
	stmt       *minidb.SelectStmt // parsed, star-expanded; never mutated
	m          *TableMapping
	patientCol string
	mapGen     uint64 // Enforcer mapping generation compiled in
	schemaGen  uint64 // minidb schema generation compiled in
	outCats    []string
	otherCats  []string
	allCats    []string
	items      []planItem

	spec atomic.Pointer[specialization]
}

// specialization is a query plan bound to one decision snapshot and
// one (purpose, role): the fully precomputed outcome of enforcement
// analysis. Replaying it is a pointer compare plus (on allow) one
// statement execution.
//
// prima:arena — built privately, frozen once stored in queryPlan.spec.
type specialization struct {
	snap    *decisionSnapshot
	purpose string // raw, as supplied (error text embeds the raw form)
	role    string

	denyErr   error              // non-nil: the access is rejected
	denyAudit []string           // categories audited on denial
	denied    []string           // Access.Denied (non-output denial only)
	masked    []string           // Access.Masked
	optedOut  int                // Access.OptedOut
	stmt      *minidb.SelectStmt // statement to execute (== plan.stmt when unrewritten)
}

// plan returns the compiled plan for sql, building and caching it on
// miss. A plan is stale when a table mapping was (re)registered or the
// database schema changed; staleness is two lock-free counter loads.
func (e *Enforcer) plan(sql string) (*queryPlan, error) {
	if v, ok := e.plans.Load(sql); ok {
		pl := v.(*queryPlan)
		if pl.mapGen == e.mapGen.Load() && pl.schemaGen == e.db.SchemaGeneration() {
			return pl, nil
		}
	}
	pl, err := e.buildPlan(sql)
	if err != nil {
		return nil, err
	}
	if _, existed := e.plans.Swap(sql, pl); !existed {
		if e.planN.Add(1) > planCacheMax {
			e.FlushPlans()
		}
	}
	return pl, nil
}

// buildPlan compiles sql. The validation order (parse, statement kind,
// joins, mapping, table) matches the slow path exactly so error
// behaviour is identical.
func (e *Enforcer) buildPlan(sql string) (*queryPlan, error) {
	mapGen := e.mapGen.Load()
	schemaGen := e.db.SchemaGeneration()
	st, err := minidb.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*minidb.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("hdb: only SELECT statements pass through enforcement")
	}
	if len(sel.Joins) > 0 {
		return nil, fmt.Errorf("hdb: joins are not supported under enforcement; query one registered table at a time")
	}
	m, err := e.mapping(sel.Table)
	if err != nil {
		return nil, err
	}
	tbl, err := e.db.Table(sel.Table)
	if err != nil {
		return nil, err
	}
	expandStar(sel, tbl)

	outCols := columnsOf(selectExprs(sel))
	otherCols := columnsOf(nonOutputExprs(sel))
	pl := &queryPlan{
		stmt:       sel,
		m:          m,
		patientCol: m.PatientCol,
		mapGen:     mapGen,
		schemaGen:  schemaGen,
		outCats:    categoriesOf(outCols, m),
		otherCats:  categoriesOf(otherCols, m),
		items:      make([]planItem, len(sel.Items)),
	}
	pl.allCats = union(pl.outCats, pl.otherCats)
	for i, it := range sel.Items {
		pi := planItem{}
		for _, c := range columnsOf([]minidb.Expr{it.Expr}) {
			if cat, ok := m.Categories[c]; ok {
				pi.categorized = true
				pi.cats = append(pi.cats, cat)
			}
		}
		pi.name = it.Alias
		if pi.name == "" && it.Expr != nil {
			pi.name = it.Expr.String()
		}
		pl.items[i] = pi
	}
	return pl, nil
}

// specFor returns the cached specialization when it was built against
// the same snapshot, purpose, and role; nil otherwise.
func (pl *queryPlan) specFor(s *decisionSnapshot, purpose, role string) *specialization {
	sp := pl.spec.Load()
	if sp != nil && sp.snap == s && sp.purpose == purpose && sp.role == role {
		return sp
	}
	return nil
}

// specialize binds a plan to a snapshot and a (purpose, role),
// mirroring the slow path's analysis step by step: non-output denial,
// output masking, then consent filtering on a cheap statement clone.
// The cached plan statement is never mutated.
func (e *Enforcer) specialize(pl *queryPlan, s *decisionSnapshot, purpose, role string) *specialization {
	sp := &specialization{snap: s, purpose: purpose, role: role, stmt: pl.stmt}

	// Non-output use of a denied category rejects the query.
	var denied []string
	for _, cat := range pl.otherCats {
		if !s.allowed(e.v, cat, purpose, role) {
			denied = append(denied, cat)
		}
	}
	if len(denied) > 0 {
		sp.denied = denied
		sp.denyAudit = denied
		sp.denyErr = fmt.Errorf("%w: %s not permitted for %s by %s",
			ErrDenied, strings.Join(denied, ", "), report.RedactValue(purpose), role)
		return sp
	}

	// Mask denied output columns on a cloned item slice.
	var deniedOut []string // sorted: outCats is sorted
	for _, cat := range pl.outCats {
		if !s.allowed(e.v, cat, purpose, role) {
			deniedOut = append(deniedOut, cat)
		}
	}
	if len(deniedOut) > 0 {
		items := make([]minidb.SelectItem, len(pl.stmt.Items))
		copy(items, pl.stmt.Items)
		kept := 0
		var masked []string
		for i, pi := range pl.items {
			hit := false
			for _, cat := range pi.cats {
				if containsSorted(deniedOut, cat) {
					hit = true
					break
				}
			}
			if hit {
				items[i] = minidb.SelectItem{
					Expr:  &minidb.Literal{Val: minidb.Null()},
					Alias: pi.name,
				}
				masked = append(masked, pi.name)
			} else if pi.categorized {
				kept++
			}
		}
		sort.Strings(masked)
		sp.masked = masked
		if kept == 0 {
			sp.denyAudit = deniedOut
			sp.denyErr = fmt.Errorf("%w: no permitted columns remain for %s by %s",
				ErrDenied, report.RedactValue(purpose), role)
			return sp
		}
		st := *pl.stmt
		st.Items = items
		sp.stmt = &st
	}

	// Consent filtering over the categories actually returned.
	if e.consent != nil && pl.patientCol != "" {
		now := time.Now()
		var excluded []string
		for _, cat := range pl.allCats {
			if containsSorted(deniedOut, cat) {
				continue
			}
			for _, pat := range e.consent.OptedOutAt(cat, purpose, now) {
				excluded = insertSorted(excluded, pat)
			}
		}
		if len(excluded) > 0 {
			st := *sp.stmt
			list := make([]minidb.Expr, len(excluded))
			for i, p := range excluded {
				list[i] = &minidb.Literal{Val: minidb.Text(p)}
			}
			pred := &minidb.InList{X: &minidb.ColRef{Name: pl.patientCol}, Not: true, List: list}
			if st.Where == nil {
				st.Where = pred
			} else {
				st.Where = &minidb.Binary{Op: "AND", L: st.Where, R: pred}
			}
			sp.stmt = &st
			sp.optedOut = len(excluded)
		}
	}
	return sp
}

// runFast is the compiled enforcement path. Per query it performs: two
// principal/purpose checks, one plan-cache probe, one snapshot load
// with three atomic version compares, one specialization pointer
// compare, statement execution, and the audit append. No locks are
// taken outside the audit sink.
func (e *Enforcer) runFast(p Principal, purpose, reason, sql string, breakGlass bool) (*minidb.Result, *Access, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if strings.TrimSpace(purpose) == "" {
		return nil, nil, fmt.Errorf("hdb: a purpose is required (HIPAA purpose specification)")
	}
	if err := e.checkVocabulary(p, purpose); err != nil {
		return nil, nil, err
	}
	pl, err := e.plan(sql)
	if err != nil {
		return nil, nil, err
	}

	// Break-glass bypasses the decision layer entirely — policy and
	// consent are not consulted — but still benefits from the compiled
	// plan (no reparse, no re-expansion).
	if breakGlass {
		acc := &Access{Categories: pl.allCats, Exception: true}
		res, err := e.db.ExecStmt(pl.stmt)
		if err != nil {
			return nil, nil, err
		}
		e.audit(p, purpose, reason, acc, audit.Allow, pl.allCats)
		return res, acc, nil
	}

	s, err := e.snapshot()
	if err != nil {
		return nil, nil, err
	}
	sp := pl.specFor(s, purpose, p.Role)
	if sp == nil {
		sp = e.specialize(pl, s, purpose, p.Role)
		pl.spec.Store(sp)
	}
	acc := &Access{
		Categories: pl.allCats,
		Masked:     sp.masked,
		Denied:     sp.denied,
		OptedOut:   sp.optedOut,
	}
	if sp.denyErr != nil {
		e.audit(p, purpose, reason, acc, audit.Deny, sp.denyAudit)
		return nil, acc, sp.denyErr
	}
	res, err := e.db.ExecStmt(sp.stmt)
	if err != nil {
		return nil, nil, err
	}
	e.audit(p, purpose, reason, acc, audit.Allow, pl.allCats)
	return res, acc, nil
}

// SetFastPath toggles the compiled enforcement path (on by default).
// The slow path remains available as the semantic reference for
// differential testing and benchmarking.
func (e *Enforcer) SetFastPath(on bool) { e.fast.Store(on) }

// FlushPlans drops every compiled query plan and the current decision
// snapshot; they rebuild on demand. Useful for cold-path measurement
// and after bulk administrative changes.
func (e *Enforcer) FlushPlans() {
	e.plans.Range(func(k, _ any) bool {
		e.plans.Delete(k)
		return true
	})
	e.planN.Store(0)
	e.snap.Store(nil)
}

// containsSorted reports membership in a small sorted slice.
func containsSorted(sorted []string, s string) bool {
	i := sort.SearchStrings(sorted, s)
	return i < len(sorted) && sorted[i] == s
}

// insertSorted inserts s into a small sorted slice, keeping it sorted
// and deduplicated.
func insertSorted(sorted []string, s string) []string {
	i := sort.SearchStrings(sorted, s)
	if i < len(sorted) && sorted[i] == s {
		return sorted
	}
	sorted = append(sorted, "")
	copy(sorted[i+1:], sorted[i:])
	sorted[i] = s
	return sorted
}
