// Package lint statically analyzes a policy store against a
// vocabulary — the domain layer of the repo's static-analysis pass.
// Where cmd/prima-vet checks the code that manipulates policies, this
// package checks the policy artifacts themselves, before enforcement
// ever runs: a rule referencing an attribute the vocabulary does not
// know can never match an audit entry, a rule whose Range (Definition
// 8) is contained in another's is dead weight the refinement loop
// will re-derive, and a vocabulary subtree no rule can reach is a
// coverage hole waiting for Algorithm 1 to report it in production.
//
// The range comparisons (PL003–PL006) run on the symbolic interval
// algebra (policy.SymRule) by default: rule containment is a
// cardinality comparison over per-attribute intervals, so the pass
// scales to SNOMED/ICD-size vocabularies where a single composite
// rule's ground Range is beyond materializing. The materializing path
// is retained behind Options.Materialize as the differential oracle;
// both paths emit identical findings wherever the oracle can run.
//
// Finding codes:
//
//	PL001 unknown-attribute   a rule term uses an attribute absent from the vocabulary
//	PL002 unknown-value       a rule term uses a value absent from its attribute's hierarchy
//	PL003 empty-range         a rule has no computable Range (zero rule, or expansion over limit)
//	PL004 duplicate-rule      two rules have identical Ranges (Definitions 6/8)
//	PL005 subsumed-rule       a rule's Range is strictly contained in another's (Definition 8)
//	PL006 unreachable-subtree a vocabulary subtree no rule's Range touches
//	PL007 conflicting-rules   rules with different attribute signatures overlap on every shared attribute
//	PL008 over-broad-rule     a term's ground set exceeds a configurable fraction of its attribute's ground space
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/policy"
	"repro/internal/vocab"
)

// Finding codes.
const (
	UnknownAttribute   = "PL001"
	UnknownValue       = "PL002"
	EmptyRange         = "PL003"
	DuplicateRule      = "PL004"
	SubsumedRule       = "PL005"
	UnreachableSubtree = "PL006"
	ConflictingRules   = "PL007"
	OverBroadRule      = "PL008"
)

// DefaultOverBroadFraction is the PL008 threshold when Options leaves
// it unset: a term reaching more than 90% of its attribute's ground
// space is indistinguishable from no constraint at all.
const DefaultOverBroadFraction = 0.9

// Options parameterizes a lint pass.
type Options struct {
	// Materialize switches PL003–PL006 onto the ground-range oracle
	// path (Definition 8 by enumeration). The default symbolic path
	// emits identical findings and is the only one that completes on
	// large vocabularies; the oracle exists for differential testing.
	Materialize bool
	// OverBroadFraction is the PL008 threshold in (0, 1]: a rule term
	// is over-broad when its ground set covers strictly more than this
	// fraction of the attribute's ground space (and more than one
	// value). Zero selects DefaultOverBroadFraction; a negative value
	// disables PL008.
	OverBroadFraction float64
}

func (o Options) withDefaults() Options {
	if o.OverBroadFraction == 0 {
		o.OverBroadFraction = DefaultOverBroadFraction
	}
	return o
}

// Finding is one diagnostic about a policy/vocabulary pair.
type Finding struct {
	Code string `json:"code"`
	// Rule is the 1-based index of the offending rule within the
	// analyzed policy; 0 for vocabulary-level findings (PL006).
	Rule    int    `json:"rule,omitempty"`
	Attr    string `json:"attr,omitempty"`
	Value   string `json:"value,omitempty"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	if f.Rule > 0 {
		return fmt.Sprintf("%s rule %d: %s", f.Code, f.Rule, f.Message)
	}
	return fmt.Sprintf("%s: %s", f.Code, f.Message)
}

// Report is the outcome of linting one policy against one vocabulary.
type Report struct {
	Policy   string    `json:"policy"`
	Rules    int       `json:"rules"`
	Findings []Finding `json:"findings,omitempty"`
}

// Clean reports whether the lint pass produced no findings.
func (r Report) Clean() bool { return len(r.Findings) == 0 }

// Counts returns the number of findings per code.
func (r Report) Counts() map[string]int {
	out := make(map[string]int)
	for _, f := range r.Findings {
		out[f.Code]++
	}
	return out
}

// WriteText renders the report one finding per line.
func (r Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "policy %s: %d rule(s), %d finding(s)\n", r.Policy, r.Rules, len(r.Findings)); err != nil {
		return err
	}
	for _, f := range r.Findings {
		if _, err := fmt.Fprintf(w, "  %s\n", f); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report as one JSON document.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Policy lints p against v with default options.
func Policy(p *policy.Policy, v *vocab.Vocabulary) Report {
	return RulesOpts(p.Name, p.Rules(), v, Options{})
}

// PolicyOpts lints p against v.
func PolicyOpts(p *policy.Policy, v *vocab.Vocabulary, opts Options) Report {
	return RulesOpts(p.Name, p.Rules(), v, opts)
}

// Rules lints a bare rule list against v with default options. Policy
// deduplicates on Add, so fixtures exercising PL003/PL004 need this
// entry point; primactl goes through Policy.
func Rules(name string, rules []policy.Rule, v *vocab.Vocabulary) Report {
	return RulesOpts(name, rules, v, Options{})
}

// RulesOpts lints a bare rule list against v.
func RulesOpts(name string, rules []policy.Rule, v *vocab.Vocabulary, opts Options) Report {
	opts = opts.withDefaults()
	rep := Report{Policy: name, Rules: len(rules)}
	add := func(f Finding) { rep.Findings = append(rep.Findings, f) }

	// Per-rule vocabulary checks (PL001, PL002) plus symbolic
	// compilation; every downstream analysis consumes the compiled
	// boxes, the materializing oracle additionally enumerates.
	syms := make([]policy.SymRule, len(rules))
	valid := make([]bool, len(rules))
	for i, r := range rules {
		if r.IsZero() {
			add(Finding{
				Code: EmptyRange, Rule: i + 1,
				Message: "rule has no terms; its Range is empty and it can never cover an access",
			})
			continue
		}
		for _, t := range r.Terms() {
			h := v.Hierarchy(t.Attr)
			if h == nil {
				add(Finding{
					Code: UnknownAttribute, Rule: i + 1, Attr: t.Attr,
					Message: fmt.Sprintf("term %s uses attribute %q, which is not in the vocabulary", t, t.Attr),
				})
				continue
			}
			if !h.Contains(t.Value) {
				add(Finding{
					Code: UnknownValue, Rule: i + 1, Attr: t.Attr, Value: t.Value,
					Message: fmt.Sprintf("term %s uses value %q, which is not in the %q hierarchy", t, t.Value, h.Attr()),
				})
			}
		}
		syms[i], valid[i] = policy.CompileRule(r, v)
	}

	// Range identity and containment (PL004, PL005): Definition 8
	// makes the Range the semantic identity of a rule, so equal ranges
	// mean duplicate rules and strict containment means subsumption.
	if opts.Materialize {
		materializedPairwise(rules, v, valid, add)
	} else {
		for i := 0; i < len(rules); i++ {
			for j := i + 1; j < len(rules); j++ {
				if !valid[i] || !valid[j] {
					continue
				}
				inter := syms[i].IntersectCard(syms[j])
				aInB, bInA := inter == syms[i].Card(), inter == syms[j].Card()
				emitPairwise(rules, i, j, aInB, bInA, add)
			}
		}
	}

	// Conflicting rules (PL007, symbolic-only): two rules with
	// *different* attribute signatures whose projections overlap on
	// every shared attribute constrain overlapping accesses with
	// non-comparable conditions — each is silent about the other's
	// attributes, so the effective policy for the overlap is ambiguous.
	for i := 0; i < len(rules); i++ {
		for j := i + 1; j < len(rules); j++ {
			if !valid[i] || !valid[j] || syms[i].Sig() == syms[j].Sig() {
				continue
			}
			if conflicting(syms[i], syms[j]) {
				add(Finding{
					Code: ConflictingRules, Rule: j + 1,
					Message: fmt.Sprintf("rule %s overlaps rule %d %s on every shared attribute but constrains a different attribute set; the rules conflict over the shared accesses", rules[j], i+1, rules[i]),
				})
			}
		}
	}

	// Over-broad terms (PL008, symbolic-only): a term whose ground set
	// exceeds the configured fraction of the attribute's entire ground
	// space grants nearly everything the hierarchy can express.
	if opts.OverBroadFraction > 0 {
		for i, r := range rules {
			if !valid[i] {
				continue
			}
			for _, t := range r.Terms() {
				h := v.Hierarchy(t.Attr)
				if h == nil {
					continue
				}
				ix := h.Intervals()
				sp, ok := ix.Interval(t.Value)
				if !ok || sp.Len() <= 1 {
					continue
				}
				total := ix.LeafCount()
				if total > 1 && float64(sp.Len()) > opts.OverBroadFraction*float64(total) {
					add(Finding{
						Code: OverBroadRule, Rule: i + 1, Attr: h.Attr(), Value: t.Value,
						Message: fmt.Sprintf("term %s reaches %d of the %d ground values of %q (more than %.0f%%); the constraint is nearly vacuous", t, sp.Len(), total, h.Attr(), opts.OverBroadFraction*100),
					})
				}
			}
		}
	}

	// Unreachable vocabulary subtrees (PL006). For each attribute,
	// collect the ground values any rule can reach; a maximal subtree
	// whose ground set is disjoint from that is dead vocabulary —
	// either obsolete taxonomy or a coverage hole. Findings are sorted
	// by (attribute, value) so text and JSON output are stable across
	// vocabulary registration order.
	var vf []Finding
	addVocab := func(f Finding) { vf = append(vf, f) }
	if opts.Materialize {
		materializedUnreachable(rules, v, addVocab)
	} else {
		symbolicUnreachable(rules, v, addVocab)
	}
	sort.SliceStable(vf, func(i, j int) bool {
		if vf[i].Attr != vf[j].Attr {
			return vf[i].Attr < vf[j].Attr
		}
		return vf[i].Value < vf[j].Value
	})
	rep.Findings = append(rep.Findings, vf...)

	return rep
}

// emitPairwise translates a ⊆/⊇ pair into PL004/PL005 findings.
func emitPairwise(rules []policy.Rule, i, j int, aInB, bInA bool, add func(Finding)) {
	switch {
	case aInB && bInA:
		add(Finding{
			Code: DuplicateRule, Rule: j + 1,
			Message: fmt.Sprintf("rule %s has the same Range as rule %d %s (Definition 6 equivalence)", rules[j], i+1, rules[i]),
		})
	case bInA:
		add(Finding{
			Code: SubsumedRule, Rule: j + 1,
			Message: fmt.Sprintf("rule %s is subsumed by rule %d %s (Definition 8 range containment)", rules[j], i+1, rules[i]),
		})
	case aInB:
		add(Finding{
			Code: SubsumedRule, Rule: i + 1,
			Message: fmt.Sprintf("rule %s is subsumed by rule %d %s (Definition 8 range containment)", rules[i], j+1, rules[j]),
		})
	}
}

// conflicting reports whether two compiled rules of different
// signatures overlap on every attribute they share (sharing at least
// one).
func conflicting(a, b policy.SymRule) bool {
	aAttrs, bAttrs := a.Attrs(), b.Attrs()
	shared := 0
	ai, bi := 0, 0
	for ai < len(aAttrs) && bi < len(bAttrs) {
		switch {
		case aAttrs[ai] == bAttrs[bi]:
			if a.Set(ai).IntersectCard(b.Set(bi)) == 0 {
				return false
			}
			shared++
			ai++
			bi++
		case aAttrs[ai] < bAttrs[bi]:
			ai++
		default:
			bi++
		}
	}
	return shared > 0
}

// symbolicUnreachable walks each hierarchy against the interval union
// of every rule value for that attribute: a subtree is reachable iff
// its span overlaps the union. Foreign rule values reach no registered
// leaf and contribute nothing.
func symbolicUnreachable(rules []policy.Rule, v *vocab.Vocabulary, add func(Finding)) {
	for _, attr := range v.Attributes() {
		h := v.Hierarchy(attr)
		ix := h.Intervals()
		var covered []vocab.Span
		referenced := false
		for _, r := range rules {
			if r.IsZero() {
				continue
			}
			val, ok := r.Value(attr)
			if !ok {
				continue
			}
			referenced = true
			if sp, ok := ix.Interval(val); ok {
				covered = append(covered, sp)
			}
		}
		if !referenced {
			add(Finding{
				Code: UnreachableSubtree, Attr: h.Attr(),
				Message: fmt.Sprintf("no rule constrains attribute %q; its entire hierarchy is unreachable", h.Attr()),
			})
			continue
		}
		merged := vocab.MergeSpans(covered)
		var walk func(n *vocab.Node)
		walk = func(n *vocab.Node) {
			sp, _ := ix.Interval(n.Value())
			if !spansOverlap(merged, sp) {
				add(Finding{
					Code: UnreachableSubtree, Attr: h.Attr(), Value: n.Value(),
					Message: fmt.Sprintf("subtree %q of attribute %q is not reachable by any rule's Range", n.Value(), h.Attr()),
				})
				return // report the maximal dead subtree only
			}
			for _, c := range n.Children() {
				walk(c)
			}
		}
		for _, root := range h.Roots() {
			walk(root)
		}
	}
}

// spansOverlap reports whether sp overlaps any of the sorted disjoint
// spans.
func spansOverlap(sorted []vocab.Span, sp vocab.Span) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i].Hi > sp.Lo })
	return i < len(sorted) && sorted[i].Lo < sp.Hi
}

// materializedPairwise is the PL004/PL005 oracle: enumerate every
// rule's ground range and compare by set containment.
func materializedPairwise(rules []policy.Rule, v *vocab.Vocabulary, valid []bool, add func(Finding)) {
	ranges := make([]map[string]bool, len(rules))
	for i, r := range rules {
		if !valid[i] {
			continue
		}
		grounds, truncated := r.Groundings(v, policy.DefaultRangeLimit)
		if truncated {
			add(Finding{
				Code: EmptyRange, Rule: i + 1,
				Message: fmt.Sprintf("Range expansion of %s exceeds %d rules; the rule cannot be verified", r, policy.DefaultRangeLimit),
			})
			continue
		}
		set := make(map[string]bool, len(grounds))
		for _, g := range grounds {
			set[g.Key()] = true
		}
		ranges[i] = set
	}
	for i := 0; i < len(rules); i++ {
		for j := i + 1; j < len(rules); j++ {
			a, b := ranges[i], ranges[j]
			if a == nil || b == nil {
				continue
			}
			emitPairwise(rules, i, j, contained(a, b), contained(b, a), add)
		}
	}
}

// materializedUnreachable is the PL006 oracle over enumerated ground
// sets.
func materializedUnreachable(rules []policy.Rule, v *vocab.Vocabulary, add func(Finding)) {
	for _, attr := range v.Attributes() {
		h := v.Hierarchy(attr)
		covered := make(map[string]bool)
		referenced := false
		for _, r := range rules {
			val, ok := r.Value(attr)
			if !ok {
				continue
			}
			referenced = true
			for _, g := range h.GroundSet(val) {
				covered[vocab.Norm(g)] = true
			}
		}
		if !referenced {
			add(Finding{
				Code: UnreachableSubtree, Attr: h.Attr(),
				Message: fmt.Sprintf("no rule constrains attribute %q; its entire hierarchy is unreachable", h.Attr()),
			})
			continue
		}
		var walk func(n *vocab.Node)
		walk = func(n *vocab.Node) {
			if !reaches(h, n.Value(), covered) {
				add(Finding{
					Code: UnreachableSubtree, Attr: h.Attr(), Value: n.Value(),
					Message: fmt.Sprintf("subtree %q of attribute %q is not reachable by any rule's Range", n.Value(), h.Attr()),
				})
				return // report the maximal dead subtree only
			}
			for _, c := range n.Children() {
				walk(c)
			}
		}
		for _, root := range h.Roots() {
			walk(root)
		}
	}
}

// contained reports a ⊆ b.
func contained(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// reaches reports whether any ground value under value is covered.
func reaches(h *vocab.Hierarchy, value string, covered map[string]bool) bool {
	for _, g := range h.GroundSet(value) {
		if covered[vocab.Norm(g)] {
			return true
		}
	}
	return false
}
