// Officer-report: generate the Markdown report a privacy officer
// would review between refinement rounds. A month of hospital
// activity is simulated, one refinement round runs with a reviewer
// that rejects anything touching mental-health data, and the report
// summarizes coverage, the refinement outcome, and break-the-glass
// pressure by role.
package main

import (
	"log"
	"os"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/vocab"
	"repro/internal/workflow"
)

func main() {
	cfg := workflow.DefaultHospital(1234)
	sim, err := workflow.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	entries, err := sim.Run(0, 30)
	if err != nil {
		log.Fatal(err)
	}

	// A cautious reviewer: adopt routine practices, but anything
	// touching mental-health data needs investigation, and research
	// purposes are rejected outright.
	officer := core.ReviewerFunc(func(p core.Pattern) core.Decision {
		if d, _ := p.Rule.Value("data"); cfg.Vocab.Subsumes("data", "mental_health", d) {
			return core.Investigate
		}
		if pu, _ := p.Rule.Value("purpose"); vocab.Norm(pu) == "research" {
			return core.Reject
		}
		return core.Adopt
	})

	sess := core.NewSession(cfg.Policy, cfg.Vocab, core.Options{})
	if _, err := sess.Run(entries, officer); err != nil {
		log.Fatal(err)
	}

	al := audit.ToPolicy("AL", entries)
	cov, err := core.Coverage(cfg.Policy, al, cfg.Vocab)
	if err != nil {
		log.Fatal(err)
	}
	ec, err := core.EntryCoverage(cfg.Policy, entries, cfg.Vocab)
	if err != nil {
		log.Fatal(err)
	}
	err = report.Write(os.Stdout, report.Input{
		Title:         "St. Elsewhere — monthly privacy review",
		Generated:     time.Date(2007, 4, 1, 9, 0, 0, 0, time.UTC),
		Coverage:      cov,
		EntryCoverage: ec,
		Rounds:        sess.History,
		Entries:       entries,
	})
	if err != nil {
		log.Fatal(err)
	}
}
