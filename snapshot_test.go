package prima

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	sys := hospital(t)
	// Produce some state: consent, accesses, a refinement round.
	if err := sys.SetConsent("p2", "clinical", "", OptOut, clock0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Query("tim", "nurse", "treatment", `SELECT referral FROM records`); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"mark", "tim", "bob", "mark", "tim"} {
		if _, _, err := sys.BreakGlass(u, "nurse", "registration", "backlog", `SELECT referral FROM records`); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.RunRefinement(AdoptAll); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "snap")
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"vocabulary.txt", "policy.txt", "audit.jsonl", "consent.json", "database.sql", "mappings.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("snapshot missing %s: %v", name, err)
		}
	}

	back, err := LoadSystem(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Policy (including the adopted rule) survives.
	if !reflect.DeepEqual(back.Rules(), sys.Rules()) {
		t.Errorf("rules: %v vs %v", back.Rules(), sys.Rules())
	}
	// Audit log survives.
	if back.AuditLog().Len() != sys.AuditLog().Len() {
		t.Errorf("audit entries: %d vs %d", back.AuditLog().Len(), sys.AuditLog().Len())
	}
	// Coverage computed on the restored system matches.
	origCov, err := sys.EntryCoverage()
	if err != nil {
		t.Fatal(err)
	}
	backCov, err := back.EntryCoverage()
	if err != nil {
		t.Fatal(err)
	}
	if origCov.Coverage != backCov.Coverage {
		t.Errorf("coverage drifted: %v vs %v", origCov.Coverage, backCov.Coverage)
	}
	// The restored system enforces: adopted rule active, consent
	// filter active, data intact.
	res, acc, err := back.Query("mark", "nurse", "registration", `SELECT patient, referral FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || acc.OptedOut != 1 {
		t.Errorf("restored enforcement: rows=%d optedOut=%d", len(res.Rows), acc.OptedOut)
	}
	// And keeps auditing.
	if back.AuditLog().Len() != sys.AuditLog().Len()+1 {
		t.Errorf("restored system not auditing")
	}
}

func TestSaveLoadEmptySystem(t *testing.T) {
	sys := New(Config{})
	dir := filepath.Join(t.TempDir(), "empty")
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSystem(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.PolicyStore().Len() != 0 || back.AuditLog().Len() != 0 {
		t.Errorf("empty system not empty after load")
	}
}

func TestLoadSystemErrors(t *testing.T) {
	if _, err := LoadSystem(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing directory accepted")
	}
	// Corrupt one file at a time.
	sys := hospital(t)
	base := filepath.Join(t.TempDir(), "snap")
	if err := sys.Save(base); err != nil {
		t.Fatal(err)
	}
	// Format-specific invalid payloads (a comment line would be
	// silently accepted by the text formats).
	corrupt := map[string]string{
		"vocabulary.txt": "  orphan-value-before-attribute\n",
		"policy.txt":     "this line is not attr=value\n",
		"audit.jsonl":    "{not json\n",
		"consent.json":   "{\"not\": \"a list\"}",
		"database.sql":   "SELECT FROM nothing;;;",
		"mappings.json":  "still not json",
	}
	for name, payload := range corrupt {
		dir := filepath.Join(t.TempDir(), "corrupt-"+name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, copyName := range []string{"vocabulary.txt", "policy.txt", "audit.jsonl", "consent.json", "database.sql", "mappings.json"} {
			data, err := os.ReadFile(filepath.Join(base, copyName))
			if err != nil {
				t.Fatal(err)
			}
			if copyName == name {
				data = []byte(payload)
			}
			if err := os.WriteFile(filepath.Join(dir, copyName), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := LoadSystem(dir); err == nil {
			t.Errorf("corrupt %s accepted", name)
		}
	}
}

func TestLoadDatabaseScript(t *testing.T) {
	sys := New(Config{})
	err := sys.LoadDatabaseScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1), (2);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.DB().MustExec(`SELECT COUNT(*) FROM t`).Rows[0][0].AsInt(); got != 2 {
		t.Errorf("rows = %d", got)
	}
	if err := sys.LoadDatabaseScript(`BROKEN`); err == nil {
		t.Error("broken script accepted")
	}
}
