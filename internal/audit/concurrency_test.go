package audit

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentAppendAndConsolidate runs parallel appenders against
// several site logs while the federation repeatedly consolidates.
// Run with -race.
func TestConcurrentAppendAndConsolidate(t *testing.T) {
	logs := []*Log{NewLog("a"), NewLog("b"), NewLog("c")}
	fed := NewFederation(logs...)

	const perSite = 200
	var wg sync.WaitGroup
	for s, l := range logs {
		wg.Add(1)
		go func(s int, l *Log) {
			defer wg.Done()
			for i := 0; i < perSite; i++ {
				e := entry(t0.Add(time.Duration(s*perSite+i)*time.Second),
					fmt.Sprintf("u%d", i%7), "referral", "registration", "nurse", Exception)
				if err := l.Append(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(s, l)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			res := fed.Consolidate()
			for j := 1; j < len(res.Entries); j++ {
				if res.Entries[j].Time.Before(res.Entries[j-1].Time) {
					t.Error("consolidated view not chronological")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done

	res := fed.Consolidate()
	if len(res.Entries) != 3*perSite {
		t.Fatalf("final consolidation has %d entries", len(res.Entries))
	}
}
