package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// The paper flags the hardest part of refinement in §4.2: "the
// problem of separating violations from useful exceptions in an audit
// trail may require more sophisticated algorithms and even further
// research". Evidence implements the first such step beyond the
// COUNT(DISTINCT user) condition: per-pattern behavioural features a
// reviewer (human or automated) can weigh.

// Evidence summarizes how a pattern manifests in the practice log.
type Evidence struct {
	Rule    policy.Rule
	Support int
	// UserCounts is the per-user occurrence histogram.
	UserCounts map[string]int
	// Concentration is the Herfindahl index of UserCounts in [1/n, 1]:
	// 1 means a single user accounts for all occurrences (snooping
	// shape); 1/n means perfectly even spread across n users
	// (organizational-practice shape).
	Concentration float64
	// OffHoursFraction is the share of occurrences outside 06:00–18:00
	// local clinic time; informal practice follows the working day,
	// snooping often does not.
	OffHoursFraction float64
	// DaysActive counts distinct calendar days with occurrences.
	DaysActive int
}

// Suspicion scores the evidence in [0, 1]; higher means more
// violation-shaped. It combines user concentration and off-hours
// activity, the two separating features the simulator's ground truth
// validates (see evidence_test.go).
func (e Evidence) Suspicion() float64 {
	s := 0.7*e.Concentration + 0.3*e.OffHoursFraction
	if s > 1 {
		s = 1
	}
	return s
}

// String renders the evidence compactly.
func (e Evidence) String() string {
	return fmt.Sprintf("%s: support=%d users=%d concentration=%.2f offhours=%.2f days=%d suspicion=%.2f",
		e.Rule.Compact(), e.Support, len(e.UserCounts), e.Concentration, e.OffHoursFraction, e.DaysActive, e.Suspicion())
}

// GatherEvidence computes the behavioural evidence for a pattern rule
// over the practice entries (the Filter output). Matching uses the
// rule's attributes only, so partial rules (mining correlations) work
// too.
func GatherEvidence(practice []audit.Entry, rule policy.Rule) Evidence {
	ev := Evidence{Rule: rule, UserCounts: make(map[string]int)}
	days := make(map[string]bool)
	offHours := 0
	for _, e := range practice {
		if !entryMatchesRule(e, rule) {
			continue
		}
		ev.Support++
		ev.UserCounts[vocab.Norm(e.User)]++
		days[e.Time.UTC().Format("2006-01-02")] = true
		h := e.Time.Hour()
		if h < 6 || h >= 18 {
			offHours++
		}
	}
	ev.DaysActive = len(days)
	if ev.Support > 0 {
		ev.OffHoursFraction = float64(offHours) / float64(ev.Support)
		sumSq := 0.0
		for _, c := range ev.UserCounts {
			p := float64(c) / float64(ev.Support)
			sumSq += p * p
		}
		ev.Concentration = sumSq
	}
	return ev
}

// entryMatchesRule reports whether the entry carries every term of
// the (ground) rule.
func entryMatchesRule(e audit.Entry, rule policy.Rule) bool {
	for _, t := range rule.Terms() {
		v, err := entryAttr(e, t.Attr)
		if err != nil {
			return false
		}
		if vocab.Norm(v) != vocab.Norm(t.Value) {
			return false
		}
	}
	return true
}

// AnnotatePatterns attaches evidence to each pattern, sorted by
// ascending suspicion (safest adoption candidates first).
func AnnotatePatterns(practice []audit.Entry, patterns []Pattern) []Evidence {
	out := make([]Evidence, len(patterns))
	for i, p := range patterns {
		out[i] = GatherEvidence(practice, p.Rule)
	}
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i].Suspicion(), out[j].Suspicion()
		if math.Abs(si-sj) > 1e-12 {
			return si < sj
		}
		return out[i].Rule.Key() < out[j].Rule.Key()
	})
	return out
}

// SuspicionReviewer builds a Reviewer that adopts low-suspicion
// patterns, sends mid-range ones to investigation, and rejects
// clearly violation-shaped ones. practice must be the Filter output
// of the snapshot the session analyses.
func SuspicionReviewer(practice []audit.Entry, investigateAt, rejectAt float64) Reviewer {
	return ReviewerFunc(func(p Pattern) Decision {
		s := GatherEvidence(practice, p.Rule).Suspicion()
		switch {
		case s >= rejectAt:
			return Reject
		case s >= investigateAt:
			return Investigate
		default:
			return Adopt
		}
	})
}
