// Package purityfix triggers the puritycheck analyzer.
package purityfix

import (
	"sort"
	"time"
)

// Coverage is an analyzer root; stamp is reachable from it.
func Coverage(counts map[string]int) []string {
	var out []string
	for k := range counts { // want puritycheck "appends inside a range over map counts without sorting"
		out = append(out, k)
	}
	stamp()
	return out
}

func stamp() time.Time {
	return time.Now() // want puritycheck "calls time.Now"
}

// SortedNames is clean: it sorts what the map iteration produced.
func SortedNames(counts map[string]int) []string {
	out := make([]string, 0, len(counts))
	for k := range counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Helper is not reachable from any root, so its clock use is the
// caller's business, not the algebra's.
func Helper() time.Time { return time.Now() }
