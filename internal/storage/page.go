// Package storage is the durable storage engine under minidb and the
// audit store: a slotted-page file pager over fixed 4 KiB pages with a
// persistent free list, an LRU buffer pool with pin counts behind a
// lock-striped page table, a disk-backed B+tree with copy-on-write
// page updates and per-page prefix-truncated keys, and a group-commit
// write-ahead log (double-buffered records, fsync batching, CRC-framed
// segments, checkpoint + truncation).
//
// Crash consistency follows the shadow-paging model: pages referenced
// by the last durable meta record are never written in place. Tree
// mutations copy cold pages to freshly allocated ones (pages allocated
// since the last checkpoint are mutable), and Checkpoint flushes every
// dirty frame, fsyncs, then swaps the double-slot CRC'd meta page —
// the atomic commit point. Pages freed by copy-on-write return to the
// free list only after the checkpoint that unreferences them, so a
// torn checkpoint always leaves the previous tree intact. Operations
// newer than the last checkpoint are replayed from the WAL.
package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed page size of every pager file and the unit the
// buffer pool caches. 4 KiB matches the common filesystem block size,
// so a page write is one block write.
const PageSize = 4096

// pageHeaderSize is the fixed header at the start of every page:
//
//	[0]     kind
//	[1]     flags (unused)
//	[2:4]   ncells  (uint16)
//	[4:6]   cellsBegin (uint16) — lowest cell byte offset; cells grow down
//	[6:10]  aux (uint32) — leaf: next-leaf page id; freelist: next chain page
//	[10:12] prefixLen (uint16) — shared key prefix stored at the page tail
//	[12:16] reserved
//
// The slot array (one uint16 cell offset per cell, key-sorted) follows
// the header; cell bodies grow down from the prefix region at the page
// tail.
const pageHeaderSize = 16

// Page kinds.
const (
	kindFree     byte = 0
	kindBranch   byte = 2
	kindLeaf     byte = 3
	kindFreelist byte = 4
)

// maxCellPayload bounds key+value so that any page can hold at least
// four cells after the header, the slot entry and the varint framing.
const maxCellPayload = (PageSize - pageHeaderSize) / 4

type page []byte

func initPage(p page, kind byte) {
	for i := range p {
		p[i] = 0
	}
	p[0] = kind
	putU16(p[4:6], PageSize) // empty cell area, no prefix
}

func (p page) kind() byte  { return p[0] }
func (p page) ncells() int { return int(binary.LittleEndian.Uint16(p[2:4])) }
func (p page) cellsBegin() int {
	return int(binary.LittleEndian.Uint16(p[4:6]))
}
func (p page) aux() uint32     { return binary.LittleEndian.Uint32(p[6:10]) }
func (p page) setAux(v uint32) { binary.LittleEndian.PutUint32(p[6:10], v) }
func (p page) prefixLen() int  { return int(binary.LittleEndian.Uint16(p[10:12])) }

// prefix returns the shared key prefix stored at the page tail.
func (p page) prefix() []byte { return p[PageSize-p.prefixLen() : PageSize] }

func (p page) setNCells(n int)     { putU16(p[2:4], uint16(n)) }
func (p page) setCellsBegin(o int) { putU16(p[4:6], uint16(o)) }
func (p page) setPrefixLen(n int)  { putU16(p[10:12], uint16(n)) }

func putU16(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }

// slotOffset returns the cell body offset of slot i.
func (p page) slotOffset(i int) int {
	return int(binary.LittleEndian.Uint16(p[pageHeaderSize+2*i : pageHeaderSize+2*i+2]))
}

func (p page) setSlotOffset(i, off int) {
	putU16(p[pageHeaderSize+2*i:pageHeaderSize+2*i+2], uint16(off))
}

// freeSpace is the gap between the end of the slot array and the start
// of the cell area.
func (p page) freeSpace() int {
	return p.cellsBegin() - (pageHeaderSize + 2*p.ncells())
}

// cell accessors. Leaf cell body: uvarint suffixLen, uvarint valLen,
// suffix, value. Branch cell body: uvarint suffixLen, uint32 child,
// suffix. Keys are stored suffix-only; the page prefix completes them.

// leafCell decodes slot i of a leaf page, returning the key suffix and
// value without copying.
func (p page) leafCell(i int) (suffix, val []byte) {
	off := p.slotOffset(i)
	klen, n := binary.Uvarint(p[off:])
	off += n
	vlen, n := binary.Uvarint(p[off:])
	off += n
	return p[off : off+int(klen)], p[off+int(klen) : off+int(klen)+int(vlen)]
}

// branchCell decodes slot i of a branch page, returning the key suffix
// and child page id.
func (p page) branchCell(i int) (suffix []byte, child uint32) {
	off := p.slotOffset(i)
	klen, n := binary.Uvarint(p[off:])
	off += n
	child = binary.LittleEndian.Uint32(p[off : off+4])
	off += 4
	return p[off : off+int(klen)], child
}

// setBranchChild patches the child pointer of branch slot i in place
// (the child field is fixed-width, right after the suffix-length
// varint, so no rebuild is needed).
func (p page) setBranchChild(i int, child uint32) {
	off := p.slotOffset(i)
	_, n := binary.Uvarint(p[off:])
	binary.LittleEndian.PutUint32(p[off+n:off+n+4], child)
}

// keySuffix returns the key suffix of slot i for either page kind.
func (p page) keySuffix(i int) []byte {
	if p.kind() == kindLeaf {
		s, _ := p.leafCell(i)
		return s
	}
	s, _ := p.branchCell(i)
	return s
}

// compareKey compares the full key at slot i (prefix + suffix) against
// key without materializing the concatenation.
func (p page) compareKey(i int, key []byte) int {
	pre := p.prefix()
	n := len(pre)
	if n > len(key) {
		if c := bytes.Compare(pre[:len(key)], key); c != 0 {
			return c
		}
		return 1 // stored key strictly longer within the prefix
	}
	if c := bytes.Compare(pre, key[:n]); c != 0 {
		return c
	}
	return bytes.Compare(p.keySuffix(i), key[n:])
}

// search binary-searches for key, returning the first slot whose key
// is >= key, and whether it is an exact match.
func (p page) search(key []byte) (idx int, found bool) {
	lo, hi := 0, p.ncells()
	for lo < hi {
		mid := (lo + hi) / 2
		c := p.compareKey(mid, key)
		if c < 0 {
			lo = mid + 1
		} else {
			if c == 0 {
				return mid, true
			}
			hi = mid
		}
	}
	return lo, false
}

// keyAt materializes the full key at slot i.
func (p page) keyAt(i int) []byte {
	pre := p.prefix()
	suf := p.keySuffix(i)
	out := make([]byte, 0, len(pre)+len(suf))
	out = append(out, pre...)
	return append(out, suf...)
}

// item is one materialized page entry used by the rebuild/split path.
type item struct {
	key   []byte
	val   []byte // leaf payload
	child uint32 // branch pointer
}

// items extracts every cell of the page as full-key items, in order.
func (p page) items() []item {
	n := p.ncells()
	out := make([]item, n)
	pre := p.prefix()
	for i := 0; i < n; i++ {
		if p.kind() == kindLeaf {
			suf, val := p.leafCell(i)
			k := make([]byte, 0, len(pre)+len(suf))
			out[i].key = append(append(k, pre...), suf...)
			out[i].val = append([]byte(nil), val...)
		} else {
			suf, child := p.branchCell(i)
			k := make([]byte, 0, len(pre)+len(suf))
			out[i].key = append(append(k, pre...), suf...)
			out[i].child = child
		}
	}
	return out
}

// commonPrefix computes the longest common prefix of the item keys.
func commonPrefix(items []item) []byte {
	if len(items) == 0 {
		return nil
	}
	pre := items[0].key
	for _, it := range items[1:] {
		n := 0
		for n < len(pre) && n < len(it.key) && pre[n] == it.key[n] {
			n++
		}
		pre = pre[:n]
		if n == 0 {
			break
		}
	}
	// Cap the prefix so it cannot collide with the header/slot region
	// arithmetic on pathological single-key pages.
	if len(pre) > 1024 {
		pre = pre[:1024]
	}
	return pre
}

// cellSize returns the encoded size of an item under a given prefix.
func cellSize(kind byte, it item, prefixLen int) int {
	suf := len(it.key) - prefixLen
	if kind == kindLeaf {
		return uvarintLen(uint64(suf)) + uvarintLen(uint64(len(it.val))) + suf + len(it.val)
	}
	return uvarintLen(uint64(suf)) + 4 + suf
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// build writes items (key-sorted) into p with a freshly computed
// shared prefix. aux is preserved. It reports false when the items do
// not fit (the caller must split).
func (p page) build(kind byte, items []item) bool {
	aux := p.aux()
	pre := commonPrefix(items)
	need := pageHeaderSize + 2*len(items) + len(pre)
	for _, it := range items {
		need += cellSize(kind, it, len(pre))
	}
	if need > PageSize {
		return false
	}
	initPage(p, kind)
	p.setAux(aux)
	p.setPrefixLen(len(pre))
	copy(p[PageSize-len(pre):], pre)
	p.setNCells(len(items))
	off := PageSize - len(pre)
	for i, it := range items {
		suf := it.key[len(pre):]
		sz := cellSize(kind, it, len(pre))
		off -= sz
		p.setSlotOffset(i, off)
		o := off
		o += binary.PutUvarint(p[o:], uint64(len(suf)))
		if kind == kindLeaf {
			o += binary.PutUvarint(p[o:], uint64(len(it.val)))
			copy(p[o:], suf)
			copy(p[o+len(suf):], it.val)
		} else {
			binary.LittleEndian.PutUint32(p[o:o+4], it.child)
			copy(p[o+4:], suf)
		}
	}
	p.setCellsBegin(off)
	return true
}

// insertFast attempts the in-place insert of a leaf/branch item at
// slot idx without rebuilding: the key must extend the page prefix and
// the cell must fit in the free gap. Returns false when the slow
// (rebuild or split) path is required.
func (p page) insertFast(idx int, it item) bool {
	pre := p.prefix()
	if len(it.key) < len(pre) || !bytes.HasPrefix(it.key, pre) {
		return false
	}
	sz := cellSize(p.kind(), it, len(pre))
	if p.freeSpace() < sz+2 {
		return false
	}
	n := p.ncells()
	// Shift slots [idx, n) right by one.
	copy(p[pageHeaderSize+2*idx+2:pageHeaderSize+2*n+2], p[pageHeaderSize+2*idx:pageHeaderSize+2*n])
	off := p.cellsBegin() - sz
	p.setSlotOffset(idx, off)
	suf := it.key[len(pre):]
	o := off
	o += binary.PutUvarint(p[o:], uint64(len(suf)))
	if p.kind() == kindLeaf {
		o += binary.PutUvarint(p[o:], uint64(len(it.val)))
		copy(p[o:], suf)
		copy(p[o+len(suf):], it.val)
	} else {
		binary.LittleEndian.PutUint32(p[o:o+4], it.child)
		copy(p[o+4:], suf)
	}
	p.setCellsBegin(off)
	p.setNCells(n + 1)
	return true
}

// deleteSlot removes slot i, leaving its cell bytes as garbage that a
// later rebuild reclaims.
func (p page) deleteSlot(i int) {
	n := p.ncells()
	copy(p[pageHeaderSize+2*i:pageHeaderSize+2*n-2], p[pageHeaderSize+2*i+2:pageHeaderSize+2*n])
	p.setNCells(n - 1)
}

// validate sanity-checks structural invariants; used by tests and the
// recovery path to reject torn pages that slipped past the meta CRC.
func (p page) validate() error {
	if len(p) != PageSize {
		return fmt.Errorf("storage: page length %d", len(p))
	}
	k := p.kind()
	if k != kindLeaf && k != kindBranch && k != kindFreelist && k != kindFree {
		return fmt.Errorf("storage: bad page kind %d", k)
	}
	if k == kindFree || k == kindFreelist {
		return nil
	}
	n := p.ncells()
	if pageHeaderSize+2*n > p.cellsBegin() || p.cellsBegin() > PageSize-p.prefixLen() {
		return fmt.Errorf("storage: page layout out of bounds (ncells=%d cellsBegin=%d prefix=%d)", n, p.cellsBegin(), p.prefixLen())
	}
	for i := 0; i < n; i++ {
		off := p.slotOffset(i)
		if off < p.cellsBegin() || off >= PageSize-p.prefixLen() {
			return fmt.Errorf("storage: slot %d offset %d out of cell area", i, off)
		}
	}
	for i := 1; i < n; i++ {
		if bytes.Compare(p.keyAt(i-1), p.keyAt(i)) >= 0 {
			return fmt.Errorf("storage: slots %d,%d out of order", i-1, i)
		}
	}
	return nil
}
