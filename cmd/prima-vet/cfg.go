package main

import (
	"go/ast"
	"go/token"
	"sort"
)

// This file is the first half of prima-vet's interprocedural layer: a
// per-function control-flow graph and a fixpoint dataflow engine over
// it. The CFG is deliberately statement-granular — each basic block
// carries the ast.Stmt nodes executed in order — because the analyzers
// built on top (lockorder, arenasafe) need to interleave fact updates
// with call-site inspection inside a block.

// Block is one basic block: statements executed in order, then a
// transfer of control to one of Succs.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Block
}

// addSucc links b -> s, ignoring nil and duplicate edges.
func (b *Block) addSucc(s *Block) {
	if s == nil {
		return
	}
	for _, t := range b.Succs {
		if t == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Blocks []*Block
	// Ranges maps a range-loop head block to its RangeStmt. The head
	// carries only the range expression as a synthetic statement; the
	// SSA builder needs the original statement to model the implicit
	// per-iteration key/value assignment.
	Ranges map[*Block]*ast.RangeStmt
}

// cfgBuilder tracks the loop/switch context needed to wire break,
// continue, goto and fallthrough edges.
type cfgBuilder struct {
	cfg *CFG

	// breakTo / continueTo are stacks of targets; the innermost
	// breakable/continuable construct is last.
	breakTo    []*Block
	continueTo []*Block

	// labeled break/continue and goto resolution.
	labelBreak    map[string]*Block
	labelContinue map[string]*Block
	labelBlocks   map[string]*Block   // label -> block starting the labeled stmt
	pendingGotos  map[string][]*Block // unresolved forward gotos
}

// BuildCFG constructs the CFG of a function body. Every function has
// at least an entry block; unreachable trailing code still receives
// blocks (harmless for may-analyses).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:           &CFG{},
		labelBreak:    make(map[string]*Block),
		labelContinue: make(map[string]*Block),
		labelBlocks:   make(map[string]*Block),
		pendingGotos:  make(map[string][]*Block),
	}
	entry := b.newBlock()
	b.cfg.Entry = entry
	exit := b.stmts(body.List, entry, "")
	_ = exit
	// Resolve any gotos to labels that were never declared (broken
	// code); leave them without successors.
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// stmts appends the statement list to cur and returns the block where
// control continues afterwards (nil when control cannot fall through).
// label carries a pending label for the next loop/switch statement.
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *Block, label string) *Block {
	for _, s := range list {
		if cur == nil {
			// Dead code after return/branch: give it a fresh
			// disconnected block so its facts are still computable.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur, label)
		label = ""
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block, label string) *Block {
	switch x := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(x.List, cur, "")

	case *ast.LabeledStmt:
		// Start a fresh block so gotos have a landing point.
		lb := b.newBlock()
		cur.addSucc(lb)
		b.labelBlocks[x.Label.Name] = lb
		for _, g := range b.pendingGotos[x.Label.Name] {
			g.addSucc(lb)
		}
		delete(b.pendingGotos, x.Label.Name)
		return b.stmt(x.Stmt, lb, x.Label.Name)

	case *ast.IfStmt:
		if x.Init != nil {
			cur.Stmts = append(cur.Stmts, x.Init)
		}
		cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: x.Cond})
		thenB := b.newBlock()
		cur.addSucc(thenB)
		thenOut := b.stmts(x.Body.List, thenB, "")
		join := b.newBlock()
		if thenOut != nil {
			thenOut.addSucc(join)
		}
		if x.Else != nil {
			elseB := b.newBlock()
			cur.addSucc(elseB)
			elseOut := b.stmt(x.Else, elseB, "")
			if elseOut != nil {
				elseOut.addSucc(join)
			}
		} else {
			cur.addSucc(join)
		}
		return join

	case *ast.ForStmt:
		if x.Init != nil {
			cur.Stmts = append(cur.Stmts, x.Init)
		}
		head := b.newBlock()
		cur.addSucc(head)
		if x.Cond != nil {
			head.Stmts = append(head.Stmts, &ast.ExprStmt{X: x.Cond})
		}
		exit := b.newBlock()
		post := b.newBlock()
		if x.Post != nil {
			post.Stmts = append(post.Stmts, x.Post)
		}
		post.addSucc(head)
		if x.Cond != nil {
			head.addSucc(exit)
		}
		b.pushLoop(exit, post, label)
		body := b.newBlock()
		head.addSucc(body)
		bodyOut := b.stmts(x.Body.List, body, "")
		if bodyOut != nil {
			bodyOut.addSucc(post)
		}
		b.popLoop(label)
		return exit

	case *ast.RangeStmt:
		head := b.newBlock()
		cur.addSucc(head)
		// The range expression and per-iteration assignment live in the
		// head so facts flow through them each iteration.
		head.Stmts = append(head.Stmts, &ast.ExprStmt{X: x.X})
		if b.cfg.Ranges == nil {
			b.cfg.Ranges = make(map[*Block]*ast.RangeStmt)
		}
		b.cfg.Ranges[head] = x
		exit := b.newBlock()
		head.addSucc(exit)
		b.pushLoop(exit, head, label)
		body := b.newBlock()
		head.addSucc(body)
		bodyOut := b.stmts(x.Body.List, body, "")
		if bodyOut != nil {
			bodyOut.addSucc(head)
		}
		b.popLoop(label)
		return exit

	case *ast.SwitchStmt:
		if x.Init != nil {
			cur.Stmts = append(cur.Stmts, x.Init)
		}
		if x.Tag != nil {
			cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: x.Tag})
		}
		return b.switchClauses(x.Body.List, cur, label)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			cur.Stmts = append(cur.Stmts, x.Init)
		}
		cur.Stmts = append(cur.Stmts, x.Assign)
		return b.switchClauses(x.Body.List, cur, label)

	case *ast.SelectStmt:
		if len(x.Body.List) == 0 {
			// select{} blocks forever. Keep the statement in the block
			// so analyzers (goleak) can see the divergence, and stop
			// control flow: nothing after it executes.
			cur.Stmts = append(cur.Stmts, x)
			return nil
		}
		join := b.newBlock()
		b.breakTo = append(b.breakTo, join)
		if label != "" {
			b.labelBreak[label] = join
		}
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			cur.addSucc(blk)
			if cc.Comm != nil {
				blk.Stmts = append(blk.Stmts, cc.Comm)
			}
			out := b.stmts(cc.Body, blk, "")
			if out != nil {
				out.addSucc(join)
			}
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		return join

	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, x)
		return nil

	case *ast.BranchStmt:
		switch x.Tok {
		case token.BREAK:
			if x.Label != nil {
				cur.addSucc(b.labelBreak[x.Label.Name])
			} else if n := len(b.breakTo); n > 0 {
				cur.addSucc(b.breakTo[n-1])
			}
			return nil
		case token.CONTINUE:
			if x.Label != nil {
				cur.addSucc(b.labelContinue[x.Label.Name])
			} else if n := len(b.continueTo); n > 0 {
				cur.addSucc(b.continueTo[n-1])
			}
			return nil
		case token.GOTO:
			if x.Label != nil {
				if t, ok := b.labelBlocks[x.Label.Name]; ok {
					cur.addSucc(t)
				} else {
					b.pendingGotos[x.Label.Name] = append(b.pendingGotos[x.Label.Name], cur)
				}
			}
			return nil
		case token.FALLTHROUGH:
			// Handled by switchClauses via the fallthrough edge; the
			// statement itself ends the block.
			cur.Stmts = append(cur.Stmts, x)
			return cur
		}
		return cur

	default:
		// Plain statements: expression, assignment, declaration, defer,
		// go, send, incdec, empty.
		cur.Stmts = append(cur.Stmts, s)
		return cur
	}
}

// switchClauses wires the case clauses of a switch/type-switch: each
// clause branches from the head, all clauses join; a missing default
// adds a head->join edge; fallthrough adds clause->next-clause.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, head *Block, label string) *Block {
	join := b.newBlock()
	b.breakTo = append(b.breakTo, join)
	if label != "" {
		b.labelBreak[label] = join
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		head.addSucc(blocks[i])
	}
	hasDefault := false
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			blocks[i].Stmts = append(blocks[i].Stmts, &ast.ExprStmt{X: e})
		}
		out := b.stmts(cc.Body, blocks[i], "")
		if out != nil {
			if fallsThrough(cc.Body) && i+1 < len(blocks) {
				out.addSucc(blocks[i+1])
			} else {
				out.addSucc(join)
			}
		}
	}
	if !hasDefault {
		head.addSucc(join)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	return join
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) pushLoop(brk, cont *Block, label string) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, cont)
	if label != "" {
		b.labelBreak[label] = brk
		b.labelContinue[label] = cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

// ---- fixpoint dataflow engine ----

// factSet is a set of opaque fact names (lock classes, published
// variables, tainted objects).
type factSet map[string]bool

func (s factSet) clone() factSet {
	out := make(factSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s factSet) equal(t factSet) bool {
	if len(s) != len(t) {
		return false
	}
	for k := range s {
		if !t[k] {
			return false
		}
	}
	return true
}

func (s factSet) union(t factSet) factSet {
	out := s.clone()
	for k := range t {
		out[k] = true
	}
	return out
}

// sorted returns the facts in deterministic order (for messages).
func (s factSet) sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FixpointResult carries the computed in-set of every block, indexed
// by Block.Index, plus the number of worklist iterations (exposed so
// the termination test can assert the engine converged).
type FixpointResult struct {
	In         []factSet
	Iterations int
}

// Fixpoint runs a forward may-analysis to a fixpoint: in[entry] =
// entryIn, in[b] = union of out[preds], out[b] = transfer(b, in[b]).
// transfer must be monotone in its input for termination; the engine
// additionally bounds iterations by blocks x (facts+2) as a defense
// against a non-monotone transfer, which is plenty for any monotone
// analysis on this lattice.
func (g *CFG) Fixpoint(entryIn factSet, transfer func(*Block, factSet) factSet) FixpointResult {
	n := len(g.Blocks)
	in := make([]factSet, n)
	out := make([]factSet, n)
	for i := range in {
		in[i] = factSet{}
		out[i] = factSet{}
	}
	if g.Entry != nil {
		in[g.Entry.Index] = entryIn.clone()
	}

	// Pre-compute predecessors.
	preds := make([][]*Block, n)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}

	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	inWork := make([]bool, n)
	for i := range inWork {
		inWork[i] = true
	}
	iterations := 0
	// Fact universe is discovered as the analysis runs; the bound below
	// is recomputed as it grows.
	maxFacts := 0
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		iterations++

		newIn := in[b.Index]
		if b != g.Entry {
			newIn = factSet{}
		} else {
			newIn = entryIn.clone()
		}
		for _, p := range preds[b.Index] {
			newIn = newIn.union(out[p.Index])
		}
		newOut := transfer(b, newIn.clone())
		if len(newOut) > maxFacts {
			maxFacts = len(newOut)
		}
		if iterations > (n+1)*(maxFacts+2)*4 {
			break // defensive bound; a monotone transfer never hits it
		}
		in[b.Index] = newIn
		if newOut.equal(out[b.Index]) {
			continue
		}
		out[b.Index] = newOut
		for _, s := range b.Succs {
			if !inWork[s.Index] {
				inWork[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return FixpointResult{In: in, Iterations: iterations}
}
