#!/usr/bin/env sh
# check.sh — the full CI gate, runnable locally.
#
# Order matters: cheap structural checks first, the custom static
# analysis before the test suite (a lock-discipline violation should
# fail the build even while its race is still too rare for -race to
# catch), and the race detector last because it is the slowest.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt"
fmtout=$(gofmt -l . 2>/dev/null)
if [ -n "$fmtout" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmtout" >&2
    exit 1
fi

echo "==> prima-vet SARIF report (kept as a CI artifact, findings or not)"
# Generated before the gating run so the artifact captures the findings
# that fail the build: exit 1 (findings) is tolerated here — the plain
# run below still fails the gate — but load/usage errors (>= 2) abort.
sarif_status=0
go run ./cmd/prima-vet -sarif ./... > prima-vet.sarif || sarif_status=$?
if [ "$sarif_status" -ge 2 ]; then
    exit "$sarif_status"
fi

echo "==> prima-vet ./... (custom static analysis, all three layers)"
go run ./cmd/prima-vet ./...

echo "==> prima-vet concurrency suite (explicit: atomicsafe,goleak,chanuse)"
go run ./cmd/prima-vet -run atomicsafe,goleak,chanuse ./...

echo "==> lockorder.txt sync check (-write-lockorder must be a no-op)"
go run ./cmd/prima-vet -write-lockorder
if ! git diff --quiet -- cmd/prima-vet/lockorder.txt; then
    echo "cmd/prima-vet/lockorder.txt is out of sync with the observed acquisition graph:" >&2
    git diff -- cmd/prima-vet/lockorder.txt >&2
    git checkout -- cmd/prima-vet/lockorder.txt
    exit 1
fi

echo "==> go test ./..."
go test ./...

echo "==> coverage gate (cmd/prima-vet >= 70%, profiles kept as artifacts)"
go test -coverprofile=coverage-prima-vet.out ./cmd/prima-vet > /dev/null
go test -coverprofile=coverage-policy.out ./internal/policy > /dev/null
go tool cover -func=coverage-prima-vet.out | awk '
    /^total:/ {
        sub(/%/, "", $3)
        printf "prima-vet statement coverage: %s%%\n", $3
        if ($3 + 0 < 70) { print "coverage below the 70% floor" > "/dev/stderr"; exit 1 }
    }'

echo "==> fuzz smoke (~70s: decoders, WAL replay and the wire frame/entry codecs must not panic, symbolic algebra and FP-growth must match their ground oracles)"
go test -fuzz=FuzzDecodePolicy -fuzztime=10s -run=NONE ./internal/policy > /dev/null
go test -fuzz=FuzzDecodeEntry -fuzztime=10s -run=NONE ./internal/audit > /dev/null
go test -fuzz=FuzzSymbolicVsMaterialized -fuzztime=10s -run=NONE ./internal/policy > /dev/null
go test -fuzz=FuzzFPGrowthVsApriori -fuzztime=10s -run=NONE ./internal/mining > /dev/null
go test -fuzz=FuzzWALReplay -fuzztime=10s -run=NONE ./internal/storage > /dev/null
go test -fuzz=FuzzFrameDecode -fuzztime=10s -run=NONE ./internal/netfed > /dev/null
go test -fuzz=FuzzEntryCodec -fuzztime=10s -run=NONE ./internal/netfed > /dev/null

echo "==> go test -race (concurrency suites: audit, consent, core, hdb, lint, minidb, mining, netfed, policy, storage, workflow, server)"
go test -race ./internal/audit/ ./internal/consent/ ./internal/core/ ./internal/hdb/ ./internal/lint/ ./internal/minidb/ ./internal/mining/ ./internal/netfed/ ./internal/policy/ ./internal/storage/ ./internal/workflow/ ./internal/server/

echo "==> benchmark smoke (one iteration per benchmark; -short shrinks the E16 recovery corpus)"
go test -short -bench=. -benchtime=1x -run=NONE . > /dev/null

echo "All checks passed."
