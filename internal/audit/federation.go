package audit

import (
	"fmt"
	"sort"
)

// Federation consolidates several site audit logs into one consistent
// view (paper §4.2: "these logs are either periodically replicated or
// PRIMA-enabled, by the construction of a consistent consolidated view
// of them"). Consolidation merges chronologically, removes duplicate
// replicas of the same event, and reports conflicts — replicas that
// share an identity instant but disagree on the recorded outcome,
// which indicates clock or logging faults at a site.
type Federation struct {
	sources []*Log
}

// NewFederation builds a federation over the given source logs.
func NewFederation(sources ...*Log) *Federation {
	return &Federation{sources: append([]*Log(nil), sources...)}
}

// AddSource registers an additional source log.
func (f *Federation) AddSource(l *Log) { f.sources = append(f.sources, l) }

// Sources returns the number of federated logs.
func (f *Federation) Sources() int { return len(f.sources) }

// Conflict records two same-instant, same-actor, same-object entries
// whose outcomes disagree across sites.
type Conflict struct {
	A, B Entry
}

// String renders the conflict.
func (c Conflict) String() string {
	return fmt.Sprintf("conflict between site %q and site %q: %s vs %s", c.A.Site, c.B.Site, c.A, c.B)
}

// Result is the outcome of a consolidation.
type Result struct {
	Entries    []Entry    // merged, chronological, deduplicated
	Duplicates int        // identical replicas removed
	Conflicts  []Conflict // same event identity, different outcome
}

// Consolidate builds the consolidated view. The merge is a k-way merge
// by timestamp (each source log is sorted first, so out-of-order
// appends at a site are tolerated). Entries that are byte-identical in
// the seven schema columns are treated as replicas of the same event
// and collapsed; entries that agree on (time, user, data, purpose)
// but disagree on op or status are kept and reported as conflicts.
func (f *Federation) Consolidate() Result {
	type cursor struct {
		entries []Entry
		pos     int
	}
	cursors := make([]*cursor, 0, len(f.sources))
	total := 0
	for _, src := range f.sources {
		es := src.Snapshot()
		SortByTime(es)
		total += len(es)
		cursors = append(cursors, &cursor{entries: es})
	}

	var res Result
	res.Entries = make([]Entry, 0, total)
	seen := make(map[string]bool, total)
	// identity without outcome, for conflict detection
	byEvent := make(map[string]Entry, total)

	for {
		best := -1
		for i, c := range cursors {
			if c.pos >= len(c.entries) {
				continue
			}
			if best == -1 || c.entries[c.pos].Time.Before(cursors[best].entries[cursors[best].pos].Time) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		e := cursors[best].entries[cursors[best].pos]
		cursors[best].pos++

		key := e.Key()
		if seen[key] {
			res.Duplicates++
			continue
		}
		seen[key] = true

		evKey := fmt.Sprintf("%d|%s|%s|%s", e.Time.UnixNano(), e.User, e.Data, e.Purpose)
		if prev, ok := byEvent[evKey]; ok && (prev.Op != e.Op || prev.Status != e.Status) {
			res.Conflicts = append(res.Conflicts, Conflict{A: prev, B: e})
		} else {
			byEvent[evKey] = e
		}
		res.Entries = append(res.Entries, e)
	}
	return res
}

// ConsolidateLog consolidates into a fresh Log named site.
func (f *Federation) ConsolidateLog(site string) (*Log, Result) {
	res := f.Consolidate()
	l := NewLog(site)
	// Entries already validated at their sources.
	l.entries = append(l.entries, res.Entries...)
	return l, res
}

// BySite groups entries by their site identifier, sorted site order.
func BySite(entries []Entry) map[string][]Entry {
	out := make(map[string][]Entry)
	for _, e := range entries {
		out[e.Site] = append(out[e.Site], e)
	}
	return out
}

// Sites lists the distinct site identifiers in entries, sorted.
func Sites(entries []Entry) []string {
	set := make(map[string]bool)
	for _, e := range entries {
		set[e.Site] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
