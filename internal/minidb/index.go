package minidb

import (
	"fmt"
	"strings"
)

// hashIndex is an equality index over one column. Indexes are rebuilt
// lazily: mutations bump the table version, and a stale index is
// reconstructed on first use. For the audit-analysis workloads this
// engine serves (append-heavy, scan-heavy), lazy rebuilds beat
// per-row maintenance.
type hashIndex struct {
	col     int
	version uint64
	m       map[string][]int // value key -> row positions
}

// CreateIndexStmt is CREATE INDEX name ON table (col).
type CreateIndexStmt struct {
	Name  string
	Table string
	Col   string
}

func (*CreateIndexStmt) stmt() {}

// CreateIndex registers an equality index on a column. Indexes speed
// up top-level `col = literal` predicates; they are transparent
// otherwise.
func (db *Database) CreateIndex(table, col string) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	idx, err := t.colIndex(col)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := strings.ToLower(col)
	if t.indexes == nil {
		t.indexes = make(map[string]*hashIndex)
	}
	if _, dup := t.indexes[key]; dup {
		return fmt.Errorf("minidb: index on %s(%s) already exists", table, col)
	}
	t.indexes[key] = &hashIndex{col: idx, version: ^uint64(0)} // force build
	return nil
}

// Indexes lists the indexed column names of a table, sorted.
func (t *Table) Indexes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		out = append(out, c)
	}
	sortStrings(out)
	return out
}

// lookupEq returns the rows whose column equals v, using the index if
// one exists; ok=false means no index on that column.
func (t *Table) lookupEq(col string, v Value) ([][]Value, bool) {
	key := strings.ToLower(col)
	// Strip a qualifier ("alias.col") — single-table fast path only.
	if dot := strings.LastIndexByte(key, '.'); dot >= 0 {
		key = key[dot+1:]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ix, ok := t.indexes[key]
	if !ok {
		return nil, false
	}
	if ix.version != t.version {
		ix.m = make(map[string][]int, len(t.rows))
		for i, row := range t.rows {
			k := row[ix.col].key()
			ix.m[k] = append(ix.m[k], i)
		}
		ix.version = t.version
	}
	positions := ix.m[v.key()]
	rows := make([][]Value, len(positions))
	for i, p := range positions {
		rows[i] = t.rows[p]
	}
	return rows, true
}

// indexableEq inspects a WHERE tree for a top-level (AND-connected)
// `col = literal` conjunct and returns it. The full predicate is
// still evaluated afterwards, so using the index is purely a
// row-source optimization.
func indexableEq(e Expr) (col string, val Value, ok bool) {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case "AND":
			if c, v, ok := indexableEq(x.L); ok {
				return c, v, true
			}
			return indexableEq(x.R)
		case "=":
			if ref, rok := x.L.(*ColRef); rok {
				if lit, lok := x.R.(*Literal); lok {
					return ref.Name, lit.Val, true
				}
			}
			if ref, rok := x.R.(*ColRef); rok {
				if lit, lok := x.L.(*Literal); lok {
					return ref.Name, lit.Val, true
				}
			}
		}
	}
	return "", Value{}, false
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
