package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/scenario"
)

// TestAuditRecover builds a durable store with an un-checkpointed WAL
// tail, then drives `audit recover` over it: the command must report
// the tail, checkpoint it, and export the recovered entries.
func TestAuditRecover(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "audit")
	entries := scenario.Table1()

	d, _, err := audit.OpenDurable("s1", store, audit.DurableOptions{CommitInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(entries...); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	export := filepath.Join(dir, "out.jsonl")
	out, err := capture(t, func() error {
		return run([]string{"audit", "recover", "-dir", store, "-site", "s1", "-export", export})
	})
	if err != nil {
		t.Fatalf("audit recover: %v\n%s", err, out)
	}
	for _, want := range []string{
		"WAL tail entries:",
		"checkpointed:",
		"exported",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "entries (") {
		t.Errorf("output missing summary line:\n%s", out)
	}

	// The export round-trips.
	got, err := loadAudit(export)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("exported %d entries, want %d", len(got), len(entries))
	}

	// Second run starts from the checkpoint: no WAL tail left.
	out, err = capture(t, func() error {
		return run([]string{"audit", "recover", "-dir", store, "-site", "s1", "-checkpoint=false"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "WAL tail entries:   0") {
		t.Errorf("second recovery still replays a tail:\n%s", out)
	}

	// Usage errors.
	if _, err := capture(t, func() error { return run([]string{"audit"}) }); err == nil {
		t.Error("bare audit accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"audit", "recover"}) }); err == nil {
		t.Error("audit recover without -dir accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"audit", "rotate"}) }); err == nil {
		t.Error("unknown audit action accepted")
	}
}
