package core_test

import (
	"reflect"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/workflow"
)

// patternKeys flattens a pattern list into a comparable signature
// including order.
func patternKeys(ps []core.Pattern) []string {
	out := make([]string, 0, len(ps))
	for _, p := range ps {
		out = append(out, p.Rule.Key())
	}
	return out
}

// TestStreamSessionMatchesSessionSimulated runs multi-epoch hospital
// traffic through both pipelines over the identical entry stream and
// requires every round to agree — the Fig. 3 "coverage improves per
// epoch" behaviour, byte-identical between paths.
func TestStreamSessionMatchesSessionSimulated(t *testing.T) {
	cfg := workflow.DefaultHospital(11)
	sim, err := workflow.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var epochs [][]audit.Entry
	for e := 0; e < 3; e++ {
		entries, err := sim.Run(e*10, 10)
		if err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, entries)
	}

	psSeq := cfg.Policy.Clone()
	psStream := cfg.Policy.Clone()
	v := cfg.Vocab

	l := audit.NewLog("sim")
	seq := core.NewSession(psSeq, v, core.Options{})
	stream := core.NewStreamSession(l, psStream, v, core.Options{})

	var cumulative []audit.Entry
	for e, entries := range epochs {
		cumulative = append(cumulative, entries...)
		if err := l.Append(entries...); err != nil {
			t.Fatal(err)
		}
		seqRound, err := seq.Run(cumulative, core.AdoptAll)
		if err != nil {
			t.Fatal(err)
		}
		streamRound, err := stream.Run(core.AdoptAll)
		if err != nil {
			t.Fatal(err)
		}
		if streamRound.CoverageBefore != seqRound.CoverageBefore ||
			streamRound.CoverageAfter != seqRound.CoverageAfter ||
			streamRound.Entries != seqRound.Entries ||
			streamRound.Practice != seqRound.Practice {
			t.Fatalf("epoch %d diverges: stream %+v, seq %+v", e, streamRound, seqRound)
		}
		if !reflect.DeepEqual(patternKeys(streamRound.Patterns), patternKeys(seqRound.Patterns)) {
			t.Fatalf("epoch %d patterns diverge", e)
		}
	}
	if psStream.Len() != psSeq.Len() {
		t.Fatalf("final policies diverge: %d vs %d rules", psStream.Len(), psSeq.Len())
	}
	for _, r := range psSeq.Rules() {
		if !psStream.Contains(r) {
			t.Fatalf("stream policy missing %s", r.Compact())
		}
	}
}
