package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/audit"
)

// cmdAudit administers durable audit stores. `audit recover -dir D`
// opens the store, replays the WAL tail on top of the JSONL
// checkpoint (rebuilding the refinement index), prints what recovery
// found, and leaves the store checkpointed — a crashed site can be
// inspected and repaired offline before the service restarts.
func cmdAudit(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("audit requires an action: recover")
	}
	switch args[0] {
	case "recover":
		return cmdAuditRecover(args[1:])
	default:
		return fmt.Errorf("unknown audit action %q (want: recover)", args[0])
	}
}

func cmdAuditRecover(args []string) error {
	fs := flag.NewFlagSet("audit recover", flag.ContinueOnError)
	dir := fs.String("dir", "", "durable audit store directory (required)")
	site := fs.String("site", "", "site name for the recovered log")
	checkpoint := fs.Bool("checkpoint", true, "checkpoint after recovery (fold the WAL tail into log.jsonl)")
	export := fs.String("export", "", "also write the recovered entries to this JSONL file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("audit recover requires -dir")
	}
	d, rs, err := audit.OpenDurable(*site, *dir, audit.DurableOptions{})
	if err != nil {
		return fmt.Errorf("recover %s: %w", *dir, err)
	}
	defer d.Close()

	fmt.Printf("recovered %s\n", *dir)
	fmt.Printf("  checkpoint entries: %d\n", rs.CheckpointEntries)
	fmt.Printf("  WAL tail entries:   %d (%d segment(s))\n", rs.WALEntries, rs.WALSegments)
	if rs.TornTail {
		fmt.Println("  torn WAL tail:      truncated (crash mid-flush)")
	}
	if rs.TruncatedLine {
		fmt.Println("  torn JSONL line:    dropped (bootstrap from sink file)")
	}
	if rs.CompactionResumed {
		fmt.Println("  compaction:         finished (crash interrupted a retention rewrite)")
	}
	if rs.Dropped > 0 {
		fmt.Printf("  dropped entries:    %d (sink backpressure before shutdown)\n", rs.Dropped)
	}
	fmt.Printf("  index groups:       %d\n", rs.IndexGroups)
	fmt.Printf("  elapsed:            %s\n", rs.Elapsed.Round(time.Microsecond))

	st := d.Log().Summary()
	fmt.Printf("log %q: %d entries (%d allowed, %d denied, %d exception)\n",
		d.Log().Site(), st.Total, st.Allowed, st.Denied, st.Exceptions)
	if st.Total > 0 {
		fmt.Printf("  span: %s .. %s\n", st.First.Format("2006-01-02 15:04:05"), st.Last.Format("2006-01-02 15:04:05"))
	}

	if *checkpoint {
		if err := d.Checkpoint(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		fmt.Printf("checkpointed: %d entries durable in log.jsonl\n", d.Log().Len())
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			return err
		}
		if err := audit.WriteJSONL(f, d.Log().Snapshot()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("exported %d entries to %s\n", d.Log().Len(), *export)
	}
	return nil
}
