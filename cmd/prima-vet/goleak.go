package main

import (
	"fmt"
	"go/ast"
	"go/token"
)

// goleak enforces the goroutine-lifecycle discipline the streaming
// audit pipeline and the mining/coverage worker pools rely on: every
// spawned goroutine must have a reachable termination path — a return
// reachable from every point of its body. Bounded loops, range loops
// (terminated by channel close or slice exhaustion), and
// context/done-channel select cases all qualify; a `for {}` spin, a
// body ending in `select {}`, or a loop whose only exits call
// known-divergent helpers do not.
//
// The check is interprocedural: a per-function divergence summary
// ("calling this function never returns") is computed to a fixpoint
// over the call graph, so a pool helper that wraps its worker loop in
// a named function is still checked at the `go` spawn site.
// Recursion is resolved optimistically (a recursive function is not
// assumed divergent unless some non-recursive path diverges), and
// calls the graph cannot resolve — standard library, function values
// — are assumed to return.
var goleakAnalyzer = &Analyzer{
	Name:       "goleak",
	Doc:        "every spawned goroutine needs a reachable termination path",
	RunProgram: runGoleak,
}

func runGoleak(prog *Program) []Finding {
	diverge := divergeSummaries(prog)
	var out []Finding
	for _, n := range prog.CG.Nodes() {
		n := n
		ownBody(n, func(m ast.Node) bool {
			gs, ok := m.(*ast.GoStmt)
			if !ok {
				return true
			}
			for _, target := range spawnTargets(prog, n, gs) {
				flow := flowOf(prog, target, diverge)
				if !flow.leaks {
					continue
				}
				out = append(out, Finding{
					Pos:      n.Pkg.Fset.Position(gs.Pos()),
					Analyzer: "goleak",
					Message: fmt.Sprintf("goroutine %s has no reachable termination path from %s (add a done/context case or bound the loop)",
						target.Name(), flow.leakAt(target)),
				})
			}
			return true
		})
	}
	return out
}

// spawnTargets resolves the function a go statement starts: the
// literal node for `go func(){...}()`, the call-graph callees for
// `go f(...)` / `go x.m(...)`. Unresolvable spawns (function values,
// standard library) yield nothing and are not checked.
func spawnTargets(prog *Program, n *CGNode, gs *ast.GoStmt) []*CGNode {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if ln := prog.CG.LitNode(lit); ln != nil {
			return []*CGNode{ln}
		}
		return nil
	}
	return calleesAt(n, gs.Call)
}

// divergeSummaries computes, to a fixpoint over the call graph, which
// functions can never return: their entry cannot reach a terminating
// exit block. Monotone — a function marked divergent stays divergent,
// and each new mark can only cut more blocks in its callers.
func divergeSummaries(prog *Program) map[*CGNode]bool {
	diverge := make(map[*CGNode]bool)
	for changed := true; changed; {
		changed = false
		for _, n := range prog.CG.Nodes() {
			if diverge[n] {
				continue
			}
			if flowOf(prog, n, diverge).diverges {
				diverge[n] = true
				changed = true
			}
		}
	}
	return diverge
}

// goFlow is the reachability verdict over one function body given the
// current divergence summaries.
type goFlow struct {
	diverges bool      // entry cannot reach a terminating exit
	leaks    bool      // some reachable block cannot reach a terminating exit
	leakPos  token.Pos // evidence: first statement of such a block
}

// leakAt renders the leak evidence position, falling back to the
// function name when the offending block has no statements.
func (f goFlow) leakAt(n *CGNode) string {
	if !f.leakPos.IsValid() {
		return "its body"
	}
	p := n.Pkg.Fset.Position(f.leakPos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// flowOf classifies n's blocks: a block is cut when control cannot
// pass beyond it (it contains select{} or a call whose every resolved
// callee diverges); an exit is an uncut block with no successors
// (return, or falling off the end). diverges when entry cannot reach
// an exit; leaks when any entry-reachable block cannot.
func flowOf(prog *Program, n *CGNode, diverge map[*CGNode]bool) goFlow {
	cfg := prog.SSA(n).CFG
	nb := len(cfg.Blocks)
	sites := make(map[*ast.CallExpr][]*CGNode)
	for _, site := range n.Calls {
		if site.Call != nil {
			sites[site.Call] = append(sites[site.Call], site.Callees...)
		}
	}

	cut := make([]bool, nb)
	for _, b := range cfg.Blocks {
		cut[b.Index] = blockDiverges(n, b, sites, diverge)
	}

	// Forward: entry-reachable, never expanding past a cut block.
	reach := make([]bool, nb)
	if cfg.Entry != nil {
		stack := []*Block{cfg.Entry}
		reach[cfg.Entry.Index] = true
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cut[b.Index] {
				continue
			}
			for _, s := range b.Succs {
				if !reach[s.Index] {
					reach[s.Index] = true
					stack = append(stack, s)
				}
			}
		}
	}

	// Backward: can-reach-exit over reversed edges; cut blocks never
	// reach anything (control stops inside them).
	preds := make([][]*Block, nb)
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	canExit := make([]bool, nb)
	var stack []*Block
	for _, b := range cfg.Blocks {
		if len(b.Succs) == 0 && !cut[b.Index] {
			canExit[b.Index] = true
			stack = append(stack, b)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[b.Index] {
			if !canExit[p.Index] && !cut[p.Index] {
				canExit[p.Index] = true
				stack = append(stack, p)
			}
		}
	}

	var out goFlow
	out.diverges = cfg.Entry == nil || !canExit[cfg.Entry.Index]
	for _, b := range cfg.Blocks {
		if reach[b.Index] && !canExit[b.Index] {
			out.leaks = true
			if len(b.Stmts) > 0 {
				out.leakPos = b.Stmts[0].Pos()
			}
			break
		}
	}
	return out
}

// blockDiverges reports whether control cannot pass beyond this block:
// it contains `select {}` or a call every resolved callee of which
// diverges. Calls under go (spawning never blocks the spawner) and
// defer (runs at exit), and nested function literals, do not count.
func blockDiverges(n *CGNode, b *Block, sites map[*ast.CallExpr][]*CGNode, diverge map[*CGNode]bool) bool {
	divergent := false
	for _, s := range b.Stmts {
		ast.Inspect(s, func(m ast.Node) bool {
			if divergent {
				return false
			}
			switch x := m.(type) {
			case *ast.FuncLit:
				if x != n.Lit {
					return false
				}
			case *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.SelectStmt:
				if len(x.Body.List) == 0 {
					divergent = true
					return false
				}
			case *ast.CallExpr:
				callees := sites[x]
				if len(callees) == 0 {
					return true
				}
				all := true
				for _, c := range callees {
					if !diverge[c] {
						all = false
						break
					}
				}
				if all {
					divergent = true
					return false
				}
			}
			return true
		})
		if divergent {
			return true
		}
	}
	return false
}
