package netfed

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
)

// Streamer is the site side of the wire federation: it tails a live
// audit.Log through the seq-contiguous export cursor and ships delta
// batches to a consolidator, pipelining up to a window of unacked
// batches (backpressure: when the window is full the streamer blocks
// until the consolidator acks), group-flushing framed writes through
// one buffered writer, and resuming from the server's acknowledged
// sequence after a reconnect — no duplicate, no gap.
type Streamer struct {
	log  *audit.Log
	site string
	opts StreamerOptions

	acked atomic.Uint64 // highest seq acked by the server

	// Cumulative transport counters (atomics: read by Stats while the
	// run loop writes).
	sentBatches  atomic.Uint64
	sentBytes    atomic.Uint64
	reconnects   atomic.Uint64
	retransmits  atomic.Uint64
	ackWake      chan struct{} // cap 1: coalesced window-space wakeup
	mu           sync.Mutex    // guards inflight + lag below
	inflight     []sentBatch   // FIFO, oldest first
	lag          []time.Duration
	lagNext      int
	lagFull      bool
	cursor       audit.ExportCursor
	sessionErrMu sync.Mutex
	sessionErr   error // terminal error latched by the ack reader
}

// sentBatch is one unacked batch: its seq range, the encoded frame
// (kept verbatim for retransmission after a reconnect) and the send
// time (the consolidation-lag sample taken when the ack arrives).
type sentBatch struct {
	base, last uint64
	frame      []byte
	sentAt     time.Time
}

// StreamerOptions tunes a Streamer. The zero value of each field
// selects the default noted.
type StreamerOptions struct {
	// Dial opens a connection to the consolidator. Required — tests
	// inject failing/budgeted connections here; production passes a
	// net.Dialer closure.
	Dial func() (net.Conn, error)
	// BatchEntries caps entries per batch. Default 4096.
	BatchEntries int
	// Window caps unacked batches in flight; the server's hello ack
	// may lower it. Default 8.
	Window int
	// Poll is the idle wait between log checks when no new entries
	// are available. Default 1ms.
	Poll time.Duration
	// ReconnectWait is the base backoff after a failed connection;
	// it doubles per consecutive failure, capped at 1s. Default 50ms.
	ReconnectWait time.Duration
	// LagSamples is the ring capacity for consolidation-lag samples
	// (one per acked batch). Default 4096.
	LagSamples int
	// OnError observes transport faults the streamer recovers from
	// (disconnects, refused dials). May be nil. Terminal faults are
	// returned by Run instead.
	OnError func(error)
}

func (o StreamerOptions) withDefaults() StreamerOptions {
	if o.BatchEntries <= 0 {
		o.BatchEntries = 4096
	}
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.Poll <= 0 {
		o.Poll = time.Millisecond
	}
	if o.ReconnectWait <= 0 {
		o.ReconnectWait = 50 * time.Millisecond
	}
	if o.LagSamples <= 0 {
		o.LagSamples = 4096
	}
	return o
}

// ErrResumeGap is terminal: after a reconnect the server's resume
// point is older than anything the streamer can replay (the server
// lost state, e.g. restarted empty, while the site's export cursor
// had moved on). The operator restarts the streamer from a fresh
// cursor to re-ship the log.
var ErrResumeGap = errors.New("netfed: server resume point predates replayable window")

// NewStreamer builds a streamer for the log. site names the stream to
// the consolidator; it defaults to the log's own site name.
func NewStreamer(l *audit.Log, site string, opts StreamerOptions) (*Streamer, error) {
	opts = opts.withDefaults()
	if opts.Dial == nil {
		return nil, errors.New("netfed: StreamerOptions.Dial is required")
	}
	if site == "" {
		site = l.Site()
	}
	if site == "" {
		return nil, errors.New("netfed: streamer needs a site name")
	}
	return &Streamer{
		log:     l,
		site:    site,
		opts:    opts,
		ackWake: make(chan struct{}, 1),
		lag:     make([]time.Duration, opts.LagSamples),
	}, nil
}

// Acked returns the highest sequence number the consolidator has
// acknowledged folding.
func (s *Streamer) Acked() uint64 { return s.acked.Load() }

// Run streams until ctx is cancelled (returns nil) or a terminal
// protocol fault occurs (returns it). Transport faults — broken
// connections, refused dials — are reported through OnError and
// retried with backoff; after every reconnect the stream resumes from
// the server's acknowledged sequence.
func (s *Streamer) Run(ctx context.Context) error {
	wait := s.opts.ReconnectWait
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return nil
		}
		if attempt > 0 {
			s.reconnects.Add(1)
			if !sleepCtx(ctx, wait) {
				return nil
			}
			if wait *= 2; wait > time.Second {
				wait = time.Second
			}
		}
		conn, err := s.opts.Dial()
		if err != nil {
			s.report(fmt.Errorf("netfed: dial: %w", err))
			continue
		}
		err = s.session(ctx, conn)
		conn.Close()
		if ctx.Err() != nil {
			return nil
		}
		if err != nil {
			var pe *protocolError
			if errors.Is(err, ErrResumeGap) || errors.Is(err, audit.ErrExportInvalidated) || errors.As(err, &pe) {
				return err // terminal: retrying cannot help
			}
			s.report(err)
			continue
		}
		wait = s.opts.ReconnectWait
	}
}

// session drives one connection: handshake, retransmit, then the
// export-encode-send loop until the connection breaks or ctx ends.
func (s *Streamer) session(ctx context.Context, conn net.Conn) error {
	// Unblock conn reads/writes when ctx ends: closing the conn is the
	// only portable cancel for net I/O.
	watch := make(chan struct{})
	defer close(watch)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watch:
		}
	}()

	bw := bufio.NewWriterSize(conn, 256<<10)
	fr := NewFrameReader(conn)

	// Handshake, synchronous: hello out, hello ack in.
	hb := AppendFrame(nil, MsgHello, appendHello(nil, hello{version: ProtocolVersion, site: s.site}))
	if _, err := conn.Write(hb); err != nil {
		return fmt.Errorf("netfed: hello: %w", err)
	}
	typ, payload, err := fr.Next()
	if err != nil {
		return fmt.Errorf("netfed: hello ack: %w", err)
	}
	if typ == MsgError {
		return parseErrorMsg(payload)
	}
	if typ != MsgHelloAck {
		return fmt.Errorf("netfed: unexpected handshake message type %d", typ)
	}
	ack, err := parseHelloAck(payload)
	if err != nil {
		return err
	}
	if ack.version != ProtocolVersion {
		return &protocolError{msg: fmt.Sprintf("protocol version %d, want %d", ack.version, ProtocolVersion)}
	}
	window := s.opts.Window
	if ack.window > 0 && int(ack.window) < window {
		window = int(ack.window)
	}
	if err := s.resumeFrom(ack.resume, bw); err != nil {
		return err
	}

	// Ack reader: owns the conn's read side for the session, releases
	// window space and records lag. Terminates when the conn breaks
	// (incl. the ctx watchdog closing it).
	errCh := make(chan error, 1)
	go func() {
		for {
			typ, payload, err := fr.Next()
			if err != nil {
				errCh <- err
				return
			}
			switch typ {
			case MsgAck:
				seq, perr := parseAck(payload)
				if perr != nil {
					errCh <- perr
					return
				}
				s.onAck(seq)
			case MsgError:
				errCh <- parseErrorMsg(payload)
				return
			default:
				errCh <- fmt.Errorf("netfed: unexpected message type %d from server", typ)
				return
			}
		}
	}()

	idle := time.NewTimer(s.opts.Poll)
	defer idle.Stop()
	enc := NewEncoder()
	var payloadBuf []byte
	for {
		if err := ctx.Err(); err != nil {
			bw.Flush()
			return nil
		}
		if s.inflightLen() >= window {
			// Backpressure: the window is full. Group-flush what is
			// buffered and wait for ack space.
			if err := bw.Flush(); err != nil {
				return err
			}
			select {
			case <-s.ackWake:
			case err := <-errCh:
				return s.sessionFault(err)
			case <-ctx.Done():
				return nil
			}
			continue
		}
		entries, next, err := s.log.ExportDelta(s.cursor, s.opts.BatchEntries)
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			// Idle: everything exported. Flush the write buffer so the
			// tail reaches the consolidator, then wait for new appends.
			if err := bw.Flush(); err != nil {
				return err
			}
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(s.opts.Poll)
			select {
			case <-idle.C:
			case err := <-errCh:
				return s.sessionFault(err)
			case <-ctx.Done():
				return nil
			}
			continue
		}
		base := s.cursor.Seq() + 1
		payloadBuf = enc.AppendBatch(payloadBuf[:0], base, entries)
		frame := AppendFrame(getBuf(), MsgBatch, payloadBuf)
		s.cursor = next
		s.trackSent(sentBatch{base: base, last: next.Seq(), frame: frame, sentAt: time.Now()})
		if _, err := bw.Write(frame); err != nil {
			return err
		}
		s.sentBatches.Add(1)
		s.sentBytes.Add(uint64(len(frame)))
	}
}

// sessionFault folds an ack-reader error into the session result: a
// latched terminal error wins over the transport-level symptom.
func (s *Streamer) sessionFault(err error) error {
	var pe *protocolError
	if errors.As(err, &pe) {
		return err
	}
	return fmt.Errorf("netfed: connection lost: %w", err)
}

// resumeFrom reconciles with the server's resume point: inflight
// batches at or below it are acked (the server already has them),
// later ones are retransmitted through bw in order. The cursor never
// moves backward, so a resume point older than the replayable window
// (inflight + cursor) is terminal.
func (s *Streamer) resumeFrom(resume uint64, bw *bufio.Writer) error {
	s.mu.Lock()
	kept := s.inflight[:0]
	for _, b := range s.inflight {
		if b.last <= resume {
			putBuf(b.frame)
			continue
		}
		kept = append(kept, b)
	}
	s.inflight = kept
	// Contiguity: the replay must start exactly at resume+1.
	replayFrom := s.cursor.Seq()
	if len(kept) > 0 {
		replayFrom = kept[0].base - 1
	}
	retransmit := make([][]byte, 0, len(kept))
	for i := range kept {
		retransmit = append(retransmit, kept[i].frame)
		kept[i].sentAt = time.Now()
	}
	s.mu.Unlock()
	if replayFrom != resume {
		return fmt.Errorf("%w: server at %d, replayable from %d", ErrResumeGap, resume, replayFrom)
	}
	if s.acked.Load() < resume {
		s.acked.Store(resume)
	}
	for _, f := range retransmit {
		if _, err := bw.Write(f); err != nil {
			return err
		}
		s.retransmits.Add(1)
	}
	return nil
}

// trackSent records an unacked batch.
func (s *Streamer) trackSent(b sentBatch) {
	s.mu.Lock()
	s.inflight = append(s.inflight, b)
	s.mu.Unlock()
}

// inflightLen returns the unacked batch count.
func (s *Streamer) inflightLen() int {
	s.mu.Lock()
	n := len(s.inflight)
	s.mu.Unlock()
	return n
}

// onAck releases every inflight batch covered by seq, records their
// ack round-trip as consolidation-lag samples, and wakes the writer.
func (s *Streamer) onAck(seq uint64) {
	now := time.Now()
	s.mu.Lock()
	n := 0
	for n < len(s.inflight) && s.inflight[n].last <= seq {
		s.lag[s.lagNext] = now.Sub(s.inflight[n].sentAt)
		if s.lagNext++; s.lagNext == len(s.lag) {
			s.lagNext = 0
			s.lagFull = true
		}
		putBuf(s.inflight[n].frame)
		n++
	}
	if n > 0 {
		s.inflight = append(s.inflight[:0], s.inflight[n:]...)
	}
	s.mu.Unlock()
	if prev := s.acked.Load(); seq > prev {
		s.acked.Store(seq)
	}
	select {
	case s.ackWake <- struct{}{}:
	default:
	}
}

// report surfaces a recoverable fault.
func (s *Streamer) report(err error) {
	if s.opts.OnError != nil {
		s.opts.OnError(err)
	}
}

// Drain blocks until every entry appended to the log before the call
// has been acknowledged by the consolidator, or ctx ends.
func (s *Streamer) Drain(ctx context.Context) error {
	target := s.log.Seq()
	for s.acked.Load() < target {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !sleepCtx(ctx, 200*time.Microsecond) {
			return ctx.Err()
		}
	}
	return nil
}

// StreamerStats is a point-in-time transport summary.
type StreamerStats struct {
	Acked       uint64 // highest consolidator-acknowledged seq
	Batches     uint64 // batches sent (incl. retransmits)
	Bytes       uint64 // frame bytes sent
	Reconnects  uint64 // sessions re-established after a fault
	Retransmits uint64 // batches re-sent on resume
	LagP50      time.Duration
	LagP99      time.Duration
	LagSamples  int
}

// Stats snapshots the transport counters and consolidation-lag
// percentiles (ack round-trip per batch: encode, wire, fold, ack).
func (s *Streamer) Stats() StreamerStats {
	st := StreamerStats{
		Acked:       s.acked.Load(),
		Batches:     s.sentBatches.Load(),
		Bytes:       s.sentBytes.Load(),
		Reconnects:  s.reconnects.Load(),
		Retransmits: s.retransmits.Load(),
	}
	s.mu.Lock()
	n := s.lagNext
	if s.lagFull {
		n = len(s.lag)
	}
	samples := append([]time.Duration(nil), s.lag[:n]...)
	s.mu.Unlock()
	st.LagSamples = len(samples)
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		st.LagP50 = samples[len(samples)/2]
		st.LagP99 = samples[len(samples)*99/100]
	}
	return st
}

// sleepCtx sleeps d unless ctx ends first; reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
