// Package netfed is the networked Audit Management tier (paper §4.2):
// N hospital sites stream audit-log deltas over a binary wire protocol
// to a consolidator that folds them into a federated store and runs
// federation, refinement, and cross-site suspicion review continuously
// — the role DB2 Information Integrator plays in the paper's first
// instantiation, over a real network instead of an in-process merge.
//
// The wire format is built for the hot path: length-prefixed frames
// with varint headers and a CRC32-C trailer, a dictionary-compressed
// binary codec for audit.Entry batches (no JSON anywhere on the data
// path), pipelined seq-ranged batches with windowed acks for
// backpressure, and resume-from-seq after reconnect. The in-process
// audit.Federation stays the differential oracle: a consolidator fed
// over the wire must reproduce Federation.Consolidate byte for byte.
package netfed

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
)

// Message types. A frame carries exactly one message.
const (
	// MsgHello opens a session (client -> server): protocol version
	// and site name.
	MsgHello byte = 1
	// MsgHelloAck answers a hello (server -> client): protocol
	// version, resume sequence (highest contiguous sequence number the
	// server already holds for the site) and the ack window (maximum
	// unacknowledged batches the client may pipeline).
	MsgHelloAck byte = 2
	// MsgBatch carries one seq-ranged delta batch of audit entries
	// (client -> server), encoded by the batch codec in codec.go.
	MsgBatch byte = 3
	// MsgAck acknowledges folded batches (server -> client): the
	// highest contiguous sequence number folded into the store. Acks
	// are coalesced — one ack may cover several batches.
	MsgAck byte = 4
	// MsgError reports a protocol fault (either direction); the sender
	// closes the connection after it.
	MsgError byte = 5
)

// MaxFrame bounds the encoded size of one frame's body (type byte +
// payload). Frames above it are rejected before any allocation, so a
// hostile length prefix cannot balloon memory.
const MaxFrame = 16 << 20

// frameOverhead is the fixed trailer: the CRC32-C of body.
const frameOverhead = 4

// crcTable is the Castagnoli table shared by encode and decode;
// crc32.Checksum with a precomputed table is hardware-accelerated on
// amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame decode errors. Decoders return errors, never panic, on torn
// or hostile input — the fuzzers in fuzz_test.go pin that contract.
var (
	ErrFrameTooLarge = errors.New("netfed: frame exceeds MaxFrame")
	ErrFrameCorrupt  = errors.New("netfed: frame CRC mismatch")
	errShortFrame    = errors.New("netfed: short frame")
)

// AppendFrame appends one framed message to dst and returns the
// extended slice: uvarint body length, then the body (type byte +
// payload), then the CRC32-C of the body.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	body := 1 + len(payload)
	dst = binary.AppendUvarint(dst, uint64(body))
	start := len(dst)
	dst = append(dst, typ)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeFrame decodes one frame from the front of b. It returns the
// message type, the payload (aliasing b — zero copy), and the number
// of bytes consumed. err is io.ErrUnexpectedEOF when b holds only a
// frame prefix (read more and retry), or a terminal error for frames
// that can never become valid.
func DecodeFrame(b []byte) (typ byte, payload []byte, n int, err error) {
	body, hdr := binary.Uvarint(b)
	if hdr == 0 {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	if hdr < 0 || body > MaxFrame {
		return 0, nil, 0, ErrFrameTooLarge
	}
	if body < 1 {
		return 0, nil, 0, errShortFrame
	}
	total := hdr + int(body) + frameOverhead
	if len(b) < total {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	bodyBytes := b[hdr : hdr+int(body)]
	want := binary.LittleEndian.Uint32(b[hdr+int(body):])
	if crc32.Checksum(bodyBytes, crcTable) != want {
		return 0, nil, 0, ErrFrameCorrupt
	}
	return bodyBytes[0], bodyBytes[1:], total, nil
}

// FrameReader incrementally decodes frames from an io.Reader with one
// internal buffer: payloads returned by Next alias the buffer and are
// valid only until the following Next call (zero-copy decoding — the
// batch codec reads straight out of the read buffer).
type FrameReader struct {
	r   io.Reader
	buf []byte
	pos int // consumed prefix of buf
	end int // filled prefix of buf
}

// NewFrameReader wraps r. The initial buffer grows on demand and is
// reused across frames.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: make([]byte, 64<<10)}
}

// Next reads and verifies the next frame. On clean end-of-stream
// (between frames) it returns io.EOF; a stream torn inside a frame
// returns io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (typ byte, payload []byte, err error) {
	for {
		typ, payload, n, derr := DecodeFrame(fr.buf[fr.pos:fr.end])
		if derr == nil {
			fr.pos += n
			return typ, payload, nil
		}
		if derr != io.ErrUnexpectedEOF {
			return 0, nil, derr
		}
		if err := fr.fill(); err != nil {
			return 0, nil, err
		}
	}
}

// fill reads more bytes, compacting or growing the buffer as needed.
func (fr *FrameReader) fill() error {
	if fr.pos > 0 {
		// Compact: move the unconsumed tail to the front so the buffer
		// is reused instead of regrown.
		copy(fr.buf, fr.buf[fr.pos:fr.end])
		fr.end -= fr.pos
		fr.pos = 0
	}
	if fr.end == len(fr.buf) {
		grown := make([]byte, 2*len(fr.buf))
		copy(grown, fr.buf[:fr.end])
		fr.buf = grown
	}
	n, err := fr.r.Read(fr.buf[fr.end:])
	fr.end += n
	if n > 0 {
		return nil
	}
	if err == nil {
		return nil
	}
	if err == io.EOF && fr.end > fr.pos {
		return io.ErrUnexpectedEOF
	}
	return err
}
