package treerec

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/hdb"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// Enforcer is the tree-shaped counterpart of HDB Active Enforcement +
// Compliance Auditing: requests for hierarchical records are answered
// with policy-redacted copies, every touched data category is
// audited, and the break-the-glass path returns the full record with
// an exception-status audit trail. Because it emits the same audit
// schema, the standard refinement loop (Algorithms 2–6) runs
// unchanged over legacy tree-based systems — the adaptation the
// paper's conclusion calls for.
type Enforcer struct {
	v       *vocab.Vocabulary
	ps      *policy.Policy
	mapping *Mapping
	log     *audit.Log
	clock   func() time.Time
}

// NewEnforcer builds a tree-record enforcer. log may be nil.
func NewEnforcer(v *vocab.Vocabulary, ps *policy.Policy, m *Mapping, log *audit.Log) *Enforcer {
	return &Enforcer{v: v, ps: ps, mapping: m, log: log, clock: time.Now}
}

// SetClock overrides the audit timestamp source.
func (e *Enforcer) SetClock(clock func() time.Time) { e.clock = clock }

// Fetch returns the record redacted for (principal, purpose): every
// subtree whose category the policy denies is pruned, and each
// category that remains visible is audited as a regular access. When
// nothing at all is visible, Fetch fails with hdb.ErrDenied so the
// caller can fall back to BreakGlass.
func (e *Enforcer) Fetch(p hdb.Principal, purpose string, rec *Node) (Redaction, error) {
	if err := p.Validate(); err != nil {
		return Redaction{}, err
	}
	if strings.TrimSpace(purpose) == "" {
		return Redaction{}, fmt.Errorf("treerec: a purpose is required")
	}
	rg, err := policy.NewRange(e.ps, e.v, 0)
	if err != nil {
		return Redaction{}, err
	}
	red := e.mapping.Redact(rec, func(category string) bool {
		return e.allowed(rg, category, purpose, p.Role)
	})
	if len(red.Kept) == 0 && len(e.mapping.Classify(rec)) > 0 {
		if err := e.auditCats(p, purpose, "", e.mapping.Classify(rec), audit.Deny, audit.Regular); err != nil {
			return Redaction{}, err
		}
		return red, fmt.Errorf("%w: no visible categories in record for %s by %s",
			hdb.ErrDenied, purpose, p.Role)
	}
	if err := e.auditCats(p, purpose, "", red.Kept, audit.Allow, audit.Regular); err != nil {
		return Redaction{}, err
	}
	return red, nil
}

// BreakGlass returns the full record, auditing every contained
// category as exception-based access with the mandatory reason.
func (e *Enforcer) BreakGlass(p hdb.Principal, purpose, reason string, rec *Node) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if strings.TrimSpace(purpose) == "" {
		return nil, fmt.Errorf("treerec: a purpose is required")
	}
	if strings.TrimSpace(reason) == "" {
		return nil, fmt.Errorf("treerec: break-glass access requires a reason")
	}
	cats := e.mapping.Classify(rec)
	if err := e.auditCats(p, purpose, reason, cats, audit.Allow, audit.Exception); err != nil {
		return nil, err
	}
	return rec.Clone(), nil
}

func (e *Enforcer) allowed(rg *policy.Range, category, purpose, role string) bool {
	rule := policy.MustRule(
		policy.T("data", category),
		policy.T("purpose", purpose),
		policy.T("authorized", role),
	)
	grounds, truncated := rule.Groundings(e.v, policy.DefaultRangeLimit)
	if truncated {
		return false
	}
	for _, g := range grounds {
		if !rg.Contains(g) {
			return false
		}
	}
	return true
}

// auditCats appends one entry per category and fails on the first
// append error: an access that cannot be audited must not proceed.
func (e *Enforcer) auditCats(p hdb.Principal, purpose, reason string, cats []string, op audit.Op, st audit.Status) error {
	if e.log == nil {
		return nil
	}
	now := e.clock()
	for _, cat := range cats {
		err := e.log.Append(audit.Entry{
			Time:       now,
			Op:         op,
			User:       p.User,
			Data:       cat,
			Purpose:    purpose,
			Authorized: p.Role,
			Status:     st,
			Reason:     reason,
		})
		if err != nil {
			return fmt.Errorf("treerec: audit append: %w", err)
		}
	}
	return nil
}
