// Package mining implements frequent-itemset and association-rule
// mining with the Apriori algorithm of Agrawal & Srikant (VLDB 1994),
// the paper's reference [18]. PRIMA's §5 proposes it as the
// data-analysis upgrade that detects correlations between attribute
// pairs "that are not discovered by simple SQL queries": the exact
// GROUP BY of Algorithm 5 only finds full-width rules, while Apriori
// also surfaces frequent sub-rules (e.g. every purpose under which a
// role touches one data category).
package mining

import (
	"fmt"
	"sort"
	"strings"
)

// Item is one attribute=value element of a transaction.
type Item struct {
	Attr  string
	Value string
}

// String renders the item.
func (it Item) String() string { return it.Attr + "=" + it.Value }

func (it Item) key() string {
	return strings.ToLower(it.Attr) + "=" + strings.ToLower(it.Value)
}

// Itemset is a set of items, kept sorted by key.
type Itemset []Item

// NewItemset builds a normalized itemset (sorted, deduplicated).
func NewItemset(items ...Item) Itemset {
	set := make(map[string]Item, len(items))
	for _, it := range items {
		set[it.key()] = it
	}
	out := make(Itemset, 0, len(set))
	for _, it := range set {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// Key returns the canonical identity of the itemset.
func (s Itemset) Key() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = it.key()
	}
	return strings.Join(parts, "&")
}

// String renders the itemset.
func (s Itemset) String() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = it.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Contains reports whether s contains every item of sub.
func (s Itemset) Contains(sub Itemset) bool {
	i := 0
	for _, it := range sub {
		for i < len(s) && s[i].key() < it.key() {
			i++
		}
		if i >= len(s) || s[i].key() != it.key() {
			return false
		}
	}
	return true
}

// Transaction is one basket of items (one audit row in PRIMA's use).
type Transaction = Itemset

// Frequent is an itemset with its absolute support count.
type Frequent struct {
	Items   Itemset
	Support int
}

// Result holds the mining output, grouped by itemset size.
type Result struct {
	Transactions int
	MinSupport   int
	Frequent     []Frequent // all frequent itemsets, size-then-key order
}

// Lookup returns the support of the given itemset, 0 if infrequent.
func (r *Result) Lookup(s Itemset) int {
	key := s.Key()
	for _, f := range r.Frequent {
		if f.Items.Key() == key {
			return f.Support
		}
	}
	return 0
}

// OfSize returns the frequent itemsets with exactly k items.
func (r *Result) OfSize(k int) []Frequent {
	var out []Frequent
	for _, f := range r.Frequent {
		if len(f.Items) == k {
			out = append(out, f)
		}
	}
	return out
}

// Apriori mines all itemsets with support >= minSupport (absolute
// count). It is the levelwise algorithm of Agrawal & Srikant: L1 from
// a scan, then candidate generation by joining L(k-1) with itself,
// pruning candidates with any infrequent (k-1)-subset, and a support
// scan per level.
func Apriori(txs []Transaction, minSupport int) (*Result, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("mining: minSupport must be >= 1, got %d", minSupport)
	}
	res := &Result{Transactions: len(txs), MinSupport: minSupport}

	// L1.
	counts := make(map[string]int)
	first := make(map[string]Item)
	for _, tx := range txs {
		for _, it := range tx {
			counts[it.key()]++
			if _, ok := first[it.key()]; !ok {
				first[it.key()] = it
			}
		}
	}
	var level []Itemset
	for k, c := range counts {
		if c >= minSupport {
			s := Itemset{first[k]}
			level = append(level, s)
			res.Frequent = append(res.Frequent, Frequent{Items: s, Support: c})
		}
	}
	sortLevel(level)

	for len(level) > 0 {
		candidates := generateCandidates(level)
		if len(candidates) == 0 {
			break
		}
		// Support counting scan.
		supp := make([]int, len(candidates))
		for _, tx := range txs {
			for i, c := range candidates {
				if tx.Contains(c) {
					supp[i]++
				}
			}
		}
		var next []Itemset
		for i, c := range candidates {
			if supp[i] >= minSupport {
				next = append(next, c)
				res.Frequent = append(res.Frequent, Frequent{Items: c, Support: supp[i]})
			}
		}
		sortLevel(next)
		level = next
	}

	sort.SliceStable(res.Frequent, func(i, j int) bool {
		if len(res.Frequent[i].Items) != len(res.Frequent[j].Items) {
			return len(res.Frequent[i].Items) < len(res.Frequent[j].Items)
		}
		return res.Frequent[i].Items.Key() < res.Frequent[j].Items.Key()
	})
	return res, nil
}

func sortLevel(level []Itemset) {
	sort.Slice(level, func(i, j int) bool { return level[i].Key() < level[j].Key() })
}

// generateCandidates joins each pair of k-itemsets sharing their
// first k-1 items, then prunes candidates with an infrequent subset.
func generateCandidates(level []Itemset) []Itemset {
	freq := make(map[string]bool, len(level))
	for _, s := range level {
		freq[s.Key()] = true
	}
	k := len(level[0])
	var out []Itemset
	seen := make(map[string]bool)
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			if !samePrefix(a, b, k-1) {
				break // level is sorted; prefixes diverge from here on
			}
			cand := NewItemset(append(append([]Item{}, a...), b[k-1])...)
			if len(cand) != k+1 {
				continue // a and b shared their last item's attr/value
			}
			key := cand.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			if !allSubsetsFrequent(cand, freq) {
				continue
			}
			out = append(out, cand)
		}
	}
	return out
}

func samePrefix(a, b Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i].key() != b[i].key() {
			return false
		}
	}
	return true
}

// allSubsetsFrequent applies the Apriori pruning property: every
// k-subset of a (k+1)-candidate must be frequent.
func allSubsetsFrequent(cand Itemset, freq map[string]bool) bool {
	for skip := range cand {
		sub := make(Itemset, 0, len(cand)-1)
		sub = append(sub, cand[:skip]...)
		sub = append(sub, cand[skip+1:]...)
		if !freq[sub.Key()] {
			return false
		}
	}
	return true
}

// Rule is an association rule X => Y with its metrics.
type Rule struct {
	Antecedent Itemset
	Consequent Itemset
	Support    int     // support of X ∪ Y
	Confidence float64 // support(X ∪ Y) / support(X)
}

// String renders the rule.
func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (support %d, confidence %.2f)", r.Antecedent, r.Consequent, r.Support, r.Confidence)
}

// AssociationRules derives all rules X => Y (Y a single item, the
// common special case) with confidence >= minConfidence from the
// mining result.
func AssociationRules(res *Result, minConfidence float64) ([]Rule, error) {
	if minConfidence <= 0 || minConfidence > 1 {
		return nil, fmt.Errorf("mining: minConfidence must be in (0, 1], got %v", minConfidence)
	}
	support := make(map[string]int, len(res.Frequent))
	for _, f := range res.Frequent {
		support[f.Items.Key()] = f.Support
	}
	var rules []Rule
	for _, f := range res.Frequent {
		if len(f.Items) < 2 {
			continue
		}
		for skip := range f.Items {
			ante := make(Itemset, 0, len(f.Items)-1)
			ante = append(ante, f.Items[:skip]...)
			ante = append(ante, f.Items[skip+1:]...)
			anteSupp := support[ante.Key()]
			if anteSupp == 0 {
				continue
			}
			conf := float64(f.Support) / float64(anteSupp)
			if conf >= minConfidence {
				rules = append(rules, Rule{
					Antecedent: ante,
					Consequent: Itemset{f.Items[skip]},
					Support:    f.Support,
					Confidence: conf,
				})
			}
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return rules[i].Antecedent.Key()+rules[i].Consequent.Key() < rules[j].Antecedent.Key()+rules[j].Consequent.Key()
	})
	return rules, nil
}
