package workflow

import (
	"math"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/scenario"
)

func sim(t *testing.T, seed int64) *Simulator {
	t.Helper()
	s, err := New(DefaultHospital(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunIsDeterministic(t *testing.T) {
	a, err := sim(t, 7).Run(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim(t, 7).Run(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c, err := sim(t, 8).Run(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestRunShape(t *testing.T) {
	entries, err := sim(t, 1).Run(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	st := audit.Summarize(entries)
	if st.Total == 0 {
		t.Fatal("no events generated")
	}
	// Expected volume: ~40 documented + ~23 informal + ~1.2 violations
	// per day; allow wide slack.
	perDay := float64(st.Total) / 30
	if perDay < 40 || perDay > 90 {
		t.Errorf("events/day = %v, outside sane band", perDay)
	}
	if st.Exceptions == 0 || st.Regular == 0 {
		t.Errorf("stats = %+v; need both regular and exception events", st)
	}
	// Chronological order.
	for i := 1; i < len(entries); i++ {
		if entries[i].Time.Before(entries[i-1].Time) {
			t.Fatal("entries not sorted")
		}
	}
	// Documented (regular) accesses follow the working day; only
	// off-hours violations may fall outside it.
	for _, e := range entries {
		h := e.Time.Hour()
		if e.Status == audit.Regular && (h < 6 || h >= 18) {
			t.Errorf("regular event outside working hours: %v", e.Time)
		}
	}
	for _, e := range entries {
		if err := e.Validate(); err != nil {
			t.Fatalf("invalid entry: %v", err)
		}
	}
}

func TestStatusLabelsMatchPolicy(t *testing.T) {
	s := sim(t, 3)
	entries, err := s.Run(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := policy.NewRange(s.cfg.Policy, s.cfg.Vocab, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		want := audit.Exception
		if rg.Contains(e.Rule()) {
			want = audit.Regular
		}
		if e.Status != want {
			t.Fatalf("entry %v: status %v, want %v", e, e.Status, want)
		}
	}
}

func TestRefinementRecoversGroundTruth(t *testing.T) {
	// End-to-end E5-style check: with the paper's default thresholds,
	// refinement over a month of simulated logs finds all informal
	// practices and none of the single-user violations.
	s := sim(t, 42)
	entries, err := s.Run(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultHospital(42)
	patterns, err := core.Refinement(cfg.Policy, entries, cfg.Vocab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var found []policy.Rule
	for _, p := range patterns {
		found = append(found, p.Rule)
	}
	informal, violations := s.GroundTruth()
	sc := Evaluate(found, informal, violations)
	if sc.Recall != 1 {
		t.Errorf("recall = %v (missed %d informal practices): %v", sc.Recall, sc.FalseNegatives, found)
	}
	if sc.Precision != 1 {
		t.Errorf("precision = %v (false positives %d): %v", sc.Precision, sc.FalsePositives, found)
	}
}

func TestAdoptionConvertsExceptionsToRegular(t *testing.T) {
	// The PRIMA loop: after adopting the informal practices into the
	// policy, a re-simulated month is (nearly) exception-free except
	// for violations.
	cfg := DefaultHospital(11)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.Run(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	stBefore := audit.Summarize(before)
	informal, _ := s.GroundTruth()
	for _, r := range informal {
		cfg.Policy.Add(r)
	}
	after, err := s.Run(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	stAfter := audit.Summarize(after)
	if stAfter.Exceptions >= stBefore.Exceptions {
		t.Errorf("exceptions did not drop: %d -> %d", stBefore.Exceptions, stAfter.Exceptions)
	}
	// Remaining exceptions are only the violations (~1.2/day).
	if perDay := float64(stAfter.Exceptions) / 20; perDay > 4 {
		t.Errorf("residual exceptions/day = %v, want only violations", perDay)
	}
}

func TestCoverageRisesAcrossEpochs(t *testing.T) {
	// Quantified Figure 2: run epochs with a refinement session in
	// between; row coverage over each epoch's log must trend upward.
	cfg := DefaultHospital(5)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewSession(cfg.Policy, cfg.Vocab, core.Options{})
	var coverages []float64
	for epoch := 0; epoch < 4; epoch++ {
		entries, err := s.Run(epoch*15, 15)
		if err != nil {
			t.Fatal(err)
		}
		round, err := sess.Run(entries, core.AdoptAll)
		if err != nil {
			t.Fatal(err)
		}
		coverages = append(coverages, round.CoverageBefore)
	}
	if coverages[len(coverages)-1] <= coverages[0] {
		t.Errorf("coverage did not rise: %v", coverages)
	}
	if last := coverages[len(coverages)-1]; last < 0.9 {
		t.Errorf("final-epoch coverage = %v, want near complete", last)
	}
}

func TestNewValidation(t *testing.T) {
	good := DefaultHospital(1)
	bad := good
	bad.Vocab = nil
	if _, err := New(bad); err == nil {
		t.Error("nil vocab accepted")
	}
	bad = good
	bad.Staff = nil
	if _, err := New(bad); err == nil {
		t.Error("empty roster accepted")
	}
	bad = DefaultHospital(1)
	bad.Staff = []Staff{{Name: "x", Role: ""}}
	if _, err := New(bad); err == nil {
		t.Error("unnamed role accepted")
	}
	bad = DefaultHospital(1)
	bad.Informal = append(bad.Informal, Behavior{Data: "a", Purpose: "b", Role: "astronaut", PerDay: 1})
	if _, err := New(bad); err == nil {
		t.Error("behaviour without staff accepted")
	}
	bad = DefaultHospital(1)
	bad.Informal[0].PerDay = 0
	if _, err := New(bad); err == nil {
		t.Error("zero-rate behaviour accepted")
	}
}

func TestEvaluate(t *testing.T) {
	mk := func(d, p, a string) policy.Rule {
		return policy.MustRule(policy.T("data", d), policy.T("purpose", p), policy.T("authorized", a))
	}
	informal := []policy.Rule{mk("a", "b", "c"), mk("d", "e", "f")}
	violations := []policy.Rule{mk("x", "y", "z")}
	sc := Evaluate([]policy.Rule{mk("a", "b", "c"), mk("x", "y", "z")}, informal, violations)
	if sc.TruePositives != 1 || sc.FalsePositives != 1 || sc.FalseNegatives != 1 {
		t.Errorf("score = %+v", sc)
	}
	if math.Abs(sc.Precision-0.5) > 1e-9 || math.Abs(sc.Recall-0.5) > 1e-9 {
		t.Errorf("p/r = %v/%v", sc.Precision, sc.Recall)
	}
	empty := Evaluate(nil, nil, nil)
	if empty.Precision != 0 || empty.Recall != 0 {
		t.Errorf("empty score = %+v", empty)
	}
}

func TestPoissonMean(t *testing.T) {
	s := sim(t, 99)
	const lambda = 6.0
	n := 3000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.poisson(lambda)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-lambda) > 0.4 {
		t.Errorf("poisson mean = %v, want ≈ %v", mean, lambda)
	}
	if s.poisson(0) != 0 || s.poisson(-1) != 0 {
		t.Error("non-positive lambda should yield 0")
	}
}

func TestRolesAndStartOffset(t *testing.T) {
	s := sim(t, 2)
	roles := s.Roles()
	if len(roles) != 5 {
		t.Errorf("roles = %v", roles)
	}
	e1, err := s.Run(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Run(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(e1) == 0 || len(e2) == 0 {
		t.Fatal("empty days")
	}
	if !e2[0].Time.After(e1[len(e1)-1].Time) {
		t.Error("day offset not applied")
	}
	if e1[0].Time.Before(time.Date(2007, 3, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("default start not applied")
	}
}

func TestHospitalGroundTruthMatchesScenarioPattern(t *testing.T) {
	informal, violations := HospitalGroundTruth()
	if len(informal) != 4 || len(violations) != 2 {
		t.Fatalf("ground truth sizes: %d/%d", len(informal), len(violations))
	}
	found := false
	for _, r := range informal {
		if r.Key() == scenario.RefinementPattern().Key() {
			found = true
		}
	}
	if !found {
		t.Error("default hospital lacks the paper's Referral:Registration:Nurse habit")
	}
}

func TestBehaviorWindows(t *testing.T) {
	cfg := DefaultHospital(21)
	// An emerging practice: radiology-style referral reads by doctors
	// for research, starting at day 10 and ending at day 20.
	cfg.Informal = []Behavior{
		{Data: "lab_result", Purpose: "research", Role: "doctor", PerDay: 6, FromDay: 10, UntilDay: 20},
	}
	cfg.Violations = nil
	cfg.DocumentedPerDay = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.Run(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 0 {
		t.Errorf("events before the window: %d", len(before))
	}
	during, err := s.Run(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(during) == 0 {
		t.Error("no events during the window")
	}
	after, err := s.Run(20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 0 {
		t.Errorf("events after the window: %d", len(after))
	}
}

func TestEmergingPracticeIsCaughtByLaterRound(t *testing.T) {
	// An informal practice that starts mid-study is invisible to the
	// first refinement round and adopted by the round that sees it —
	// the paper's "refinement is an ongoing process".
	cfg := DefaultHospital(22)
	// Doctors (3 on the roster, satisfying the distinct-user
	// condition) start consulting counseling notes mid-study.
	emerging := Behavior{Data: "counseling", Purpose: "treatment", Role: "doctor", PerDay: 6, FromDay: 15}
	cfg.Informal = append(cfg.Informal, emerging)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewSession(cfg.Policy, cfg.Vocab, core.Options{})
	adoptedIn := -1
	for epoch := 0; epoch < 3; epoch++ {
		entries, err := s.Run(epoch*15, 15)
		if err != nil {
			t.Fatal(err)
		}
		round, err := sess.Run(entries, core.AdoptAll)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range round.Adopted {
			if r.Key() == emerging.Rule().Key() {
				adoptedIn = epoch
			}
		}
	}
	if adoptedIn != 1 {
		t.Errorf("emerging practice adopted in epoch %d, want 1 (its first active window)", adoptedIn)
	}
}

func TestLargeHospitalScales(t *testing.T) {
	cfg := LargeHospital(31, 8)
	if len(cfg.Staff) != 8*15 {
		t.Fatalf("staff = %d", len(cfg.Staff))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := s.Run(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	perDay := float64(len(entries)) / 5
	// ~8x the default ward's ~64/day.
	if perDay < 300 || perDay > 900 {
		t.Errorf("events/day = %v", perDay)
	}
	// Refinement still recovers every informal practice. Note the
	// scale caveat this configuration is built to demonstrate: each
	// department's snooper is single-user locally, but eight of them
	// hit the SAME (psychiatry, research, clerk) rule, so the
	// organization-wide aggregate passes the paper's
	// COUNT(DISTINCT user) > 1 condition — the distinct-user
	// heuristic loses discrimination at scale and the human Reviewer
	// becomes the backstop (see EXPERIMENTS.md).
	patterns, err := core.Refinement(cfg.Policy, entries, cfg.Vocab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var found []policy.Rule
	for _, p := range patterns {
		found = append(found, p.Rule)
	}
	informal, violations := s.GroundTruth()
	sc := Evaluate(found, informal, violations)
	if sc.Recall != 1 {
		t.Errorf("large-hospital recall: %+v (%v)", sc, found)
	}
	if sc.FalsePositives != 1 {
		t.Errorf("expected exactly the correlated-snooping false positive: %+v (%v)", sc, found)
	}
	// A reviewer that checks the mental-health boundary catches it.
	reviewer := core.ReviewerFunc(func(p core.Pattern) core.Decision {
		if d, _ := p.Rule.Value("data"); cfg.Vocab.Subsumes("data", "mental_health", d) {
			return core.Reject
		}
		return core.Adopt
	})
	sess := core.NewSession(cfg.Policy.Clone(), cfg.Vocab, core.Options{})
	round, err := sess.Run(entries, reviewer)
	if err != nil {
		t.Fatal(err)
	}
	sc = Evaluate(round.Adopted, informal, violations)
	if sc.Precision != 1 || sc.Recall != 1 {
		t.Errorf("reviewed extraction: %+v (%v)", sc, round.Adopted)
	}
	if len(cfg.InformalRules()) != 4 {
		t.Errorf("InformalRules = %v", cfg.InformalRules())
	}
	if got := LargeHospital(1, 0); len(got.Staff) != 15 {
		t.Errorf("departments floor: %d staff", len(got.Staff))
	}
}

func TestSuspicionReviewerOnSimulatedHospital(t *testing.T) {
	// End to end on the simulator: the off-hours, single-user
	// violations score high suspicion while genuine practices score
	// low, so the automated suspicion reviewer adopts exactly the
	// informal practices — no human in the loop needed for this
	// workload shape.
	cfg := DefaultHospital(77)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := s.Run(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	practice := core.Filter(entries)
	sess := core.NewSession(cfg.Policy, cfg.Vocab, core.Options{})
	round, err := sess.Run(entries, core.SuspicionReviewer(practice, 0.5, 0.85))
	if err != nil {
		t.Fatal(err)
	}
	informal, violations := s.GroundTruth()
	sc := Evaluate(round.Adopted, informal, violations)
	if sc.Precision != 1 || sc.Recall != 1 {
		t.Errorf("suspicion-reviewed extraction: %+v (adopted %v)", sc, round.Adopted)
	}
	// The violations' evidence is visibly night-shaped.
	for _, vr := range violations {
		ev := core.GatherEvidence(practice, vr)
		if ev.Support == 0 {
			continue // rare behaviour may not have fired this month
		}
		if ev.OffHoursFraction < 0.9 || ev.Concentration != 1 {
			t.Errorf("violation evidence not night/single shaped: %+v", ev)
		}
	}
}
