package consent

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

func TestOptedOutExpiryBoundary(t *testing.T) {
	s := store(t, true)
	exp := t0.Add(time.Hour)
	if err := s.SetWithExpiry("p1", "psychiatry", "", OptOut, t0, exp); err != nil {
		t.Fatal(err)
	}
	// A record is active up to and including its exact expiry instant
	// and lapses just after it; the inverted index must agree with
	// CheckAt at every boundary.
	cases := []struct {
		now  time.Time
		want []string
	}{
		{exp.Add(-time.Second), []string{"p1"}},
		{exp, []string{"p1"}},
		{exp.Add(time.Nanosecond), nil},
		{exp.Add(time.Hour), nil},
	}
	for _, c := range cases {
		got := s.OptedOutAt("psychiatry", "treatment", c.now)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("OptedOutAt(now=%v) = %v, want %v", c.now, got, c.want)
		}
		d := s.CheckAt("p1", "psychiatry", "treatment", c.now)
		if d.Allowed != (len(c.want) == 0) {
			t.Errorf("CheckAt(now=%v).Allowed = %v, disagrees with inverted index", c.now, d.Allowed)
		}
	}
}

func TestOptedOutHorizonInvalidation(t *testing.T) {
	s := store(t, true)
	exp := t0.Add(time.Hour)
	if err := s.SetWithExpiry("p1", "referral", "billing", OptOut, t0, exp); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("p2", "referral", "", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	// Warm the cache well inside the validity window, then step past
	// the horizon without mutating the store: the entry must lapse on
	// time alone.
	got := s.OptedOutAt("referral", "billing", t0.Add(time.Minute))
	if !reflect.DeepEqual(got, []string{"p1", "p2"}) {
		t.Fatalf("warm read = %v", got)
	}
	got = s.OptedOutAt("referral", "billing", exp.Add(time.Second))
	if !reflect.DeepEqual(got, []string{"p2"}) {
		t.Errorf("post-horizon read = %v, expired record still applied", got)
	}
	// Re-reading inside the window again (clock regression relative to
	// the cached entry) must not serve the newer entry.
	got = s.OptedOutAt("referral", "billing", t0.Add(2*time.Minute))
	if !reflect.DeepEqual(got, []string{"p1", "p2"}) {
		t.Errorf("in-window re-read = %v", got)
	}
}

func TestOptedOutMutationInvalidation(t *testing.T) {
	s := store(t, true)
	if err := s.Set("p1", "psychiatry", "", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	now := t0.Add(time.Minute)
	if got := s.OptedOutAt("psychiatry", "research", now); !reflect.DeepEqual(got, []string{"p1"}) {
		t.Fatalf("seed read = %v", got)
	}
	// A later, equally-specific opt-in flips the decision; the cached
	// entry must be invalidated by the generation bump.
	if err := s.Set("p1", "psychiatry", "", OptIn, t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := s.OptedOutAt("psychiatry", "research", now); len(got) != 0 {
		t.Errorf("post-opt-in read = %v, stale entry served", got)
	}
}

func TestOptedOutRevocation(t *testing.T) {
	s := store(t, true)
	if err := s.Set("p1", "psychiatry", "", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("p2", "psychiatry", "research", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	now := t0.Add(time.Minute)
	if got := s.OptedOutAt("psychiatry", "research", now); !reflect.DeepEqual(got, []string{"p1", "p2"}) {
		t.Fatalf("seed read = %v", got)
	}
	if n := s.Revoke("p1"); n != 1 {
		t.Fatalf("Revoke = %d", n)
	}
	if got := s.OptedOutAt("psychiatry", "research", now); !reflect.DeepEqual(got, []string{"p2"}) {
		t.Errorf("post-revoke read = %v, revoked patient still indexed", got)
	}
	// Revoking a patient with no records is a no-op and must not bump
	// the generation (derived caches stay valid).
	g := s.Generation()
	if n := s.Revoke("ghost"); n != 0 {
		t.Fatalf("Revoke(ghost) = %d", n)
	}
	if s.Generation() != g {
		t.Error("no-op Revoke bumped the generation")
	}
}

func TestOptedOutDefaultDeny(t *testing.T) {
	s := store(t, false)
	// p1 opted in for exactly this pair; p2 recorded an unrelated
	// choice, so the store default (deny) applies to p2.
	if err := s.Set("p1", "psychiatry", "research", OptIn, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("p2", "address", "billing", OptIn, t0); err != nil {
		t.Fatal(err)
	}
	got := s.OptedOutAt("psychiatry", "research", t0.Add(time.Minute))
	if !reflect.DeepEqual(got, []string{"p2"}) {
		t.Errorf("OptedOut under default-deny = %v, want [p2]", got)
	}
}

func TestOptedOutCacheBound(t *testing.T) {
	s := store(t, true)
	if err := s.Set("p1", "", "", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	now := t0.Add(time.Minute)
	// Overflow the inverted index; the wholesale drop must not change
	// answers.
	for i := 0; i < invCacheMax+8; i++ {
		s.OptedOutAt(fmt.Sprintf("cat%d", i), "treatment", now)
	}
	if got := s.OptedOutAt("referral", "treatment", now); !reflect.DeepEqual(got, []string{"p1"}) {
		t.Errorf("post-overflow read = %v", got)
	}
}

func TestExpiryHorizon(t *testing.T) {
	s := store(t, true)
	if h := s.ExpiryHorizon(t0); !h.IsZero() {
		t.Errorf("empty store horizon = %v", h)
	}
	if err := s.Set("p1", "referral", "", OptOut, t0); err != nil { // no expiry
		t.Fatal(err)
	}
	if h := s.ExpiryHorizon(t0); !h.IsZero() {
		t.Errorf("unexpiring record horizon = %v", h)
	}
	e1, e2 := t0.Add(time.Hour), t0.Add(2*time.Hour)
	if err := s.SetWithExpiry("p2", "address", "", OptOut, t0, e2); err != nil {
		t.Fatal(err)
	}
	if err := s.SetWithExpiry("p3", "psychiatry", "", OptOut, t0, e1); err != nil {
		t.Fatal(err)
	}
	if h := s.ExpiryHorizon(t0); !h.Equal(e1) {
		t.Errorf("horizon = %v, want %v", h, e1)
	}
	// A record still counts at its exact expiry instant, and drops out
	// just after, promoting the next expiry.
	if h := s.ExpiryHorizon(e1); !h.Equal(e1) {
		t.Errorf("horizon at e1 = %v, want %v", h, e1)
	}
	if h := s.ExpiryHorizon(e1.Add(time.Nanosecond)); !h.Equal(e2) {
		t.Errorf("horizon past e1 = %v, want %v", h, e2)
	}
	if h := s.ExpiryHorizon(e2.Add(time.Nanosecond)); !h.IsZero() {
		t.Errorf("horizon past e2 = %v, want zero", h)
	}
}

func TestGenerationCounts(t *testing.T) {
	s := store(t, true)
	g0 := s.Generation()
	if err := s.Set("p1", "referral", "", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != g0+1 {
		t.Errorf("Set bumped generation to %d, want %d", s.Generation(), g0+1)
	}
	if err := s.SetWithExpiry("p1", "address", "", OptIn, t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != g0+2 {
		t.Errorf("SetWithExpiry bumped generation to %d, want %d", s.Generation(), g0+2)
	}
	s.Revoke("p1")
	if s.Generation() != g0+3 {
		t.Errorf("Revoke bumped generation to %d, want %d", s.Generation(), g0+3)
	}
	// Failed sets must not bump.
	g := s.Generation()
	if err := s.Set("", "a", "b", OptOut, t0); err == nil {
		t.Fatal("empty patient accepted")
	}
	if s.Generation() != g {
		t.Error("failed Set bumped the generation")
	}
}
