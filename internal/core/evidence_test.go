package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/scenario"
)

func evEntry(at time.Time, user, data, purpose, role string) audit.Entry {
	return audit.Entry{Time: at, Op: audit.Allow, User: user,
		Data: data, Purpose: purpose, Authorized: role, Status: audit.Exception}
}

func TestGatherEvidenceTable1(t *testing.T) {
	practice := Filter(scenario.Table1())
	ev := GatherEvidence(practice, scenario.RefinementPattern())
	if ev.Support != 5 || len(ev.UserCounts) != 3 {
		t.Fatalf("evidence = %+v", ev)
	}
	// Mark 3, Tim 1, Bob 1 → HHI = (3/5)^2 + (1/5)^2 + (1/5)^2 = 0.44.
	if ev.Concentration < 0.43 || ev.Concentration > 0.45 {
		t.Errorf("concentration = %v", ev.Concentration)
	}
	if ev.OffHoursFraction != 0 { // t3..t10 are 10:00–17:00
		t.Errorf("off hours = %v", ev.OffHoursFraction)
	}
	if ev.DaysActive != 1 {
		t.Errorf("days = %d", ev.DaysActive)
	}
	if s := ev.String(); !strings.Contains(s, "suspicion=") {
		t.Errorf("String = %q", s)
	}
}

func TestSuspicionSeparatesShapes(t *testing.T) {
	base := time.Date(2007, 3, 5, 0, 0, 0, 0, time.UTC)
	var practice []audit.Entry
	// Organizational habit: many users, working hours.
	for i := 0; i < 20; i++ {
		practice = append(practice, evEntry(
			base.Add(time.Duration(9+i%8)*time.Hour+time.Duration(i)*24*time.Hour/4),
			[]string{"a", "b", "c", "d", "e"}[i%5],
			"referral", "registration", "nurse"))
	}
	// Snooping: one user, mostly at night.
	for i := 0; i < 10; i++ {
		practice = append(practice, evEntry(
			base.Add(time.Duration(23)*time.Hour+time.Duration(i)*24*time.Hour),
			"eve", "psychiatry", "research", "clerk"))
	}
	habit := GatherEvidence(practice, policy.MustRule(
		policy.T("data", "referral"), policy.T("purpose", "registration"), policy.T("authorized", "nurse")))
	snoop := GatherEvidence(practice, policy.MustRule(
		policy.T("data", "psychiatry"), policy.T("purpose", "research"), policy.T("authorized", "clerk")))
	if habit.Suspicion() >= 0.4 {
		t.Errorf("habit suspicion = %v, want low (%+v)", habit.Suspicion(), habit)
	}
	if snoop.Suspicion() <= 0.8 {
		t.Errorf("snoop suspicion = %v, want high (%+v)", snoop.Suspicion(), snoop)
	}
	if snoop.Concentration != 1 || snoop.OffHoursFraction != 1 {
		t.Errorf("snoop features: %+v", snoop)
	}
}

func TestAnnotatePatternsSorted(t *testing.T) {
	base := time.Date(2007, 3, 5, 0, 0, 0, 0, time.UTC)
	var practice []audit.Entry
	for i := 0; i < 6; i++ {
		practice = append(practice, evEntry(base.Add(time.Duration(10+i%4)*time.Hour),
			[]string{"a", "b", "c"}[i%3], "referral", "registration", "nurse"))
		practice = append(practice, evEntry(base.Add(time.Duration(2)*time.Hour),
			"eve", "psychiatry", "research", "clerk"))
	}
	patterns := []Pattern{
		{Rule: policy.MustRule(policy.T("data", "psychiatry"), policy.T("purpose", "research"), policy.T("authorized", "clerk"))},
		{Rule: policy.MustRule(policy.T("data", "referral"), policy.T("purpose", "registration"), policy.T("authorized", "nurse"))},
	}
	evs := AnnotatePatterns(practice, patterns)
	if len(evs) != 2 {
		t.Fatal("missing evidence")
	}
	if evs[0].Suspicion() > evs[1].Suspicion() {
		t.Errorf("not sorted by suspicion: %v then %v", evs[0].Suspicion(), evs[1].Suspicion())
	}
	if d, _ := evs[0].Rule.Value("data"); d != "referral" {
		t.Errorf("safest first: got %v", evs[0].Rule)
	}
}

func TestSuspicionReviewerEndToEnd(t *testing.T) {
	// A correlated cross-user violation that the distinct-user
	// condition would adopt: night-time psychiatry browsing by two
	// colluding users. The suspicion reviewer sends it to
	// investigation instead, while the daytime habit is adopted.
	base := time.Date(2007, 3, 5, 0, 0, 0, 0, time.UTC)
	var entries []audit.Entry
	for i := 0; i < 8; i++ {
		entries = append(entries, evEntry(
			base.Add(time.Duration(i)*24*time.Hour+10*time.Hour),
			[]string{"a", "b", "c", "d"}[i%4], "referral", "registration", "nurse"))
	}
	for i := 0; i < 6; i++ {
		entries = append(entries, evEntry(
			base.Add(time.Duration(i)*24*time.Hour+23*time.Hour),
			[]string{"eve", "mallory"}[i%2], "psychiatry", "research", "clerk"))
	}
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	sess := NewSession(ps, v, Options{MinSupport: 4})
	reviewer := SuspicionReviewer(Filter(entries), 0.5, 0.9)
	round, err := sess.Run(entries, reviewer)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Adopted) != 1 {
		t.Fatalf("adopted = %v", round.Adopted)
	}
	if d, _ := round.Adopted[0].Value("data"); d != "referral" {
		t.Errorf("adopted the wrong rule: %v", round.Adopted)
	}
	if len(round.Investigating)+len(round.Rejected) != 1 {
		t.Errorf("violation not flagged: %+v", round)
	}
}

func TestGatherEvidenceEmpty(t *testing.T) {
	ev := GatherEvidence(nil, scenario.RefinementPattern())
	if ev.Support != 0 || ev.Suspicion() != 0 || ev.Concentration != 0 {
		t.Errorf("empty evidence = %+v", ev)
	}
}
