// Package arenasafe exercises the publication-safety analyzer: a
// prima:arena value may be filled freely while local, but no write
// may follow its publication (store, return, capture, send).
package arenasafe

// Box is immutable after publication.
//
// prima:arena
type Box struct {
	vals []int
	n    int
}

var shared *Box

// bad publishes the box and then keeps writing to it.
func bad() *Box {
	b := &Box{}
	shared = b
	b.n = 1 // want arenasafe "mutated after publication"
	return b
}

// leak publishes through a closure capture.
func leak(sink func(*Box)) {
	b := &Box{}
	f := func() { sink(b) }
	f()
	b.n = 2 // want arenasafe "mutated after publication"
}

// good does all its writes before publication.
func good() *Box {
	b := &Box{}
	b.n = 1
	b.vals = append(b.vals, 1)
	return b
}

// refresh reallocates after publishing: the new allocation is fresh,
// so the write is clean.
func refresh() *Box {
	b := &Box{}
	shared = b
	b = &Box{}
	b.n = 3
	return b
}
