package audit

import (
	"math"
	"testing"
	"time"
)

func retentionLog(t *testing.T) *Log {
	t.Helper()
	l := NewLog("ward")
	for i := 0; i < 10; i++ {
		st := Regular
		if i%3 == 0 {
			st = Exception
		}
		if err := l.Append(entry(t0.Add(time.Duration(i)*24*time.Hour), "u", "d", "p", "r", st)); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestExpireUniform(t *testing.T) {
	l := retentionLog(t)
	dropped := l.Expire(t0.Add(5*24*time.Hour), time.Time{})
	if dropped != 5 || l.Len() != 5 {
		t.Fatalf("dropped %d, len %d", dropped, l.Len())
	}
	for _, e := range l.Snapshot() {
		if e.Time.Before(t0.Add(5 * 24 * time.Hour)) {
			t.Fatalf("stale entry survived: %v", e)
		}
	}
}

func TestExpireKeepsRecentExceptions(t *testing.T) {
	l := retentionLog(t)
	// Expire everything before day 8, but keep exception entries back
	// to day 2 (they are refinement input).
	dropped := l.Expire(t0.Add(8*24*time.Hour), t0.Add(2*24*time.Hour))
	// Days 0..7 dropped except exception days 3, 6 (day 0 is an
	// exception but older than the exception cutoff).
	if dropped != 6 {
		t.Fatalf("dropped %d, want 6: %v", dropped, l.Snapshot())
	}
	for _, e := range l.Snapshot() {
		old := e.Time.Before(t0.Add(8 * 24 * time.Hour))
		if old && e.Status != Exception {
			t.Errorf("old regular entry survived: %v", e)
		}
	}
}

func TestRotate(t *testing.T) {
	l := retentionLog(t)
	rotated := l.Rotate(t0.Add(4 * 24 * time.Hour))
	if len(rotated) != 4 || l.Len() != 6 {
		t.Fatalf("rotated %d, remaining %d", len(rotated), l.Len())
	}
	for _, e := range rotated {
		if !e.Time.Before(t0.Add(4 * 24 * time.Hour)) {
			t.Errorf("young entry rotated: %v", e)
		}
	}
	if got := l.Rotate(t0); len(got) != 0 {
		t.Errorf("second rotate moved %d entries", len(got))
	}
}

func TestTopCounts(t *testing.T) {
	entries := []Entry{
		entry(t0, "Amy", "referral", "treatment", "nurse", Regular),
		entry(t0, "amy", "referral", "billing", "nurse", Regular),
		entry(t0, "bob", "address", "billing", "clerk", Regular),
	}
	users := TopUsers(entries, 0)
	if len(users) != 2 || users[0].Value != "amy" || users[0].N != 2 {
		t.Errorf("TopUsers = %v", users)
	}
	if got := TopUsers(entries, 1); len(got) != 1 {
		t.Errorf("limit ignored: %v", got)
	}
	data := TopData(entries, 0)
	if data[0].Value != "referral" || data[0].N != 2 {
		t.Errorf("TopData = %v", data)
	}
	purposes := TopPurposes(entries, 0)
	if purposes[0].Value != "billing" || purposes[0].N != 2 {
		t.Errorf("TopPurposes = %v", purposes)
	}
	if purposes[0].String() != "billing: 2" {
		t.Errorf("Count.String = %q", purposes[0].String())
	}
}

func TestExceptionRateByRole(t *testing.T) {
	entries := []Entry{
		entry(t0, "a", "d", "p", "nurse", Exception),
		entry(t0, "b", "d", "p", "nurse", Regular),
		entry(t0, "c", "d", "p", "nurse", Regular),
		entry(t0, "d", "d", "p", "clerk", Regular),
	}
	rates := ExceptionRateByRole(entries)
	if math.Abs(rates["nurse"]-1.0/3.0) > 1e-9 {
		t.Errorf("nurse rate = %v", rates["nurse"])
	}
	if rates["clerk"] != 0 {
		t.Errorf("clerk rate = %v", rates["clerk"])
	}
}

func TestDailyCounts(t *testing.T) {
	entries := []Entry{
		entry(t0, "a", "d", "p", "r", Regular),
		entry(t0.Add(2*time.Hour), "b", "d", "p", "r", Regular),
		entry(t0.Add(25*time.Hour), "c", "d", "p", "r", Regular),
	}
	days := DailyCounts(entries)
	if len(days) != 2 || days[0].N != 2 || days[1].N != 1 {
		t.Errorf("DailyCounts = %v", days)
	}
	if days[0].Value >= days[1].Value {
		t.Errorf("days not chronological: %v", days)
	}
}
