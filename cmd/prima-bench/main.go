// Command prima-bench regenerates every quantitative artifact of the
// paper and prints a paper-vs-measured table (the data behind
// EXPERIMENTS.md). Exact worked examples (E2, E3) are verified — the
// command exits non-zero if any paper number fails to reproduce —
// while the synthetic experiments (E4, E5, E11) report their measured
// series.
//
// Usage:
//
//	prima-bench [-seed 42] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/mining"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/workflow"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prima-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prima-bench", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "simulation seed")
	quick := fs.Bool("quick", false, "shrink the synthetic experiments")
	if err := fs.Parse(args); err != nil {
		return err
	}
	epochs, days := 6, 15
	if *quick {
		epochs, days = 3, 8
	}

	fmt.Println("# PRIMA experiment harness — paper vs measured")
	fmt.Println()
	if err := runE2(); err != nil {
		return err
	}
	if err := runE3(); err != nil {
		return err
	}
	if err := runE4(*seed, epochs, days); err != nil {
		return err
	}
	if err := runE5(*seed, days*2); err != nil {
		return err
	}
	if err := runE6(); err != nil {
		return err
	}
	if err := runE11(); err != nil {
		return err
	}
	if err := runE15(*quick); err != nil {
		return err
	}
	if err := runE17(*quick); err != nil {
		return err
	}
	fmt.Println("all paper artifacts reproduced")
	return nil
}

func check(name string, got, want float64) error {
	status := "OK"
	if got != want {
		status = "MISMATCH"
	}
	fmt.Printf("| %s | %.2f | %.2f | %s |\n", name, want, got, status)
	if got != want {
		return fmt.Errorf("%s: measured %v, paper %v", name, got, want)
	}
	return nil
}

func runE2() error {
	fmt.Println("## E2 — Figure 3 coverage (§3.3)")
	fmt.Println()
	fmt.Println("| quantity | paper | measured | status |")
	fmt.Println("|---|---|---|---|")
	v := scenario.Vocabulary()
	c, err := core.ComputeCoverage(scenario.PolicyStore(), scenario.Figure3AuditPolicy(), v)
	if err != nil {
		return err
	}
	if err := check("ComputeCoverage(P_PS, P_AL, V)", c, scenario.Figure3Coverage); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func runE3() error {
	fmt.Println("## E3 — Table 1 / §5 walk-through")
	fmt.Println()
	fmt.Println("| quantity | paper | measured | status |")
	fmt.Println("|---|---|---|---|")
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	entries := scenario.Table1()

	before, err := core.EntryCoverage(ps, entries, v)
	if err != nil {
		return err
	}
	if err := check("coverage over snapshot", before.Coverage, scenario.Table1Coverage); err != nil {
		return err
	}
	practice := core.Filter(entries)
	if err := check("Practice rows after Filter", float64(len(practice)), scenario.Table1PracticeSize); err != nil {
		return err
	}
	patterns, err := core.Refinement(ps, entries, v, core.Options{})
	if err != nil {
		return err
	}
	if len(patterns) != 1 || patterns[0].Rule.Key() != scenario.RefinementPattern().Key() {
		return fmt.Errorf("E3: pattern mismatch: %v", patterns)
	}
	if err := check("pattern support", float64(patterns[0].Support), scenario.RefinementSupport); err != nil {
		return err
	}
	if err := check("pattern distinct users", float64(patterns[0].DistinctUsers), scenario.RefinementDistinctUsers); err != nil {
		return err
	}
	ps.Add(patterns[0].Rule)
	after, err := core.EntryCoverage(ps, entries, v)
	if err != nil {
		return err
	}
	if err := check("coverage after adoption", after.Coverage, scenario.Table1PostAdoptionCoverage); err != nil {
		return err
	}
	fmt.Printf("\npattern: %s\n\n", patterns[0].Rule.Compact())
	return nil
}

func runE4(seed int64, epochs, days int) error {
	fmt.Printf("## E4 — coverage vs refinement epochs (%d × %d days, seed %d)\n\n", epochs, days, seed)
	cfg := workflow.DefaultHospital(seed)
	sim, err := workflow.New(cfg)
	if err != nil {
		return err
	}
	sess := core.NewSession(cfg.Policy, cfg.Vocab, core.Options{})
	fmt.Println("| epoch | entries | exceptions | coverage | adopted |")
	fmt.Println("|---|---|---|---|---|")
	var first, last float64
	for epoch := 0; epoch < epochs; epoch++ {
		entries, err := sim.Run(epoch*days, days)
		if err != nil {
			return err
		}
		round, err := sess.Run(entries, core.AdoptAll)
		if err != nil {
			return err
		}
		st := audit.Summarize(entries)
		fmt.Printf("| %d | %d | %d | %.1f%% | %d |\n",
			epoch+1, st.Total, st.Exceptions, round.CoverageBefore*100, len(round.Adopted))
		if epoch == 0 {
			first = round.CoverageBefore
		}
		last = round.CoverageBefore
	}
	if last <= first {
		return fmt.Errorf("E4: coverage did not rise (%v -> %v)", first, last)
	}
	informal, violations := sim.GroundTruth()
	var adopted []policy.Rule
	for _, r := range sess.History {
		adopted = append(adopted, r.Adopted...)
	}
	sc := workflow.Evaluate(adopted, informal, violations)
	fmt.Printf("\nextraction precision %.2f, recall %.2f (shape: rises then plateaus below 100%%) \n\n", sc.Precision, sc.Recall)
	if sc.Precision != 1 || sc.Recall != 1 {
		return fmt.Errorf("E4: extraction quality %v/%v", sc.Precision, sc.Recall)
	}
	return nil
}

func runE5(seed int64, days int) error {
	fmt.Printf("## E5 — threshold sensitivity (%d days, seed %d)\n\n", days, seed)
	cfg := workflow.DefaultHospital(seed)
	sim, err := workflow.New(cfg)
	if err != nil {
		return err
	}
	entries, err := sim.Run(0, days)
	if err != nil {
		return err
	}
	informal, violations := sim.GroundTruth()
	fmt.Println("| f | min users | precision | recall |")
	fmt.Println("|---|---|---|---|")
	for _, f := range []int{5, 50, 200, 500} {
		for _, u := range []int{1, 2} {
			pats, err := core.Refinement(cfg.Policy, entries, cfg.Vocab, core.Options{
				MinSupport: f, MinDistinctUsers: u, Extractor: core.NativeExtractor{},
			})
			if err != nil {
				return err
			}
			var found []policy.Rule
			for _, p := range pats {
				found = append(found, p.Rule)
			}
			sc := workflow.Evaluate(found, informal, violations)
			fmt.Printf("| %d | %d | %.2f | %.2f |\n", f, u, sc.Precision, sc.Recall)
		}
	}
	fmt.Println()
	return nil
}

func runE6() error {
	fmt.Println("## E6 — Apriori vs plain SQL (§5 proposal)")
	fmt.Println()
	base := time.Date(2007, 4, 1, 8, 0, 0, 0, time.UTC)
	purposes := []string{"treatment", "registration", "billing", "research"}
	users := []string{"a", "b", "c"}
	var entries []audit.Entry
	for i := 0; i < 12; i++ {
		entries = append(entries, audit.Entry{
			Time: base.Add(time.Duration(i) * time.Minute), Op: audit.Allow,
			User: users[i%len(users)], Data: "lab_result",
			Purpose: purposes[i%len(purposes)], Authorized: "lab_tech",
			Status: audit.Exception,
		})
	}
	sqlPats, err := core.ExtractPatterns(entries, core.Options{MinSupport: 5})
	if err != nil {
		return err
	}
	corrs, err := mining.Correlations(entries, nil, 5)
	if err != nil {
		return err
	}
	pairFound := false
	for _, c := range corrs {
		if c.Items.Key() == "authorized=lab_tech&data=lab_result" {
			pairFound = true
		}
	}
	fmt.Printf("SQL exact-tuple patterns at f=5: %d (paper: misses the smeared correlation)\n", len(sqlPats))
	fmt.Printf("Apriori pair correlations at support 5: found=%v (paper: proposed to detect them)\n\n", pairFound)
	if len(sqlPats) != 0 || !pairFound {
		return fmt.Errorf("E6: shape mismatch")
	}
	return nil
}

func runE11() error {
	fmt.Println("## E11 — suspicion-guided review (beyond §4.2)")
	fmt.Println()
	base := time.Date(2007, 3, 5, 0, 0, 0, 0, time.UTC)
	var entries []audit.Entry
	for i := 0; i < 12; i++ {
		entries = append(entries, audit.Entry{
			Time: base.Add(time.Duration(i)*24*time.Hour + 10*time.Hour), Op: audit.Allow,
			User: []string{"a", "b", "c", "d"}[i%4], Data: "referral",
			Purpose: "registration", Authorized: "nurse", Status: audit.Exception,
		})
	}
	for i := 0; i < 8; i++ {
		entries = append(entries, audit.Entry{
			Time: base.Add(time.Duration(i)*24*time.Hour + 23*time.Hour), Op: audit.Allow,
			User: []string{"eve", "mallory"}[i%2], Data: "psychiatry",
			Purpose: "research", Authorized: "clerk", Status: audit.Exception,
		})
	}
	informal := []policy.Rule{policy.MustRule(
		policy.T("data", "referral"), policy.T("purpose", "registration"), policy.T("authorized", "nurse"))}
	violations := []policy.Rule{policy.MustRule(
		policy.T("data", "psychiatry"), policy.T("purpose", "research"), policy.T("authorized", "clerk"))}
	fmt.Println("| reviewer | precision | recall |")
	fmt.Println("|---|---|---|")
	for _, rc := range []struct {
		name     string
		reviewer core.Reviewer
	}{
		{"naive adopt-all", core.AdoptAll},
		{"suspicion reviewer", core.SuspicionReviewer(core.Filter(entries), 0.5, 0.9)},
	} {
		sess := core.NewSession(scenario.PolicyStore(), scenario.Vocabulary(), core.Options{})
		round, err := sess.Run(entries, rc.reviewer)
		if err != nil {
			return err
		}
		sc := workflow.Evaluate(round.Adopted, informal, violations)
		fmt.Printf("| %s | %.2f | %.2f |\n", rc.name, sc.Precision, sc.Recall)
	}
	fmt.Println()
	return nil
}

// e15Pool returns n synthetic practice rows over a bounded behaviour
// vocabulary (576 distinct projections, 24 staff), the same shape as
// the E15 benchmark workload in bench_test.go.
func e15Pool(n int) []audit.Entry {
	mk := func(prefix string, k int) []string {
		out := make([]string, k)
		for i := range out {
			out[i] = fmt.Sprintf("%s%d", prefix, i)
		}
		return out
	}
	dataVals, purposeVals, roleVals := mk("lab", 12), mk("task", 8), mk("role", 6)
	staff := mk("u", 24)
	base := time.Date(2007, 3, 1, 0, 0, 0, 0, time.UTC)
	out := make([]audit.Entry, n)
	for i := range out {
		out[i] = audit.Entry{
			Time: base.Add(time.Duration(i) * time.Second), Op: audit.Allow,
			User:       staff[(i+i/576)%len(staff)],
			Data:       dataVals[i%12],
			Purpose:    purposeVals[(i/12)%8],
			Authorized: roleVals[(i/96)%6],
			Status:     audit.Exception,
		}
	}
	return out
}

// patternKeys renders patterns as comparable strings (rule + support +
// distinct users), the identity E15's differential contract demands.
func patternKeys(pats []core.Pattern) []string {
	out := make([]string, len(pats))
	for i, p := range pats {
		out[i] = fmt.Sprintf("%s|%d|%d", p.Rule.Key(), p.Support, p.DistinctUsers)
	}
	return out
}

// rescanExtractor hides mining.Extractor's incremental and log-fed
// method sets so the stream session takes its legacy rescan path —
// the pre-FP-growth epoch cost model.
type rescanExtractor struct{ inner core.PatternExtractor }

func (r rescanExtractor) Extract(p []audit.Entry, o core.Options) ([]core.Pattern, error) {
	return r.inner.Extract(p, o)
}

func runE15(quick bool) error {
	rows := 120000
	if quick {
		rows = 30000
	}
	fmt.Printf("## E15 — mining at audit scale (%d practice rows)\n\n", rows)
	pool := e15Pool(rows)

	// Differential contract: FP-growth must reproduce Apriori's
	// patterns byte for byte on the same snapshot.
	ap, err := (mining.Extractor{}).Extract(pool, core.Options{})
	if err != nil {
		return err
	}
	fp, err := (mining.FPGrowth{}).Extract(pool, core.Options{})
	if err != nil {
		return err
	}
	apKeys, fpKeys := patternKeys(ap), patternKeys(fp)
	identical := len(apKeys) == len(fpKeys)
	for i := 0; identical && i < len(apKeys); i++ {
		identical = apKeys[i] == fpKeys[i]
	}
	fmt.Printf("FP-growth vs Apriori: %d patterns each, identical=%v\n\n", len(fpKeys), identical)
	if !identical {
		return fmt.Errorf("E15: engines diverge: %d apriori vs %d fpgrowth patterns", len(apKeys), len(fpKeys))
	}

	// Epoch series: streaming refinement rounds while fresh rows
	// arrive. The incremental FP-growth session folds only the new
	// rows into persistent per-shard state; the rescan session
	// re-extracts the cumulative practice every round.
	epochs, perEpoch := 3, 2048
	variants := []struct {
		name string
		x    core.PatternExtractor
	}{
		{"incremental fpgrowth", mining.FPGrowth{}},
		{"apriori rescan", rescanExtractor{inner: mining.Extractor{}}},
	}
	times := make([][]time.Duration, len(variants))
	patterns := make([][]string, len(variants))
	for vi, variant := range variants {
		l := audit.NewLog("ward")
		for off := 0; off < rows; off += 4096 {
			end := off + 4096
			if end > rows {
				end = rows
			}
			if err := l.Append(pool[off:end]...); err != nil {
				return err
			}
		}
		sess := core.NewStreamSession(l, scenario.PolicyStore(), scenario.Vocabulary(), core.Options{Extractor: variant.x})
		// Prime with one untimed round so the table shows steady-state
		// epochs, not the initial backlog fold.
		if _, err := sess.Run(core.ReviewerFunc(func(core.Pattern) core.Decision {
			return core.Investigate
		})); err != nil {
			return err
		}
		next := 0
		for e := 0; e < epochs; e++ {
			batch := make([]audit.Entry, perEpoch)
			for j := range batch {
				batch[j] = pool[(next+j)%len(pool)]
			}
			next += perEpoch
			if err := l.Append(batch...); err != nil {
				return err
			}
			start := time.Now()
			round, err := sess.Run(core.ReviewerFunc(func(core.Pattern) core.Decision {
				return core.Investigate
			}))
			if err != nil {
				return err
			}
			times[vi] = append(times[vi], time.Since(start))
			patterns[vi] = patternKeys(round.Patterns)
		}
	}
	if len(patterns[0]) != len(patterns[1]) {
		return fmt.Errorf("E15: epoch patterns diverge: %d vs %d", len(patterns[0]), len(patterns[1]))
	}
	for i := range patterns[0] {
		if patterns[0][i] != patterns[1][i] {
			return fmt.Errorf("E15: epoch pattern %d diverges: %s vs %s", i, patterns[0][i], patterns[1][i])
		}
	}
	fmt.Println("| epoch | incremental fpgrowth | apriori rescan |")
	fmt.Println("|---|---|---|")
	for e := 0; e < epochs; e++ {
		fmt.Printf("| %d | %s | %s |\n", e+1, times[0][e].Round(time.Microsecond), times[1][e].Round(time.Microsecond))
	}
	fmt.Printf("\nepoch patterns identical across engines: %d per round\n\n", len(patterns[0]))
	return nil
}
