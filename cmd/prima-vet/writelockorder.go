package main

import (
	"fmt"
	"go/ast"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// regenerateLockOrder rewrites cmd/prima-vet/lockorder.txt from the
// acquisition graph observed in the loaded program:
//
//   - the node set is every lock class acquired anywhere, plus every
//     class already pinned (manual pins for classes the analysis
//     cannot currently see stay put);
//   - the edges are the observed held->acquired pairs;
//   - the order is a topological sort, tie-broken by the existing
//     file's rank (then name) so regeneration is stable and minimal
//     against the checked-in order.
//
// Leading comment lines of the existing file are preserved verbatim.
// An acquisition cycle cannot be linearized: the classes involved are
// reported and nothing is written (run the lockorder analyzer to see
// the offending edges).
func regenerateLockOrder(prog *Program, stderr io.Writer) int {
	path := filepath.Join(prog.Loader.Root, "cmd", "prima-vet", "lockorder.txt")
	var header []string
	existing := lockOrderPins
	if data, err := os.ReadFile(path); err == nil {
		existing = string(data)
	}
	for _, line := range strings.Split(existing, "\n") {
		if t := strings.TrimSpace(line); t != "" && !strings.HasPrefix(t, "#") {
			break
		}
		header = append(header, line)
	}
	rank := parseLockOrder(existing)

	short := func(class string) string { return shortClass(class, prog.Loader.Module) }
	classes := make(map[string]bool, len(rank))
	for c := range rank {
		classes[c] = true
	}
	for _, n := range prog.CG.Nodes() {
		n := n
		ownBody(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if class, op := lockEvent(prog, n, call); class != "" && (op == "Lock" || op == "RLock") {
					classes[short(class)] = true
				}
			}
			return true
		})
	}

	adj := make(map[string]map[string]bool)
	indeg := make(map[string]int, len(classes))
	for c := range classes {
		indeg[c] = 0
	}
	for _, e := range collectLockEdges(prog) {
		from, to := short(e.from), short(e.to)
		if from == to || adj[from][to] {
			continue
		}
		if adj[from] == nil {
			adj[from] = make(map[string]bool)
		}
		adj[from][to] = true
		indeg[to]++
	}

	// Kahn's algorithm; the ready set always yields the class closest
	// to its existing pinned position (unpinned classes sort last, by
	// name).
	better := func(a, b string) bool {
		ra, aok := rank[a]
		rb, bok := rank[b]
		switch {
		case aok && bok && ra != rb:
			return ra < rb
		case aok != bok:
			return aok
		default:
			return a < b
		}
	}
	var ready, order []string
	for c := range classes {
		if indeg[c] == 0 {
			ready = append(ready, c)
		}
	}
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			if better(ready[i], ready[best]) {
				best = i
			}
		}
		c := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, c)
		for succ := range adj[c] {
			if indeg[succ]--; indeg[succ] == 0 {
				ready = append(ready, succ)
			}
		}
	}
	if len(order) != len(classes) {
		var stuck []string
		for c := range classes {
			if indeg[c] > 0 {
				stuck = append(stuck, c)
			}
		}
		sort.Strings(stuck)
		fmt.Fprintf(stderr, "prima-vet: acquisition graph has a cycle through %s; fix the deadlock before pinning an order\n",
			strings.Join(stuck, ", "))
		return 2
	}

	var sb strings.Builder
	for _, line := range header {
		sb.WriteString(line)
		sb.WriteString("\n")
	}
	for _, c := range order {
		sb.WriteString(c)
		sb.WriteString("\n")
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintf(stderr, "prima-vet: %v\n", err)
		return 2
	}
	return 0
}
