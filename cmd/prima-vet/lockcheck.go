package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// lockcheck enforces the repo's lock discipline on mutex-guarded
// structs (audit.Log, policy.Policy, minidb.Table/Database,
// consent.Store, hdb.Enforcer, ...):
//
//  1. a field is *guarded* when any method of the struct writes it
//     (fields only written at construction are immutable and exempt);
//  2. every exported method that reads or writes a guarded field must
//     acquire one of the struct's mutexes (Lock or RLock);
//  3. a method that locks without a matching defer must not return on
//     an early path while the lock is still held;
//  4. a struct that pairs its mutex with a field named "version"
//     promises cache invalidation on every mutation: any method that
//     writes another guarded field must also bump version (or
//     delegate to a method on the same receiver that does).
var lockcheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc:  "exported methods on mutex-guarded structs must hold the lock; no early return while locked",
	Run:  runLockcheck,
}

// mutexStruct describes one struct type with mutex fields.
type mutexStruct struct {
	name    string
	mutexes map[string]bool // field name -> is a mutex
	fields  map[string]bool // every other field name
	guarded map[string]bool // fields written by some method
}

func runLockcheck(p *Package) []Finding {
	structs := lockableStructs(p)
	if len(structs) == 0 {
		return nil
	}
	methods := methodsByType(p)
	var names []string
	for tname := range structs {
		names = append(names, tname)
	}
	sort.Strings(names)

	// Pass 1: a field is guarded when any method of the type writes it.
	for _, tname := range names {
		ms := structs[tname]
		for _, fd := range methods[tname] {
			recv := recvIdent(fd)
			if recv == nil {
				continue
			}
			markWrites(fd.Body, recv.Name, ms)
		}
	}

	// Pass 2: check exported methods.
	var out []Finding
	for _, tname := range names {
		ms := structs[tname]
		for _, fd := range methods[tname] {
			if !fd.Name.IsExported() {
				continue
			}
			recv := recvIdent(fd)
			if recv == nil {
				continue
			}
			out = append(out, checkMethod(p, fd, recv.Name, ms)...)
		}
	}

	// Pass 3: version discipline (rule 4). Checked on every method,
	// exported or not — the bump most often lives in an unexported
	// helper (addLocked), which is exactly the method that must not
	// forget it.
	for _, tname := range names {
		ms := structs[tname]
		if !ms.fields["version"] {
			continue
		}
		for _, fd := range methods[tname] {
			recv := recvIdent(fd)
			if recv == nil {
				continue
			}
			out = append(out, checkVersionBump(p, fd, recv.Name, ms)...)
		}
	}
	return out
}

// checkVersionBump applies rule 4 to one method of a versioned struct:
// if the method writes a guarded field other than "version", it must
// also write version, or call another method on the same receiver
// (delegation — the callee is checked on its own).
func checkVersionBump(p *Package, fd *ast.FuncDecl, recv string, ms *mutexStruct) []Finding {
	var firstWrite ast.Expr
	var firstName string
	bumpsVersion := false
	delegates := false

	mark := func(e ast.Expr) {
		name, ok := recvField(e, recv, ms)
		if !ok {
			return
		}
		if name == "version" {
			bumpsVersion = true
		} else if firstWrite == nil {
			firstWrite = e
			firstName = name
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		case *ast.CallExpr:
			if _, isLock := mutexCall(x, recv, ms); isLock {
				break
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				// An atomic counter bumps through a mutating method
				// call (p.version.Add(1), p.version.Store(n)) rather
				// than an assignment or IncDec. Read-only calls
				// (Load) do not count as a bump.
				if name, ok := recvField(sel.X, recv, ms); ok && name == "version" &&
					atomicWriteMethod(sel.Sel.Name) {
					bumpsVersion = true
					break
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv &&
					!ms.fields[sel.Sel.Name] && !ms.mutexes[sel.Sel.Name] {
					delegates = true
				}
			}
		}
		return true
	})

	if firstWrite != nil && !bumpsVersion && !delegates {
		return []Finding{{
			Pos:      p.Fset.Position(firstWrite.Pos()),
			Analyzer: "lockcheck",
			Message: fmt.Sprintf("%s.%s mutates guarded field %q without bumping version",
				ms.name, fd.Name.Name, firstName),
		}}
	}
	return nil
}

// lockableStructs finds struct types with direct sync.Mutex/RWMutex
// fields (named or embedded).
func lockableStructs(p *Package) map[string]*mutexStruct {
	out := make(map[string]*mutexStruct)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			ms := &mutexStruct{
				name:    ts.Name.Name,
				mutexes: make(map[string]bool),
				fields:  make(map[string]bool),
				guarded: make(map[string]bool),
			}
			for _, fld := range st.Fields.List {
				isMutex := isMutexType(p, fld.Type)
				if len(fld.Names) == 0 { // embedded
					if isMutex {
						ms.mutexes[embeddedName(fld.Type)] = true
					}
					continue
				}
				for _, nm := range fld.Names {
					if isMutex {
						ms.mutexes[nm.Name] = true
					} else {
						ms.fields[nm.Name] = true
					}
				}
			}
			if len(ms.mutexes) > 0 {
				out[ms.name] = ms
			}
			return true
		})
	}
	return out
}

// isMutexType recognizes sync.Mutex and sync.RWMutex (possibly
// pointer) by type information, falling back to the AST spelling.
func isMutexType(p *Package, t ast.Expr) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if tv, ok := p.Info.Types[t]; ok && tv.Type != nil {
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
			}
		}
		return false
	}
	if sel, ok := t.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sync" {
			return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
		}
	}
	return false
}

func embeddedName(t ast.Expr) string {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if sel, ok := t.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// methodsByType groups the package's methods by receiver type name.
func methodsByType(p *Package) map[string][]*ast.FuncDecl {
	out := make(map[string][]*ast.FuncDecl)
	for _, fd := range funcDecls(p) {
		if name := recvTypeName(fd); name != "" {
			out[name] = append(out[name], fd)
		}
	}
	return out
}

// markWrites records receiver fields assigned anywhere in the body.
func markWrites(body *ast.BlockStmt, recv string, ms *mutexStruct) {
	mark := func(e ast.Expr) {
		if name, ok := recvField(e, recv, ms); ok {
			ms.guarded[name] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				mark(x.X) // taking the address enables external writes
			}
		}
		return true
	})
}

// recvField matches recv.field (or recv.field[i], recv.field.x) and
// returns the outermost struct field name.
// atomicWriteMethod recognizes the mutating methods of the sync/atomic
// value types; rule 4 accepts them as version bumps.
func atomicWriteMethod(name string) bool {
	switch name {
	case "Add", "Store", "Swap", "CompareAndSwap", "Or", "And":
		return true
	}
	return false
}

func recvField(e ast.Expr, recv string, ms *mutexStruct) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && id.Name == recv {
				if ms.fields[x.Sel.Name] {
					return x.Sel.Name, true
				}
				return "", false
			}
			e = x.X
		default:
			return "", false
		}
	}
}

// checkMethod applies rules 2 and 3 to one exported method.
func checkMethod(p *Package, fd *ast.FuncDecl, recv string, ms *mutexStruct) []Finding {
	var out []Finding

	locksHeld := 0 // Lock/RLock calls seen (lexically)
	deferred := 0  // deferred Unlock/RUnlock registrations
	unlocked := 0  // explicit Unlock/RUnlock calls
	locksAny := false

	// guardedUse remembers the first guarded-field access.
	var guardedUse ast.Expr
	var guardedName string

	var earlyReturns []ast.Node

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // closures have their own discipline
		case *ast.DeferStmt:
			if name, ok := mutexCall(x.Call, recv, ms); ok && (name == "Unlock" || name == "RUnlock") {
				deferred++
			}
			return false
		case *ast.CallExpr:
			if name, ok := mutexCall(x, recv, ms); ok {
				switch name {
				case "Lock", "RLock":
					locksHeld++
					locksAny = true
				case "Unlock", "RUnlock":
					unlocked++
				}
			}
		case *ast.SelectorExpr:
			if name, ok := recvField(x, recv, ms); ok && ms.guarded[name] && guardedUse == nil {
				guardedUse = x
				guardedName = name
			}
		case *ast.ReturnStmt:
			if locksHeld > deferred+unlocked {
				earlyReturns = append(earlyReturns, x)
			}
		}
		return true
	})

	if guardedUse != nil && !locksAny {
		out = append(out, Finding{
			Pos:      p.Fset.Position(guardedUse.Pos()),
			Analyzer: "lockcheck",
			Message: fmt.Sprintf("%s.%s accesses guarded field %q without acquiring the lock",
				ms.name, fd.Name.Name, guardedName),
		})
	}
	for _, r := range earlyReturns {
		out = append(out, Finding{
			Pos:      p.Fset.Position(r.Pos()),
			Analyzer: "lockcheck",
			Message: fmt.Sprintf("%s.%s returns while holding the lock (no deferred unlock before this return)",
				ms.name, fd.Name.Name),
		})
	}
	return out
}

// mutexCall matches recv.mu.Lock / recv.mu.Unlock / embedded
// recv.Lock etc. and returns the method name.
func mutexCall(call *ast.CallExpr, recv string, ms *mutexStruct) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch name := sel.Sel.Name; name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		switch x := sel.X.(type) {
		case *ast.SelectorExpr: // recv.mu.Lock()
			if id, ok := x.X.(*ast.Ident); ok && id.Name == recv && ms.mutexes[x.Sel.Name] {
				return name, true
			}
		case *ast.Ident: // embedded: recv.Lock()
			if x.Name == recv && (ms.mutexes["Mutex"] || ms.mutexes["RWMutex"]) {
				return name, true
			}
		}
	}
	return "", false
}
