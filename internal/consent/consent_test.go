package consent

import (
	"testing"
	"time"

	"repro/internal/vocab"
)

var t0 = time.Date(2007, 3, 1, 8, 0, 0, 0, time.UTC)

func store(t *testing.T, defaultAllow bool) *Store {
	t.Helper()
	return NewStore(vocab.Sample(), defaultAllow)
}

func TestDefaultApplies(t *testing.T) {
	s := store(t, true)
	if !s.Allowed("p1", "referral", "treatment") {
		t.Error("default-allow store denied")
	}
	d := s.Check("p1", "referral", "treatment")
	if d.Matched || d.Choice != Unset {
		t.Errorf("decision = %+v", d)
	}
	s2 := store(t, false)
	if s2.Allowed("p1", "referral", "treatment") {
		t.Error("default-deny store allowed")
	}
}

func TestOptOutSpecific(t *testing.T) {
	s := store(t, true)
	if err := s.Set("p1", "psychiatry", "research", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	if s.Allowed("p1", "psychiatry", "research") {
		t.Error("opt-out ignored")
	}
	// Unrelated category/purpose untouched.
	if !s.Allowed("p1", "psychiatry", "treatment") {
		t.Error("opt-out leaked to another purpose")
	}
	if !s.Allowed("p1", "referral", "research") {
		t.Error("opt-out leaked to another category")
	}
	// Another patient untouched.
	if !s.Allowed("p2", "psychiatry", "research") {
		t.Error("opt-out leaked to another patient")
	}
}

func TestCompositeOptOutCoversSubtree(t *testing.T) {
	s := store(t, true)
	// Opting out of all mental_health covers psychiatry and counseling.
	if err := s.Set("p1", "mental_health", "", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	for _, cat := range []string{"psychiatry", "counseling", "mental_health"} {
		if s.Allowed("p1", cat, "treatment") {
			t.Errorf("composite opt-out missed %s", cat)
		}
	}
	if !s.Allowed("p1", "referral", "treatment") {
		t.Error("composite opt-out over-reached")
	}
}

func TestSpecificOverridesGeneral(t *testing.T) {
	s := store(t, true)
	// Blanket opt-out of research, but explicit opt-in for lab
	// results: the deeper record wins.
	if err := s.Set("p1", "", "research", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("p1", "lab_result", "research", OptIn, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if s.Allowed("p1", "psychiatry", "research") {
		t.Error("blanket opt-out ignored")
	}
	if !s.Allowed("p1", "lab_result", "research") {
		t.Error("specific opt-in did not override")
	}
	d := s.Check("p1", "lab_result", "research")
	if !d.Matched || d.Choice != OptIn {
		t.Errorf("decision = %+v", d)
	}
}

func TestRecencyBreaksTies(t *testing.T) {
	s := store(t, true)
	if err := s.Set("p1", "referral", "billing", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("p1", "referral", "billing", OptIn, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !s.Allowed("p1", "referral", "billing") {
		t.Error("later equally-specific record should win")
	}
	// Flip back.
	if err := s.Set("p1", "referral", "billing", OptOut, t0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if s.Allowed("p1", "referral", "billing") {
		t.Error("latest record should win")
	}
}

func TestRevoke(t *testing.T) {
	s := store(t, true)
	if err := s.Set("p1", "psychiatry", "", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	if n := s.Revoke("P1"); n != 1 {
		t.Errorf("revoked %d records", n)
	}
	if !s.Allowed("p1", "psychiatry", "treatment") {
		t.Error("revocation did not restore default")
	}
	if n := s.Revoke("p1"); n != 0 {
		t.Errorf("second revoke = %d", n)
	}
}

func TestSetErrors(t *testing.T) {
	s := store(t, true)
	if err := s.Set("", "a", "b", OptOut, t0); err == nil {
		t.Error("empty patient accepted")
	}
	if err := s.Set("p", "a", "b", Unset, t0); err == nil {
		t.Error("Unset choice accepted")
	}
}

func TestOptedOut(t *testing.T) {
	s := store(t, true)
	if err := s.Set("bob", "psychiatry", "", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("amy", "mental_health", "research", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("carol", "referral", "", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	got := s.OptedOut("psychiatry", "research")
	if len(got) != 2 || got[0] != "amy" || got[1] != "bob" {
		t.Errorf("OptedOut = %v", got)
	}
	got = s.OptedOut("psychiatry", "treatment")
	if len(got) != 1 || got[0] != "bob" {
		t.Errorf("OptedOut(treatment) = %v", got)
	}
	if got := s.OptedOut("address", "billing"); len(got) != 0 {
		t.Errorf("OptedOut(address) = %v", got)
	}
	pats := s.Patients()
	if len(pats) != 3 {
		t.Errorf("Patients = %v", pats)
	}
}

func TestChoiceString(t *testing.T) {
	if OptIn.String() != "opt-in" || OptOut.String() != "opt-out" || Unset.String() != "unset" {
		t.Error("choice strings wrong")
	}
}

func TestConsentExpiry(t *testing.T) {
	s := store(t, true)
	// Opt-out valid for thirty days.
	if err := s.SetWithExpiry("p1", "psychiatry", "", OptOut, t0, t0.Add(30*24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if s.CheckAt("p1", "psychiatry", "research", t0.Add(24*time.Hour)).Allowed {
		t.Error("opt-out ignored inside validity window")
	}
	if !s.CheckAt("p1", "psychiatry", "research", t0.Add(31*24*time.Hour)).Allowed {
		t.Error("expired opt-out still applied")
	}
	// The expired record also stops masking less-specific ones.
	if err := s.SetWithExpiry("p1", "", "", OptOut, t0, t0.Add(10*24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	d := s.CheckAt("p1", "referral", "treatment", t0.Add(11*24*time.Hour))
	if !d.Allowed || d.Matched {
		t.Errorf("expired blanket record applied: %+v", d)
	}
	// Invalid expiry rejected.
	if err := s.SetWithExpiry("p1", "a", "b", OptOut, t0, t0); err == nil {
		t.Error("expiry at record time accepted")
	}
	if err := s.SetWithExpiry("p1", "a", "b", OptOut, t0, t0.Add(-time.Hour)); err == nil {
		t.Error("expiry before record time accepted")
	}
}
