package hdb

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/consent"
	"repro/internal/minidb"
	"repro/internal/scenario"
	"repro/internal/vocab"
)

var t0 = time.Date(2007, 3, 1, 8, 0, 0, 0, time.UTC)

// fixture builds a clinical records table under full enforcement.
func fixture(t *testing.T) (*Enforcer, *consent.Store, *audit.Log) {
	t.Helper()
	db := minidb.NewDatabase()
	db.MustExec(`CREATE TABLE records (
		patient TEXT, address TEXT, prescription TEXT, referral TEXT, psychiatry TEXT
	)`)
	db.MustExec(`INSERT INTO records VALUES
		('p1', '1 Elm St',  'aspirin',  'cardio',  'none'),
		('p2', '2 Oak Ave', 'statins',  'derm',    'anxiety'),
		('p3', '3 Pine Rd', 'insulin',  'endo',    'none')`)
	v := vocab.Sample()
	ps := scenario.PolicyStore()
	cs := consent.NewStore(v, true)
	log := audit.NewLog("clinic")
	enf := New(db, ps, v, cs, log)
	step := 0
	enf.SetClock(func() time.Time { step++; return t0.Add(time.Duration(step) * time.Second) })
	if err := enf.RegisterTable(TableMapping{
		Table:      "records",
		PatientCol: "patient",
		Categories: map[string]string{
			"address":      "address",
			"prescription": "prescription",
			"referral":     "referral",
			"psychiatry":   "psychiatry",
		},
	}); err != nil {
		t.Fatal(err)
	}
	return enf, cs, log
}

func nurse() Principal { return Principal{User: "tim", Role: "nurse"} }
func clerk() Principal { return Principal{User: "bill", Role: "clerk"} }

func TestAllowedQueryPassesAndIsAudited(t *testing.T) {
	enf, _, log := fixture(t)
	res, acc, err := enf.Query(nurse(), "treatment", `SELECT patient, referral FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if len(acc.Masked) != 0 || len(acc.Denied) != 0 {
		t.Errorf("access = %+v", acc)
	}
	entries := log.Snapshot()
	if len(entries) != 1 {
		t.Fatalf("audit entries = %d", len(entries))
	}
	e := entries[0]
	if e.User != "tim" || e.Data != "referral" || e.Purpose != "treatment" ||
		e.Authorized != "nurse" || e.Op != audit.Allow || e.Status != audit.Regular {
		t.Errorf("audit entry = %+v", e)
	}
}

func TestDeniedOutputColumnIsMasked(t *testing.T) {
	enf, _, _ := fixture(t)
	// Nurses may read general clinical data for treatment but not
	// psychiatry: the psychiatry column comes back NULL.
	res, acc, err := enf.Query(nurse(), "treatment", `SELECT patient, referral, psychiatry FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if len(acc.Masked) != 1 || acc.Masked[0] != "psychiatry" {
		t.Fatalf("masked = %v", acc.Masked)
	}
	for _, row := range res.Rows {
		if !row[2].IsNull() {
			t.Errorf("psychiatry not masked: %v", row)
		}
		if row[1].IsNull() {
			t.Errorf("referral wrongly masked: %v", row)
		}
	}
	if res.Columns[2] != "psychiatry" {
		t.Errorf("masked column lost its name: %v", res.Columns)
	}
}

func TestFullyDeniedQueryFails(t *testing.T) {
	enf, _, log := fixture(t)
	// Clerk asking for psychiatry for billing: nothing permitted.
	_, _, err := enf.Query(clerk(), "billing", `SELECT psychiatry FROM records`)
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	// The denial is audited as a prohibition (op = 0).
	entries := log.Snapshot()
	if len(entries) != 1 || entries[0].Op != audit.Deny || entries[0].Status != audit.Regular {
		t.Errorf("denial audit = %+v", entries)
	}
}

func TestDeniedCategoryInWhereRejects(t *testing.T) {
	enf, _, _ := fixture(t)
	// Filtering on a forbidden category would leak it even if it is
	// not in the output.
	_, acc, err := enf.Query(nurse(), "treatment",
		`SELECT patient, referral FROM records WHERE psychiatry = 'anxiety'`)
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	if len(acc.Denied) != 1 || acc.Denied[0] != "psychiatry" {
		t.Errorf("denied = %v", acc.Denied)
	}
}

func TestBreakGlassBypassesAndAuditsException(t *testing.T) {
	enf, _, log := fixture(t)
	res, acc, err := enf.BreakGlass(nurse(), "treatment", "on-call psychiatrist unreachable",
		`SELECT patient, psychiatry FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || !acc.Exception {
		t.Fatalf("break-glass result: %d rows, %+v", len(res.Rows), acc)
	}
	for _, row := range res.Rows {
		if row[1].IsNull() {
			t.Error("break glass must not mask")
		}
	}
	entries := log.Snapshot()
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if e.Status != audit.Exception || e.Op != audit.Allow || e.Reason == "" {
		t.Errorf("exception audit = %+v", e)
	}
	// Reason is mandatory.
	if _, _, err := enf.BreakGlass(nurse(), "treatment", "  ", `SELECT psychiatry FROM records`); err == nil {
		t.Error("break glass without reason accepted")
	}
}

func TestConsentFiltersRows(t *testing.T) {
	enf, cs, _ := fixture(t)
	// p2 opts out of all clinical uses.
	if err := cs.Set("p2", "clinical", "", consent.OptOut, t0); err != nil {
		t.Fatal(err)
	}
	res, acc, err := enf.Query(nurse(), "treatment", `SELECT patient, referral FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if acc.OptedOut != 1 || len(res.Rows) != 2 {
		t.Fatalf("optedOut=%d rows=%d", acc.OptedOut, len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[0].AsText() == "p2" {
			t.Error("opted-out patient returned")
		}
	}
	// An address query for billing by the clerk is unaffected: p2's
	// opt-out is scoped to clinical data.
	res, _, err = enf.Query(clerk(), "billing", `SELECT patient, address FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("billing rows = %d", len(res.Rows))
	}
	// Break glass overrides consent (emergency care).
	res, _, err = enf.BreakGlass(nurse(), "treatment", "emergency", `SELECT patient, referral FROM records`)
	if err != nil || len(res.Rows) != 3 {
		t.Errorf("break-glass consent override: %d rows, %v", len(res.Rows), err)
	}
}

func TestStarExpansionMasksPerColumn(t *testing.T) {
	enf, _, _ := fixture(t)
	res, acc, err := enf.Query(nurse(), "treatment", `SELECT * FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 5 {
		t.Fatalf("columns = %v", res.Columns)
	}
	// address (demographic, not allowed to nurse for treatment) and
	// psychiatry are masked; prescription and referral visible.
	want := map[string]bool{"address": true, "psychiatry": true}
	if len(acc.Masked) != len(want) {
		t.Fatalf("masked = %v", acc.Masked)
	}
	for _, mcol := range acc.Masked {
		if !want[mcol] {
			t.Errorf("unexpected mask %q", mcol)
		}
	}
}

func TestPolicyChangeTakesEffect(t *testing.T) {
	enf, _, _ := fixture(t)
	p := Principal{User: "mark", Role: "nurse"}
	_, acc, err := enf.Query(p, "registration", `SELECT referral FROM records`)
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("pre-adoption: %v %v", acc, err)
	}
	// Adopt the §5 pattern: nurses may read referrals for
	// registration.
	enf.Policy().Add(scenario.RefinementPattern())
	res, _, err := enf.Query(p, "registration", `SELECT referral FROM records`)
	if err != nil || len(res.Rows) != 3 {
		t.Errorf("post-adoption: %v rows, %v", len(res.Rows), err)
	}
}

func TestValidationErrors(t *testing.T) {
	enf, _, _ := fixture(t)
	if _, _, err := enf.Query(Principal{}, "treatment", `SELECT referral FROM records`); err == nil {
		t.Error("empty principal accepted")
	}
	if _, _, err := enf.Query(nurse(), "", `SELECT referral FROM records`); err == nil {
		t.Error("missing purpose accepted")
	}
	if _, _, err := enf.Query(nurse(), "treatment", `DELETE FROM records`); err == nil {
		t.Error("non-SELECT accepted")
	}
	if _, _, err := enf.Query(nurse(), "treatment", `SELECT nonsense FROM`); err == nil {
		t.Error("bad SQL accepted")
	}
	if _, _, err := enf.Query(nurse(), "treatment", `SELECT x FROM unregistered`); err == nil {
		t.Error("unregistered table accepted")
	}
}

func TestRegisterTableValidation(t *testing.T) {
	enf, _, _ := fixture(t)
	if err := enf.RegisterTable(TableMapping{Table: "nosuch"}); err == nil {
		t.Error("missing table accepted")
	}
	if err := enf.RegisterTable(TableMapping{Table: "records", PatientCol: "nosuch"}); err == nil {
		t.Error("bad patient column accepted")
	}
	if err := enf.RegisterTable(TableMapping{
		Table: "records", Categories: map[string]string{"nosuch": "referral"},
	}); err == nil {
		t.Error("bad mapped column accepted")
	}
	if err := enf.RegisterTable(TableMapping{
		Table: "records", Categories: map[string]string{"referral": "not-a-category"},
	}); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestUncategorizedColumnsExempt(t *testing.T) {
	enf, _, _ := fixture(t)
	// patient is uncategorized: readable by anyone with a purpose.
	res, acc, err := enf.Query(clerk(), "billing", `SELECT patient FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || len(acc.Categories) != 0 {
		t.Errorf("rows=%d cats=%v", len(res.Rows), acc.Categories)
	}
}

func TestControlCenter(t *testing.T) {
	enf, cs, _ := fixture(t)
	cc := NewControlCenter(enf, cs)
	before := len(cc.Rules())
	r, err := cc.AddRule("data=lab_result & purpose=treatment & authorized=lab_tech")
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.Rules()) != before+1 {
		t.Error("rule not added")
	}
	if _, err := cc.AddRule("data=nonsense & purpose=treatment & authorized=nurse"); err == nil {
		t.Error("out-of-vocabulary value accepted")
	}
	if _, err := cc.AddRule("zzz=1 & purpose=treatment"); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := cc.AddRule("not a rule"); err == nil {
		t.Error("malformed rule accepted")
	}
	ok, err := cc.RemoveRule(r.Compact())
	if err != nil || !ok {
		t.Errorf("remove: %v %v", ok, err)
	}
	if ok, _ := cc.RemoveRule(r.Compact()); ok {
		t.Error("double remove succeeded")
	}
	if err := cc.SetConsent("p1", "psychiatry", "research", consent.OptOut, t0); err != nil {
		t.Error(err)
	}
	ccNoConsent := NewControlCenter(enf, nil)
	if err := ccNoConsent.SetConsent("p1", "a", "b", consent.OptOut, t0); err == nil {
		t.Error("consent without store accepted")
	}
}

func TestAuditEntriesPerCategory(t *testing.T) {
	enf, _, log := fixture(t)
	_, _, err := enf.BreakGlass(nurse(), "treatment", "why not",
		`SELECT address, prescription, psychiatry FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	entries := log.Snapshot()
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want one per category", len(entries))
	}
	cats := map[string]bool{}
	for _, e := range entries {
		cats[e.Data] = true
	}
	for _, want := range []string{"address", "prescription", "psychiatry"} {
		if !cats[want] {
			t.Errorf("missing audit for %s", want)
		}
	}
}

func TestEnforcerFeedsRefinementLoop(t *testing.T) {
	// Integration: repeated break-glass accesses produce an audit log
	// whose ToPolicy projection carries the informal practice.
	enf, _, log := fixture(t)
	for i, u := range []string{"mark", "tim", "bob", "mark", "tim"} {
		p := Principal{User: u, Role: "nurse"}
		_, _, err := enf.BreakGlass(p, "registration", "front desk backlog",
			`SELECT referral FROM records`)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	exceptions := log.Exceptions()
	if len(exceptions) != 5 {
		t.Fatalf("exceptions = %d", len(exceptions))
	}
	al := audit.ToPolicy("AL", exceptions)
	if al.Len() != 1 {
		t.Fatalf("AL rules = %d", al.Len())
	}
	if al.Rules()[0].Key() != strings.ToLower("authorized=nurse&data=referral&purpose=registration") {
		t.Errorf("AL rule = %s", al.Rules()[0].Key())
	}
}

func TestStrictVocabularyMode(t *testing.T) {
	enf, _, _ := fixture(t)
	// Lenient by default: arbitrary purposes flow through.
	if _, _, err := enf.BreakGlass(nurse(), "totally-new-purpose", "r", `SELECT referral FROM records`); err != nil {
		t.Fatalf("lenient mode rejected: %v", err)
	}
	enf.SetStrictVocabulary(true)
	if _, _, err := enf.Query(nurse(), "totally-new-purpose", `SELECT referral FROM records`); err == nil {
		t.Error("strict mode accepted unknown purpose")
	}
	if _, _, err := enf.Query(Principal{User: "x", Role: "wizard"}, "treatment", `SELECT referral FROM records`); err == nil {
		t.Error("strict mode accepted unknown role")
	}
	// Known values still pass (and joins are still rejected).
	if _, _, err := enf.Query(nurse(), "treatment", `SELECT referral FROM records`); err != nil {
		t.Errorf("strict mode rejected valid query: %v", err)
	}
	if _, _, err := enf.Query(nurse(), "treatment",
		`SELECT r.referral FROM records r JOIN records s ON r.patient = s.patient`); err == nil {
		t.Error("join under enforcement accepted")
	}
	enf.SetStrictVocabulary(false)
	if _, _, err := enf.BreakGlass(nurse(), "totally-new-purpose", "r", `SELECT referral FROM records`); err != nil {
		t.Errorf("lenient mode restore failed: %v", err)
	}
}

func TestDeniedCategoryInOrderByAndGroupByRejects(t *testing.T) {
	enf, _, _ := fixture(t)
	// Sorting or grouping by a forbidden category leaks its ordering
	// even when it is not projected.
	if _, _, err := enf.Query(nurse(), "treatment",
		`SELECT patient FROM records ORDER BY psychiatry`); !errors.Is(err, ErrDenied) {
		t.Errorf("ORDER BY leak: %v", err)
	}
	if _, _, err := enf.Query(nurse(), "treatment",
		`SELECT COUNT(*) FROM records GROUP BY psychiatry`); !errors.Is(err, ErrDenied) {
		t.Errorf("GROUP BY leak: %v", err)
	}
	if _, _, err := enf.Query(nurse(), "treatment",
		`SELECT COUNT(*) FROM records HAVING MIN(psychiatry) = 'none'`); !errors.Is(err, ErrDenied) {
		t.Errorf("HAVING leak: %v", err)
	}
}
