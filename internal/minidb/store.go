package minidb

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/storage"
)

// Pluggable per-table storage. A table is either a plain in-memory
// heap (store == nil, the default) or mirrored into a durable file
// backend: every mutation is written ahead to a group-commit WAL and
// applied to a paged B+tree keyed by rowid; a checkpoint makes the
// tree durable (shadow-paged, torn-write safe) and truncates the WAL
// behind it. Recovery loads the checkpointed tree and replays the WAL
// tail — inserts and updates are idempotent Puts and deletes
// idempotent Deletes, so stale frames from a crash between checkpoint
// and truncation converge to the same state.

// rowStore is the durability seam behind a Table. All methods are
// called with the table lock held, so implementations see mutations
// in statement order and need no locking of their own.
type rowStore interface {
	insert(id uint64, row []Value) error
	updateRows(ids []uint64, rows [][]Value) error
	deleteRows(ids []uint64) error
	sync() error       // durability barrier: fsync the WAL tail
	checkpoint() error // fold the WAL into the tree, truncate
	close() error
}

// StorageOptions configures a database's durable backend.
type StorageOptions struct {
	// Dir is the root directory; each file-backed table lives in a
	// subdirectory named after it.
	Dir string
	// CommitInterval is the WAL group-commit window per table.
	CommitInterval time.Duration
	// SegmentBytes is the WAL segment roll size.
	SegmentBytes int64
	// PoolPages is the per-table buffer-pool budget in pages.
	PoolPages int
	// CheckpointEvery folds the WAL into the tree after this many
	// mutations (default 4096; negative disables auto-checkpoints).
	CheckpointEvery int
	// NoSync skips fsyncs (benchmark baseline only).
	NoSync bool
	// OpenFile substitutes the file implementation (crash injection).
	OpenFile storage.OpenFileFunc
}

func (o StorageOptions) withDefaults() StorageOptions {
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 4096
	}
	return o
}

// storageNames are the identifiers accepted by CREATE TABLE ... STORAGE.
const (
	storageMemory = "memory"
	storageFile   = "file"
)

// WAL record opcodes.
const (
	rowOpInsert = 1
	rowOpUpdate = 2
	rowOpDelete = 3
)

const (
	schemaKey   = "s"
	rowKeyLen   = 9 // 'r' + big-endian rowid
	storeMagic  = "MDB1"
	storeAppLen = 4 + 8 + 8 // magic, nextID, ckptLSN
)

func rowIDKey(id uint64) []byte {
	k := make([]byte, rowKeyLen)
	k[0] = 'r'
	binary.BigEndian.PutUint64(k[1:], id)
	return k
}

// encodeRow serializes a row: uvarint column count, then per value a
// kind byte and payload. Timestamps keep instant and zone offset so a
// reloaded value renders identically.
func encodeRow(dst []byte, row []Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindNull:
		case KindBool:
			if v.b {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		case KindInt:
			dst = binary.AppendVarint(dst, v.i)
		case KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
		case KindText:
			dst = binary.AppendUvarint(dst, uint64(len(v.s)))
			dst = append(dst, v.s...)
		case KindTime:
			dst = binary.AppendVarint(dst, v.t.UnixNano())
			_, off := v.t.Zone()
			dst = binary.AppendVarint(dst, int64(off))
		}
	}
	return dst
}

func decodeRow(b []byte) ([]Value, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, fmt.Errorf("minidb: short row record")
	}
	b = b[w:]
	row := make([]Value, n)
	for i := range row {
		if len(b) == 0 {
			return nil, fmt.Errorf("minidb: short row record")
		}
		kind := Kind(b[0])
		b = b[1:]
		switch kind {
		case KindNull:
			row[i] = Null()
		case KindBool:
			if len(b) == 0 {
				return nil, fmt.Errorf("minidb: short row record")
			}
			row[i] = Bool(b[0] != 0)
			b = b[1:]
		case KindInt:
			v, w := binary.Varint(b)
			if w <= 0 {
				return nil, fmt.Errorf("minidb: short row record")
			}
			row[i] = Int(v)
			b = b[w:]
		case KindFloat:
			if len(b) < 8 {
				return nil, fmt.Errorf("minidb: short row record")
			}
			row[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case KindText:
			n, w := binary.Uvarint(b)
			if w <= 0 || uint64(len(b)-w) < n {
				return nil, fmt.Errorf("minidb: short row record")
			}
			row[i] = Text(string(b[w : w+int(n)]))
			b = b[w+int(n):]
		case KindTime:
			ns, w1 := binary.Varint(b)
			if w1 <= 0 {
				return nil, fmt.Errorf("minidb: short row record")
			}
			b = b[w1:]
			off, w2 := binary.Varint(b)
			if w2 <= 0 {
				return nil, fmt.Errorf("minidb: short row record")
			}
			b = b[w2:]
			t := time.Unix(0, ns)
			if off == 0 {
				t = t.UTC()
			} else {
				t = t.In(time.FixedZone("", int(off)))
			}
			row[i] = Time(t)
		default:
			return nil, fmt.Errorf("minidb: unknown value kind %d in row record", kind)
		}
	}
	return row, nil
}

func encodeSchema(cols []Column) []byte {
	b := binary.AppendUvarint(nil, uint64(len(cols)))
	for _, c := range cols {
		b = binary.AppendUvarint(b, uint64(len(c.Name)))
		b = append(b, c.Name...)
		b = append(b, byte(c.Type))
	}
	return b
}

func decodeSchema(b []byte) ([]Column, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, fmt.Errorf("minidb: short schema record")
	}
	b = b[w:]
	cols := make([]Column, n)
	for i := range cols {
		ln, w := binary.Uvarint(b)
		if w <= 0 || uint64(len(b)-w) < ln+1 {
			return nil, fmt.Errorf("minidb: short schema record")
		}
		cols[i].Name = string(b[w : w+int(ln)])
		cols[i].Type = ColumnType(b[w+int(ln)])
		b = b[w+int(ln)+1:]
	}
	return cols, nil
}

// fileStore is the durable backend of one table.
type fileStore struct {
	dir     string
	st      *storage.Store
	w       *storage.WAL
	buf     []byte
	recs    int // mutations since the last checkpoint
	every   int // auto-checkpoint threshold; <0 disables
	nextID  uint64
	ckptLSN uint64 // highest WAL LSN covered by the checkpointed tree
}

// appendWAL writes one record ahead of the tree mutation.
func (f *fileStore) appendWAL(op byte, id uint64, row []Value) error {
	f.buf = append(f.buf[:0], op)
	f.buf = binary.AppendUvarint(f.buf, id)
	if row != nil {
		f.buf = encodeRow(f.buf, row)
	}
	_, err := f.w.Append(f.buf)
	return err
}

func (f *fileStore) bump() error {
	f.recs++
	if f.every > 0 && f.recs >= f.every {
		return f.checkpoint()
	}
	return nil
}

func (f *fileStore) insert(id uint64, row []Value) error {
	if err := f.appendWAL(rowOpInsert, id, row); err != nil {
		return err
	}
	if err := f.st.Put(rowIDKey(id), encodeRow(nil, row)); err != nil {
		return err
	}
	if id >= f.nextID {
		f.nextID = id + 1
	}
	return f.bump()
}

func (f *fileStore) updateRows(ids []uint64, rows [][]Value) error {
	for i, id := range ids {
		if err := f.appendWAL(rowOpUpdate, id, rows[i]); err != nil {
			return err
		}
		if err := f.st.Put(rowIDKey(id), encodeRow(nil, rows[i])); err != nil {
			return err
		}
		f.recs++
	}
	if f.every > 0 && f.recs >= f.every {
		return f.checkpoint()
	}
	return nil
}

func (f *fileStore) deleteRows(ids []uint64) error {
	for _, id := range ids {
		if err := f.appendWAL(rowOpDelete, id, nil); err != nil {
			return err
		}
		if _, err := f.st.Delete(rowIDKey(id)); err != nil {
			return err
		}
		f.recs++
	}
	if f.every > 0 && f.recs >= f.every {
		return f.checkpoint()
	}
	return nil
}

func (f *fileStore) sync() error { return f.w.Sync() }

// checkpoint makes the tree durable and truncates the WAL behind it.
// The cut LSN is captured before the store checkpoint: every WAL
// record at or below it is already applied to the tree (mutations
// write ahead under the table lock), so nothing covered is lost. The
// cut is persisted in the meta blob; recovery skips replaying records
// at or below it, because re-applying an old record over the newer
// checkpointed tree would regress values the tree already carries.
func (f *fileStore) checkpoint() error {
	lsnCut := f.w.LastLSN()
	app := make([]byte, storeAppLen)
	copy(app, storeMagic)
	binary.LittleEndian.PutUint64(app[4:], f.nextID)
	binary.LittleEndian.PutUint64(app[12:], lsnCut)
	if err := f.st.Checkpoint(app); err != nil {
		return err
	}
	f.ckptLSN = lsnCut
	if err := f.w.TruncateBefore(lsnCut + 1); err != nil {
		return err
	}
	f.recs = 0
	return nil
}

func (f *fileStore) close() error {
	err := f.w.Close()
	if e := f.st.Close(); err == nil {
		err = e
	}
	return err
}

// openFileStore opens (creating if needed) the durable backend for
// one table and returns the recovered rows in rowid order, the stored
// schema (nil on first creation), and the store.
func openFileStore(dir string, cols []Column, o StorageOptions) (*fileStore, [][]Value, []uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, err
	}
	st, err := storage.OpenStore(filepath.Join(dir, "rows.db"), storage.Options{
		PoolPages: o.PoolPages,
		OpenFile:  o.OpenFile,
		NoSync:    o.NoSync,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	f := &fileStore{dir: dir, st: st, every: o.CheckpointEvery, nextID: 1}
	fail := func(err error) (*fileStore, [][]Value, []uint64, error) {
		if f.w != nil {
			f.w.Close()
		}
		st.Close()
		return nil, nil, nil, err
	}
	if app := st.App(); len(app) > 0 {
		if len(app) != storeAppLen || string(app[:4]) != storeMagic {
			return fail(fmt.Errorf("minidb: unrecognized table meta blob (%d bytes)", len(app)))
		}
		f.nextID = binary.LittleEndian.Uint64(app[4:])
		f.ckptLSN = binary.LittleEndian.Uint64(app[12:])
	}

	// Schema: verify against the stored definition, or persist ours on
	// first creation (made durable by the creation checkpoint below).
	fresh := false
	if sv, ok, err := st.Get([]byte(schemaKey)); err != nil {
		return fail(err)
	} else if ok {
		stored, err := decodeSchema(sv)
		if err != nil {
			return fail(err)
		}
		if cols != nil && !sameSchema(stored, cols) {
			return fail(fmt.Errorf("minidb: stored schema for %s does not match CREATE TABLE", filepath.Base(dir)))
		}
		cols = stored
	} else {
		if cols == nil {
			return fail(fmt.Errorf("minidb: %s holds no schema", dir))
		}
		if err := st.Put([]byte(schemaKey), encodeSchema(cols)); err != nil {
			return fail(err)
		}
		fresh = true
	}

	// Checkpointed rows, then the WAL tail on top (idempotent).
	byID := make(map[uint64][]Value)
	var decErr error
	err = st.Scan([]byte{'r'}, []byte{'r' + 1}, func(k, v []byte) bool {
		if len(k) != rowKeyLen {
			decErr = fmt.Errorf("minidb: malformed row key (%d bytes)", len(k))
			return false
		}
		row, err := decodeRow(v)
		if err != nil {
			decErr = err
			return false
		}
		byID[binary.BigEndian.Uint64(k[1:])] = row
		return true
	})
	if err == nil {
		err = decErr
	}
	if err != nil {
		return fail(err)
	}

	// Replay the WAL tail beyond the checkpoint cut, applying each
	// record to the tree as well so the recovery checkpoint below
	// persists it. Records at or below the cut are already inside the
	// checkpointed tree — re-applying them would overwrite values the
	// tree carries from records the crash lost out of the WAL.
	walDir := filepath.Join(dir, "wal")
	replayed := 0
	wst, err := storage.Replay(walDir, o.OpenFile, func(lsn uint64, p []byte) error {
		if lsn <= f.ckptLSN {
			return nil
		}
		if len(p) < 2 {
			return fmt.Errorf("minidb: short WAL record")
		}
		op := p[0]
		id, w := binary.Uvarint(p[1:])
		if w <= 0 {
			return fmt.Errorf("minidb: short WAL record")
		}
		switch op {
		case rowOpInsert, rowOpUpdate:
			row, err := decodeRow(p[1+w:])
			if err != nil {
				return err
			}
			byID[id] = row
			if err := st.Put(rowIDKey(id), encodeRow(nil, row)); err != nil {
				return err
			}
		case rowOpDelete:
			delete(byID, id)
			if _, err := st.Delete(rowIDKey(id)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("minidb: unknown WAL opcode %d", op)
		}
		if id >= f.nextID {
			f.nextID = id + 1
		}
		replayed++
		return nil
	})
	if err != nil {
		return fail(err)
	}

	// A checkpoint can outrun WAL durability (its cut counts assigned
	// LSNs, some of which a crash may have kept from disk). New records
	// would then reuse LSNs below the cut and be skipped by the next
	// recovery — so clear the WAL and restart its numbering from zero;
	// the reset cut is persisted by the recovery checkpoint below.
	cleared := false
	if f.ckptLSN > 0 && wst.LastLSN < f.ckptLSN {
		if err := os.RemoveAll(walDir); err != nil {
			return fail(err)
		}
		cleared = true
	}

	f.w, err = storage.OpenWAL(walDir, storage.WALOptions{
		SegmentBytes:   o.SegmentBytes,
		CommitInterval: o.CommitInterval,
		NoSync:         o.NoSync,
		OpenFile:       o.OpenFile,
	})
	if err != nil {
		return fail(err)
	}

	ids := make([]uint64, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rows := make([][]Value, len(ids))
	for i, id := range ids {
		rows[i] = byID[id]
		if len(rows[i]) != len(cols) {
			return fail(fmt.Errorf("minidb: recovered row has %d values, schema has %d columns", len(rows[i]), len(cols)))
		}
	}

	if fresh || cleared || replayed > 0 {
		// Checkpoint on creation (the schema must survive a crash with
		// no data yet), after recovery (the replayed tail is already
		// applied to the tree above; fold it in and shrink the WAL so
		// recovery work never accumulates across restarts), and after a
		// WAL reset (the zeroed cut must become durable).
		f.recs = replayed
		if err := f.checkpoint(); err != nil {
			return fail(err)
		}
	}
	return f, rows, ids, nil
}

func sameSchema(a, b []Column) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i].Name, b[i].Name) || a[i].Type != b[i].Type {
			return false
		}
	}
	return true
}

// AttachStorage enables the durable file backend for this database:
// tables created with STORAGE file persist under o.Dir, and existing
// file-backed tables found there are reopened (rows recovered from
// their checkpointed tree plus WAL tail). Call before creating file
// tables; plain in-memory tables are unaffected.
func (db *Database) AttachStorage(o StorageOptions) error {
	if o.Dir == "" {
		return fmt.Errorf("minidb: AttachStorage needs a directory")
	}
	o = o.withDefaults()
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return err
	}
	db.mu.Lock()
	db.storage = &o
	db.mu.Unlock()

	des, err := os.ReadDir(o.Dir)
	if err != nil {
		return err
	}
	for _, de := range des {
		if !de.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(o.Dir, de.Name(), "rows.db")); err != nil {
			continue
		}
		if _, err := db.reopenTable(de.Name(), o); err != nil {
			return fmt.Errorf("minidb: reopen table %q: %w", de.Name(), err)
		}
	}
	return nil
}

// OpenDatabase creates a database with the durable backend attached,
// recovering any file-backed tables already present in o.Dir.
func OpenDatabase(o StorageOptions) (*Database, error) {
	db := NewDatabase()
	if err := db.AttachStorage(o); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *Database) reopenTable(name string, o StorageOptions) (*Table, error) {
	dir := filepath.Join(o.Dir, name)
	fs, rows, ids, err := openFileStore(dir, nil, o)
	if err != nil {
		// A store that never reached its creation checkpoint is the
		// wreckage of a crashed CREATE TABLE: nothing durable was ever
		// promised, so clear it instead of failing recovery.
		if aborted, aerr := abortedCreation(dir, o); aerr == nil && aborted {
			return nil, os.RemoveAll(dir)
		}
		return nil, err
	}
	cols, err := decodeSchemaOf(fs)
	if err != nil {
		fs.close()
		return nil, err
	}
	t, err := newTable(name, cols)
	if err != nil {
		fs.close()
		return nil, err
	}
	t.rows, t.ids, t.store, t.nextID = rows, ids, fs, fs.nextID
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[key]; exists {
		fs.close()
		return nil, fmt.Errorf("minidb: table %q already exists", name)
	}
	db.tables[key] = t
	db.schemaGen.Add(1)
	return t, nil
}

// abortedCreation reports whether dir holds a store that never reached
// its creation checkpoint: version 0 with an empty WAL. CREATE TABLE
// checkpoints before returning, so such a store committed nothing —
// it is the wreckage of a crashed creation, safe to discard.
func abortedCreation(dir string, o StorageOptions) (bool, error) {
	st, err := storage.OpenStore(filepath.Join(dir, "rows.db"), storage.Options{OpenFile: o.OpenFile, NoSync: true})
	if err != nil {
		return false, err
	}
	v := st.Version()
	st.Close()
	if v != 0 {
		return false, nil
	}
	wst, err := storage.Replay(filepath.Join(dir, "wal"), o.OpenFile, func(uint64, []byte) error { return nil })
	if err != nil {
		return false, err
	}
	return wst.Records == 0, nil
}

func decodeSchemaOf(f *fileStore) ([]Column, error) {
	sv, ok, err := f.st.Get([]byte(schemaKey))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("minidb: table store holds no schema")
	}
	return decodeSchema(sv)
}

// CreateTableStorage creates a table on the named backend: "" or
// "memory" for the in-memory heap, "file" for the durable backend
// (requires AttachStorage).
func (db *Database) CreateTableStorage(name string, cols []Column, backend string) (*Table, error) {
	switch strings.ToLower(backend) {
	case "", storageMemory:
		return db.CreateTable(name, cols)
	case storageFile:
	default:
		return nil, fmt.Errorf("minidb: unknown storage backend %q", backend)
	}
	db.mu.RLock()
	o := db.storage
	db.mu.RUnlock()
	if o == nil {
		return nil, fmt.Errorf("minidb: STORAGE file requires AttachStorage")
	}
	t, err := newTable(name, cols)
	if err != nil {
		return nil, err
	}
	fs, rows, ids, err := openFileStore(filepath.Join(o.Dir, strings.ToLower(name)), cols, *o)
	if err != nil {
		return nil, err
	}
	t.rows, t.ids, t.store, t.nextID = rows, ids, fs, fs.nextID
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[key]; exists {
		fs.close()
		return nil, fmt.Errorf("minidb: table %q already exists", name)
	}
	db.tables[key] = t
	db.schemaGen.Add(1)
	return t, nil
}

// Sync blocks until every mutation so far on file-backed tables is
// durable in their WALs (one group-commit fsync per table, shared by
// all pending records).
func (db *Database) Sync() error {
	for _, t := range db.snapshotTables() {
		t.mu.Lock()
		var err error
		if t.store != nil {
			err = t.store.sync()
		}
		t.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint folds every file-backed table's WAL into its tree and
// truncates; recovery afterwards reads the tree alone.
func (db *Database) Checkpoint() error {
	for _, t := range db.snapshotTables() {
		t.mu.Lock()
		var err error
		if t.store != nil {
			err = t.store.checkpoint()
		}
		t.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close releases every file-backed table's store after a final WAL
// sync. The database remains usable for in-memory tables only.
func (db *Database) Close() error {
	var first error
	for _, t := range db.snapshotTables() {
		t.mu.Lock()
		if t.store != nil {
			if err := t.store.sync(); err != nil && first == nil {
				first = err
			}
			if err := t.store.close(); err != nil && first == nil {
				first = err
			}
			t.store = nil
		}
		t.mu.Unlock()
	}
	return first
}

func (db *Database) snapshotTables() []*Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
