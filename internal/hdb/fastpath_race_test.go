package hdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/consent"
	"repro/internal/policy"
)

// The concurrency suite exercises the RCU fast path under -race:
// readers on Query/BreakGlass while writers churn the policy store,
// the vocabulary, and the consent registry. Each reader carries a
// tear detector — an invariant that holds for every individually
// consistent snapshot but breaks if a query mixes decision state from
// two generations.

func churnRule() policy.Rule {
	return policy.MustRule(
		policy.T("data", "payment_history"),
		policy.T("purpose", "billing"),
		policy.T("authorized", "manager"),
	)
}

func TestConcurrentEnforcement(t *testing.T) {
	s := newSide(t, true)
	s.enf.SetClock(time.Now) // stepping clock is not goroutine-safe

	const (
		readers = 4
		iters   = 300
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Mutator: flip an unrelated policy rule. The queried categories
	// (referral, psychiatry) keep their verdicts through every flip.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			r := churnRule()
			s.ps.Add(r)
			s.ps.Remove(r)
		}
	}()

	// Mutator: grow the vocabulary (generation bumps force snapshot
	// rebuilds; new leaves never intersect the queried categories).
	// The value set cycles so the hierarchy stays small — snapshot
	// rebuilds are O(vocabulary), and unbounded growth would turn the
	// reader loops quadratic (duplicate adds fail without a bump).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			_ = s.v.Hierarchy("data").Add("financial", fmt.Sprintf("acct%d", i%32))
		}
	}()

	// Mutator: flip consent for p2 on a queried category. Readers
	// tolerate either state via the rows/OptedOut invariant.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = s.cs.Set("p2", "referral", "", consent.OptOut, t0)
			s.cs.Revoke("p2")
		}
	}()

	// Monitor: snapshot versions must be monotone — an RCU publish
	// can lag the live counters but never regress.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var pver, vgen, cgen uint64
		for !stop.Load() {
			sn := s.enf.snap.Load()
			if sn == nil {
				continue
			}
			if sn.pver < pver || sn.vgen < vgen || sn.cgen < cgen {
				t.Errorf("snapshot regressed: (%d,%d,%d) after (%d,%d,%d)",
					sn.pver, sn.vgen, sn.cgen, pver, vgen, cgen)
				return
			}
			pver, vgen, cgen = sn.pver, sn.vgen, sn.cgen
		}
	}()

	// Readers: enforced query with two tear detectors. Masked must be
	// exactly [psychiatry] on every iteration (the churned rule and
	// vocabulary leaves never affect it), and the row count must agree
	// with the consent exclusion reported by the same Access — a torn
	// snapshot/plan mix breaks one or the other.
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, acc, err := s.enf.Query(nurse(), "treatment",
					`SELECT patient, referral, psychiatry FROM records`)
				if err != nil {
					errs <- fmt.Errorf("query: %w", err)
					return
				}
				if len(acc.Masked) != 1 || acc.Masked[0] != "psychiatry" {
					errs <- fmt.Errorf("masked = %v", acc.Masked)
					return
				}
				if len(res.Rows) != 3-acc.OptedOut {
					errs <- fmt.Errorf("rows = %d with optedOut = %d", len(res.Rows), acc.OptedOut)
					return
				}
			}
			errs <- nil
		}()
	}

	// Break-glass reader: bypasses the decision layer, so it must see
	// all rows unmasked regardless of churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			res, acc, err := s.enf.BreakGlass(nurse(), "treatment", "drill",
				`SELECT patient, psychiatry FROM records`)
			if err != nil {
				errs <- fmt.Errorf("breakglass: %w", err)
				return
			}
			if len(res.Rows) != 3 || !acc.Exception || len(acc.Masked) != 0 {
				errs <- fmt.Errorf("breakglass rows = %d, access = %+v", len(res.Rows), acc)
				return
			}
		}
		errs <- nil
	}()

	for i := 0; i < readers+1; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiesced: the final outcome must match the final (restored)
	// state — original policy verdicts, no consent exclusions.
	res, acc, err := s.enf.Query(nurse(), "treatment",
		`SELECT patient, referral, psychiatry FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || acc.OptedOut != 0 ||
		len(acc.Masked) != 1 || acc.Masked[0] != "psychiatry" {
		t.Errorf("post-quiesce rows = %d, access = %+v", len(res.Rows), acc)
	}
}

// TestConcurrentPlanAndFlush races plan compilation, cache flushes,
// and fast-path toggling against readers.
func TestConcurrentPlanAndFlush(t *testing.T) {
	s := newSide(t, true)
	s.enf.SetClock(time.Now)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			s.enf.FlushPlans()
			s.enf.SetFastPath(false)
			s.enf.SetFastPath(true)
		}
	}()

	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sql := fmt.Sprintf(`SELECT patient, referral FROM records LIMIT %d`, i%5+1)
				res, _, err := s.enf.Query(nurse(), "treatment", sql)
				if err != nil {
					errs <- err
					return
				}
				if want := i%5 + 1; len(res.Rows) != min(want, 3) {
					errs <- fmt.Errorf("rows = %d for limit %d", len(res.Rows), want)
					return
				}
			}
			errs <- nil
		}(r)
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	stop.Store(true)
	wg.Wait()
}
