package vocab

import (
	"fmt"
	"sync"
	"testing"
)

// TestIntervalsMatchGroundSets pins the interval numbering against
// GroundSet on the paper vocabulary: every registered value's span
// width equals its ground-set cardinality, containment mirrors
// Subsumes, and overlap mirrors the Definition 4 equivalence.
func TestIntervalsMatchGroundSets(t *testing.T) {
	v := Sample()
	for _, attr := range v.Attributes() {
		h := v.Hierarchy(attr)
		ix := h.Intervals()
		if ix.LeafCount() != len(h.Leaves()) {
			t.Fatalf("%s: leaf count %d, want %d", attr, ix.LeafCount(), len(h.Leaves()))
		}
		values := h.Values()
		for _, val := range values {
			s, ok := ix.Interval(val)
			if !ok {
				t.Fatalf("%s: no interval for %q", attr, val)
			}
			if got, want := s.Len(), len(h.GroundSet(val)); got != want {
				t.Errorf("%s %q: span width %d, want ground-set size %d", attr, val, got, want)
			}
		}
		for _, a := range values {
			sa, _ := ix.Interval(a)
			for _, b := range values {
				sb, _ := ix.Interval(b)
				if got, want := sa.Contains(sb), h.Subsumes(a, b); got != want {
					t.Errorf("%s: Contains(%q,%q) = %v, Subsumes = %v", attr, a, b, got, want)
				}
				if got, want := sa.Overlaps(sb), v.Equivalent(attr, a, b); got != want {
					t.Errorf("%s: Overlaps(%q,%q) = %v, Equivalent = %v", attr, a, b, got, want)
				}
			}
		}
	}
}

func TestIntervalUnknownValue(t *testing.T) {
	v := Sample()
	ix := v.Hierarchy("data").Intervals()
	if _, ok := ix.Interval("xray"); ok {
		t.Fatal("unknown value got an interval")
	}
	if s, ok := ix.Interval("  Clinical "); !ok || s.Empty() {
		t.Fatalf("normalized lookup failed: %v %v", s, ok)
	}
}

// TestIntervalsInvalidation: a mutation yields a fresh snapshot with
// the new generation while the old snapshot stays internally valid.
func TestIntervalsInvalidation(t *testing.T) {
	v := New()
	h := v.MustAttribute("data")
	h.MustAdd("", "root")
	h.MustAdd("root", "a")
	old := h.Intervals()
	if old.LeafCount() != 1 {
		t.Fatalf("leafCount = %d", old.LeafCount())
	}
	if again := h.Intervals(); again != old {
		t.Fatal("unchanged vocabulary rebuilt the snapshot")
	}
	h.MustAdd("root", "b")
	fresh := h.Intervals()
	if fresh == old {
		t.Fatal("mutation did not invalidate the snapshot")
	}
	if fresh.Generation() <= old.Generation() {
		t.Fatalf("generation did not advance: %d -> %d", old.Generation(), fresh.Generation())
	}
	if fresh.LeafCount() != 2 {
		t.Fatalf("leafCount = %d after add", fresh.LeafCount())
	}
	if s, _ := fresh.Interval("root"); s.Len() != 2 {
		t.Fatalf("root span = %v", s)
	}
	// The old snapshot is immutable: its numbers still describe the
	// pre-mutation hierarchy.
	if s, _ := old.Interval("root"); s.Len() != 1 {
		t.Fatalf("published snapshot mutated: %v", s)
	}
}

// TestIntervalDisjointSiblings: sibling subtrees partition their
// parent's interval with no gaps or overlaps.
func TestIntervalDisjointSiblings(t *testing.T) {
	v := Sample()
	h := v.Hierarchy("data")
	ix := h.Intervals()
	var check func(n *Node)
	check = func(n *Node) {
		if len(n.Children()) == 0 {
			return
		}
		parent, _ := ix.Interval(n.Value())
		at := parent.Lo
		for _, c := range n.Children() {
			cs, _ := ix.Interval(c.Value())
			if cs.Lo != at {
				t.Errorf("child %q starts at %d, want %d", c.Value(), cs.Lo, at)
			}
			at = cs.Hi
			check(c)
		}
		if at != parent.Hi {
			t.Errorf("children of %q end at %d, want %d", n.Value(), at, parent.Hi)
		}
	}
	for _, r := range h.Roots() {
		check(r)
	}
}

// TestIntervalsConcurrent exercises the publish discipline under the
// race detector: readers load snapshots while a writer grows the
// hierarchy; every snapshot must be internally consistent (root span
// equals leaf count over a single-root hierarchy).
func TestIntervalsConcurrent(t *testing.T) {
	v := New()
	h := v.MustAttribute("data")
	h.MustAdd("", "root")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ix := h.Intervals()
				root, ok := ix.Interval("root")
				if !ok || root.Len() != ix.LeafCount() {
					t.Errorf("inconsistent snapshot: root %v leaves %d", root, ix.LeafCount())
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		h.MustAdd("root", fmt.Sprintf("n%d", i))
	}
	close(stop)
	wg.Wait()
}
