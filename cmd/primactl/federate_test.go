package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	prima "repro"
)

// freeAddr reserves a loopback port and releases it for the command
// under test to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// TestFederateServeStream drives the full CLI loop: a consolidator
// with continuous refinement, a site streaming the Table 1 log to it
// over TCP, a graceful SIGTERM shutdown, and the exported
// consolidated JSONL.
func TestFederateServeStream(t *testing.T) {
	policyFile, auditJSONL, _ := writeFixtures(t)
	addr := freeAddr(t)
	export := filepath.Join(t.TempDir(), "consolidated.jsonl")

	out, err := capture(t, func() error {
		serveErr := make(chan error, 1)
		go func() {
			serveErr <- run([]string{"federate", "serve",
				"-listen", addr, "-policy", policyFile,
				"-interval", "50ms", "-export", export})
		}()
		// Wait for the listener to come up.
		deadline := time.Now().Add(5 * time.Second)
		for {
			c, err := net.Dial("tcp", addr)
			if err == nil {
				_ = c.Close()
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("consolidator never listened on %s", addr)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := run([]string{"federate", "stream",
			"-addr", addr, "-audit", auditJSONL, "-site", "siteA"}); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		// Let at least one refinement epoch observe the folded entries.
		time.Sleep(150 * time.Millisecond)
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			return err
		}
		select {
		case err := <-serveErr:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("serve did not shut down on SIGTERM")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"streamed 10 entries from site \"siteA\"",
		"sites=1",
		"refinement:",
		"exported 10 consolidated entries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	f, err := os.Open(export)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := prima.ReadAuditJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("exported %d entries, want 10", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Time.Before(entries[i-1].Time) {
			t.Fatalf("export not chronological at %d", i)
		}
	}
}

func TestFederateUsageErrors(t *testing.T) {
	if err := run([]string{"federate"}); err == nil {
		t.Error("bare federate should fail")
	}
	if err := run([]string{"federate", "bogus"}); err == nil {
		t.Error("unknown action should fail")
	}
	if err := run([]string{"federate", "stream"}); err == nil {
		t.Error("stream without -addr/-audit should fail")
	}
}
