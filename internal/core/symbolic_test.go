package core

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/vocab"
)

// withMaterialized runs f on the materializing oracle path, restoring
// the symbolic default afterwards.
func withMaterialized(t *testing.T, f func()) {
	t.Helper()
	prev := SetSymbolicCoverage(false)
	defer SetSymbolicCoverage(prev)
	f()
}

// TestComputeCoveragePathsAgree: Algorithm 1 yields the identical
// ratio on the symbolic and materializing paths over every ordered
// pair of fixture policies (including the empty-Py convention).
func TestComputeCoveragePathsAgree(t *testing.T) {
	v := scenario.Vocabulary()
	pols := []*policy.Policy{
		scenario.PolicyStore(),
		scenario.Figure3AuditPolicy(),
		policy.FromRules("pattern", scenario.RefinementPattern()),
		policy.New("empty"),
	}
	for _, px := range pols {
		for _, py := range pols {
			sym, err := ComputeCoverage(px, py, v)
			if err != nil {
				t.Fatal(err)
			}
			var mat float64
			withMaterialized(t, func() {
				mat, err = ComputeCoverage(px, py, v)
			})
			if err != nil {
				t.Fatal(err)
			}
			if sym != mat {
				t.Errorf("coverage(%s, %s): symbolic %v, materialized %v", px.Name, py.Name, sym, mat)
			}
		}
	}
}

// TestEntryCoveragePathsAgree: row-level coverage over Table 1 is
// identical — same ratio, same uncovered rows in the same order.
func TestEntryCoveragePathsAgree(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	entries := scenario.Table1()
	// Include rows with values the vocabulary does not know.
	entries = append(entries, audit.Entry{
		User: "u9", Op: audit.Allow, Status: audit.Regular,
		Data: "xray", Purpose: "treatment", Authorized: "doctor",
	}, audit.Entry{
		User: "u9", Op: audit.Allow, Status: audit.Regular,
		Data: "clinical", Purpose: "treatment", Authorized: "doctor", // composite: never ground-covered
	})
	sym, err := EntryCoverage(ps, entries, v)
	if err != nil {
		t.Fatal(err)
	}
	var mat *EntryReport
	withMaterialized(t, func() {
		mat, err = EntryCoverage(ps, entries, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sym.Coverage != mat.Coverage || sym.Covered != mat.Covered || sym.Total != mat.Total {
		t.Fatalf("symbolic %+v, materialized %+v", sym, mat)
	}
	if len(sym.Uncovered) != len(mat.Uncovered) {
		t.Fatalf("uncovered: %d vs %d rows", len(sym.Uncovered), len(mat.Uncovered))
	}
	for i := range sym.Uncovered {
		if sym.Uncovered[i].Key() != mat.Uncovered[i].Key() {
			t.Errorf("uncovered[%d]: %s vs %s", i, sym.Uncovered[i].Key(), mat.Uncovered[i].Key())
		}
	}
}

// TestPrunePathsAgree: Algorithm 6 keeps the identical pattern set on
// both paths, including composite and vocabulary-foreign patterns.
func TestPrunePathsAgree(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	mk := func(spec string) policy.Rule {
		r, err := policy.ParseRule(spec)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	patterns := []Pattern{
		{Rule: scenario.RefinementPattern(), Support: 5, DistinctUsers: 2},
		{Rule: mk("data=demographic & purpose=billing & authorized=clerk"), Support: 7}, // covered composite
		{Rule: mk("data=address & purpose=billing & authorized=clerk"), Support: 3},     // covered ground
		{Rule: mk("data=clinical & purpose=treatment & authorized=doctor"), Support: 4}, // partially covered
		{Rule: mk("data=xray & purpose=treatment & authorized=doctor"), Support: 2},     // foreign value
	}
	sym, err := Prune(patterns, ps, v)
	if err != nil {
		t.Fatal(err)
	}
	var mat []Pattern
	withMaterialized(t, func() {
		mat, err = Prune(patterns, ps, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sym) != len(mat) {
		t.Fatalf("symbolic kept %d patterns, materialized %d", len(sym), len(mat))
	}
	for i := range sym {
		if sym[i].Rule.Key() != mat[i].Rule.Key() {
			t.Errorf("kept[%d]: %s vs %s", i, sym[i].Rule, mat[i].Rule)
		}
	}
}

// TestSymbolicCoverageScales: coverage over a synthetic vocabulary far
// beyond the materializing range limit completes symbolically. A
// branch-10 depth-5 data hierarchy has 100k leaves; one composite rule
// over it crosses DefaultRangeLimit on its own.
func TestSymbolicCoverageScales(t *testing.T) {
	v := vocab.Synthetic(10, 5)
	ps := policy.FromRules("big", policy.MustRule(
		policy.T("data", "n0"),
		policy.T("purpose", "treatment"),
		policy.T("authorized", "nurse"),
	))
	// Materializing path refuses: the rule grounds to 100k rules times
	// nothing else, fine — but the store against itself would, so pin
	// the symbolic invariant instead: self-coverage is exactly 1.
	c, err := ComputeCoverage(ps, ps, v)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Fatalf("self coverage = %v", c)
	}
	sym := policy.SharedSym.Range(ps, v)
	if sym.Card() != 100_000 {
		t.Fatalf("card = %d, want 100000", sym.Card())
	}
}
