package policy

import (
	"fmt"
	"testing"

	"repro/internal/vocab"
)

// fixtureRules builds a mix of composite, ground, foreign-value, and
// duplicate-range rules over the paper vocabulary — enough shapes to
// exercise every branch of the symbolic algebra.
func fixtureRules(t *testing.T) []Rule {
	t.Helper()
	mk := func(spec string) Rule {
		r, err := ParseRule(spec)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", spec, err)
		}
		return r
	}
	return []Rule{
		mk("data=demographic & purpose=billing & authorized=clerk"),
		mk("data=clinical & purpose=treatment & authorized=doctor"),
		mk("data=general & purpose=treatment & authorized=nurse"),
		mk("data=referral & purpose=treatment & authorized=nurse"), // inside previous
		mk("data=phi & purpose=research & authorized=researcher"),
		mk("data=address & purpose=billing & authorized=clerk"), // ground, inside first
		mk("data=xray & purpose=treatment & authorized=doctor"), // foreign value
		mk("data=financial & authorized=auditor"),               // different signature
		mk("consent=opt_in & data=psychiatry"),                  // foreign attribute
	}
}

// subsetsOf enumerates a few interesting policies from the fixture
// rules: every singleton, a sliding window of pairs/triples, and the
// whole set.
func fixturePolicies(t *testing.T) []*Policy {
	rules := fixtureRules(t)
	var out []*Policy
	for i, r := range rules {
		out = append(out, FromRules(fmt.Sprintf("p%d", i), r))
	}
	for i := 0; i+2 < len(rules); i++ {
		out = append(out, FromRules(fmt.Sprintf("w%d", i), rules[i:i+3]...))
	}
	out = append(out, FromRules("all", rules...))
	return out
}

// TestSymbolicCardMatchesMaterialized pins SymRange.Card against the
// materializing oracle on every fixture policy.
func TestSymbolicCardMatchesMaterialized(t *testing.T) {
	v := vocab.Sample()
	for _, p := range fixturePolicies(t) {
		rg, err := NewRange(p, v, 0)
		if err != nil {
			t.Fatalf("%s: NewRange: %v", p.Name, err)
		}
		sym := NewSymRange(p, v)
		if got, want := sym.Card(), int64(rg.Len()); got != want {
			t.Errorf("%s: symbolic Card = %d, materialized = %d", p.Name, got, want)
		}
	}
}

// TestSymbolicIntersectMatchesMaterialized pins IntersectCard,
// Subsumes, and Disjoint against the oracle over every policy pair.
func TestSymbolicIntersectMatchesMaterialized(t *testing.T) {
	v := vocab.Sample()
	pols := fixturePolicies(t)
	mats := make([]*Range, len(pols))
	syms := make([]*SymRange, len(pols))
	for i, p := range pols {
		var err error
		mats[i], err = NewRange(p, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		syms[i] = NewSymRange(p, v)
	}
	for i := range pols {
		for j := range pols {
			want := int64(mats[i].IntersectCount(mats[j]))
			got := syms[i].IntersectCard(syms[j])
			if got != want {
				t.Errorf("%s ∩ %s: symbolic %d, materialized %d", pols[i].Name, pols[j].Name, got, want)
			}
			wantSub := want == int64(mats[j].Len())
			if gotSub := syms[i].Subsumes(syms[j]); gotSub != wantSub {
				t.Errorf("%s ⊇ %s: symbolic %v, materialized %v", pols[i].Name, pols[j].Name, gotSub, wantSub)
			}
			if gotDis := syms[i].Disjoint(syms[j]); gotDis != (want == 0) {
				t.Errorf("%s disjoint %s: symbolic %v, want %v", pols[i].Name, pols[j].Name, gotDis, want == 0)
			}
		}
	}
}

// TestSymbolicCoversMatchesGroundings pins SymRange.Covers (the Prune
// probe) against enumerating a rule's groundings.
func TestSymbolicCoversMatchesGroundings(t *testing.T) {
	v := vocab.Sample()
	rules := fixtureRules(t)
	for _, p := range fixturePolicies(t) {
		rg, err := NewRange(p, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		sym := NewSymRange(p, v)
		for _, r := range rules {
			grounds, truncated := r.Groundings(v, DefaultRangeLimit)
			if truncated {
				t.Fatalf("groundings of %s overflowed", r)
			}
			want := true
			for _, g := range grounds {
				if !rg.Contains(g) {
					want = false
					break
				}
			}
			sr, ok := CompileRule(r, v)
			if !ok {
				t.Fatalf("CompileRule(%s) rejected non-zero rule", r)
			}
			if got := sym.Covers(sr); got != want {
				t.Errorf("%s covers %s: symbolic %v, materialized %v", p.Name, r, got, want)
			}
		}
	}
}

// TestSymbolicContainsTriple pins ContainsTriple against the
// materialized ContainsKey over the full ground cross-product plus
// composite and foreign probes.
func TestSymbolicContainsTriple(t *testing.T) {
	v := vocab.Sample()
	for _, p := range fixturePolicies(t) {
		rg, err := NewRange(p, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		sym := NewSymRange(p, v)
		datas := append(v.Hierarchy("data").Leaves(), "clinical", "xray")
		purposes := append(v.Hierarchy("purpose").Leaves(), "nonexistent_purpose")
		auths := append(v.Hierarchy("authorized").Leaves(), "phi")
		for _, d := range datas {
			for _, pu := range purposes {
				for _, a := range auths {
					want := rg.ContainsKey(TripleKey(d, pu, a))
					got := sym.ContainsTriple(v, d, pu, a)
					if got != want {
						t.Errorf("%s: ContainsTriple(%s,%s,%s) = %v, materialized %v", p.Name, d, pu, a, got, want)
					}
				}
			}
		}
	}
}

// TestCompileRuleZero: the zero rule has no symbolic range.
func TestCompileRuleZero(t *testing.T) {
	if _, ok := CompileRule(Rule{}, vocab.Sample()); ok {
		t.Fatal("zero rule compiled")
	}
	rg := CompileRules([]Rule{{}}, vocab.Sample())
	if rg.Card() != 0 {
		t.Fatalf("zero-rule range card = %d", rg.Card())
	}
}

// TestSymRuleAlgebra spot-checks the per-rule operations on known
// paper cardinalities (Figure 1: clinical=5, general=3, phi=10).
func TestSymRuleAlgebra(t *testing.T) {
	v := vocab.Sample()
	mk := func(spec string) SymRule {
		r, err := ParseRule(spec)
		if err != nil {
			t.Fatal(err)
		}
		sr, ok := CompileRule(r, v)
		if !ok {
			t.Fatalf("compile %q", spec)
		}
		return sr
	}
	clin := mk("data=clinical & purpose=treatment & authorized=nurse")
	gen := mk("data=general & purpose=treatment & authorized=nurse")
	fin := mk("data=financial & purpose=billing & authorized=clerk")
	if clin.Card() != 5 || gen.Card() != 3 || fin.Card() != 2 {
		t.Fatalf("cards: %d %d %d", clin.Card(), gen.Card(), fin.Card())
	}
	if !clin.Subsumes(gen) || gen.Subsumes(clin) {
		t.Fatal("subsumption wrong")
	}
	if !clin.Disjoint(fin) {
		t.Fatal("disjoint wrong")
	}
	if got := clin.IntersectCard(gen); got != 3 {
		t.Fatalf("IntersectCard = %d", got)
	}
}

// TestSymCache: generation-validated memoization semantics.
func TestSymCache(t *testing.T) {
	v := vocab.Sample()
	p := FromRules("store", fixtureRules(t)...)
	c := NewSymCache()
	a := c.Range(p, v)
	if b := c.Range(p, v); b != a {
		t.Fatal("unchanged inputs recompiled")
	}
	if c.Len() != 1 {
		t.Fatalf("cache len = %d", c.Len())
	}
	r, err := ParseRule("data=payment_history & purpose=payment & authorized=clerk")
	if err != nil {
		t.Fatal(err)
	}
	p.Add(r)
	fresh := c.Range(p, v)
	if fresh == a {
		t.Fatal("policy mutation did not invalidate")
	}
	if fresh.Card() != a.Card()+1 {
		t.Fatalf("card %d after add, was %d", fresh.Card(), a.Card())
	}
	v.MustAttribute("data").MustAdd("financial", "copay")
	if c.Range(p, v) == fresh {
		t.Fatal("vocabulary mutation did not invalidate")
	}
	c.Invalidate(p)
	if c.Len() != 0 {
		t.Fatalf("cache len after invalidate = %d", c.Len())
	}
}

// TestUnionCardOverlap: union cardinality with genuine multi-box
// overlap in several dimensions (the inclusion–exclusion core).
func TestUnionCardOverlap(t *testing.T) {
	v := vocab.Sample()
	specs := []string{
		"data=clinical & purpose=treatment & authorized=doctor",
		"data=general & purpose=healthcare & authorized=doctor",
		"data=phi & purpose=treatment & authorized=medical_staff",
	}
	var rules []Rule
	for _, s := range specs {
		r, err := ParseRule(s)
		if err != nil {
			t.Fatal(err)
		}
		rules = append(rules, r)
	}
	sym := CompileRules(rules, v)
	rg, err := NewRange(FromRules("o", rules...), v, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sym.Card(), int64(rg.Len()); got != want {
		t.Fatalf("overlapping union card = %d, want %d", got, want)
	}
}
