package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/minidb"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// auditColumns maps analysis attributes to the audit table schema
// used by the SQL extractor. "time" is always stored (for the
// first/last-seen evidence) but is not a valid grouping attribute.
var auditColumns = []minidb.Column{
	{Name: "at", Type: minidb.TypeTime},
	{Name: "op", Type: minidb.TypeInt},
	{Name: "user", Type: minidb.TypeText},
	{Name: "data", Type: minidb.TypeText},
	{Name: "purpose", Type: minidb.TypeText},
	{Name: "authorized", Type: minidb.TypeText},
	{Name: "status", Type: minidb.TypeInt},
}

// LoadEntries materializes audit entries into a minidb table with the
// paper's audit schema. Shared by the SQL extractor and the HDB/CLI
// inspection paths.
func LoadEntries(db *minidb.Database, table string, entries []audit.Entry) error {
	if _, err := db.CreateTable(table, auditColumns); err != nil {
		return err
	}
	for _, e := range entries {
		err := db.Insert(table,
			minidb.Time(e.Time),
			minidb.Int(int64(e.Op)),
			minidb.Text(e.User),
			minidb.Text(e.Data),
			minidb.Text(e.Purpose),
			minidb.Text(e.Authorized),
			minidb.Int(int64(e.Status)),
		)
		if err != nil {
			return err
		}
	}
	return nil
}

// SQLExtractor is the paper's dataAnalysis routine (Algorithm 5): it
// loads Practice into a relational table and executes
//
//	SELECT Attr1..Attrn FROM practice
//	GROUP BY Attr1..Attrn
//	HAVING COUNT(*) >= f AND COUNT(DISTINCT user) > m-1
//
// against the minidb engine.
type SQLExtractor struct{}

// BuildStatement renders the Algorithm 5 statement for the options;
// exposed so callers can inspect or log the exact SQL executed.
func (SQLExtractor) BuildStatement(opts Options) string {
	opts = opts.withDefaults()
	cols := strings.Join(opts.Attrs, ", ")
	cmp := ">="
	if opts.StrictGreater {
		cmp = ">"
	}
	return fmt.Sprintf(
		"SELECT %s, COUNT(*) AS support, COUNT(DISTINCT user) AS users, MIN(at) AS first_seen, MAX(at) AS last_seen "+
			"FROM practice GROUP BY %s "+
			"HAVING COUNT(*) %s %d AND COUNT(DISTINCT user) > %d "+
			"ORDER BY support DESC, %s",
		cols, cols, cmp, opts.MinSupport, opts.MinDistinctUsers-1, cols)
}

// Extract implements PatternExtractor.
func (x SQLExtractor) Extract(practice []audit.Entry, opts Options) ([]Pattern, error) {
	opts = opts.withDefaults()
	db := minidb.NewDatabase()
	if err := LoadEntries(db, "practice", practice); err != nil {
		return nil, fmt.Errorf("core: load practice: %w", err)
	}
	res, err := db.Exec(x.BuildStatement(opts))
	if err != nil {
		return nil, fmt.Errorf("core: data analysis: %w", err)
	}
	patterns := make([]Pattern, 0, len(res.Rows))
	n := len(opts.Attrs)
	for _, row := range res.Rows {
		terms := make([]policy.Term, n)
		for i, attr := range opts.Attrs {
			terms[i] = policy.T(attr, row[i].AsText())
		}
		rule, err := policy.NewRule(terms...)
		if err != nil {
			return nil, fmt.Errorf("core: pattern rule: %w", err)
		}
		patterns = append(patterns, Pattern{
			Rule:          rule,
			Support:       int(row[n].AsInt()),
			DistinctUsers: int(row[n+1].AsInt()),
			FirstSeen:     row[n+2].AsTime(),
			LastSeen:      row[n+3].AsTime(),
		})
	}
	return patterns, nil
}

// NativeExtractor performs the same analysis with an in-process
// group-by, bypassing SQL. It exists as a differential check on the
// SQL path and as the faster engine for large simulations.
type NativeExtractor struct{}

// Extract implements PatternExtractor.
func (NativeExtractor) Extract(practice []audit.Entry, opts Options) ([]Pattern, error) {
	opts = opts.withDefaults()
	type acc struct {
		rule  policy.Rule
		count int
		users map[string]bool
		first time.Time
		last  time.Time
	}
	groups := make(map[string]*acc)
	for _, e := range practice {
		terms := make([]policy.Term, len(opts.Attrs))
		for i, attr := range opts.Attrs {
			v, err := entryAttr(e, attr)
			if err != nil {
				return nil, err
			}
			terms[i] = policy.T(attr, v)
		}
		rule, err := policy.NewRule(terms...)
		if err != nil {
			return nil, fmt.Errorf("core: pattern rule: %w", err)
		}
		key := rule.Key()
		a, ok := groups[key]
		if !ok {
			a = &acc{rule: rule, users: make(map[string]bool), first: e.Time, last: e.Time}
			groups[key] = a
		}
		a.count++
		a.users[vocab.Norm(e.User)] = true
		if e.Time.Before(a.first) {
			a.first = e.Time
		}
		if e.Time.After(a.last) {
			a.last = e.Time
		}
	}
	var out []Pattern
	for _, a := range groups {
		okSupport := a.count >= opts.MinSupport
		if opts.StrictGreater {
			okSupport = a.count > opts.MinSupport
		}
		if okSupport && len(a.users) >= opts.MinDistinctUsers {
			out = append(out, Pattern{
				Rule:          a.rule,
				Support:       a.count,
				DistinctUsers: len(a.users),
				FirstSeen:     a.first,
				LastSeen:      a.last,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Rule.Key() < out[j].Rule.Key()
	})
	return out, nil
}

// entryAttr extracts a grouping attribute from an audit entry.
func entryAttr(e audit.Entry, attr string) (string, error) {
	switch vocab.Norm(attr) {
	case "data":
		return e.Data, nil
	case "purpose":
		return e.Purpose, nil
	case "authorized":
		return e.Authorized, nil
	case "user":
		return e.User, nil
	case "op":
		return fmt.Sprintf("%d", int(e.Op)), nil
	case "status":
		return fmt.Sprintf("%d", int(e.Status)), nil
	default:
		return "", fmt.Errorf("core: invalid analysis attribute %q", attr)
	}
}
