package workflow

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/consent"
	"repro/internal/core"
	"repro/internal/hdb"
	"repro/internal/minidb"
	"repro/internal/policy"
)

func driverFixture(t *testing.T, seed int64) (*Driver, *Simulator, Config, *audit.Log) {
	t.Helper()
	cfg := DefaultHospital(seed)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := minidb.NewDatabase()
	log := audit.NewLog("ward")
	cs := consent.NewStore(cfg.Vocab, true)
	enf := hdb.New(db, cfg.Policy, cfg.Vocab, cs, log)
	d, err := NewDriver(enf, cfg.Vocab, "records")
	if err != nil {
		t.Fatal(err)
	}
	return d, sim, cfg, log
}

func TestDriverReplaysThroughEnforcement(t *testing.T) {
	d, sim, cfg, log := driverFixture(t, 9)
	st, err := d.Play(sim, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed != 0 {
		t.Fatalf("stats = %+v; no access should fail outright", st)
	}
	if st.Regular == 0 || st.BreakGlass == 0 {
		t.Fatalf("stats = %+v; need both paths exercised", st)
	}
	if st.Regular+st.BreakGlass != st.Accesses {
		t.Errorf("stats don't add up: %+v", st)
	}
	// The middleware's status labels must agree with the policy
	// range: every exception entry is outside Range(P_PS), every
	// allowed regular entry inside.
	rg, err := policy.NewRange(cfg.Policy, cfg.Vocab, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range log.Snapshot() {
		if e.Op != audit.Allow {
			continue // denial records precede each break-glass retry
		}
		inRange := rg.Contains(e.Rule())
		if e.Status == audit.Regular && !inRange {
			t.Fatalf("regular entry outside policy: %v", e)
		}
		if e.Status == audit.Exception && inRange {
			t.Fatalf("exception entry inside policy: %v", e)
		}
	}
}

func TestDriverTimestampsFollowSimulation(t *testing.T) {
	d, sim, _, log := driverFixture(t, 10)
	if _, err := d.Play(sim, 3, 2); err != nil {
		t.Fatal(err)
	}
	for _, e := range log.Snapshot() {
		day := int(e.Time.Sub(sim.cfg.Start).Hours() / 24)
		if day < 3 || day > 4 {
			t.Fatalf("entry outside simulated window: %v (day %d)", e.Time, day)
		}
	}
}

func TestDriverFeedsRefinementEndToEnd(t *testing.T) {
	// The complete Figure 4 loop on the real middleware: replay a
	// couple of weeks, refine from the enforcer's own audit log,
	// adopt, replay again — break-glass traffic collapses.
	d, sim, cfg, log := driverFixture(t, 11)
	before, err := d.Play(sim, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewSession(cfg.Policy, cfg.Vocab, core.Options{})
	round, err := sess.Run(log.Snapshot(), core.AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Adopted) == 0 {
		t.Fatalf("nothing adopted from middleware log: %+v", round)
	}
	informal, violations := sim.GroundTruth()
	sc := Evaluate(round.Adopted, informal, violations)
	if sc.Precision != 1 || sc.Recall != 1 {
		t.Errorf("middleware-log extraction quality: %+v (adopted %v)", sc, round.Adopted)
	}
	after, err := d.Play(sim, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if after.BreakGlass >= before.BreakGlass/2 {
		t.Errorf("break-glass did not collapse: %d -> %d", before.BreakGlass, after.BreakGlass)
	}
}

func TestDriverTableValidation(t *testing.T) {
	cfg := DefaultHospital(1)
	db := minidb.NewDatabase()
	enf := hdb.New(db, cfg.Policy, cfg.Vocab, nil, nil)
	if _, err := NewDriver(enf, cfg.Vocab, "records"); err != nil {
		t.Fatal(err)
	}
	// Re-creating the same table fails cleanly.
	if _, err := NewDriver(enf, cfg.Vocab, "records"); err == nil {
		t.Error("duplicate driver table accepted")
	}
}
