package minidb

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , * = <> != < <= > >= + - / %
)

type token struct {
	kind tokenKind
	text string // identifiers upper-cased? no: raw; keyword matching is case-insensitive
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			seenDot := false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch == '.' {
					if seenDot {
						break
					}
					seenDot = true
					l.pos++
					continue
				}
				if ch < '0' || ch > '9' {
					break
				}
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			closed := false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					closed = true
					break
				}
				sb.WriteByte(ch)
				l.pos++
			}
			if !closed {
				return nil, fmt.Errorf("minidb: unterminated string literal at offset %d", start)
			}
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
		default:
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case "<>", "!=", "<=", ">=":
				l.pos += 2
				l.toks = append(l.toks, token{kind: tokPunct, text: two, pos: start})
				continue
			}
			switch c {
			case '(', ')', ',', '*', '=', '<', '>', '+', '-', '/', '%', ';':
				l.pos++
				l.toks = append(l.toks, token{kind: tokPunct, text: string(c), pos: start})
			default:
				return nil, fmt.Errorf("minidb: unexpected character %q at offset %d", c, start)
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
