package audit

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/vocab"
)

// Retention implements the paper's §4.2 concern about "increased
// storage demand" of always-on compliance auditing: logs are kept for
// a training/compliance window and expired beyond it, optionally
// after being archived through a codec.

// Expire removes entries older than cutoff, returning how many were
// dropped. It never drops exception-based entries younger than
// exceptionCutoff, because undiscovered informal practice is exactly
// what refinement still needs; pass the zero time to expire
// uniformly. Shards are trimmed one at a time, each rebuilding its
// incremental index under its own lock; when anything was dropped the
// index epoch advances, invalidating outstanding Delta cursors.
func (l *Log) Expire(cutoff, exceptionCutoff time.Time) int {
	dropped := 0
	for _, sh := range l.shards {
		sh.mu.Lock()
		kept := sh.entries[:0:0]
		changed := false
		for _, se := range sh.entries {
			keep := !se.e.Time.Before(cutoff)
			if !keep && se.e.Status == Exception && !exceptionCutoff.IsZero() && !se.e.Time.Before(exceptionCutoff) {
				keep = true
			}
			if keep {
				kept = append(kept, se)
			} else {
				dropped++
				changed = true
			}
		}
		if changed {
			sh.entries = kept
			sh.rebuildLocked()
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		l.epoch.Add(1)
	}
	return dropped
}

// Rotate atomically returns and removes every entry older than
// cutoff, for archival; callers typically hand the result to
// WriteJSONL before discarding it. The rotated entries come back in
// append order. Like Expire, a non-empty rotation advances the index
// epoch.
func (l *Log) Rotate(cutoff time.Time) []Entry {
	var rotated []stamped
	for _, sh := range l.shards {
		sh.mu.Lock()
		kept := sh.entries[:0:0]
		changed := false
		for _, se := range sh.entries {
			if se.e.Time.Before(cutoff) {
				rotated = append(rotated, se)
				changed = true
			} else {
				kept = append(kept, se)
			}
		}
		if changed {
			sh.entries = kept
			sh.rebuildLocked()
		}
		sh.mu.Unlock()
	}
	if len(rotated) == 0 {
		return nil
	}
	sort.Slice(rotated, func(i, j int) bool { return rotated[i].seq < rotated[j].seq })
	l.epoch.Add(1)
	return unstamp(rotated)
}

// Count is a (value, count) pair used by the analysis helpers.
type Count struct {
	Value string
	N     int
}

// topCounts aggregates entries by a key and returns the top n counts
// (ties broken by value for determinism).
func topCounts(entries []Entry, n int, key func(Entry) string) []Count {
	m := make(map[string]int)
	for _, e := range entries {
		m[key(e)]++
	}
	out := make([]Count, 0, len(m))
	for v, c := range m {
		out = append(out, Count{Value: v, N: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].Value < out[j].Value
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopUsers returns the most active users in the entries.
func TopUsers(entries []Entry, n int) []Count {
	return topCounts(entries, n, func(e Entry) string { return vocab.Norm(e.User) })
}

// TopData returns the most accessed data categories.
func TopData(entries []Entry, n int) []Count {
	return topCounts(entries, n, func(e Entry) string { return vocab.Norm(e.Data) })
}

// TopPurposes returns the most used purposes.
func TopPurposes(entries []Entry, n int) []Count {
	return topCounts(entries, n, func(e Entry) string { return vocab.Norm(e.Purpose) })
}

// ExceptionRateByRole reports, per role, the fraction of accesses
// that were exception-based — the per-role "break-the-glass pressure"
// a privacy officer watches between refinement rounds.
func ExceptionRateByRole(entries []Entry) map[string]float64 {
	total := make(map[string]int)
	exceptions := make(map[string]int)
	for _, e := range entries {
		role := vocab.Norm(e.Authorized)
		total[role]++
		if e.Status == Exception {
			exceptions[role]++
		}
	}
	out := make(map[string]float64, len(total))
	for role, n := range total {
		out[role] = float64(exceptions[role]) / float64(n)
	}
	return out
}

// DailyCounts buckets entries per UTC day, ordered chronologically.
func DailyCounts(entries []Entry) []Count {
	return dailyCountsFormat(entries, "2006-01-02")
}

func dailyCountsFormat(entries []Entry, layout string) []Count {
	m := make(map[string]int)
	for _, e := range entries {
		m[e.Time.UTC().Format(layout)]++
	}
	out := make([]Count, 0, len(m))
	for d, c := range m {
		out = append(out, Count{Value: d, N: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// String renders the count.
func (c Count) String() string { return fmt.Sprintf("%s: %d", c.Value, c.N) }
