package policy

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRangeGroundPolicyIsIdentity(t *testing.T) {
	// Property: the range of a ground policy is the policy itself.
	v := sampleVocab()
	p := FromRules("AL",
		MustRule(T("data", "referral"), T("purpose", "treatment"), T("authorized", "nurse")),
		MustRule(T("data", "address"), T("purpose", "billing"), T("authorized", "clerk")),
	)
	rg, err := NewRange(p, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Len() != p.Len() {
		t.Fatalf("range of ground policy has %d rules, want %d", rg.Len(), p.Len())
	}
	for _, r := range p.Rules() {
		if !rg.Contains(r) {
			t.Errorf("range missing %v", r)
		}
	}
}

func TestRangeDeduplicates(t *testing.T) {
	v := sampleVocab()
	// demographic ⊇ address: the two rules share ground rules.
	p := FromRules("PS",
		MustRule(T("data", "demographic"), T("purpose", "billing")),
		MustRule(T("data", "address"), T("purpose", "billing")),
	)
	rg, err := NewRange(p, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Len() != 4 { // four demographic leaves; address already included
		t.Errorf("range = %d rules, want 4: %v", rg.Len(), rg.Keys())
	}
}

func TestRangeLimit(t *testing.T) {
	v := sampleVocab()
	p := FromRules("PS",
		MustRule(T("data", "phi"), T("purpose", "healthcare"), T("authorized", "medical_staff")),
	)
	if _, err := NewRange(p, v, 10); !errors.Is(err, ErrRangeTooLarge) {
		t.Errorf("want ErrRangeTooLarge, got %v", err)
	}
	rg, err := NewRange(p, v, 132)
	if err != nil || rg.Len() != 132 {
		t.Errorf("exact-fit range failed: %v, len %v", err, rg.Len())
	}
}

func TestRangeIntersectComplement(t *testing.T) {
	v := sampleVocab()
	a := FromRules("A",
		MustRule(T("data", "demographic"), T("purpose", "billing")),
	)
	b := FromRules("B",
		MustRule(T("data", "address"), T("purpose", "billing")),
		MustRule(T("data", "referral"), T("purpose", "billing")),
	)
	ra, err := NewRange(a, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRange(b, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	inter := ra.Intersect(rb)
	if len(inter) != 1 || inter[0].Key() != "data=address&purpose=billing" {
		t.Errorf("intersection = %v", inter)
	}
	// Complement is symmetric-difference half: rb \ ra keeps referral.
	comp := rb.Complement(ra)
	if len(comp) != 1 || comp[0].Key() != "data=referral&purpose=billing" {
		t.Errorf("complement = %v", comp)
	}
	if got := ra.Complement(ra); len(got) != 0 {
		t.Errorf("self-complement = %v", got)
	}
}

func TestRangeKeysSorted(t *testing.T) {
	v := sampleVocab()
	p := FromRules("PS", MustRule(T("data", "demographic"), T("purpose", "billing")))
	rg, err := NewRange(p, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := rg.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
}

// Property (quick): for random small policies over the sample
// vocabulary, Range(P) contains every rule's groundings and nothing
// else, and expanding twice is idempotent.
func TestRangeIdempotenceProperty(t *testing.T) {
	v := sampleVocab()
	dataVals := v.Hierarchy("data").Values()
	purposeVals := v.Hierarchy("purpose").Values()
	f := func(di, pi uint8, n uint8) bool {
		p := New("P")
		count := int(n%4) + 1
		for i := 0; i < count; i++ {
			d := dataVals[(int(di)+i)%len(dataVals)]
			u := purposeVals[(int(pi)+i*3)%len(purposeVals)]
			p.Add(MustRule(T("data", d), T("purpose", u)))
		}
		rg, err := NewRange(p, v, 0)
		if err != nil {
			return false
		}
		// Ground policy built from the range must have an identical range.
		gp := FromRules("G", rg.Rules()...)
		rg2, err := NewRange(gp, v, 0)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(rg.Keys(), rg2.Keys())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
