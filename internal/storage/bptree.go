package storage

import (
	"bytes"
	"fmt"
)

// The disk B+tree. One tree per Store, rooted at the meta record.
// Branch cells hold (separator, child) pairs where separator_i is a
// lower bound for every key in child_i's subtree: lookups descend into
// the last child whose separator is <= the key (clamped to child 0).
// Lower-bound — rather than exact-minimum — semantics mean deletes
// never have to rewrite parent separators.
//
// Writers run one at a time under Store.mu and follow the shadow-
// paging rule: every page on the descent path is made writable with
// cowFrame before its child pointer or cells are touched. Page splits
// are byte-balanced: overflowing items are greedily packed into as
// many sibling pages as needed (sized with a zero-prefix estimate,
// which only overestimates, so a packed group always builds), and the
// new separators bubble up, possibly splitting ancestors and growing a
// new root.
//
// Readers never take Store.mu. They load the root atomically and
// descend pin-by-pin under read latches. This is safe against a
// concurrent inserting writer: committed pages are never mutated
// (copy-on-write) and fresh pages are only rebuilt under their write
// latch, so a reader sees each page either before or after a step —
// a racing view, exactly the semantics of reading a shared map under
// its own lock. Deletes may recycle fresh pages within an epoch, so
// callers that delete concurrently with reads must serialize
// externally (minidb's table lock and the audit store's mutex both
// do).

// Key and value bounds. Keys stay small so branch pages keep useful
// fanout; values are bounded so any single cell fits one page — the
// engine has no overflow pages.
const (
	MaxKeyLen   = 512
	MaxValueLen = 3500
)

// pageFillTarget is the byte budget one split group aims for (~75% of
// a page), leaving headroom for later in-place inserts.
const pageFillTarget = (PageSize - pageHeaderSize) * 3 / 4

type pathElem struct {
	id  uint32
	f   *frame
	idx int // child slot taken during the descent
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	s.ckpt.RLock()
	defer s.ckpt.RUnlock()
	id := s.root.Load()
	if id == 0 {
		return nil, false, nil
	}
	for {
		f, err := s.pool.get(id, false)
		if err != nil {
			return nil, false, err
		}
		f.latch.RLock()
		pg := page(f.buf)
		switch pg.kind() {
		case kindLeaf:
			idx, found := pg.search(key)
			if !found {
				f.latch.RUnlock()
				s.pool.put(f, false)
				return nil, false, nil
			}
			_, v := pg.leafCell(idx)
			out := append([]byte(nil), v...)
			f.latch.RUnlock()
			s.pool.put(f, false)
			return out, true, nil
		case kindBranch:
			if pg.ncells() == 0 {
				f.latch.RUnlock()
				s.pool.put(f, false)
				return nil, false, nil
			}
			idx, found := pg.search(key)
			if !found && idx > 0 {
				idx--
			}
			_, child := pg.branchCell(idx)
			f.latch.RUnlock()
			s.pool.put(f, false)
			id = child
		default:
			k := pg.kind()
			f.latch.RUnlock()
			s.pool.put(f, false)
			return nil, false, fmt.Errorf("storage: page %d: unexpected kind %d on lookup path", id, k)
		}
	}
}

// Put inserts or replaces key -> val.
func (s *Store) Put(key, val []byte) error {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return fmt.Errorf("storage: key length %d outside (0, %d]", len(key), MaxKeyLen)
	}
	if len(val) > MaxValueLen {
		return fmt.Errorf("storage: value length %d exceeds %d", len(val), MaxValueLen)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	root := s.root.Load()
	if root == 0 {
		id, f, err := s.allocFrame(kindLeaf)
		if err != nil {
			return err
		}
		f.latch.Lock()
		page(f.buf).build(kindLeaf, []item{{key: key, val: val}})
		f.latch.Unlock()
		s.pool.put(f, true)
		s.root.Store(id)
		return nil
	}

	id, f, path, err := s.descendForWrite(root, key)
	if err != nil {
		return err
	}
	defer func() {
		s.pool.put(f, true)
		for i := range path {
			s.pool.put(path[i].f, true)
		}
	}()

	f.latch.Lock()
	pg := page(f.buf)
	idx, found := pg.search(key)
	if found {
		pg.deleteSlot(idx)
	}
	it := item{key: key, val: val}
	if pg.insertFast(idx, it) {
		f.latch.Unlock()
		return nil
	}
	items := insertItemAt(pg.items(), idx, it)
	if pg.build(kindLeaf, items) {
		f.latch.Unlock()
		return nil
	}
	f.latch.Unlock()
	return s.splitPage(path, id, f, kindLeaf, items)
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	root := s.root.Load()
	if root == 0 {
		return false, nil
	}
	id, f, path, err := s.descendForWrite(root, key)
	if err != nil {
		return false, err
	}
	f.latch.Lock()
	pg := page(f.buf)
	idx, found := pg.search(key)
	if !found {
		f.latch.Unlock()
		s.pool.put(f, true)
		for i := range path {
			s.pool.put(path[i].f, true)
		}
		return false, nil
	}
	pg.deleteSlot(idx)
	empty := pg.ncells() == 0
	f.latch.Unlock()
	s.pool.put(f, true)
	if empty {
		s.removeEmpty(path, id)
	}
	for i := range path {
		s.pool.put(path[i].f, true)
	}
	if err := s.collapseRoot(); err != nil {
		return true, err
	}
	return true, nil
}

// descendForWrite walks from root to the leaf owning key, copy-on-
// writing every visited page and patching parent child pointers. It
// returns the pinned writable leaf and the pinned ancestor path.
func (s *Store) descendForWrite(root uint32, key []byte) (uint32, *frame, []pathElem, error) {
	f, err := s.pool.get(root, false)
	if err != nil {
		return 0, nil, nil, err
	}
	id, f, err := s.cowFrame(root, f)
	if err != nil {
		return 0, nil, nil, err
	}
	if id != root {
		s.root.Store(id)
	}
	var path []pathElem
	fail := func(err error) (uint32, *frame, []pathElem, error) {
		s.pool.put(f, true)
		for i := range path {
			s.pool.put(path[i].f, true)
		}
		return 0, nil, nil, err
	}
	for {
		f.latch.RLock()
		pg := page(f.buf)
		if pg.kind() == kindLeaf {
			f.latch.RUnlock()
			return id, f, path, nil
		}
		if pg.kind() != kindBranch || pg.ncells() == 0 {
			k, n := pg.kind(), pg.ncells()
			f.latch.RUnlock()
			return fail(fmt.Errorf("storage: page %d: unexpected kind %d (ncells=%d) on write path", id, k, n))
		}
		idx, found := pg.search(key)
		if !found && idx > 0 {
			idx--
		}
		_, child := pg.branchCell(idx)
		f.latch.RUnlock()

		cf, err := s.pool.get(child, false)
		if err != nil {
			return fail(err)
		}
		nid, cf, err := s.cowFrame(child, cf)
		if err != nil {
			return fail(err)
		}
		if nid != child {
			f.latch.Lock()
			pg.setBranchChild(idx, nid)
			f.latch.Unlock()
		}
		path = append(path, pathElem{id: id, f: f, idx: idx})
		id, f = nid, cf
	}
}

// splitPage distributes items (which overflow the page) across the
// page plus freshly allocated right siblings, then inserts the new
// separators into the parent level. The frame stays pinned by the
// caller.
func (s *Store) splitPage(path []pathElem, id uint32, f *frame, kind byte, items []item) error {
	groups := splitItems(kind, items)
	f.latch.Lock()
	if !page(f.buf).build(kind, groups[0]) {
		f.latch.Unlock()
		return fmt.Errorf("storage: page %d: split group 0 does not fit (%d items)", id, len(groups[0]))
	}
	f.latch.Unlock()
	seps := make([]item, 0, len(groups)-1)
	for _, g := range groups[1:] {
		nid, nf, err := s.allocFrame(kind)
		if err != nil {
			return err
		}
		nf.latch.Lock()
		ok := page(nf.buf).build(kind, g)
		nf.latch.Unlock()
		s.pool.put(nf, true)
		if !ok {
			return fmt.Errorf("storage: page %d: split group does not fit (%d items)", nid, len(g))
		}
		seps = append(seps, item{key: g[0].key, child: nid})
	}
	return s.insertSeparators(path, len(path)-1, groups[0][0].key, seps)
}

// insertSeparators records a split at path[level]: the child at the
// descent slot was rebuilt to hold only keys >= leftKey, and seps are
// its new right siblings. A negative level grows a new root.
//
// The child's existing separator may be stale-low (child 0 absorbs
// keys below its separator via descent clamping), in which case the
// new separators would key-sort BEFORE it and wreck the child
// ordering. So the child's separator is always refreshed to leftKey —
// the true minimum of what remained — by deleting its slot and
// re-inserting it through the same flow as the new separators, after
// which plain search placement is correct for all of them.
func (s *Store) insertSeparators(path []pathElem, level int, leftKey []byte, seps []item) error {
	if level < 0 {
		old := s.root.Load()
		items := append([]item{{key: leftKey, child: old}}, seps...)
		rid, rf, err := s.allocFrame(kindBranch)
		if err != nil {
			return err
		}
		rf.latch.Lock()
		ok := page(rf.buf).build(kindBranch, items)
		rf.latch.Unlock()
		s.root.Store(rid)
		if ok {
			s.pool.put(rf, true)
			return nil
		}
		// Even the new root overflows (huge separator fan-in): split it
		// and grow another level.
		err = s.splitPage(nil, rid, rf, kindBranch, items)
		s.pool.put(rf, true)
		return err
	}

	pe := path[level]
	pe.f.latch.Lock()
	pg := page(pe.f.buf)
	_, child := pg.branchCell(pe.idx)
	pg.deleteSlot(pe.idx)
	all := make([]item, 0, len(seps)+1)
	all = append(all, item{key: leftKey, child: child})
	all = append(all, seps...)
	inserted := 0
	for _, sp := range all {
		idx, _ := pg.search(sp.key)
		if !pg.insertFast(idx, sp) {
			break
		}
		inserted++
	}
	if inserted == len(all) {
		pe.f.latch.Unlock()
		return nil
	}
	items := pg.items()
	for _, sp := range all[inserted:] {
		items = insertItemSorted(items, sp)
	}
	if pg.build(kindBranch, items) {
		pe.f.latch.Unlock()
		return nil
	}
	pe.f.latch.Unlock()
	return s.splitPage(path[:level], pe.id, pe.f, kindBranch, items)
}

// removeEmpty unlinks an emptied page from its ancestors, cascading
// as far as the emptiness propagates.
func (s *Store) removeEmpty(path []pathElem, childID uint32) {
	s.freeTreePage(childID)
	for level := len(path) - 1; level >= 0; level-- {
		pe := path[level]
		pe.f.latch.Lock()
		pg := page(pe.f.buf)
		pg.deleteSlot(pe.idx)
		n := pg.ncells()
		pe.f.latch.Unlock()
		if n > 0 {
			return
		}
		s.freeTreePage(pe.id)
	}
	s.root.Store(0)
}

// collapseRoot shrinks the tree height while the root is a one-child
// branch.
func (s *Store) collapseRoot() error {
	for {
		id := s.root.Load()
		if id == 0 {
			return nil
		}
		f, err := s.pool.get(id, false)
		if err != nil {
			return err
		}
		f.latch.RLock()
		pg := page(f.buf)
		if pg.kind() != kindBranch || pg.ncells() != 1 {
			f.latch.RUnlock()
			s.pool.put(f, false)
			return nil
		}
		_, child := pg.branchCell(0)
		f.latch.RUnlock()
		s.pool.put(f, false)
		s.root.Store(child)
		s.freeTreePage(id)
	}
}

// Scan calls fn for every key in [from, to) in key order (nil from =
// start of tree, nil to = end). The key and value slices are copies
// owned by the callee. fn returns false to stop early. fn must not
// mutate the tree or re-enter the store (the scan holds the shared
// checkpoint lock for its whole run).
func (s *Store) Scan(from, to []byte, fn func(key, val []byte) bool) error {
	s.ckpt.RLock()
	defer s.ckpt.RUnlock()
	root := s.root.Load()
	if root == 0 {
		return nil
	}
	type pos struct {
		id  uint32
		idx int
	}
	var stack []pos
	id := root
	cur := from
	for {
		// Descend from id to a leaf, steering by cur (nil = leftmost).
		for {
			f, err := s.pool.get(id, false)
			if err != nil {
				return err
			}
			f.latch.RLock()
			pg := page(f.buf)
			if pg.kind() == kindLeaf {
				// Copy the in-range tail of the leaf, then emit outside
				// the latch so fn never runs with a page locked.
				idx0 := 0
				if cur != nil {
					idx0, _ = pg.search(cur)
				}
				n := pg.ncells()
				kvs := make([]item, 0, n-idx0)
				done := false
				for i := idx0; i < n; i++ {
					k := pg.keyAt(i)
					if to != nil && bytes.Compare(k, to) >= 0 {
						done = true
						break
					}
					_, v := pg.leafCell(i)
					kvs = append(kvs, item{key: k, val: append([]byte(nil), v...)})
				}
				f.latch.RUnlock()
				s.pool.put(f, false)
				for _, kv := range kvs {
					if !fn(kv.key, kv.val) {
						return nil
					}
				}
				if done {
					return nil
				}
				cur = nil
				break
			}
			if pg.kind() != kindBranch || pg.ncells() == 0 {
				f.latch.RUnlock()
				s.pool.put(f, false)
				return nil
			}
			idx := 0
			if cur != nil {
				var found bool
				idx, found = pg.search(cur)
				if !found && idx > 0 {
					idx--
				}
				if idx >= pg.ncells() {
					idx = pg.ncells() - 1
				}
			}
			_, child := pg.branchCell(idx)
			f.latch.RUnlock()
			s.pool.put(f, false)
			stack = append(stack, pos{id: id, idx: idx})
			id = child
		}
		// Advance to the next leaf via the branch stack.
		advanced := false
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			f, err := s.pool.get(top.id, false)
			if err != nil {
				return err
			}
			f.latch.RLock()
			pg := page(f.buf)
			if pg.kind() == kindBranch && top.idx+1 < pg.ncells() {
				top.idx++
				_, child := pg.branchCell(top.idx)
				f.latch.RUnlock()
				s.pool.put(f, false)
				id = child
				advanced = true
				break
			}
			f.latch.RUnlock()
			s.pool.put(f, false)
			stack = stack[:len(stack)-1]
		}
		if !advanced {
			return nil
		}
	}
}

// Check walks the whole tree validating page invariants and global key
// order; tests and the recovery path use it as a structural fsck.
func (s *Store) Check() error {
	root := s.root.Load()
	if root == 0 {
		return nil
	}
	var last []byte
	var walk func(id uint32, lower []byte) error
	walk = func(id uint32, lower []byte) error {
		f, err := s.pool.get(id, false)
		if err != nil {
			return err
		}
		f.latch.RLock()
		pg := page(f.buf)
		if err := pg.validate(); err != nil {
			f.latch.RUnlock()
			s.pool.put(f, false)
			return fmt.Errorf("page %d: %w", id, err)
		}
		kind := pg.kind()
		var children []item
		if kind == kindBranch {
			children = pg.items()
		} else if kind == kindLeaf {
			for i := 0; i < pg.ncells(); i++ {
				k := pg.keyAt(i)
				if lower != nil && bytes.Compare(k, lower) < 0 {
					f.latch.RUnlock()
					s.pool.put(f, false)
					return fmt.Errorf("page %d: key below separator bound", id)
				}
				if last != nil && bytes.Compare(last, k) >= 0 {
					f.latch.RUnlock()
					s.pool.put(f, false)
					return fmt.Errorf("page %d: global key order violated", id)
				}
				last = k
			}
		} else {
			f.latch.RUnlock()
			s.pool.put(f, false)
			return fmt.Errorf("page %d: unexpected kind %d in tree", id, kind)
		}
		f.latch.RUnlock()
		s.pool.put(f, false)
		// Child 0 may hold keys below its own separator (lookups clamp
		// to it), so it inherits the parent's bound instead.
		for i, c := range children {
			b := lower
			if i > 0 {
				b = c.key
			}
			if err := walk(c.child, b); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, nil)
}

// splitItems greedily packs sorted items into groups of at most
// pageFillTarget bytes, sized with a zero-length prefix (an over-
// estimate, so every group is guaranteed to build).
func splitItems(kind byte, items []item) [][]item {
	var groups [][]item
	var cur []item
	size := 0
	for _, it := range items {
		need := 2 + cellSize(kind, it, 0)
		if len(cur) > 0 && size+need > pageFillTarget {
			groups = append(groups, cur)
			cur, size = nil, 0
		}
		cur = append(cur, it)
		size += need
	}
	return append(groups, cur)
}

// insertItemAt returns items with it inserted at position idx.
func insertItemAt(items []item, idx int, it item) []item {
	items = append(items, item{})
	copy(items[idx+1:], items[idx:])
	items[idx] = it
	return items
}

// insertItemSorted inserts it into key-sorted items.
func insertItemSorted(items []item, it item) []item {
	lo, hi := 0, len(items)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(items[mid].key, it.key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return insertItemAt(items, lo, it)
}
