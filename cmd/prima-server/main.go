// Command prima-server exposes a PRIMA system over HTTP (JSON API):
// enforced queries, break-glass access, policy and consent
// administration, coverage and refinement.
//
// Usage:
//
//	prima-server [-addr :8377] [-demo]
//
// With -demo the server starts preloaded with the paper's Figure 3
// policy store and a small clinical records table, so the API can be
// exercised immediately:
//
//	curl -s localhost:8377/coverage
//	curl -s -X POST localhost:8377/query -d '{"user":"tim","role":"nurse","purpose":"treatment","sql":"SELECT referral FROM records"}'
//
// The server drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	prima "repro"
	"repro/internal/scenario"
	"repro/internal/server"
)

func main() {
	fs := flag.NewFlagSet("prima-server", flag.ExitOnError)
	addr := fs.String("addr", ":8377", "listen address")
	demo := fs.Bool("demo", false, "preload the paper's demo policy and records")
	_ = fs.Parse(os.Args[1:])

	sys, err := buildSystem(*demo)
	if err != nil {
		log.Fatalf("prima-server: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, *addr, sys); err != nil {
		log.Fatalf("prima-server: %v", err)
	}
}

// serve runs the hardened HTTP server (read/header/idle timeouts)
// until ctx is cancelled, then drains in-flight requests for up to
// five seconds.
func serve(ctx context.Context, addr string, sys *prima.System) error {
	err := server.Run(ctx, addr, server.New(sys), 5*time.Second, func(a net.Addr) {
		log.Printf("prima-server listening on %s", a)
	})
	if ctx.Err() != nil {
		log.Printf("prima-server shut down")
	}
	return err
}

// buildSystem assembles the served system, optionally preloading the
// paper's demo fixture.
func buildSystem(demo bool) (*prima.System, error) {
	if !demo {
		return prima.New(prima.Config{}), nil
	}
	sys := prima.New(prima.Config{Policy: scenario.PolicyStore(), Site: "demo"})
	if _, err := sys.DB().Exec(`CREATE TABLE records (
		patient TEXT, address TEXT, prescription TEXT, referral TEXT, psychiatry TEXT, insurance TEXT
	)`); err != nil {
		return nil, err
	}
	if _, err := sys.DB().Exec(`INSERT INTO records VALUES
		('p1', '1 Elm St',  'aspirin', 'cardio', 'none',    'acme-health'),
		('p2', '2 Oak Ave', 'statins', 'derm',   'anxiety', 'medicare'),
		('p3', '3 Pine Rd', 'insulin', 'endo',   'none',    'acme-health')`); err != nil {
		return nil, err
	}
	if err := sys.RegisterTable(prima.TableMapping{
		Table:      "records",
		PatientCol: "patient",
		Categories: map[string]string{
			"address": "address", "prescription": "prescription",
			"referral": "referral", "psychiatry": "psychiatry", "insurance": "insurance",
		},
	}); err != nil {
		return nil, err
	}
	log.Printf("demo fixture loaded: table records (3 patients), Figure 3 policy store")
	return sys, nil
}
