// Package workflow simulates a hospital's clinical workflow to stand
// in for the real audit trails PRIMA analyses (the paper grounds its
// motivation in the Norwegian access-log study [2]; no such PHI-laden
// logs can ship with a reproduction). The simulator generates
// timestamped access events from three behaviour classes:
//
//   - documented practice: accesses drawn from the policy store's
//     range, recorded as regular accesses (status 1);
//   - informal practice: recurring, multi-user habits that the policy
//     does not cover — the clinical reality refinement should learn —
//     recorded as exception-based accesses (status 0);
//   - violations: low-rate, typically single-user snooping that must
//     NOT be adopted into policy.
//
// Events carry ground-truth labels so extraction quality (precision /
// recall) is measurable, which the paper could not do.
package workflow

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// Staff is one member of the hospital roster.
type Staff struct {
	Name string
	Role string
}

// Behavior is one recurring access habit: a ground rule over
// (data, purpose, authorized) plus its intensity and the users
// exhibiting it.
type Behavior struct {
	Data    string
	Purpose string
	Role    string
	// PerDay is the expected number of events per simulated day
	// (Poisson).
	PerDay float64
	// Users is the pool exhibiting the behaviour; empty means every
	// staff member with the matching role.
	Users []string
	// FromDay and UntilDay bound the behaviour's activity window in
	// simulation days; a zero UntilDay means "forever". Emerging
	// informal practices (a new department workflow, a seasonal
	// surge) are modelled by setting FromDay > 0.
	FromDay  int
	UntilDay int
	// OffHours places the behaviour's events between 18:00 and 06:00
	// instead of the working day — the snooping time profile that
	// core.GatherEvidence's off-hours feature detects.
	OffHours bool
}

// activeOn reports whether the behaviour generates events on the
// given simulation day.
func (b Behavior) activeOn(day int) bool {
	if day < b.FromDay {
		return false
	}
	return b.UntilDay == 0 || day < b.UntilDay
}

// Rule returns the behaviour's ground rule.
func (b Behavior) Rule() policy.Rule {
	return policy.MustRule(
		policy.T("data", b.Data),
		policy.T("purpose", b.Purpose),
		policy.T("authorized", b.Role),
	)
}

// Config parameterizes a simulation.
type Config struct {
	Vocab *vocab.Vocabulary
	// Policy is the documented practice; regular accesses are drawn
	// from its range and events are labelled exception-based exactly
	// when their rule falls outside it at generation time.
	Policy *policy.Policy
	Staff  []Staff
	// DocumentedPerDay is the expected number of regular, documented
	// accesses per day.
	DocumentedPerDay float64
	Informal         []Behavior
	Violations       []Behavior
	Seed             int64
	// Start is the timestamp of day 0 (defaults to 2007-03-01 UTC).
	Start time.Time
}

// Simulator generates audit entries from a Config.
type Simulator struct {
	cfg    Config
	rng    *rand.Rand
	byRole map[string][]string // role -> user names
	// behaviors is informal followed by violations with their ground
	// rules and staff pools resolved once, so the per-event path does
	// no rule construction or roster lookups.
	behaviors []behaviorState
	// ranges caches the policy's expanded range across Run calls; the
	// cache revalidates against Policy.Version, so adopting refined
	// rules between runs still relabels subsequent traffic.
	ranges *policy.RangeCache
	// sortKeys and sortScratch are the per-day sort buffers, kept on
	// the simulator so successive runs reuse them.
	sortKeys    []uint64
	sortScratch []audit.Entry
}

// behaviorState is a Behavior plus its run-invariant derivations.
type behaviorState struct {
	Behavior
	rule policy.Rule
	pool []string
}

// New validates the configuration and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Vocab == nil || cfg.Policy == nil {
		return nil, fmt.Errorf("workflow: vocabulary and policy are required")
	}
	if len(cfg.Staff) == 0 {
		return nil, fmt.Errorf("workflow: an empty roster cannot deliver care")
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2007, 3, 1, 0, 0, 0, 0, time.UTC)
	}
	s := &Simulator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		byRole: make(map[string][]string),
		ranges: policy.NewRangeCache(),
	}
	for _, st := range cfg.Staff {
		if st.Name == "" || st.Role == "" {
			return nil, fmt.Errorf("workflow: staff entries need name and role")
		}
		s.byRole[vocab.Norm(st.Role)] = append(s.byRole[vocab.Norm(st.Role)], st.Name)
	}
	for _, b := range append(append([]Behavior{}, cfg.Informal...), cfg.Violations...) {
		if b.PerDay <= 0 {
			return nil, fmt.Errorf("workflow: behaviour %s has non-positive rate", b.Rule())
		}
		pool := b.Users
		if len(pool) == 0 {
			pool = s.byRole[vocab.Norm(b.Role)]
		}
		if len(pool) == 0 {
			return nil, fmt.Errorf("workflow: behaviour %s has no eligible staff", b.Rule())
		}
		s.behaviors = append(s.behaviors, behaviorState{Behavior: b, rule: b.Rule(), pool: pool})
	}
	return s, nil
}

// GroundTruth returns the informal-practice rules (the positives an
// extractor should find) and the violation rules (negatives it must
// not adopt).
func (s *Simulator) GroundTruth() (informal, violations []policy.Rule) {
	for _, b := range s.cfg.Informal {
		informal = append(informal, b.Rule())
	}
	for _, b := range s.cfg.Violations {
		violations = append(violations, b.Rule())
	}
	return informal, violations
}

// Run simulates the given number of days starting at day offset
// startDay and returns the chronologically sorted audit entries.
// Entries are labelled against the *current* contents of cfg.Policy,
// so re-running after refinement adoption converts informal habits
// into regular accesses — exactly the paper's "gradually and
// seamlessly embed privacy controls".
func (s *Simulator) Run(startDay, days int) ([]audit.Entry, error) {
	return s.RunInto(nil, startDay, days)
}

// RunInto is Run in the append style: generated entries are appended
// to dst (which may be nil) and the extended slice is returned, so a
// caller draining epochs into a log can recycle one buffer instead of
// allocating a fresh slice per run.
func (s *Simulator) RunInto(dst []audit.Entry, startDay, days int) ([]audit.Entry, error) {
	rg, err := s.ranges.Range(s.cfg.Policy, s.cfg.Vocab, 0)
	if err != nil {
		return nil, fmt.Errorf("workflow: policy range: %w", err)
	}
	docRules := rg.Rules()
	// Resolve the per-rule event shape (triple values, staff pool,
	// range membership) once per run: all of it is invariant while the
	// policy version is fixed, so the per-event path reduces to RNG
	// draws and an append.
	docs := make([]emitter, len(docRules))
	for i, r := range docRules {
		docs[i] = s.emitterFor(r, nil, rg)
	}
	acts := make([]emitter, len(s.behaviors))
	perDay := s.cfg.DocumentedPerDay
	for i := range s.behaviors {
		acts[i] = s.emitterFor(s.behaviors[i].rule, s.behaviors[i].pool, rg)
		perDay += s.behaviors[i].PerDay
	}
	entries := slices.Grow(dst, int(perDay*float64(days)*5/4)+16)

	for day := startDay; day < startDay+days; day++ {
		dayStart := s.cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
		mark := len(entries)

		// Documented, policy-covered accesses.
		if s.cfg.DocumentedPerDay > 0 && len(docRules) > 0 {
			n := s.poisson(s.cfg.DocumentedPerDay)
			for i := 0; i < n; i++ {
				em := &docs[s.rng.Intn(len(docs))]
				if len(em.pool) == 0 {
					continue // no staff for that role: skip the draw
				}
				entries = append(entries, s.emit(em, dayStart, false))
			}
		}
		// Informal practices and violations use the same generator;
		// their differing shapes (rates, user pools) are the signal.
		for bi := range s.behaviors {
			b := &s.behaviors[bi]
			if !b.activeOn(day) {
				continue
			}
			n := s.poisson(b.PerDay)
			for i := 0; i < n; i++ {
				entries = append(entries, s.emit(&acts[bi], dayStart, b.OffHours))
			}
		}
		// Every event lands inside its own day (off-hours draws wrap
		// 24:00–06:00 back onto the same date), so sorting each day's
		// suffix in place is the global chronological stable sort.
		s.sortKeys, s.sortScratch = sortDay(entries[mark:], dayStart, s.sortKeys, s.sortScratch)
	}
	return entries, nil
}

// sortDay chronologically orders one day's entries, stable in the
// emission order. Each key packs (second-of-day, emission index) into
// one integer, so a plain integer sort replaces a stable sort that
// would shuffle the wide Entry structs O(n log n) times. The buffers
// are returned for reuse across days.
func sortDay(entries []audit.Entry, dayStart time.Time, keys []uint64, scratch []audit.Entry) ([]uint64, []audit.Entry) {
	if len(entries) < 2 {
		return keys, scratch
	}
	keys = keys[:0]
	for i, e := range entries {
		keys = append(keys, uint64(e.Time.Sub(dayStart)/time.Second)<<32|uint64(i))
	}
	slices.Sort(keys)
	scratch = append(scratch[:0], entries...)
	for i, k := range keys {
		entries[i] = scratch[k&0xffffffff]
	}
	return keys, scratch
}

// emitter is the run-invariant shape of one event source: the
// normalized triple, the eligible staff pool and the status label the
// current policy range assigns it.
type emitter struct {
	data, purpose, role string
	pool                []string
	status              audit.Status
}

// emitterFor labels the rule against the policy range and resolves
// its staff pool (an explicit user list, or the roster slice for the
// rule's role).
func (s *Simulator) emitterFor(r policy.Rule, pool []string, rg *policy.Range) emitter {
	role, _ := r.Value("authorized")
	data, _ := r.Value("data")
	purpose, _ := r.Value("purpose")
	if len(pool) == 0 {
		pool = s.byRole[vocab.Norm(role)]
	}
	status := audit.Exception
	if rg.Contains(r) {
		status = audit.Regular
	}
	return emitter{data: data, purpose: purpose, role: role, pool: pool, status: status}
}

// emit materializes one access for the emitter at a random moment of
// the day (or night, for off-hours behaviours). The pool must be
// non-empty; the two RNG draws (user, then second-of-day) match the
// original per-event generator so seeded traces are unchanged.
func (s *Simulator) emit(em *emitter, dayStart time.Time, offHours bool) audit.Entry {
	user := em.pool[s.rng.Intn(len(em.pool))]
	secOfDay := 6*3600 + s.rng.Intn(12*3600) // 06:00–18:00
	if offHours {
		secOfDay = (18*3600 + s.rng.Intn(12*3600)) % (24 * 3600) // 18:00–06:00
	}
	return audit.Entry{
		Time:       dayStart.Add(time.Duration(secOfDay) * time.Second),
		Op:         audit.Allow,
		User:       user,
		Data:       em.data,
		Purpose:    em.purpose,
		Authorized: em.role,
		Status:     em.status,
	}
}

// poisson draws from Poisson(lambda) by Knuth's method; adequate for
// the small per-day rates used here.
func (s *Simulator) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // guard against pathological lambda
		}
	}
}

// Score evaluates extracted pattern rules against ground truth.
type Score struct {
	TruePositives  int // informal practices found
	FalsePositives int // violations (or noise) surfaced
	FalseNegatives int // informal practices missed
	Precision      float64
	Recall         float64
}

// Evaluate computes precision and recall of found rules against the
// ground truth sets.
func Evaluate(found []policy.Rule, informal, violations []policy.Rule) Score {
	truth := make(map[string]bool, len(informal))
	for _, r := range informal {
		truth[r.Key()] = true
	}
	foundSet := make(map[string]bool, len(found))
	var sc Score
	for _, r := range found {
		foundSet[r.Key()] = true
		if truth[r.Key()] {
			sc.TruePositives++
		} else {
			sc.FalsePositives++
		}
	}
	for _, r := range informal {
		if !foundSet[r.Key()] {
			sc.FalseNegatives++
		}
	}
	if sc.TruePositives+sc.FalsePositives > 0 {
		sc.Precision = float64(sc.TruePositives) / float64(sc.TruePositives+sc.FalsePositives)
	}
	if sc.TruePositives+sc.FalseNegatives > 0 {
		sc.Recall = float64(sc.TruePositives) / float64(sc.TruePositives+sc.FalseNegatives)
	}
	return sc
}

// Roles returns the roster's distinct roles, sorted.
func (s *Simulator) Roles() []string {
	out := make([]string, 0, len(s.byRole))
	for r := range s.byRole {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
