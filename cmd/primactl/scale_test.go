package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/vocab"
)

// writeBigVocab materializes the 10x5 synthetic vocabulary (100k
// leaves) as a text file. The CLI's capture helper buffers output
// after the run, so the megabyte-scale vocabulary is written directly
// rather than piped through `vocab -gen`.
func writeBigVocab(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "big.txt")
	if err := os.WriteFile(path, []byte(vocab.Synthetic(10, 5).TextString()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestVocabGen: the -gen flag produces a synthetic vocabulary and
// -stats summarizes it without printing 100k lines.
func TestVocabGen(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"vocab", "-gen", "3x2", "-stats"})
	})
	if err != nil {
		t.Fatalf("vocab -gen: %v\n%s", err, out)
	}
	if !strings.Contains(out, "data: 13 value(s), 9 ground") {
		t.Errorf("stats output:\n%s", out)
	}
	if !strings.Contains(out, "purpose:") || !strings.Contains(out, "authorized:") {
		t.Errorf("stats output missing fixed hierarchies:\n%s", out)
	}
}

func TestVocabGenBadSpec(t *testing.T) {
	for _, spec := range []string{"x", "10", "0x3", "4x-1", "2x40"} {
		if _, err := capture(t, func() error {
			return run([]string{"vocab", "-gen", spec})
		}); err == nil {
			t.Errorf("-gen %q accepted", spec)
		}
	}
}

// TestLint100kVocabulary: end-to-end `primactl lint` over a generated
// 100k-leaf vocabulary. This is the ISSUE acceptance workload — it
// only completes because the lint pass never materializes a ground
// Range (a single rule here grounds to 10k × 3 × 4 rules).
func TestLint100kVocabulary(t *testing.T) {
	if testing.Short() {
		t.Skip("100k vocabulary in -short mode")
	}
	vocabFile := writeBigVocab(t)
	policyFile := filepath.Join(t.TempDir(), "policy.txt")
	policy := `data=n1 & purpose=treatment & authorized=nurse
data=n11 & purpose=treatment & authorized=nurse
data=n0 & purpose=billing & authorized=clerk
`
	if err := os.WriteFile(policyFile, []byte(policy), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"lint", "-vocab", vocabFile, "-policy", policyFile, "-json"})
	})
	if exitCode(err) != 1 {
		t.Fatalf("exit code = %d, want 1 (%v)\n%s", exitCode(err), err, out)
	}
	var rep lint.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	counts := rep.Counts()
	if counts[lint.SubsumedRule] != 1 {
		t.Errorf("PL005 = %d, want 1: %v", counts[lint.SubsumedRule], counts)
	}
	if counts[lint.OverBroadRule] != 1 {
		t.Errorf("PL008 = %d, want 1: %v", counts[lint.OverBroadRule], counts)
	}
}

// TestCoverageSummary100k: `primactl coverage -explain=false` over the
// generated vocabulary computes Definition 9 symbolically.
func TestCoverageSummary100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k vocabulary in -short mode")
	}
	vocabFile := writeBigVocab(t)
	dir := t.TempDir()
	policyFile := filepath.Join(dir, "policy.txt")
	if err := os.WriteFile(policyFile, []byte("data=n1 & purpose=treatment & authorized=nurse\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	auditFile := filepath.Join(dir, "audit.jsonl")
	// n11111 is a leaf under n1 (1 → 11 → 111 → 1111 → 11111 in the
	// heap numbering); n21111 is a leaf outside n1's subtree.
	audit := `{"time":"2007-01-01T10:00:00Z","op":1,"user":"u1","data":"n11111","purpose":"treatment","authorized":"nurse","status":1}
{"time":"2007-01-01T11:00:00Z","op":1,"user":"u2","data":"n21111","purpose":"billing","authorized":"clerk","status":1}
`
	if err := os.WriteFile(auditFile, []byte(audit), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"coverage", "-vocab", vocabFile, "-policy", policyFile, "-audit", auditFile, "-explain=false"})
	})
	if err != nil {
		t.Fatalf("coverage: %v\n%s", err, out)
	}
	if !strings.Contains(out, "range 10000") {
		t.Errorf("symbolic range card missing:\n%s", out)
	}
	if !strings.Contains(out, "coverage (Definition 9, distinct rules): 50.0%") {
		t.Errorf("coverage output:\n%s", out)
	}
}
