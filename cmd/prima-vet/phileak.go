package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strings"
)

// phileak is an interprocedural taint analysis guarding §4's audit
// vocabulary: fields marked prima:phi (audit.Entry's User/Data/
// Purpose/..., hdb.Principal.User) are protected health information
// and must not reach human-readable output — fmt.Print*/Fprint*,
// log.*, error strings (fmt.Errorf, errors.New) — unless the value
// passed through a prima:redact sanitizer first.
//
// Taint is tracked three ways:
//   - reading a prima:phi field taints the expression;
//   - a value whose type transitively contains a prima:phi field (a
//     "carrier": audit.Entry, federation.Conflict, slices thereof)
//     taints any call argument position it occupies, so formatting a
//     whole Entry with %v is caught without field-level flow;
//   - function summaries propagate taint through returns and into
//     parameters across the call graph (including interface calls via
//     CHA), so a helper that prints its argument flags its callers.
//
// Structured encoders (encoding/json, encoding/csv) are deliberately
// not sinks: persisting audit entries is the log's job; the analyzer
// polices human-readable/diagnostic output.
var phileakAnalyzer = &Analyzer{
	Name:       "phileak",
	Doc:        "no prima:phi data may reach prints, logs, or error strings except through prima:redact helpers",
	RunProgram: runPhileak,
}

// Taint bitmask: bit 0 = carries PHI outright; bit i+1 = depends on
// parameter i (receiver counts as parameter 0 on methods).
const phiSrc uint64 = 1

func paramBit(i int) uint64 {
	if i >= 62 {
		i = 62
	}
	return 1 << uint(i+1)
}

// phiSummary is the per-function interprocedural summary.
type phiSummary struct {
	ret   uint64 // taint of the return value(s)
	sinks uint64 // parameter bits that may reach a sink inside
}

func runPhileak(prog *Program) []Finding {
	sums := make(map[*CGNode]*phiSummary, len(prog.CG.Nodes()))
	for _, n := range prog.CG.Nodes() {
		sums[n] = &phiSummary{}
	}
	// Global fixpoint over summaries; monotone (bits only get added).
	for changed := true; changed; {
		changed = false
		for _, n := range prog.CG.Nodes() {
			a := newPhiAnalysis(prog, n, sums)
			ret, sinks := a.run(nil)
			s := sums[n]
			if ret|s.ret != s.ret || sinks|s.sinks != s.sinks {
				s.ret |= ret
				s.sinks |= sinks
				changed = true
			}
		}
	}
	if os.Getenv("PRIMA_VET_DEBUG_PHI") != "" {
		for _, n := range prog.CG.Nodes() {
			if s := sums[n]; s.ret != 0 || s.sinks != 0 {
				fmt.Fprintf(os.Stderr, "summary %s ret=%b sinks=%b\n", n.Name(), s.ret, s.sinks)
			}
		}
	}
	// Reporting pass with converged summaries.
	var out []Finding
	for _, n := range prog.CG.Nodes() {
		a := newPhiAnalysis(prog, n, sums)
		a.run(func(pos token.Pos, msg string) {
			out = append(out, Finding{
				Pos:      n.Pkg.Fset.Position(pos),
				Analyzer: "phileak",
				Message:  msg,
			})
		})
	}
	return out
}

// phiAnalysis is the intra-function pass: a taint environment over the
// function's SSA values, iterated to a local fixpoint. Keying on SSA
// values instead of objects makes the analysis flow-sensitive for
// tracked locals — rebinding a variable to a clean value kills its
// taint, and taint merges only at phi nodes. Variables SSA does not
// track (address-taken, captured) fall back to their types.Object key,
// which degrades to the old flow-insensitive behavior.
type phiAnalysis struct {
	prog *Program
	n    *CGNode
	sums map[*CGNode]*phiSummary
	ssa  *FuncSSA
	env  map[any]uint64
}

func newPhiAnalysis(prog *Program, n *CGNode, sums map[*CGNode]*phiSummary) *phiAnalysis {
	a := &phiAnalysis{prog: prog, n: n, sums: sums, ssa: prog.SSA(n), env: make(map[any]uint64)}
	idx := make(map[types.Object]int)
	for i, obj := range paramObjs(n) {
		a.env[obj] = paramBit(i)
		idx[obj] = i
	}
	for _, v := range a.ssa.Values() {
		if v.Kind == valParam {
			if i, ok := idx[v.Obj]; ok {
				a.env[v] = paramBit(i)
			}
		}
	}
	return a
}

// propagate pushes taint along the SSA chains: an in-place update or a
// close carries the previous version's taint, a phi joins its
// operands. Reports whether anything changed.
func (a *phiAnalysis) propagate() bool {
	changed := false
	merge := func(v *SSAValue, t uint64) {
		if old := a.env[v]; old|t != old {
			a.env[v] = old | t
			changed = true
		}
	}
	for _, v := range a.ssa.Values() {
		switch v.Kind {
		case valUpdate, valClose:
			if v.Prev != nil {
				merge(v, a.env[v.Prev])
			}
		case valPhi:
			var t uint64
			for _, op := range v.Ops {
				t |= a.env[op]
			}
			merge(v, t)
		}
	}
	return changed
}

// run iterates assignments to a local fixpoint, then (when report is
// non-nil) walks the calls emitting findings. Returns the function's
// return-taint and param-to-sink masks.
func (a *phiAnalysis) run(report func(token.Pos, string)) (ret, sinks uint64) {
	for changed := true; changed; {
		changed = false
		ownBody(a.n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.AssignStmt:
				changed = a.assign(x) || changed
			case *ast.GenDecl:
				for _, spec := range x.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						changed = a.valueSpec(vs) || changed
					}
				}
			case *ast.RangeStmt:
				t := a.taintOf(x.X)
				changed = a.bind(x.Key, t) || changed
				changed = a.bind(x.Value, t) || changed
			}
			return true
		})
		changed = a.propagate() || changed
	}

	ownBody(a.n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.ReturnStmt:
			if len(x.Results) == 0 {
				// Bare return with named results: the results carry
				// whatever was assigned to them.
				for _, obj := range resultObjs(a.n) {
					ret |= a.env[obj]
				}
				break
			}
			for _, e := range x.Results {
				ret |= a.taintOf(e)
			}
		case *ast.CallExpr:
			// Only the sink bits matter here; a call's return taint
			// feeds the summary solely when its result is returned
			// (handled by taintOf at the ReturnStmt).
			_, sinks2 := a.checkCall(x, report)
			sinks |= sinks2
		}
		return true
	})
	return ret, sinks
}

// resultObjs returns the named result parameters of the node, if any.
func resultObjs(n *CGNode) []types.Object {
	var fl *ast.FieldList
	if n.Decl != nil {
		fl = n.Decl.Type.Results
	} else if n.Lit != nil {
		fl = n.Lit.Type.Results
	}
	if fl == nil {
		return nil
	}
	var out []types.Object
	defs := n.Pkg.Info.Defs
	for _, f := range fl.List {
		for _, name := range f.Names {
			if obj := defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// assign updates the environment for one assignment; reports change.
func (a *phiAnalysis) assign(x *ast.AssignStmt) bool {
	changed := false
	if len(x.Lhs) == len(x.Rhs) {
		for i := range x.Lhs {
			changed = a.bind(x.Lhs[i], a.taintOf(x.Rhs[i])) || changed
		}
		return changed
	}
	// a, b := f() — every lhs gets the call's taint.
	var t uint64
	for _, r := range x.Rhs {
		t |= a.taintOf(r)
	}
	for _, l := range x.Lhs {
		changed = a.bind(l, t) || changed
	}
	return changed
}

func (a *phiAnalysis) valueSpec(vs *ast.ValueSpec) bool {
	changed := false
	if len(vs.Names) == len(vs.Values) {
		for i := range vs.Names {
			changed = a.bindIdent(vs.Names[i], a.taintOf(vs.Values[i])) || changed
		}
		return changed
	}
	var t uint64
	for _, v := range vs.Values {
		t |= a.taintOf(v)
	}
	for _, name := range vs.Names {
		changed = a.bindIdent(name, t) || changed
	}
	return changed
}

// bind merges taint into the object behind an lvalue expression.
// Writing through a field or index taints the whole container
// (conservative, keeps the lattice small).
func (a *phiAnalysis) bind(lhs ast.Expr, t uint64) bool {
	if t == 0 || lhs == nil {
		return false
	}
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			return a.bindIdent(x, t)
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		default:
			return false
		}
	}
}

func (a *phiAnalysis) bindIdent(id *ast.Ident, t uint64) bool {
	if id.Name == "_" {
		return false
	}
	// Tracked variables bind the SSA value this write defines, so the
	// taint belongs to this version only.
	var key any
	if v, ok := a.ssa.Defs[id]; ok {
		key = v
	} else {
		info := a.n.Pkg.Info
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return false
		}
		key = obj
	}
	old := a.env[key]
	if old|t == old {
		return false
	}
	a.env[key] = old | t
	return true
}

// taintOf computes the taint mask of an expression. Expressions of
// numeric or boolean type are never tainted: a count or a score
// derived from PHI (len of a per-user map, a coverage ratio) cannot
// render the PHI itself, and without this cut every statistic printed
// about an audit log would be a false positive.
//
// Error-typed expressions are never tainted either. An error only
// carries PHI if PHI was formatted into it, and that formatting site
// is itself a sink (fmt.Errorf, errors.New) or a param->sink edge
// (an error constructor embedding its argument) — the one place the
// leak can be fixed. Propagating taint through the error value as
// well would re-report the same leak at every `%w` wrap and
// log.Fatal(err) downstream of it.
func (a *phiAnalysis) taintOf(e ast.Expr) uint64 {
	t := a.taintOfRaw(e)
	if t == 0 {
		return 0
	}
	if tv, ok := a.n.Pkg.Info.Types[e]; ok && tv.Type != nil {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString == 0 {
			return 0
		}
		if types.Identical(tv.Type, types.Universe.Lookup("error").Type()) {
			return 0
		}
	}
	return t
}

func (a *phiAnalysis) taintOfRaw(e ast.Expr) uint64 {
	if e == nil {
		return 0
	}
	info := a.n.Pkg.Info
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := a.ssa.Uses[x]; ok {
			return a.env[v]
		}
		if obj := info.Uses[x]; obj != nil {
			return a.env[obj]
		}
		if obj := info.Defs[x]; obj != nil {
			return a.env[obj]
		}
		return 0
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok && a.prog.Markers.PHIFields[v] {
				return phiSrc
			}
			// Field reads are field-sensitive: selecting a non-PHI field
			// out of a tainted or carrier struct yields a clean value
			// (whole-value leaks are caught by the carrier rule at sinks).
			return 0
		}
		return a.taintOf(x.X)
	case *ast.CallExpr:
		ret, _ := a.checkCall(x, nil)
		return ret
	case *ast.IndexExpr:
		return a.taintOf(x.X)
	case *ast.SliceExpr:
		return a.taintOf(x.X)
	case *ast.StarExpr:
		return a.taintOf(x.X)
	case *ast.UnaryExpr:
		return a.taintOf(x.X)
	case *ast.BinaryExpr:
		return a.taintOf(x.X) | a.taintOf(x.Y)
	case *ast.CompositeLit:
		var t uint64
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t |= a.taintOf(kv.Value)
			} else {
				t |= a.taintOf(el)
			}
		}
		return t
	case *ast.TypeAssertExpr:
		return a.taintOf(x.X)
	case *ast.FuncLit:
		return 0
	default:
		return 0
	}
}

// argTaint is taintOf plus the carrier rule: a value whose type
// transitively contains PHI taints the argument slot it fills.
func (a *phiAnalysis) argTaint(e ast.Expr) uint64 {
	t := a.taintOf(e)
	if tv, ok := a.n.Pkg.Info.Types[e]; ok && a.prog.Markers.phiCarrier(tv.Type) {
		t |= phiSrc
	}
	return t
}

// checkCall classifies one call: sanitizer, sink, module call with a
// summary, or opaque propagator. Returns the call's return taint and
// any parameter->sink bits it induces for the enclosing function.
// When report is non-nil, findings are emitted.
func (a *phiAnalysis) checkCall(call *ast.CallExpr, report func(token.Pos, string)) (ret, sinks uint64) {
	info := a.n.Pkg.Info

	// Conversions propagate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		var t uint64
		for _, arg := range call.Args {
			t |= a.taintOf(arg)
		}
		return t, 0
	}

	// Sanitizer: output is clean by decree.
	if fn := calleeFunc(info, call); fn != nil && a.prog.Markers.Redactors[fn] {
		return 0, 0
	}

	// Std sink?
	if name, skip, isSink := phiSink(info, call); isSink {
		for i, arg := range call.Args {
			if i < skip {
				continue
			}
			t := a.argTaint(arg)
			if t&phiSrc != 0 && report != nil {
				report(arg.Pos(), fmt.Sprintf("PHI may reach %s without redaction (route it through a prima:redact helper)", name))
			}
			sinks |= t &^ phiSrc
		}
		return 0, sinks
	}

	// Module callees with summaries (direct, method, interface/CHA).
	if callees := calleesAt(a.n, call); len(callees) > 0 {
		args := callArgsOf(info, call)
		for _, callee := range callees {
			s := a.sums[callee]
			for i, arg := range args {
				t := a.argTaint(arg)
				if s.sinks&paramBit(i) == 0 {
					continue
				}
				if t&phiSrc != 0 && report != nil {
					report(arg.Pos(), fmt.Sprintf("PHI passed to %s, which may print or log it without redaction", callee.Name()))
				}
				sinks |= t &^ phiSrc
			}
			if s.ret&phiSrc != 0 {
				ret |= phiSrc
			}
			for i, arg := range args {
				if s.ret&paramBit(i) != 0 {
					ret |= a.argTaint(arg)
				}
			}
		}
		return ret, sinks
	}

	// Opaque (standard library) call: conservative propagator — the
	// result carries whatever the arguments carried, carrier types
	// included (fmt.Sprintf("%v", entry) yields a tainted string).
	// Exception: a bare error result stays clean — std errors report
	// what went wrong, they do not embed the encoded value (the calls
	// that do build strings from values are the sinks above).
	if tv, ok := info.Types[call]; ok && tv.Type != nil &&
		types.Identical(tv.Type, types.Universe.Lookup("error").Type()) {
		return 0, 0
	}
	var t uint64
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		t |= a.taintOf(sel.X)
	}
	for _, arg := range call.Args {
		t |= a.argTaint(arg)
	}
	return t, 0
}

// calleeFunc resolves the statically-called function object, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// phiSink classifies the standard-library human-readable sinks.
// Returns the display name, the number of leading arguments to skip
// (the writer of Fprint*), and whether the call is a sink at all.
func phiSink(info *types.Info, call *ast.CallExpr) (name string, skip int, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", 0, false
	}
	pkg, fname := fn.Pkg().Path(), fn.Name()
	switch pkg {
	case "fmt":
		switch fname {
		case "Print", "Printf", "Println", "Errorf":
			return "fmt." + fname, 0, true
		case "Fprint", "Fprintf", "Fprintln":
			return "fmt." + fname, 1, true
		}
	case "errors":
		if fname == "New" {
			return "errors.New", 0, true
		}
	case "log":
		if strings.HasPrefix(fname, "Print") || strings.HasPrefix(fname, "Fatal") || strings.HasPrefix(fname, "Panic") {
			return "log." + fname, 0, true
		}
	}
	return "", 0, false
}
