// Package consent implements the patient-consent store the HDB
// Control Center feeds (paper §4.1: the enforcement middleware
// returns "only data consistent with policy and patient preferences").
// The model follows the HIPAA practice PRIMA targets: uses and
// disclosures are permitted by default for healthcare operations, and
// each patient may record opt-outs (or explicit opt-ins) per
// (data category, purpose) pair, at any granularity the privacy
// vocabulary supports — a choice recorded for a composite category
// applies to everything beneath it.
package consent

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vocab"
)

// Choice is a recorded consent decision.
type Choice int

// Choice values. Unset means "no recorded choice": the store default
// applies.
const (
	Unset Choice = iota
	OptIn
	OptOut
)

// String names the choice.
func (c Choice) String() string {
	switch c {
	case OptIn:
		return "opt-in"
	case OptOut:
		return "opt-out"
	default:
		return "unset"
	}
}

// record is one stored consent decision.
type record struct {
	data    string // vocabulary data category (possibly composite); "" = all data
	purpose string // vocabulary purpose (possibly composite); "" = all purposes
	choice  Choice
	at      time.Time
	expires time.Time // zero = never (HIPAA authorizations often carry an expiry)
}

// Store is a thread-safe consent registry.
type Store struct {
	mu sync.RWMutex
	v  *vocab.Vocabulary
	// DefaultAllow is the store-wide default when no patient choice
	// applies. HIPAA treatment/payment/operations default to allowed.
	defaultAllow bool
	byPatient    map[string][]record
	// optOuts counts the OptOut records ever stored per patient (not
	// expiry-adjusted — a superset is enough). Under defaultAllow only
	// these patients can be denied, so OptedOut scans this candidate
	// set instead of every recorded choice in the store.
	optOuts map[string]int
	// inv memoizes OptedOut results per normalized (data, purpose),
	// valid while gen is unchanged and no candidate record expires.
	// Bounded by invCacheMax with wholesale drop, like
	// policy.RangeCache.
	inv map[invKey]invEntry
	// gen counts mutations (Set/SetWithExpiry/Revoke). Read lock-free
	// by the enforcement decision snapshot and the inv cache.
	gen atomic.Uint64
}

// invKey identifies one inverted-index entry.
type invKey struct{ data, purpose string }

// invEntry is a memoized OptedOut result.
type invEntry struct {
	gen      uint64    // store generation the entry was computed at
	at       time.Time // instant the entry was computed for
	horizon  time.Time // earliest candidate expiry after at; zero = none
	patients []string  // sorted; never mutated after install
}

// invCacheMax bounds the inverted index; on overflow the whole map is
// dropped and rebuilt on demand.
const invCacheMax = 1024

// NewStore builds a consent store over the given vocabulary.
// defaultAllow selects the behaviour when a patient has recorded no
// applicable choice.
func NewStore(v *vocab.Vocabulary, defaultAllow bool) *Store {
	return &Store{
		v:            v,
		defaultAllow: defaultAllow,
		byPatient:    make(map[string][]record),
		optOuts:      make(map[string]int),
		inv:          make(map[invKey]invEntry),
	}
}

// Set records a choice for patient over (data, purpose). Empty data
// or purpose mean "any". The most recent, most specific choice wins
// at decision time.
func (s *Store) Set(patient, data, purpose string, choice Choice, at time.Time) error {
	return s.SetWithExpiry(patient, data, purpose, choice, at, time.Time{})
}

// SetWithExpiry is Set with an expiration instant, after which the
// record no longer applies (HIPAA authorizations typically expire).
// A zero expiry never lapses.
func (s *Store) SetWithExpiry(patient, data, purpose string, choice Choice, at, expires time.Time) error {
	if vocab.Norm(patient) == "" {
		return fmt.Errorf("consent: empty patient id")
	}
	if choice != OptIn && choice != OptOut {
		return fmt.Errorf("consent: choice must be opt-in or opt-out")
	}
	if !expires.IsZero() && !expires.After(at) {
		return fmt.Errorf("consent: expiry %v is not after the record time %v", expires, at)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := vocab.Norm(patient)
	s.byPatient[key] = append(s.byPatient[key], record{
		data:    vocab.Norm(data),
		purpose: vocab.Norm(purpose),
		choice:  choice,
		at:      at,
		expires: expires,
	})
	if choice == OptOut {
		s.optOuts[key]++
	}
	s.gen.Add(1)
	return nil
}

// Revoke removes every recorded choice of the patient, returning the
// number of records dropped.
func (s *Store) Revoke(patient string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := vocab.Norm(patient)
	n := len(s.byPatient[key])
	if n == 0 {
		return 0
	}
	delete(s.byPatient, key)
	delete(s.optOuts, key)
	s.gen.Add(1)
	return n
}

// Generation returns the store mutation counter: it increases on every
// Set/SetWithExpiry/Revoke, so derived artifacts (the inverted index,
// the enforcement decision snapshot) validate with one lock-free load.
func (s *Store) Generation() uint64 {
	return s.gen.Load()
}

// Decision explains a consent check.
type Decision struct {
	Allowed bool
	// Matched reports whether a recorded choice applied (false: the
	// store default decided).
	Matched bool
	Choice  Choice
}

// Check decides whether the patient's data in the given category may
// be used for the given purpose, as of now. See CheckAt.
func (s *Store) Check(patient, data, purpose string) Decision {
	return s.CheckAt(patient, data, purpose, time.Now())
}

// CheckAt decides whether the patient's data in the given category
// may be used for the given purpose at instant now. Specificity: a
// record matches when its data term subsumes the requested category
// and its purpose term subsumes the requested purpose (empty terms
// subsume everything) and it has not expired. Among matches, deeper
// (more specific) records win; ties break to the most recent record.
func (s *Store) CheckAt(patient, data, purpose string, now time.Time) Decision {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.decideLocked(s.byPatient[vocab.Norm(patient)], data, purpose, now)
}

// decideLocked applies the CheckAt decision procedure to one patient's
// records. Callers hold s.mu (read or write).
func (s *Store) decideLocked(recs []record, data, purpose string, now time.Time) Decision {
	best := -1
	bestSpec := -1
	for i, r := range recs {
		if !r.expires.IsZero() && now.After(r.expires) {
			continue
		}
		if !s.subsumes("data", r.data, data) || !s.subsumes("purpose", r.purpose, purpose) {
			continue
		}
		spec := s.specificity("data", r.data) + s.specificity("purpose", r.purpose)
		if spec > bestSpec || (spec == bestSpec && best >= 0 && !recs[i].at.Before(recs[best].at)) {
			best = i
			bestSpec = spec
		}
	}
	if best < 0 {
		return Decision{Allowed: s.defaultAllow, Matched: false, Choice: Unset}
	}
	r := recs[best]
	return Decision{Allowed: r.choice == OptIn, Matched: true, Choice: r.choice}
}

// Allowed is Check(...).Allowed.
func (s *Store) Allowed(patient, data, purpose string) bool {
	return s.Check(patient, data, purpose).Allowed
}

// subsumes treats an empty recorded term as "any".
func (s *Store) subsumes(attr, recorded, requested string) bool {
	if recorded == "" {
		return true
	}
	return s.v.Subsumes(attr, recorded, requested)
}

// specificity scores a recorded term: empty = 0, otherwise its depth
// in the hierarchy (unknown values count as depth 1).
func (s *Store) specificity(attr, value string) int {
	if value == "" {
		return 0
	}
	h := s.v.Hierarchy(attr)
	if h == nil {
		return 1
	}
	if d := h.Depth(value); d > 0 {
		return d
	}
	return 1
}

// Patients lists patients with recorded choices, sorted.
func (s *Store) Patients() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byPatient))
	for p := range s.byPatient {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// OptedOut returns the patients whose recorded choices deny the given
// (data, purpose) access as of now; the enforcement layer uses this to
// rewrite queries with a patient exclusion predicate.
func (s *Store) OptedOut(data, purpose string) []string {
	return s.OptedOutAt(data, purpose, time.Now())
}

// OptedOutAt is OptedOut at instant now. Results are served from an
// incrementally invalidated inverted index: an entry computed at
// generation g for instant t stays valid until the store mutates or a
// candidate record expires, so the common case is a map probe plus a
// copy of the cached (sorted) patient list rather than a rescan of
// every recorded choice.
func (s *Store) OptedOutAt(data, purpose string, now time.Time) []string {
	key := invKey{data: vocab.Norm(data), purpose: vocab.Norm(purpose)}

	s.mu.RLock()
	e, ok := s.inv[key]
	if ok && s.invValidLocked(e, now) {
		out := append([]string(nil), e.patients...)
		s.mu.RUnlock()
		return out
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	// Another goroutine may have filled the entry while the lock was
	// dropped.
	if e, ok := s.inv[key]; ok && s.invValidLocked(e, now) {
		return append([]string(nil), e.patients...)
	}
	e = s.rebuildInvLocked(key, now)
	if len(s.inv) >= invCacheMax {
		s.inv = make(map[invKey]invEntry)
	}
	s.inv[key] = e
	return append([]string(nil), e.patients...)
}

// invValidLocked reports whether entry e still answers for instant
// now: the store is unmutated, now has not moved before the entry's
// computation instant, and no candidate record has expired since.
func (s *Store) invValidLocked(e invEntry, now time.Time) bool {
	if e.gen != s.gen.Load() || now.Before(e.at) {
		return false
	}
	// A record is still active at its exact expiry instant (CheckAt
	// expires with now.After), so the entry answers up to and
	// including the horizon.
	return e.horizon.IsZero() || !now.After(e.horizon)
}

// rebuildInvLocked recomputes one inverted-index entry. Only candidate
// patients are scanned: under defaultAllow a patient without any
// OptOut record can never be denied; under defaultDeny every recorded
// patient is a candidate (patients with no records at all are not
// enumerable and are excluded by the OptedOut contract).
func (s *Store) rebuildInvLocked(key invKey, now time.Time) invEntry {
	e := invEntry{gen: s.gen.Load(), at: now}
	scan := func(patient string, recs []record) {
		for _, r := range recs {
			// expires == now still decides "active", so it bounds the
			// entry (the decision flips just after that instant).
			if !r.expires.IsZero() && !r.expires.Before(now) &&
				(e.horizon.IsZero() || r.expires.Before(e.horizon)) {
				e.horizon = r.expires
			}
		}
		if !s.decideLocked(recs, key.data, key.purpose, now).Allowed {
			e.patients = append(e.patients, patient)
		}
	}
	if s.defaultAllow {
		for patient := range s.optOuts {
			scan(patient, s.byPatient[patient])
		}
	} else {
		for patient, recs := range s.byPatient {
			scan(patient, recs)
		}
	}
	sort.Strings(e.patients)
	return e
}

// ExpiryHorizon returns the earliest record expiry at or after now
// across every stored choice, or the zero time when no such expiry
// exists. The enforcement decision snapshot uses it to bound its own
// validity: up to and including the horizon, no consent decision can
// change without a store mutation (records are active at their exact
// expiry instant and lapse just after it).
func (s *Store) ExpiryHorizon(now time.Time) time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var horizon time.Time
	for _, recs := range s.byPatient {
		for _, r := range recs {
			if !r.expires.IsZero() && !r.expires.Before(now) &&
				(horizon.IsZero() || r.expires.Before(horizon)) {
				horizon = r.expires
			}
		}
	}
	return horizon
}
