// Package consent implements the patient-consent store the HDB
// Control Center feeds (paper §4.1: the enforcement middleware
// returns "only data consistent with policy and patient preferences").
// The model follows the HIPAA practice PRIMA targets: uses and
// disclosures are permitted by default for healthcare operations, and
// each patient may record opt-outs (or explicit opt-ins) per
// (data category, purpose) pair, at any granularity the privacy
// vocabulary supports — a choice recorded for a composite category
// applies to everything beneath it.
package consent

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/vocab"
)

// Choice is a recorded consent decision.
type Choice int

// Choice values. Unset means "no recorded choice": the store default
// applies.
const (
	Unset Choice = iota
	OptIn
	OptOut
)

// String names the choice.
func (c Choice) String() string {
	switch c {
	case OptIn:
		return "opt-in"
	case OptOut:
		return "opt-out"
	default:
		return "unset"
	}
}

// record is one stored consent decision.
type record struct {
	data    string // vocabulary data category (possibly composite); "" = all data
	purpose string // vocabulary purpose (possibly composite); "" = all purposes
	choice  Choice
	at      time.Time
	expires time.Time // zero = never (HIPAA authorizations often carry an expiry)
}

// Store is a thread-safe consent registry.
type Store struct {
	mu sync.RWMutex
	v  *vocab.Vocabulary
	// DefaultAllow is the store-wide default when no patient choice
	// applies. HIPAA treatment/payment/operations default to allowed.
	defaultAllow bool
	byPatient    map[string][]record
}

// NewStore builds a consent store over the given vocabulary.
// defaultAllow selects the behaviour when a patient has recorded no
// applicable choice.
func NewStore(v *vocab.Vocabulary, defaultAllow bool) *Store {
	return &Store{v: v, defaultAllow: defaultAllow, byPatient: make(map[string][]record)}
}

// Set records a choice for patient over (data, purpose). Empty data
// or purpose mean "any". The most recent, most specific choice wins
// at decision time.
func (s *Store) Set(patient, data, purpose string, choice Choice, at time.Time) error {
	return s.SetWithExpiry(patient, data, purpose, choice, at, time.Time{})
}

// SetWithExpiry is Set with an expiration instant, after which the
// record no longer applies (HIPAA authorizations typically expire).
// A zero expiry never lapses.
func (s *Store) SetWithExpiry(patient, data, purpose string, choice Choice, at, expires time.Time) error {
	if vocab.Norm(patient) == "" {
		return fmt.Errorf("consent: empty patient id")
	}
	if choice != OptIn && choice != OptOut {
		return fmt.Errorf("consent: choice must be opt-in or opt-out")
	}
	if !expires.IsZero() && !expires.After(at) {
		return fmt.Errorf("consent: expiry %v is not after the record time %v", expires, at)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := vocab.Norm(patient)
	s.byPatient[key] = append(s.byPatient[key], record{
		data:    vocab.Norm(data),
		purpose: vocab.Norm(purpose),
		choice:  choice,
		at:      at,
		expires: expires,
	})
	return nil
}

// Revoke removes every recorded choice of the patient, returning the
// number of records dropped.
func (s *Store) Revoke(patient string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := vocab.Norm(patient)
	n := len(s.byPatient[key])
	delete(s.byPatient, key)
	return n
}

// Decision explains a consent check.
type Decision struct {
	Allowed bool
	// Matched reports whether a recorded choice applied (false: the
	// store default decided).
	Matched bool
	Choice  Choice
}

// Check decides whether the patient's data in the given category may
// be used for the given purpose, as of now. See CheckAt.
func (s *Store) Check(patient, data, purpose string) Decision {
	return s.CheckAt(patient, data, purpose, time.Now())
}

// CheckAt decides whether the patient's data in the given category
// may be used for the given purpose at instant now. Specificity: a
// record matches when its data term subsumes the requested category
// and its purpose term subsumes the requested purpose (empty terms
// subsume everything) and it has not expired. Among matches, deeper
// (more specific) records win; ties break to the most recent record.
func (s *Store) CheckAt(patient, data, purpose string, now time.Time) Decision {
	s.mu.RLock()
	defer s.mu.RUnlock()
	recs := s.byPatient[vocab.Norm(patient)]
	best := -1
	bestSpec := -1
	for i, r := range recs {
		if !r.expires.IsZero() && now.After(r.expires) {
			continue
		}
		if !s.subsumes("data", r.data, data) || !s.subsumes("purpose", r.purpose, purpose) {
			continue
		}
		spec := s.specificity("data", r.data) + s.specificity("purpose", r.purpose)
		if spec > bestSpec || (spec == bestSpec && best >= 0 && !recs[i].at.Before(recs[best].at)) {
			best = i
			bestSpec = spec
		}
	}
	if best < 0 {
		return Decision{Allowed: s.defaultAllow, Matched: false, Choice: Unset}
	}
	r := recs[best]
	return Decision{Allowed: r.choice == OptIn, Matched: true, Choice: r.choice}
}

// Allowed is Check(...).Allowed.
func (s *Store) Allowed(patient, data, purpose string) bool {
	return s.Check(patient, data, purpose).Allowed
}

// subsumes treats an empty recorded term as "any".
func (s *Store) subsumes(attr, recorded, requested string) bool {
	if recorded == "" {
		return true
	}
	return s.v.Subsumes(attr, recorded, requested)
}

// specificity scores a recorded term: empty = 0, otherwise its depth
// in the hierarchy (unknown values count as depth 1).
func (s *Store) specificity(attr, value string) int {
	if value == "" {
		return 0
	}
	h := s.v.Hierarchy(attr)
	if h == nil {
		return 1
	}
	if d := h.Depth(value); d > 0 {
		return d
	}
	return 1
}

// Patients lists patients with recorded choices, sorted.
func (s *Store) Patients() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byPatient))
	for p := range s.byPatient {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// OptedOut returns the patients whose recorded choices deny the given
// (data, purpose) access; the enforcement layer uses this to rewrite
// queries with a patient exclusion predicate.
func (s *Store) OptedOut(data, purpose string) []string {
	s.mu.RLock()
	patients := make([]string, 0, len(s.byPatient))
	for p := range s.byPatient {
		patients = append(patients, p)
	}
	s.mu.RUnlock()

	var out []string
	for _, p := range patients {
		if !s.Allowed(p, data, purpose) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
