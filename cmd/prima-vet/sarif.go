package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 rendering, the minimal subset CI artifact viewers and
// code-scanning uploads consume: one run, one rule per analyzer, one
// result per finding with a physical location relative to the module
// root.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the findings of one invocation as a SARIF log.
// File URIs are module-root-relative with forward slashes.
func writeSARIF(w io.Writer, root string, selected []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(selected))
	for _, a := range selected {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relPath(root, f.Pos.Filename))},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "prima-vet", Rules: rules}},
			Results: results,
		}},
	})
}

// relPath makes name module-root-relative when it lies under root, so
// both machine formats (-json and -sarif) are portable across CI
// machines; paths outside the module stay absolute.
func relPath(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON renders findings as a JSON array (empty array when clean,
// never null, so consumers can range unconditionally). File fields are
// module-root-relative, matching the SARIF URIs.
func writeJSON(w io.Writer, root string, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: relPath(root, f.Pos.Filename), Line: f.Pos.Line, Column: f.Pos.Column,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
