package policy

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseRule(t *testing.T) {
	r, err := ParseRule("data=referral & purpose=treatment & authorized=nurse")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if v, _ := r.Value("data"); v != "referral" {
		t.Errorf("data = %q", v)
	}
	// Comma separator and spacing variants.
	r2, err := ParseRule("purpose = treatment,data=referral,authorized=nurse")
	if err != nil {
		t.Fatal(err)
	}
	if r.Key() != r2.Key() {
		t.Errorf("separator variants differ: %q vs %q", r.Key(), r2.Key())
	}
}

func TestParseRuleErrors(t *testing.T) {
	for _, in := range []string{"", "   ", "noequals", "a=1 & broken"} {
		if _, err := ParseRule(in); err == nil {
			t.Errorf("ParseRule(%q): want error", in)
		}
	}
}

func TestCompactRoundTrip(t *testing.T) {
	r := MustRule(T("data", "insurance"), T("purpose", "billing"), T("authorized", "nurse"))
	back, err := ParseRule(r.Compact())
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != r.Key() {
		t.Errorf("round trip changed rule: %q vs %q", back.Key(), r.Key())
	}
}

func TestParsePolicy(t *testing.T) {
	src := `
# the ideal workflow
data=clinical & purpose=treatment & authorized=nurse
data=psychiatry & purpose=treatment & authorized=psychiatrist

data=demographic & purpose=billing & authorized=clerk
data=clinical & purpose=treatment & authorized=nurse
`
	p, err := ParsePolicyString("PS", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 { // duplicate collapsed
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	if p.Name != "PS" {
		t.Errorf("Name = %q", p.Name)
	}
}

func TestParsePolicyError(t *testing.T) {
	if _, err := ParsePolicyString("PS", "good=rule\nbad rule\n"); err == nil {
		t.Error("malformed line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not locate the line: %v", err)
	}
	// A '#'-leading attribute cannot round-trip: sorted terms may put
	// it at the start of the line, where re-parse reads a comment
	// (found by FuzzDecodePolicy; the corpus entry pins it too).
	if _, err := ParseRule("z=1 & #a=2"); err == nil {
		t.Error("'#'-leading attribute accepted")
	}
}

func TestPolicyTextRoundTrip(t *testing.T) {
	p := FromRules("PS",
		MustRule(T("data", "clinical"), T("purpose", "treatment"), T("authorized", "nurse")),
		MustRule(T("data", "demographic"), T("purpose", "billing"), T("authorized", "clerk")),
	)
	back, err := ParsePolicyString(p.Name, p.TextString())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != p.Len() {
		t.Fatalf("round trip changed rule count")
	}
	for _, r := range p.Rules() {
		if !back.Contains(r) {
			t.Errorf("round trip lost %v", r)
		}
	}
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	p := FromRules("AL",
		MustRule(T("data", "referral"), T("purpose", "registration"), T("authorized", "nurse")),
	)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Policy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "AL" || back.Len() != 1 || !back.Contains(p.Rules()[0]) {
		t.Errorf("JSON round trip mismatch: %v", &back)
	}
}

func TestRuleJSONNormalizes(t *testing.T) {
	var r Rule
	src := `[{"attr":"purpose","value":"billing"},{"attr":"data","value":"insurance"}]`
	if err := json.Unmarshal([]byte(src), &r); err != nil {
		t.Fatal(err)
	}
	if r.Terms()[0].Attr != "data" {
		t.Errorf("rule not normalized after JSON decode: %v", r)
	}
	if err := json.Unmarshal([]byte(`[]`), &r); err == nil {
		t.Error("empty rule accepted via JSON")
	}
	if err := json.Unmarshal([]byte(`"x"`), &r); err == nil {
		t.Error("bad JSON shape accepted")
	}
}
