// Package hdb implements the Hippocratic Database components PRIMA
// builds on (paper §4.1, Figures 4–5): Active Enforcement — a
// middleware layer that rewrites user queries so that "only data
// consistent with policy and patient preferences is returned" — and
// Compliance Auditing — the automatic generation of an audit entry,
// in the paper's schema, for every request, including the
// break-the-glass path that records exception-based access.
//
// The IBM HDB products are closed; this package reproduces their
// contract over the minidb engine (see DESIGN.md, substitution
// table).
package hdb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/consent"
	"repro/internal/minidb"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/vocab"
)

// Principal identifies the requesting user and their authorization
// category (role).
type Principal struct {
	User string // prima:phi — requesting user identity
	Role string
}

// Validate reports missing identity fields.
func (p Principal) Validate() error {
	if strings.TrimSpace(p.User) == "" || strings.TrimSpace(p.Role) == "" {
		return fmt.Errorf("hdb: principal needs both user and role")
	}
	return nil
}

// TableMapping declares how a clinical table maps onto the privacy
// vocabulary: which column identifies the patient and which data
// category each column carries. Columns without a category (ids,
// timestamps) are exempt from policy checks.
type TableMapping struct {
	Table      string
	PatientCol string            // empty when the table holds no patient data
	Categories map[string]string // column name -> data category
}

// ErrDenied is returned when policy forbids the access; the caller
// may retry through BreakGlass, which is exactly the workflow the
// paper's exception-based access describes.
var ErrDenied = errors.New("hdb: access denied by policy")

// Enforcer is the Active Enforcement + Compliance Auditing middleware
// in front of a minidb database.
type Enforcer struct {
	db      *minidb.Database
	ps      *policy.Policy
	v       *vocab.Vocabulary
	consent *consent.Store
	log     *audit.Log

	mu       sync.RWMutex
	mappings map[string]*TableMapping // lower(table) -> mapping

	// Lock-free per-query state: the fast path reads all of it with
	// atomic loads only (see fastpath.go).
	clock  atomic.Pointer[func() time.Time]
	strict atomic.Bool   // reject out-of-vocabulary purposes and roles
	fast   atomic.Bool   // compiled enforcement path toggle
	mapGen atomic.Uint64 // bumped by RegisterTable; keys plan validity
	snap   atomic.Pointer[decisionSnapshot]
	plans  sync.Map // sql -> *queryPlan
	planN  atomic.Int64
	snapb  snapshotBuilder
}

// New builds an enforcer. The policy store is held by reference:
// rules adopted by refinement become effective on the next query.
// consent may be nil (no consent filtering); log may be nil (no
// auditing) although a PRIMA deployment always audits.
func New(db *minidb.Database, ps *policy.Policy, v *vocab.Vocabulary, cs *consent.Store, log *audit.Log) *Enforcer {
	e := &Enforcer{
		db: db, ps: ps, v: v, consent: cs, log: log,
		mappings: make(map[string]*TableMapping),
	}
	now := time.Now
	e.clock.Store(&now)
	e.fast.Store(true)
	return e
}

// SetClock overrides the audit timestamp source; tests and the
// workflow simulator use it for deterministic logs.
func (e *Enforcer) SetClock(clock func() time.Time) {
	e.clock.Store(&clock)
}

// SetStrictVocabulary toggles strict mode: when on, queries carrying
// a purpose or role unknown to the vocabulary are rejected outright.
// Strict mode keeps the audit log analyzable — refinement groups by
// these values — at the cost of refusing misconfigured clients.
func (e *Enforcer) SetStrictVocabulary(on bool) {
	e.strict.Store(on)
}

// checkVocabulary enforces strict mode for a principal and purpose.
func (e *Enforcer) checkVocabulary(p Principal, purpose string) error {
	if !e.strict.Load() {
		return nil
	}
	if h := e.v.Hierarchy("purpose"); h != nil && !h.Contains(purpose) {
		return fmt.Errorf("hdb: purpose %q is not in the vocabulary", report.RedactValue(purpose))
	}
	if h := e.v.Hierarchy("authorized"); h != nil && !h.Contains(p.Role) {
		return fmt.Errorf("hdb: role %q is not in the vocabulary", p.Role)
	}
	return nil
}

// DB exposes the underlying database for administrative paths
// (loading fixtures); application reads must go through Query.
func (e *Enforcer) DB() *minidb.Database { return e.db }

// Policy returns the enforced policy store.
func (e *Enforcer) Policy() *policy.Policy { return e.ps }

// AuditLog returns the compliance audit log (nil when unaudited).
func (e *Enforcer) AuditLog() *audit.Log { return e.log }

// RegisterTable validates and installs a table mapping.
func (e *Enforcer) RegisterTable(m TableMapping) error {
	tbl, err := e.db.Table(m.Table)
	if err != nil {
		return err
	}
	cols := make(map[string]bool)
	for _, c := range tbl.Columns() {
		cols[strings.ToLower(c.Name)] = true
	}
	if m.PatientCol != "" && !cols[strings.ToLower(m.PatientCol)] {
		return fmt.Errorf("hdb: table %q has no patient column %q", m.Table, m.PatientCol)
	}
	norm := &TableMapping{
		Table:      m.Table,
		PatientCol: strings.ToLower(m.PatientCol),
		Categories: make(map[string]string, len(m.Categories)),
	}
	for col, cat := range m.Categories {
		lc := strings.ToLower(col)
		if !cols[lc] {
			return fmt.Errorf("hdb: table %q has no column %q", m.Table, col)
		}
		if h := e.v.Hierarchy("data"); h != nil && !h.Contains(cat) {
			return fmt.Errorf("hdb: data category %q is not in the vocabulary", cat)
		}
		norm.Categories[lc] = cat
	}
	e.mu.Lock()
	e.mappings[strings.ToLower(m.Table)] = norm
	e.mu.Unlock()
	// Invalidate compiled plans that captured the previous mapping.
	e.mapGen.Add(1)
	return nil
}

// Mappings returns the registered table mappings, sorted by table
// name; used for system snapshots.
func (e *Enforcer) Mappings() []TableMapping {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]TableMapping, 0, len(e.mappings))
	for _, m := range e.mappings {
		cp := TableMapping{Table: m.Table, PatientCol: m.PatientCol, Categories: make(map[string]string, len(m.Categories))}
		for k, v := range m.Categories {
			cp.Categories[k] = v
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return strings.ToLower(out[i].Table) < strings.ToLower(out[j].Table) })
	return out
}

func (e *Enforcer) mapping(table string) (*TableMapping, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if m, ok := e.mappings[strings.ToLower(table)]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("hdb: table %q is not registered for enforcement", table)
}

// policyRange returns the ground range of the policy store from the
// shared range cache. The store's version counter makes the staleness
// check O(1): no per-query fingerprint of the rule set.
func (e *Enforcer) policyRange() (*policy.Range, error) {
	return policy.Shared.Range(e.ps, e.v, 0)
}

// allowed checks (data category, purpose, role) against the policy
// store range. Ground triples — the overwhelmingly common case at
// enforcement time — are tested by canonical key without constructing
// a rule; composite runtime values fall back to requiring all their
// ground rules to be present.
func (e *Enforcer) allowed(rg *policy.Range, category, purpose, role string) bool {
	if e.v.IsGround("data", category) && e.v.IsGround("purpose", purpose) && e.v.IsGround("authorized", role) {
		return rg.ContainsKey(policy.TripleKey(category, purpose, role))
	}
	rule := policy.MustRule(
		policy.T("data", category),
		policy.T("purpose", purpose),
		policy.T("authorized", role),
	)
	grounds, truncated := rule.Groundings(e.v, policy.DefaultRangeLimit)
	if truncated {
		return false
	}
	for _, g := range grounds {
		if !rg.Contains(g) {
			return false
		}
	}
	return true
}

// Access describes the outcome of one enforced query.
type Access struct {
	Categories []string // data categories the query touched
	Masked     []string // output columns nulled by policy
	Denied     []string // categories that caused denial (non-output use)
	OptedOut   int      // patients excluded by consent
	Exception  bool     // break-the-glass path
	Entries    []audit.Entry
}

// Query enforces policy and consent on a SELECT statement, executes
// the rewritten query, and audits the access (status 1, regular).
//
// Enforcement semantics:
//   - output columns whose category the policy denies for
//     (purpose, role) are masked to NULL;
//   - denied categories used outside the output (WHERE, GROUP BY,
//     HAVING, ORDER BY) reject the whole query with ErrDenied, since
//     filtering on a forbidden category would leak it;
//   - if every categorized output column is denied the query is
//     rejected with ErrDenied;
//   - rows of patients whose consent excludes any accessed category
//     for this purpose are filtered out by rewriting WHERE.
func (e *Enforcer) Query(p Principal, purpose, sql string) (*minidb.Result, *Access, error) {
	return e.run(p, purpose, "", sql, false)
}

// BreakGlass executes the query bypassing policy and consent — the
// exception-based access path — and audits it with status 0 and the
// mandatory reason.
func (e *Enforcer) BreakGlass(p Principal, purpose, reason, sql string) (*minidb.Result, *Access, error) {
	if strings.TrimSpace(reason) == "" {
		return nil, nil, fmt.Errorf("hdb: break-glass access requires a reason")
	}
	return e.run(p, purpose, reason, sql, true)
}

// run dispatches between the compiled fast path (fastpath.go) and the
// reference slow path below. Both produce byte-identical results,
// errors, and audit entries; the differential suite in
// fastpath_test.go holds them to that.
func (e *Enforcer) run(p Principal, purpose, reason, sql string, breakGlass bool) (*minidb.Result, *Access, error) {
	if e.fast.Load() {
		return e.runFast(p, purpose, reason, sql, breakGlass)
	}
	return e.runSlow(p, purpose, reason, sql, breakGlass)
}

func (e *Enforcer) runSlow(p Principal, purpose, reason, sql string, breakGlass bool) (*minidb.Result, *Access, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if strings.TrimSpace(purpose) == "" {
		return nil, nil, fmt.Errorf("hdb: a purpose is required (HIPAA purpose specification)")
	}
	if err := e.checkVocabulary(p, purpose); err != nil {
		return nil, nil, err
	}
	st, err := minidb.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := st.(*minidb.SelectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("hdb: only SELECT statements pass through enforcement")
	}
	if len(sel.Joins) > 0 {
		return nil, nil, fmt.Errorf("hdb: joins are not supported under enforcement; query one registered table at a time")
	}
	m, err := e.mapping(sel.Table)
	if err != nil {
		return nil, nil, err
	}
	tbl, err := e.db.Table(sel.Table)
	if err != nil {
		return nil, nil, err
	}

	// Expand * so per-column decisions are possible.
	expandStar(sel, tbl)

	outCols := columnsOf(selectExprs(sel))
	otherCols := columnsOf(nonOutputExprs(sel))

	outCats := categoriesOf(outCols, m)
	otherCats := categoriesOf(otherCols, m)

	allCats := union(outCats, otherCats)
	acc := &Access{Categories: allCats, Exception: breakGlass}

	if !breakGlass {
		rg, err := e.policyRange()
		if err != nil {
			return nil, nil, err
		}
		// Non-output use of a denied category rejects the query.
		for _, cat := range otherCats {
			if !e.allowed(rg, cat, purpose, p.Role) {
				acc.Denied = append(acc.Denied, cat)
			}
		}
		if len(acc.Denied) > 0 {
			e.audit(p, purpose, reason, acc, audit.Deny, acc.Denied)
			return nil, acc, fmt.Errorf("%w: %s not permitted for %s by %s",
				ErrDenied, strings.Join(acc.Denied, ", "), report.RedactValue(purpose), p.Role)
		}
		// Mask denied output columns.
		deniedOut := map[string]bool{}
		for _, cat := range outCats {
			if !e.allowed(rg, cat, purpose, p.Role) {
				deniedOut[cat] = true
			}
		}
		if len(deniedOut) > 0 {
			masked, kept := maskColumns(sel, m, deniedOut)
			acc.Masked = masked
			if kept == 0 {
				cats := keys(deniedOut)
				e.audit(p, purpose, reason, acc, audit.Deny, cats)
				return nil, acc, fmt.Errorf("%w: no permitted columns remain for %s by %s",
					ErrDenied, report.RedactValue(purpose), p.Role)
			}
		}
		// Consent filtering over the categories actually returned.
		if e.consent != nil && m.PatientCol != "" {
			excluded := map[string]bool{}
			for _, cat := range allCats {
				if deniedOut[cat] {
					continue
				}
				for _, pat := range e.consent.OptedOut(cat, purpose) {
					excluded[pat] = true
				}
			}
			if len(excluded) > 0 {
				addConsentPredicate(sel, m.PatientCol, keys(excluded))
				acc.OptedOut = len(excluded)
			}
		}
	}

	res, err := e.db.ExecStmt(sel)
	if err != nil {
		return nil, nil, err
	}
	grantedCats := allCats
	e.audit(p, purpose, reason, acc, audit.Allow, grantedCats)
	return res, acc, nil
}

// audit writes one compliance entry per touched data category, as the
// paper's single-valued (data, d) schema requires.
func (e *Enforcer) audit(p Principal, purpose, reason string, acc *Access, op audit.Op, cats []string) {
	if e.log == nil {
		return
	}
	status := audit.Regular
	if acc.Exception {
		status = audit.Exception
	}
	now := (*e.clock.Load())()
	batch := make([]audit.Entry, 0, len(cats))
	for _, cat := range cats {
		batch = append(batch, audit.Entry{
			Time:       now,
			Op:         op,
			User:       p.User,
			Data:       cat,
			Purpose:    purpose,
			Authorized: p.Role,
			Status:     status,
			Reason:     reason,
		})
	}
	// One batched append: a single validation pass and one sink
	// enqueue run per query instead of per touched category.
	if err := e.log.Append(batch...); err == nil {
		acc.Entries = append(acc.Entries, batch...)
	}
}

// ---- AST analysis and rewriting ----

// expandStar replaces bare * items with one item per table column.
func expandStar(sel *minidb.SelectStmt, tbl *minidb.Table) {
	var items []minidb.SelectItem
	for _, it := range sel.Items {
		if !it.Star {
			items = append(items, it)
			continue
		}
		for _, c := range tbl.Columns() {
			items = append(items, minidb.SelectItem{
				Expr:  &minidb.ColRef{Name: c.Name},
				Alias: c.Name,
			})
		}
	}
	sel.Items = items
}

func selectExprs(sel *minidb.SelectStmt) []minidb.Expr {
	var out []minidb.Expr
	for _, it := range sel.Items {
		if it.Expr != nil {
			out = append(out, it.Expr)
		}
	}
	return out
}

func nonOutputExprs(sel *minidb.SelectStmt) []minidb.Expr {
	var out []minidb.Expr
	if sel.Where != nil {
		out = append(out, sel.Where)
	}
	out = append(out, sel.GroupBy...)
	if sel.Having != nil {
		out = append(out, sel.Having)
	}
	for _, ob := range sel.OrderBy {
		out = append(out, ob.Expr)
	}
	return out
}

// columnsOf collects every column name referenced by the expressions,
// sorted and deduplicated. Queries reference a handful of columns, so
// the set is kept as a small sorted slice (binary-search insert)
// rather than a map — no map allocation on the per-query path.
func columnsOf(exprs []minidb.Expr) []string {
	var out []string
	for _, e := range exprs {
		out = collectColumns(out, e)
	}
	return out
}

func collectColumns(out []string, e minidb.Expr) []string {
	switch x := e.(type) {
	case nil:
		return out
	case *minidb.ColRef:
		name := x.Name
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			name = name[i+1:]
		}
		return insertSorted(out, strings.ToLower(name))
	case *minidb.Unary:
		return collectColumns(out, x.X)
	case *minidb.Binary:
		return collectColumns(collectColumns(out, x.L), x.R)
	case *minidb.Call:
		for _, a := range x.Args {
			out = collectColumns(out, a)
		}
		return out
	case *minidb.InList:
		out = collectColumns(out, x.X)
		for _, a := range x.List {
			out = collectColumns(out, a)
		}
		return out
	case *minidb.Like:
		return collectColumns(collectColumns(out, x.X), x.Pattern)
	case *minidb.IsNull:
		return collectColumns(out, x.X)
	}
	return out
}

// categoriesOf maps column names to their data categories (sorted,
// deduplicated); unmapped columns carry no category. The dominant
// one-or-two-category case stays on a small sorted slice.
func categoriesOf(cols []string, m *TableMapping) []string {
	var out []string
	for _, c := range cols {
		if cat, ok := m.Categories[c]; ok {
			out = insertSorted(out, cat)
		}
	}
	return out
}

// maskColumns nulls out the output items whose category is denied,
// keeping their names. Returns the masked column names and how many
// categorized output columns remain visible.
func maskColumns(sel *minidb.SelectStmt, m *TableMapping, denied map[string]bool) (masked []string, kept int) {
	for i, it := range sel.Items {
		cols := columnsOf([]minidb.Expr{it.Expr})
		hit := false
		categorized := false
		for _, c := range cols {
			if cat, ok := m.Categories[c]; ok {
				categorized = true
				if denied[cat] {
					hit = true
				}
			}
		}
		if hit {
			name := it.Alias
			if name == "" {
				name = it.Expr.String()
			}
			sel.Items[i] = minidb.SelectItem{
				Expr:  &minidb.Literal{Val: minidb.Null()},
				Alias: name,
			}
			masked = append(masked, name)
		} else if categorized {
			kept++
		}
	}
	sort.Strings(masked)
	return masked, kept
}

// addConsentPredicate rewrites WHERE with
// "AND patientCol NOT IN ('p1', ...)".
func addConsentPredicate(sel *minidb.SelectStmt, patientCol string, patients []string) {
	list := make([]minidb.Expr, len(patients))
	for i, p := range patients {
		list[i] = &minidb.Literal{Val: minidb.Text(p)}
	}
	pred := &minidb.InList{X: &minidb.ColRef{Name: patientCol}, Not: true, List: list}
	if sel.Where == nil {
		sel.Where = pred
	} else {
		sel.Where = &minidb.Binary{Op: "AND", L: sel.Where, R: pred}
	}
}

// union merges two sorted, deduplicated slices. The result is always
// non-nil (callers serialize it) and may alias an input when the other
// is empty; neither input is mutated afterwards.
func union(a, b []string) []string {
	if len(b) == 0 {
		if a == nil {
			return []string{}
		}
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func keys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
