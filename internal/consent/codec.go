package consent

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// MarshalJSON renders the choice as its string form.
func (c Choice) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON accepts "opt-in", "opt-out", "unset".
func (c *Choice) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("consent: %w", err)
	}
	switch s {
	case "opt-in":
		*c = OptIn
	case "opt-out":
		*c = OptOut
	case "unset":
		*c = Unset
	default:
		return fmt.Errorf("consent: unknown choice %q", s)
	}
	return nil
}

// Record is the exportable form of one consent decision.
type Record struct {
	Patient string    `json:"patient"`
	Data    string    `json:"data,omitempty"`
	Purpose string    `json:"purpose,omitempty"`
	Choice  Choice    `json:"choice"`
	At      time.Time `json:"at"`
	Expires time.Time `json:"expires,omitempty"`
}

// Export returns every recorded decision, sorted by patient then
// record time, suitable for snapshotting.
func (s *Store) Export() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for patient, recs := range s.byPatient {
		for _, r := range recs {
			out = append(out, Record{
				Patient: patient,
				Data:    r.data,
				Purpose: r.purpose,
				Choice:  r.choice,
				At:      r.at,
				Expires: r.expires,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Patient != out[j].Patient {
			return out[i].Patient < out[j].Patient
		}
		return out[i].At.Before(out[j].At)
	})
	return out
}

// Import replays exported records into the store (appending to any
// existing state).
func (s *Store) Import(records []Record) error {
	for i, r := range records {
		if err := s.SetWithExpiry(r.Patient, r.Data, r.Purpose, r.Choice, r.At, r.Expires); err != nil {
			return fmt.Errorf("consent: record %d: %w", i, err)
		}
	}
	return nil
}
