package mining

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func item(attr, val string) Item { return Item{Attr: attr, Value: val} }

// classic toy basket data.
func basketTxs() []Transaction {
	mk := func(vals ...string) Transaction {
		items := make([]Item, len(vals))
		for i, v := range vals {
			items[i] = item("item", v)
		}
		return NewItemset(items...)
	}
	return []Transaction{
		mk("bread", "milk"),
		mk("bread", "diapers", "beer", "eggs"),
		mk("milk", "diapers", "beer", "cola"),
		mk("bread", "milk", "diapers", "beer"),
		mk("bread", "milk", "diapers", "cola"),
	}
}

func TestNewItemsetNormalizes(t *testing.T) {
	s := NewItemset(item("b", "2"), item("a", "1"), item("B", "2"))
	if len(s) != 2 {
		t.Fatalf("dedup failed: %v", s)
	}
	if s[0].Attr != "a" {
		t.Errorf("not sorted: %v", s)
	}
	if s.Key() != "a=1&b=2" {
		t.Errorf("Key = %q", s.Key())
	}
}

func TestContains(t *testing.T) {
	s := NewItemset(item("a", "1"), item("b", "2"), item("c", "3"))
	if !s.Contains(NewItemset(item("a", "1"), item("c", "3"))) {
		t.Error("subset not contained")
	}
	if s.Contains(NewItemset(item("a", "1"), item("d", "4"))) {
		t.Error("non-subset contained")
	}
	if !s.Contains(NewItemset()) {
		t.Error("empty set not contained")
	}
	if NewItemset().Contains(s) {
		t.Error("empty contains non-empty")
	}
}

func TestAprioriBaskets(t *testing.T) {
	res, err := Apriori(basketTxs(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Known frequent items at support 3: bread(4), milk(4), diapers(4), beer(3).
	l1 := res.OfSize(1)
	if len(l1) != 4 {
		t.Fatalf("L1 = %v", l1)
	}
	want2 := map[string]int{
		"item=bread&item=diapers": 3,
		"item=bread&item=milk":    3,
		"item=diapers&item=milk":  3,
		"item=beer&item=diapers":  3,
	}
	l2 := res.OfSize(2)
	if len(l2) != len(want2) {
		t.Fatalf("L2 = %v", l2)
	}
	for _, f := range l2 {
		if want2[f.Items.Key()] != f.Support {
			t.Errorf("L2 %s support %d, want %d", f.Items, f.Support, want2[f.Items.Key()])
		}
	}
	if len(res.OfSize(3)) != 0 {
		t.Errorf("L3 = %v (no 3-set reaches support 3)", res.OfSize(3))
	}
	if res.Lookup(NewItemset(item("item", "bread"), item("item", "milk"))) != 3 {
		t.Error("Lookup failed")
	}
	if res.Lookup(NewItemset(item("item", "cola"))) != 0 {
		t.Error("infrequent Lookup should be 0")
	}
}

func TestAprioriMinSupportOne(t *testing.T) {
	res, err := Apriori(basketTxs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Four of the five transactions contain exactly four items, and
	// no 4-itemset is shared, so L4 has four sets of support 1.
	if len(res.OfSize(4)) != 4 {
		t.Errorf("L4 = %v", res.OfSize(4))
	}
	if len(res.OfSize(5)) != 0 {
		t.Errorf("L5 = %v", res.OfSize(5))
	}
}

func TestAprioriErrorsAndEmpty(t *testing.T) {
	if _, err := Apriori(nil, 0); err == nil {
		t.Error("minSupport 0 accepted")
	}
	res, err := Apriori(nil, 1)
	if err != nil || len(res.Frequent) != 0 {
		t.Errorf("empty mining: %v %v", res, err)
	}
}

func TestAssociationRules(t *testing.T) {
	res, err := Apriori(basketTxs(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := AssociationRules(res, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// beer => diapers has confidence 3/3 = 1.0.
	found := false
	for _, r := range rules {
		if r.Antecedent.Key() == "item=beer" && r.Consequent.Key() == "item=diapers" {
			found = true
			if r.Confidence != 1.0 || r.Support != 3 {
				t.Errorf("beer=>diapers metrics: %+v", r)
			}
		}
		if r.Confidence < 0.9 {
			t.Errorf("rule below threshold: %v", r)
		}
	}
	if !found {
		t.Errorf("beer => diapers not derived; rules: %v", rules)
	}
	if _, err := AssociationRules(res, 0); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := AssociationRules(res, 1.5); err == nil {
		t.Error("confidence > 1 accepted")
	}
}

// Property: every subset of a frequent itemset is frequent with at
// least the same support (downward closure), checked on random data.
func TestDownwardClosureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var txs []Transaction
		for i := 0; i < 30; i++ {
			var items []Item
			for a := 0; a < 4; a++ {
				items = append(items, Item{Attr: string(rune('a' + a)), Value: string(rune('0' + rng.Intn(3)))})
			}
			txs = append(txs, NewItemset(items...))
		}
		res, err := Apriori(txs, 3)
		if err != nil {
			return false
		}
		support := map[string]int{}
		for _, fr := range res.Frequent {
			support[fr.Items.Key()] = fr.Support
		}
		for _, fr := range res.Frequent {
			if len(fr.Items) < 2 {
				continue
			}
			for skip := range fr.Items {
				sub := make(Itemset, 0, len(fr.Items)-1)
				sub = append(sub, fr.Items[:skip]...)
				sub = append(sub, fr.Items[skip+1:]...)
				if support[sub.Key()] < fr.Support {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Apriori's support counts equal a brute-force count for
// every reported itemset.
func TestSupportCountsExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var txs []Transaction
		for i := 0; i < 25; i++ {
			var items []Item
			for a := 0; a < 3; a++ {
				if rng.Intn(2) == 0 {
					items = append(items, Item{Attr: string(rune('a' + a)), Value: string(rune('0' + rng.Intn(2)))})
				}
			}
			txs = append(txs, NewItemset(items...))
		}
		res, err := Apriori(txs, 2)
		if err != nil {
			return false
		}
		for _, fr := range res.Frequent {
			count := 0
			for _, tx := range txs {
				if tx.Contains(fr.Items) {
					count++
				}
			}
			if count != fr.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRuleAndItemStrings(t *testing.T) {
	r := Rule{
		Antecedent: NewItemset(item("data", "referral")),
		Consequent: NewItemset(item("purpose", "registration")),
		Support:    5, Confidence: 0.8,
	}
	s := r.String()
	if s == "" || item("a", "b").String() != "a=b" {
		t.Errorf("render: %q", s)
	}
}
