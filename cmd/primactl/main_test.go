package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	prima "repro"
	"repro/internal/scenario"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	_ = w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// writeFixtures materializes the Table 1 scenario on disk.
func writeFixtures(t *testing.T) (policyFile, auditJSONL, auditCSV string) {
	t.Helper()
	dir := t.TempDir()
	policyFile = filepath.Join(dir, "ps.txt")
	f, err := os.Create(policyFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := scenario.PolicyStore().WriteText(f); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	auditJSONL = filepath.Join(dir, "log.jsonl")
	var buf bytes.Buffer
	if err := prima.WriteAuditJSONL(&buf, scenario.Table1()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(auditJSONL, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	auditCSV = filepath.Join(dir, "log.csv")
	buf.Reset()
	if err := prima.WriteAuditCSV(&buf, scenario.Table1()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(auditCSV, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return policyFile, auditJSONL, auditCSV
}

func TestDemoFig3(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"demo", "fig3"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"= 50%", "(paper: 50%)", "exception scenarios:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDemoTable1(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"demo", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"coverage = 30%", "support 5", "coverage after adoption = 80%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCoverageCommand(t *testing.T) {
	ps, jsonl, csv := writeFixtures(t)
	for _, audit := range []string{jsonl, csv} {
		out, err := capture(t, func() error {
			return run([]string{"coverage", "-policy", ps, "-audit", audit})
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "30.0% (3/10)") {
			t.Errorf("row coverage missing:\n%s", out)
		}
		if !strings.Contains(out, "50.0% (3/6)") {
			t.Errorf("set coverage missing:\n%s", out)
		}
		if !strings.Contains(out, "near miss") {
			t.Errorf("explanations missing:\n%s", out)
		}
	}
}

func TestRefineCommand(t *testing.T) {
	ps, jsonl, _ := writeFixtures(t)
	outFile := filepath.Join(t.TempDir(), "refined.txt")
	out, err := capture(t, func() error {
		return run([]string{"refine", "-policy", ps, "-audit", jsonl, "-adopt", "-out", outFile})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"coverage before: 30.0%",
		"authorized=Nurse & data=Referral & purpose=Registration",
		"coverage after adoption: 80.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(string(data)), "registration") {
		t.Errorf("refined policy not written:\n%s", data)
	}
	// Mining path produces the same pattern.
	out, err = capture(t, func() error {
		return run([]string{"refine", "-policy", ps, "-audit", jsonl, "-mining"})
	})
	if err != nil || !strings.Contains(out, "data=Referral") {
		t.Errorf("mining refine: %v\n%s", err, out)
	}
	// Strict comparator: nothing found.
	out, err = capture(t, func() error {
		return run([]string{"refine", "-policy", ps, "-audit", jsonl, "-strict"})
	})
	if err != nil || !strings.Contains(out, "no useful patterns") {
		t.Errorf("strict refine: %v\n%s", err, out)
	}
}

func TestPatternsCommand(t *testing.T) {
	ps, jsonl, _ := writeFixtures(t)
	// Both engines on the Table 1 log must print the same pattern.
	var outputs []string
	for _, engine := range []string{"fpgrowth", "apriori"} {
		out, err := capture(t, func() error {
			return run([]string{"patterns", "-audit", jsonl, "-engine", engine})
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{
			"engine: " + engine,
			"authorized=Nurse & data=Referral & purpose=Registration",
			"support=5 users=3",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", engine, want, out)
			}
		}
		outputs = append(outputs, strings.SplitN(out, "\n", 2)[1])
	}
	if outputs[0] != outputs[1] {
		t.Errorf("engines print different patterns:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
	// -partial surfaces narrower correlations too.
	out, err := capture(t, func() error {
		return run([]string{"patterns", "-audit", jsonl, "-partial", "-support", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "data=Referral & purpose=Registration  support=") {
		t.Errorf("partial correlation missing:\n%s", out)
	}
	// -policy prunes: after adopting the pattern there is nothing left.
	refined := filepath.Join(t.TempDir(), "refined.txt")
	if _, err := capture(t, func() error {
		return run([]string{"refine", "-policy", ps, "-audit", jsonl, "-adopt", "-out", refined})
	}); err != nil {
		t.Fatal(err)
	}
	out, err = capture(t, func() error {
		return run([]string{"patterns", "-audit", jsonl, "-policy", refined})
	})
	if err != nil || !strings.Contains(out, "no frequent patterns") {
		t.Errorf("pruned patterns: %v\n%s", err, out)
	}
	// Engine and flag errors.
	if _, err := capture(t, func() error {
		return run([]string{"patterns", "-audit", jsonl, "-engine", "bogus"})
	}); err == nil {
		t.Error("bogus engine accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"patterns"}) }); err == nil {
		t.Error("patterns without -audit accepted")
	}
}

func TestGeneralizeCommand(t *testing.T) {
	dir := t.TempDir()
	ps := filepath.Join(dir, "leaves.txt")
	src := `
data=address & purpose=billing & authorized=clerk
data=gender & purpose=billing & authorized=clerk
data=phone & purpose=billing & authorized=clerk
data=birthdate & purpose=billing & authorized=clerk
`
	if err := os.WriteFile(ps, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"generalize", "-policy", ps})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rules: 4 -> 1") || !strings.Contains(out, "data=demographic") {
		t.Errorf("generalize output:\n%s", out)
	}
}

func TestVocabCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"vocab"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"data", "demographic", "psychiatrist"} {
		if !strings.Contains(out, want) {
			t.Errorf("vocab output missing %q", want)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"demo"},
		{"demo", "bogus"},
		{"coverage"},                        // missing flags
		{"coverage", "-policy", "/no/such"}, // missing audit
		{"refine", "-policy", "/no/such"},   // missing audit
		{"generalize"},                      // missing policy
		{"vocab", "-file", "/no/such/file"}, // unreadable
		{"coverage", "-policy", "/no/such", "-audit", "/no/such"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
	if _, err := capture(t, func() error { return run([]string{"help"}) }); err != nil {
		t.Errorf("help failed: %v", err)
	}
}

func TestReportCommand(t *testing.T) {
	ps, jsonl, _ := writeFixtures(t)
	out, err := capture(t, func() error {
		return run([]string{"report", "-policy", ps, "-audit", jsonl, "-title", "Monthly review"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Monthly review",
		"Row coverage",
		"Uncovered access patterns",
		"Audit statistics",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if _, err := capture(t, func() error { return run([]string{"report"}) }); err == nil {
		t.Error("report without flags accepted")
	}
}
