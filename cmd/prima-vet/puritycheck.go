package main

import (
	"fmt"
	"go/ast"
	"strings"
)

// puritycheck enforces determinism of the §3 coverage algebra
// (Algorithms 1–6 of the paper) and of every package that feeds it:
//
//   - functions reachable from the algorithm entry points
//     (ComputeCoverage, Coverage, EntryCoverage, Refinement, ...)
//     must not read the clock (time.Now) or use math/rand — coverage
//     and refinement results must be replayable byte-for-byte;
//   - no function in a checked package may build ordered output
//     (append inside a range-over-map) without sorting it, because
//     Go's map iteration order is deliberately randomized.
//
// The vocabulary package is checked in full: every one of its
// functions sits under the algebra.
var purityAnalyzer = &Analyzer{
	Name: "puritycheck",
	Doc:  "coverage/refinement algebra must be deterministic: no clock, no rand, no unsorted map-iteration output",
	Run:  runPuritycheck,
}

// purityRoots are the names of the paper's algorithm entry points;
// everything they (transitively, within the package) call is checked.
var purityRoots = map[string]bool{
	"ComputeCoverage":  true, // Algorithm 1
	"CompleteCoverage": true,
	"Coverage":         true,
	"CoverageDetail":   true,
	"EntryCoverage":    true,
	"Filter":           true, // Algorithm 3
	"ExtractPatterns":  true, // Algorithm 4
	"Prune":            true, // Algorithm 6
	"Refinement":       true, // Algorithm 2
	"Refine":           true,
	"Generalize":       true,
}

// purityWholePkg lists packages (by name) whose functions are all
// treated as reachable: the vocabulary is the algebra's substrate.
var purityWholePkg = map[string]bool{
	"vocab": true,
}

func runPuritycheck(p *Package) []Finding {
	decls := funcDecls(p)

	// Build the intra-package call graph by callee name. Methods are
	// resolved by bare name — an over-approximation that errs toward
	// checking more functions, which is the safe direction here.
	byName := make(map[string][]*ast.FuncDecl)
	for _, fd := range decls {
		byName[fd.Name.Name] = append(byName[fd.Name.Name], fd)
	}

	checkAll := purityWholePkg[pkgName(p)]
	reachable := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if reachable[fd] {
			return
		}
		reachable[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee string
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = fun.Name
			case *ast.SelectorExpr:
				callee = fun.Sel.Name
			}
			for _, target := range byName[callee] {
				visit(target)
			}
			return true
		})
	}
	for _, fd := range decls {
		if checkAll || purityRoots[fd.Name.Name] {
			visit(fd)
		}
	}

	var out []Finding
	for _, fd := range decls {
		if reachable[fd] {
			out = append(out, checkPurity(p, fd)...)
		}
		// The map-order rule applies to every function: nondeterministic
		// ordering is a defect wherever output is produced.
		out = append(out, checkMapOrder(p, fd)...)
	}
	return out
}

func pkgName(p *Package) string {
	if len(p.Files) > 0 {
		return p.Files[0].Name.Name
	}
	return ""
}

// checkPurity flags clock and randomness use.
func checkPurity(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgCall(p, call, "time", "Now") {
			out = append(out, Finding{
				Pos:      p.Fset.Position(call.Pos()),
				Analyzer: "puritycheck",
				Message:  fmt.Sprintf("%s is reachable from the coverage/refinement algebra but calls time.Now (inject a clock instead)", fd.Name.Name),
			})
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "rand" &&
				(usesImport(p, "math/rand") || usesImport(p, "math/rand/v2")) {
				out = append(out, Finding{
					Pos:      p.Fset.Position(call.Pos()),
					Analyzer: "puritycheck",
					Message:  fmt.Sprintf("%s is reachable from the coverage/refinement algebra but calls rand.%s", fd.Name.Name, sel.Sel.Name),
				})
			}
		}
		return true
	})
	return out
}

// checkMapOrder flags `for ... range <map>` loops that append to a
// slice when the enclosing function never sorts: the produced order
// changes run to run. A call to anything whose name contains "sort"
// (sort.Strings, sort.Slice, a local sortFoo helper) counts as
// establishing order.
func checkMapOrder(p *Package, fd *ast.FuncDecl) []Finding {
	sorts := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == "sort" {
				sorts = true
			}
		}
		if strings.Contains(strings.ToLower(name), "sort") {
			sorts = true
		}
		return true
	})
	if sorts {
		return nil
	}

	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(p, rng.X) {
			return true
		}
		appends := false
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
					appends = true
				}
			}
			return true
		})
		if appends {
			out = append(out, Finding{
				Pos:      p.Fset.Position(rng.Pos()),
				Analyzer: "puritycheck",
				Message: fmt.Sprintf("%s appends inside a range over map %s without sorting: output order is nondeterministic",
					fd.Name.Name, exprString(rng.X)),
			})
		}
		return true
	})
	return out
}
