package minidb

import (
	"strings"
	"testing"
)

// joinDB: an audit table plus a staff directory, the natural join
// workload of PRIMA's audit analysis.
func joinDB(t *testing.T) *Database {
	t.Helper()
	db := testDB(t) // "access" table from minidb_test.go
	db.MustExec(`CREATE TABLE staff (name TEXT, dept TEXT, fte FLOAT)`)
	db.MustExec(`INSERT INTO staff VALUES
		('John', 'cardiology', 1.0),
		('Tim',  'cardiology', 0.8),
		('Mark', 'er',         1.0),
		('Bill', 'billing',    1.0),
		('Ghost','nowhere',    0.1)`)
	return db
}

func TestInnerJoin(t *testing.T) {
	db := joinDB(t)
	res := q(t, db, `
		SELECT access.usr, staff.dept FROM access
		JOIN staff ON access.usr = staff.name
		WHERE access.status = 0
		ORDER BY access.id`)
	// Exception rows by users present in staff: Mark (ids 3, 7, 10)
	// and Tim (id 8) = 4 rows, ordered by id.
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	wantUsers := []string{"Mark", "Mark", "Tim", "Mark"}
	for i, row := range res.Rows {
		if row[0].AsText() != wantUsers[i] {
			t.Errorf("row %d = %v, want user %s", i, row, wantUsers[i])
		}
		if row[0].AsText() == "Tim" && row[1].AsText() != "cardiology" {
			t.Errorf("Tim's dept = %v", row[1])
		}
	}
}

func TestJoinWithAliases(t *testing.T) {
	db := joinDB(t)
	res := q(t, db, `
		SELECT a.usr, s.dept FROM access a
		INNER JOIN staff AS s ON a.usr = s.name
		WHERE a.id = 1`)
	if len(res.Rows) != 1 || res.Rows[0][1].AsText() != "cardiology" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLeftJoin(t *testing.T) {
	db := joinDB(t)
	res := q(t, db, `
		SELECT a.usr, s.dept FROM access a
		LEFT JOIN staff s ON a.usr = s.name
		WHERE a.id IN (1, 4)
		ORDER BY a.id`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Sarah (id 4) has no staff row: dept NULL.
	if res.Rows[0][1].AsText() != "cardiology" || !res.Rows[1][1].IsNull() {
		t.Errorf("left join rows = %v", res.Rows)
	}
	// LEFT OUTER JOIN spelling.
	res = q(t, db, `SELECT s.dept FROM access a LEFT OUTER JOIN staff s ON a.usr = s.name WHERE a.id = 4`)
	if len(res.Rows) != 1 || !res.Rows[0][0].IsNull() {
		t.Errorf("left outer join: %v", res.Rows)
	}
}

func TestJoinAggregation(t *testing.T) {
	db := joinDB(t)
	res := q(t, db, `
		SELECT s.dept, COUNT(*) AS n FROM access a
		JOIN staff s ON a.usr = s.name
		GROUP BY s.dept
		ORDER BY n DESC, s.dept`)
	// cardiology: John(id 1) + Tim(ids 2, 8) = 3; er: Mark ×3;
	// billing: Bill ×1. The 3-3 tie breaks alphabetically.
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0].AsText() != "cardiology" || res.Rows[0][1].AsInt() != 3 {
		t.Errorf("top group = %v", res.Rows[0])
	}
	if res.Rows[1][0].AsText() != "er" || res.Rows[1][1].AsInt() != 3 {
		t.Errorf("second group = %v", res.Rows[1])
	}
}

func TestJoinAmbiguousColumn(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE a (id INT, v TEXT)`)
	db.MustExec(`CREATE TABLE b (id INT, w TEXT)`)
	db.MustExec(`INSERT INTO a VALUES (1, 'x')`)
	db.MustExec(`INSERT INTO b VALUES (1, 'y')`)
	if _, err := db.Exec(`SELECT id FROM a JOIN b ON a.id = b.id`); err == nil {
		t.Error("ambiguous bare column accepted")
	}
	res := q(t, db, `SELECT a.id, b.id, v, w FROM a JOIN b ON a.id = b.id`)
	if len(res.Rows) != 1 || res.Rows[0][2].AsText() != "x" || res.Rows[0][3].AsText() != "y" {
		t.Errorf("qualified join: %v", res.Rows)
	}
}

func TestJoinErrors(t *testing.T) {
	db := joinDB(t)
	if _, err := db.Exec(`SELECT * FROM access JOIN nosuch ON access.usr = nosuch.x`); err == nil {
		t.Error("join to missing table accepted")
	}
	if _, err := db.Exec(`SELECT * FROM access JOIN staff`); err == nil {
		t.Error("join without ON accepted")
	}
	if _, err := db.Exec(`SELECT * FROM access JOIN staff ON`); err == nil {
		t.Error("join with empty ON accepted")
	}
	// ON referencing a later (not yet joined) table fails cleanly.
	db.MustExec(`CREATE TABLE third (z TEXT)`)
	if _, err := db.Exec(`SELECT * FROM access JOIN staff ON third.z = 'x' JOIN third ON 1 = 1`); err == nil {
		t.Error("forward table reference in ON accepted")
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := joinDB(t)
	db.MustExec(`CREATE TABLE depts (dept TEXT, floor INT)`)
	db.MustExec(`INSERT INTO depts VALUES ('cardiology', 3), ('er', 1), ('billing', 2)`)
	res := q(t, db, `
		SELECT a.usr, d.floor FROM access a
		JOIN staff s ON a.usr = s.name
		JOIN depts d ON s.dept = d.dept
		WHERE a.id = 5`)
	if len(res.Rows) != 1 || res.Rows[0][1].AsInt() != 2 {
		t.Fatalf("three-way join: %v", res.Rows)
	}
}

func TestIndexCorrectness(t *testing.T) {
	db := testDB(t)
	db.MustExec(`CREATE INDEX usr_ix ON access (usr)`)
	withIdx := q(t, db, `SELECT id FROM access WHERE usr = 'Mark' ORDER BY id`)
	if len(withIdx.Rows) != 3 {
		t.Fatalf("indexed lookup = %v", withIdx.Rows)
	}
	// The index is a row-source optimization: the full predicate
	// still applies.
	res := q(t, db, `SELECT id FROM access WHERE usr = 'Mark' AND status = 1`)
	if len(res.Rows) != 0 {
		t.Errorf("residual predicate ignored: %v", res.Rows)
	}
	// Index stays correct across mutations (lazy rebuild).
	db.MustExec(`INSERT INTO access VALUES (11, 'Mark', 'Referral', 'Registration', 'Nurse', 0, '2007-03-02T08:00:00Z')`)
	if got := len(q(t, db, `SELECT id FROM access WHERE usr = 'Mark'`).Rows); got != 4 {
		t.Errorf("after insert: %d rows", got)
	}
	db.MustExec(`DELETE FROM access WHERE id = 11`)
	if got := len(q(t, db, `SELECT id FROM access WHERE usr = 'Mark'`).Rows); got != 3 {
		t.Errorf("after delete: %d rows", got)
	}
	db.MustExec(`UPDATE access SET usr = 'Markus' WHERE id = 3`)
	if got := len(q(t, db, `SELECT id FROM access WHERE usr = 'Mark'`).Rows); got != 2 {
		t.Errorf("after update: %d rows", got)
	}
}

func TestIndexManagement(t *testing.T) {
	db := testDB(t)
	if err := db.CreateIndex("access", "usr"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("access", "usr"); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := db.CreateIndex("access", "nosuch"); err == nil {
		t.Error("index on missing column accepted")
	}
	if err := db.CreateIndex("nosuch", "x"); err == nil {
		t.Error("index on missing table accepted")
	}
	tbl, _ := db.Table("access")
	if got := tbl.Indexes(); len(got) != 1 || got[0] != "usr" {
		t.Errorf("Indexes = %v", got)
	}
	if _, err := db.Exec(`CREATE INDEX bad ON access ()`); err == nil {
		t.Error("empty column list accepted")
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	db := joinDB(t)
	db.MustExec(`CREATE INDEX usr_ix ON access (usr)`)
	db.MustExec(`CREATE TABLE quirks (s TEXT, b BOOL, f FLOAT, n INT, ts TIMESTAMP)`)
	db.MustExec(`INSERT INTO quirks VALUES ('it''s; tricky', TRUE, 2.5, NULL, '2007-03-01T08:00:00Z')`)

	var buf strings.Builder
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("%v\nscript:\n%s", err, buf.String())
	}
	// Same tables, same row counts, same contents.
	if got, want := back.TableNames(), db.TableNames(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("tables = %v, want %v", got, want)
	}
	for _, name := range db.TableNames() {
		orig, _ := db.Table(name)
		copy2, _ := back.Table(name)
		if orig.Len() != copy2.Len() {
			t.Errorf("table %s: %d vs %d rows", name, orig.Len(), copy2.Len())
		}
	}
	row := back.MustExec(`SELECT s, b, f, n, ts FROM quirks`).Rows[0]
	if row[0].AsText() != "it's; tricky" || !row[1].AsBool() || row[2].AsFloat() != 2.5 || !row[3].IsNull() {
		t.Errorf("quirks row = %v", row)
	}
	if row[4].Kind() != KindTime {
		t.Errorf("timestamp kind = %v", row[4].Kind())
	}
	// Indexes survive.
	tbl, _ := back.Table("access")
	if got := tbl.Indexes(); len(got) != 1 || got[0] != "usr" {
		t.Errorf("indexes after load = %v", got)
	}
	// Dump is deterministic.
	var buf2 strings.Builder
	if err := back.Dump(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("dump not stable across a round trip")
	}
}

func TestSplitStatements(t *testing.T) {
	stmts, err := SplitStatements("SELECT 1 FROM a; -- comment\nINSERT INTO b VALUES (';');\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("stmts = %q", stmts)
	}
	if !strings.Contains(stmts[1], "';'") {
		t.Errorf("semicolon in string split: %q", stmts[1])
	}
	if got, _ := SplitStatements("  \n-- only a comment\n"); len(got) != 0 {
		t.Errorf("comment-only script: %q", got)
	}
	if _, err := SplitStatements("SELECT 'unterminated"); err == nil {
		t.Error("lex error not surfaced")
	}
}

func TestLoadScriptErrors(t *testing.T) {
	db := NewDatabase()
	if err := db.LoadScript(strings.NewReader("CREATE TABLE t (a INT); BROKEN;")); err == nil {
		t.Error("broken script accepted")
	} else if !strings.Contains(err.Error(), "statement 2") {
		t.Errorf("error does not locate statement: %v", err)
	}
}

func TestExplain(t *testing.T) {
	db := joinDB(t)
	planOf := func(sql string) string {
		t.Helper()
		res := q(t, db, sql)
		var lines []string
		for i := range res.Rows {
			lines = append(lines, res.Rows[i][0].AsText())
		}
		return strings.Join(lines, "\n")
	}
	plan := planOf(`EXPLAIN SELECT usr FROM access WHERE usr = 'Mark' ORDER BY id LIMIT 2`)
	for _, want := range []string{"scan access (10 rows)", "filter", "sort (1 keys)", "limit 2 offset 0"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	// After indexing, the source changes to an index lookup.
	db.MustExec(`CREATE INDEX usr_ix ON access (usr)`)
	plan = planOf(`EXPLAIN SELECT usr FROM access WHERE usr = 'Mark'`)
	if !strings.Contains(plan, "index lookup access(usr)") {
		t.Errorf("index not used:\n%s", plan)
	}
	// Joins and grouping are described.
	plan = planOf(`EXPLAIN SELECT s.dept, COUNT(*) FROM access a JOIN staff s ON a.usr = s.name GROUP BY s.dept HAVING COUNT(*) > 1`)
	for _, want := range []string{"nested-loop inner join staff", "group by [s.dept]", "having"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	if _, err := db.Exec(`EXPLAIN SELECT x FROM nosuch`); err == nil {
		t.Error("EXPLAIN of missing table accepted")
	}
	if _, err := db.Exec(`EXPLAIN DELETE FROM access`); err == nil {
		t.Error("EXPLAIN of non-SELECT accepted")
	}
}

func TestIndexFastPathDisabledUnderJoins(t *testing.T) {
	// Regression: both tables have a column named "x"; the base's x
	// is indexed. A qualified predicate on the JOINED table's x must
	// not be satisfied from the base index.
	db := NewDatabase()
	db.MustExec(`CREATE TABLE a (id INT, x TEXT)`)
	db.MustExec(`CREATE TABLE b (id INT, x TEXT)`)
	db.MustExec(`INSERT INTO a VALUES (1, 'keep'), (2, 'drop')`)
	db.MustExec(`INSERT INTO b VALUES (1, 'want'), (2, 'want')`)
	db.MustExec(`CREATE INDEX a_x ON a (x)`)
	res := q(t, db, `SELECT a.id FROM a JOIN b ON a.id = b.id WHERE b.x = 'want' ORDER BY a.id`)
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %v (index fast path filtered the wrong table)", res.Rows)
	}
	// And the indexed single-table path still works.
	res = q(t, db, `SELECT id FROM a WHERE x = 'keep'`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("indexed lookup = %v", res.Rows)
	}
	// Index hit with zero matches returns empty, not full scan.
	res = q(t, db, `SELECT id FROM a WHERE x = 'nosuch'`)
	if len(res.Rows) != 0 {
		t.Fatalf("zero-match indexed lookup = %v", res.Rows)
	}
}
