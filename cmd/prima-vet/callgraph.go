package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The static call graph: one node per module function with a body
// (declared functions, methods, and function literals), edges resolved
// statically for direct calls and by Class Hierarchy Analysis for
// calls through interfaces — every module type whose method set
// satisfies the interface is a candidate callee. Standard-library
// callees have no bodies in the loader and stay opaque; calls through
// function-typed values are not resolved (documented limitation).

// CGNode is one function in the call graph.
type CGNode struct {
	Fn   *types.Func   // nil for function literals
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions
	Pkg  *Package
	Body *ast.BlockStmt

	Calls []*CallSite

	// Encloser is set on literal nodes: the function whose body the
	// literal appears in. The graph carries an encloser->literal edge
	// because the literal may run under the encloser's context (defer,
	// immediate call, local invocation).
	Encloser *CGNode
}

// Name returns a stable, human-readable identity for messages.
func (n *CGNode) Name() string {
	if n.Fn != nil {
		if recv := n.Fn.Type().(*types.Signature).Recv(); recv != nil {
			return fmt.Sprintf("(%s).%s", types.TypeString(recv.Type(), nil), n.Fn.Name())
		}
		return n.Fn.Pkg().Path() + "." + n.Fn.Name()
	}
	if n.Lit != nil && n.Pkg != nil {
		pos := n.Pkg.Fset.Position(n.Lit.Pos())
		return fmt.Sprintf("func literal at %s:%d", pos.Filename, pos.Line)
	}
	return "func literal"
}

// CallSite is one resolved call expression.
type CallSite struct {
	Call    *ast.CallExpr
	Callees []*CGNode
}

// CallGraph indexes the nodes of a Program.
type CallGraph struct {
	byFunc map[*types.Func]*CGNode
	byLit  map[*ast.FuncLit]*CGNode
	nodes  []*CGNode

	// namedTypes are the module's named (non-interface) types, the CHA
	// candidate set for interface dispatch.
	namedTypes []*types.Named
	chaCache   map[string][]*CGNode
}

// Nodes returns every node in deterministic order.
func (g *CallGraph) Nodes() []*CGNode { return g.nodes }

// NodeOf returns the node of a declared function, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode { return g.byFunc[fn] }

// LitNode returns the node of a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *CGNode { return g.byLit[lit] }

// BuildCallGraph constructs the call graph over the given packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byFunc:   make(map[*types.Func]*CGNode),
		byLit:    make(map[*ast.FuncLit]*CGNode),
		chaCache: make(map[string][]*CGNode),
	}

	// Deterministic package order keeps node order stable run to run.
	ordered := make([]*Package, len(pkgs))
	copy(ordered, pkgs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Path < ordered[j].Path })

	// Pass 1: nodes for declared functions, and CHA candidate types.
	for _, p := range ordered {
		for _, fd := range funcDecls(p) {
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			n := &CGNode{Fn: fn, Decl: fd, Pkg: p, Body: fd.Body}
			g.byFunc[fn] = n
			g.nodes = append(g.nodes, n)
		}
		if p.Pkg == nil {
			continue
		}
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			g.namedTypes = append(g.namedTypes, named)
		}
	}

	// Pass 2: nodes for function literals (children of the declared
	// functions they appear in, transitively).
	for _, n := range append([]*CGNode(nil), g.nodes...) {
		g.collectLits(n)
	}

	// Pass 3: resolve call sites of every node.
	for _, n := range g.nodes {
		g.resolveCalls(n)
	}
	return g
}

// collectLits creates nodes for the function literals directly inside
// n's body (literals nested in other literals attach to the inner
// node), plus encloser->literal edges.
func (g *CallGraph) collectLits(n *CGNode) {
	var walk func(node ast.Node, owner *CGNode)
	walk = func(node ast.Node, owner *CGNode) {
		ast.Inspect(node, func(m ast.Node) bool {
			lit, ok := m.(*ast.FuncLit)
			if !ok {
				return true
			}
			ln := &CGNode{Lit: lit, Pkg: owner.Pkg, Body: lit.Body, Encloser: owner}
			g.byLit[lit] = ln
			g.nodes = append(g.nodes, ln)
			walk(lit.Body, ln)
			return false // inner literals handled by the recursive walk
		})
	}
	walk(n.Body, n)
}

// ownBody visits the nodes of n's body that belong to n itself,
// skipping nested function literals (they are separate nodes).
func ownBody(n *CGNode, visit func(ast.Node) bool) {
	ast.Inspect(n.Body, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		return visit(m)
	})
}

// resolveCalls fills n.Calls.
func (g *CallGraph) resolveCalls(n *CGNode) {
	info := n.Pkg.Info
	ownBody(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		site := &CallSite{Call: call}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[fun].(*types.Func); ok {
				if t := g.byFunc[fn]; t != nil {
					site.Callees = append(site.Callees, t)
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				fn, _ := sel.Obj().(*types.Func)
				if fn != nil {
					if recvIsInterface(sel.Recv()) {
						site.Callees = g.chaResolve(fn)
					} else if t := g.byFunc[fn]; t != nil {
						site.Callees = append(site.Callees, t)
					}
				}
			} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				// Package-qualified call: pkg.Func(...).
				if t := g.byFunc[fn]; t != nil {
					site.Callees = append(site.Callees, t)
				}
			}
		case *ast.FuncLit:
			if t := g.byLit[fun]; t != nil {
				site.Callees = append(site.Callees, t)
			}
		}
		if len(site.Callees) > 0 {
			n.Calls = append(n.Calls, site)
		}
		return true
	})
	// Literal nodes may run under the encloser's locks/context: record
	// a synthetic encloser->literal edge (conservative for defer, go,
	// and stored closures invoked locally).
	for _, cand := range g.nodes {
		if cand.Encloser == n {
			n.Calls = append(n.Calls, &CallSite{Call: nil, Callees: []*CGNode{cand}})
		}
	}
}

func recvIsInterface(t types.Type) bool {
	t = derefType(t)
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// chaResolve returns every module method that may satisfy a call to
// interface method ifn: for each named module type whose method set
// (value or pointer) implements the interface, the concrete method of
// the same name.
func (g *CallGraph) chaResolve(ifn *types.Func) []*CGNode {
	sig := ifn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return nil
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := types.TypeString(recv.Type(), nil) + "." + ifn.Name()
	if cached, ok := g.chaCache[key]; ok {
		return cached
	}
	var out []*CGNode
	for _, named := range g.namedTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), ifn.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if t := g.byFunc[m]; t != nil {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	g.chaCache[key] = out
	return out
}

// TransitiveClosure computes, for every node, the union of seed facts
// over the node itself and everything it may (transitively) call —
// the fixpoint of closure[n] = seed(n) ∪ ⋃ closure(callees(n)).
// Recursion is handled by iterating to a fixed point.
func (g *CallGraph) TransitiveClosure(seed func(*CGNode) factSet) map[*CGNode]factSet {
	closure := make(map[*CGNode]factSet, len(g.nodes))
	for _, n := range g.nodes {
		closure[n] = seed(n).clone()
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			cur := closure[n]
			for _, site := range n.Calls {
				for _, callee := range site.Callees {
					for f := range closure[callee] {
						if !cur[f] {
							cur[f] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return closure
}

// classOf names the lock/arena class of a named type:
// "path/to/pkg.Type".
func classOf(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// shortClass trims the module prefix for compact messages.
func shortClass(class, module string) string {
	if rest, ok := strings.CutPrefix(class, module+"/"); ok {
		return rest
	}
	return class
}
