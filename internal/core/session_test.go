package core

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/scenario"
)

func TestSessionAdoptLoop(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	s := NewSession(ps, v, Options{})
	round, err := s.Run(scenario.Table1(), AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(round.CoverageBefore, 0.3) || !almost(round.CoverageAfter, 0.8) {
		t.Errorf("coverage %v -> %v, want 0.3 -> 0.8", round.CoverageBefore, round.CoverageAfter)
	}
	if len(round.Adopted) != 1 || round.Practice != 7 || round.Entries != 10 {
		t.Errorf("round = %+v", round)
	}
	if ps.Len() != 4 {
		t.Errorf("policy store has %d rules, want 4", ps.Len())
	}
	// Second round over the same data discovers nothing new.
	round2, err := s.Run(scenario.Table1(), AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(round2.Patterns) != 0 || !almost(round2.CoverageBefore, 0.8) {
		t.Errorf("round2 = %+v", round2)
	}
	if len(s.History) != 2 {
		t.Errorf("history = %d", len(s.History))
	}
}

func TestSessionRejectIsSticky(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	s := NewSession(ps, v, Options{})
	rejectAll := ReviewerFunc(func(Pattern) Decision { return Reject })
	round, err := s.Run(scenario.Table1(), rejectAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Rejected) != 1 || len(round.Adopted) != 0 {
		t.Fatalf("round = %+v", round)
	}
	if ps.Len() != 3 {
		t.Errorf("rejecting must not grow the store: %d", ps.Len())
	}
	if s.RejectedRules() != 1 {
		t.Errorf("rejected memory = %d", s.RejectedRules())
	}
	// The rejected pattern must not resurface, even with AdoptAll.
	round2, err := s.Run(scenario.Table1(), AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(round2.Patterns) != 0 || len(round2.Adopted) != 0 {
		t.Errorf("rejected pattern resurfaced: %+v", round2)
	}
}

func TestSessionInvestigateResurfaces(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	s := NewSession(ps, v, Options{})
	investigate := ReviewerFunc(func(Pattern) Decision { return Investigate })
	round, err := s.Run(scenario.Table1(), investigate)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Investigating) != 1 || almost(round.CoverageAfter, 0.8) {
		t.Errorf("round = %+v", round)
	}
	// Still pending: shows up again next round.
	round2, err := s.Run(scenario.Table1(), AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(round2.Adopted) != 1 {
		t.Errorf("investigated pattern lost: %+v", round2)
	}
}

func TestSessionNilReviewerAdopts(t *testing.T) {
	v := scenario.Vocabulary()
	s := NewSession(scenario.PolicyStore(), v, Options{})
	round, err := s.Run(scenario.Table1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Adopted) != 1 {
		t.Errorf("nil reviewer: %+v", round)
	}
}

func TestSessionGrowingLog(t *testing.T) {
	// Coverage improves monotonically as rounds adopt recurring
	// exception patterns from an accumulating log.
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	s := NewSession(ps, v, Options{MinSupport: 3})
	log := audit.NewLog("ward")
	base := scenario.Table1Base
	mk := func(i int, user, data, purpose, role string, st audit.Status) audit.Entry {
		return audit.Entry{Time: base.Add(time.Duration(i) * time.Minute), Op: audit.Allow,
			User: user, Data: data, Purpose: purpose, Authorized: role, Status: st}
	}
	// Epoch 1: lab techs keep reading lab results for registration.
	for i, u := range []string{"a", "b", "c", "a", "b"} {
		if err := log.Append(mk(i, u, "lab_result", "registration", "lab_tech", audit.Exception)); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := s.Run(log.Snapshot(), AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Adopted) != 1 || r1.CoverageAfter != 1 {
		t.Fatalf("r1 = %+v", r1)
	}
	// Epoch 2: clerks consult insurance for billing.
	for i, u := range []string{"x", "y", "x", "y"} {
		if err := log.Append(mk(100+i, u, "insurance", "billing", "clerk", audit.Exception)); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := s.Run(log.Snapshot(), AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CoverageBefore >= 1 || r2.CoverageAfter != 1 || len(r2.Adopted) != 1 {
		t.Fatalf("r2 = %+v", r2)
	}
	if r2.CoverageBefore < r1.CoverageAfter-0.5 {
		t.Errorf("coverage collapsed between rounds: %v -> %v", r1.CoverageAfter, r2.CoverageBefore)
	}
}

func TestDecisionString(t *testing.T) {
	if Adopt.String() != "adopt" || Reject.String() != "reject" || Investigate.String() != "investigate" {
		t.Error("decision strings wrong")
	}
	if Decision(9).String() == "" {
		t.Error("unknown decision renders empty")
	}
}
