// Package treerec adapts PRIMA's core concepts to hierarchical,
// XML-like legacy records — the "natural evolution" the paper's
// conclusion calls for ("legacy systems employ hierarchical, XML-like
// structures. Thus, the natural evolution for PRIMA is to adapt the
// core concepts and technology to the tree-based structures").
//
// A Record is an element tree; a Mapping assigns privacy-vocabulary
// data categories to element paths; Redact prunes the subtrees whose
// category a policy decision denies, which is the tree-shaped
// equivalent of HDB Active Enforcement's column masking.
package treerec

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/vocab"
)

// Node is one element of a hierarchical record.
type Node struct {
	Name     string
	Value    string // text content for leaves
	Children []*Node
}

// Clone deep-copies the node.
func (n *Node) Clone() *Node {
	out := &Node{Name: n.Name, Value: n.Value}
	for _, c := range n.Children {
		out.Children = append(out.Children, c.Clone())
	}
	return out
}

// Walk visits every node depth-first with its slash-separated path.
func (n *Node) Walk(fn func(path string, node *Node)) {
	var rec func(prefix string, m *Node)
	rec = func(prefix string, m *Node) {
		path := prefix + "/" + m.Name
		fn(path, m)
		for _, c := range m.Children {
			rec(path, c)
		}
	}
	rec("", n)
}

// Find returns the first node at the given path, or nil.
func (n *Node) Find(path string) *Node {
	var found *Node
	n.Walk(func(p string, m *Node) {
		if found == nil && pathEqual(p, path) {
			found = m
		}
	})
	return found
}

func pathEqual(a, b string) bool {
	return strings.EqualFold(strings.Trim(a, "/"), strings.Trim(b, "/"))
}

// ParseXML reads an XML document into a Record tree. Attributes are
// folded into child nodes named "@attr" so mappings can target them.
func ParseXML(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("treerec: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: t.Name.Local}
			for _, a := range t.Attr {
				n.Children = append(n.Children, &Node{Name: "@" + a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("treerec: multiple root elements")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("treerec: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := strings.TrimSpace(string(t))
				if text != "" {
					stack[len(stack)-1].Value += text
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("treerec: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("treerec: unclosed elements")
	}
	return root, nil
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string) (*Node, error) { return ParseXML(strings.NewReader(s)) }

// WriteXML renders the record back to XML (attributes re-emitted as
// elements named without the leading @; lossy but sufficient for
// inspection and tests).
func (n *Node) WriteXML(w io.Writer) error {
	var rec func(m *Node, depth int) error
	rec = func(m *Node, depth int) error {
		ind := strings.Repeat("  ", depth)
		name := strings.TrimPrefix(m.Name, "@")
		if len(m.Children) == 0 {
			_, err := fmt.Fprintf(w, "%s<%s>%s</%s>\n", ind, name, xmlEscape(m.Value), name)
			return err
		}
		if _, err := fmt.Fprintf(w, "%s<%s>\n", ind, name); err != nil {
			return err
		}
		if m.Value != "" {
			if _, err := fmt.Fprintf(w, "%s  %s\n", ind, xmlEscape(m.Value)); err != nil {
				return err
			}
		}
		for _, c := range m.Children {
			if err := rec(c, depth+1); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s</%s>\n", ind, name)
		return err
	}
	return rec(n, 0)
}

func xmlEscape(s string) string {
	var b strings.Builder
	_ = xml.EscapeText(&b, []byte(s))
	return b.String()
}

// Mapping assigns data categories to element paths. Patterns are
// slash-separated name sequences matched case-insensitively against
// the end of a node's path; a leading "//" (the default) anchors
// nowhere, so "demographics/address" matches any address element
// under a demographics element. "*" matches one path segment.
type Mapping struct {
	rules []mappingRule
	v     *vocab.Vocabulary
}

type mappingRule struct {
	segments []string
	category string
}

// NewMapping builds a mapping validated against the vocabulary's data
// hierarchy.
func NewMapping(v *vocab.Vocabulary) *Mapping { return &Mapping{v: v} }

// Add registers pattern -> category.
func (m *Mapping) Add(pattern, category string) error {
	segs := splitPath(pattern)
	if len(segs) == 0 {
		return fmt.Errorf("treerec: empty mapping pattern")
	}
	if h := m.v.Hierarchy("data"); h != nil && !h.Contains(category) {
		return fmt.Errorf("treerec: category %q not in vocabulary", category)
	}
	m.rules = append(m.rules, mappingRule{segments: segs, category: category})
	return nil
}

func splitPath(p string) []string {
	var out []string
	for _, s := range strings.Split(p, "/") {
		s = strings.TrimSpace(s)
		if s != "" {
			out = append(out, strings.ToLower(s))
		}
	}
	return out
}

// Category returns the data category mapped to path, if any. The most
// specific (longest) matching pattern wins.
func (m *Mapping) Category(path string) (string, bool) {
	segs := splitPath(path)
	best := -1
	bestScore := -1
	for i, r := range m.rules {
		if !suffixMatch(segs, r.segments) {
			continue
		}
		// Longer patterns are more specific; among equal lengths,
		// literal segments beat wildcards.
		score := len(r.segments) * 100
		for _, s := range r.segments {
			if s != "*" {
				score++
			}
		}
		if score > bestScore {
			best = i
			bestScore = score
		}
	}
	if best < 0 {
		return "", false
	}
	return m.rules[best].category, true
}

// suffixMatch reports whether pattern matches the tail of path
// segments, with "*" matching any single segment.
func suffixMatch(path, pattern []string) bool {
	if len(pattern) > len(path) {
		return false
	}
	off := len(path) - len(pattern)
	for i, p := range pattern {
		if p != "*" && p != path[off+i] {
			return false
		}
	}
	return true
}

// Classify lists the distinct data categories present in the record,
// sorted. Categories apply to whole subtrees: descendants of a mapped
// node inherit its category unless a more specific mapping overrides.
func (m *Mapping) Classify(rec *Node) []string {
	set := map[string]bool{}
	rec.Walk(func(path string, _ *Node) {
		if cat, ok := m.Category(path); ok {
			set[cat] = true
		}
	})
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Redaction is the outcome of Redact.
type Redaction struct {
	Record  *Node    // the pruned copy
	Removed []string // paths of pruned subtrees, sorted
	Kept    []string // categories that remained visible, sorted
}

// Redact returns a copy of the record with every subtree whose
// category is denied by the decision function removed. Unmapped
// elements are retained (structure, identifiers).
func (m *Mapping) Redact(rec *Node, allowed func(category string) bool) Redaction {
	var removed []string
	keptSet := map[string]bool{}
	var prune func(n *Node, prefix string) *Node
	prune = func(n *Node, prefix string) *Node {
		path := prefix + "/" + n.Name
		if cat, ok := m.Category(path); ok {
			if !allowed(cat) {
				removed = append(removed, path)
				return nil
			}
			keptSet[cat] = true
		}
		out := &Node{Name: n.Name, Value: n.Value}
		for _, c := range n.Children {
			if kept := prune(c, path); kept != nil {
				out.Children = append(out.Children, kept)
			}
		}
		return out
	}
	pruned := prune(rec, "")
	if pruned == nil {
		pruned = &Node{Name: rec.Name} // the root itself was denied
	}
	sort.Strings(removed)
	kept := make([]string, 0, len(keptSet))
	for c := range keptSet {
		kept = append(kept, c)
	}
	sort.Strings(kept)
	return Redaction{Record: pruned, Removed: removed, Kept: kept}
}
