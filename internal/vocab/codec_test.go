package vocab

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

const sampleText = `
# privacy policy vocabulary
data
  demographic
    address
    gender
  clinical: prescription referral
purpose
  treatment
  billing
`

func TestParseText(t *testing.T) {
	v, err := ParseTextString(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Attributes(); !reflect.DeepEqual(got, []string{"data", "purpose"}) {
		t.Fatalf("attributes = %v", got)
	}
	if !v.Subsumes("data", "demographic", "gender") {
		t.Error("demographic should subsume gender")
	}
	if !v.Subsumes("data", "clinical", "referral") {
		t.Error("inline children not attached")
	}
	if got := v.GroundSet("data", "demographic"); !reflect.DeepEqual(got, []string{"address", "gender"}) {
		t.Errorf("GroundSet(demographic) = %v", got)
	}
	if !v.IsGround("purpose", "treatment") {
		t.Error("treatment should be ground")
	}
}

func TestParseTextInlineAtAttributeLevel(t *testing.T) {
	v, err := ParseTextString("status: regular exception\n")
	if err != nil {
		t.Fatal(err)
	}
	h := v.Hierarchy("status")
	if h == nil || h.Len() != 2 {
		t.Fatalf("inline attribute-level children not parsed: %+v", v)
	}
	if !h.IsGround("regular") {
		t.Error("regular should be a ground top-level value")
	}
}

func TestParseTextTabs(t *testing.T) {
	v, err := ParseTextString("data\n\tdemographic\n\t\taddress\n")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Subsumes("data", "demographic", "address") {
		t.Error("tab-indented hierarchy mis-parsed")
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"value before attribute", "  orphan\n"},
		{"odd indentation", "data\n demographic\n"},
		{"duplicate attribute", "data\ndata\n"},
		{"duplicate value", "data\n  a\n  a\n"},
		{"bare colon", "data\n  :\n"},
		{"jump indentation", "data\n      toofar\n"},
	}
	for _, c := range cases {
		if _, err := ParseTextString(c.in); err == nil {
			t.Errorf("%s: no error for %q", c.name, c.in)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	v := Sample()
	text := v.TextString()
	back, err := ParseTextString(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if back.TextString() != text {
		t.Errorf("text round-trip not stable:\n--- first\n%s\n--- second\n%s", text, back.TextString())
	}
	if back.Size() != v.Size() {
		t.Errorf("size changed: %d -> %d", v.Size(), back.Size())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	v := Sample()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var back Vocabulary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TextString() != v.TextString() {
		t.Error("JSON round-trip changed the vocabulary")
	}
	if !back.Subsumes("authorized", "medical_staff", "nurse") {
		t.Error("hierarchy lost through JSON")
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	var v Vocabulary
	if err := json.Unmarshal([]byte(`{"not":"a list"}`), &v); err == nil {
		t.Error("bad shape accepted")
	}
	if err := json.Unmarshal([]byte(`[{"attr":"a","values":[{"value":"x"},{"value":"x"}]}]`), &v); err == nil {
		t.Error("duplicate value accepted")
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	a := Sample().TextString()
	b := Sample().TextString()
	if a != b {
		t.Error("TextString not deterministic")
	}
	if !strings.Contains(a, "demographic") {
		t.Error("output missing expected value")
	}
}
