package minidb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds deterministic garbage — random token
// soup and mutated valid statements — through Parse. Errors are fine;
// panics are not.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tokens := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
		"INSERT", "INTO", "VALUES", "CREATE", "TABLE", "INDEX", "JOIN", "ON",
		"AND", "OR", "NOT", "IN", "LIKE", "IS", "NULL", "BETWEEN", "DISTINCT",
		"COUNT", "SUM", "(", ")", ",", "*", "=", "<>", "<", ">", "<=", ">=",
		"+", "-", "/", "%", ";", "'str'", "''", "42", "3.14", "ident", "t", "x",
		"a.b", "--cmt\n",
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(18)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = tokens[rng.Intn(len(tokens))]
		}
		src := strings.Join(parts, " ")
		_, _ = Parse(src) // error or not — must not panic
	}
	// Byte-level mutations of a valid statement.
	valid := `SELECT data, COUNT(*) FROM practice WHERE status = 0 GROUP BY data HAVING COUNT(*) >= 5 ORDER BY 2 DESC LIMIT 10`
	for trial := 0; trial < 3000; trial++ {
		b := []byte(valid)
		for k := 0; k < 1+rng.Intn(4); k++ {
			pos := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0:
				b[pos] = byte(rng.Intn(128))
			case 1:
				b = append(b[:pos], b[pos+1:]...)
			case 2:
				b = append(b[:pos], append([]byte{byte('!' + rng.Intn(90))}, b[pos:]...)...)
			}
			if len(b) == 0 {
				break
			}
		}
		_, _ = Parse(string(b))
	}
}

// TestExecNeverPanicsOnRandomQueries runs random structurally-plausible
// SELECTs against a populated database; every call must return a
// result or an error, never panic.
func TestExecNeverPanicsOnRandomQueries(t *testing.T) {
	db := testDB(t)
	rng := rand.New(rand.NewSource(2))
	cols := []string{"id", "usr", "data", "purpose", "role", "status", "at", "nosuch"}
	ops := []string{"=", "<>", "<", ">", "<=", ">="}
	vals := []string{"'Mark'", "5", "0", "'Referral'", "NULL", "3.5"}
	aggs := []string{"COUNT(*)", "COUNT(DISTINCT usr)", "MIN(id)", "MAX(at)", "SUM(status)", "AVG(id)"}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("executor panicked: %v", r)
		}
	}()
	for trial := 0; trial < 2000; trial++ {
		var sb strings.Builder
		sb.WriteString("SELECT ")
		if rng.Intn(3) == 0 {
			sb.WriteString(aggs[rng.Intn(len(aggs))])
		} else {
			sb.WriteString(cols[rng.Intn(len(cols))])
		}
		if rng.Intn(2) == 0 {
			sb.WriteString(", " + cols[rng.Intn(len(cols))])
		}
		sb.WriteString(" FROM access")
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&sb, " WHERE %s %s %s",
				cols[rng.Intn(len(cols))], ops[rng.Intn(len(ops))], vals[rng.Intn(len(vals))])
		}
		if rng.Intn(3) == 0 {
			sb.WriteString(" GROUP BY " + cols[rng.Intn(len(cols))])
		}
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, " ORDER BY %d", 1+rng.Intn(3))
		}
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, " LIMIT %d", rng.Intn(5))
		}
		_, _ = db.Exec(sb.String())
	}
}

// TestGroupByDifferential checks SQL GROUP BY aggregation against an
// independent map-based computation on random data.
func TestGroupByDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		db := NewDatabase()
		db.MustExec(`CREATE TABLE r (k TEXT, u TEXT, n INT)`)
		type agg struct {
			count int
			sum   int64
			users map[string]bool
		}
		want := map[string]*agg{}
		rows := 20 + rng.Intn(80)
		for i := 0; i < rows; i++ {
			k := string(rune('a' + rng.Intn(4)))
			u := string(rune('p' + rng.Intn(5)))
			n := rng.Intn(100)
			db.MustExec(fmt.Sprintf(`INSERT INTO r VALUES ('%s', '%s', %d)`, k, u, n))
			a, ok := want[k]
			if !ok {
				a = &agg{users: map[string]bool{}}
				want[k] = a
			}
			a.count++
			a.sum += int64(n)
			a.users[u] = true
		}
		res := db.MustExec(`SELECT k, COUNT(*), SUM(n), COUNT(DISTINCT u) FROM r GROUP BY k ORDER BY k`)
		if len(res.Rows) != len(want) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(res.Rows), len(want))
		}
		for _, row := range res.Rows {
			a := want[row[0].AsText()]
			if a == nil {
				t.Fatalf("trial %d: unexpected group %v", trial, row[0])
			}
			if row[1].AsInt() != int64(a.count) || row[2].AsInt() != a.sum || row[3].AsInt() != int64(len(a.users)) {
				t.Fatalf("trial %d group %s: got (%v,%v,%v), want (%d,%d,%d)",
					trial, row[0].AsText(), row[1], row[2], row[3], a.count, a.sum, len(a.users))
			}
		}
	}
}
