package vocab

import "strconv"

// Synthetic builds a SNOMED/ICD-scale benchmark vocabulary: a data
// hierarchy that is a complete branch-ary tree of the given depth
// (node count (branch^(depth+1)-1)/(branch-1), leaves branch^depth)
// next to the paper's fixed purpose and authorized hierarchies, so
// composite policies over it are directly comparable with the Figure 1
// fixtures. Data nodes are named n0 (the root), n1, n2, ... in
// breadth-first order: the children of n<i> are n<i*branch+1> through
// n<i*branch+branch>.
//
// Synthetic(10, 5) is the canonical 100k-leaf workload used by E14 and
// `primactl vocab -gen 10x5`.
func Synthetic(branch, depth int) *Vocabulary {
	if branch < 1 {
		branch = 1
	}
	if depth < 0 {
		depth = 0
	}
	v := New()
	h := v.MustAttribute("data")
	h.MustAdd("", "n0")
	frontier := []string{"n0"}
	id := 0
	for d := 0; d < depth; d++ {
		next := make([]string, 0, len(frontier)*branch)
		for _, p := range frontier {
			for b := 0; b < branch; b++ {
				id++
				name := "n" + strconv.Itoa(id)
				h.MustAdd(p, name)
				next = append(next, name)
			}
		}
		frontier = next
	}

	purpose := v.MustAttribute("purpose")
	purpose.MustAdd("", "healthcare")
	purpose.MustAdd("healthcare", "treatment")
	purpose.MustAdd("healthcare", "registration")
	purpose.MustAdd("healthcare", "billing")
	purpose.MustAdd("", "research")
	purpose.MustAdd("", "telemarketing")

	auth := v.MustAttribute("authorized")
	auth.MustAdd("", "medical_staff")
	auth.MustAdd("medical_staff", "doctor")
	auth.MustAdd("medical_staff", "psychiatrist")
	auth.MustAdd("medical_staff", "nurse")
	auth.MustAdd("medical_staff", "lab_tech")
	auth.MustAdd("", "admin_staff")
	auth.MustAdd("admin_staff", "clerk")
	auth.MustAdd("admin_staff", "manager")
	return v
}
