// Package goleak exercises the goroutine-termination analyzer: spins
// with no escape hatch leak, done-channel and range loops terminate,
// and divergence propagates through helpers to the spawn site.
package goleak

import "context"

// spin never returns: a bare for{} with no exit edge.
func spin() {
	for {
	}
}

func spawnSpin() {
	go spin() // want goleak "no reachable termination path"
}

func work() {}

func spawnLitLoop() {
	go func() { // want goleak "no reachable termination path"
		for {
			work()
		}
	}()
}

// spawnDone terminates via the context case.
func spawnDone(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				work()
				_ = j
			}
		}
	}()
}

// spawnRange terminates when jobs is closed and drained.
func spawnRange(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// spawnBounded terminates after a fixed number of iterations.
func spawnBounded() {
	go func() {
		for i := 0; i < 8; i++ {
			work()
		}
	}()
}

// block parks forever; the divergence summary marks it never-returning.
func block() {
	select {}
}

func spawnBlock() {
	go block() // want goleak "no reachable termination path"
}

// waitLoop's only path through the loop body calls a divergent helper,
// so it never completes an iteration — interprocedural propagation.
func waitLoop() {
	for {
		block()
	}
}

func spawnWaitLoop() {
	go waitLoop() // want goleak "no reachable termination path"
}
