package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	prima "repro"
	"repro/internal/report"
	"repro/internal/scenario"
)

// loadVocab reads a vocabulary file, or the paper's sample when path
// is empty.
func loadVocab(path string) (*prima.Vocabulary, error) {
	if path == "" {
		return prima.SampleVocabulary(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return prima.ParseVocabulary(f)
}

func loadPolicy(name, path string) (*prima.Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return prima.ParsePolicy(name, f)
}

func loadAudit(path string) ([]prima.Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return prima.ReadAuditCSV(f)
	default:
		return prima.ReadAuditJSONL(f)
	}
}

func cmdVocab(args []string) error {
	fs := flag.NewFlagSet("vocab", flag.ContinueOnError)
	file := fs.String("file", "", "vocabulary file (default: the paper's Figure 1 sample)")
	gen := fs.String("gen", "", "generate a synthetic vocabulary instead: BRANCHxDEPTH (e.g. 10x5 = 100k leaves)")
	stats := fs.Bool("stats", false, "print per-attribute node/leaf counts instead of the vocabulary text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var v *prima.Vocabulary
	if *gen != "" {
		branch, depth, err := parseGen(*gen)
		if err != nil {
			return err
		}
		v = prima.SyntheticVocabulary(branch, depth)
	} else {
		var err error
		v, err = loadVocab(*file)
		if err != nil {
			return err
		}
	}
	if *stats {
		for _, attr := range v.Attributes() {
			h := v.Hierarchy(attr)
			fmt.Printf("%s: %d value(s), %d ground\n", attr, len(h.Values()), len(h.Leaves()))
		}
		return nil
	}
	fmt.Print(v.TextString())
	return nil
}

// parseGen parses the BRANCHxDEPTH spec of vocab -gen.
func parseGen(spec string) (branch, depth int, err error) {
	if _, err := fmt.Sscanf(spec, "%dx%d", &branch, &depth); err != nil {
		return 0, 0, fmt.Errorf("vocab: -gen wants BRANCHxDEPTH (e.g. 10x5), got %q", spec)
	}
	if branch < 1 || depth < 0 || depth > 12 {
		return 0, 0, fmt.Errorf("vocab: -gen %q out of range (branch >= 1, 0 <= depth <= 12)", spec)
	}
	return branch, depth, nil
}

func cmdCoverage(args []string) error {
	fs := flag.NewFlagSet("coverage", flag.ContinueOnError)
	vocabFile := fs.String("vocab", "", "vocabulary file (default: paper sample)")
	policyFile := fs.String("policy", "", "policy store file (required)")
	auditFile := fs.String("audit", "", "audit log file, .jsonl or .csv (required)")
	explain := fs.Bool("explain", true, "print gap explanations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *policyFile == "" || *auditFile == "" {
		return fmt.Errorf("coverage requires -policy and -audit")
	}
	v, err := loadVocab(*vocabFile)
	if err != nil {
		return err
	}
	ps, err := loadPolicy("PS", *policyFile)
	if err != nil {
		return err
	}
	entries, err := loadAudit(*auditFile)
	if err != nil {
		return err
	}
	al := prima.EntriesToPolicy("AL", entries)
	erep, err := prima.EntryCoverage(ps, entries, v)
	if err != nil {
		return err
	}
	if !*explain {
		// Summary path: Algorithm 1 evaluated symbolically, so it
		// completes at any vocabulary scale without materializing a
		// ground Range.
		cov, err := prima.ComputeCoverage(ps, al, v)
		if err != nil {
			return err
		}
		fmt.Printf("policy rules: %d (range %d)\n", ps.Len(), prima.SymbolicRangeCard(ps, v))
		fmt.Printf("audit rules:  %d distinct (range %d) over %d rows\n",
			al.Len(), prima.SymbolicRangeCard(al, v), erep.Total)
		fmt.Printf("coverage (Definition 9, distinct rules): %.1f%%\n", cov*100)
		fmt.Printf("coverage (§5 row counting):              %.1f%% (%d/%d)\n",
			erep.Coverage*100, erep.Covered, erep.Total)
		return nil
	}
	rep, err := prima.CoverageDetail(ps, al, v)
	if err != nil {
		return err
	}
	fmt.Printf("policy rules: %d (range %d)\n", ps.Len(), rep.RangeX)
	fmt.Printf("audit rules:  %d distinct (range %d) over %d rows\n", al.Len(), rep.RangeY, erep.Total)
	fmt.Printf("coverage (Definition 9, distinct rules): %.1f%% (%d/%d)\n",
		rep.Coverage*100, rep.Overlap, rep.RangeY)
	fmt.Printf("coverage (§5 row counting):              %.1f%% (%d/%d)\n",
		erep.Coverage*100, erep.Covered, erep.Total)
	if len(rep.Gaps) > 0 {
		fmt.Println("uncovered accesses:")
		for _, g := range rep.Gaps {
			fmt.Printf("  %s\n", g.Rule.Compact())
			for _, nm := range g.NearMisses {
				fmt.Printf("    near miss: %s\n", nm)
			}
		}
	}
	return nil
}

func cmdRefine(args []string) error {
	fs := flag.NewFlagSet("refine", flag.ContinueOnError)
	vocabFile := fs.String("vocab", "", "vocabulary file (default: paper sample)")
	policyFile := fs.String("policy", "", "policy store file (required)")
	auditFile := fs.String("audit", "", "audit log file, .jsonl or .csv (required)")
	support := fs.Int("support", 5, "threshold frequency f")
	users := fs.Int("users", 2, "minimum distinct users")
	strict := fs.Bool("strict", false, "use the literal COUNT(*) > f comparator")
	mining := fs.Bool("mining", false, "use the Apriori extractor instead of SQL")
	adopt := fs.Bool("adopt", false, "adopt the discovered patterns into the policy")
	out := fs.String("out", "", "write the refined policy to this file (with -adopt)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *policyFile == "" || *auditFile == "" {
		return fmt.Errorf("refine requires -policy and -audit")
	}
	v, err := loadVocab(*vocabFile)
	if err != nil {
		return err
	}
	ps, err := loadPolicy("PS", *policyFile)
	if err != nil {
		return err
	}
	entries, err := loadAudit(*auditFile)
	if err != nil {
		return err
	}
	opts := prima.RefineOptions{
		MinSupport:       *support,
		MinDistinctUsers: *users,
		StrictGreater:    *strict,
	}
	if *mining {
		opts.Extractor = prima.MiningExtractor(false)
	}
	before, err := prima.EntryCoverage(ps, entries, v)
	if err != nil {
		return err
	}
	patterns, err := prima.Refine(ps, entries, v, opts)
	if err != nil {
		return err
	}
	fmt.Printf("coverage before: %.1f%% (%d/%d rows)\n", before.Coverage*100, before.Covered, before.Total)
	if len(patterns) == 0 {
		fmt.Println("no useful patterns found")
		return nil
	}
	fmt.Printf("useful patterns (%d):\n", len(patterns))
	for _, p := range patterns {
		fmt.Printf("  %s  support=%d users=%d window=%s..%s\n",
			p.Rule.Compact(), p.Support, p.DistinctUsers,
			p.FirstSeen.Format("2006-01-02"), p.LastSeen.Format("2006-01-02"))
	}
	if *adopt {
		for _, p := range patterns {
			ps.Add(p.Rule)
		}
		after, err := prima.EntryCoverage(ps, entries, v)
		if err != nil {
			return err
		}
		fmt.Printf("coverage after adoption: %.1f%% (%d/%d rows)\n",
			after.Coverage*100, after.Covered, after.Total)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := ps.WriteText(f); err != nil {
				return err
			}
			fmt.Printf("refined policy written to %s\n", *out)
		}
	}
	return nil
}

// cmdPatterns mines frequent-itemset patterns from an audit log with
// a selectable engine (the FP-growth scale engine by default, the
// Apriori oracle via -engine apriori). Unlike refine it does not need
// a policy store: with -policy it prunes covered patterns, without it
// every mined pattern prints.
func cmdPatterns(args []string) error {
	fs := flag.NewFlagSet("patterns", flag.ContinueOnError)
	vocabFile := fs.String("vocab", "", "vocabulary file (default: paper sample)")
	policyFile := fs.String("policy", "", "policy store file (optional: prune covered patterns)")
	auditFile := fs.String("audit", "", "audit log file, .jsonl or .csv (required)")
	engine := fs.String("engine", "fpgrowth", "mining engine: fpgrowth or apriori")
	support := fs.Int("support", 5, "threshold frequency f")
	users := fs.Int("users", 2, "minimum distinct users")
	partial := fs.Bool("partial", false, "keep partial-width itemsets (correlations SQL misses)")
	workers := fs.Int("workers", 0, "fpgrowth pattern-growth workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *auditFile == "" {
		return fmt.Errorf("patterns requires -audit")
	}
	var extractor prima.PatternExtractor
	switch *engine {
	case "fpgrowth":
		extractor = prima.FPGrowthExtractor(*partial, *workers)
	case "apriori":
		extractor = prima.MiningExtractor(*partial)
	default:
		return fmt.Errorf("patterns: unknown -engine %q (want fpgrowth or apriori)", *engine)
	}
	v, err := loadVocab(*vocabFile)
	if err != nil {
		return err
	}
	ps := prima.NewPolicy("PS")
	if *policyFile != "" {
		if ps, err = loadPolicy("PS", *policyFile); err != nil {
			return err
		}
	}
	entries, err := loadAudit(*auditFile)
	if err != nil {
		return err
	}
	opts := prima.RefineOptions{
		MinSupport:       *support,
		MinDistinctUsers: *users,
		Extractor:        extractor,
	}
	patterns, err := prima.Refine(ps, entries, v, opts)
	if err != nil {
		return err
	}
	fmt.Printf("engine: %s, %d audit rows\n", *engine, len(entries))
	if len(patterns) == 0 {
		fmt.Println("no frequent patterns")
		return nil
	}
	fmt.Printf("patterns (%d):\n", len(patterns))
	for _, p := range patterns {
		fmt.Printf("  %s  support=%d users=%d window=%s..%s\n",
			p.Rule.Compact(), p.Support, p.DistinctUsers,
			p.FirstSeen.Format("2006-01-02"), p.LastSeen.Format("2006-01-02"))
	}
	return nil
}

func cmdGeneralize(args []string) error {
	fs := flag.NewFlagSet("generalize", flag.ContinueOnError)
	vocabFile := fs.String("vocab", "", "vocabulary file (default: paper sample)")
	policyFile := fs.String("policy", "", "policy store file (required)")
	out := fs.String("out", "", "write the generalized policy to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *policyFile == "" {
		return fmt.Errorf("generalize requires -policy")
	}
	v, err := loadVocab(*vocabFile)
	if err != nil {
		return err
	}
	ps, err := loadPolicy("PS", *policyFile)
	if err != nil {
		return err
	}
	res, err := prima.Generalize(ps, v)
	if err != nil {
		return err
	}
	fmt.Printf("rules: %d -> %d (%d lifts, %d redundant removed; range unchanged at %d ground rules)\n",
		res.RulesBefore, res.RulesAfter, res.Lifted, res.Removed, res.RangeSize)
	for _, r := range res.Policy.Rules() {
		fmt.Printf("  %s\n", r.Compact())
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Policy.WriteText(f); err != nil {
			return err
		}
		fmt.Printf("written to %s\n", *out)
	}
	return nil
}

func cmdDemo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("demo requires fig3 or table1")
	}
	switch args[0] {
	case "fig3":
		return demoFig3()
	case "table1":
		return demoTable1()
	default:
		return fmt.Errorf("unknown demo %q", args[0])
	}
}

func demoFig3() error {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	al := scenario.Figure3AuditPolicy()
	rep, err := prima.CoverageDetail(ps, al, v)
	if err != nil {
		return err
	}
	fmt.Println("PRIMA §3.3 / Figure 3 worked example")
	fmt.Println("policy store P_PS (composite):")
	for i, r := range ps.Rules() {
		fmt.Printf("  %d. %s\n", i+1, r.Compact())
	}
	fmt.Println("audit-log policy P_AL (ground):")
	for i, r := range al.Rules() {
		fmt.Printf("  %d. %s\n", i+1, r.Compact())
	}
	fmt.Printf("ComputeCoverage(P_PS, P_AL, V) = %.0f%%  (paper: 50%%)\n", rep.Coverage*100)
	fmt.Println("exception scenarios:")
	for _, g := range rep.Gaps {
		fmt.Printf("  %s\n", g.Rule.Compact())
		for _, nm := range g.NearMisses {
			fmt.Printf("    %s\n", nm)
		}
	}
	return nil
}

func demoTable1() error {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	entries := scenario.Table1()
	fmt.Println("PRIMA §5 / Table 1 use case")
	fmt.Println("audit trail (PHI masked):")
	for i, e := range entries {
		// Raw User/Data/Purpose are PHI (prima:phi); the demo prints the
		// masked user plus the entry's policy projection instead.
		fmt.Printf("  t%-3d %-10s %s status=%d\n",
			i+1, report.RedactValue(e.User), e.Rule().Compact(), int(e.Status))
	}
	before, err := prima.EntryCoverage(ps, entries, v)
	if err != nil {
		return err
	}
	fmt.Printf("coverage = %.0f%%  (paper: 30%%)\n", before.Coverage*100)
	patterns, err := prima.Refine(ps, entries, v, prima.RefineOptions{})
	if err != nil {
		return err
	}
	for _, p := range patterns {
		fmt.Printf("refinement pattern: %s (support %d, %d users)  (paper: Referral:Registration:Nurse, t3 and t7-t10)\n",
			p.Rule.Compact(), p.Support, p.DistinctUsers)
		ps.Add(p.Rule)
	}
	after, err := prima.EntryCoverage(ps, entries, v)
	if err != nil {
		return err
	}
	fmt.Printf("coverage after adoption = %.0f%%\n", after.Coverage*100)
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	vocabFile := fs.String("vocab", "", "vocabulary file (default: paper sample)")
	policyFile := fs.String("policy", "", "policy store file (required)")
	auditFile := fs.String("audit", "", "audit log file, .jsonl or .csv (required)")
	title := fs.String("title", "PRIMA privacy report", "report title")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *policyFile == "" || *auditFile == "" {
		return fmt.Errorf("report requires -policy and -audit")
	}
	v, err := loadVocab(*vocabFile)
	if err != nil {
		return err
	}
	ps, err := loadPolicy("PS", *policyFile)
	if err != nil {
		return err
	}
	entries, err := loadAudit(*auditFile)
	if err != nil {
		return err
	}
	al := prima.EntriesToPolicy("AL", entries)
	cov, err := prima.CoverageDetail(ps, al, v)
	if err != nil {
		return err
	}
	ec, err := prima.EntryCoverage(ps, entries, v)
	if err != nil {
		return err
	}
	return report.Write(os.Stdout, report.Input{
		Title:         *title,
		Generated:     time.Now(),
		Coverage:      cov,
		EntryCoverage: ec,
		Entries:       entries,
	})
}
