package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	_ = w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestHarnessReproducesPaper(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-quick"}) })
	if err != nil {
		t.Fatalf("harness failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"E2 — Figure 3 coverage",
		"| ComputeCoverage(P_PS, P_AL, V) | 0.50 | 0.50 | OK |",
		"| coverage over snapshot | 0.30 | 0.30 | OK |",
		"| coverage after adoption | 0.80 | 0.80 | OK |",
		"pattern: authorized=Nurse & data=Referral & purpose=Registration",
		"extraction precision 1.00, recall 1.00",
		"| naive adopt-all | 0.50 | 1.00 |",
		"| suspicion reviewer | 1.00 | 1.00 |",
		"E15 — mining at audit scale",
		"identical=true",
		"epoch patterns identical across engines: 576 per round",
		"all paper artifacts reproduced",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("harness output missing %q", want)
		}
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("harness reported a mismatch:\n%s", out)
	}
}

func TestHarnessBadFlag(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-bogus"}) }); err == nil {
		t.Error("unknown flag accepted")
	}
}
