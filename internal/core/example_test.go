package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/scenario"
)

// ExampleComputeCoverage reproduces the paper's Figure 3 computation.
func ExampleComputeCoverage() {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()        // the ideal workflow W_Ideal
	al := scenario.Figure3AuditPolicy() // the real workflow W_Real
	c, _ := core.ComputeCoverage(ps, al, v)
	fmt.Printf("Coverage(P_PS, P_AL) = %.0f%%\n", c*100)
	// Output: Coverage(P_PS, P_AL) = 50%
}

// ExampleRefinement walks the paper's §5 use case: Filter keeps the
// exception rows, extraction finds the recurring multi-user pattern,
// Prune drops anything already covered.
func ExampleRefinement() {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	patterns, _ := core.Refinement(ps, scenario.Table1(), v, core.Options{})
	for _, p := range patterns {
		fmt.Printf("%s (support %d, %d users)\n", p.Rule.Compact(), p.Support, p.DistinctUsers)
	}
	// Output: authorized=Nurse & data=Referral & purpose=Registration (support 5, 3 users)
}

// ExampleGeneralize compresses a policy grown by adopting ground
// rules one at a time.
func ExampleGeneralize() {
	v := scenario.Vocabulary()
	ps := policy.New("PS")
	for _, d := range []string{"address", "gender", "phone", "birthdate"} {
		ps.Add(policy.MustRule(
			policy.T("data", d), policy.T("purpose", "billing"), policy.T("authorized", "clerk")))
	}
	res, _ := core.Generalize(ps, v)
	fmt.Printf("%d rules -> %d rule: %s\n",
		res.RulesBefore, res.RulesAfter, res.Policy.Rules()[0].Compact())
	// Output: 4 rules -> 1 rule: authorized=clerk & data=demographic & purpose=billing
}

// ExampleGatherEvidence inspects the behavioural shape of the Table 1
// pattern.
func ExampleGatherEvidence() {
	practice := core.Filter(scenario.Table1())
	ev := core.GatherEvidence(practice, scenario.RefinementPattern())
	fmt.Printf("support=%d users=%d concentration=%.2f\n",
		ev.Support, len(ev.UserCounts), ev.Concentration)
	// Output: support=5 users=3 concentration=0.44
}
