package policy

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/vocab"
)

// FuzzDecodePolicy feeds arbitrary text through the policy text codec
// and pins the decoder's contract: no panic on any input, and every
// accepted policy survives a write/re-parse round trip with identical
// canonical keys (rule normalization is idempotent).
func FuzzDecodePolicy(f *testing.F) {
	f.Add("{(data, demographic) ^ (purpose, treatment)}\n")
	f.Add("{(authorized, nurse)}\n{(data, referral) ^ (purpose, registration) ^ (authorized, nurse)}\n")
	f.Add("# comment\n\n{(data, x)}\n")
	f.Add("{}")
	f.Add("{(data demographic)}")
	f.Add("{(data, a) ^ (data, b)}")
	f.Add(strings.Repeat("{(data, d)}\n", 50))

	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePolicyString("fuzz", src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		text := p.TextString()
		p2, err := ParsePolicyString("fuzz2", text)
		if err != nil {
			t.Fatalf("re-parse of encoded policy failed: %v\nencoded:\n%s", err, text)
		}
		if p.Len() != p2.Len() {
			t.Fatalf("round trip changed cardinality: %d -> %d", p.Len(), p2.Len())
		}
		keys := make(map[string]bool, p.Len())
		for _, r := range p.Rules() {
			keys[r.Key()] = true
		}
		for _, r := range p2.Rules() {
			if !keys[r.Key()] {
				t.Fatalf("round trip invented rule %s", r)
			}
		}
	})
}

// FuzzSymbolicVsMaterialized decodes a byte stream into a small random
// vocabulary plus rule set and pins the symbolic algebra
// (Card/IntersectCard/Subsumes/ContainsTriple) byte-identical to the
// materializing oracle. The decoder is total: every input maps to some
// valid fixture, so the fuzzer explores structure, not parse errors.
func FuzzSymbolicVsMaterialized(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{7, 3, 9, 1, 200, 41, 17, 88, 5, 5, 5, 5, 250, 13, 66, 2})
	f.Add([]byte{255, 254, 253, 0, 0, 0, 9, 9, 9, 31, 64, 128, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		fz := fuzzStream{data: data}
		v, rulesA, rulesB := fz.fixture()

		pa := FromRules("a", rulesA...)
		pb := FromRules("b", rulesB...)
		ra, err := NewRange(pa, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := NewRange(pb, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		sa := NewSymRange(pa, v)
		sb := NewSymRange(pb, v)

		if got, want := sa.Card(), int64(ra.Len()); got != want {
			t.Fatalf("Card(a) = %d, materialized %d\nrules: %v", got, want, rulesA)
		}
		if got, want := sb.Card(), int64(rb.Len()); got != want {
			t.Fatalf("Card(b) = %d, materialized %d\nrules: %v", got, want, rulesB)
		}
		inter := int64(ra.IntersectCount(rb))
		if got := sa.IntersectCard(sb); got != inter {
			t.Fatalf("IntersectCard = %d, materialized %d\na: %v\nb: %v", got, inter, rulesA, rulesB)
		}
		if got := sb.IntersectCard(sa); got != inter {
			t.Fatalf("IntersectCard not symmetric: %d vs %d", sb.IntersectCard(sa), inter)
		}
		if got, want := sa.Subsumes(sb), inter == int64(rb.Len()); got != want {
			t.Fatalf("Subsumes = %v, materialized %v", got, want)
		}
		if got, want := sa.Disjoint(sb), inter == 0; got != want {
			t.Fatalf("Disjoint = %v, materialized %v", got, want)
		}
		for _, r := range rulesB {
			sr, ok := CompileRule(r, v)
			if !ok {
				continue
			}
			grounds, _ := r.Groundings(v, DefaultRangeLimit)
			want := true
			for _, g := range grounds {
				if !ra.Contains(g) {
					want = false
					break
				}
			}
			if got := sa.Covers(sr); got != want {
				t.Fatalf("Covers(%s) = %v, materialized %v\na: %v", r, got, want, rulesA)
			}
		}
	})
}

// fuzzStream turns an arbitrary byte slice into a deterministic
// decision stream; exhausted streams return zero.
type fuzzStream struct {
	data []byte
	pos  int
}

func (f *fuzzStream) byte() byte {
	if f.pos >= len(f.data) {
		return 0
	}
	b := f.data[f.pos]
	f.pos++
	return b
}

// fixture builds a small vocabulary (three attributes, up to ~10 nodes
// each) and two rule sets of up to four rules whose values mix
// registered composites, leaves, and foreign strings.
func (f *fuzzStream) fixture() (*vocab.Vocabulary, []Rule, []Rule) {
	v := vocab.New()
	attrs := []string{"data", "purpose", "authorized"}
	values := make(map[string][]string)
	for _, attr := range attrs {
		h := v.MustAttribute(attr)
		n := 1 + int(f.byte())%9
		names := make([]string, 0, n)
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("%s%d", attr[:1], i)
			parent := ""
			if len(names) > 0 {
				// byte()%(len+1): 0 = new root, else child of an earlier node.
				if k := int(f.byte()) % (len(names) + 1); k > 0 {
					parent = names[k-1]
				}
			}
			h.MustAdd(parent, name)
			names = append(names, name)
		}
		values[attr] = names
	}
	mkRules := func() []Rule {
		n := int(f.byte()) % 4
		rules := make([]Rule, 0, n)
		for i := 0; i < n; i++ {
			mask := f.byte()
			var terms []Term
			for j, attr := range attrs {
				if mask&(1<<j) == 0 {
					continue
				}
				pool := values[attr]
				pick := int(f.byte()) % (len(pool) + 2)
				var val string
				if pick < len(pool) {
					val = pool[pick]
				} else {
					val = fmt.Sprintf("foreign%d", pick-len(pool)) // unknown to the hierarchy
				}
				terms = append(terms, T(attr, val))
			}
			if len(terms) == 0 {
				continue
			}
			r, err := NewRule(terms...)
			if err != nil {
				continue
			}
			rules = append(rules, r)
		}
		return rules
	}
	return v, mkRules(), mkRules()
}
