// Quickstart: assemble a PRIMA system, enforce a policy on a clinical
// table, break the glass, and let refinement propose the missing rule.
package main

import (
	"errors"
	"fmt"
	"log"

	prima "repro"
)

func main() {
	// 1. Assemble the architecture (Figure 4): vocabulary, policy
	// store, clinical DB, enforcement, auditing, consent.
	sys := prima.New(prima.Config{})

	// 2. Define the clinical schema and place it under enforcement.
	sys.DB().MustExec(`CREATE TABLE records (patient TEXT, referral TEXT, psychiatry TEXT)`)
	sys.DB().MustExec(`INSERT INTO records VALUES
		('p1', 'cardiology consult', 'none'),
		('p2', 'dermatology consult', 'anxiety treatment notes')`)
	if err := sys.RegisterTable(prima.TableMapping{
		Table:      "records",
		PatientCol: "patient",
		Categories: map[string]string{"referral": "referral", "psychiatry": "psychiatry"},
	}); err != nil {
		log.Fatal(err)
	}

	// 3. Enter a fine-grained policy rule through the control center.
	if _, err := sys.AddRule("data=general & purpose=treatment & authorized=nurse"); err != nil {
		log.Fatal(err)
	}

	// 4. A nurse reads referrals for treatment: allowed and audited.
	res, _, err := sys.Query("tim", "nurse", "treatment", `SELECT patient, referral FROM records`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("treatment query returned %d rows\n", len(res.Rows))

	// 5. Registration is not covered: denied, so the nurses break the
	// glass — repeatedly, as the ward actually works.
	_, _, err = sys.Query("mark", "nurse", "registration", `SELECT referral FROM records`)
	fmt.Printf("registration query denied: %v\n", errors.Is(err, prima.ErrDenied))
	for _, nurse := range []string{"mark", "tim", "bob", "mark", "tim"} {
		if _, _, err := sys.BreakGlass(nurse, "nurse", "registration",
			"front desk backlog", `SELECT referral FROM records`); err != nil {
			log.Fatal(err)
		}
	}

	// 6. Coverage has dropped; refinement finds the informal practice.
	rep, err := sys.EntryCoverage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage before refinement: %.0f%%\n", rep.Coverage*100)

	round, err := sys.RunRefinement(prima.AdoptAll)
	if err != nil {
		log.Fatal(err)
	}
	for _, rule := range round.Adopted {
		fmt.Printf("adopted: %s\n", rule.Compact())
	}
	fmt.Printf("coverage after refinement: %.0f%%\n", round.CoverageAfter*100)

	// 7. The workflow no longer needs the glass hammer.
	res, _, err = sys.Query("mark", "nurse", "registration", `SELECT referral FROM records`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registration query now returns %d rows\n", len(res.Rows))
}
