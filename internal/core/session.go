package core

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// Decision is the human verdict on a discovered pattern. The paper
// ends Prune with "human input is prudent at this stage to determine
// which patterns are actually good practice and which should be
// investigated or terminated".
type Decision int

// Decisions a reviewer may return.
const (
	// Adopt incorporates the pattern into the policy store.
	Adopt Decision = iota
	// Reject discards the pattern (bad practice to be stopped).
	Reject
	// Investigate neither adopts nor discards: the pattern is
	// reported for follow-up and will reappear in later rounds.
	Investigate
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Adopt:
		return "adopt"
	case Reject:
		return "reject"
	case Investigate:
		return "investigate"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Reviewer decides the fate of each useful pattern.
type Reviewer interface {
	Review(Pattern) Decision
}

// ReviewerFunc adapts a function to the Reviewer interface.
type ReviewerFunc func(Pattern) Decision

// Review implements Reviewer.
func (f ReviewerFunc) Review(p Pattern) Decision { return f(p) }

// AdoptAll is a Reviewer that accepts every pattern; used in
// experiments where the simulator guarantees no violations survive
// filtering.
var AdoptAll = ReviewerFunc(func(Pattern) Decision { return Adopt })

// Round records one refinement round.
type Round struct {
	Started        time.Time
	Entries        int     // audit rows analysed
	Practice       int     // rows surviving Filter
	CoverageBefore float64 // row coverage before adoption
	CoverageAfter  float64 // row coverage after adoption
	Patterns       []Pattern
	Adopted        []policy.Rule
	Rejected       []Pattern
	Investigating  []Pattern
}

// Session drives repeated refinement rounds against a policy store,
// mutating the store as patterns are adopted and keeping history.
type Session struct {
	PS      *policy.Policy
	Vocab   *vocab.Vocabulary
	Opts    Options
	History []Round

	// rejected remembers reviewer-rejected rules so later rounds do
	// not resurface behaviour already ruled bad practice.
	rejected map[string]bool
}

// NewSession starts a refinement session over the given policy store.
// The store is used by reference: adopted rules are added to it.
func NewSession(ps *policy.Policy, v *vocab.Vocabulary, opts Options) *Session {
	return &Session{PS: ps, Vocab: v, Opts: opts, rejected: make(map[string]bool)}
}

// Run performs one refinement round over an audit snapshot: measure
// row coverage, run Refinement (Algorithms 2–6), apply the reviewer's
// decisions, and re-measure.
func (s *Session) Run(entries []audit.Entry, reviewer Reviewer) (Round, error) {
	round := Round{Started: time.Now(), Entries: len(entries)}
	round.Practice = len(Filter(entries))

	before, err := EntryCoverage(s.PS, entries, s.Vocab)
	if err != nil {
		return Round{}, err
	}
	round.CoverageBefore = before.Coverage

	patterns, err := Refinement(s.PS, entries, s.Vocab, s.Opts)
	if err != nil {
		return Round{}, err
	}
	for _, p := range patterns {
		if s.rejected[p.Rule.Key()] {
			continue // previously ruled bad practice
		}
		round.Patterns = append(round.Patterns, p)
	}

	if reviewer == nil {
		reviewer = AdoptAll
	}
	for _, p := range round.Patterns {
		switch reviewer.Review(p) {
		case Adopt:
			s.PS.Add(p.Rule)
			round.Adopted = append(round.Adopted, p.Rule)
		case Reject:
			s.rejected[p.Rule.Key()] = true
			round.Rejected = append(round.Rejected, p)
		default:
			round.Investigating = append(round.Investigating, p)
		}
	}

	after, err := EntryCoverage(s.PS, entries, s.Vocab)
	if err != nil {
		return Round{}, err
	}
	round.CoverageAfter = after.Coverage

	s.History = append(s.History, round)
	return round, nil
}

// RejectedRules returns the canonical keys of rules the reviewer has
// ruled out, sorted order not guaranteed.
func (s *Session) RejectedRules() int { return len(s.rejected) }
