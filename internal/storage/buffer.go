package storage

import (
	"sync"
	"sync/atomic"
)

// Buffer pool: a fixed budget of page frames cached by page id. The
// page table is lock-striped — each stripe owns a shard of the id
// space with its own mutex, LRU list and frame budget — so concurrent
// readers of distinct pages contend only per stripe. Frames carry pin
// counts (a pinned frame is never evicted; pin/unpin bracket every
// page access) and a per-frame RWMutex latch serializing byte-level
// access: tree writers mutate page bytes under the write latch while
// concurrent readers hold read latches, which is what makes reads
// during splits safe.
//
// Eviction is LRU per stripe: the least recently used unpinned frame
// is written back when dirty (safe under the copy-on-write protocol —
// a dirty frame is never part of the last durable checkpoint, so
// writing it early can only touch pages the durable meta does not
// reference) and dropped. The per-stripe frame budget is soft: when
// every resident frame is pinned by concurrent callers, a miss admits
// its frame over budget instead of failing, and later misses evict
// back down once pins release.

// frame is one cached page.
type frame struct {
	id    uint32
	buf   []byte // PageSize bytes
	pins  atomic.Int32
	dirty bool // guarded by the owning stripe's mutex

	latch sync.RWMutex // guards buf contents

	// LRU list links, guarded by the stripe mutex.
	prev, next *frame
}

// poolStripe is one shard of the page table.
type poolStripe struct {
	mu     sync.Mutex
	table  map[uint32]*frame
	head   *frame // most recently used
	tail   *frame // least recently used
	frames int
	cap    int
}

// Pool is the buffer pool over one pager.
type Pool struct {
	pager   *pager
	stripes []poolStripe

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	writeback atomic.Uint64
}

// PoolStats is a point-in-time snapshot of pool counters.
type PoolStats struct {
	Hits, Misses, Evictions, Writebacks uint64
}

// HitRate returns hits / (hits + misses), 1 for an untouched pool.
func (s PoolStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

const defaultPoolPages = 1024 // 4 MiB
const poolStripes = 16

func newPool(pg *pager, capPages int) *Pool {
	if capPages <= 0 {
		capPages = defaultPoolPages
	}
	if capPages < poolStripes*2 {
		capPages = poolStripes * 2
	}
	p := &Pool{pager: pg, stripes: make([]poolStripe, poolStripes)}
	per := capPages / poolStripes
	for i := range p.stripes {
		p.stripes[i].table = make(map[uint32]*frame)
		p.stripes[i].cap = per
	}
	return p
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		Evictions:  p.evictions.Load(),
		Writebacks: p.writeback.Load(),
	}
}

func (p *Pool) stripe(id uint32) *poolStripe {
	return &p.stripes[id%poolStripes]
}

// lruPush moves f to the MRU end; stripe mutex held.
func (s *poolStripe) lruPush(f *frame) {
	if s.head == f {
		return
	}
	s.lruUnlink(f)
	f.next = s.head
	f.prev = nil
	if s.head != nil {
		s.head.prev = f
	}
	s.head = f
	if s.tail == nil {
		s.tail = f
	}
}

func (s *poolStripe) lruUnlink(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	}
	if s.head == f {
		s.head = f.next
	}
	if s.tail == f {
		s.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

// get returns the frame for page id, pinned. The caller must release
// it with put. A new frame reads the page from the pager file; a
// fresh=true frame skips the read (the page was just allocated).
func (p *Pool) get(id uint32, fresh bool) (*frame, error) {
	s := p.stripe(id)
	s.mu.Lock()
	if f, ok := s.table[id]; ok {
		f.pins.Add(1)
		s.lruPush(f)
		s.mu.Unlock()
		p.hits.Add(1)
		return f, nil
	}
	p.misses.Add(1)
	// Evict down to budget before inserting. The cap is a soft
	// budget: when every resident frame is pinned (a concurrent
	// working set larger than the stripe), the new frame is admitted
	// over budget rather than failing the read, and later misses
	// evict back down once pins release.
	for s.frames >= s.cap {
		evicted, err := p.evictLocked(s)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		if !evicted {
			break
		}
	}
	f := &frame{id: id, buf: make([]byte, PageSize)}
	f.pins.Add(1)
	if !fresh {
		// Read under the stripe mutex: simple and safe. Stripe count
		// keeps the serialization local; a miss storm on one stripe
		// degrades to sequential I/O, which is what a cold scan is
		// anyway.
		if err := p.pager.readPage(id, f.buf); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	s.table[id] = f
	s.frames++
	s.lruPush(f)
	s.mu.Unlock()
	return f, nil
}

// evictLocked drops the least recently used unpinned frame, writing
// it back first when dirty. Returns false when every resident frame
// is pinned and nothing could be evicted. Stripe mutex held.
func (p *Pool) evictLocked(s *poolStripe) (bool, error) {
	for f := s.tail; f != nil; f = f.prev {
		if f.pins.Load() != 0 {
			continue
		}
		if f.dirty {
			// The frame is unpinned and the stripe mutex excludes new
			// pins, so no writer holds the latch; take it to order
			// against a release racing the final byte store.
			f.latch.RLock()
			err := p.pager.writePage(f.id, f.buf)
			f.latch.RUnlock()
			if err != nil {
				return false, err
			}
			f.dirty = false
			p.writeback.Add(1)
		}
		s.lruUnlink(f)
		delete(s.table, f.id)
		s.frames--
		p.evictions.Add(1)
		return true, nil
	}
	return false, nil
}

// put unpins a frame; dirty records that the caller mutated the bytes.
func (p *Pool) put(f *frame, dirty bool) {
	if dirty {
		s := p.stripe(f.id)
		s.mu.Lock()
		f.dirty = true
		s.mu.Unlock()
	}
	f.pins.Add(-1)
}

// drop removes a page from the cache without writeback (the page was
// freed); no-op when absent or pinned.
func (p *Pool) drop(id uint32) {
	s := p.stripe(id)
	s.mu.Lock()
	if f, ok := s.table[id]; ok && f.pins.Load() == 0 {
		s.lruUnlink(f)
		delete(s.table, id)
		s.frames--
	}
	s.mu.Unlock()
}

// flush writes every dirty frame back to the pager file. Called by
// Checkpoint with the store's writer lock held, so no new dirtying
// writer can race; pinned readers are harmless.
func (p *Pool) flush() error {
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.Lock()
		for _, f := range s.table {
			if !f.dirty {
				continue
			}
			f.latch.RLock()
			err := p.pager.writePage(f.id, f.buf)
			f.latch.RUnlock()
			if err != nil {
				s.mu.Unlock()
				return err
			}
			f.dirty = false
			p.writeback.Add(1)
		}
		s.mu.Unlock()
	}
	return nil
}

// invalidate empties the cache (used after structural rebuilds).
func (p *Pool) invalidate() {
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.Lock()
		s.table = make(map[uint32]*frame)
		s.head, s.tail = nil, nil
		s.frames = 0
		s.mu.Unlock()
	}
}
