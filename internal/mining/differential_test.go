package mining_test

import (
	"reflect"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/mining"
	"repro/internal/scenario"
	"repro/internal/workflow"
)

// Extractor-level differential coverage: both engines, all feed paths
// (batch, index-fed, incremental streaming) on seeded simulator
// output, pinned byte-identical down to evidence windows.

// simPractice returns the filtered practice rows of a seeded hospital
// simulation plus the raw entries.
func simPractice(t *testing.T, seed int64, days int) ([]audit.Entry, []audit.Entry) {
	t.Helper()
	sim, err := workflow.New(workflow.DefaultHospital(seed))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := sim.Run(0, days)
	if err != nil {
		t.Fatal(err)
	}
	return entries, core.Filter(entries)
}

// TestFPGrowthExtractorDifferentialSim pins FPGrowth.Extract to
// Extractor.Extract on seeded simulator output across option
// variants — including the evidence (users, first/last seen) and the
// pattern order, not just the rule set.
func TestFPGrowthExtractorDifferentialSim(t *testing.T) {
	_, practice := simPractice(t, 42, 30)
	if len(practice) == 0 {
		t.Fatal("simulator produced no practice rows")
	}
	variants := []struct {
		name string
		kp   bool
		opts core.Options
	}{
		{"defaults", false, core.Options{}},
		{"support3", false, core.Options{MinSupport: 3}},
		{"keep-partial", true, core.Options{MinSupport: 3}},
		{"users1", false, core.Options{MinSupport: 2, MinDistinctUsers: 1}},
		{"wide-attrs", true, core.Options{MinSupport: 3, Attrs: []string{"data", "purpose", "authorized", "op"}}},
	}
	for _, tc := range variants {
		t.Run(tc.name, func(t *testing.T) {
			want, err := mining.Extractor{KeepPartial: tc.kp}.Extract(practice, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mining.FPGrowth{KeepPartial: tc.kp}.Extract(practice, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("engines diverge (%d vs %d patterns)\napriori: %v\nfpgrowth: %v",
					len(want), len(got), want, got)
			}
			if tc.name == "defaults" && len(want) == 0 {
				t.Error("defaults variant mined nothing; differential test is vacuous")
			}
		})
	}
}

// TestExtractLogDifferential pins the index-fed path (ExtractLog over
// audit.PracticeShards) to the snapshot path for both engines, and
// checks the not-served fallback for non-default attributes.
func TestExtractLogDifferential(t *testing.T) {
	entries, practice := simPractice(t, 7, 20)
	l := audit.NewLog("diff")
	if err := l.Append(entries...); err != nil {
		t.Fatal(err)
	}
	opts := core.Options{MinSupport: 3}
	want, err := mining.Extractor{}.Extract(practice, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		le   core.LogExtractor
	}{
		{"apriori", mining.Extractor{}},
		{"fpgrowth", mining.FPGrowth{}},
	} {
		got, served, err := tc.le.ExtractLog(l, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !served {
			t.Fatalf("%s: default attrs must be index-servable", tc.name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: index-fed diverges from snapshot\nindex: %v\nsnapshot: %v", tc.name, got, want)
		}
		_, served, err = tc.le.ExtractLog(l, core.Options{MinSupport: 3, Attrs: []string{"data", "user"}})
		if err != nil || served {
			t.Fatalf("%s: custom attrs must not be index-served (served=%v, err=%v)", tc.name, served, err)
		}
	}
	if len(want) == 0 {
		t.Error("no patterns mined; differential test is vacuous")
	}
}

// TestRefineFromLogUsesLogExtractor pins RefineFromLog with a mining
// extractor to the snapshot Refinement pipeline — the index-fed path
// must change the cost, not the result (pruning included).
func TestRefineFromLogUsesLogExtractor(t *testing.T) {
	entries, _ := simPractice(t, 13, 15)
	v := scenario.Vocabulary()
	l := audit.NewLog("rfl")
	if err := l.Append(entries...); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		x    core.PatternExtractor
	}{
		{"apriori", mining.Extractor{}},
		{"fpgrowth", mining.FPGrowth{}},
	} {
		opts := core.Options{MinSupport: 3, Extractor: tc.x}
		ps := scenario.PolicyStore()
		want, err := core.Refinement(ps, l.Snapshot(), v, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.RefineFromLog(ps, l, v, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: RefineFromLog diverges from Refinement\nlog: %v\nsnapshot: %v", tc.name, got, want)
		}
	}
}

// TestStreamSessionIncrementalDifferential drives both mining engines
// through StreamSession's incremental path against the sequential
// Session over chunked simulator appends: every round's patterns,
// coverage, and adopted rules must match, while the stream side folds
// only each round's delta.
func TestStreamSessionIncrementalDifferential(t *testing.T) {
	entries, _ := simPractice(t, 99, 24)
	third := len(entries) / 3
	chunks := [][]audit.Entry{entries[:third], entries[third : 2*third], entries[2*third:]}
	for _, tc := range []struct {
		name string
		x    core.PatternExtractor
	}{
		{"apriori", mining.Extractor{}},
		{"fpgrowth", mining.FPGrowth{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v := scenario.Vocabulary()
			opts := core.Options{MinSupport: 3, Extractor: tc.x}
			psSeq := scenario.PolicyStore()
			psStream := scenario.PolicyStore()
			l := audit.NewLog("inc")
			seq := core.NewSession(psSeq, v, opts)
			stream := core.NewStreamSession(l, psStream, v, opts)

			var cumulative []audit.Entry
			for i, chunk := range chunks {
				cumulative = append(cumulative, chunk...)
				if err := l.Append(chunk...); err != nil {
					t.Fatal(err)
				}
				seqRound, err := seq.Run(cumulative, core.AdoptAll)
				if err != nil {
					t.Fatal(err)
				}
				streamRound, err := stream.Run(core.AdoptAll)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(streamRound.Patterns, seqRound.Patterns) {
					t.Fatalf("chunk %d: stream patterns %v, seq %v", i, streamRound.Patterns, seqRound.Patterns)
				}
				if streamRound.CoverageAfter != seqRound.CoverageAfter {
					t.Fatalf("chunk %d coverage: %v vs %v", i, streamRound.CoverageAfter, seqRound.CoverageAfter)
				}
			}
			if psStream.Len() != psSeq.Len() {
				t.Fatalf("policies diverge: %d vs %d rules", psStream.Len(), psSeq.Len())
			}
		})
	}
}

// TestStreamSessionIncrementalResync checks the structural-change
// protocol: after Log.Reset the delta cursor resyncs and the
// incremental state must discard its accumulated table, not
// double-count the re-appended rows.
func TestStreamSessionIncrementalResync(t *testing.T) {
	v := scenario.Vocabulary()
	table := scenario.Table1()
	opts := core.Options{MinSupport: 3, Extractor: mining.FPGrowth{}}

	l := audit.NewLog("resync")
	stream := core.NewStreamSession(l, scenario.PolicyStore(), v, opts)
	if err := l.Append(table...); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Run(core.AdoptAll); err != nil {
		t.Fatal(err)
	}

	l.Reset()
	if err := l.Append(table...); err != nil {
		t.Fatal(err)
	}
	round, err := stream.Run(core.AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh session over the same single append is the oracle: if
	// the resync failed, supports double.
	fresh := core.NewStreamSession(audit.NewLog("fresh"), scenario.PolicyStore(), v, opts)
	freshLog := fresh.Log
	if err := freshLog.Append(table...); err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(core.AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	// The first run adopted the pattern into the stream session's
	// store, so compare raw support evidence via the rounds' practice
	// counts rather than the pruned pattern lists.
	if round.Practice != want.Practice || round.Entries != want.Entries {
		t.Fatalf("after resync: practice/entries %d/%d, want %d/%d",
			round.Practice, round.Entries, want.Practice, want.Entries)
	}
	if stream.RejectedRules() != 0 {
		t.Fatalf("unexpected rejections: %d", stream.RejectedRules())
	}
}

// TestExtractorEdgeCases covers empty practice and below-support
// inputs for both engines.
func TestExtractorEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name string
		x    core.PatternExtractor
	}{
		{"apriori", mining.Extractor{}},
		{"fpgrowth", mining.FPGrowth{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pats, err := tc.x.Extract(nil, core.Options{})
			if err != nil || len(pats) != 0 {
				t.Errorf("empty practice: %v, %v", pats, err)
			}
			// Table 1 has a support-5 pattern; threshold 6 must mine nothing.
			pats, err = tc.x.Extract(core.Filter(scenario.Table1()), core.Options{MinSupport: 6})
			if err != nil || len(pats) != 0 {
				t.Errorf("below support: %v, %v", pats, err)
			}
			// Invalid minSupport must error, not mine everything.
			if _, err := tc.x.Extract(core.Filter(scenario.Table1()), core.Options{MinSupport: -1}); err == nil {
				t.Error("negative minSupport accepted")
			}
		})
	}
}

// TestKeepPartialDifferential pins the KeepPartial correlation
// surface across engines — the partial itemsets are exactly where
// tree-pruning bugs would diverge from the levelwise oracle.
func TestKeepPartialDifferential(t *testing.T) {
	_, practice := simPractice(t, 5, 20)
	opts := core.Options{MinSupport: 4, MinDistinctUsers: 2}
	want, err := mining.Extractor{KeepPartial: true}.Extract(practice, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mining.FPGrowth{KeepPartial: true}.Extract(practice, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("KeepPartial diverges: %v vs %v", got, want)
	}
	partial := 0
	for _, p := range want {
		if p.Rule.Len() < len(core.DefaultAttrs) {
			partial++
		}
	}
	if partial == 0 {
		t.Error("no partial-width patterns; KeepPartial test is vacuous")
	}
}
