package consent

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestExportImportRoundTrip(t *testing.T) {
	s := store(t, true)
	if err := s.Set("bob", "psychiatry", "research", OptOut, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetWithExpiry("amy", "clinical", "", OptOut, t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("amy", "lab_result", "research", OptIn, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	recs := s.Export()
	if len(recs) != 3 {
		t.Fatalf("exported %d records", len(recs))
	}
	// Sorted by patient then time.
	if recs[0].Patient != "amy" || recs[2].Patient != "bob" {
		t.Errorf("order: %+v", recs)
	}
	if recs[0].Expires.IsZero() {
		t.Error("expiry lost in export")
	}

	fresh := store(t, true)
	if err := fresh.Import(recs); err != nil {
		t.Fatal(err)
	}
	if fresh.Allowed("bob", "psychiatry", "research") {
		t.Error("imported opt-out not applied")
	}
	if !fresh.CheckAt("amy", "referral", "treatment", t0.Add(2*time.Hour)).Allowed {
		t.Error("imported expiry not honoured")
	}
	if !fresh.Allowed("amy", "lab_result", "research") {
		t.Error("imported opt-in not applied")
	}
}

func TestImportRejectsBadRecords(t *testing.T) {
	s := store(t, true)
	err := s.Import([]Record{{Patient: "", Choice: OptOut, At: t0}})
	if err == nil {
		t.Error("empty patient accepted on import")
	}
	err = s.Import([]Record{{Patient: "p", Choice: Unset, At: t0}})
	if err == nil {
		t.Error("unset choice accepted on import")
	}
}

func TestChoiceJSON(t *testing.T) {
	for _, c := range []Choice{OptIn, OptOut, Unset} {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var back Choice
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != c {
			t.Errorf("round trip %v -> %v", c, back)
		}
	}
	var c Choice
	if err := json.Unmarshal([]byte(`"sideways"`), &c); err == nil {
		t.Error("unknown choice string accepted")
	}
	if err := json.Unmarshal([]byte(`7`), &c); err == nil {
		t.Error("numeric choice accepted")
	}
}

func TestRecordJSONShape(t *testing.T) {
	r := Record{Patient: "p", Data: "clinical", Choice: OptOut, At: t0}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if want := `"choice":"opt-out"`; !strings.Contains(s, want) {
		t.Errorf("JSON missing %q: %s", want, s)
	}
	// A zero time is not "empty" to encoding/json, so expires is
	// always present; Import treats the zero value as "never".
	if !strings.Contains(s, `"expires":"0001-01-01T00:00:00Z"`) {
		t.Errorf("unexpected expires encoding: %s", s)
	}
}
