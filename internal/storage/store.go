package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Options tunes an opened Store.
type Options struct {
	// PoolPages is the buffer-pool budget in pages (default 1024 = 4 MiB).
	PoolPages int
	// OpenFile opens the backing file; defaults to OpenOSFile. Crash
	// tests substitute failpoint wrappers here.
	OpenFile OpenFileFunc
	// NoSync skips fsyncs on checkpoint (benchmarks comparing the
	// fsync cost; never used by production callers).
	NoSync bool
}

// Store is one storage file: pager + buffer pool + a single B+tree,
// with shadow-paging checkpoints. All mutation (tree writes,
// checkpoints) is serialized by the writer mutex; reads are
// concurrent, pinning and read-latching frames as they go.
type Store struct {
	mu sync.Mutex // writer lock: tree mutation, allocation, checkpoint

	// ckpt serializes readers against checkpoints: Get/Scan hold it
	// shared for their whole descent, Checkpoint exclusively. Pages a
	// checkpoint recycles into the allocator were freed before it ran,
	// so excluding in-flight readers guarantees no reader still holds a
	// page id the next epoch may rewrite. (Writers do not take it:
	// within an epoch, copy-on-write alone protects readers from
	// inserts; deletes recycle fresh pages and need external
	// serialization, which every caller of Delete/Clear provides.)
	ckpt sync.RWMutex

	f      File
	pager  *pager
	pool   *Pool
	noSync bool

	root atomic.Uint32 // current tree root (0 = empty); lock-free readers

	// Checkpoint bookkeeping, guarded by mu.
	ckptVer     uint64
	app         []byte
	free        []uint32        // free at the last checkpoint, still unused
	chain       []uint32        // freelist chain pages of the last durable meta
	fresh       map[uint32]bool // allocated since the last checkpoint: mutable in place
	pendingFree []uint32        // unreferenced by the working tree; reusable after checkpoint
}

// OpenStore opens (creating if needed) the store file at path.
func OpenStore(path string, o Options) (*Store, error) {
	open := o.OpenFile
	if open == nil {
		open = OpenOSFile
	}
	f, err := open(path)
	if err != nil {
		return nil, err
	}
	pg, meta, err := openPager(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	free, chain, err := pg.readFreelist(meta.FreeHead)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: freelist: %w", err)
	}
	s := &Store{
		f:       f,
		pager:   pg,
		pool:    newPool(pg, o.PoolPages),
		noSync:  o.NoSync,
		ckptVer: meta.Version,
		app:     meta.App,
		free:    free,
		chain:   chain,
		fresh:   make(map[uint32]bool),
	}
	s.root.Store(meta.Root)
	return s, nil
}

// App returns the application blob of the last checkpoint.
func (s *Store) App() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.app...)
}

// Version returns the checkpoint counter.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptVer
}

// PoolStats exposes the buffer-pool counters.
func (s *Store) PoolStats() PoolStats { return s.pool.Stats() }

// Pages returns the allocated page count of the file.
func (s *Store) Pages() uint32 {
	return s.pager.pages.Load()
}

// allocFrame allocates a page (free list first, then file growth) and
// returns it pinned and initialized to kind. Writer lock held.
func (s *Store) allocFrame(kind byte) (uint32, *frame, error) {
	var id uint32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.pager.grow()
	}
	f, err := s.pool.get(id, true)
	if err != nil {
		return 0, nil, err
	}
	f.latch.Lock()
	initPage(f.buf, kind)
	f.latch.Unlock()
	s.pool.put(f, true) // mark dirty; keep our own pin below
	f.pins.Add(1)
	s.fresh[id] = true
	return id, f, nil
}

// cowFrame makes the page writable under the shadow-paging rule:
// pages allocated since the last checkpoint mutate in place, anything
// older is copied to a fresh page and the old id queued for post-
// checkpoint freeing. The input frame must be pinned; on copy it is
// unpinned and the new pinned frame returned. Writer lock held.
func (s *Store) cowFrame(id uint32, f *frame) (uint32, *frame, error) {
	if s.fresh[id] {
		return id, f, nil
	}
	nid, nf, err := s.allocFrame(f.buf[0])
	if err != nil {
		return 0, nil, err
	}
	f.latch.RLock()
	nf.latch.Lock()
	copy(nf.buf, f.buf)
	nf.latch.Unlock()
	f.latch.RUnlock()
	s.pool.put(f, false)
	s.pool.put(nf, true)
	nf.pins.Add(1)
	s.pendingFree = append(s.pendingFree, id)
	return nid, nf, nil
}

// freeTreePage queues a page unlinked from the working tree. Fresh
// pages return to the allocator immediately (nothing durable ever
// referenced them); checkpointed pages wait for the next checkpoint.
func (s *Store) freeTreePage(id uint32) {
	s.pool.drop(id)
	if s.fresh[id] {
		delete(s.fresh, id)
		s.free = append(s.free, id)
		return
	}
	s.pendingFree = append(s.pendingFree, id)
}

// Checkpoint durably commits the working tree and the application
// blob: chain the next free list, flush every dirty frame, fsync the
// data, then swap the CRC'd meta slot (the atomic commit point).
// After it returns, Open of the same file reproduces exactly this
// tree and app blob even if the process dies immediately after.
func (s *Store) Checkpoint(app []byte) error {
	s.ckpt.Lock()
	defer s.ckpt.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked(app)
}

func (s *Store) checkpointLocked(app []byte) error {
	if len(app) > metaAppMax {
		return fmt.Errorf("storage: app blob %d bytes exceeds %d", len(app), metaAppMax)
	}
	// The ids free under the NEXT meta: still-unused free pages, the
	// old freelist chain, and everything copy-on-write unreferenced.
	// Chain pages must come from s.free only: those are free under
	// both the old and the new meta, so a torn checkpoint that
	// overwrote them loses nothing.
	avail := append([]uint32(nil), s.free...)
	ids := append(append([]uint32(nil), s.chain...), s.pendingFree...)
	var chain []uint32
	for {
		// The chain must hold every id that will be written: the queued
		// ids plus whatever remains of avail once chain pages are taken
		// from it. Sizing against anything less silently drops the
		// overflow in writeFreelist and leaks those pages forever.
		total := len(avail) + len(ids)
		k := (total + idsPerFreelistPage - 1) / idsPerFreelistPage
		if k <= len(chain) {
			break
		}
		var id uint32
		if n := len(avail); n > 0 {
			id = avail[n-1]
			avail = avail[:n-1]
		} else {
			id = s.pager.grow()
		}
		chain = append(chain, id)
	}
	ids = append(ids, avail...)
	head, err := s.pager.writeFreelist(ids, chain)
	if err != nil {
		return err
	}
	if err := s.pool.flush(); err != nil {
		return err
	}
	if !s.noSync {
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	m := &Meta{
		Version:  s.ckptVer + 1,
		Pages:    s.pager.pages.Load(),
		Root:     s.root.Load(),
		FreeHead: head,
		App:      app,
	}
	if err := s.pager.writeMeta(m, int(m.Version%2)); err != nil {
		return err
	}
	if !s.noSync {
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	s.ckptVer = m.Version
	s.app = append([]byte(nil), app...)
	s.free = ids
	s.chain = chain
	s.pendingFree = s.pendingFree[:0]
	clear(s.fresh)
	return nil
}

// Clear unlinks the whole tree (every page returns to the allocator
// after the next checkpoint) and resets the root. Used by full-rewrite
// paths (minidb DELETE/UPDATE compaction, audit expiry).
func (s *Store) Clear() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	root := s.root.Load()
	if root == 0 {
		return nil
	}
	if err := s.walkPages(root, func(id uint32) { s.freeTreePage(id) }); err != nil {
		return err
	}
	s.root.Store(0)
	return nil
}

// walkPages visits every page id reachable from id (post-order).
func (s *Store) walkPages(id uint32, fn func(uint32)) error {
	f, err := s.pool.get(id, false)
	if err != nil {
		return err
	}
	f.latch.RLock()
	pg := page(f.buf)
	var children []uint32
	if pg.kind() == kindBranch {
		for i := 0; i < pg.ncells(); i++ {
			_, c := pg.branchCell(i)
			children = append(children, c)
		}
	}
	f.latch.RUnlock()
	s.pool.put(f, false)
	for _, c := range children {
		if err := s.walkPages(c, fn); err != nil {
			return err
		}
	}
	fn(id)
	return nil
}

// Close flushes nothing: callers checkpoint explicitly before closing
// when they want the working tree durable. It releases the file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
