package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/vocab"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// TestFigure3Coverage reproduces the paper's §3.3 example exactly:
// invoking ComputeCoverage(P_PS, P_AL, V) yields 50 % (3/6).
func TestFigure3Coverage(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	al := scenario.Figure3AuditPolicy()
	got, err := ComputeCoverage(ps, al, v)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, scenario.Figure3Coverage) {
		t.Fatalf("Figure 3 coverage = %v, want %v", got, scenario.Figure3Coverage)
	}
}

// TestFigure3Gaps verifies the three §3.3 exception explanations:
// rule 3 fails on purpose, rule 4 on authorized, rule 6 on data.
func TestFigure3Gaps(t *testing.T) {
	v := scenario.Vocabulary()
	rep, err := Coverage(scenario.PolicyStore(), scenario.Figure3AuditPolicy(), v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overlap != 3 || rep.RangeY != 6 || !almost(rep.Coverage, 0.5) {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Gaps) != 3 {
		t.Fatalf("gaps = %d, want 3", len(rep.Gaps))
	}
	wantFailingAttr := map[string]string{
		"authorized=nurse&data=referral&purpose=registration": "purpose",    // rule 3
		"authorized=nurse&data=psychiatry&purpose=treatment":  "authorized", // rule 4
		"authorized=clerk&data=prescription&purpose=billing":  "data",       // rule 6
	}
	for _, g := range rep.Gaps {
		attr, ok := wantFailingAttr[g.Rule.Key()]
		if !ok {
			t.Errorf("unexpected gap %s", g.Rule)
			continue
		}
		found := false
		for _, nm := range g.NearMisses {
			if vocab.Norm(nm.Attr) == attr {
				found = true
				if nm.String() == "" {
					t.Error("empty near-miss explanation")
				}
			}
		}
		if !found {
			t.Errorf("gap %s: no near miss on %q (got %v)", g.Rule, attr, g.NearMisses)
		}
	}
}

func TestCoverageSelfIsComplete(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	c, err := ComputeCoverage(ps, ps, v)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Errorf("Coverage(P,P) = %v, want 1", c)
	}
	complete, err := CompleteCoverage(ps, ps, v)
	if err != nil || !complete {
		t.Errorf("CompleteCoverage(P,P) = %v, %v", complete, err)
	}
}

func TestCoverageEmptyTarget(t *testing.T) {
	v := scenario.Vocabulary()
	empty := policy.New("empty")
	c, err := ComputeCoverage(scenario.PolicyStore(), empty, v)
	if err != nil || c != 1 {
		t.Errorf("coverage vs empty = %v, %v", c, err)
	}
	// And an empty policy covers nothing of a non-empty one.
	c, err = ComputeCoverage(empty, scenario.Figure3AuditPolicy(), v)
	if err != nil || c != 0 {
		t.Errorf("empty covers = %v, %v", c, err)
	}
}

func TestCoverageBounds(t *testing.T) {
	// Property: coverage is always within [0, 1].
	v := scenario.Vocabulary()
	pols := []*policy.Policy{
		scenario.PolicyStore(),
		scenario.Figure3AuditPolicy(),
		policy.New("empty"),
		policy.FromRules("one", policy.MustRule(policy.T("data", "phi"), policy.T("purpose", "healthcare"), policy.T("authorized", "medical_staff"))),
	}
	for _, px := range pols {
		for _, py := range pols {
			c, err := ComputeCoverage(px, py, v)
			if err != nil {
				t.Fatalf("%s vs %s: %v", px.Name, py.Name, err)
			}
			if c < 0 || c > 1 {
				t.Errorf("%s vs %s: coverage %v out of bounds", px.Name, py.Name, c)
			}
		}
	}
}

func TestCompositeCoverageViaRange(t *testing.T) {
	// A composite audit-side policy is covered iff all its ground
	// rules are.
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	composite := policy.FromRules("AL",
		policy.MustRule(policy.T("data", "general"), policy.T("purpose", "treatment"), policy.T("authorized", "nurse")),
	)
	c, err := ComputeCoverage(ps, composite, v)
	if err != nil || c != 1 {
		t.Errorf("composite covered: %v, %v", c, err)
	}
	wider := policy.FromRules("AL",
		policy.MustRule(policy.T("data", "clinical"), policy.T("purpose", "treatment"), policy.T("authorized", "nurse")),
	)
	// clinical has 5 leaves; only the 3 general ones are covered.
	c, err = ComputeCoverage(ps, wider, v)
	if err != nil || !almost(c, 3.0/5.0) {
		t.Errorf("wider coverage = %v, want 0.6 (%v)", c, err)
	}
}

// TestTable1EntryCoverage reproduces §5: coverage over the Table 1
// snapshot is 30 % (3/10).
func TestTable1EntryCoverage(t *testing.T) {
	v := scenario.Vocabulary()
	rep, err := EntryCoverage(scenario.PolicyStore(), scenario.Table1(), v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 10 || rep.Covered != 3 {
		t.Fatalf("covered %d/%d, want 3/10", rep.Covered, rep.Total)
	}
	if !almost(rep.Coverage, scenario.Table1Coverage) {
		t.Errorf("coverage = %v, want %v", rep.Coverage, scenario.Table1Coverage)
	}
	if len(rep.Uncovered) != 7 {
		t.Errorf("uncovered rows = %d, want 7", len(rep.Uncovered))
	}
	// The covered rows are exactly t1, t2, t5.
	uncoveredUsers := map[string]bool{}
	for _, e := range rep.Uncovered {
		uncoveredUsers[e.User] = true
	}
	for _, u := range []string{"John", "Bill"} {
		if uncoveredUsers[u] {
			t.Errorf("row of %s should be covered", u)
		}
	}
}

func TestEntryCoverageEmpty(t *testing.T) {
	v := scenario.Vocabulary()
	rep, err := EntryCoverage(scenario.PolicyStore(), nil, v)
	if err != nil || rep.Coverage != 1 || rep.Total != 0 {
		t.Errorf("empty snapshot: %+v, %v", rep, err)
	}
}

func TestNearMissExplanationText(t *testing.T) {
	v := scenario.Vocabulary()
	rep, err := Coverage(scenario.PolicyStore(), scenario.Figure3AuditPolicy(), v)
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, g := range rep.Gaps {
		for _, nm := range g.NearMisses {
			all = append(all, nm.String())
		}
	}
	text := strings.Join(all, "\n")
	// The §3.3 story: referral allowed only for treatment purpose.
	if !strings.Contains(text, "purpose=treatment") {
		t.Errorf("explanations missing the treatment-purpose near miss:\n%s", text)
	}
}

// Property (quick): coverage is monotone in the covering policy —
// adding rules to Px never lowers Coverage(Px, Py).
func TestCoverageMonotoneProperty(t *testing.T) {
	v := scenario.Vocabulary()
	al := scenario.Figure3AuditPolicy()
	dataVals := v.Hierarchy("data").Leaves()
	purposeVals := v.Hierarchy("purpose").Leaves()
	roleVals := v.Hierarchy("authorized").Leaves()
	f := func(d, p, r uint8, n uint8) bool {
		px := policy.New("PS")
		prev := 0.0
		for i := 0; i <= int(n%8); i++ {
			px.Add(policy.MustRule(
				policy.T("data", dataVals[(int(d)+i)%len(dataVals)]),
				policy.T("purpose", purposeVals[(int(p)+i*2)%len(purposeVals)]),
				policy.T("authorized", roleVals[(int(r)+i*3)%len(roleVals)]),
			))
			c, err := ComputeCoverage(px, al, v)
			if err != nil || c < prev {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
