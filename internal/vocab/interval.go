package vocab

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the Euler-tour (pre/post-order) interval
// numbering of a hierarchy: leaves are numbered 0..leafCount-1 in
// depth-first order over the roots, and every node is assigned the
// half-open interval [lo, hi) spanning exactly the leaves of its
// subtree. The numbering turns Definition 3's ground set of a value
// into an integer interval — #GroundSet(v) = hi-lo, subtree
// containment (Subsumes) into interval containment, and ground-set
// intersection (the Definition 4 equivalence test) into interval
// overlap — which is what lets the symbolic range algebra in
// internal/policy analyze SNOMED/ICD-scale vocabularies without ever
// materializing a ground rule.

// Span is a half-open interval [Lo, Hi) of leaf positions in one
// hierarchy's Euler-tour numbering.
type Span struct {
	Lo, Hi int32
}

// Len returns the number of leaves in the span — the ground-set
// cardinality of the value it numbers.
func (s Span) Len() int { return int(s.Hi - s.Lo) }

// Empty reports whether the span covers no leaves.
func (s Span) Empty() bool { return s.Hi <= s.Lo }

// Overlaps reports whether the spans share at least one leaf.
func (s Span) Overlaps(o Span) bool { return s.Lo < o.Hi && o.Lo < s.Hi }

// Contains reports whether o lies entirely inside s.
func (s Span) Contains(o Span) bool { return s.Lo <= o.Lo && o.Hi <= s.Hi }

// MergeSpans sorts and coalesces overlapping or adjacent spans into
// the canonical (sorted, disjoint) union. The input slice is reused.
func MergeSpans(spans []Span) []Span {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo < spans[j].Lo })
	out := spans[:1]
	for _, sp := range spans[1:] {
		last := &out[len(out)-1]
		if sp.Lo <= last.Hi {
			if sp.Hi > last.Hi {
				last.Hi = sp.Hi
			}
			continue
		}
		out = append(out, sp)
	}
	return out
}

// Intervals is an immutable snapshot of one hierarchy's interval
// numbering, valid for the vocabulary generation it was built at.
// Snapshots are shared lock-free between any number of readers; a
// mutated vocabulary yields a fresh snapshot on the next Intervals
// call rather than ever changing a published one.
type Intervals struct {
	gen       uint64
	leafCount int32
	spans     map[string]Span // by Norm(value)
}

// Generation returns the vocabulary generation the snapshot was built
// at; it is stale once Vocabulary.Generation has moved past it.
func (ix *Intervals) Generation() uint64 { return ix.gen }

// LeafCount returns the total number of ground values in the
// hierarchy — the cardinality of the attribute's ground space.
func (ix *Intervals) LeafCount() int { return int(ix.leafCount) }

// Interval returns the leaf interval of value's subtree and whether
// the value is registered in the hierarchy. Ground values map to
// unit intervals.
func (ix *Intervals) Interval(value string) (Span, bool) {
	s, ok := ix.spans[Norm(value)]
	return s, ok
}

// Len returns the number of values numbered by the snapshot.
func (ix *Intervals) Len() int { return len(ix.spans) }

// intervalCache publishes the hierarchy's interval snapshot. The
// discipline mirrors the repo's other generation-validated caches
// (policy.RangeCache, the hdb decision snapshot): readers load the
// atomic pointer and compare the snapshot's generation against the
// vocabulary's counter lock-free; the mutex only serializes rebuilds
// (singleflight) so concurrent readers of a stale cache do not all
// renumber a 100k-node hierarchy at once.
type intervalCache struct {
	mu  sync.Mutex // serializes rebuilds, never held by readers
	cur atomic.Pointer[Intervals]
}

// Intervals returns the hierarchy's interval numbering, rebuilding it
// only when the vocabulary has mutated since the cached snapshot was
// published. The fast path is one atomic load plus one atomic
// generation compare.
func (h *Hierarchy) Intervals() *Intervals {
	if ix := h.icache.cur.Load(); ix != nil && ix.gen == h.owner.gen.Load() {
		return ix
	}
	return h.icache.rebuild(h)
}

// rebuild renumbers the hierarchy under the vocabulary read lock and
// publishes the snapshot. The generation is read under the same lock
// that excludes Add, so a snapshot can never be stale at birth; a
// mutation landing after the build is caught by the next caller's
// generation compare.
func (c *intervalCache) rebuild(h *Hierarchy) *Intervals {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ix := c.cur.Load(); ix != nil && ix.gen == h.owner.gen.Load() {
		return ix // lost the race to another rebuilder
	}
	h.owner.mu.RLock()
	ix := &Intervals{
		gen:   h.owner.gen.Load(),
		spans: make(map[string]Span, len(h.nodes)),
	}
	var leaf int32
	var walk func(n *Node)
	walk = func(n *Node) {
		lo := leaf
		if len(n.children) == 0 {
			leaf++
		} else {
			for _, ch := range n.children {
				walk(ch)
			}
		}
		ix.spans[Norm(n.value)] = Span{Lo: lo, Hi: leaf}
	}
	for _, r := range h.roots {
		walk(r)
	}
	ix.leafCount = leaf
	h.owner.mu.RUnlock()
	c.cur.Store(ix)
	return ix
}
