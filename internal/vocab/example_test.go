package vocab_test

import (
	"fmt"

	"repro/internal/vocab"
)

// ExampleVocabulary_GroundSet expands the paper's composite RuleTerm
// (data, demographic) into its ground set RT' (Definition 3).
func ExampleVocabulary_GroundSet() {
	v := vocab.Sample()
	fmt.Println(v.GroundSet("data", "demographic"))
	// Output: [address birthdate gender phone]
}

// ExampleParseText builds a vocabulary from the indented text format.
func ExampleParseText() {
	v, _ := vocab.ParseTextString(`
data
  clinical: prescription referral
purpose
  treatment
`)
	fmt.Println(v.Subsumes("data", "clinical", "referral"))
	fmt.Println(v.IsGround("data", "clinical"), v.IsGround("data", "referral"))
	// Output:
	// true
	// false true
}

// ExampleMerge combines two sites' vocabularies for federation.
func ExampleMerge() {
	a, _ := vocab.ParseTextString("data\n  clinical\n    referral\n")
	b, _ := vocab.ParseTextString("data\n  clinical\n    imaging\n")
	m, _ := vocab.Merge(a, b)
	fmt.Println(m.GroundSet("data", "clinical"))
	// Output: [imaging referral]
}
