package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/vocab"
)

// fixtureVocab builds a small vocabulary:
//
//	data:       clinical -> {lab_result, prescription}; referral
//	purpose:    treatment; billing
//	authorized: nurse; doctor
func fixtureVocab(t *testing.T) *vocab.Vocabulary {
	t.Helper()
	v := vocab.New()
	data := v.MustAttribute("data")
	data.MustAdd("", "clinical")
	data.MustAdd("clinical", "lab_result")
	data.MustAdd("clinical", "prescription")
	data.MustAdd("", "referral")
	purpose := v.MustAttribute("purpose")
	purpose.MustAdd("", "treatment")
	purpose.MustAdd("", "billing")
	auth := v.MustAttribute("authorized")
	auth.MustAdd("", "nurse")
	auth.MustAdd("", "doctor")
	return v
}

func rule(t *testing.T, s string) policy.Rule {
	t.Helper()
	r, err := policy.ParseRule(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// cleanRules covers every vocabulary subtree with no overlap.
func cleanRules(t *testing.T) []policy.Rule {
	return []policy.Rule{
		rule(t, "data=clinical & purpose=treatment & authorized=nurse"),
		rule(t, "data=referral & purpose=billing & authorized=doctor"),
	}
}

func assertCounts(t *testing.T, rep Report, want map[string]int) {
	t.Helper()
	got := rep.Counts()
	for code, n := range want {
		if got[code] != n {
			t.Errorf("count[%s] = %d, want %d", code, got[code], n)
		}
	}
	for code, n := range got {
		if want[code] == 0 {
			t.Errorf("unexpected %d finding(s) with code %s: %v", n, code, rep.Findings)
		}
	}
}

func TestCleanPolicy(t *testing.T) {
	v := fixtureVocab(t)
	rep := Rules("PS", cleanRules(t), v)
	if !rep.Clean() {
		t.Fatalf("clean policy produced findings: %v", rep.Findings)
	}
	if rep.Rules != 2 || rep.Policy != "PS" {
		t.Errorf("report header: %+v", rep)
	}
}

func TestUnknownAttribute(t *testing.T) {
	v := fixtureVocab(t)
	rules := append(cleanRules(t), rule(t, "consent=given"))
	rep := Rules("PS", rules, v)
	assertCounts(t, rep, map[string]int{UnknownAttribute: 1})
	f := rep.Findings[0]
	if f.Code != UnknownAttribute || f.Rule != 3 || f.Attr != "consent" {
		t.Errorf("finding: %+v", f)
	}
}

func TestUnknownValue(t *testing.T) {
	v := fixtureVocab(t)
	rules := append(cleanRules(t), rule(t, "data=xray & purpose=treatment & authorized=nurse"))
	rep := Rules("PS", rules, v)
	assertCounts(t, rep, map[string]int{UnknownValue: 1})
	f := rep.Findings[0]
	if f.Code != UnknownValue || f.Rule != 3 || f.Attr != "data" || f.Value != "xray" {
		t.Errorf("finding: %+v", f)
	}
}

func TestEmptyRange(t *testing.T) {
	v := fixtureVocab(t)
	rules := append([]policy.Rule{{}}, cleanRules(t)...)
	rep := Rules("PS", rules, v)
	assertCounts(t, rep, map[string]int{EmptyRange: 1})
	if f := rep.Findings[0]; f.Rule != 1 {
		t.Errorf("zero rule not attributed to rule 1: %+v", f)
	}
}

func TestDuplicateRule(t *testing.T) {
	v := fixtureVocab(t)
	dup := rule(t, "data=clinical & purpose=treatment & authorized=nurse")
	rules := append(cleanRules(t), dup)
	rep := Rules("PS", rules, v)
	assertCounts(t, rep, map[string]int{DuplicateRule: 1})
	f := rep.Findings[0]
	if f.Code != DuplicateRule || f.Rule != 3 {
		t.Errorf("finding: %+v", f)
	}
	if !strings.Contains(f.Message, "rule 1") {
		t.Errorf("duplicate should name the earlier rule: %s", f.Message)
	}
}

func TestSubsumedRule(t *testing.T) {
	v := fixtureVocab(t)
	// Rule 3's Range (the single ground rule with lab_result) is a
	// strict subset of rule 1's (clinical expands to both leaves).
	rules := append(cleanRules(t), rule(t, "data=lab_result & purpose=treatment & authorized=nurse"))
	rep := Rules("PS", rules, v)
	assertCounts(t, rep, map[string]int{SubsumedRule: 1})
	f := rep.Findings[0]
	if f.Code != SubsumedRule || f.Rule != 3 {
		t.Errorf("finding: %+v", f)
	}
	if !strings.Contains(f.Message, "Definition 8") {
		t.Errorf("message should cite Definition 8: %s", f.Message)
	}
}

// TestSubsumedEarlierRule pins the symmetric case: the broader rule
// appearing later still marks the earlier narrow rule as subsumed.
func TestSubsumedEarlierRule(t *testing.T) {
	v := fixtureVocab(t)
	rules := []policy.Rule{
		rule(t, "data=lab_result & purpose=treatment & authorized=nurse"),
		rule(t, "data=clinical & purpose=treatment & authorized=nurse"),
		rule(t, "data=referral & purpose=billing & authorized=doctor"),
	}
	rep := Rules("PS", rules, v)
	assertCounts(t, rep, map[string]int{SubsumedRule: 1})
	if f := rep.Findings[0]; f.Rule != 1 {
		t.Errorf("expected rule 1 subsumed: %+v", f)
	}
}

func TestUnreachableSubtree(t *testing.T) {
	v := fixtureVocab(t)
	// Only rule 1 remains: referral (data), billing (purpose) and
	// doctor (authorized) become unreachable subtrees. Vocabulary-level
	// findings sort by (attribute, value), not registration order.
	rep := Rules("PS", cleanRules(t)[:1], v)
	assertCounts(t, rep, map[string]int{UnreachableSubtree: 3})
	var values []string
	for _, f := range rep.Findings {
		if f.Attr == "" {
			t.Errorf("vocabulary finding missing Attr: %+v", f)
		}
		values = append(values, f.Value)
	}
	got := strings.Join(values, ",")
	if got != "doctor,referral,billing" {
		t.Errorf("unreachable subtrees = %q", got)
	}
}

func TestUnreferencedAttribute(t *testing.T) {
	v := fixtureVocab(t)
	rules := []policy.Rule{
		rule(t, "data=clinical & purpose=treatment"),
		rule(t, "data=referral & purpose=billing"),
	}
	rep := Rules("PS", rules, v)
	assertCounts(t, rep, map[string]int{UnreachableSubtree: 1})
	f := rep.Findings[0]
	if f.Attr != "authorized" || f.Value != "" {
		t.Errorf("finding: %+v", f)
	}
	if !strings.Contains(f.Message, "no rule constrains") {
		t.Errorf("message: %s", f.Message)
	}
}

// TestMaximalSubtreeOnly: when a whole subtree is dead, only its root
// is reported, not every descendant.
func TestMaximalSubtreeOnly(t *testing.T) {
	v := fixtureVocab(t)
	rules := []policy.Rule{
		rule(t, "data=referral & purpose=treatment & authorized=nurse"),
		rule(t, "data=referral & purpose=billing & authorized=doctor"),
	}
	rep := Rules("PS", rules, v)
	// clinical (with two children) is dead: exactly one finding.
	assertCounts(t, rep, map[string]int{UnreachableSubtree: 1})
	if f := rep.Findings[0]; f.Value != "clinical" {
		t.Errorf("expected the subtree root, got %+v", f)
	}
}

func TestPolicyEntryPoint(t *testing.T) {
	v := fixtureVocab(t)
	p := policy.FromRules("store", cleanRules(t)...)
	rep := Policy(p, v)
	if !rep.Clean() || rep.Policy != "store" {
		t.Errorf("report: %+v", rep)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	v := fixtureVocab(t)
	rep := Rules("PS", append(cleanRules(t), rule(t, "consent=given")), v)

	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "PL001 rule 3:") {
		t.Errorf("text output: %s", text.String())
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Policy != rep.Policy || len(back.Findings) != len(rep.Findings) {
		t.Errorf("JSON round trip: %+v", back)
	}
	if back.Findings[0].Code != UnknownAttribute {
		t.Errorf("JSON finding: %+v", back.Findings[0])
	}
}
