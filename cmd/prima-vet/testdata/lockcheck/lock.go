// Package lockfix triggers the lockcheck analyzer.
package lockfix

import (
	"errors"
	"sync"
)

type Counter struct {
	mu sync.Mutex
	n  int
}

// Incr is correct: it writes the guarded field under the lock. Its
// write is also what marks n as guarded.
func (c *Counter) Incr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Value is correct: deferred unlock covers every return.
func (c *Counter) Value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Peek reads the guarded field without any lock.
func (c *Counter) Peek() int {
	return c.n // want lockcheck "accesses guarded field"
}

// AddPositive leaks the lock on the error path.
func (c *Counter) AddPositive(d int) error {
	c.mu.Lock()
	if d < 0 {
		return errors.New("negative delta") // want lockcheck "returns while holding the lock"
	}
	c.n += d
	c.mu.Unlock()
	return nil
}
