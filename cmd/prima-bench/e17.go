package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/netfed"
)

// e17SiteLog builds one site's synthetic log: site-prefixed users over
// the E15 behaviour vocabulary, timestamps interleaved across sites so
// the consolidated order genuinely merges streams.
func e17SiteLog(si, sites, n int) *audit.Log {
	base := time.Date(2007, 3, 1, 0, 0, 0, 0, time.UTC)
	l := audit.NewLog(fmt.Sprintf("site-%d", si))
	l.Grow(n)
	batch := make([]audit.Entry, 0, 4096)
	for i := 0; i < n; i++ {
		batch = append(batch, audit.Entry{
			Time: base.Add(time.Duration(i*sites+si) * time.Millisecond), Op: audit.Allow,
			User:       fmt.Sprintf("s%d-u%d", si, i%24),
			Data:       fmt.Sprintf("lab%d", i%12),
			Purpose:    fmt.Sprintf("task%d", (i/12)%8),
			Authorized: fmt.Sprintf("role%d", (i/96)%6),
			Status:     audit.Exception,
		})
		if len(batch) == cap(batch) {
			if err := l.Append(batch...); err != nil {
				panic(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := l.Append(batch...); err != nil {
			panic(err)
		}
	}
	return l
}

// runE17 measures the wire-federation path (beyond the paper): sites
// streaming binary deltas over loopback TCP into a consolidator,
// against the in-process merge oracle — and verifies the consolidated
// views are byte-identical.
func runE17(quick bool) error {
	const sites = 4
	perSite := 150000
	if quick {
		perSite = 25000
	}
	fmt.Printf("## E17 — wire federation (%d sites x %d entries over loopback)\n\n", sites, perSite)

	logs := make([]*audit.Log, sites)
	for si := range logs {
		logs[si] = e17SiteLog(si, sites, perSite)
	}

	// In-process oracle merge.
	start := time.Now()
	want := audit.NewFederation(logs...).Consolidate()
	mergeDur := time.Since(start)

	// Wire path: consolidator + one streamer per site.
	cons, err := netfed.NewConsolidator(netfed.ConsolidatorOptions{})
	if err != nil {
		return err
	}
	defer cons.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- cons.Serve(ln) }()
	addr := ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamers := make([]*netfed.Streamer, sites)
	var wg sync.WaitGroup
	start = time.Now()
	for si, l := range logs {
		st, err := netfed.NewStreamer(l, "", netfed.StreamerOptions{
			Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
		})
		if err != nil {
			return err
		}
		streamers[si] = st
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = st.Run(ctx)
		}()
	}
	for _, st := range streamers {
		if err := st.Drain(ctx); err != nil {
			return err
		}
	}
	wireDur := time.Since(start)
	cancel()
	wg.Wait()

	got := cons.Consolidate()
	var wantB, gotB bytes.Buffer
	if err := audit.WriteJSONL(&wantB, want.Entries); err != nil {
		return err
	}
	if err := audit.WriteJSONL(&gotB, got.Entries); err != nil {
		return err
	}
	identical := bytes.Equal(wantB.Bytes(), gotB.Bytes()) &&
		got.Duplicates == want.Duplicates && len(got.Conflicts) == len(want.Conflicts)

	total := sites * perSite
	var wireBytes uint64
	lagP99 := time.Duration(0)
	for _, st := range streamers {
		s := st.Stats()
		wireBytes += s.Bytes
		if s.LagP99 > lagP99 {
			lagP99 = s.LagP99
		}
	}
	fmt.Println("| path | throughput | note |")
	fmt.Println("|---|---|---|")
	fmt.Printf("| in-process merge | %.0f entries/s | %s total |\n",
		float64(total)/mergeDur.Seconds(), mergeDur.Round(time.Millisecond))
	fmt.Printf("| wire ingest | %.0f entries/s | %.1f B/entry, lag p99 %s |\n",
		float64(total)/wireDur.Seconds(), float64(wireBytes)/float64(total),
		lagP99.Round(10*time.Microsecond))
	fmt.Printf("\nconsolidated views byte-identical: %v (%d entries, %d duplicates, %d conflicts)\n\n",
		identical, len(got.Entries), got.Duplicates, len(got.Conflicts))
	if !identical {
		return fmt.Errorf("E17: wire consolidation diverges from in-process oracle")
	}
	if err := cons.Close(); err != nil {
		return err
	}
	if err := <-serveDone; err != nil {
		return err
	}
	return nil
}
