package lockfix

import (
	"sync"
	"sync/atomic"
)

// SnapCache publishes a derived snapshot behind its mutex while a
// version counter tells readers when the snapshot went stale — the
// plain-pointer variant of the generation-validated cache publish
// discipline. Swinging the pointer without bumping the counter leaves
// validation reads approving a snapshot built from dead state.
type SnapCache struct {
	mu      sync.Mutex
	snap    *[]string
	version uint64
}

// Publish is the correct discipline: the pointer swing and the bump
// travel under the same critical section.
func (c *SnapCache) Publish(items []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snap = &items
	c.version++
}

// PublishStale swings the pointer but forgets the bump: every reader
// validating against version keeps trusting the previous snapshot.
func (c *SnapCache) PublishStale(items []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snap = &items // want lockcheck "without bumping version"
}

// AtomicSnapCache is the lock-free-reader variant of the discipline
// (vocab's interval cache): the snapshot publishes through an atomic
// pointer and carries its own generation, compared by readers against
// the owner's counter. The mutex only serializes rebuilds. The atomic
// Store is a method call on the pointer, not a guarded field write,
// and staleness is detected by the generation embedded in the
// snapshot — so a rebuild that never touches version is correct and
// rule 4 stays quiet.
type AtomicSnapCache struct {
	mu      sync.Mutex
	cur     atomic.Pointer[[]string]
	version atomic.Uint64
}

// Rebuild publishes a fresh snapshot; no bump is required because the
// owner's counter (version) moves with the data, not with the cache.
func (c *AtomicSnapCache) Rebuild(items []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cur.Store(&items)
}

// Invalidate moves the owner generation through the atomic method;
// rule 4 accepts Add as the bump for the guarded reset.
func (c *AtomicSnapCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cur.Store(nil)
	c.version.Add(1)
}
