package mining

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// FP-growth is pinned byte-identical to Apriori: same frequent
// itemsets, same supports, same representatives, same order. Apriori
// is the reference oracle (simple enough to trust by inspection);
// everything here is differential.

func sameResult(t *testing.T, ctx string, apriori, fp *Result) {
	t.Helper()
	if !reflect.DeepEqual(apriori, fp) {
		t.Fatalf("%s: FP-growth diverges from Apriori\napriori: %+v\nfpgrowth: %+v", ctx, apriori, fp)
	}
}

func TestFPGrowthMatchesAprioriBaskets(t *testing.T) {
	for ms := 1; ms <= 6; ms++ {
		ra, err := Apriori(basketTxs(), ms)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := FPGrowth{}.Mine(basketTxs(), ms)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "baskets", ra, rf)
	}
}

func TestFPGrowthErrorsAndEmpty(t *testing.T) {
	if _, err := (FPGrowth{}).Mine(nil, 0); err == nil {
		t.Error("minSupport 0 accepted")
	}
	res, err := FPGrowth{}.Mine(nil, 1)
	if err != nil || len(res.Frequent) != 0 {
		t.Errorf("empty mining: %v %v", res, err)
	}
	// Transactions with no items are legal and contribute to the count.
	res, err = FPGrowth{}.Mine([]Transaction{NewItemset(), NewItemset()}, 1)
	if err != nil || res.Transactions != 2 || len(res.Frequent) != 0 {
		t.Errorf("empty transactions: %+v %v", res, err)
	}
}

// TestFPGrowthRepresentatives pins the first-seen display casing:
// both engines must render a frequent item with the spelling of its
// first occurrence, even when later transactions vary the case.
func TestFPGrowthRepresentatives(t *testing.T) {
	txs := []Transaction{
		NewItemset(item("Data", "Referral")),
		NewItemset(item("data", "referral")),
		NewItemset(item("DATA", "REFERRAL")),
	}
	ra, err := Apriori(txs, 2)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := FPGrowth{}.Mine(txs, 2)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "mixed case", ra, rf)
	if len(rf.Frequent) != 1 || rf.Frequent[0].Items[0].Attr != "Data" {
		t.Errorf("representative not first-seen: %+v", rf.Frequent)
	}
}

// TestFPGrowthWorkers pins determinism across pool sizes: the rank
// partition changes with the worker count, the output must not.
func TestFPGrowthWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	txs := randomTxs(rng, 60, 6, 4)
	want, err := FPGrowth{Workers: 1}.Mine(txs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		got, err := FPGrowth{Workers: w}.Mine(txs, 2)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "workers", want, got)
	}
}

// randomTxs draws transactions over nAttrs attributes with nVals
// values each, dropping attributes at random so widths vary.
func randomTxs(rng *rand.Rand, n, nAttrs, nVals int) []Transaction {
	txs := make([]Transaction, 0, n)
	for i := 0; i < n; i++ {
		var items []Item
		for a := 0; a < nAttrs; a++ {
			if rng.Intn(3) == 0 {
				continue
			}
			items = append(items, Item{Attr: string(rune('a' + a)), Value: string(rune('0' + rng.Intn(nVals)))})
		}
		txs = append(txs, NewItemset(items...))
	}
	return txs
}

// Property: FP-growth equals Apriori on random transaction sets at
// every support level.
func TestFPGrowthVsAprioriProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		txs := randomTxs(rng, 40, 5, 3)
		for ms := 1; ms <= 5; ms++ {
			ra, err := Apriori(txs, ms)
			if err != nil {
				return false
			}
			rf, err := FPGrowth{}.Mine(txs, ms)
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(ra, rf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// FuzzFPGrowthVsApriori feeds arbitrary byte-shaped baskets to both
// engines. Transactions are newline-separated; each byte is one item
// (the raw byte as the value, so case-folding representatives are
// exercised too).
func FuzzFPGrowthVsApriori(f *testing.F) {
	f.Add([]byte("abc\nbcd\nacd\nabd"), 2)
	f.Add([]byte("AB\nab\naB"), 1)
	f.Add([]byte("\n\nx"), 3)
	f.Add([]byte("milk bread\nbread beer"), 1)
	f.Fuzz(func(t *testing.T, data []byte, minSupport int) {
		if minSupport < 1 || minSupport > 8 {
			return
		}
		if len(data) > 256 {
			data = data[:256]
		}
		var txs []Transaction
		var items []Item
		for _, c := range data {
			if c == '\n' {
				txs = append(txs, NewItemset(items...))
				items = items[:0]
				continue
			}
			items = append(items, Item{Attr: "i", Value: string(rune(c))})
		}
		txs = append(txs, NewItemset(items...))
		ra, errA := Apriori(txs, minSupport)
		rf, errF := FPGrowth{}.Mine(txs, minSupport)
		if (errA == nil) != (errF == nil) {
			t.Fatalf("error divergence: apriori %v, fpgrowth %v", errA, errF)
		}
		if errA == nil && !reflect.DeepEqual(ra, rf) {
			t.Fatalf("result divergence on %q ms=%d\napriori: %+v\nfpgrowth: %+v", data, minSupport, ra, rf)
		}
	})
}
