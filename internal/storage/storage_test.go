package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func tmpStore(t *testing.T, o Options) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.db")
	s, err := OpenStore(path, o)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d-%s", i, bytes.Repeat([]byte{'x'}, i%64))) }

func TestPageBuildSearch(t *testing.T) {
	p := page(make([]byte, PageSize))
	var items []item
	for i := 0; i < 40; i++ {
		items = append(items, item{key: key(i * 2), val: val(i)})
	}
	if !p.build(kindLeaf, items) {
		t.Fatal("build failed")
	}
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	if p.prefixLen() == 0 {
		t.Fatal("expected shared prefix truncation to engage")
	}
	for i := 0; i < 40; i++ {
		idx, found := p.search(key(i * 2))
		if !found || idx != i {
			t.Fatalf("search(%s) = %d,%v", key(i*2), idx, found)
		}
		_, v := p.leafCell(idx)
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("value mismatch at %d", i)
		}
	}
	if _, found := p.search(key(1)); found {
		t.Fatal("found absent key")
	}
}

func TestPageInsertFastAndDelete(t *testing.T) {
	p := page(make([]byte, PageSize))
	if !p.build(kindLeaf, []item{{key: key(0), val: val(0)}, {key: key(4), val: val(4)}}) {
		t.Fatal("build")
	}
	idx, found := p.search(key(2))
	if found {
		t.Fatal("phantom")
	}
	if !p.insertFast(idx, item{key: key(2), val: val(2)}) {
		t.Fatal("insertFast should fit")
	}
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	if p.ncells() != 3 {
		t.Fatalf("ncells = %d", p.ncells())
	}
	p.deleteSlot(1)
	if p.ncells() != 2 {
		t.Fatalf("ncells after delete = %d", p.ncells())
	}
	if _, found := p.search(key(2)); found {
		t.Fatal("deleted key still found")
	}
}

func TestMetaRoundTripAndCorruption(t *testing.T) {
	m := &Meta{Version: 7, Pages: 42, Root: 3, FreeHead: 9, App: []byte("app-blob")}
	b := encodeMeta(m)
	got, ok := decodeMeta(b)
	if !ok {
		t.Fatal("decode failed")
	}
	if got.Version != 7 || got.Pages != 42 || got.Root != 3 || got.FreeHead != 9 || string(got.App) != "app-blob" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	b[40] ^= 0xff
	if _, ok := decodeMeta(b); ok {
		t.Fatal("corrupted meta decoded")
	}
}

func TestTreeInsertGetScan(t *testing.T) {
	s, _ := tmpStore(t, Options{})
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if err := s.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if err := s.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := s.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) = %q,%v,%v", i, v, ok, err)
		}
	}
	if _, ok, _ := s.Get([]byte("zzz")); ok {
		t.Fatal("phantom key")
	}
	var seen int
	var last []byte
	err := s.Scan(nil, nil, func(k, v []byte) bool {
		if last != nil && bytes.Compare(last, k) >= 0 {
			t.Fatalf("scan out of order: %q then %q", last, k)
		}
		last = append(last[:0], k...)
		seen++
		return true
	})
	if err != nil || seen != n {
		t.Fatalf("full scan: seen=%d err=%v", seen, err)
	}
	// Bounded range.
	seen = 0
	_ = s.Scan(key(100), key(200), func(k, v []byte) bool { seen++; return true })
	if seen != 100 {
		t.Fatalf("range scan [100,200) saw %d", seen)
	}
	// Early stop.
	seen = 0
	_ = s.Scan(nil, nil, func(k, v []byte) bool { seen++; return seen < 10 })
	if seen != 10 {
		t.Fatalf("early stop saw %d", seen)
	}
}

func TestTreeReplaceAndDelete(t *testing.T) {
	s, _ := tmpStore(t, Options{})
	const n = 2000
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Replace every other value.
	for i := 0; i < n; i += 2 {
		if err := s.Put(key(i), []byte("replaced")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		v, ok, _ := s.Get(key(i))
		if !ok || string(v) != "replaced" {
			t.Fatalf("replace lost at %d: %q %v", i, v, ok)
		}
	}
	// Delete odd keys.
	for i := 1; i < n; i += 2 {
		ok, err := s.Delete(key(i))
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v,%v", i, ok, err)
		}
	}
	if ok, _ := s.Delete(key(1)); ok {
		t.Fatal("double delete reported present")
	}
	for i := 1; i < n; i += 2 {
		if _, ok, _ := s.Get(key(i)); ok {
			t.Fatalf("deleted key %d still present", i)
		}
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	// Delete everything: tree must collapse to empty.
	for i := 0; i < n; i += 2 {
		if ok, err := s.Delete(key(i)); err != nil || !ok {
			t.Fatalf("Delete(%d): %v %v", i, ok, err)
		}
	}
	if s.root.Load() != 0 {
		t.Fatalf("root %d after emptying", s.root.Load())
	}
}

func TestTreeLargeValuesAndLimits(t *testing.T) {
	s, _ := tmpStore(t, Options{})
	big := bytes.Repeat([]byte{'v'}, MaxValueLen)
	for i := 0; i < 20; i++ {
		if err := s.Put(key(i), big); err != nil {
			t.Fatalf("big value %d: %v", i, err)
		}
	}
	v, ok, _ := s.Get(key(7))
	if !ok || !bytes.Equal(v, big) {
		t.Fatal("big value lost")
	}
	if err := s.Put(key(0), bytes.Repeat([]byte{'v'}, MaxValueLen+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
	if err := s.Put(bytes.Repeat([]byte{'k'}, MaxKeyLen+1), nil); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := s.Put(nil, nil); err == nil {
		t.Fatal("empty key accepted")
	}
	// Long keys with long shared prefixes exercise prefix truncation
	// across splits.
	pre := bytes.Repeat([]byte{'p'}, 400)
	for i := 0; i < 500; i++ {
		k := append(append([]byte(nil), pre...), []byte(fmt.Sprintf("%06d", i))...)
		if err := s.Put(k, val(i)); err != nil {
			t.Fatalf("long key %d: %v", i, err)
		}
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointAndReopen(t *testing.T) {
	s, path := tmpStore(t, Options{})
	const n = 3000
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint([]byte("app-state-1")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if string(s2.App()) != "app-state-1" {
		t.Fatalf("app blob = %q", s2.App())
	}
	for i := 0; i < n; i++ {
		v, ok, err := s2.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("after reopen Get(%d) = %q,%v,%v", i, v, ok, err)
		}
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestUncheckpointedWorkDiscarded: changes after the last checkpoint
// must vanish on reopen (they belong to the WAL layer above).
func TestUncheckpointedWorkDiscarded(t *testing.T) {
	s, path := tmpStore(t, Options{})
	for i := 0; i < 100; i++ {
		_ = s.Put(key(i), val(i))
	}
	if err := s.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 200; i++ {
		_ = s.Put(key(i), val(i))
	}
	// Force dirty pages out through eviction pressure, then abandon.
	_ = s.pool.flush()
	s.Close()
	s2, err := OpenStore(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 100; i++ {
		if _, ok, _ := s2.Get(key(i)); !ok {
			t.Fatalf("checkpointed key %d lost", i)
		}
	}
	for i := 100; i < 200; i++ {
		if _, ok, _ := s2.Get(key(i)); ok {
			t.Fatalf("uncheckpointed key %d survived", i)
		}
	}
}

// TestFreelistReuse: pages freed by copy-on-write must be recycled
// after a checkpoint instead of growing the file forever.
func TestFreelistReuse(t *testing.T) {
	s, path := tmpStore(t, Options{})
	for i := 0; i < 2000; i++ {
		_ = s.Put(key(i), val(i))
	}
	if err := s.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	grow := func() uint32 { return s.Pages() }
	base := grow()
	// Rewrite the same keys across several checkpoint epochs: the file
	// should stabilize, not grow linearly.
	for epoch := 0; epoch < 10; epoch++ {
		for i := 0; i < 2000; i++ {
			if err := s.Put(key(i), []byte(fmt.Sprintf("epoch-%d-%d", epoch, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Checkpoint(nil); err != nil {
			t.Fatal(err)
		}
	}
	if g := grow(); g > base*3 {
		t.Fatalf("file grew from %d to %d pages despite freelist", base, g)
	}
	s.Close()
	s2, err := OpenStore(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := s2.Get(key(1999))
	if !ok || string(v) != "epoch-9-1999" {
		t.Fatalf("final epoch lost: %q %v", v, ok)
	}
}

func TestClear(t *testing.T) {
	s, _ := tmpStore(t, Options{})
	for i := 0; i < 1000; i++ {
		_ = s.Put(key(i), val(i))
	}
	if err := s.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	pages := s.Pages()
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(key(0)); ok {
		t.Fatal("key survived Clear")
	}
	for i := 0; i < 1000; i++ {
		_ = s.Put(key(i), val(i))
	}
	if err := s.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	// One more rebuild must reuse the cleared pages.
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = s.Put(key(i), val(i))
	}
	if err := s.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	if g := s.Pages(); g > pages*3 {
		t.Fatalf("Clear leaked pages: %d -> %d", pages, g)
	}
}

// TestBufferPoolEviction runs a working set much larger than the pool
// so every path (miss, eviction, dirty writeback) is exercised.
func TestBufferPoolEviction(t *testing.T) {
	s, _ := tmpStore(t, Options{PoolPages: poolStripes * 2}) // minimum pool
	const n = 3000
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := s.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) under eviction pressure: %v %v", i, ok, err)
		}
	}
	st := s.PoolStats()
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("expected evictions and writebacks, got %+v", st)
	}
	if st.HitRate() <= 0 || st.HitRate() > 1 {
		t.Fatalf("hit rate %v out of range", st.HitRate())
	}
}

// TestTornMetaFallsBack simulates a crash inside the meta write of a
// checkpoint: the previous checkpoint must come back intact.
func TestTornMetaFallsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.db")
	s, err := OpenStore(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		_ = s.Put(key(i), val(i))
	}
	if err := s.Checkpoint([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt the slot the NEXT checkpoint would have written, as if
	// the meta write tore mid-page.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	slot := ((1 + 1) % 2) * metaSlotSize // version 2 -> slot 0
	for i := 0; i < 64; i++ {
		raw[slot+i] = 0xde
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path, Options{})
	if err != nil {
		t.Fatalf("reopen with torn meta slot: %v", err)
	}
	defer s2.Close()
	if string(s2.App()) != "v1" {
		t.Fatalf("app = %q, want v1", s2.App())
	}
	for i := 0; i < 500; i++ {
		if _, ok, _ := s2.Get(key(i)); !ok {
			t.Fatalf("key %d lost after torn meta", i)
		}
	}
}

// TestCrashDuringCheckpointDifferential is the randomized torn-write
// harness: kill the file at a random write offset during a checkpoint,
// reopen, and require exactly the previous durable state.
func TestCrashDuringCheckpointDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		func() {
			dir := t.TempDir()
			path := filepath.Join(dir, "data.db")
			s, err := OpenStore(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 300; i++ {
				_ = s.Put(key(i), val(i))
			}
			if err := s.Checkpoint([]byte("durable")); err != nil {
				t.Fatal(err)
			}
			s.Close()

			// Reopen behind a failpoint, mutate, and crash somewhere
			// inside the second checkpoint's write stream.
			budget := int64(rng.Intn(64 * 1024))
			var ff *FailFile
			s, err = OpenStore(path, Options{OpenFile: func(p string) (File, error) {
				inner, err := OpenOSFile(p)
				if err != nil {
					return nil, err
				}
				ff = NewFailFile(inner, budget)
				return ff, nil
			}})
			if err != nil {
				// The failpoint can trigger during open bookkeeping;
				// that is still a valid crash point.
				s = nil
			}
			if s != nil {
				for i := 200; i < 600; i++ {
					if err := s.Put(key(i), []byte("mutated")); err != nil {
						break // crashed mid-write: fine
					}
				}
				_ = s.Checkpoint([]byte("would-be-next"))
				s.Close()
			}

			s2, err := OpenStore(path, Options{})
			if err != nil {
				t.Fatalf("trial %d (budget %d): reopen failed: %v", trial, budget, err)
			}
			defer s2.Close()
			if err := s2.Check(); err != nil {
				t.Fatalf("trial %d: structural damage: %v", trial, err)
			}
			app := string(s2.App())
			switch app {
			case "durable":
				for i := 0; i < 300; i++ {
					v, ok, _ := s2.Get(key(i))
					if !ok || !bytes.Equal(v, val(i)) {
						t.Fatalf("trial %d: durable state damaged at key %d", trial, i)
					}
				}
				for i := 300; i < 600; i++ {
					if _, ok, _ := s2.Get(key(i)); ok {
						t.Fatalf("trial %d: uncommitted key %d leaked into durable state", trial, i)
					}
				}
			case "would-be-next":
				// Checkpoint completed before the budget ran out.
				for i := 200; i < 600; i++ {
					v, ok, _ := s2.Get(key(i))
					if !ok || string(v) != "mutated" {
						t.Fatalf("trial %d: committed state damaged at key %d", trial, i)
					}
				}
			default:
				t.Fatalf("trial %d: impossible app blob %q", trial, app)
			}
		}()
	}
}

// TestCheckpointFreelistChainBoundary pins the chain-sizing math at
// the awkward totals just past a multiple of idsPerFreelistPage,
// where an off-by-len(chain) in the capacity formula under-provisions
// the chain and writeFreelist would silently drop — permanently leak
// — the overflow. Every queued id must survive the round-trip.
func TestCheckpointFreelistChainBoundary(t *testing.T) {
	per := idsPerFreelistPage
	for _, total := range []int{1, per - 1, per, per + 1, per + 2, 2*per + 1} {
		s, path := tmpStore(t, Options{NoSync: true})
		// Fabricate a mass free: grow the file and queue every new page
		// for post-checkpoint reuse, exactly what a bulk delete leaves.
		fabricated := make(map[uint32]bool, total)
		s.mu.Lock()
		for i := 0; i < total; i++ {
			id := s.pager.grow()
			fabricated[id] = true
			s.pendingFree = append(s.pendingFree, id)
		}
		s.mu.Unlock()
		if err := s.Checkpoint(nil); err != nil {
			t.Fatalf("total=%d: checkpoint: %v", total, err)
		}
		s.Close()
		s2, err := OpenStore(path, Options{NoSync: true})
		if err != nil {
			t.Fatalf("total=%d: reopen: %v", total, err)
		}
		// Everything fabricated must come back as a free id (or as a
		// chain page of the durable meta, itself free under the next
		// checkpoint); anything missing left the allocator for good.
		seen := 0
		s2.mu.Lock()
		for _, id := range s2.free {
			if fabricated[id] {
				seen++
			}
		}
		for _, id := range s2.chain {
			if fabricated[id] {
				seen++
			}
		}
		s2.mu.Unlock()
		s2.Close()
		if seen != total {
			t.Fatalf("total=%d: only %d of %d freed pages survived the checkpoint (leak)", total, seen, total)
		}
	}
}
