package policy

import (
	"sync"

	"repro/internal/vocab"
)

// SymCache memoizes symbolic range compilations the way RangeCache
// memoizes ground expansions: keyed on policy and vocabulary identity,
// validated against their mutation counters. Compilation is cheap
// (linear in the rule count), but the eager union-cardinality sweep is
// not free, and the coverage fast path and lint both probe the same
// slowly-changing store.
//
// A cached *SymRange is immutable after construction and safe for any
// number of concurrent readers.
type SymCache struct {
	mu      sync.Mutex
	entries map[symCacheKey]symCacheEntry
}

type symCacheKey struct {
	p *Policy
	v *vocab.Vocabulary
}

type symCacheEntry struct {
	pver uint64
	vgen uint64
	rg   *SymRange
}

// NewSymCache returns an empty cache.
func NewSymCache() *SymCache {
	return &SymCache{entries: make(map[symCacheKey]symCacheEntry)}
}

// SharedSym is the process-wide symbolic range cache used by the
// coverage algorithms and the lint pass.
var SharedSym = NewSymCache()

// Range returns the symbolic range of p under v, recompiling only when
// the policy's version or the vocabulary's generation has moved since
// the last call. Unlike RangeCache.Range it cannot fail: no ground
// rule is ever materialized.
func (c *SymCache) Range(p *Policy, v *vocab.Vocabulary) *SymRange {
	key := symCacheKey{p: p, v: v}
	pver := p.Version()
	vgen := v.Generation()

	c.mu.Lock()
	if e, ok := c.entries[key]; ok && e.pver == pver && e.vgen == vgen {
		c.mu.Unlock()
		return e.rg
	}
	c.mu.Unlock()

	// Compile outside the cache lock; compilation takes the vocabulary
	// read lock (interval rebuilds) and must not stall other lookups.
	rg := NewSymRange(p, v)

	// Re-read the input versions BEFORE re-taking the cache lock: the
	// pinned acquisition order (lockorder.txt) puts Policy and
	// Vocabulary ahead of SymCache.
	pver2 := p.Version()
	vgen2 := v.Generation()

	c.mu.Lock()
	if len(c.entries) >= rangeCacheMax {
		c.entries = make(map[symCacheKey]symCacheEntry)
	}
	if pver2 == pver && vgen2 == vgen {
		c.entries[key] = symCacheEntry{pver: pver, vgen: vgen, rg: rg}
	}
	c.mu.Unlock()
	return rg
}

// Invalidate drops any cached symbolic range for the given policy.
func (c *SymCache) Invalidate(p *Policy) {
	c.mu.Lock()
	for k := range c.entries {
		if k.p == p {
			delete(c.entries, k)
		}
	}
	c.mu.Unlock()
}

// Len reports how many symbolic ranges are currently cached.
func (c *SymCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
