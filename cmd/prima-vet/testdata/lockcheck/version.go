package lockfix

import (
	"sync"
	"sync/atomic"
)

// Store pairs its mutex with a version counter, opting into the
// version-bump discipline (lockcheck rule 4): caches validate derived
// artifacts against the counter, so a mutation that skips the bump
// serves stale data silently.
type Store struct {
	mu      sync.RWMutex
	items   []string
	index   map[string]int
	version uint64
}

// Put is correct: it mutates guarded fields and bumps the counter.
func (s *Store) Put(item string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index[item] = len(s.items)
	s.items = append(s.items, item)
	s.version++
}

// Drop forgets the bump: a cache keyed on version would keep serving
// the dropped item.
func (s *Store) Drop(item string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[item]
	if !ok {
		return
	}
	s.items[i] = "" // want lockcheck "without bumping version"
	delete(s.index, item)
}

// Replace delegates the mutation to a helper on the same receiver;
// the helper carries the bump, so neither method is flagged.
func (s *Store) Replace(items []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reset()
	for _, it := range items {
		s.index[it] = len(s.items)
		s.items = append(s.items, it)
	}
}

func (s *Store) reset() {
	s.items = s.items[:0]
	s.index = map[string]int{}
	s.version++
}

// Version reads the counter under the lock; reads need no bump.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// CounterStore pairs its mutex with an atomic version counter — the
// lock-free-read variant of the discipline: mutations happen under
// the lock, but the counter itself bumps through sync/atomic so
// validity probes need no lock.
type CounterStore struct {
	mu      sync.RWMutex
	items   []string
	version atomic.Uint64
}

// Put bumps through the atomic method; rule 4 accepts Add/Store as a
// version write.
func (s *CounterStore) Put(item string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = append(s.items, item)
	s.version.Add(1)
}

// Clear forgets the bump: caches keyed on the counter would serve the
// cleared items forever.
func (s *CounterStore) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = s.items[:0] // want lockcheck "without bumping version"
}

// Peek only loads the counter; a read-only atomic call is not a bump,
// so the guarded write is still flagged.
func (s *CounterStore) Peek(item string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = append(s.items, item) // want lockcheck "without bumping version"
	return s.version.Load()
}
