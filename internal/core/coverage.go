// Package core implements the primary contribution of PRIMA (Bhatti &
// Grandison, 2007): policy coverage (Section 3.2, Algorithm 1) and
// policy refinement (Section 4.3, Algorithms 2–6), together with the
// refinement session machinery that closes the feedback loop between
// the real workflow (audit logs) and the ideal workflow (policy
// store).
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// symbolicCoverage selects the evaluation strategy for ComputeCoverage,
// EntryCoverage, and Prune. The symbolic path (default) computes
// cardinalities over the vocabulary's interval numbering without ever
// materializing a ground Range — mandatory at SNOMED/ICD scale, where
// #Range is combinatorial. The materializing path is retained as the
// differential oracle; the two agree exactly wherever the oracle can
// run at all.
var symbolicCoverage atomic.Bool

func init() { symbolicCoverage.Store(true) }

// SetSymbolicCoverage selects the symbolic (true, default) or
// materializing (false) evaluation path, returning the previous
// setting. The materializing path exists for differential testing and
// for callers that need the ground rules themselves (Coverage reports).
func SetSymbolicCoverage(on bool) bool { return symbolicCoverage.Swap(on) }

// SymbolicCoverage reports which evaluation path is active.
func SymbolicCoverage() bool { return symbolicCoverage.Load() }

// ComputeCoverage is Algorithm 1: the coverage of Px in relation to
// Py is #(Range_Px ∩ Range_Py) / #Range_Py (Definition 9). Coverage
// of anything against an empty policy is defined as 1 (there is
// nothing to cover). On the symbolic path both cardinalities are
// computed from the interval algebra (policy.SymRange) without
// materializing a single ground rule; otherwise ranges come from the
// shared policy.RangeCache and the intersection is counted by
// membership against the smaller range.
func ComputeCoverage(px, py *policy.Policy, v *vocab.Vocabulary) (float64, error) {
	if symbolicCoverage.Load() {
		sx := policy.SharedSym.Range(px, v) // getRange(Px, V), symbolically
		sy := policy.SharedSym.Range(py, v)
		my := sy.Card()
		if my == 0 {
			return 1, nil
		}
		return float64(sx.IntersectCard(sy)) / float64(my), nil
	}
	rx, err := policy.Shared.Range(px, v, 0) // getRange(Px, V)
	if err != nil {
		return 0, fmt.Errorf("core: range of %s: %w", px.Name, err)
	}
	ry, err := policy.Shared.Range(py, v, 0) // getRange(Py, V)
	if err != nil {
		return 0, fmt.Errorf("core: range of %s: %w", py.Name, err)
	}
	my := ry.Len()
	if my == 0 {
		return 1, nil
	}
	return float64(rx.IntersectCount(ry)) / float64(my), nil
}

// CompleteCoverage is Definition 10: Px completely covers Py iff
// Range_Px ∩ Range_Py = Range_Py.
func CompleteCoverage(px, py *policy.Policy, v *vocab.Vocabulary) (bool, error) {
	c, err := ComputeCoverage(px, py, v)
	if err != nil {
		return false, err
	}
	return c == 1, nil
}

// NearMiss explains why a policy rule almost covers an uncovered
// ground rule: every attribute matches except one. This reproduces
// the paper's §3.3 narratives ("the policy allows the use of such
// data only for treatment purpose").
type NearMiss struct {
	PolicyRule policy.Rule // the composite rule in Px that nearly applies
	Attr       string      // the attribute that fails
	Allowed    string      // the value the policy rule allows for Attr
	Actual     string      // the value the uncovered rule carries
}

// String renders the near miss as an explanation sentence.
func (n NearMiss) String() string {
	return fmt.Sprintf("policy allows %s=%s where the access used %s=%s (rule %s)",
		n.Attr, n.Allowed, n.Attr, n.Actual, n.PolicyRule)
}

// Gap is one uncovered ground rule of Py with its explanations.
type Gap struct {
	Rule       policy.Rule
	NearMisses []NearMiss
}

// Report is the detailed outcome of a coverage computation.
type Report struct {
	Coverage float64
	RangeX   int           // #Range_Px
	RangeY   int           // #Range_Py
	Overlap  int           // #(Range_Px ∩ Range_Py)
	Matched  []policy.Rule // the intersection, in Range_Py order
	Gaps     []Gap         // uncovered rules of Py with explanations
}

// Coverage computes the coverage of px in relation to py and explains
// every gap.
func Coverage(px, py *policy.Policy, v *vocab.Vocabulary) (*Report, error) {
	rx, err := policy.Shared.Range(px, v, 0)
	if err != nil {
		return nil, fmt.Errorf("core: range of %s: %w", px.Name, err)
	}
	ry, err := policy.Shared.Range(py, v, 0)
	if err != nil {
		return nil, fmt.Errorf("core: range of %s: %w", py.Name, err)
	}
	rep := &Report{RangeX: rx.Len(), RangeY: ry.Len()}
	for _, g := range ry.Rules() {
		if rx.Contains(g) {
			rep.Matched = append(rep.Matched, g)
			continue
		}
		rep.Gaps = append(rep.Gaps, Gap{Rule: g, NearMisses: nearMisses(px, g, v)})
	}
	rep.Overlap = len(rep.Matched)
	if rep.RangeY == 0 {
		rep.Coverage = 1
	} else {
		rep.Coverage = float64(rep.Overlap) / float64(rep.RangeY)
	}
	return rep, nil
}

// nearMisses finds the policy rules of px that cover g on all but one
// attribute.
func nearMisses(px *policy.Policy, g policy.Rule, v *vocab.Vocabulary) []NearMiss {
	var out []NearMiss
	for _, r := range px.Rules() {
		if r.Len() != g.Len() {
			continue
		}
		var failing []string
		ok := true
		for _, t := range r.Terms() {
			gv, present := g.Value(t.Attr)
			if !present {
				ok = false
				break
			}
			if !v.Subsumes(t.Attr, t.Value, gv) {
				failing = append(failing, t.Attr)
			}
		}
		if ok && len(failing) == 1 {
			attr := failing[0]
			allowed, _ := r.Value(attr)
			actual, _ := g.Value(attr)
			out = append(out, NearMiss{PolicyRule: r, Attr: attr, Allowed: allowed, Actual: actual})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PolicyRule.Key() < out[j].PolicyRule.Key() })
	return out
}

// EntryReport is the outcome of row-level coverage over an audit
// snapshot. The paper's §5 walk-through counts each audit row ("the
// ratio of matching rules to total rules ... is now 3/10"), i.e.
// occurrence (multiset) semantics rather than Definition 8's set
// semantics; both are provided and they agree when the snapshot has
// no repeated rows (as in Figure 3).
type EntryReport struct {
	Coverage  float64
	Total     int
	Covered   int
	Uncovered []audit.Entry // rows not covered by the policy store
}

// entryChunkMin is the smallest per-worker chunk worth a goroutine in
// EntryCoverage; below it the fan-out overhead beats the win.
const entryChunkMin = 1024

// EntryCoverage computes row-level coverage of the policy store over
// an audit snapshot. On the symbolic path each row is an interval
// probe into the store's symbolic range (no key allocation, no ground
// range); on the materializing path rows are tested by canonical key
// against the cached range. Large snapshots are chunked across
// GOMAXPROCS workers and the per-chunk results merged in chunk order,
// so Uncovered keeps the snapshot's row order regardless of
// parallelism.
func EntryCoverage(ps *policy.Policy, entries []audit.Entry, v *vocab.Vocabulary) (*EntryReport, error) {
	var covers func(e *audit.Entry) bool
	if symbolicCoverage.Load() {
		srg := policy.SharedSym.Range(ps, v)
		covers = func(e *audit.Entry) bool {
			return srg.ContainsTriple(v, e.Data, e.Purpose, e.Authorized)
		}
	} else {
		rg, err := policy.Shared.Range(ps, v, 0)
		if err != nil {
			return nil, fmt.Errorf("core: range of %s: %w", ps.Name, err)
		}
		covers = func(e *audit.Entry) bool { return rg.ContainsKey(e.RuleKey()) }
	}
	rep := &EntryReport{Total: len(entries)}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(entries)/entryChunkMin {
		workers = len(entries) / entryChunkMin
	}
	if workers <= 1 {
		entryCoverChunk(covers, entries, &rep.Covered, &rep.Uncovered)
	} else {
		covered := make([]int, workers)
		uncovered := make([][]audit.Entry, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * len(entries) / workers
			hi := (w + 1) * len(entries) / workers
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				entryCoverChunk(covers, entries[lo:hi], &covered[w], &uncovered[w])
			}(w, lo, hi)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			rep.Covered += covered[w]
			rep.Uncovered = append(rep.Uncovered, uncovered[w]...)
		}
	}
	if rep.Total == 0 {
		rep.Coverage = 1
	} else {
		rep.Coverage = float64(rep.Covered) / float64(rep.Total)
	}
	return rep, nil
}

// entryCoverChunk counts the covered entries of one chunk, collecting
// the uncovered rows in order.
func entryCoverChunk(covers func(*audit.Entry) bool, entries []audit.Entry, covered *int, uncovered *[]audit.Entry) {
	for i := range entries {
		if covers(&entries[i]) {
			*covered++
		} else {
			*uncovered = append(*uncovered, entries[i])
		}
	}
}
