package vocab

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func sample(t *testing.T) *Vocabulary {
	t.Helper()
	return Sample()
}

func TestNorm(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Referral", "referral"},
		{"  Nurse ", "nurse"},
		{"", ""},
		{"LAB_RESULT", "lab_result"},
	}
	for _, c := range cases {
		if got := Norm(c.in); got != c.want {
			t.Errorf("Norm(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAddAndLookup(t *testing.T) {
	v := New()
	h, err := v.AddAttribute("data")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Add("", "demographic"); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("demographic", "address"); err != nil {
		t.Fatal(err)
	}
	if !h.Contains("Address") {
		t.Error("case-insensitive lookup failed")
	}
	if h.Node("address").Parent().Value() != "demographic" {
		t.Error("wrong parent")
	}
	if got := v.Hierarchy("DATA"); got != h {
		t.Error("attribute lookup not case-insensitive")
	}
}

func TestAddErrors(t *testing.T) {
	v := New()
	if _, err := v.AddAttribute(""); err == nil {
		t.Error("empty attribute accepted")
	}
	h, _ := v.AddAttribute("data")
	if _, err := v.AddAttribute("Data"); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if err := h.Add("", ""); err == nil {
		t.Error("empty value accepted")
	}
	if err := h.Add("nosuch", "x"); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := h.Add("", "a"); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("", "A"); err == nil {
		t.Error("duplicate value accepted")
	}
}

func TestIsGround(t *testing.T) {
	v := sample(t)
	cases := []struct {
		attr, value string
		want        bool
	}{
		{"data", "gender", true},       // paper: RT3 is ground
		{"data", "demographic", false}, // paper: RT1 is composite
		{"data", "address", true},
		{"data", "phi", false},
		{"data", "unknown-thing", true}, // unknown values are atomic
		{"nosuchattr", "x", true},
		{"purpose", "treatment", true},
		{"purpose", "healthcare", false},
	}
	for _, c := range cases {
		if got := v.IsGround(c.attr, c.value); got != c.want {
			t.Errorf("IsGround(%s,%s) = %v, want %v", c.attr, c.value, got, c.want)
		}
	}
}

func TestGroundSetDemographicHasFourElements(t *testing.T) {
	// §3.1: "the set RT'_1 for RT_1 is shown to comprise of four
	// ground RuleTerms".
	v := sample(t)
	got := v.GroundSet("data", "demographic")
	if len(got) != 4 {
		t.Fatalf("GroundSet(data, demographic) = %v, want 4 elements", got)
	}
	want := []string{"address", "birthdate", "gender", "phone"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroundSet = %v, want %v", got, want)
	}
}

func TestGroundSet(t *testing.T) {
	v := sample(t)
	if got := v.GroundSet("data", "gender"); !reflect.DeepEqual(got, []string{"gender"}) {
		t.Errorf("ground value's ground set = %v", got)
	}
	if got := v.GroundSet("data", "mystery"); !reflect.DeepEqual(got, []string{"mystery"}) {
		t.Errorf("unknown value's ground set = %v", got)
	}
	clinical := v.GroundSet("data", "clinical")
	want := []string{"counseling", "lab_result", "prescription", "psychiatry", "referral"}
	if !reflect.DeepEqual(clinical, want) {
		t.Errorf("GroundSet(clinical) = %v, want %v", clinical, want)
	}
	general := v.GroundSet("data", "general")
	wantGeneral := []string{"lab_result", "prescription", "referral"}
	if !reflect.DeepEqual(general, wantGeneral) {
		t.Errorf("GroundSet(general) = %v, want %v", general, wantGeneral)
	}
	phi := v.GroundSet("data", "phi")
	if len(phi) != 11 {
		t.Errorf("GroundSet(phi) has %d elements, want 11: %v", len(phi), phi)
	}
}

func TestSubsumes(t *testing.T) {
	v := sample(t)
	cases := []struct {
		a, b string
		want bool
	}{
		{"demographic", "address", true},
		{"demographic", "gender", true},
		{"phi", "address", true},
		{"address", "demographic", false},
		{"demographic", "referral", false},
		{"gender", "gender", true},
		{"unknown", "unknown", true},
		{"unknown", "gender", false},
	}
	for _, c := range cases {
		if got := v.Subsumes("data", c.a, c.b); got != c.want {
			t.Errorf("Subsumes(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEquivalentDefinition4(t *testing.T) {
	// §3.1: both RT2 (address) and RT3 (gender) are equivalent to RT1
	// (demographic).
	v := sample(t)
	if !v.Equivalent("data", "address", "demographic") {
		t.Error("address ≉ demographic")
	}
	if !v.Equivalent("data", "demographic", "gender") {
		t.Error("demographic ≉ gender")
	}
	if v.Equivalent("data", "address", "gender") {
		t.Error("address ≈ gender (two distinct ground values)")
	}
	if !v.Equivalent("data", "clinical", "phi") {
		t.Error("clinical ≉ phi (overlapping composites)")
	}
	if v.Equivalent("data", "demographic", "clinical") {
		t.Error("demographic ≈ clinical (disjoint composites)")
	}
	// Unknown attribute: plain string equality.
	if !v.Equivalent("zzz", "A", "a") {
		t.Error("unknown attr should compare normalized values")
	}
}

func TestAncestorsDepthLeaves(t *testing.T) {
	v := sample(t)
	h := v.Hierarchy("data")
	anc := h.Ancestors("address")
	if !reflect.DeepEqual(anc, []string{"demographic", "phi"}) {
		t.Errorf("Ancestors(address) = %v", anc)
	}
	if d := h.Depth("address"); d != 3 {
		t.Errorf("Depth(address) = %d, want 3", d)
	}
	if d := h.Depth("phi"); d != 1 {
		t.Errorf("Depth(phi) = %d, want 1", d)
	}
	if d := h.Depth("nosuch"); d != 0 {
		t.Errorf("Depth(nosuch) = %d, want 0", d)
	}
	leaves := h.Leaves()
	if len(leaves) != 11 {
		t.Errorf("Leaves() = %v, want 11 entries", leaves)
	}
	if !sort.StringsAreSorted(leaves) {
		t.Error("leaves not sorted")
	}
}

func TestAttributesOrder(t *testing.T) {
	v := sample(t)
	want := []string{"data", "purpose", "authorized"}
	if got := v.Attributes(); !reflect.DeepEqual(got, want) {
		t.Errorf("Attributes() = %v, want %v", got, want)
	}
}

func TestClone(t *testing.T) {
	v := sample(t)
	c := v.Clone()
	if c.Size() != v.Size() {
		t.Fatalf("clone size %d != %d", c.Size(), v.Size())
	}
	// Mutating the clone must not affect the original.
	c.Hierarchy("data").MustAdd("clinical", "radiology")
	if v.Hierarchy("data").Contains("radiology") {
		t.Error("clone shares structure with original")
	}
	if !reflect.DeepEqual(v.GroundSet("data", "demographic"), c.GroundSet("data", "demographic")) {
		t.Error("clone diverges on untouched subtree")
	}
}

func TestSampleRolesAreGround(t *testing.T) {
	// Required for the paper's audit-row counting; see sample.go.
	v := sample(t)
	for _, role := range []string{"doctor", "psychiatrist", "nurse", "clerk"} {
		if !v.IsGround("authorized", role) {
			t.Errorf("role %q must be ground", role)
		}
	}
}

// Property: every element of a ground set is itself ground, and is
// subsumed by the value it was derived from (closure of Definition 3).
func TestGroundSetClosureProperty(t *testing.T) {
	v := sample(t)
	for _, attr := range v.Attributes() {
		h := v.Hierarchy(attr)
		for _, val := range h.Values() {
			for _, g := range h.GroundSet(val) {
				if !h.IsGround(g) {
					t.Errorf("%s/%s: ground set element %q not ground", attr, val, g)
				}
				if !h.Subsumes(val, g) {
					t.Errorf("%s/%s does not subsume ground element %q", attr, val, g)
				}
				if !v.Equivalent(attr, val, g) {
					t.Errorf("%s/%s not equivalent to its ground element %q", attr, val, g)
				}
			}
		}
	}
}

// Property: Equivalent is reflexive and symmetric over vocabulary values.
func TestEquivalenceProperties(t *testing.T) {
	v := sample(t)
	h := v.Hierarchy("data")
	vals := h.Values()
	for _, a := range vals {
		if !v.Equivalent("data", a, a) {
			t.Errorf("equivalence not reflexive for %q", a)
		}
		for _, b := range vals {
			if v.Equivalent("data", a, b) != v.Equivalent("data", b, a) {
				t.Errorf("equivalence not symmetric for %q,%q", a, b)
			}
		}
	}
}

// Property (quick): for randomly generated chains, GroundSet of the
// root covers all leaves.
func TestRandomChainsProperty(t *testing.T) {
	f := func(depth uint8, fanout uint8) bool {
		d := int(depth%5) + 1
		fo := int(fanout%3) + 1
		v := New()
		h := v.MustAttribute("a")
		h.MustAdd("", "root")
		frontier := []string{"root"}
		name := 0
		for lvl := 0; lvl < d; lvl++ {
			var next []string
			for _, p := range frontier {
				for i := 0; i < fo; i++ {
					name++
					val := "n" + itoa(name)
					h.MustAdd(p, val)
					next = append(next, val)
				}
			}
			frontier = next
		}
		gs := h.GroundSet("root")
		return len(gs) == len(frontier)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
