package vocab

import (
	"reflect"
	"testing"
)

func TestMergeDisjointAttrs(t *testing.T) {
	a, err := ParseTextString("data\n  demographic\n    address\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseTextString("purpose\n  treatment\n")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Attributes(), []string{"data", "purpose"}) {
		t.Errorf("attrs = %v", m.Attributes())
	}
	if !m.Subsumes("data", "demographic", "address") || !m.Hierarchy("purpose").Contains("treatment") {
		t.Error("merge lost structure")
	}
	// Inputs untouched.
	if a.Hierarchy("purpose") != nil || b.Hierarchy("data") != nil {
		t.Error("merge mutated inputs")
	}
}

func TestMergeOverlappingAgrees(t *testing.T) {
	a, _ := ParseTextString("data\n  clinical\n    referral\n")
	b, _ := ParseTextString("data\n  clinical\n    referral\n    imaging\n  financial\n")
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	h := m.Hierarchy("data")
	if !h.Contains("imaging") || !h.Contains("financial") {
		t.Error("new values missing")
	}
	if !h.Subsumes("clinical", "imaging") {
		t.Error("imaging not under clinical")
	}
	if h.Len() != 4 { // clinical, referral, imaging, financial
		t.Errorf("values = %v", h.Values())
	}
}

func TestMergeConflict(t *testing.T) {
	a, _ := ParseTextString("data\n  clinical\n    referral\n")
	b, _ := ParseTextString("data\n  financial\n    referral\n") // referral under a different parent
	if _, err := Merge(a, b); err == nil {
		t.Error("conflicting parent accepted")
	}
	// Conflicting depth (root vs nested) also rejected.
	c, _ := ParseTextString("data\n  referral\n")
	if _, err := Merge(a, c); err == nil {
		t.Error("root-vs-nested conflict accepted")
	}
}

func TestMergeIdempotent(t *testing.T) {
	a := Sample()
	m, err := Merge(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if m.TextString() != a.TextString() {
		t.Error("self-merge changed the vocabulary")
	}
}

func TestDiff(t *testing.T) {
	a, _ := ParseTextString("data\n  clinical\n")
	b, _ := ParseTextString("data\n  clinical\n    imaging\npurpose\n  treatment\n")
	got := Diff(a, b)
	expect := []string{"data/imaging", "purpose/treatment"}
	if !reflect.DeepEqual(got, expect) {
		t.Errorf("Diff = %v, want %v", got, expect)
	}
	if d := Diff(b, a); len(d) != 0 {
		t.Errorf("reverse diff = %v", d)
	}
}

func TestCoverageTerms(t *testing.T) {
	v := Sample()
	if err := v.CoverageTerms(map[string]string{"data": "referral", "purpose": "treatment"}); err != nil {
		t.Errorf("valid terms rejected: %v", err)
	}
	if err := v.CoverageTerms(map[string]string{"data": "nosuch"}); err == nil {
		t.Error("unknown value accepted")
	}
	if err := v.CoverageTerms(map[string]string{"zzz": "x"}); err == nil {
		t.Error("unknown attribute accepted")
	}
}
