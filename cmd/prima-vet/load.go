package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	Path      string // import path ("repro/internal/audit" or a bare fixture name)
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File // non-test files, type-checked
	TestFiles []*ast.File // _test.go files, parsed only (codecpair needs names)
	Pkg       *types.Package
	Info      *types.Info
	// TypeErrors collects type-checker complaints; analysis proceeds
	// best-effort so a single broken file does not hide every finding.
	TypeErrors []error
}

// FileName reports whether the package contains a file with the given
// base name (test files included).
func (p *Package) FileName(base string) bool {
	have := func(files []*ast.File) bool {
		for _, f := range files {
			if filepath.Base(p.Fset.File(f.Pos()).Name()) == base {
				return true
			}
		}
		return false
	}
	return have(p.Files) || have(p.TestFiles)
}

// Loader resolves and type-checks packages of one Go module without
// external tooling: module-internal imports are located under the
// module root, everything else (the standard library) comes from the
// source importer.
type Loader struct {
	Root   string // module root directory (contains go.mod)
	Module string // module path from go.mod
	Fset   *token.FileSet

	std   types.Importer
	cache map[string]*Package
}

// NewLoader builds a loader rooted at the go.mod nearest to dir.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: module,
		Fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  make(map[string]*Package),
	}, nil
}

// findModule walks upward from dir to the first go.mod.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("prima-vet: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("prima-vet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Expand resolves command-line patterns into package directories.
// Supported patterns: "./..." (every package under the module root),
// "dir/..." and plain directories.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base := pat
		recursive := false
		if strings.HasSuffix(pat, "...") {
			recursive = true
			base = strings.TrimSuffix(pat, "...")
			base = strings.TrimSuffix(base, "/")
			if base == "" || base == "." {
				base = l.Root
			}
		}
		abs, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		if !recursive {
			if hasGoFiles(abs) {
				add(abs)
			} else {
				return nil, fmt.Errorf("prima-vet: no Go files in %s", pat)
			}
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPath maps a directory under the module root to its import path.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// Load parses and type-checks the package in dir.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(abs, l.importPath(abs))
}

func (l *Loader) load(dir, path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset}
	l.cache[path] = p // pre-register: packages never import cyclically
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, perr
		}
		if strings.HasSuffix(name, "_test.go") {
			p.TestFiles = append(p.TestFiles, f)
		} else {
			p.Files = append(p.Files, f)
		}
	}
	if len(p.Files) == 0 {
		return nil, fmt.Errorf("prima-vet: no non-test Go files in %s", dir)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			return l.importPkg(ipath)
		}),
		Error: func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, p.Files, p.Info)
	p.Pkg = pkg
	return p, nil
}

// importPkg resolves an import path for the type checker.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		p, err := l.load(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		if p.Pkg == nil {
			return nil, fmt.Errorf("prima-vet: %s did not type-check", path)
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
