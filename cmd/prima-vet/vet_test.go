package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRx matches expected-diagnostic annotations in fixtures:
//
//	// want <analyzer> "<message substring>"
var wantRx = regexp.MustCompile(`// want (\w+) "([^"]*)"`)

type want struct {
	file     string // base name
	line     int
	analyzer string
	substr   string
}

func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRx.FindAllStringSubmatch(line, -1) {
				out = append(out, want{file: e.Name(), line: i + 1, analyzer: m[1], substr: m[2]})
			}
		}
	}
	return out
}

// TestFixtures runs every analyzer — per-package and interprocedural
// — over the deliberately-broken testdata packages and requires an
// exact match between findings and // want annotations — no missing
// and no extra diagnostics.
func TestFixtures(t *testing.T) {
	fixtures := []string{
		"lockcheck", "purity", "errcheck", "codecpair",
		"lockorder", "phileak", "arenasafe",
		"atomicsafe", "goleak", "chanuse",
	}
	for _, fixture := range fixtures {
		t.Run(fixture, func(t *testing.T) {
			dir := filepath.Join("testdata", fixture)
			loader, err := NewLoader(dir)
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := loader.Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("fixture does not type-check: %v", pkg.TypeErrors)
			}
			findings := runAnalyzers(pkg)
			prog := BuildProgram(loader, []*Package{pkg})
			findings = append(findings, runProgramAnalyzers(analyzers, prog)...)
			wants := parseWants(t, dir)
			if len(wants) == 0 {
				t.Fatal("fixture has no // want annotations")
			}

			matched := make([]bool, len(findings))
			for _, w := range wants {
				found := false
				for i, f := range findings {
					if matched[i] {
						continue
					}
					if filepath.Base(f.Pos.Filename) == w.file && f.Pos.Line == w.line &&
						f.Analyzer == w.analyzer && strings.Contains(f.Message, w.substr) {
						matched[i] = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("missing finding %s:%d [%s] %q\ngot:\n%s",
						w.file, w.line, w.analyzer, w.substr, findingList(findings))
				}
			}
			for i, f := range findings {
				if !matched[i] {
					t.Errorf("unexpected finding %s", f)
				}
			}
		})
	}
}

func findingList(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// TestCleanRepo is the self-test the CI gate relies on: the repo's
// own packages must produce zero findings.
func TestCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("prima-vet ./... exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestExitCodes pins the documented contract: 0 clean, 1 findings,
// 2 usage error.
func TestExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, a := range analyzers {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./testdata/errcheck"}, &stdout, &stderr); code != 1 {
		t.Fatalf("broken fixture exited %d, want 1:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[errcheck]") {
		t.Errorf("findings not printed: %q", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing dir exited %d, want 2", code)
	}

	// -run with an unknown analyzer is a usage error, never a silent
	// no-op.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-run", "nope", "./testdata/errcheck"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-run nope exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("-run nope stderr = %q, want mention of unknown analyzer", stderr.String())
	}

	// A valid -run subset reports only that analyzer's findings.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-run", "lockorder", "./testdata/lockorder"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-run lockorder exited %d, want 1:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[lockorder]") {
		t.Errorf("lockorder findings missing: %q", stdout.String())
	}
	if strings.Contains(stdout.String(), "[errcheck]") {
		t.Errorf("-run lockorder leaked other analyzers: %q", stdout.String())
	}
}

// TestExpandSkipsTestdata keeps the fixture packages out of ./...
// walks: they are deliberately broken.
func TestExpandSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("./... expanded into %s", d)
		}
	}
	if len(dirs) == 0 {
		t.Error("./... expanded to nothing")
	}
}

// TestOutputModes pins the -json and -sarif wire formats on a broken
// fixture: structured output goes to stdout, exit codes are unchanged,
// and the two flags are mutually exclusive.
func TestOutputModes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./testdata/errcheck"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-json exited %d, want 1:\n%s", code, stderr.String())
	}
	var parsed []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &parsed); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout.String())
	}
	if len(parsed) == 0 || parsed[0].Analyzer == "" || parsed[0].Line == 0 {
		t.Errorf("-json findings malformed: %+v", parsed)
	}
	for _, f := range parsed {
		// Like the SARIF URIs, -json file fields are module-relative so
		// the output is portable across CI machines.
		if filepath.IsAbs(f.File) {
			t.Errorf("-json file %q is absolute, want module-relative", f.File)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-json", "./testdata/cfgloop"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-json on clean fixture exited %d:\n%s", code, stderr.String())
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("-json clean output = %q, want []", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-sarif", "./testdata/errcheck"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-sarif exited %d, want 1:\n%s", code, stderr.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "prima-vet" {
		t.Errorf("SARIF envelope malformed: version=%q runs=%d", log.Version, len(log.Runs))
	}
	if len(log.Runs[0].Results) == 0 {
		t.Fatal("SARIF results empty for broken fixture")
	}
	r := log.Runs[0].Results[0]
	if r.RuleID == "" || len(r.Locations) == 0 || r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
		t.Errorf("SARIF result malformed: %+v", r)
	}
	if uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI; strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\") {
		t.Errorf("SARIF uri %q not module-relative slash-separated", uri)
	}
	if len(log.Runs[0].Tool.Driver.Rules) != len(analyzers) {
		t.Errorf("SARIF rules = %d, want one per analyzer (%d)", len(log.Runs[0].Tool.Driver.Rules), len(analyzers))
	}

	var both bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &both, &both); code != 2 {
		t.Fatalf("-json -sarif exited %d, want 2", code)
	}
}

// TestWriteLockOrder pins that -write-lockorder is stable: the
// acquisition graph observed in the repo reproduces the checked-in
// lockorder.txt byte-for-byte (the CI sync check depends on this).
func TestWriteLockOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	before, err := os.ReadFile("lockorder.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.WriteFile("lockorder.txt", before, 0o644); err != nil {
			t.Errorf("restoring lockorder.txt: %v", err)
		}
	}()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-write-lockorder"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-lockorder exited %d:\n%s", code, stderr.String())
	}
	after, err := os.ReadFile("lockorder.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("regenerated lockorder.txt differs from checked-in file:\n%s", after)
	}
}
