// Package report renders PRIMA's analysis artifacts — coverage
// reports, refinement rounds, audit statistics — as a Markdown
// document for the stakeholders the paper puts at the top of its
// architecture diagram: the privacy officer reviewing what the system
// learned and what still bypasses policy.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
)

// Input bundles everything a report can include; nil/empty sections
// are omitted.
type Input struct {
	Title     string
	Generated time.Time
	// Coverage is the Algorithm 1 report against the audit-log policy.
	Coverage *core.Report
	// EntryCoverage is row-level coverage over the same snapshot.
	EntryCoverage *core.EntryReport
	// Rounds are refinement rounds, oldest first.
	Rounds []core.Round
	// Entries is the audit snapshot used for the statistics section.
	Entries []audit.Entry
}

// Write renders the report.
func Write(w io.Writer, in Input) error {
	bw := &errWriter{w: w}
	title := in.Title
	if title == "" {
		title = "PRIMA privacy report"
	}
	bw.printf("# %s\n\n", title)
	if !in.Generated.IsZero() {
		bw.printf("Generated: %s\n\n", in.Generated.UTC().Format(time.RFC3339))
	}

	if in.EntryCoverage != nil || in.Coverage != nil {
		bw.printf("## Policy coverage\n\n")
		if in.EntryCoverage != nil {
			ec := in.EntryCoverage
			bw.printf("- Row coverage (each audited access): **%.1f%%** (%d of %d accesses covered)\n",
				ec.Coverage*100, ec.Covered, ec.Total)
		}
		if in.Coverage != nil {
			c := in.Coverage
			bw.printf("- Rule coverage (Definition 9): **%.1f%%** (%d of %d distinct ground rules)\n",
				c.Coverage*100, c.Overlap, c.RangeY)
		}
		bw.printf("\n")
		if in.Coverage != nil && len(in.Coverage.Gaps) > 0 {
			bw.printf("### Uncovered access patterns\n\n")
			for _, g := range in.Coverage.Gaps {
				bw.printf("- `%s`\n", g.Rule.Compact())
				for _, nm := range g.NearMisses {
					bw.printf("  - near miss: %s\n", nm)
				}
			}
			bw.printf("\n")
		}
	}

	if len(in.Rounds) > 0 {
		bw.printf("## Refinement history\n\n")
		bw.printf("| round | analysed | practice | coverage before | coverage after | adopted | rejected | investigating |\n")
		bw.printf("|---|---|---|---|---|---|---|---|\n")
		for i, r := range in.Rounds {
			bw.printf("| %d | %d | %d | %.1f%% | %.1f%% | %d | %d | %d |\n",
				i+1, r.Entries, r.Practice,
				r.CoverageBefore*100, r.CoverageAfter*100,
				len(r.Adopted), len(r.Rejected), len(r.Investigating))
		}
		bw.printf("\n")
		last := in.Rounds[len(in.Rounds)-1]
		if len(last.Adopted) > 0 {
			bw.printf("### Rules adopted in the last round\n\n")
			for _, rule := range last.Adopted {
				bw.printf("- `%s`\n", rule.Compact())
			}
			bw.printf("\n")
		}
		if len(last.Investigating) > 0 {
			bw.printf("### Patterns pending investigation\n\n")
			for _, p := range last.Investigating {
				bw.printf("- `%s` — support %d, %d distinct users (%s to %s)\n",
					p.Rule.Compact(), p.Support, p.DistinctUsers,
					p.FirstSeen.UTC().Format("2006-01-02"), p.LastSeen.UTC().Format("2006-01-02"))
			}
			bw.printf("\n")
		}
	}

	if len(in.Entries) > 0 {
		st := audit.Summarize(in.Entries)
		bw.printf("## Audit statistics\n\n")
		bw.printf("- Window: %s to %s\n",
			st.First.UTC().Format("2006-01-02"), st.Last.UTC().Format("2006-01-02"))
		bw.printf("- Accesses: %d (%d allowed, %d denied)\n", st.Total, st.Allowed, st.Denied)
		pct := 0.0
		if st.Total > 0 {
			pct = float64(st.Exceptions) / float64(st.Total) * 100
		}
		bw.printf("- Exception-based (break-the-glass): %d (%.1f%%)\n", st.Exceptions, pct)
		bw.printf("- Distinct users: %d\n\n", st.Users)

		if rates := audit.ExceptionRateByRole(in.Entries); len(rates) > 0 {
			bw.printf("### Break-the-glass pressure by role\n\n")
			for _, role := range sortedKeys(rates) {
				bw.printf("- %s: %.1f%%\n", role, rates[role]*100)
			}
			bw.printf("\n")
		}
		if top := audit.TopData(in.Entries, 5); len(top) > 0 {
			bw.printf("### Most accessed data categories\n\n")
			for _, c := range top {
				bw.printf("- %s (%d)\n", c.Value, c.N)
			}
			bw.printf("\n")
		}
	}
	return bw.err
}

// Render is Write into a string.
func Render(in Input) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, in); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// errWriter folds the first write error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
