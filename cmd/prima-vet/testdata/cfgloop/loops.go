// Package cfgloop is a driver fixture (no want annotations): the CFG
// test builds each body below and asserts the dataflow fixpoint
// terminates within its iteration bound on loop-heavy shapes.
package cfgloop

func Nested(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j%2 == 0 {
				total += j
				continue
			}
			total -= j
		}
	}
	return total
}

func Labeled(m [][]int) int {
	sum := 0
outer:
	for _, row := range m {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
			sum += v
		}
	}
	return sum
}

func GotoLoop(n int) int {
	i := 0
again:
	if i < n {
		i++
		goto again
	}
	return i
}

func SwitchLoop(xs []int) int {
	s := 0
	for _, x := range xs {
		switch {
		case x > 10:
			s += 10
		case x > 0:
			s += x
		default:
			s--
		}
	}
	return s
}
