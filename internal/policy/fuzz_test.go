package policy

import (
	"strings"
	"testing"
)

// FuzzDecodePolicy feeds arbitrary text through the policy text codec
// and pins the decoder's contract: no panic on any input, and every
// accepted policy survives a write/re-parse round trip with identical
// canonical keys (rule normalization is idempotent).
func FuzzDecodePolicy(f *testing.F) {
	f.Add("{(data, demographic) ^ (purpose, treatment)}\n")
	f.Add("{(authorized, nurse)}\n{(data, referral) ^ (purpose, registration) ^ (authorized, nurse)}\n")
	f.Add("# comment\n\n{(data, x)}\n")
	f.Add("{}")
	f.Add("{(data demographic)}")
	f.Add("{(data, a) ^ (data, b)}")
	f.Add(strings.Repeat("{(data, d)}\n", 50))

	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePolicyString("fuzz", src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		text := p.TextString()
		p2, err := ParsePolicyString("fuzz2", text)
		if err != nil {
			t.Fatalf("re-parse of encoded policy failed: %v\nencoded:\n%s", err, text)
		}
		if p.Len() != p2.Len() {
			t.Fatalf("round trip changed cardinality: %d -> %d", p.Len(), p2.Len())
		}
		keys := make(map[string]bool, p.Len())
		for _, r := range p.Rules() {
			keys[r.Key()] = true
		}
		for _, r := range p2.Rules() {
			if !keys[r.Key()] {
				t.Fatalf("round trip invented rule %s", r)
			}
		}
	})
}
