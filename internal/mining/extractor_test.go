package mining

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/scenario"
)

// TestExtractorMatchesSQLOnTable1 checks that on the paper's Table 1
// the Apriori-backed extractor finds the same full-width pattern as
// the SQL extractor.
func TestExtractorMatchesSQLOnTable1(t *testing.T) {
	practice := core.Filter(scenario.Table1())
	patterns, err := Extractor{}.Extract(practice, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 1 {
		t.Fatalf("patterns = %v", patterns)
	}
	p := patterns[0]
	if p.Rule.Key() != scenario.RefinementPattern().Key() {
		t.Errorf("rule = %s", p.Rule)
	}
	if p.Support != 5 || p.DistinctUsers != 3 {
		t.Errorf("support/users = %d/%d", p.Support, p.DistinctUsers)
	}
	if p.FirstSeen.IsZero() || !p.LastSeen.After(p.FirstSeen) {
		t.Errorf("evidence window: %v .. %v", p.FirstSeen, p.LastSeen)
	}
}

// TestCorrelationsBeyondSQL builds the §5 scenario: a (data, role)
// correlation spread over many purposes so that no single
// (data, purpose, authorized) tuple reaches the support threshold,
// yet the pair is strongly frequent. The SQL extractor (exact tuples)
// misses it; Apriori finds it.
func TestCorrelationsBeyondSQL(t *testing.T) {
	base := time.Date(2007, 4, 1, 8, 0, 0, 0, time.UTC)
	purposes := []string{"treatment", "registration", "billing", "research"}
	users := []string{"a", "b", "c"}
	var entries []audit.Entry
	for i := 0; i < 8; i++ {
		entries = append(entries, audit.Entry{
			Time: base.Add(time.Duration(i) * time.Minute), Op: audit.Allow,
			User: users[i%len(users)], Data: "lab_result",
			Purpose: purposes[i%len(purposes)], Authorized: "lab_tech",
			Status: audit.Exception,
		})
	}
	// SQL-style extraction at f=5 finds nothing: each full tuple
	// occurs at most twice.
	sqlPats, err := core.ExtractPatterns(entries, core.Options{MinSupport: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sqlPats) != 0 {
		t.Fatalf("SQL should miss the spread pattern, found %v", sqlPats)
	}
	// Apriori at the same support finds the (data, authorized) pair.
	corrs, err := Correlations(entries, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range corrs {
		if c.Items.Key() == "authorized=lab_tech&data=lab_result" && c.Support == 8 {
			found = true
		}
	}
	if !found {
		t.Errorf("pair correlation missing: %v", corrs)
	}
}

func TestExtractorKeepPartial(t *testing.T) {
	practice := core.Filter(scenario.Table1())
	full, err := Extractor{}.Extract(practice, core.Options{MinSupport: 5})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := Extractor{KeepPartial: true}.Extract(practice, core.Options{MinSupport: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) <= len(full) {
		t.Errorf("KeepPartial added nothing: %d vs %d", len(partial), len(full))
	}
	for _, p := range partial {
		if p.DistinctUsers < 2 {
			t.Errorf("distinct-user condition not applied to %v", p)
		}
	}
}

func TestExtractorViaRefinement(t *testing.T) {
	// The adapter slots into Algorithm 2 via Options.Extractor.
	v := scenario.Vocabulary()
	patterns, err := core.Refinement(scenario.PolicyStore(), scenario.Table1(), v,
		core.Options{Extractor: Extractor{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 1 || patterns[0].Rule.Key() != scenario.RefinementPattern().Key() {
		t.Errorf("refinement with mining extractor: %v", patterns)
	}
}

func TestExtractorBadAttr(t *testing.T) {
	entries := core.Filter(scenario.Table1())
	if _, err := (Extractor{}).Extract(entries, core.Options{Attrs: []string{"nosuch"}}); err == nil {
		t.Error("bad attribute accepted")
	}
	if _, err := Correlations(entries, []string{"nope"}, 2); err == nil {
		t.Error("bad attribute accepted in Correlations")
	}
}

func TestAttrValueCoverage(t *testing.T) {
	e := audit.Entry{Op: audit.Deny, Status: audit.Regular, User: "u", Data: "d", Purpose: "p", Authorized: "r"}
	for attr, want := range map[string]string{
		"op": "0", "status": "1", "user": "u", "data": "d", "purpose": "p", "authorized": "r",
	} {
		got, err := attrValue(&e, attr)
		if err != nil || got != want {
			t.Errorf("attrValue(%s) = %q, %v", attr, got, err)
		}
	}
}
