package mining

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/vocab"
)

func errMinSupport(m int) error {
	return fmt.Errorf("mining: minSupport must be >= 1, got %d", m)
}

// Dense item interning. Both mining engines and the evidence pass
// operate on small integer ids instead of item key strings: the
// normalized (lowercased) key of each distinct item is computed
// exactly once per epoch, killing the strings.ToLower churn the
// string-keyed Apriori paid twice per comparison in its hot loops.

// interner assigns dense ids to items by normalized key, remembering
// the first-seen display form of each key so mined itemsets render
// with the same representative item the string-keyed algorithm chose.
type interner struct {
	ids  map[string]int32
	keys []string // id -> normalized key
	reps []Item   // id -> first-seen representative
}

func newInterner() *interner {
	return &interner{ids: make(map[string]int32)}
}

// intern returns the id of the item, assigning the next dense id on
// first sight. The key is computed once here and never again.
func (in *interner) intern(it Item) int32 {
	k := it.key()
	if id, ok := in.ids[k]; ok {
		return id
	}
	id := int32(len(in.keys))
	in.ids[k] = id
	in.keys = append(in.keys, k)
	in.reps = append(in.reps, it)
	return id
}

func (in *interner) size() int { return len(in.keys) }

// itemset materializes a sorted id set into a public Itemset. The ids
// carry arbitrary (first-seen) order, so the result is re-sorted by
// key — the Itemset invariant.
func (in *interner) itemset(ids []int32) Itemset {
	sorted := append([]int32(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return in.keys[sorted[i]] < in.keys[sorted[j]] })
	out := make(Itemset, len(sorted))
	for i, id := range sorted {
		out[i] = in.reps[id]
	}
	return out
}

// setKey returns the canonical itemset key (Itemset.Key) of a set of
// ids without materializing the items.
func (in *interner) setKey(ids []int32) string {
	keys := make([]string, len(ids))
	for i, id := range ids {
		keys[i] = in.keys[id]
	}
	sort.Strings(keys)
	n := 0
	for _, k := range keys {
		n += len(k) + 1
	}
	b := make([]byte, 0, n)
	for i, k := range keys {
		if i > 0 {
			b = append(b, '&')
		}
		b = append(b, k...)
	}
	return string(b)
}

// packIDs encodes a sorted id set as a byte string for map keying.
func packIDs(buf []byte, ids []int32) []byte {
	buf = buf[:0]
	var tmp [4]byte
	for _, id := range ids {
		binary.BigEndian.PutUint32(tmp[:], uint32(id))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// txShard is one stripe of the weighted distinct-transaction table.
type txShard struct {
	index  map[string]int32 // packed id set -> row
	sets   [][]int32        // sorted ascending by id
	weight []int
	users  []map[string]struct{} // normalized users; nil when evidence is off
	first  []time.Time
	last   []time.Time
}

// txTable is the weighted distinct-transaction view both engines mine
// from: audit projections repeat heavily (every practice row over the
// default attributes collapses onto its (data, purpose, authorized)
// triple), so mining and the evidence pass cost O(distinct
// transactions), not O(rows). Rows are striped across shards by a
// hash of the transaction identity so per-shard FP-trees can be built
// concurrently; the interner is shared and fold is single-writer.
type txTable struct {
	in       *interner
	shards   []txShard
	rows     int  // total weight (raw transaction count)
	evidence bool // track users and time windows per distinct transaction

	scratchIDs []int32
	scratchBuf []byte
}

// defaultTableShards matches the audit log's stripe count: enough
// parallelism for tree construction without widening merges.
const defaultTableShards = 16

func newTxTable(shards int, evidence bool) *txTable {
	if shards < 1 {
		shards = 1
	}
	t := &txTable{in: newInterner(), shards: make([]txShard, shards), evidence: evidence}
	for i := range t.shards {
		t.shards[i].index = make(map[string]int32)
	}
	return t
}

// shardOf routes a packed transaction to its stripe (FNV-1a).
func (t *txTable) shardOf(packed []byte) int {
	if len(t.shards) == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range packed {
		h = (h ^ uint64(c)) * prime64
	}
	return int(h % uint64(len(t.shards)))
}

// foldIDs folds one transaction (a scratch id slice, not retained)
// with the given weight and optional evidence into the table.
func (t *txTable) foldIDs(ids []int32, weight int, user string, at time.Time) {
	sortIDs(ids)
	ids = dedupIDs(ids)
	t.scratchBuf = packIDs(t.scratchBuf, ids)
	sh := &t.shards[t.shardOf(t.scratchBuf)]
	row, ok := sh.index[string(t.scratchBuf)]
	if !ok {
		row = int32(len(sh.sets))
		sh.index[string(t.scratchBuf)] = row
		sh.sets = append(sh.sets, append([]int32(nil), ids...))
		sh.weight = append(sh.weight, 0)
		if t.evidence {
			sh.users = append(sh.users, make(map[string]struct{}, 2))
			sh.first = append(sh.first, time.Time{})
			sh.last = append(sh.last, time.Time{})
		}
	}
	sh.weight[row] += weight
	t.rows += weight
	if t.evidence {
		sh.users[row][vocab.Norm(user)] = struct{}{}
		if !at.IsZero() {
			if sh.first[row].IsZero() || at.Before(sh.first[row]) {
				sh.first[row] = at
			}
			if at.After(sh.last[row]) {
				sh.last[row] = at
			}
		}
	}
}

// foldUsers merges a pre-accumulated raw user set into a transaction's
// evidence (the audit-index feed path, where distinct users arrive per
// group instead of per row).
func (t *txTable) foldGroup(ids []int32, weight int, users []string, first, last time.Time) {
	sortIDs(ids)
	ids = dedupIDs(ids)
	t.scratchBuf = packIDs(t.scratchBuf, ids)
	sh := &t.shards[t.shardOf(t.scratchBuf)]
	row, ok := sh.index[string(t.scratchBuf)]
	if !ok {
		row = int32(len(sh.sets))
		sh.index[string(t.scratchBuf)] = row
		sh.sets = append(sh.sets, append([]int32(nil), ids...))
		sh.weight = append(sh.weight, 0)
		if t.evidence {
			sh.users = append(sh.users, make(map[string]struct{}, len(users)))
			sh.first = append(sh.first, time.Time{})
			sh.last = append(sh.last, time.Time{})
		}
	}
	sh.weight[row] += weight
	t.rows += weight
	if t.evidence {
		for _, u := range users {
			sh.users[row][vocab.Norm(u)] = struct{}{}
		}
		if !first.IsZero() && (sh.first[row].IsZero() || first.Before(sh.first[row])) {
			sh.first[row] = first
		}
		if last.After(sh.last[row]) {
			sh.last[row] = last
		}
	}
}

// foldTx folds one public Transaction (weight 1, no evidence).
func (t *txTable) foldTx(tx Transaction) {
	ids := t.scratchIDs[:0]
	for _, it := range tx {
		ids = append(ids, t.in.intern(it))
	}
	t.scratchIDs = ids
	t.foldIDs(ids, 1, "", time.Time{})
}

// counts returns the weighted support of every interned item.
func (t *txTable) counts() []int {
	counts := make([]int, t.in.size())
	for s := range t.shards {
		sh := &t.shards[s]
		for r, set := range sh.sets {
			w := sh.weight[r]
			for _, id := range set {
				counts[id] += w
			}
		}
	}
	return counts
}

// distinct returns the number of distinct transactions.
func (t *txTable) distinct() int {
	n := 0
	for s := range t.shards {
		n += len(t.shards[s].sets)
	}
	return n
}

func sortIDs(ids []int32) {
	if len(ids) < 2 {
		return
	}
	// Insertion sort: transactions are projections over a handful of
	// attributes, so n is tiny and this beats sort.Slice's overhead.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// dedupIDs removes adjacent duplicates from a sorted id slice.
func dedupIDs(ids []int32) []int32 {
	if len(ids) < 2 {
		return ids
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// containsIDs reports whether sorted set contains sorted sub.
func containsIDs(set, sub []int32) bool {
	i := 0
	for _, id := range sub {
		for i < len(set) && set[i] < id {
			i++
		}
		if i >= len(set) || set[i] != id {
			return false
		}
	}
	return true
}

// mined is an engine-internal frequent itemset: interned ids (sorted
// ascending) plus the weighted support.
type mined struct {
	ids     []int32
	support int
}

// finishResult converts engine output into the public Result,
// reproducing the canonical ordering (size, then itemset key).
func finishResult(t *txTable, sets []mined, transactions, minSupport int) *Result {
	res := &Result{Transactions: transactions, MinSupport: minSupport}
	if len(sets) == 0 {
		return res
	}
	type keyedSet struct {
		m   mined
		key string
	}
	ks := make([]keyedSet, len(sets))
	for i, m := range sets {
		ks[i] = keyedSet{m: m, key: t.in.setKey(m.ids)}
	}
	sort.Slice(ks, func(i, j int) bool {
		if len(ks[i].m.ids) != len(ks[j].m.ids) {
			return len(ks[i].m.ids) < len(ks[j].m.ids)
		}
		return ks[i].key < ks[j].key
	})
	res.Frequent = make([]Frequent, len(ks))
	for i, k := range ks {
		res.Frequent[i] = Frequent{Items: t.in.itemset(k.m.ids), Support: k.m.support}
	}
	return res
}
