package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/scenario"
)

// TestUseCaseTable1 walks the paper's §5 use case end to end:
// Filter keeps the seven exception rows, extraction finds exactly
// Referral:Registration:Nurse (support 5, 3 distinct users), Prune
// keeps it, and adopting it lifts coverage from 30 % to 80 %.
func TestUseCaseTable1(t *testing.T) {
	for _, ex := range []struct {
		name string
		x    PatternExtractor
	}{
		{"sql", SQLExtractor{}},
		{"native", NativeExtractor{}},
	} {
		t.Run(ex.name, func(t *testing.T) {
			v := scenario.Vocabulary()
			ps := scenario.PolicyStore()
			entries := scenario.Table1()

			practice := Filter(entries)
			if len(practice) != scenario.Table1PracticeSize {
				t.Fatalf("practice = %d rows, want %d", len(practice), scenario.Table1PracticeSize)
			}

			patterns, err := Refinement(ps, entries, v, Options{Extractor: ex.x})
			if err != nil {
				t.Fatal(err)
			}
			if len(patterns) != 1 {
				t.Fatalf("patterns = %v, want exactly one", patterns)
			}
			p := patterns[0]
			if p.Rule.Key() != scenario.RefinementPattern().Key() {
				t.Errorf("pattern = %s, want Referral:Registration:Nurse", p.Rule)
			}
			if p.Support != scenario.RefinementSupport || p.DistinctUsers != scenario.RefinementDistinctUsers {
				t.Errorf("support/users = %d/%d, want %d/%d",
					p.Support, p.DistinctUsers, scenario.RefinementSupport, scenario.RefinementDistinctUsers)
			}
			// Evidence window: t3 through t10.
			if !p.FirstSeen.Equal(scenario.Table1Base.Add(2 * time.Hour)) {
				t.Errorf("first seen = %v", p.FirstSeen)
			}
			if !p.LastSeen.Equal(scenario.Table1Base.Add(9 * time.Hour)) {
				t.Errorf("last seen = %v", p.LastSeen)
			}

			// Adopt and re-measure.
			ps.Add(p.Rule)
			rep, err := EntryCoverage(ps, entries, v)
			if err != nil {
				t.Fatal(err)
			}
			if !almost(rep.Coverage, scenario.Table1PostAdoptionCoverage) {
				t.Errorf("post-adoption coverage = %v, want %v", rep.Coverage, scenario.Table1PostAdoptionCoverage)
			}
		})
	}
}

func TestFilterKeepsExactlyExceptions(t *testing.T) {
	entries := scenario.Table1()
	// Add a denied attempt: a prohibition that Filter must drop even
	// though it is exception-flagged.
	denied := entries[0]
	denied.Op = audit.Deny
	denied.Status = audit.Exception
	denied.User = "Eve"
	entries = append(entries, denied)

	practice := Filter(entries)
	if len(practice) != scenario.Table1PracticeSize {
		t.Fatalf("practice = %d, want %d", len(practice), scenario.Table1PracticeSize)
	}
	for _, e := range practice {
		if e.Status != audit.Exception || e.Op != audit.Allow {
			t.Errorf("non-practice row survived: %v", e)
		}
	}
	if got := Filter(nil); got != nil {
		t.Errorf("Filter(nil) = %v", got)
	}
}

func TestStrictGreaterMatchesAlgorithm5Literal(t *testing.T) {
	// With the literal COUNT(*) > 5 comparator the Table 1 pattern
	// (exactly 5 occurrences) is NOT found — the discrepancy noted in
	// DESIGN.md.
	v := scenario.Vocabulary()
	patterns, err := Refinement(scenario.PolicyStore(), scenario.Table1(), v, Options{StrictGreater: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 0 {
		t.Errorf("strict comparator found %v", patterns)
	}
}

func TestDistinctUserCondition(t *testing.T) {
	// Raising c beyond the pattern's 3 users suppresses it.
	v := scenario.Vocabulary()
	patterns, err := Refinement(scenario.PolicyStore(), scenario.Table1(), v, Options{MinDistinctUsers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 0 {
		t.Errorf("c=4 found %v", patterns)
	}
	// A single-user pattern must be ignored entirely (lone-wolf
	// snooping is not informal practice).
	entries := scenario.Table1()[:0:0]
	base := scenario.Table1Base
	for i := 0; i < 10; i++ {
		entries = append(entries, audit.Entry{
			Time: base.Add(time.Duration(i) * time.Minute), Op: audit.Allow, User: "Eve",
			Data: "Psychiatry", Purpose: "Research", Authorized: "Clerk", Status: audit.Exception,
		})
	}
	patterns, err = Refinement(scenario.PolicyStore(), entries, v, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 0 {
		t.Errorf("single-user pattern surfaced: %v", patterns)
	}
}

func TestPruneRemovesCoveredPatterns(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	covered := Pattern{Rule: policy.MustRule(
		policy.T("data", "referral"), policy.T("purpose", "treatment"), policy.T("authorized", "nurse"))}
	novel := Pattern{Rule: scenario.RefinementPattern()}
	out, err := Prune([]Pattern{covered, novel}, ps, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Rule.Key() != novel.Rule.Key() {
		t.Errorf("Prune = %v", out)
	}
}

// Property: Prune output is disjoint from Range(P_PS).
func TestPruneDisjointProperty(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	rg, err := policy.NewRange(ps, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Build patterns from every ground rule over small value sets.
	var patterns []Pattern
	for _, d := range []string{"referral", "psychiatry", "address", "prescription"} {
		for _, p := range []string{"treatment", "registration", "billing"} {
			for _, a := range []string{"nurse", "clerk", "psychiatrist"} {
				patterns = append(patterns, Pattern{Rule: policy.MustRule(
					policy.T("data", d), policy.T("purpose", p), policy.T("authorized", a))})
			}
		}
	}
	out, err := Prune(patterns, ps, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || len(out) == len(patterns) {
		t.Fatalf("prune kept %d of %d; fixture mis-built", len(out), len(patterns))
	}
	for _, p := range out {
		if rg.Contains(p.Rule) {
			t.Errorf("pruned output %s is in Range(P_PS)", p.Rule)
		}
	}
}

func TestExtractorsAgree(t *testing.T) {
	// Differential property: the SQL and native extractors produce
	// identical pattern sets on the same input.
	entries := scenario.Table1()
	for _, opts := range []Options{
		{},
		{MinSupport: 1, MinDistinctUsers: 1},
		{MinSupport: 2},
		{Attrs: []string{"data", "purpose"}},
		{Attrs: []string{"authorized"}, MinSupport: 3},
		{Attrs: []string{"data", "purpose", "authorized", "user"}, MinSupport: 1, MinDistinctUsers: 1},
	} {
		sqlPats, err := ExtractPatterns(Filter(entries), withExtractor(opts, SQLExtractor{}))
		if err != nil {
			t.Fatalf("sql %+v: %v", opts, err)
		}
		natPats, err := ExtractPatterns(Filter(entries), withExtractor(opts, NativeExtractor{}))
		if err != nil {
			t.Fatalf("native %+v: %v", opts, err)
		}
		if !reflect.DeepEqual(patternSet(sqlPats), patternSet(natPats)) {
			t.Errorf("opts %+v: extractors disagree:\nsql: %v\nnative: %v", opts, sqlPats, natPats)
		}
	}
}

func withExtractor(o Options, x PatternExtractor) Options {
	o.Extractor = x
	return o
}

func patternSet(ps []Pattern) map[string]Pattern {
	out := make(map[string]Pattern, len(ps))
	for _, p := range ps {
		out[p.Rule.Key()] = p
	}
	return out
}

func TestExtractPatternsBadAttrs(t *testing.T) {
	if _, err := ExtractPatterns(nil, Options{Attrs: []string{"nosuch"}}); err == nil {
		t.Error("invalid attribute accepted")
	}
	if _, err := ExtractPatterns(nil, Options{Attrs: []string{"data", "Data"}}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	// time is stored but not groupable.
	if _, err := ExtractPatterns(nil, Options{Attrs: []string{"time"}}); err == nil {
		t.Error("time attribute accepted")
	}
}

func TestBuildStatementShape(t *testing.T) {
	sql := SQLExtractor{}.BuildStatement(Options{})
	for _, want := range []string{
		"GROUP BY data, purpose, authorized",
		"HAVING COUNT(*) >= 5",
		"COUNT(DISTINCT user) > 1",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("statement missing %q:\n%s", want, sql)
		}
	}
	strict := SQLExtractor{}.BuildStatement(Options{StrictGreater: true, MinSupport: 7})
	if !strings.Contains(strict, "COUNT(*) > 7") {
		t.Errorf("strict statement: %s", strict)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MinSupport != 5 || o.MinDistinctUsers != 2 {
		t.Errorf("defaults = %+v (paper: f=5, c=COUNT(DISTINCT user)>1)", o)
	}
	if !reflect.DeepEqual(o.Attrs, DefaultAttrs) {
		t.Errorf("default attrs = %v", o.Attrs)
	}
	if o.Extractor == nil {
		t.Error("no default extractor")
	}
}

func TestPatternString(t *testing.T) {
	p := Pattern{Rule: scenario.RefinementPattern(), Support: 5, DistinctUsers: 3}
	s := p.String()
	if !strings.Contains(s, "support 5") || !strings.Contains(s, "3 users") {
		t.Errorf("Pattern.String() = %q", s)
	}
}
