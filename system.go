package prima

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"repro/internal/audit"
	"repro/internal/consent"
	"repro/internal/core"
	"repro/internal/hdb"
	"repro/internal/minidb"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/vocab"
)

// Config parameterizes a System.
type Config struct {
	// Vocabulary defaults to the paper's Figure 1 sample.
	Vocabulary *Vocabulary
	// Policy is the initial policy store; defaults to an empty policy
	// named "PS".
	Policy *Policy
	// Site names the audit log (useful under federation).
	Site string
	// ConsentDefaultAllow selects the consent-store default (HIPAA
	// operations default to allowed). Defaults to true.
	ConsentDefaultDeny bool
	// Refine sets the refinement parameters used by Refine and
	// RunRefinement.
	Refine RefineOptions
}

// System is the assembled PRIMA architecture of Figure 4: privacy
// policy definition (control center), active enforcement, compliance
// auditing, audit management, and policy refinement around one
// clinical database.
type System struct {
	vocab    *Vocabulary
	ps       *Policy
	db       *minidb.Database
	consent  *consent.Store
	log      *audit.Log
	durable  *audit.Durable // non-nil when assembled by Open
	enforcer *hdb.Enforcer
	control  *hdb.ControlCenter
	session  *core.StreamSession
}

// New assembles an in-memory System from the config.
func New(cfg Config) *System {
	return assemble(cfg, minidb.NewDatabase(), audit.NewLog(cfg.Site), nil)
}

func assemble(cfg Config, db *minidb.Database, log *audit.Log, durable *audit.Durable) *System {
	v := cfg.Vocabulary
	if v == nil {
		v = vocab.Sample()
	}
	ps := cfg.Policy
	if ps == nil {
		ps = policy.New("PS")
	}
	cs := consent.NewStore(v, !cfg.ConsentDefaultDeny)
	enf := hdb.New(db, ps, v, cs, log)
	return &System{
		vocab:    v,
		ps:       ps,
		db:       db,
		consent:  cs,
		log:      log,
		durable:  durable,
		enforcer: enf,
		control:  hdb.NewControlCenter(enf, cs),
		session:  core.NewStreamSession(log, ps, v, cfg.Refine),
	}
}

// SystemOptions places a System's state on disk: the audit log
// becomes a durable store (group-commit WAL + checkpointed JSONL +
// B+tree index) and the clinical database gains the file backend for
// tables created with STORAGE file.
type SystemOptions struct {
	// Dir is the root state directory: the audit store lives under
	// Dir/audit, file-backed clinical tables under Dir/db.
	Dir string
	// Audit tunes the durable audit store.
	Audit audit.DurableOptions
	// DB tunes the clinical database's file backend; its Dir field is
	// derived from Dir and may be left empty.
	DB minidb.StorageOptions
}

// Open assembles a System with durable storage attached, recovering
// any state a previous process left in o.Dir: audit entries are
// rebuilt from checkpoint plus WAL tail (refinement index and stream
// cursors included), and file-backed clinical tables reappear without
// re-running CREATE TABLE. The returned stats describe the recovery.
func Open(cfg Config, o SystemOptions) (*System, RecoveryStats, error) {
	var rs RecoveryStats
	if o.Dir == "" {
		return nil, rs, fmt.Errorf("prima: Open needs SystemOptions.Dir")
	}
	d, rs, err := audit.OpenDurable(cfg.Site, filepath.Join(o.Dir, "audit"), o.Audit)
	if err != nil {
		return nil, rs, err
	}
	dbo := o.DB
	dbo.Dir = filepath.Join(o.Dir, "db")
	db, err := minidb.OpenDatabase(dbo)
	if err != nil {
		d.Close()
		return nil, rs, err
	}
	return assemble(cfg, db, d.Log(), d), rs, nil
}

// Durable returns the durable audit store, or nil for an in-memory
// System.
func (s *System) Durable() *audit.Durable { return s.durable }

// SyncStorage blocks until every audit entry and clinical row so far
// is durable (group-commit fsync of the WALs). No-op without storage.
func (s *System) SyncStorage() error {
	if s.durable != nil {
		s.durable.Sync()
	}
	return s.db.Sync()
}

// CheckpointStorage folds the WALs into their checkpoints (audit
// JSONL + index, clinical B+trees) and truncates them, bounding the
// next recovery's replay work. No-op without storage.
func (s *System) CheckpointStorage() error {
	if s.durable != nil {
		if err := s.durable.Checkpoint(); err != nil {
			return err
		}
	}
	return s.db.Checkpoint()
}

// Close releases durable storage after a final sync. In-memory state
// stays queryable; a system opened with Open should not append audit
// entries or mutate file-backed tables after Close.
func (s *System) Close() error {
	var first error
	if s.durable != nil {
		if err := s.durable.Close(); err != nil {
			first = err
		}
	}
	if err := s.db.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Vocabulary returns the system's vocabulary.
func (s *System) Vocabulary() *Vocabulary { return s.vocab }

// PolicyStore returns the live policy store P_PS.
func (s *System) PolicyStore() *Policy { return s.ps }

// DB returns the clinical database for administration (schema
// creation, fixture loading). Application reads must use Query.
func (s *System) DB() *minidb.Database { return s.db }

// AuditLog returns the compliance audit log.
func (s *System) AuditLog() *Log { return s.log }

// Enforcer returns the HDB middleware for advanced use.
func (s *System) Enforcer() *hdb.Enforcer { return s.enforcer }

// SetClock fixes the audit timestamp source (deterministic logs).
func (s *System) SetClock(clock func() time.Time) { s.enforcer.SetClock(clock) }

// SetEnforcementFastPath toggles the compiled enforcement path
// (on by default): cached query plans specialized against an RCU
// decision snapshot. Turning it off routes every query through the
// reference interpreter — useful for differential testing and for
// measuring the fast path's effect.
func (s *System) SetEnforcementFastPath(on bool) { s.enforcer.SetFastPath(on) }

// RegisterTable places a clinical table under enforcement.
func (s *System) RegisterTable(m TableMapping) error { return s.enforcer.RegisterTable(m) }

// AddRule enters a fine-grained policy rule through the control
// center ("data=referral & purpose=treatment & authorized=nurse").
func (s *System) AddRule(compact string) (Rule, error) { return s.control.AddRule(compact) }

// RemoveRule deletes a rule in compact form.
func (s *System) RemoveRule(compact string) (bool, error) { return s.control.RemoveRule(compact) }

// Rules lists the current policy rules in compact form.
func (s *System) Rules() []string { return s.control.Rules() }

// SetConsent records a patient consent choice.
func (s *System) SetConsent(patient, data, purpose string, choice ConsentChoice, at time.Time) error {
	return s.control.SetConsent(patient, data, purpose, choice, at)
}

// RevokeConsent drops every choice recorded for the patient.
func (s *System) RevokeConsent(patient string) int { return s.consent.Revoke(patient) }

// Query runs an enforced, audited SELECT on behalf of (user, role)
// for the stated purpose.
func (s *System) Query(user, role, purpose, sql string) (*minidb.Result, *Access, error) {
	return s.enforcer.Query(Principal{User: user, Role: role}, purpose, sql)
}

// BreakGlass runs the exception-based access path: policy and consent
// are bypassed, the access is audited with status 0 and the reason.
func (s *System) BreakGlass(user, role, purpose, reason, sql string) (*minidb.Result, *Access, error) {
	return s.enforcer.BreakGlass(Principal{User: user, Role: role}, purpose, reason, sql)
}

// Coverage computes Algorithm 1 coverage of the policy store with
// respect to the audit log's policy P_AL (Definition 9 set
// semantics), with gap explanations.
func (s *System) Coverage() (*CoverageReport, error) {
	al := audit.ToPolicy("AL", s.log.Snapshot())
	return core.Coverage(s.ps, al, s.vocab)
}

// EntryCoverage computes row-level coverage over the audit log (the
// paper's §5 counting), served from the log's incremental per-rule
// index in O(groups). Use core.EntryCoverage over a Snapshot when the
// uncovered rows themselves are needed (WriteReport does).
func (s *System) EntryCoverage() (*EntryCoverageReport, error) {
	return core.GroupCoverage(s.ps, s.log.Groups(), s.vocab)
}

// Patterns runs refinement (Algorithm 2) over the audit log without
// adopting anything; the analysis is served from the incremental
// index when the session options allow it.
func (s *System) Patterns() ([]Pattern, error) {
	return core.RefineFromLog(s.ps, s.log, s.vocab, s.session.Opts)
}

// PatternEvidence runs refinement and annotates each useful pattern
// with its behavioural evidence, sorted safest-first.
func (s *System) PatternEvidence() ([]PatternEvidence, error) {
	patterns, err := core.RefineFromLog(s.ps, s.log, s.vocab, s.session.Opts)
	if err != nil {
		return nil, err
	}
	// Annotation needs the raw practice rows, so this path still
	// materializes a snapshot.
	return core.AnnotatePatterns(core.Filter(s.log.Snapshot()), patterns), nil
}

// RunRefinement performs one reviewed refinement round over the audit
// log; adopted patterns take effect on subsequent queries. The round
// is served from the log's incremental index (O(groups) per round)
// rather than a full snapshot rescan.
func (s *System) RunRefinement(reviewer Reviewer) (Round, error) {
	return s.session.Run(reviewer)
}

// RefinementHistory returns the recorded rounds.
func (s *System) RefinementHistory() []Round { return s.session.History }

// WriteReport renders the privacy-officer Markdown report for the
// system's current state: both coverage semantics over the audit log,
// the refinement history, and audit statistics.
func (s *System) WriteReport(w io.Writer, title string) error {
	entries := s.log.Snapshot()
	cov, err := s.Coverage()
	if err != nil {
		return err
	}
	ec, err := core.EntryCoverage(s.ps, entries, s.vocab)
	if err != nil {
		return err
	}
	return report.Write(w, report.Input{
		Title:         title,
		Generated:     time.Now(),
		Coverage:      cov,
		EntryCoverage: ec,
		Rounds:        s.session.History,
		Entries:       entries,
	})
}

// Generalize rewrites the policy store into an equivalent smaller
// policy (lifting sibling rules to their vocabulary parents and
// dropping redundant rules) and applies it in place. The store's
// range — and therefore every coverage figure — is unchanged.
func (s *System) Generalize() (*core.GeneralizeResult, error) {
	res, err := core.Generalize(s.ps, s.vocab)
	if err != nil {
		return nil, err
	}
	s.ps.SetRules(res.Policy.Rules())
	return res, nil
}
