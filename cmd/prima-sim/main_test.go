package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/audit"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	_ = w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestEpochLoop(t *testing.T) {
	dir := t.TempDir()
	auditOut := filepath.Join(dir, "audit.jsonl")
	policyOut := filepath.Join(dir, "refined.txt")
	out, err := capture(t, func() error {
		return run([]string{"-epochs", "3", "-days", "8", "-seed", "7",
			"-out", auditOut, "-policy-out", policyOut})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "precision 1.00, recall 1.00") {
		t.Errorf("extraction quality line missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var dataLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "1,") || strings.HasPrefix(l, "2,") || strings.HasPrefix(l, "3,") {
			dataLines = append(dataLines, l)
		}
	}
	if len(dataLines) != 3 {
		t.Fatalf("epoch rows = %v", dataLines)
	}
	// Coverage rises from epoch 1 to epoch 3.
	first := strings.Split(dataLines[0], ",")
	last := strings.Split(dataLines[2], ",")
	if first[3] >= last[3] {
		t.Errorf("coverage did not rise: %s -> %s", first[3], last[3])
	}

	// The audit log is loadable and non-trivial.
	f, err := os.Open(auditOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := audit.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 100 {
		t.Errorf("audit log has only %d entries", len(entries))
	}
	// The refined policy file includes adopted rules.
	data, err := os.ReadFile(policyOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "registration") {
		t.Errorf("refined policy:\n%s", data)
	}
}

func TestSweepMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-sweep", "-days", "10", "-epochs", "1", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "f,min_users,patterns,precision,recall") {
		t.Fatalf("sweep header missing:\n%s", out)
	}
	if strings.Count(out, "\n") < 20 {
		t.Errorf("sweep grid too small:\n%s", out)
	}
}

func TestBadFlags(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-nope"}) }); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := capture(t, func() error {
		return run([]string{"-out", "/no/such/dir/file.jsonl", "-epochs", "1", "-days", "1"})
	}); err == nil {
		t.Error("unwritable output accepted")
	}
}

func TestSuspicionFlag(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-epochs", "2", "-days", "10", "-seed", "5", "-suspicion"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "precision 1.00, recall 1.00") {
		t.Errorf("suspicion-reviewed run quality:\n%s", out)
	}
}
