// Package lockorder exercises the interprocedural lock-order
// analyzer: lockAB and lockBA together close an A -> B -> A cycle in
// the acquisition graph (lockAB's second acquisition happens inside a
// helper, so the edge only exists interprocedurally).
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
}

type B struct {
	mu sync.Mutex
}

var a A
var b B

// lockAB acquires A, then B through a helper call.
func lockAB() {
	a.mu.Lock()
	lockB() // want lockorder "lock-order cycle"
	a.mu.Unlock()
}

func lockB() {
	b.mu.Lock()
	b.mu.Unlock()
}

// lockBA acquires the same pair in the opposite order.
func lockBA() {
	b.mu.Lock()
	a.mu.Lock() // want lockorder "lock-order cycle"
	a.mu.Unlock()
	b.mu.Unlock()
}

// sequential is clean: the first lock is released before the second
// is taken, so no hold-while-acquiring edge exists.
func sequential() {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// aliasBA re-creates the B -> A edge through a mutex pointer local;
// the SSA copy chain resolves mu back to a's lock class.
func aliasBA() {
	b.mu.Lock()
	mu := &a.mu
	mu.Lock() // want lockorder "lock-order cycle"
	mu.Unlock()
	b.mu.Unlock()
}
