#!/usr/bin/env sh
# check.sh — the full CI gate, runnable locally.
#
# Order matters: cheap structural checks first, the custom static
# analysis before the test suite (a lock-discipline violation should
# fail the build even while its race is still too rare for -race to
# catch), and the race detector last because it is the slowest.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt"
fmtout=$(gofmt -l . 2>/dev/null)
if [ -n "$fmtout" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmtout" >&2
    exit 1
fi

echo "==> prima-vet ./... (custom static analysis)"
go run ./cmd/prima-vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrency suites: audit, core, hdb, minidb, policy)"
go test -race ./internal/audit/ ./internal/core/ ./internal/hdb/ ./internal/minidb/ ./internal/policy/

echo "==> benchmark smoke (one iteration per benchmark)"
go test -bench=. -benchtime=1x -run=NONE . > /dev/null

echo "All checks passed."
