package main

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// codecpair enforces the repo's codec symmetry convention: every
// Encode*/Marshal* declared in a codec.go must have the matching
// Decode*/Unmarshal*, and both names must appear in the sibling
// codec_test.go — serialization without a verified round trip is how
// audit archives rot.
var codecpairAnalyzer = &Analyzer{
	Name: "codecpair",
	Doc:  "every Encode*/Marshal* in codec.go needs its Decode*/Unmarshal* and a round-trip test in codec_test.go",
	Run:  runCodecpair,
}

// codecPairs maps an encoder prefix to its required decoder prefix.
// Audit streams use Write*/Read* (WriteJSONL/ReadJSONL): same
// symmetry, same requirement.
var codecPairs = []struct{ enc, dec string }{
	{"Encode", "Decode"},
	{"Marshal", "Unmarshal"},
	{"Write", "Read"},
}

// codecPairExempt lists encoder names whose decoder follows a
// different naming scheme: the policy/vocab text form written by
// WriteText is parsed by Parse*, which the prefix rule cannot pair
// without false positives.
var codecPairExempt = map[string]bool{
	"WriteText": true,
}

func runCodecpair(p *Package) []Finding {
	// Gather function names declared in codec.go and in codec_test.go.
	inCodec := make(map[string]*ast.FuncDecl)
	var encoders []string
	for _, f := range p.Files {
		if base(p, f) != "codec.go" {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			// Methods on different receivers may share a name
			// (Rule.MarshalJSON and Policy.MarshalJSON); the check is
			// name-based, so record each name once.
			if _, seen := inCodec[fd.Name.Name]; !seen {
				inCodec[fd.Name.Name] = fd
				encoders = append(encoders, fd.Name.Name)
			}
		}
	}
	if len(inCodec) == 0 {
		return nil
	}
	sort.Strings(encoders)

	testNames := make(map[string]bool)
	hasCodecTest := false
	for _, f := range p.TestFiles {
		if base(p, f) != "codec_test.go" {
			continue
		}
		hasCodecTest = true
		// Any identifier mentioned anywhere in the test file counts as
		// exercised — round-trip tests call both directions.
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				testNames[id.Name] = true
			}
			return true
		})
	}

	var out []Finding
	for _, enc := range encoders {
		if codecPairExempt[enc] {
			continue
		}
		var decoder string
		for _, pair := range codecPairs {
			if strings.HasPrefix(enc, pair.enc) {
				decoder = pair.dec + strings.TrimPrefix(enc, pair.enc)
				break
			}
		}
		if decoder == "" {
			continue
		}
		fd := inCodec[enc]
		if _, ok := inCodec[decoder]; !ok {
			out = append(out, Finding{
				Pos:      p.Fset.Position(fd.Pos()),
				Analyzer: "codecpair",
				Message:  fmt.Sprintf("%s has no matching %s in codec.go", enc, decoder),
			})
			continue
		}
		if !hasCodecTest {
			out = append(out, Finding{
				Pos:      p.Fset.Position(fd.Pos()),
				Analyzer: "codecpair",
				Message:  fmt.Sprintf("%s/%s pair has no sibling codec_test.go with a round-trip test", enc, decoder),
			})
			continue
		}
		if !exercised(testNames, enc) || !exercised(testNames, decoder) {
			out = append(out, Finding{
				Pos:      p.Fset.Position(fd.Pos()),
				Analyzer: "codecpair",
				Message:  fmt.Sprintf("codec_test.go does not exercise both %s and %s (round trip untested)", enc, decoder),
			})
		}
	}
	return out
}

// exercised reports whether the test file mentions the function. The
// idiomatic round trip for MarshalJSON/UnmarshalJSON methods goes
// through json.Marshal/json.Unmarshal — the method name itself never
// appears — so the encoding/json driver names count for those.
func exercised(testNames map[string]bool, name string) bool {
	if testNames[name] {
		return true
	}
	for _, driver := range []string{"Marshal", "Unmarshal"} {
		if strings.HasPrefix(name, driver) && testNames[driver] {
			return true
		}
	}
	return false
}

// base returns the file's base name.
func base(p *Package, f *ast.File) string {
	name := p.Fset.File(f.Pos()).Name()
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}
