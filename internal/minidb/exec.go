package minidb

import (
	"fmt"
	"sort"
	"strings"
)

// Exec parses and executes a single SQL statement.
func (db *Database) Exec(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(st)
}

// ExecStmt executes a parsed statement. HDB Active Enforcement uses
// this entry point to run rewritten ASTs without re-rendering them.
func (db *Database) ExecStmt(st Stmt) (*Result, error) {
	switch s := st.(type) {
	case *SelectStmt:
		return db.execSelect(s)
	case *InsertStmt:
		return db.execInsert(s)
	case *CreateTableStmt:
		return db.execCreate(s)
	case *DropTableStmt:
		return db.execDrop(s)
	case *DeleteStmt:
		return db.execDelete(s)
	case *UpdateStmt:
		return db.execUpdate(s)
	case *CreateIndexStmt:
		if err := db.CreateIndex(s.Table, s.Col); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *ExplainStmt:
		return db.explain(s.Select)
	default:
		return nil, fmt.Errorf("minidb: unsupported statement %T", st)
	}
}

// MustExec is Exec that panics on error; for tests and fixtures.
func (db *Database) MustExec(sql string) *Result {
	res, err := db.Exec(sql)
	if err != nil {
		panic(err)
	}
	return res
}

func (db *Database) execCreate(s *CreateTableStmt) (*Result, error) {
	_, err := db.CreateTableStorage(s.Table, s.Cols, s.Storage)
	if err != nil {
		if s.IfNotExists && strings.Contains(err.Error(), "already exists") {
			return &Result{}, nil
		}
		return nil, err
	}
	return &Result{}, nil
}

func (db *Database) execDrop(s *DropTableStmt) (*Result, error) {
	if err := db.DropTable(s.Table); err != nil {
		if s.IfExists {
			return &Result{}, nil
		}
		return nil, err
	}
	return &Result{}, nil
}

func (db *Database) execInsert(s *InsertStmt) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	cols := t.Columns()
	// Column mapping: explicit list or positional.
	target := make([]int, 0, len(cols))
	if len(s.Cols) > 0 {
		for _, name := range s.Cols {
			i, err := t.colIndex(name)
			if err != nil {
				return nil, err
			}
			target = append(target, i)
		}
	} else {
		for i := range cols {
			target = append(target, i)
		}
	}
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(target) {
			return nil, fmt.Errorf("minidb: INSERT expects %d values, got %d", len(target), len(exprRow))
		}
		row := make([]Value, len(cols))
		for i := range row {
			row[i] = Null()
		}
		for i, e := range exprRow {
			if hasAggregate(e) {
				return nil, fmt.Errorf("minidb: aggregates not allowed in VALUES")
			}
			v, err := eval(e, constEnv{})
			if err != nil {
				return nil, err
			}
			row[target[i]] = v
		}
		if err := t.insert(row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// constEnv evaluates expressions with no row context (VALUES lists).
type constEnv struct{}

func (constEnv) col(name string) (Value, error) {
	return Value{}, fmt.Errorf("minidb: column reference %q not allowed here", name)
}
func (constEnv) agg(*Call) (Value, bool, error) { return Value{}, false, nil }

func (db *Database) execDelete(s *DeleteStmt) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.rows[:0:0]
	keptIDs := t.ids[:0:0]
	var victims []uint64
	for ri, row := range t.rows {
		match := true
		if s.Where != nil {
			v, err := eval(s.Where, &rowEnv{table: t, row: row})
			if err != nil {
				return nil, err
			}
			b, ok := boolOf(v)
			match = ok && b
		}
		if match {
			victims = append(victims, t.ids[ri])
		} else {
			kept = append(kept, row)
			keptIDs = append(keptIDs, t.ids[ri])
		}
	}
	if t.store != nil && len(victims) > 0 {
		// Write-ahead: the durable mirror drops the rows before memory
		// does, so a storage error rejects the statement whole.
		if err := t.store.deleteRows(victims); err != nil {
			return nil, err
		}
	}
	t.rows = kept
	t.ids = keptIDs
	t.version++
	return &Result{Affected: len(victims)}, nil
}

func (db *Database) execUpdate(s *UpdateStmt) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	idxs := make([]int, len(s.Cols))
	for i, name := range s.Cols {
		idx, err := t.colIndex(name)
		if err != nil {
			return nil, err
		}
		idxs[i] = idx
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Two phases, like execDelete: evaluate every matched row first,
	// then mirror the whole batch to the durable store write-ahead,
	// and only then touch t.rows — a storage error rejects the
	// statement whole instead of leaving it half-applied in both
	// memory and the mirror.
	var (
		rowIdxs []int
		ids     []uint64
		nextRow [][]Value
	)
	for ri, row := range t.rows {
		match := true
		if s.Where != nil {
			v, err := eval(s.Where, &rowEnv{table: t, row: row})
			if err != nil {
				return nil, err
			}
			b, ok := boolOf(v)
			match = ok && b
		}
		if !match {
			continue
		}
		// Replace the row (readers may share the old backing array).
		next := make([]Value, len(row))
		copy(next, row)
		for i, e := range s.Exprs {
			if hasAggregate(e) {
				return nil, fmt.Errorf("minidb: aggregates not allowed in UPDATE SET")
			}
			v, err := eval(e, &rowEnv{table: t, row: row})
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, t.cols[idxs[i]].Type)
			if err != nil {
				return nil, err
			}
			next[idxs[i]] = cv
		}
		rowIdxs = append(rowIdxs, ri)
		ids = append(ids, t.ids[ri])
		nextRow = append(nextRow, next)
	}
	if t.store != nil && len(ids) > 0 {
		if err := t.store.updateRows(ids, nextRow); err != nil {
			return nil, err
		}
	}
	for i, ri := range rowIdxs {
		t.rows[ri] = nextRow[i]
	}
	t.version++
	return &Result{Affected: len(rowIdxs)}, nil
}

func (db *Database) execSelect(s *SelectStmt) (*Result, error) {
	from, err := db.resolveFrom(s)
	if err != nil {
		return nil, err
	}
	t := from.table
	rows := from.rows

	// WHERE
	if s.Where != nil {
		if hasAggregate(s.Where) {
			return nil, fmt.Errorf("minidb: aggregates not allowed in WHERE")
		}
		filtered := rows[:0:0]
		for _, row := range rows {
			v, err := eval(s.Where, &rowEnv{table: t, row: row})
			if err != nil {
				return nil, err
			}
			if b, ok := boolOf(v); ok && b {
				filtered = append(filtered, row)
			}
		}
		rows = filtered
	}

	grouped := len(s.GroupBy) > 0 || s.Having != nil
	if !grouped {
		for _, it := range s.Items {
			if !it.Star && hasAggregate(it.Expr) {
				grouped = true
				break
			}
		}
	}

	var (
		colNames []string
		outRows  [][]Value
		sortKeys [][]Value
	)

	if grouped {
		colNames, outRows, sortKeys, err = db.selectGrouped(s, t, rows)
	} else {
		colNames, outRows, sortKeys, err = db.selectPlain(s, t, rows)
	}
	if err != nil {
		return nil, err
	}

	// DISTINCT
	if s.Distinct {
		seen := make(map[string]bool, len(outRows))
		dedupRows := outRows[:0:0]
		dedupKeys := sortKeys[:0:0]
		for i, row := range outRows {
			k := rowKey(row)
			if seen[k] {
				continue
			}
			seen[k] = true
			dedupRows = append(dedupRows, row)
			if sortKeys != nil {
				dedupKeys = append(dedupKeys, sortKeys[i])
			}
		}
		outRows = dedupRows
		if sortKeys != nil {
			sortKeys = dedupKeys
		}
	}

	// ORDER BY
	if len(s.OrderBy) > 0 {
		type sortable struct {
			row  []Value
			keys []Value
		}
		items := make([]sortable, len(outRows))
		for i := range outRows {
			items[i] = sortable{row: outRows[i], keys: sortKeys[i]}
		}
		sort.SliceStable(items, func(i, j int) bool {
			for k, ob := range s.OrderBy {
				cmp, ok := compare(items[i].keys[k], items[j].keys[k])
				if !ok {
					// NULLs first; incomparables equal.
					in, jn := items[i].keys[k].IsNull(), items[j].keys[k].IsNull()
					if in != jn {
						if ob.Desc {
							return jn
						}
						return in
					}
					continue
				}
				if cmp == 0 {
					continue
				}
				if ob.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		for i := range items {
			outRows[i] = items[i].row
		}
	}

	// OFFSET / LIMIT
	if s.Offset > 0 {
		if s.Offset >= len(outRows) {
			outRows = nil
		} else {
			outRows = outRows[s.Offset:]
		}
	}
	if s.Limit >= 0 && s.Limit < len(outRows) {
		outRows = outRows[:s.Limit]
	}

	return &Result{Columns: colNames, Rows: outRows}, nil
}

func rowKey(row []Value) string {
	var sb strings.Builder
	for _, v := range row {
		sb.WriteString(v.key())
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// itemName derives the output column name of a select item.
func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if ref, ok := it.Expr.(*ColRef); ok {
		return ref.Name
	}
	return it.Expr.String()
}

// orderKeyExpr resolves an ORDER BY expression: ordinal (ORDER BY 2),
// alias of a select item, or a plain expression. It returns either an
// output-column index (>= 0) or an expression to evaluate.
func orderKeyExpr(ob OrderItem, items []SelectItem) (int, Expr, error) {
	if lit, ok := ob.Expr.(*Literal); ok && lit.Val.Kind() == KindInt {
		n := int(lit.Val.AsInt())
		if n < 1 || n > len(items) {
			return 0, nil, fmt.Errorf("minidb: ORDER BY position %d out of range", n)
		}
		return n - 1, nil, nil
	}
	if ref, ok := ob.Expr.(*ColRef); ok {
		for i, it := range items {
			if it.Alias != "" && strings.EqualFold(it.Alias, ref.Name) {
				return i, nil, nil
			}
		}
	}
	return -1, ob.Expr, nil
}

func (db *Database) selectPlain(s *SelectStmt, t *Table, rows [][]Value) ([]string, [][]Value, [][]Value, error) {
	cols := t.Columns()
	var colNames []string
	for _, it := range s.Items {
		if it.Star {
			for _, c := range cols {
				colNames = append(colNames, c.Name)
			}
		} else {
			colNames = append(colNames, itemName(it))
		}
	}
	outRows := make([][]Value, 0, len(rows))
	var sortKeys [][]Value
	needKeys := len(s.OrderBy) > 0
	if needKeys {
		sortKeys = make([][]Value, 0, len(rows))
	}
	for _, row := range rows {
		en := &rowEnv{table: t, row: row}
		out := make([]Value, 0, len(colNames))
		for _, it := range s.Items {
			if it.Star {
				out = append(out, row...)
				continue
			}
			v, err := eval(it.Expr, en)
			if err != nil {
				return nil, nil, nil, err
			}
			out = append(out, v)
		}
		if needKeys {
			keys := make([]Value, len(s.OrderBy))
			for k, ob := range s.OrderBy {
				idx, ex, err := orderKeyExpr(ob, s.Items)
				if err != nil {
					return nil, nil, nil, err
				}
				if ex == nil {
					keys[k] = out[idx]
					continue
				}
				v, err := eval(ex, en)
				if err != nil {
					return nil, nil, nil, err
				}
				keys[k] = v
			}
			sortKeys = append(sortKeys, keys)
		}
		outRows = append(outRows, out)
	}
	return colNames, outRows, sortKeys, nil
}

func (db *Database) selectGrouped(s *SelectStmt, t *Table, rows [][]Value) ([]string, [][]Value, [][]Value, error) {
	for _, it := range s.Items {
		if it.Star {
			return nil, nil, nil, fmt.Errorf("minidb: SELECT * cannot be combined with GROUP BY or aggregates")
		}
	}
	for _, g := range s.GroupBy {
		if hasAggregate(g) {
			return nil, nil, nil, fmt.Errorf("minidb: aggregates not allowed in GROUP BY")
		}
	}
	type group struct {
		rows [][]Value
		vals map[string]Value // rendered group expr (and bare column names) -> value
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range rows {
		en := &rowEnv{table: t, row: row}
		var kb strings.Builder
		vals := make(map[string]Value, len(s.GroupBy))
		for _, g := range s.GroupBy {
			v, err := eval(g, en)
			if err != nil {
				return nil, nil, nil, err
			}
			kb.WriteString(v.key())
			kb.WriteByte('\x00')
			vals[strings.ToLower(g.String())] = v
			if ref, ok := g.(*ColRef); ok {
				vals[strings.ToLower(ref.Name)] = v
			}
		}
		key := kb.String()
		gr, ok := groups[key]
		if !ok {
			gr = &group{vals: vals}
			groups[key] = gr
			order = append(order, key)
		}
		gr.rows = append(gr.rows, row)
	}
	// A pure-aggregate query over zero rows still yields one group.
	if len(s.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{vals: map[string]Value{}}
		order = append(order, "")
	}

	colNames := make([]string, len(s.Items))
	for i, it := range s.Items {
		colNames[i] = itemName(it)
	}

	var outRows [][]Value
	var sortKeys [][]Value
	needKeys := len(s.OrderBy) > 0

	for _, key := range order {
		gr := groups[key]
		ge := &groupEnv{table: t, rows: gr.rows, groupVals: gr.vals}
		evalInGroup := func(e Expr) (Value, error) {
			if v, ok := gr.vals[strings.ToLower(e.String())]; ok {
				return v, nil
			}
			return eval(e, ge)
		}
		if s.Having != nil {
			v, err := evalInGroup(s.Having)
			if err != nil {
				return nil, nil, nil, err
			}
			if b, ok := boolOf(v); !ok || !b {
				continue
			}
		}
		out := make([]Value, len(s.Items))
		for i, it := range s.Items {
			v, err := evalInGroup(it.Expr)
			if err != nil {
				return nil, nil, nil, err
			}
			out[i] = v
		}
		if needKeys {
			keys := make([]Value, len(s.OrderBy))
			for k, ob := range s.OrderBy {
				idx, ex, err := orderKeyExpr(ob, s.Items)
				if err != nil {
					return nil, nil, nil, err
				}
				if ex == nil {
					keys[k] = out[idx]
					continue
				}
				v, err := evalInGroup(ex)
				if err != nil {
					return nil, nil, nil, err
				}
				keys[k] = v
			}
			sortKeys = append(sortKeys, keys)
		}
		outRows = append(outRows, out)
	}
	return colNames, outRows, sortKeys, nil
}
