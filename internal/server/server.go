// Package server exposes a PRIMA system over HTTP with a JSON API:
// enforced queries, break-glass access, consent management, policy
// administration, coverage reports and refinement rounds. It is the
// network face of the Figure 4 architecture for integrations that do
// not link the Go library directly.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	prima "repro"
	"repro/internal/audit"
	"repro/internal/consent"
	"repro/internal/core"
	"repro/internal/hdb"
	"repro/internal/minidb"
)

// Server is the HTTP handler set around a PRIMA system.
type Server struct {
	sys *prima.System
	mux *http.ServeMux
}

// New builds a Server around a system.
func New(sys *prima.System) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/breakglass", s.handleBreakGlass)
	s.mux.HandleFunc("/policy/rules", s.handleRules)
	s.mux.HandleFunc("/consent", s.handleConsent)
	s.mux.HandleFunc("/coverage", s.handleCoverage)
	s.mux.HandleFunc("/patterns", s.handlePatterns)
	s.mux.HandleFunc("/refine", s.handleRefine)
	s.mux.HandleFunc("/generalize", s.handleGeneralize)
	s.mux.HandleFunc("/audit", s.handleAudit)
	s.mux.HandleFunc("/report", s.handleReport)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type errorBody struct {
	Error string `json:"error"`
}

// bufPool recycles response-encoding buffers across requests. Bodies
// are marshalled into a pooled buffer and written in one call, which
// lets the handler set Content-Length and avoids the per-chunk
// flushing of streaming straight into the ResponseWriter. Buffers
// that grew past maxPooledBuf are dropped instead of pinned.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		bufPool.Put(buf)
		http.Error(w, `{"error":"server: response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	writeBody(w, status, buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		bufPool.Put(buf)
	}
}

// writeBody sends one fully materialized JSON body.
func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// Static response shapes are marshalled once at startup rather than
// per request.
var (
	healthBody       = []byte("{\"status\":\"ok\"}\n")
	postRequiredBody = []byte("{\"error\":\"server: POST required\"}\n")
)

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func writePostRequired(w http.ResponseWriter) {
	writeBody(w, http.StatusMethodNotAllowed, postRequiredBody)
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeBody(w, http.StatusOK, healthBody)
}

// QueryRequest is the body of POST /query and /breakglass.
type QueryRequest struct {
	User    string `json:"user"`
	Role    string `json:"role"`
	Purpose string `json:"purpose"`
	Reason  string `json:"reason,omitempty"` // break-glass only
	SQL     string `json:"sql"`
}

// QueryResponse carries result rows (stringified) plus the access
// report.
type QueryResponse struct {
	Columns []string    `json:"columns"`
	Rows    [][]string  `json:"rows"`
	Access  *hdb.Access `json:"access"`
}

func toResponse(res *minidb.Result, acc *hdb.Access) QueryResponse {
	out := QueryResponse{Columns: res.Columns, Access: acc}
	// Rows stays nil (JSON null) when empty, as it always has; the
	// preallocation only kicks in for non-empty results.
	if len(res.Rows) > 0 {
		out.Rows = make([][]string, 0, len(res.Rows))
		for i := range res.Rows {
			out.Rows = append(out.Rows, res.RowStrings(i))
		}
	}
	return out
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writePostRequired(w)
		return
	}
	var req QueryRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, acc, err := s.sys.Query(req.User, req.Role, req.Purpose, req.SQL)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, hdb.ErrDenied) {
			status = http.StatusForbidden
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(res, acc))
}

func (s *Server) handleBreakGlass(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writePostRequired(w)
		return
	}
	var req QueryRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, acc, err := s.sys.BreakGlass(req.User, req.Role, req.Purpose, req.Reason, req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(res, acc))
}

// RuleRequest is the body of POST/DELETE /policy/rules.
type RuleRequest struct {
	Rule string `json:"rule"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string][]string{"rules": s.sys.Rules()})
	case http.MethodPost:
		var req RuleRequest
		if err := decode(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		rule, err := s.sys.AddRule(req.Rule)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"rule": rule.Compact()})
	case http.MethodDelete:
		var req RuleRequest
		if err := decode(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		ok, err := s.sys.RemoveRule(req.Rule)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if !ok {
			writeErr(w, http.StatusNotFound, errors.New("server: rule not present"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"removed": true})
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("server: GET, POST or DELETE"))
	}
}

// ConsentRequest is the body of POST /consent.
type ConsentRequest struct {
	Patient string `json:"patient"`
	Data    string `json:"data"`
	Purpose string `json:"purpose"`
	Choice  string `json:"choice"` // "opt-in" | "opt-out" | "revoke"
}

func (s *Server) handleConsent(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writePostRequired(w)
		return
	}
	var req ConsentRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	switch strings.ToLower(req.Choice) {
	case "revoke":
		n := s.sys.RevokeConsent(req.Patient)
		writeJSON(w, http.StatusOK, map[string]int{"revoked": n})
	case "opt-in", "opt-out":
		choice := consent.OptIn
		if strings.ToLower(req.Choice) == "opt-out" {
			choice = consent.OptOut
		}
		if err := s.sys.SetConsent(req.Patient, req.Data, req.Purpose, choice, time.Now()); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"recorded": true})
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("server: choice must be opt-in, opt-out or revoke"))
	}
}

// CoverageResponse reports both coverage semantics.
type CoverageResponse struct {
	Coverage      float64  `json:"coverage"`     // Definition 9 (set semantics)
	RangePolicy   int      `json:"range_policy"` // #Range(P_PS)
	RangeAudit    int      `json:"range_audit"`  // #Range(P_AL)
	Overlap       int      `json:"overlap"`
	EntryCoverage float64  `json:"entry_coverage"` // §5 row counting
	EntriesTotal  int      `json:"entries_total"`
	Gaps          []string `json:"gaps,omitempty"` // uncovered ground rules
}

func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("server: GET required"))
		return
	}
	rep, err := s.sys.Coverage()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	erep, err := s.sys.EntryCoverage()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := CoverageResponse{
		Coverage:      rep.Coverage,
		RangePolicy:   rep.RangeX,
		RangeAudit:    rep.RangeY,
		Overlap:       rep.Overlap,
		EntryCoverage: erep.Coverage,
		EntriesTotal:  erep.Total,
	}
	for _, g := range rep.Gaps {
		out.Gaps = append(out.Gaps, g.Rule.Compact())
	}
	writeJSON(w, http.StatusOK, out)
}

// PatternJSON serializes one discovered pattern.
type PatternJSON struct {
	Rule          string    `json:"rule"`
	Support       int       `json:"support"`
	DistinctUsers int       `json:"distinct_users"`
	FirstSeen     time.Time `json:"first_seen"`
	LastSeen      time.Time `json:"last_seen"`
}

// EvidenceJSON serializes pattern evidence.
type EvidenceJSON struct {
	Rule             string  `json:"rule"`
	Support          int     `json:"support"`
	DistinctUsers    int     `json:"distinct_users"`
	Concentration    float64 `json:"concentration"`
	OffHoursFraction float64 `json:"off_hours_fraction"`
	DaysActive       int     `json:"days_active"`
	Suspicion        float64 `json:"suspicion"`
}

func patternsJSON(pats []core.Pattern) []PatternJSON {
	out := make([]PatternJSON, len(pats))
	for i, p := range pats {
		out[i] = PatternJSON{
			Rule: p.Rule.Compact(), Support: p.Support, DistinctUsers: p.DistinctUsers,
			FirstSeen: p.FirstSeen, LastSeen: p.LastSeen,
		}
	}
	return out
}

func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("server: GET required"))
		return
	}
	if r.URL.Query().Get("evidence") == "1" {
		evs, err := s.sys.PatternEvidence()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		out := make([]EvidenceJSON, len(evs))
		for i, ev := range evs {
			out[i] = EvidenceJSON{
				Rule:             ev.Rule.Compact(),
				Support:          ev.Support,
				DistinctUsers:    len(ev.UserCounts),
				Concentration:    ev.Concentration,
				OffHoursFraction: ev.OffHoursFraction,
				DaysActive:       ev.DaysActive,
				Suspicion:        ev.Suspicion(),
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"evidence": out})
		return
	}
	pats, err := s.sys.Patterns()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"patterns": patternsJSON(pats)})
}

// RefineRequest selects per-rule decisions; rules not listed get the
// default decision.
type RefineRequest struct {
	Default   string            `json:"default"`             // adopt|reject|investigate (default adopt)
	Decisions map[string]string `json:"decisions,omitempty"` // compact rule -> decision
}

// RefineResponse reports the round.
type RefineResponse struct {
	CoverageBefore float64       `json:"coverage_before"`
	CoverageAfter  float64       `json:"coverage_after"`
	Adopted        []string      `json:"adopted,omitempty"`
	Rejected       []PatternJSON `json:"rejected,omitempty"`
	Investigating  []PatternJSON `json:"investigating,omitempty"`
}

// ruleKey canonicalizes a compact rule string into its comparison key.
func ruleKey(compact string) (string, error) {
	r, err := prima.ParseRule(compact)
	if err != nil {
		return "", err
	}
	return r.Key(), nil
}

func parseDecision(s string) (core.Decision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "adopt":
		return core.Adopt, nil
	case "reject":
		return core.Reject, nil
	case "investigate":
		return core.Investigate, nil
	default:
		return 0, fmt.Errorf("server: unknown decision %q", s)
	}
}

func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writePostRequired(w)
		return
	}
	var req RefineRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	def, err := parseDecision(req.Default)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	decisions := make(map[string]core.Decision, len(req.Decisions))
	for rule, d := range req.Decisions {
		dec, err := parseDecision(d)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		key, err := ruleKey(rule)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		decisions[key] = dec
	}
	reviewer := core.ReviewerFunc(func(p core.Pattern) core.Decision {
		if d, ok := decisions[p.Rule.Key()]; ok {
			return d
		}
		return def
	})
	round, err := s.sys.RunRefinement(reviewer)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := RefineResponse{
		CoverageBefore: round.CoverageBefore,
		CoverageAfter:  round.CoverageAfter,
		Rejected:       patternsJSON(round.Rejected),
		Investigating:  patternsJSON(round.Investigating),
	}
	for _, rule := range round.Adopted {
		out.Adopted = append(out.Adopted, rule.Compact())
	}
	writeJSON(w, http.StatusOK, out)
}

// GeneralizeResponse reports a generalization pass.
type GeneralizeResponse struct {
	Lifted      int      `json:"lifted"`
	Removed     int      `json:"removed"`
	RulesBefore int      `json:"rules_before"`
	RulesAfter  int      `json:"rules_after"`
	Rules       []string `json:"rules"`
}

func (s *Server) handleGeneralize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writePostRequired(w)
		return
	}
	res, err := s.sys.Generalize()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, GeneralizeResponse{
		Lifted:      res.Lifted,
		Removed:     res.Removed,
		RulesBefore: res.RulesBefore,
		RulesAfter:  res.RulesAfter,
		Rules:       s.sys.Rules(),
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("server: GET required"))
		return
	}
	w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
	title := r.URL.Query().Get("title")
	if err := s.sys.WriteReport(w, title); err != nil {
		// Headers are already out; report the failure in the body.
		fmt.Fprintf(w, "\n\nreport generation failed: %v\n", err)
	}
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("server: GET required"))
		return
	}
	l := s.sys.AuditLog()
	entries := l.Snapshot()
	// The unfiltered stats come from the log's incremental index;
	// filtered views still summarize the subset they return.
	stats := l.Summary()
	if r.URL.Query().Get("status") == "exception" {
		var kept []audit.Entry
		for _, e := range entries {
			if e.Status == audit.Exception {
				kept = append(kept, e)
			}
		}
		entries = kept
		stats = audit.Summarize(entries)
	}
	writeJSON(w, http.StatusOK, map[string]any{"entries": entries, "stats": stats})
}
