// Package lint statically analyzes a policy store against a
// vocabulary — the domain layer of the repo's static-analysis pass.
// Where cmd/prima-vet checks the code that manipulates policies, this
// package checks the policy artifacts themselves, before enforcement
// ever runs: a rule referencing an attribute the vocabulary does not
// know can never match an audit entry, a rule whose Range (Definition
// 8) is contained in another's is dead weight the refinement loop
// will re-derive, and a vocabulary subtree no rule can reach is a
// coverage hole waiting for Algorithm 1 to report it in production.
//
// Finding codes:
//
//	PL001 unknown-attribute   a rule term uses an attribute absent from the vocabulary
//	PL002 unknown-value       a rule term uses a value absent from its attribute's hierarchy
//	PL003 empty-range         a rule has no computable Range (zero rule, or expansion over limit)
//	PL004 duplicate-rule      two rules have identical Ranges (Definitions 6/8)
//	PL005 subsumed-rule       a rule's Range is strictly contained in another's (Definition 8)
//	PL006 unreachable-subtree a vocabulary subtree no rule's Range touches
package lint

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/policy"
	"repro/internal/vocab"
)

// Finding codes.
const (
	UnknownAttribute   = "PL001"
	UnknownValue       = "PL002"
	EmptyRange         = "PL003"
	DuplicateRule      = "PL004"
	SubsumedRule       = "PL005"
	UnreachableSubtree = "PL006"
)

// Finding is one diagnostic about a policy/vocabulary pair.
type Finding struct {
	Code string `json:"code"`
	// Rule is the 1-based index of the offending rule within the
	// analyzed policy; 0 for vocabulary-level findings (PL006).
	Rule    int    `json:"rule,omitempty"`
	Attr    string `json:"attr,omitempty"`
	Value   string `json:"value,omitempty"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	if f.Rule > 0 {
		return fmt.Sprintf("%s rule %d: %s", f.Code, f.Rule, f.Message)
	}
	return fmt.Sprintf("%s: %s", f.Code, f.Message)
}

// Report is the outcome of linting one policy against one vocabulary.
type Report struct {
	Policy   string    `json:"policy"`
	Rules    int       `json:"rules"`
	Findings []Finding `json:"findings,omitempty"`
}

// Clean reports whether the lint pass produced no findings.
func (r Report) Clean() bool { return len(r.Findings) == 0 }

// Counts returns the number of findings per code.
func (r Report) Counts() map[string]int {
	out := make(map[string]int)
	for _, f := range r.Findings {
		out[f.Code]++
	}
	return out
}

// WriteText renders the report one finding per line.
func (r Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "policy %s: %d rule(s), %d finding(s)\n", r.Policy, r.Rules, len(r.Findings)); err != nil {
		return err
	}
	for _, f := range r.Findings {
		if _, err := fmt.Fprintf(w, "  %s\n", f); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report as one JSON document.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Policy lints p against v.
func Policy(p *policy.Policy, v *vocab.Vocabulary) Report {
	return Rules(p.Name, p.Rules(), v)
}

// Rules lints a bare rule list against v. Policy deduplicates on Add,
// so fixtures exercising PL003/PL004 need this entry point; primactl
// goes through Policy.
func Rules(name string, rules []policy.Rule, v *vocab.Vocabulary) Report {
	rep := Report{Policy: name, Rules: len(rules)}
	add := func(f Finding) { rep.Findings = append(rep.Findings, f) }

	// Per-rule checks (PL001, PL002, PL003) and Range computation.
	ranges := make([]map[string]bool, len(rules))
	for i, r := range rules {
		if r.IsZero() {
			add(Finding{
				Code: EmptyRange, Rule: i + 1,
				Message: "rule has no terms; its Range is empty and it can never cover an access",
			})
			continue
		}
		for _, t := range r.Terms() {
			h := v.Hierarchy(t.Attr)
			if h == nil {
				add(Finding{
					Code: UnknownAttribute, Rule: i + 1, Attr: t.Attr,
					Message: fmt.Sprintf("term %s uses attribute %q, which is not in the vocabulary", t, t.Attr),
				})
				continue
			}
			if !h.Contains(t.Value) {
				add(Finding{
					Code: UnknownValue, Rule: i + 1, Attr: t.Attr, Value: t.Value,
					Message: fmt.Sprintf("term %s uses value %q, which is not in the %q hierarchy", t, t.Value, h.Attr()),
				})
			}
		}
		grounds, truncated := r.Groundings(v, policy.DefaultRangeLimit)
		if truncated {
			add(Finding{
				Code: EmptyRange, Rule: i + 1,
				Message: fmt.Sprintf("Range expansion of %s exceeds %d rules; the rule cannot be verified", r, policy.DefaultRangeLimit),
			})
			continue
		}
		set := make(map[string]bool, len(grounds))
		for _, g := range grounds {
			set[g.Key()] = true
		}
		ranges[i] = set
	}

	// Pairwise Range comparison (PL004, PL005): Definition 8 makes the
	// Range the semantic identity of a rule, so equal ranges mean
	// duplicate rules and strict containment means subsumption.
	for i := 0; i < len(rules); i++ {
		for j := i + 1; j < len(rules); j++ {
			a, b := ranges[i], ranges[j]
			if a == nil || b == nil {
				continue
			}
			aInB, bInA := contained(a, b), contained(b, a)
			switch {
			case aInB && bInA:
				add(Finding{
					Code: DuplicateRule, Rule: j + 1,
					Message: fmt.Sprintf("rule %s has the same Range as rule %d %s (Definition 6 equivalence)", rules[j], i+1, rules[i]),
				})
			case bInA:
				add(Finding{
					Code: SubsumedRule, Rule: j + 1,
					Message: fmt.Sprintf("rule %s is subsumed by rule %d %s (Definition 8 range containment)", rules[j], i+1, rules[i]),
				})
			case aInB:
				add(Finding{
					Code: SubsumedRule, Rule: i + 1,
					Message: fmt.Sprintf("rule %s is subsumed by rule %d %s (Definition 8 range containment)", rules[i], j+1, rules[j]),
				})
			}
		}
	}

	// Unreachable vocabulary subtrees (PL006). For each attribute,
	// collect the ground values any rule can reach; a maximal subtree
	// whose ground set is disjoint from that is dead vocabulary —
	// either obsolete taxonomy or a coverage hole.
	for _, attr := range v.Attributes() {
		h := v.Hierarchy(attr)
		covered := make(map[string]bool)
		referenced := false
		for _, r := range rules {
			val, ok := r.Value(attr)
			if !ok {
				continue
			}
			referenced = true
			for _, g := range h.GroundSet(val) {
				covered[vocab.Norm(g)] = true
			}
		}
		if !referenced {
			add(Finding{
				Code: UnreachableSubtree, Attr: h.Attr(),
				Message: fmt.Sprintf("no rule constrains attribute %q; its entire hierarchy is unreachable", h.Attr()),
			})
			continue
		}
		var walk func(n *vocab.Node)
		walk = func(n *vocab.Node) {
			if !reaches(h, n.Value(), covered) {
				add(Finding{
					Code: UnreachableSubtree, Attr: h.Attr(), Value: n.Value(),
					Message: fmt.Sprintf("subtree %q of attribute %q is not reachable by any rule's Range", n.Value(), h.Attr()),
				})
				return // report the maximal dead subtree only
			}
			for _, c := range n.Children() {
				walk(c)
			}
		}
		for _, root := range h.Roots() {
			walk(root)
		}
	}

	return rep
}

// contained reports a ⊆ b.
func contained(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// reaches reports whether any ground value under value is covered.
func reaches(h *vocab.Hierarchy, value string, covered map[string]bool) bool {
	for _, g := range h.GroundSet(value) {
		if covered[vocab.Norm(g)] {
			return true
		}
	}
	return false
}
