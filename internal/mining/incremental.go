package mining

import (
	"sync"

	"repro/internal/audit"
	"repro/internal/core"
)

// EpochState is the persistent cross-epoch mining state behind
// core.IncrementalExtractor: a weighted distinct-transaction table
// that each refinement epoch extends with only the newly appended
// practice rows (the log delta), so epoch cost is O(delta + distinct
// transactions) instead of O(total rows). Both engines share it — the
// table is engine-neutral; only the mining pass differs.
//
// The mutex makes Fold/Extract/Reset safe against concurrent epochs;
// it is a leaf lock (nothing else is acquired while it is held).
type EpochState struct {
	mu          sync.Mutex
	opts        core.Options
	keepPartial bool
	fp          bool
	workers     int
	table       *txTable
}

var _ core.IncrementalState = (*EpochState)(nil)

func newEpochState(opts core.Options, keepPartial, fp bool, workers int) *EpochState {
	return &EpochState{
		opts:        opts,
		keepPartial: keepPartial,
		fp:          fp,
		workers:     workers,
		table:       newTxTable(defaultTableShards, true),
	}
}

// Fold projects the new practice rows onto the analysis attributes
// and folds them into the persistent table.
func (s *EpochState) Fold(practice []audit.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return foldEntries(s.table, practice, analysisAttrs(s.opts))
}

// Extract mines the accumulated table and returns the refinement
// patterns for everything folded so far.
func (s *EpochState) Extract() ([]core.Pattern, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ms := minSupportOf(s.opts)
	if ms < 1 {
		return nil, errMinSupport(ms)
	}
	var sets []mined
	if s.fp {
		sets = fpMine(s.table, ms, s.workers)
	} else {
		sets = aprioriMine(s.table, ms)
	}
	return patternize(s.table, sets, s.opts, s.keepPartial)
}

// Reset discards the accumulated state (the log cursor resynced after
// a structural change such as Reset/Expire/Rotate).
func (s *EpochState) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.table = newTxTable(defaultTableShards, true)
}

// Rows reports the raw practice rows folded so far (test hook).
func (s *EpochState) Rows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.rows
}
