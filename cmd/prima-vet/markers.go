package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// The interprocedural analyzers are configured by marker comments in
// the analyzed source, so policy lives next to the code it describes:
//
//	prima:phi     on a struct field — the field carries protected
//	              health information (phileak taint source)
//	prima:redact  on a function — the function is a sanitizer; values
//	              passing through it are no longer tainted
//	prima:arena   on a type — the type is arena-backed and must not be
//	              mutated after it is published (arenasafe)
//
// Markers appear anywhere in the doc comment or the trailing line
// comment of the declaration they annotate.

// Markers is the collected annotation set of a Program.
type Markers struct {
	// PHIFields maps the field objects marked prima:phi.
	PHIFields map[*types.Var]bool
	// Redactors maps the function objects marked prima:redact.
	Redactors map[*types.Func]bool
	// Arenas maps the named types marked prima:arena.
	Arenas map[*types.Named]bool
}

// hasMarker reports whether any comment line consists of the marker
// (optionally followed by explanatory text). The marker must open the
// line — prose that merely mentions a marker name does not count.
func hasMarker(marker string, groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			for _, line := range strings.Split(c.Text, "\n") {
				line = strings.TrimLeft(line, "/* \t")
				if line == marker || strings.HasPrefix(line, marker+" ") {
					return true
				}
			}
		}
	}
	return false
}

// collectMarkers scans every package for annotation comments.
func collectMarkers(pkgs []*Package) *Markers {
	m := &Markers{
		PHIFields: make(map[*types.Var]bool),
		Redactors: make(map[*types.Func]bool),
		Arenas:    make(map[*types.Named]bool),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				switch decl := d.(type) {
				case *ast.FuncDecl:
					if hasMarker("prima:redact", decl.Doc) {
						if fn, ok := p.Info.Defs[decl.Name].(*types.Func); ok {
							m.Redactors[fn] = true
						}
					}
				case *ast.GenDecl:
					for _, spec := range decl.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if hasMarker("prima:arena", decl.Doc, ts.Doc, ts.Comment) {
							if tn, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
								if named, ok := tn.Type().(*types.Named); ok {
									m.Arenas[named] = true
								}
							}
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok {
							continue
						}
						for _, fld := range st.Fields.List {
							if !hasMarker("prima:phi", fld.Doc, fld.Comment) {
								continue
							}
							for _, name := range fld.Names {
								if v, ok := p.Info.Defs[name].(*types.Var); ok {
									m.PHIFields[v] = true
								}
							}
						}
					}
				}
			}
		}
	}
	return m
}

// phiCarrier reports whether t is, or transitively contains, a struct
// with a prima:phi field — a value of such a type may carry PHI as a
// whole (audit.Entry, federation.Conflict). Pointers, slices, arrays,
// and maps of carriers are carriers.
func (m *Markers) phiCarrier(t types.Type) bool {
	return m.carrier(t, make(map[types.Type]bool))
}

func (m *Markers) carrier(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if m.PHIFields[f] || m.carrier(f.Type(), seen) {
				return true
			}
		}
	case *types.Pointer:
		return m.carrier(u.Elem(), seen)
	case *types.Slice:
		return m.carrier(u.Elem(), seen)
	case *types.Array:
		return m.carrier(u.Elem(), seen)
	case *types.Map:
		return m.carrier(u.Key(), seen) || m.carrier(u.Elem(), seen)
	}
	return false
}
