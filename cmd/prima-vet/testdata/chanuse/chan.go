// Package chanuse exercises the channel-misuse analyzer: nil and
// closed channel operations resolved through the SSA lattice, and
// blocking channel operations performed while holding a module lock.
package chanuse

import "sync"

// nilSend: the only reaching definition is the zero value.
func nilSend() {
	var ch chan int
	ch <- 1 // want chanuse "send on nil channel"
}

// maybeNil: a phi of the zero value and a make — nil on one path.
func maybeNil(ready bool) {
	var ch chan int
	if ready {
		ch = make(chan int)
	}
	<-ch // want chanuse "possibly-nil channel"
}

// sendClosed: the reaching definition passed through close().
func sendClosed() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want chanuse "send on closed channel"
}

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want chanuse "close of already-closed channel"
}

// closeOnce is the clean lifecycle: send, close, drain.
func closeOnce() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	<-ch
}

// deferClose is the idiomatic deferred cleanup: the close runs at
// function exit, after every send — never reported.
func deferClose() {
	ch := make(chan int, 1)
	defer close(ch)
	ch <- 1
	<-ch
}

// disabledCase: a nil channel inside select is the standard idiom for
// disabling that case — never reported.
func disabledCase(in chan int) {
	var tick chan int
	select {
	case <-in:
	case <-tick:
	}
}

type Queue struct {
	mu    sync.Mutex
	items []int
}

var q Queue

// lockedSend parks with the Queue lock held if no receiver is ready.
func lockedSend(out chan int) {
	q.mu.Lock()
	out <- 1 // want chanuse "channel send while holding"
	q.mu.Unlock()
}

// bufferedUnderLock: constant capacity > 0, assumed non-blocking.
func bufferedUnderLock() {
	buf := make(chan int, 8)
	q.mu.Lock()
	buf <- 1
	q.mu.Unlock()
	<-buf
}

// selectDefaultUnderLock never blocks: the default clause bails out.
func selectDefaultUnderLock(out chan int) {
	q.mu.Lock()
	select {
	case out <- 1:
	default:
	}
	q.mu.Unlock()
}

func selectUnderLock(in chan int) {
	q.mu.Lock()
	select { // want chanuse "select without default while holding"
	case <-in:
	}
	q.mu.Unlock()
}

func rangeUnderLock(in chan int) {
	q.mu.Lock()
	for v := range in { // want chanuse "range over channel while holding"
		_ = v
	}
	q.mu.Unlock()
}
