package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

// cmdLint statically analyzes a policy store against a vocabulary.
//
// Exit codes (stable, CI-consumable):
//
//	0  the policy is clean
//	1  the lint pass produced findings (printed before exiting)
//	2  usage error: bad flags, missing -policy, unreadable inputs
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	vocabFile := fs.String("vocab", "", "vocabulary file (default: paper sample)")
	policyFile := fs.String("policy", "", "policy store file (required)")
	name := fs.String("name", "PS", "policy name used in the report")
	jsonOut := fs.Bool("json", false, "emit the report as a JSON document")
	overbroad := fs.Float64("overbroad", 0, "PL008 threshold fraction in (0,1]; 0 = default 0.9, negative disables")
	materialize := fs.Bool("materialize", false, "use the materializing oracle path (small vocabularies only)")
	if err := fs.Parse(args); err != nil {
		return &exitError{code: 2, err: err}
	}
	if *policyFile == "" {
		return &exitError{code: 2, err: fmt.Errorf("lint: -policy is required")}
	}
	v, err := loadVocab(*vocabFile)
	if err != nil {
		return &exitError{code: 2, err: err}
	}
	p, err := loadPolicy(*name, *policyFile)
	if err != nil {
		return &exitError{code: 2, err: err}
	}

	rep := lint.PolicyOpts(p, v, lint.Options{
		Materialize:       *materialize,
		OverBroadFraction: *overbroad,
	})
	if *jsonOut {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		return err
	}
	if !rep.Clean() {
		return &exitError{code: 1, err: fmt.Errorf("lint: %d finding(s) in policy %s", len(rep.Findings), rep.Policy)}
	}
	return nil
}
