// Package policy implements the formal privacy-policy model of PRIMA
// (Bhatti & Grandison, 2007), Section 3.1: RuleTerms (Definition 1),
// ground and composite terms (Definition 2), Rules as conjunctions of
// RuleTerms (Definition 5), Policies as collections of Rules
// (Definition 7), the equivalence relations of Definitions 4 and 6,
// and the Range of a policy (Definition 8).
package policy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vocab"
)

// Term is a RuleTerm (Definition 1): the assignment of a value to an
// attribute, e.g. (data, demographic).
type Term struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

// T is shorthand for constructing a Term.
func T(attr, value string) Term { return Term{Attr: attr, Value: value} }

// String renders the term in the paper's notation.
func (t Term) String() string { return "(" + t.Attr + ", " + t.Value + ")" }

// Key returns the normalized comparison key of the term.
func (t Term) Key() string { return vocab.Norm(t.Attr) + "=" + vocab.Norm(t.Value) }

// IsGround reports whether the term is ground with respect to v
// (Definition 2).
func (t Term) IsGround(v *vocab.Vocabulary) bool { return v.IsGround(t.Attr, t.Value) }

// GroundTerms returns the set RT' of ground terms derivable from t
// (Definition 3), in deterministic order.
func (t Term) GroundTerms(v *vocab.Vocabulary) []Term {
	values := v.GroundSet(t.Attr, t.Value)
	out := make([]Term, len(values))
	for i, val := range values {
		out[i] = Term{Attr: t.Attr, Value: val}
	}
	return out
}

// Equivalent reports whether t ≈ u under v (Definition 4): the terms
// share an attribute and their ground sets intersect.
func (t Term) Equivalent(u Term, v *vocab.Vocabulary) bool {
	if vocab.Norm(t.Attr) != vocab.Norm(u.Attr) {
		return false
	}
	return v.Equivalent(t.Attr, t.Value, u.Value)
}

// Rule is a conjunction of RuleTerms (Definition 5). Rules are kept
// normalized: terms sorted by attribute then value, with exact
// duplicates removed. The paper's cardinality #R is Len().
type Rule struct {
	terms []Term
}

// NewRule builds a normalized rule from terms. It is an error to
// construct an empty rule (Definition 5 requires n ≥ 1) or a rule with
// two different values for the same attribute: a Rule models one
// specific combination of attribute assignments.
func NewRule(terms ...Term) (Rule, error) {
	if len(terms) == 0 {
		return Rule{}, fmt.Errorf("policy: a rule requires at least one term")
	}
	byAttr := make(map[string]Term, len(terms))
	for _, t := range terms {
		if vocab.Norm(t.Attr) == "" {
			return Rule{}, fmt.Errorf("policy: term %v has an empty attribute", t)
		}
		if vocab.Norm(t.Value) == "" {
			return Rule{}, fmt.Errorf("policy: term %v has an empty value", t)
		}
		key := vocab.Norm(t.Attr)
		if prev, ok := byAttr[key]; ok {
			if prev.Key() != t.Key() {
				return Rule{}, fmt.Errorf("policy: conflicting terms %v and %v for attribute %q", prev, t, t.Attr)
			}
			continue
		}
		byAttr[key] = t
	}
	norm := make([]Term, 0, len(byAttr))
	for _, t := range byAttr {
		norm = append(norm, t)
	}
	sort.Slice(norm, func(i, j int) bool {
		if a, b := vocab.Norm(norm[i].Attr), vocab.Norm(norm[j].Attr); a != b {
			return a < b
		}
		return vocab.Norm(norm[i].Value) < vocab.Norm(norm[j].Value)
	})
	return Rule{terms: norm}, nil
}

// MustRule is NewRule that panics on error; for static data.
func MustRule(terms ...Term) Rule {
	r, err := NewRule(terms...)
	if err != nil {
		panic(err)
	}
	return r
}

// Terms returns the rule's terms in normalized order. The returned
// slice must not be modified.
func (r Rule) Terms() []Term { return r.terms }

// Len is the cardinality #R of the rule.
func (r Rule) Len() int { return len(r.terms) }

// IsZero reports whether the rule is the zero value (no terms).
func (r Rule) IsZero() bool { return len(r.terms) == 0 }

// Value returns the value the rule assigns to attr and whether the
// attribute is present.
func (r Rule) Value(attr string) (string, bool) {
	key := vocab.Norm(attr)
	for _, t := range r.terms {
		if vocab.Norm(t.Attr) == key {
			return t.Value, true
		}
	}
	return "", false
}

// String renders the rule in the paper's notation,
// {(a1, v1) ∧ (a2, v2) ∧ ...}.
func (r Rule) String() string {
	parts := make([]string, len(r.terms))
	for i, t := range r.terms {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, " ∧ ") + "}"
}

// Key returns a canonical comparison key. Two rules have equal keys
// iff they contain exactly the same normalized terms.
func (r Rule) Key() string {
	parts := make([]string, len(r.terms))
	for i, t := range r.terms {
		parts[i] = t.Key()
	}
	return strings.Join(parts, "&")
}

// IsGround reports whether every term of the rule is ground under v.
func (r Rule) IsGround(v *vocab.Vocabulary) bool {
	for _, t := range r.terms {
		if !t.IsGround(v) {
			return false
		}
	}
	return true
}

// Project returns a new rule containing only the terms whose
// attributes appear in attrs. It returns the zero Rule if none match.
func (r Rule) Project(attrs ...string) Rule {
	keep := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		keep[vocab.Norm(a)] = true
	}
	var terms []Term
	for _, t := range r.terms {
		if keep[vocab.Norm(t.Attr)] {
			terms = append(terms, t)
		}
	}
	return Rule{terms: terms}
}

// Groundings enumerates the ground rules derivable from r under v:
// the cartesian product of each term's ground set (Corollary 1).
// The enumeration is deterministic. limit > 0 bounds the number of
// rules produced; the bool result reports whether the enumeration was
// truncated.
func (r Rule) Groundings(v *vocab.Vocabulary, limit int) ([]Rule, bool) {
	sets := make([][]Term, len(r.terms))
	total := 1
	for i, t := range r.terms {
		sets[i] = t.GroundTerms(v)
		total *= len(sets[i])
	}
	if limit > 0 && total > limit {
		total = limit
	}
	out := make([]Rule, 0, total)
	idx := make([]int, len(sets))
	truncated := false
	for {
		terms := make([]Term, len(sets))
		for i, j := range idx {
			terms[i] = sets[i][j]
		}
		out = append(out, Rule{terms: terms})
		if limit > 0 && len(out) >= limit {
			// Check whether anything remains.
			for i := len(idx) - 1; i >= 0; i-- {
				if idx[i]+1 < len(sets[i]) {
					truncated = true
					break
				}
			}
			break
		}
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(sets[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, truncated
}

// Equivalent reports whether r ≈ u under v (Definition 6): the rules
// have the same cardinality and every term of r is equivalent to some
// term of u.
func (r Rule) Equivalent(u Rule, v *vocab.Vocabulary) bool {
	if r.Len() != u.Len() {
		return false
	}
	for _, t := range r.terms {
		found := false
		for _, s := range u.terms {
			if t.Equivalent(s, v) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Covers reports whether r subsumes ground rule g: same attributes,
// and each of r's values subsumes g's value in the vocabulary. This is
// the practical containment test used to explain coverage gaps.
func (r Rule) Covers(g Rule, v *vocab.Vocabulary) bool {
	if r.Len() != g.Len() {
		return false
	}
	for _, t := range r.terms {
		gv, ok := g.Value(t.Attr)
		if !ok || !v.Subsumes(t.Attr, t.Value, gv) {
			return false
		}
	}
	return true
}
