package storage

import (
	"errors"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// File is the I/O surface the pager and the WAL write through. It is
// an interface (rather than *os.File) so crash tests can interpose a
// failpoint wrapper that tears writes at arbitrary byte offsets.
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Close() error
	Size() (int64, error)
}

// OpenFileFunc opens (creating if absent) a file for read/write. The
// default implementation wraps *os.File; tests substitute failpoint
// wrappers through the exported Options hooks.
type OpenFileFunc func(path string) (File, error)

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// OpenOSFile is the default OpenFileFunc.
func OpenOSFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// ErrFailpoint is returned by a FailFile once its write budget is
// exhausted: the simulated process "dies" and every later write or
// sync fails.
var ErrFailpoint = errors.New("storage: failpoint triggered (simulated crash)")

// FailBudget is a write budget shared by any number of FailFiles, so
// a multi-file system (index store + WAL + checkpoint log) "dies" at
// one global byte offset in its combined write stream — the closest
// a test can get to pulling the plug on a whole process.
type FailBudget struct {
	mu        sync.Mutex
	remaining int64 // write bytes left before the simulated crash
	failed    atomic.Bool
}

// NewFailBudget allows writeBudget bytes of writes before the
// simulated crash. A negative budget never fails.
func NewFailBudget(writeBudget int64) *FailBudget {
	return &FailBudget{remaining: writeBudget}
}

// Failed reports whether the failpoint has triggered.
func (b *FailBudget) Failed() bool { return b.failed.Load() }

// take consumes up to n bytes: allowed is how many may still be
// written, full whether the whole write fits. A short allowance tears
// the write and trips the failpoint.
func (b *FailBudget) take(n int64) (allowed int64, full bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failed.Load() {
		return 0, false
	}
	if b.remaining < 0 {
		return n, true
	}
	if n <= b.remaining {
		b.remaining -= n
		return n, true
	}
	allowed = b.remaining
	b.remaining = 0
	b.failed.Store(true)
	return allowed, false
}

// FailFile wraps a File and tears the write stream after a byte
// budget: the write that crosses the budget is applied only up to the
// boundary (a torn, partial write — exactly what a power cut leaves
// behind) and everything after it fails. Reads keep working so the
// harness can reopen and replay the same handle's underlying file.
type FailFile struct {
	inner File
	b     *FailBudget
	syncs atomic.Int64
}

// NewFailFile wraps inner with its own private budget.
func NewFailFile(inner File, writeBudget int64) *FailFile {
	return &FailFile{inner: inner, b: NewFailBudget(writeBudget)}
}

// NewFailFileShared wraps inner drawing on a shared budget.
func NewFailFileShared(inner File, b *FailBudget) *FailFile {
	return &FailFile{inner: inner, b: b}
}

// Failed reports whether the failpoint has triggered.
func (f *FailFile) Failed() bool { return f.b.Failed() }

// Syncs returns the number of successful Sync calls (fsync count).
func (f *FailFile) Syncs() int64 { return f.syncs.Load() }

func (f *FailFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

func (f *FailFile) WriteAt(p []byte, off int64) (int, error) {
	allowed, full := f.b.take(int64(len(p)))
	if full {
		return f.inner.WriteAt(p, off)
	}
	// Torn write: apply the prefix that fits the budget, then die.
	n := 0
	if allowed > 0 {
		n, _ = f.inner.WriteAt(p[:allowed], off)
	}
	return n, ErrFailpoint
}

func (f *FailFile) Sync() error {
	if f.b.Failed() {
		return ErrFailpoint
	}
	f.syncs.Add(1)
	return f.inner.Sync()
}

func (f *FailFile) Truncate(size int64) error {
	if f.b.Failed() {
		return ErrFailpoint
	}
	return f.inner.Truncate(size)
}

func (f *FailFile) Close() error         { return f.inner.Close() }
func (f *FailFile) Size() (int64, error) { return f.inner.Size() }

// CountingFile wraps a File and counts fsyncs and bytes written; the
// durability benchmarks read the counters to report fsync-per-append
// amortization.
type CountingFile struct {
	inner File
	Syncs atomic.Int64
	Bytes atomic.Int64
}

// NewCountingFile wraps inner.
func NewCountingFile(inner File) *CountingFile { return &CountingFile{inner: inner} }

func (f *CountingFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }
func (f *CountingFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.inner.WriteAt(p, off)
	f.Bytes.Add(int64(n))
	return n, err
}
func (f *CountingFile) Sync() error {
	f.Syncs.Add(1)
	return f.inner.Sync()
}
func (f *CountingFile) Truncate(size int64) error { return f.inner.Truncate(size) }
func (f *CountingFile) Close() error              { return f.inner.Close() }
func (f *CountingFile) Size() (int64, error)      { return f.inner.Size() }
