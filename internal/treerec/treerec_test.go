package treerec

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/vocab"
)

const sampleXML = `
<record id="r1">
  <patient>p2</patient>
  <demographics>
    <address>2 Oak Ave</address>
    <gender>f</gender>
  </demographics>
  <clinical>
    <prescription>statins</prescription>
    <psychiatry>
      <note>anxiety</note>
    </psychiatry>
  </clinical>
</record>`

func mapping(t *testing.T) *Mapping {
	t.Helper()
	m := NewMapping(vocab.Sample())
	for pat, cat := range map[string]string{
		"demographics/address":  "address",
		"demographics/gender":   "gender",
		"clinical/prescription": "prescription",
		"clinical/psychiatry":   "psychiatry",
	} {
		if err := m.Add(pat, cat); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestParseXML(t *testing.T) {
	rec, err := ParseXMLString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "record" {
		t.Fatalf("root = %q", rec.Name)
	}
	if got := rec.Find("record/patient"); got == nil || got.Value != "p2" {
		t.Errorf("patient = %v", got)
	}
	if got := rec.Find("/record/@id"); got == nil || got.Value != "r1" {
		t.Errorf("attribute = %v", got)
	}
	if got := rec.Find("record/clinical/psychiatry/note"); got == nil || got.Value != "anxiety" {
		t.Errorf("nested = %v", got)
	}
	if rec.Find("record/nosuch") != nil {
		t.Error("Find invented a node")
	}
}

func TestParseXMLErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"<a><b></a>",
		"<a></a><b></b>",
		"plain text",
	} {
		if _, err := ParseXMLString(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestCategoryMatching(t *testing.T) {
	m := mapping(t)
	if cat, ok := m.Category("/record/demographics/address"); !ok || cat != "address" {
		t.Errorf("address: %q %v", cat, ok)
	}
	if _, ok := m.Category("/record/patient"); ok {
		t.Error("unmapped path matched")
	}
	// Wildcard and specificity.
	m2 := NewMapping(vocab.Sample())
	if err := m2.Add("clinical/*", "clinical"); err != nil {
		t.Fatal(err)
	}
	if err := m2.Add("clinical/psychiatry", "psychiatry"); err != nil {
		t.Fatal(err)
	}
	if cat, _ := m2.Category("/record/clinical/prescription"); cat != "clinical" {
		t.Errorf("wildcard: %q", cat)
	}
	if cat, _ := m2.Category("/record/clinical/psychiatry"); cat != "psychiatry" {
		t.Errorf("specific over wildcard: %q", cat)
	}
}

func TestMappingValidation(t *testing.T) {
	m := NewMapping(vocab.Sample())
	if err := m.Add("", "address"); err == nil {
		t.Error("empty pattern accepted")
	}
	if err := m.Add("a/b", "not-a-category"); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestClassify(t *testing.T) {
	rec, err := ParseXMLString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	got := mapping(t).Classify(rec)
	want := []string{"address", "gender", "prescription", "psychiatry"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Classify = %v, want %v", got, want)
	}
}

func TestRedact(t *testing.T) {
	rec, err := ParseXMLString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	m := mapping(t)
	// A nurse treating the patient: general clinical visible,
	// psychiatry and demographics redacted (Figure 3 policy).
	allowed := map[string]bool{"prescription": true}
	red := m.Redact(rec, func(cat string) bool { return allowed[cat] })

	if red.Record.Find("record/clinical/prescription") == nil {
		t.Error("allowed subtree removed")
	}
	if red.Record.Find("record/clinical/psychiatry") != nil {
		t.Error("denied subtree kept")
	}
	if red.Record.Find("record/demographics/address") != nil {
		t.Error("denied demographic kept")
	}
	if red.Record.Find("record/patient") == nil {
		t.Error("unmapped identifier removed")
	}
	if len(red.Removed) != 3 {
		t.Errorf("Removed = %v", red.Removed)
	}
	if !reflect.DeepEqual(red.Kept, []string{"prescription"}) {
		t.Errorf("Kept = %v", red.Kept)
	}
	// The original record is untouched.
	if rec.Find("record/clinical/psychiatry") == nil {
		t.Error("Redact mutated its input")
	}
}

func TestRedactRootDenied(t *testing.T) {
	m := NewMapping(vocab.Sample())
	if err := m.Add("record", "phi"); err != nil {
		t.Fatal(err)
	}
	rec, err := ParseXMLString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	red := m.Redact(rec, func(string) bool { return false })
	if len(red.Record.Children) != 0 {
		t.Errorf("denied root kept children: %+v", red.Record)
	}
	if len(red.Removed) != 1 {
		t.Errorf("Removed = %v", red.Removed)
	}
}

func TestCloneAndWalkIndependence(t *testing.T) {
	rec, err := ParseXMLString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	cp := rec.Clone()
	cp.Find("record/patient").Value = "mutated"
	if rec.Find("record/patient").Value != "p2" {
		t.Error("Clone shares nodes")
	}
	count := 0
	rec.Walk(func(string, *Node) { count++ })
	if count != 10 {
		t.Errorf("walked %d nodes, want 10", count)
	}
}

func TestWriteXMLRoundTripish(t *testing.T) {
	rec, err := ParseXMLString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rec.WriteXML(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<record>", "<address>2 Oak Ave</address>", "<note>anxiety</note>"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Output parses again.
	back, err := ParseXMLString(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if back.Find("record/clinical/psychiatry/note") == nil {
		t.Error("round trip lost structure")
	}
}

func TestXMLEscaping(t *testing.T) {
	n := &Node{Name: "v", Value: `a < b & "c"`}
	var b strings.Builder
	if err := n.WriteXML(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "a < b") {
		t.Errorf("unescaped output: %s", b.String())
	}
	back, err := ParseXMLString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Value != `a < b & "c"` {
		t.Errorf("escape round trip: %q", back.Value)
	}
}
