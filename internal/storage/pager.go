package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"
)

// The pager owns page 0 — the meta page — and the raw page I/O. The
// meta page holds two 2 KiB slots written alternately (version parity
// picks the slot); each slot is CRC-framed, so a torn meta write
// leaves the other slot valid and recovery falls back to the previous
// checkpoint. Everything the engine must find again after a restart
// hangs off the meta record: the B+tree root, the free-list chain
// head, the allocated page count, and a small application blob
// (checkpoint sequence numbers, row-id counters).

const (
	metaMagic    = 0x70726d61 // "prma"
	metaSlotSize = PageSize / 2
	// metaAppMax bounds the application blob stored in a meta slot.
	metaAppMax = 512
	// idsPerFreelistPage is how many free page ids one chain page holds.
	idsPerFreelistPage = (PageSize - pageHeaderSize) / 4
)

// Meta is the durable root record of a store file.
type Meta struct {
	Version  uint64 // checkpoint counter; higher wins
	Pages    uint32 // allocated page count (file size / PageSize)
	Root     uint32 // B+tree root page id (0 = empty tree)
	FreeHead uint32 // first freelist chain page (0 = none)
	App      []byte // application blob (<= metaAppMax)
}

func encodeMeta(m *Meta) []byte {
	b := make([]byte, metaSlotSize)
	binary.LittleEndian.PutUint32(b[0:4], metaMagic)
	binary.LittleEndian.PutUint64(b[8:16], m.Version)
	binary.LittleEndian.PutUint32(b[16:20], m.Pages)
	binary.LittleEndian.PutUint32(b[20:24], m.Root)
	binary.LittleEndian.PutUint32(b[24:28], m.FreeHead)
	binary.LittleEndian.PutUint16(b[28:30], uint16(len(m.App)))
	copy(b[32:], m.App)
	// CRC over everything but the CRC field itself.
	binary.LittleEndian.PutUint32(b[4:8], 0)
	crc := crc32.Checksum(b, crcTable)
	binary.LittleEndian.PutUint32(b[4:8], crc)
	return b
}

func decodeMeta(b []byte) (*Meta, bool) {
	if len(b) < metaSlotSize || binary.LittleEndian.Uint32(b[0:4]) != metaMagic {
		return nil, false
	}
	stored := binary.LittleEndian.Uint32(b[4:8])
	tmp := make([]byte, metaSlotSize)
	copy(tmp, b[:metaSlotSize])
	binary.LittleEndian.PutUint32(tmp[4:8], 0)
	if crc32.Checksum(tmp, crcTable) != stored {
		return nil, false
	}
	applen := int(binary.LittleEndian.Uint16(b[28:30]))
	if applen > metaAppMax {
		return nil, false
	}
	m := &Meta{
		Version:  binary.LittleEndian.Uint64(b[8:16]),
		Pages:    binary.LittleEndian.Uint32(b[16:20]),
		Root:     binary.LittleEndian.Uint32(b[20:24]),
		FreeHead: binary.LittleEndian.Uint32(b[24:28]),
		App:      append([]byte(nil), b[32:32+applen]...),
	}
	return m, true
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// pager performs raw page I/O and meta management on one File. It has
// no locking of its own: the Store serializes writers, and reads of
// distinct offsets through io.ReaderAt are safe concurrently. The
// page count is atomic because grow runs under the store writer lock
// while readers bounds-check concurrently under only the checkpoint
// read lock; a reader observing the pre-grow count is harmless (it
// can only reach a new page through a root it cannot see yet).
type pager struct {
	f     File
	pages atomic.Uint32 // allocated page count, including page 0
}

func openPager(f File) (*pager, *Meta, error) {
	size, err := f.Size()
	if err != nil {
		return nil, nil, err
	}
	p := &pager{f: f}
	if size < PageSize {
		// Fresh file: write version-0 meta into both slots so either
		// read path finds it.
		m := &Meta{Version: 0, Pages: 1}
		p.pages.Store(1)
		if err := p.writeMeta(m, 0); err != nil {
			return nil, nil, err
		}
		if err := p.writeMeta(m, 1); err != nil {
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			return nil, nil, err
		}
		return p, m, nil
	}
	buf := make([]byte, PageSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, nil, err
	}
	m0, ok0 := decodeMeta(buf[:metaSlotSize])
	m1, ok1 := decodeMeta(buf[metaSlotSize:])
	var m *Meta
	switch {
	case ok0 && ok1:
		m = m0
		if m1.Version > m0.Version {
			m = m1
		}
	case ok0:
		m = m0
	case ok1:
		m = m1
	default:
		return nil, nil, fmt.Errorf("storage: both meta slots corrupt")
	}
	// The file may extend past m.Pages when allocations were flushed
	// but their meta never committed (a torn checkpoint); resetting the
	// page count from meta makes future allocations reuse that orphan
	// tail.
	p.pages.Store(m.Pages)
	return p, m, nil
}

// writeMeta writes the meta record into slot (0 or 1) without syncing.
func (p *pager) writeMeta(m *Meta, slot int) error {
	if len(m.App) > metaAppMax {
		return fmt.Errorf("storage: meta app blob %d bytes exceeds %d", len(m.App), metaAppMax)
	}
	_, err := p.f.WriteAt(encodeMeta(m), int64(slot)*metaSlotSize)
	return err
}

func (p *pager) readPage(id uint32, buf []byte) error {
	if n := p.pages.Load(); id == 0 || id >= n {
		return fmt.Errorf("storage: read of page %d out of bounds (pages=%d)", id, n)
	}
	_, err := p.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

func (p *pager) writePage(id uint32, buf []byte) error {
	if n := p.pages.Load(); id == 0 || id >= n {
		return fmt.Errorf("storage: write of page %d out of bounds (pages=%d)", id, n)
	}
	_, err := p.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// grow appends one page to the file and returns its id.
func (p *pager) grow() uint32 {
	return p.pages.Add(1) - 1
}

// readFreelist loads the free-page-id chain starting at head,
// returning the ids plus the chain pages themselves (which become
// free the moment a new chain replaces them).
func (p *pager) readFreelist(head uint32) (ids []uint32, chain []uint32, err error) {
	buf := make([]byte, PageSize)
	for head != 0 {
		if err := p.readPage(head, buf); err != nil {
			return nil, nil, err
		}
		pg := page(buf)
		if pg.kind() != kindFreelist {
			return nil, nil, fmt.Errorf("storage: page %d: expected freelist, found kind %d", head, pg.kind())
		}
		chain = append(chain, head)
		n := pg.ncells() // cell count reused as id count
		for i := 0; i < n; i++ {
			ids = append(ids, binary.LittleEndian.Uint32(buf[pageHeaderSize+4*i:pageHeaderSize+4*i+4]))
		}
		head = pg.aux()
	}
	return ids, chain, nil
}

// writeFreelist persists ids into the given chain pages (len(chain)
// must be ceil(len(ids)/idsPerFreelistPage)) and returns the head.
func (p *pager) writeFreelist(ids []uint32, chain []uint32) (uint32, error) {
	if len(ids) > len(chain)*idsPerFreelistPage {
		// Dropping the overflow would leak pages from the allocator for
		// the life of the file; an under-sized chain is a caller bug.
		return 0, fmt.Errorf("storage: freelist chain of %d page(s) cannot hold %d ids", len(chain), len(ids))
	}
	if len(chain) == 0 {
		return 0, nil
	}
	buf := make([]byte, PageSize)
	for ci, pid := range chain {
		initPage(buf, kindFreelist)
		pg := page(buf)
		lo := ci * idsPerFreelistPage
		hi := lo + idsPerFreelistPage
		if hi > len(ids) {
			hi = len(ids)
		}
		pg.setNCells(hi - lo)
		for i, id := range ids[lo:hi] {
			binary.LittleEndian.PutUint32(buf[pageHeaderSize+4*i:pageHeaderSize+4*i+4], id)
		}
		if ci+1 < len(chain) {
			pg.setAux(chain[ci+1])
		}
		if err := p.writePage(pid, buf); err != nil {
			return 0, err
		}
	}
	return chain[0], nil
}
