package minidb

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadWrite hammers a table with parallel inserts,
// updates, deletes and indexed selects. Run with -race.
func TestConcurrentReadWrite(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE t (id INT, usr TEXT, n INT)`)
	db.MustExec(`CREATE INDEX usr_ix ON t (usr)`)

	const workers = 6
	const rounds = 60
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				var err error
				switch i % 4 {
				case 0:
					_, err = db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'u%d', %d)`, w*rounds+i, w, i))
				case 1:
					_, err = db.Exec(fmt.Sprintf(`SELECT id, n FROM t WHERE usr = 'u%d'`, w))
				case 2:
					_, err = db.Exec(fmt.Sprintf(`UPDATE t SET n = n + 1 WHERE usr = 'u%d'`, w))
				case 3:
					_, err = db.Exec(`SELECT usr, COUNT(*) FROM t GROUP BY usr`)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Final state self-consistent: indexed count equals scan count.
	for w := 0; w < workers; w++ {
		idx := db.MustExec(fmt.Sprintf(`SELECT COUNT(*) FROM t WHERE usr = 'u%d'`, w)).Rows[0][0].AsInt()
		all := db.MustExec(`SELECT usr, COUNT(*) AS n FROM t GROUP BY usr ORDER BY usr`)
		var scan int64
		for _, row := range all.Rows {
			if row[0].AsText() == fmt.Sprintf("u%d", w) {
				scan = row[1].AsInt()
			}
		}
		if idx != scan {
			t.Fatalf("u%d: indexed %d != scanned %d", w, idx, scan)
		}
	}
}
