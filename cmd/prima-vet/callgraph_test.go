package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func loadFixture(t *testing.T, name string) (*Loader, *Package) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture does not type-check: %v", pkg.TypeErrors)
	}
	return loader, pkg
}

func nodeByName(t *testing.T, g *CallGraph, name string) *CGNode {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Fn != nil && n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no call-graph node named %s", name)
	return nil
}

func calleeNames(site *CallSite) []string {
	var out []string
	for _, c := range site.Callees {
		out = append(out, c.Name())
	}
	return out
}

// TestCallGraphInterfaceDispatch pins CHA resolution: a call through
// an interface resolves to every module type implementing it, while a
// direct call resolves to exactly one callee.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	_, pkg := loadFixture(t, "callgraph")
	g := BuildCallGraph([]*Package{pkg})

	dispatch := nodeByName(t, g, "Dispatch")
	var speakSite *CallSite
	for _, site := range dispatch.Calls {
		if len(site.Callees) > 0 {
			speakSite = site
		}
	}
	if speakSite == nil {
		t.Fatal("Dispatch has no resolved call sites")
	}
	names := calleeNames(speakSite)
	if len(names) != 2 {
		t.Fatalf("interface dispatch resolved to %v, want both implementations", names)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "Dog") || !strings.Contains(joined, "Cat") {
		t.Errorf("CHA callees = %v, want Dog.Speak and (*Cat).Speak", names)
	}

	direct := nodeByName(t, g, "Direct")
	var directCallees []string
	for _, site := range direct.Calls {
		directCallees = append(directCallees, calleeNames(site)...)
	}
	if len(directCallees) != 1 || !strings.Contains(directCallees[0], "Dog") {
		t.Errorf("static call resolved to %v, want exactly Dog.Speak", directCallees)
	}
}

// TestCallGraphFuncLit pins the synthetic encloser edge: the literal
// inside UseLit gets its own node, linked back to its encloser, and
// its body's calls are resolved.
func TestCallGraphFuncLit(t *testing.T) {
	_, pkg := loadFixture(t, "callgraph")
	g := BuildCallGraph([]*Package{pkg})

	useLit := nodeByName(t, g, "UseLit")
	var lit *CGNode
	for _, n := range g.Nodes() {
		if n.Lit != nil && n.Encloser == useLit {
			lit = n
		}
	}
	if lit == nil {
		t.Fatal("no literal node enclosed by UseLit")
	}
	var names []string
	for _, site := range lit.Calls {
		names = append(names, calleeNames(site)...)
	}
	if len(names) != 1 || !strings.Contains(names[0], "Dispatch") {
		t.Errorf("literal's calls resolved to %v, want Dispatch", names)
	}
}

// TestTransitiveClosure pins the closure used by lockorder's
// may-acquire sets: facts seeded on a callee are visible from every
// caller that can reach it.
func TestTransitiveClosure(t *testing.T) {
	_, pkg := loadFixture(t, "callgraph")
	g := BuildCallGraph([]*Package{pkg})

	closure := g.TransitiveClosure(func(n *CGNode) factSet {
		if n.Fn != nil && n.Fn.Name() == "Speak" {
			return factSet{"speaks": true}
		}
		return nil
	})
	useLit := nodeByName(t, g, "UseLit")
	if !closure[useLit]["speaks"] {
		t.Error("UseLit -> literal -> Dispatch -> Speak not reflected in closure")
	}
}
