package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// atomicsafe enforces the two invariants the RCU-style hot paths
// (enforcement snapshots, audit sink swapping, mining cursors) depend
// on:
//
//   - Rule A — no mixed access: a variable or struct field whose
//     address is passed to a sync/atomic function anywhere in the
//     program must never be read or written plainly. A single plain
//     access defeats the atomicity of every atomic one.
//   - Rule B — publish then freeze: a module struct stored into an
//     atomic.Pointer (Store/Swap/CompareAndSwap), or loaded out of one,
//     is shared with readers that take no lock. Mutating it afterwards
//     — directly or through a callee that writes its parameter — is a
//     data race; copy-on-write is required. Structs carrying their own
//     synchronization (a sync or sync/atomic field) are exempt: they
//     opt into in-place mutation under their own discipline.
//
// Rule B generalizes lockcheck's publication rule and arenasafe beyond
// prima:arena-marked types: any module struct flowing through an
// atomic pointer gets the fresh/published treatment. Mutation through
// calls reuses arenasafe's interprocedural mutates/stores summaries.
var atomicsafeAnalyzer = &Analyzer{
	Name:       "atomicsafe",
	Doc:        "no plain access to atomically-accessed values; no mutation after atomic publication",
	RunProgram: runAtomicsafe,
}

func runAtomicsafe(prog *Program) []Finding {
	var out []Finding
	report := func(p *Package, pos token.Pos, msg string) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(pos),
			Analyzer: "atomicsafe",
			Message:  msg,
		})
	}

	atomics := collectAtomicObjects(prog)
	for _, n := range prog.CG.Nodes() {
		atomicMixedAccess(n, atomics, report)
	}

	sums := arenaSummaries(prog)
	for _, n := range prog.CG.Nodes() {
		n := n
		atomicPublishScan(prog, n, sums, func(pos token.Pos, msg string) {
			report(n.Pkg, pos, msg)
		})
	}
	return out
}

// ---- rule A: mixed atomic/plain access ----

// collectAtomicObjects gathers every variable and field whose address
// reaches a function-style sync/atomic call (atomic.AddInt64(&x, 1))
// anywhere in the program — directly, or through a pointer local bound
// from &x earlier in the function (resolved over SSA copies).
func collectAtomicObjects(prog *Program) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	for _, n := range prog.CG.Nodes() {
		f := prog.SSA(n)
		info := n.Pkg.Info
		ownBody(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(info, call) || len(call.Args) == 0 {
				return true
			}
			target := ast.Unparen(call.Args[0])
			if id, ok := target.(*ast.Ident); ok {
				// A pointer local: chase the copy chain to the &x that
				// produced it.
				if v, ok := f.Uses[id]; ok {
					if def := f.DefExpr(f.ResolveCopies(v)); def != nil {
						target = ast.Unparen(def)
					}
				}
			}
			if u, ok := target.(*ast.UnaryExpr); ok && u.Op == token.AND {
				if obj := referentVar(info, u.X); obj != nil {
					objs[obj] = true
				}
			}
			return true
		})
	}
	return objs
}

// referentVar resolves &e's pointee to the variable or field it names.
func referentVar(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// atomicMixedAccess flags every plain mention of an atomic object in
// n's body. Mentions inside sync/atomic call arguments and bare
// address-taking (&x — no value access) are exempt; so are declaration
// sites (the initializing definition happens-before any goroutine that
// could race).
func atomicMixedAccess(n *CGNode, atomics map[types.Object]bool, report func(*Package, token.Pos, string)) {
	info := n.Pkg.Info

	// The identifier nodes that are assignment/inc-dec targets: for
	// s.f = v the written ident is the selector's Sel, for x = v the
	// ident itself.
	written := make(map[*ast.Ident]bool)
	markWrite := func(l ast.Expr) {
		switch x := ast.Unparen(l).(type) {
		case *ast.Ident:
			written[x] = true
		case *ast.SelectorExpr:
			written[x.Sel] = true
		}
	}
	ownBody(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				markWrite(l)
			}
		case *ast.IncDecStmt:
			markWrite(x.X)
		}
		return true
	})

	ownBody(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.CallExpr:
			if isAtomicFuncCall(info, x) {
				return false // the atomic access itself
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				return false // address-taking reads no value
			}
		case *ast.Ident:
			obj, ok := info.Uses[x].(*types.Var)
			if !ok || !atomics[obj] {
				return true
			}
			kind, access := "variable", "read"
			if obj.IsField() {
				kind = "field"
			}
			if written[x] {
				access = "write"
			}
			report(n.Pkg, x.Pos(), fmt.Sprintf(
				"%s %q is accessed with sync/atomic elsewhere; plain %s races (use the atomic API)",
				kind, obj.Name(), access))
		}
		return true
	})
}

// isAtomicFuncCall reports whether the call invokes a package-level
// sync/atomic function (not a method on an atomic.* value).
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// ---- rule B: publish-then-mutate through atomic pointers ----

// atomicMethod classifies a call as a method on a sync/atomic value
// (atomic.Pointer[T].Store and friends), returning the method name.
func atomicMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	obj := s.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	return obj.Name(), true
}

// atomicPublishArg returns the expression a method-style atomic call
// publishes, if any: Store(x) and Swap(x) publish x,
// CompareAndSwap(old, new) publishes new.
func atomicPublishArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	name, ok := atomicMethod(info, call)
	if !ok {
		return nil
	}
	switch name {
	case "Store", "Swap":
		if len(call.Args) == 1 {
			return call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 {
			return call.Args[1]
		}
	}
	return nil
}

// atomicSnapshotCall reports whether e is a method-style atomic call
// whose result aliases the published value (Load, or the previous
// value returned by Swap).
func atomicSnapshotCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	name, ok := atomicMethod(info, call)
	return ok && (name == "Load" || name == "Swap")
}

// typeHasSync reports whether the struct type carries its own
// synchronization: a sync.* or sync/atomic.* field anywhere in its
// (recursively embedded) value fields.
func typeHasSync(t types.Type) bool {
	return hasSyncField(derefType(t), make(map[types.Type]bool))
}

func hasSyncField(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			if p := pkg.Path(); p == "sync" || p == "sync/atomic" {
				return true
			}
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if hasSyncField(st.Field(i).Type(), seen) {
			return true
		}
	}
	return false
}

// atomicPublishScan tracks module-struct locals through the CFG: a
// local becomes published when stored into an atomic pointer or bound
// from an atomic load, and any later write to it — direct or through a
// mutating callee — is reported. Mirrors arenasafe's published-set
// analysis with atomic operations as the publication events.
func atomicPublishScan(prog *Program, n *CGNode, sums map[*CGNode]*arenaSummary, report func(token.Pos, string)) {
	info := n.Pkg.Info

	// guardedLocal resolves an expression to a function-local variable
	// of (pointer to) a named module struct type without its own
	// synchronization.
	guardedLocal := func(e ast.Expr) (*types.Var, bool) {
		id, ok := ast.Unparen(stripAddr(e)).(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return nil, false
		}
		if v.Pos() < n.Body.Pos() || v.Pos() > n.Body.End() {
			return nil, false
		}
		named, ok := derefType(v.Type()).(*types.Named)
		if !ok {
			return nil, false
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			return nil, false
		}
		if pkg := named.Obj().Pkg(); pkg == nil || !moduleInternal(prog, pkg.Path()) {
			return nil, false
		}
		if typeHasSync(named) {
			return nil, false
		}
		return v, true
	}
	factFor := func(v *types.Var) string { return "apub:" + fmt.Sprint(int(v.Pos())) }
	className := func(v *types.Var) string {
		named, _ := derefType(v.Type()).(*types.Named)
		return shortClass(classOf(named), prog.Loader.Module)
	}

	apply := func(b *Block, pub factSet, rec bool) factSet {
		pub = pub.clone()
		checkWrite := func(v *types.Var, pos token.Pos) {
			if rec && pub[factFor(v)] {
				report(pos, fmt.Sprintf("%s %q mutated after atomic publication (copy before writing)",
					className(v), v.Name()))
			}
		}
		for _, s := range b.Stmts {
			ast.Inspect(s, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.FuncLit:
					return x == n.Lit
				case *ast.AssignStmt:
					for i, lhs := range x.Lhs {
						var rhs ast.Expr
						if len(x.Lhs) == len(x.Rhs) {
							rhs = x.Rhs[i]
						}
						if v, ok := guardedLocal(lhs); ok {
							// Rebinding: a snapshot out of an atomic
							// pointer is born published, anything else
							// makes the local private again.
							if rhs != nil && atomicSnapshotCall(info, rhs) {
								pub[factFor(v)] = true
							} else {
								delete(pub, factFor(v))
							}
							continue
						}
						if root, pathed := rootIdent(lhs); pathed {
							if v, ok := guardedLocal(root); ok {
								checkWrite(v, lhs.Pos())
							}
						}
					}
				case *ast.IncDecStmt:
					if root, pathed := rootIdent(x.X); pathed {
						if v, ok := guardedLocal(root); ok {
							checkWrite(v, x.Pos())
						}
					}
				case *ast.CallExpr:
					if arg := atomicPublishArg(info, x); arg != nil {
						if v, ok := guardedLocal(arg); ok {
							pub[factFor(v)] = true
						}
						return true
					}
					var slotVars []*types.Var
					slotOf := func(e ast.Expr) (int, bool) {
						if v, ok := guardedLocal(e); ok {
							slotVars = append(slotVars, v)
							return len(slotVars) - 1, true
						}
						return 0, false
					}
					mut, _ := callEffects(prog, n, x, sums, slotOf)
					for i, v := range slotVars {
						if mut&paramBit(i) != 0 {
							checkWrite(v, x.Pos())
						}
					}
				}
				return true
			})
		}
		return pub
	}

	cfg := prog.SSA(n).CFG
	res := cfg.Fixpoint(factSet{}, func(b *Block, in factSet) factSet {
		return apply(b, in, false)
	})
	for _, b := range cfg.Blocks {
		apply(b, res.In[b.Index], true)
	}
}
